/**
 * @file
 * Serialization-layer tests: serde(parse(serialize(x))) == x for
 * configurations (byte-identical re-serialization plus field checks)
 * and bitwise-equal doubles for SimResults, across every named
 * experiment, custom profiles, deep pipelines and finalized configs.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/experiment.hh"
#include "core/job_serde.hh"
#include "core/simulator.hh"
#include "trace/profile.hh"

using namespace stsim;

namespace
{

/** Bit-pattern equality: distinguishes -0.0 from 0.0, unlike ==. */
void
expectSameBits(double a, double b, const char *what)
{
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
              std::bit_cast<std::uint64_t>(b))
        << what << ": " << a << " vs " << b;
}

SimConfig
roundTrip(const SimConfig &cfg)
{
    return serde::configFromJson(serde::toJson(cfg));
}

} // namespace

TEST(DoubleHex, RoundTripsAwkwardValues)
{
    for (double d : {0.0, -0.0, 1.0, 0.1 + 0.2, 1.0 / 3.0, 56.4e-9,
                     1.2e9, 5e-324 /* min subnormal */}) {
        expectSameBits(d, serde::doubleFromHex(serde::doubleToHex(d)),
                       "hex round trip");
    }
    // Decimal doubles are accepted too (hand-written manifests).
    EXPECT_EQ(serde::doubleFromHex("1.5"), 1.5);
}

TEST(ConfigSerde, DefaultConfigReserializesByteIdentically)
{
    SimConfig cfg;
    std::string json = serde::toJson(cfg);
    EXPECT_EQ(json, serde::toJson(roundTrip(cfg)));
    EXPECT_EQ(json.find('\n'), std::string::npos) << "must be one line";
}

TEST(ConfigSerde, EveryNamedExperimentRoundTrips)
{
    for (const char *name :
         {"baseline", "oracle-fetch", "oracle-decode", "oracle-select",
          "A1", "A2", "A3", "A4", "A5", "A6", "B1", "B2", "B3", "B4",
          "B5", "B6", "B7", "B8", "C1", "C2", "C3", "C4", "C5", "C6",
          "PG"}) {
        SimConfig cfg;
        Experiment::byName(name).applyTo(cfg);
        SimConfig back = roundTrip(cfg);
        EXPECT_EQ(serde::toJson(cfg), serde::toJson(back)) << name;
        EXPECT_EQ(back.confKind, cfg.confKind) << name;
        EXPECT_EQ(back.specControl.mode, cfg.specControl.mode) << name;
        EXPECT_EQ(back.specControl.policy.name,
                  cfg.specControl.policy.name)
            << name;
        EXPECT_EQ(back.core.oracle, cfg.core.oracle) << name;
    }
}

TEST(ConfigSerde, NonDefaultFieldsSurvive)
{
    SimConfig cfg;
    cfg.benchmark = "twolf";
    cfg.maxInstructions = 123'456;
    cfg.warmupInstructions = 7'890;
    cfg.runSeed = 99;
    cfg.pipelineDepth = 24;
    cfg.bpred.kind = BpredConfig::Kind::Bimodal;
    cfg.bpred.predictorBytes = 64 * 1024;
    cfg.confKind = ConfKind::Jrs;
    cfg.confBytes = 2 * 1024;
    cfg.jrsThreshold = 7;
    cfg.bpruParams.missInc = 4;
    cfg.bpruParams.tagBits = 12;
    cfg.core.ruuSize = 256;
    cfg.core.lsqSize = 128;
    cfg.memory.l2.sizeBytes = 1024 * 1024;
    cfg.memory.memLatency = 42;
    cfg.power.idleFactor = 0.1 + 0.2; // not exactly representable
    cfg.power.setPeak(PUnit::Clock, 19.0625);

    SimConfig back = roundTrip(cfg);
    EXPECT_EQ(serde::toJson(cfg), serde::toJson(back));
    EXPECT_EQ(back.benchmark, "twolf");
    EXPECT_EQ(back.maxInstructions, 123'456u);
    EXPECT_EQ(back.pipelineDepth, 24u);
    EXPECT_EQ(back.bpred.kind, BpredConfig::Kind::Bimodal);
    EXPECT_EQ(back.confKind, ConfKind::Jrs);
    EXPECT_EQ(back.jrsThreshold, 7u);
    EXPECT_EQ(back.core.ruuSize, 256u);
    EXPECT_EQ(back.memory.memLatency, 42u);
    expectSameBits(back.power.idleFactor, cfg.power.idleFactor,
                   "idleFactor");
    expectSameBits(back.power.peak(PUnit::Clock), 19.0625, "peak");
}

TEST(ConfigSerde, CustomProfileRoundTrips)
{
    SimConfig cfg;
    cfg.customProfile = findProfile("gcc");
    cfg.customProfile->name = "gcc-tweaked";
    cfg.customProfile->fracLoop = 0.123456789;
    cfg.customProfile->seed = 7;

    SimConfig back = roundTrip(cfg);
    ASSERT_TRUE(back.customProfile.has_value());
    EXPECT_EQ(back.customProfile->name, "gcc-tweaked");
    EXPECT_EQ(back.customProfile->seed, 7u);
    expectSameBits(back.customProfile->fracLoop, 0.123456789,
                   "fracLoop");
    EXPECT_EQ(serde::toJson(cfg), serde::toJson(back));

    // Absent profile stays absent.
    SimConfig plain;
    EXPECT_FALSE(roundTrip(plain).customProfile.has_value());
}

TEST(ConfigSerde, FinalizedFlagSurvives)
{
    // A finalized config must parse back as finalized, or the power
    // scaling in finalize() would be applied twice downstream.
    SimConfig cfg;
    Experiment::byName("C2").applyTo(cfg);
    cfg.finalize();
    ASSERT_TRUE(cfg.finalized);
    SimConfig back = roundTrip(cfg);
    EXPECT_TRUE(back.finalized);
    EXPECT_EQ(serde::toJson(cfg), serde::toJson(back));
    // finalize() on the parsed copy is the guarded no-op.
    SimConfig twice = back;
    twice.finalize();
    EXPECT_EQ(serde::toJson(twice), serde::toJson(back));
}

TEST(JobSerde, ManifestEntryRoundTrips)
{
    SimJob job;
    job.cfg.benchmark = "parser";
    job.cfg.maxInstructions = 10'000;
    Experiment::byName("A5").applyTo(job.cfg);
    job.experiment = "A5";

    SimJob back = serde::jobFromJson(serde::toJson(job));
    EXPECT_EQ(back.experiment, "A5");
    EXPECT_EQ(back.cfg.benchmark, "parser");
    EXPECT_EQ(serde::toJson(job), serde::toJson(back));
}

TEST(ResultsSerde, SimulatedResultsRoundTripBitwise)
{
    SimConfig cfg;
    cfg.benchmark = "crafty";
    cfg.maxInstructions = 5'000;
    cfg.warmupInstructions = 1'000;
    Experiment::byName("C2").applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    r.experiment = "C2";

    SimResults back = serde::resultsFromJson(serde::toJson(r));
    EXPECT_EQ(back.benchmark, r.benchmark);
    EXPECT_EQ(back.experiment, r.experiment);
    EXPECT_EQ(back.core.cycles, r.core.cycles);
    EXPECT_EQ(back.core.committedInsts, r.core.committedInsts);
    EXPECT_EQ(back.core.fetchThrottled, r.core.fetchThrottled);
    EXPECT_EQ(back.core.noSelectSkips, r.core.noSelectSkips);
    expectSameBits(back.ipc, r.ipc, "ipc");
    expectSameBits(back.seconds, r.seconds, "seconds");
    expectSameBits(back.avgPowerW, r.avgPowerW, "avgPowerW");
    expectSameBits(back.energyJ, r.energyJ, "energyJ");
    expectSameBits(back.edProduct, r.edProduct, "edProduct");
    expectSameBits(back.wastedEnergyJ, r.wastedEnergyJ, "wastedEnergyJ");
    expectSameBits(back.condMissRate, r.condMissRate, "condMissRate");
    expectSameBits(back.spec, r.spec, "spec");
    expectSameBits(back.pvn, r.pvn, "pvn");
    expectSameBits(back.il1MissRate, r.il1MissRate, "il1MissRate");
    expectSameBits(back.dl1MissRate, r.dl1MissRate, "dl1MissRate");
    expectSameBits(back.l2MissRate, r.l2MissRate, "l2MissRate");
    for (std::size_t i = 0; i < kNumPUnits; ++i) {
        expectSameBits(back.unitEnergyJ[i], r.unitEnergyJ[i],
                       "unitEnergyJ");
        expectSameBits(back.unitWastedJ[i], r.unitWastedJ[i],
                       "unitWastedJ");
        expectSameBits(back.unitActivity[i], r.unitActivity[i],
                       "unitActivity");
    }
    EXPECT_EQ(serde::toJson(r), serde::toJson(back));
}

TEST(ResultsSerde, ResultRecordKeepsIndex)
{
    SimResults r;
    r.benchmark = "go";
    r.experiment = "baseline";
    r.ipc = 1.25;
    std::string line = serde::resultRecordToJson(41, r);
    EXPECT_EQ(serde::resultRecordIndex(line), 41u);
    auto [idx, back] = serde::resultRecordFromJson(line);
    EXPECT_EQ(idx, 41u);
    EXPECT_EQ(back.benchmark, "go");
    expectSameBits(back.ipc, 1.25, "ipc");
}

TEST(SerdeDeath, MalformedInputIsFatal)
{
    EXPECT_EXIT(serde::configFromJson("{not json"),
                ::testing::ExitedWithCode(1), "serde");
    EXPECT_EXIT(serde::configFromJson("{}"),
                ::testing::ExitedWithCode(1), "missing key");
    EXPECT_EXIT(serde::resultRecordFromJson("[1,2,3]"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(serde::doubleFromHex("bogus"),
                ::testing::ExitedWithCode(1), "bad double");
}

TEST(ServeRequestSerde, ManifestRecordParsesWithDefaults)
{
    // A plain manifest line is a valid request: id and deadline
    // default to 0, and the embedded job round-trips intact.
    SimJob j;
    j.cfg.maxInstructions = 8'000;
    j.cfg.benchmark = "go";
    Experiment::byName("baseline").applyTo(j.cfg);
    j.experiment = "baseline";

    serde::ServeRequest req;
    serde::ParseOutcome p = serde::parseServeRequest(serde::toJson(j),
                                                     req);
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_FALSE(req.ping);
    EXPECT_EQ(req.id, 0u);
    EXPECT_EQ(req.deadlineMs, 0u);
    EXPECT_EQ(req.job.experiment, "baseline");
    EXPECT_EQ(req.job.cfg.benchmark, "go");
    EXPECT_EQ(req.job.cfg.maxInstructions, 8'000u);
}

TEST(ServeRequestSerde, IdDeadlineAndPingAreExtracted)
{
    SimJob j;
    j.cfg.benchmark = "go";
    Experiment::byName("baseline").applyTo(j.cfg);
    j.experiment = "baseline";
    std::string rec = serde::toJson(j);
    std::string framed =
        "{\"id\":7,\"deadlineMs\":250," + rec.substr(1);

    serde::ServeRequest req;
    serde::ParseOutcome p = serde::parseServeRequest(framed, req);
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_FALSE(req.ping);
    EXPECT_EQ(req.id, 7u);
    EXPECT_EQ(req.deadlineMs, 250u);

    serde::ServeRequest ping;
    p = serde::parseServeRequest("{\"op\":\"ping\",\"id\":3}", ping);
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_TRUE(ping.ping);
    EXPECT_EQ(ping.id, 3u);
}

TEST(ServeRequestSerde, DeeplyNestedFrameIsRejectedNotACrash)
{
    // The strict parser recurses per nesting level; without a depth
    // cap a ~100KB frame of '[' (well under the line-size cap) would
    // overflow the reader thread's stack -- a SIGSEGV that
    // FatalCaptureScope cannot catch. It must come back as a plain
    // parse error instead.
    serde::ServeRequest req;

    std::string arrays(100'000, '[');
    serde::ParseOutcome p = serde::parseServeRequest(arrays, req);
    EXPECT_FALSE(p.ok);
    EXPECT_NE(p.error.find("nested"), std::string::npos) << p.error;

    std::string objects;
    for (int i = 0; i < 50'000; ++i)
        objects += "{\"a\":";
    p = serde::parseServeRequest(objects, req);
    EXPECT_FALSE(p.ok);
    EXPECT_NE(p.error.find("nested"), std::string::npos) << p.error;

    // Sanity: realistic nesting (a full request is ~5 levels deep) is
    // nowhere near the cap.
    SimJob j;
    j.cfg.benchmark = "go";
    Experiment::byName("baseline").applyTo(j.cfg);
    j.experiment = "baseline";
    p = serde::parseServeRequest(serde::toJson(j), req);
    EXPECT_TRUE(p.ok) << p.error;
}

TEST(ServeRequestSerde, GarbageReturnsFalseInsteadOfExiting)
{
    // The whole point of the non-fatal entry point: hostile frames
    // must produce a failed outcome with a message, never a process
    // exit. Every rejection leaves a non-empty diagnostic.
    serde::ServeRequest req;
    for (const char *bad :
         {"", "not json at all", "[1,2,3]", "{\"experiment\":\"x\"}",
          "{\"op\":\"reboot\"}",
          "{\"experiment\":\"baseline\",\"cfg\":{}}",
          "{\"id\":\"seven\",\"experiment\":\"x\",\"cfg\":{}}"}) {
        serde::ParseOutcome p = serde::parseServeRequest(bad, req);
        EXPECT_FALSE(p.ok) << "accepted: " << bad;
        EXPECT_FALSE(p.error.empty()) << "no diagnostic for: " << bad;
    }
}
