/**
 * @file
 * Unit tests for the branch prediction substrate: gshare, bimodal,
 * BTB, RAS and the combined BpredUnit (speculative history + repair).
 */

#include <gtest/gtest.h>

#include "bpred/bimodal.hh"
#include "bpred/bpred_unit.hh"
#include "bpred/btb.hh"
#include "bpred/gshare.hh"
#include "bpred/ras.hh"

using namespace stsim;

namespace
{

TraceInst
condBranch(Addr pc, bool taken, Addr target)
{
    TraceInst ti;
    ti.pc = pc;
    ti.cls = InstClass::CondBranch;
    ti.taken = taken;
    ti.target = target;
    ti.npc = taken ? target : pc + 4;
    return ti;
}

} // namespace

TEST(Gshare, SizeToEntries)
{
    Gshare g(8 * 1024);
    EXPECT_EQ(g.numEntries(), 32768u); // 4 counters per byte
    EXPECT_EQ(g.historyBits(), 15u);
}

TEST(Gshare, LearnsAlwaysTaken)
{
    Gshare g(1024);
    for (int i = 0; i < 8; ++i)
        g.update(0x1000, 0, true);
    EXPECT_TRUE(g.predict(0x1000, 0).taken);
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    Gshare g(1024);
    for (int i = 0; i < 8; ++i)
        g.update(0x1000, 0, false);
    EXPECT_FALSE(g.predict(0x1000, 0).taken);
}

TEST(Gshare, HistoryDisambiguates)
{
    Gshare g(1024);
    // Same PC, different history: taken under hist 0b01, not taken
    // under 0b10. gshare must learn both.
    for (int i = 0; i < 8; ++i) {
        g.update(0x2000, 0b01, true);
        g.update(0x2000, 0b10, false);
    }
    EXPECT_TRUE(g.predict(0x2000, 0b01).taken);
    EXPECT_FALSE(g.predict(0x2000, 0b10).taken);
}

TEST(Gshare, WeakFlagTracksCounter)
{
    Gshare g(1024);
    auto p = g.predict(0x3000, 0);
    EXPECT_TRUE(p.weak()); // cold counters start weakly taken
    for (int i = 0; i < 4; ++i)
        g.update(0x3000, 0, true);
    EXPECT_FALSE(g.predict(0x3000, 0).weak());
}

TEST(Bimodal, IgnoresHistory)
{
    Bimodal b(1024);
    for (int i = 0; i < 8; ++i)
        b.update(0x4000, 0xDEAD, true);
    EXPECT_TRUE(b.predict(0x4000, 0).taken);
    EXPECT_TRUE(b.predict(0x4000, 0xBEEF).taken);
    EXPECT_EQ(b.historyBits(), 0u);
}

TEST(Btb, MissThenHit)
{
    Btb btb(1024, 2);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    auto t = btb.lookup(0x1000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x2000u);
    EXPECT_EQ(btb.lookups(), 2u);
    EXPECT_EQ(btb.hits(), 1u);
}

TEST(Btb, LruReplacementWithinSet)
{
    Btb btb(8, 2); // 4 sets, 2 ways
    // Three PCs mapping to the same set (stride = sets * 4 bytes).
    Addr a = 0x1000, b = a + 4 * 4, c = a + 8 * 4;
    btb.update(a, 0xA);
    btb.update(b, 0xB);
    btb.lookup(a); // refresh a: b becomes LRU
    btb.update(c, 0xC);
    EXPECT_TRUE(btb.lookup(a).has_value());
    EXPECT_FALSE(btb.lookup(b).has_value()); // evicted
    EXPECT_TRUE(btb.lookup(c).has_value());
}

TEST(Btb, UpdateRefreshesTarget)
{
    Btb btb(1024, 2);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(Ras, PushPopLifo)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, CheckpointRestore)
{
    Ras ras(8);
    ras.push(0x100);
    auto cp = ras.checkpoint();
    ras.push(0x200);
    ras.pop();
    ras.pop(); // speculative damage past the checkpoint
    ras.restore(cp);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, WrapsWithoutCrashing)
{
    Ras ras(4);
    for (Addr i = 0; i < 10; ++i)
        ras.push(0x1000 + 4 * i);
    // Only the last 4 survive; top is the most recent.
    EXPECT_EQ(ras.pop(), 0x1000u + 4 * 9);
}

//
// BpredUnit
//

TEST(BpredUnit, CondPredictionUpdatesSpecHistory)
{
    BpredUnit bp{BpredConfig{}};
    TraceInst ti = condBranch(0x1000, true, 0x2000);
    std::uint64_t h0 = bp.specHistory();
    BranchPrediction p = bp.predict(ti);
    EXPECT_EQ(p.histBefore, h0);
    EXPECT_EQ(bp.specHistory(),
              (h0 << 1) | (p.predTaken ? 1u : 0u));
}

TEST(BpredUnit, CommitTrainsBtb)
{
    BpredUnit bp{BpredConfig{}};
    TraceInst ti = condBranch(0x1000, true, 0x2000);
    BranchPrediction p = bp.predict(ti);
    bp.commitUpdate(ti, p);
    // After training, a taken prediction carries the BTB target.
    for (int i = 0; i < 4; ++i) {
        p = bp.predict(ti);
        bp.commitUpdate(ti, p);
    }
    p = bp.predict(ti);
    EXPECT_TRUE(p.predTaken);
    EXPECT_TRUE(p.btbHit);
    EXPECT_EQ(p.predTarget, 0x2000u);
}

TEST(BpredUnit, SquashRestoreRepairsHistory)
{
    BpredUnit bp{BpredConfig{}};
    TraceInst b1 = condBranch(0x1000, false, 0x2000);
    BranchPrediction p1 = bp.predict(b1);
    // Pollute history with younger speculative branches.
    for (int i = 0; i < 5; ++i)
        bp.predict(condBranch(0x3000 + 16 * i, true, 0x4000));
    bp.squashRestore(b1, p1);
    // History = checkpoint plus b1's architectural outcome (0).
    EXPECT_EQ(bp.specHistory(), (p1.histBefore << 1) | 0u);
}

TEST(BpredUnit, ReturnUsesRas)
{
    BpredUnit bp{BpredConfig{}};
    TraceInst call;
    call.pc = 0x1000;
    call.cls = InstClass::Call;
    call.taken = true;
    call.target = 0x5000;
    bp.predict(call);

    TraceInst ret;
    ret.pc = 0x5100;
    ret.cls = InstClass::Return;
    ret.taken = true;
    ret.target = 0x1004;
    BranchPrediction p = bp.predict(ret);
    EXPECT_EQ(p.predTarget, 0x1004u); // call pushed pc + 4
}

TEST(BpredUnit, SquashRestoreReplaysCall)
{
    BpredUnit bp{BpredConfig{}};
    TraceInst call;
    call.pc = 0x1000;
    call.cls = InstClass::Call;
    call.taken = true;
    call.target = 0x5000;
    BranchPrediction pc_pred = bp.predict(call);
    // Wrong path pops the RAS...
    TraceInst ret;
    ret.pc = 0x6000;
    ret.cls = InstClass::Return;
    bp.predict(ret);
    // ...then the call itself is found mispredicted (e.g. BTB alias)
    // and state is repaired: the call's own push must be replayed.
    bp.squashRestore(call, pc_pred);
    TraceInst real_ret;
    real_ret.pc = 0x5100;
    real_ret.cls = InstClass::Return;
    EXPECT_EQ(bp.predict(real_ret).predTarget, 0x1004u);
}

TEST(BpredUnit, MissRateTracking)
{
    BpredUnit bp{BpredConfig{}};
    TraceInst t = condBranch(0x1000, true, 0x2000);
    for (int i = 0; i < 10; ++i) {
        BranchPrediction p = bp.predict(t);
        bp.commitUpdate(t, p);
    }
    EXPECT_EQ(bp.condUpdates(), 10u);
    EXPECT_LT(bp.condMissRate(), 0.3); // cold counters start weak-taken
    bp.resetStats();
    EXPECT_EQ(bp.condUpdates(), 0u);
}

TEST(BpredUnit, GshareLearnsLoopExitWithHistory)
{
    // A loop branch taken 3 of every 4 executions is fully learnable
    // from 15 bits of history.
    BpredUnit bp{BpredConfig{}};
    int misses = 0, total = 0;
    for (int iter = 0; iter < 4000; ++iter) {
        bool taken = (iter % 4) != 3;
        TraceInst t = condBranch(0x1000, taken, 0x900);
        BranchPrediction p = bp.predict(t);
        if (iter > 2000) { // after warmup
            ++total;
            misses += p.predTaken != taken;
        }
        // Follow the core's protocol: repair speculative history when
        // the prediction was wrong, then train.
        if (p.predTaken != taken)
            bp.squashRestore(t, p);
        bp.commitUpdate(t, p);
    }
    EXPECT_LT(static_cast<double>(misses) / total, 0.02);
}
