/**
 * @file
 * Randomized equivalence tests for the bitmask-first hot path: the
 * last-producer table against the slotOf-probe reference semantics,
 * the two-level ScanMask against a brute-force bit set, and the
 * batched nextGroup walkers against serial next() streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/scan_mask.hh"
#include "pipeline/producer_table.hh"
#include "trace/profile.hh"
#include "trace/static_program.hh"
#include "trace/workload.hh"

using namespace stsim;

namespace
{

std::shared_ptr<const StaticProgram>
hotpathProgram(std::uint64_t seed)
{
    BenchmarkProfile p;
    p.name = "hotpath";
    p.numBlocks = 96;
    p.numFuncs = 10;
    p.condBranchFrac = 0.14;
    p.seed = seed;
    return std::make_shared<const StaticProgram>(p);
}

/**
 * Reference model for the producer table: the exact map from live
 * producer seq to slot. "Live" means dispatched, has a destination,
 * and not yet completed/erased — the same population the core keeps
 * in the table via insert-at-dispatch / erase-at-complete-or-squash.
 */
struct ProducerRef
{
    std::map<InstSeq, std::uint32_t> live;

    void
    forEachLive(const std::function<void(InstSeq, std::uint32_t)> &fn)
        const
    {
        for (const auto &[seq, slot] : live)
            fn(seq, slot);
    }
};

bool
sameInst(const TraceInst &a, const TraceInst &b)
{
    return a.pc == b.pc && a.cls == b.cls &&
           a.srcDist[0] == b.srcDist[0] &&
           a.srcDist[1] == b.srcDist[1] && a.hasDest == b.hasDest &&
           a.memAddr == b.memAddr && a.taken == b.taken &&
           a.target == b.target && a.npc == b.npc;
}

} // namespace

// ---------------------------------------------------------------------
// ProducerTable vs reference map
// ---------------------------------------------------------------------

/// Forced-tiny initial table so random traffic exercises the
/// grow-on-collision and wrap paths, mirroring the controller
/// equivalence pattern: drive both models with one event stream and
/// compare after every step.
TEST(ProducerTable, RandomizedEquivalenceWithTinyTable)
{
    Rng rng(0x9e3779b97f4a7c15ull);
    ProducerTable tab;
    tab.init(2); // far below any realistic window: forces growth
    ProducerRef ref;

    InstSeq next_seq = 1;
    std::vector<InstSeq> active; // insertion order, oldest first

    auto checkAll = [&] {
        // Every live producer must hit with its exact slot...
        for (const auto &[seq, slot] : ref.live)
            ASSERT_EQ(tab.lookup(seq), slot) << "seq " << seq;
        // ...and a sample of dead/never-inserted seqs must miss.
        for (int i = 0; i < 8; ++i) {
            InstSeq probe = rng.below(next_seq + 64);
            if (!ref.live.count(probe))
                ASSERT_EQ(tab.lookup(probe), ProducerTable::kNoSlot)
                    << "stale hit for seq " << probe;
        }
    };

    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t roll = rng.below(100);
        if (roll < 55 || active.empty()) {
            // Dispatch: in-order seq assignment, arbitrary slot.
            const InstSeq seq = next_seq++;
            const auto slot = static_cast<std::uint32_t>(rng.below(256));
            ref.live.emplace(seq, slot);
            active.push_back(seq);
            tab.insert(seq, slot, [&](auto &&fn) {
                ref.forEachLive(fn);
            });
        } else if (roll < 85) {
            // Complete: erase a random live producer.
            const std::size_t i = rng.below(active.size());
            const InstSeq seq = active[i];
            active.erase(active.begin() +
                         static_cast<std::ptrdiff_t>(i));
            ref.live.erase(seq);
            tab.erase(seq);
        } else {
            // Squash: drop the youngest few, like drop_young().
            std::uint64_t n = 1 + rng.below(8);
            while (n-- && !active.empty()) {
                const InstSeq seq = active.back();
                active.pop_back();
                ref.live.erase(seq);
                tab.erase(seq);
            }
        }
        checkAll();
    }
    // The tiny seed table must actually have grown under load.
    EXPECT_GT(tab.cellCount(), 2u);
}

/// erase() of a seq that aliases a different live entry's cell must
/// not disturb that entry (seq-match guard).
TEST(ProducerTable, EraseIsSeqExact)
{
    ProducerTable tab;
    tab.init(2);
    ProducerRef ref;
    ref.live = {{10, 1}};
    tab.insert(10, 1, [&](auto &&fn) { ref.forEachLive(fn); });
    // Erase seqs that map to the same cell but were never inserted.
    for (InstSeq s = 0; s < 64; ++s)
        if (s != 10)
            tab.erase(s);
    EXPECT_EQ(tab.lookup(10), 1u);
    // Re-inserting the same seq updates in place.
    tab.insert(10, 7, [&](auto &&fn) {
        fn(InstSeq{10}, std::uint32_t{7});
    });
    EXPECT_EQ(tab.lookup(10), 7u);
}

// ---------------------------------------------------------------------
// ScanMask vs brute force
// ---------------------------------------------------------------------

/// Drive a ScanMask with a sliding window of monotone positions and
/// compare firstSet()/none()/test() against a brute-force reference on
/// every step, including wrap of the underlying bit ring.
TEST(ScanMask, RandomizedEquivalenceAcrossWrap)
{
    Rng rng(0xc0ffee5ull);
    constexpr std::uint64_t kCap = 96; // rounds up to a 128-bit ring
    ScanMask m;
    m.init(kCap);
    ASSERT_GE(m.capacity(), kCap);

    std::uint64_t base = 0, end = 0;    // live window [base, end)
    std::vector<std::uint64_t> set_pos; // sorted live set positions

    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t roll = rng.below(100);
        if (roll < 45 && end - base < kCap) {
            const std::uint64_t pos = end++;
            if (rng.below(2)) {
                m.set(pos);
                set_pos.push_back(pos);
            }
        } else if (base < end) {
            // Retire the oldest position; its bit dies with it.
            if (!set_pos.empty() && set_pos.front() == base) {
                m.clear(base);
                set_pos.erase(set_pos.begin());
            }
            ++base;
        }

        // none() against the reference.
        ASSERT_EQ(m.none(), set_pos.empty());

        // firstSet from a few random starting points.
        for (int probe = 0; probe < 4; ++probe) {
            const std::uint64_t from =
                base + rng.below(end - base + 1);
            const std::uint64_t to =
                from + rng.below(end - from + 1);
            auto it = std::lower_bound(set_pos.begin(),
                                       set_pos.end(), from);
            const std::uint64_t want =
                (it != set_pos.end() && *it < to) ? *it
                                                  : ScanMask::kNone;
            ASSERT_EQ(m.firstSet(from, to), want)
                << "window [" << from << ", " << to << ")";
        }

        // test() on a random in-window position.
        if (base < end) {
            const std::uint64_t pos = base + rng.below(end - base);
            const bool want = std::binary_search(set_pos.begin(),
                                                 set_pos.end(), pos);
            ASSERT_EQ(m.test(pos), want);
        }
    }
    EXPECT_GT(end, m.capacity()) << "test never wrapped the ring";
}

TEST(ScanMask, ForEachSetVisitsInOrderAndAllowsClearing)
{
    ScanMask m;
    m.init(64);
    const std::uint64_t want[] = {3, 17, 40, 63};
    for (std::uint64_t p : want)
        m.set(p);

    std::vector<std::uint64_t> got;
    m.forEachSet(0, 64, [&](std::uint64_t pos) {
        got.push_back(pos);
        m.clear(pos); // callback may clear its own bit
    });
    ASSERT_EQ(got.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(got[i], want[i]);
    EXPECT_TRUE(m.none());
}

// ---------------------------------------------------------------------
// Batched nextGroup vs serial next()
// ---------------------------------------------------------------------

/// Two identically-seeded workloads, one walked serially and one in
/// random-size groups, must produce byte-identical instruction streams
/// with identical generated() accounting.
TEST(WorkloadGroups, NextGroupMatchesSerialNext)
{
    auto prog = hotpathProgram(11);
    Workload serial(prog, 42);
    Workload grouped(prog, 42);
    Rng rng(123);

    TraceInst buf[8];
    TraceInst *out[8];
    for (unsigned i = 0; i < 8; ++i)
        out[i] = &buf[i];

    for (int iter = 0; iter < 50000;) {
        const auto n = static_cast<unsigned>(1 + rng.below(8));
        const unsigned m = grouped.nextGroup(out, n);
        ASSERT_GE(m, 1u);
        ASSERT_LE(m, n);
        for (unsigned i = 0; i < m; ++i) {
            const TraceInst want = serial.next();
            ASSERT_TRUE(sameInst(buf[i], want))
                << "iter " << iter << " pos " << i << " pc "
                << buf[i].pc << " vs " << want.pc;
            // A short group may only end at a block terminator.
            if (m < n)
                ASSERT_TRUE(i + 1 < m || buf[i].isBranch());
            ++iter;
        }
        ASSERT_EQ(grouped.generated(), serial.generated());
    }
}

/// Same stream equivalence for the wrong-path cursor, across several
/// start addresses and seeds.
TEST(WorkloadGroups, WrongPathNextGroupMatchesSerialNext)
{
    auto prog = hotpathProgram(12);
    Workload wl(prog, 99);
    // Advance the architectural walker so cursors inherit real history.
    for (int i = 0; i < 2000; ++i)
        wl.next();

    Rng rng(321);
    for (int trial = 0; trial < 6; ++trial) {
        const auto &b = prog->block(static_cast<std::uint32_t>(
            rng.below(prog->numBlocks())));
        const Addr start = b.pc;
        const std::uint64_t seed = 0xabcd + trial;
        WrongPathCursor serial(wl, start, seed);
        WrongPathCursor grouped(wl, start, seed);

        TraceInst buf[8];
        TraceInst *out[8];
        for (unsigned i = 0; i < 8; ++i)
            out[i] = &buf[i];

        for (int iter = 0; iter < 4000;) {
            const auto n = static_cast<unsigned>(1 + rng.below(8));
            const unsigned m = grouped.nextGroup(out, n);
            ASSERT_GE(m, 1u);
            ASSERT_LE(m, n);
            for (unsigned i = 0; i < m; ++i) {
                const TraceInst want = serial.next();
                ASSERT_TRUE(sameInst(buf[i], want))
                    << "trial " << trial << " iter " << iter;
                ++iter;
            }
        }
    }
}
