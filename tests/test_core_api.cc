/**
 * @file
 * Tests for the public library layer: SimConfig finalization,
 * experiment registry, relative metrics and the bench harness.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/harness.hh"
#include "core/simulator.hh"

using namespace stsim;

TEST(SimConfig, FinalizeIsIdempotent)
{
    SimConfig cfg;
    cfg.confKind = ConfKind::Bpru;
    cfg.finalize();
    double peak = cfg.power.peak(PUnit::Bpred);
    cfg.finalize();
    EXPECT_DOUBLE_EQ(cfg.power.peak(PUnit::Bpred), peak)
        << "double finalize must not re-scale power";
}

TEST(SimConfig, EstimatorBudgetChargesBpredPower)
{
    SimConfig plain;
    plain.finalize();
    SimConfig with_ce;
    with_ce.confKind = ConfKind::Bpru;
    with_ce.finalize();
    EXPECT_GT(with_ce.power.peak(PUnit::Bpred),
              plain.power.peak(PUnit::Bpred));
}

TEST(SimConfig, DepthPropagatesToDl1Latency)
{
    SimConfig cfg;
    cfg.pipelineDepth = 28;
    cfg.finalize();
    EXPECT_GT(cfg.memory.dl1ExtraLatency, 0u);
    EXPECT_EQ(cfg.memory.dl1ExtraLatency, cfg.core.extraDl1Latency);
}

TEST(Experiment, RegistryKnowsPaperNames)
{
    EXPECT_EQ(Experiment::byName("baseline").confKind, ConfKind::None);

    Experiment c2 = Experiment::byName("C2");
    EXPECT_EQ(c2.confKind, ConfKind::Bpru);
    EXPECT_EQ(c2.specControl.mode, SpecControlMode::Selective);
    EXPECT_TRUE(
        c2.specControl.policy.action(ConfLevel::LC).noSelect);

    Experiment pg = Experiment::byName("PG");
    EXPECT_EQ(pg.confKind, ConfKind::Jrs);
    EXPECT_EQ(pg.specControl.mode, SpecControlMode::PipelineGating);
    EXPECT_EQ(pg.specControl.gatingThreshold, 2u);

    Experiment of = Experiment::byName("oracle-fetch");
    EXPECT_EQ(of.oracle, OracleMode::OracleFetch);
}

TEST(Experiment, FigureSeriesSizes)
{
    EXPECT_EQ(Experiment::figure3Series().size(), 7u); // A1..A6 + PG
    EXPECT_EQ(Experiment::figure4Series().size(), 9u); // B1..B8 + PG
    EXPECT_EQ(Experiment::figure5Series().size(), 7u); // C1..C6 + PG
    EXPECT_EQ(Experiment::figure3Series().back().name, "PG");
}

TEST(Experiment, ApplyToSetsOracleAndControl)
{
    SimConfig cfg;
    Experiment::byName("oracle-select").applyTo(cfg);
    EXPECT_EQ(cfg.core.oracle, OracleMode::OracleSelect);
    Experiment::byName("A5").applyTo(cfg);
    EXPECT_EQ(cfg.core.oracle, OracleMode::None);
    EXPECT_EQ(cfg.specControl.mode, SpecControlMode::Selective);
}

TEST(RelativeMetrics, Arithmetic)
{
    SimResults base;
    base.ipc = 1.0;
    base.avgPowerW = 50.0;
    base.energyJ = 10.0;
    base.edProduct = 100.0;
    SimResults exp = base;
    exp.ipc = 0.95;
    exp.avgPowerW = 40.0;
    exp.energyJ = 8.0;
    exp.edProduct = 90.0;

    RelativeMetrics m = RelativeMetrics::compute(base, exp);
    EXPECT_NEAR(m.speedup, 0.95, 1e-12);
    EXPECT_NEAR(m.powerSavings, 20.0, 1e-12);
    EXPECT_NEAR(m.energySavings, 20.0, 1e-12);
    EXPECT_NEAR(m.edImprovement, 10.0, 1e-12);
}

TEST(Harness, BenchmarkListMatchesTable2)
{
    const auto &b = Harness::benchmarks();
    ASSERT_EQ(b.size(), 8u);
    EXPECT_EQ(b.front(), "compress");
    EXPECT_EQ(b.back(), "twolf");
}

TEST(Harness, BaselineIsCached)
{
    SimConfig base;
    base.maxInstructions = 10'000;
    base.warmupInstructions = 2'000;
    Harness h(base);
    const SimResults &a = h.baseline("twolf");
    const SimResults &b = h.baseline("twolf");
    EXPECT_EQ(&a, &b) << "baseline must be simulated once";
}

TEST(Harness, RelativeMetricsForExperiment)
{
    SimConfig base;
    base.maxInstructions = 15'000;
    base.warmupInstructions = 3'000;
    Harness h(base);
    RelativeMetrics m = h.relative("go", Experiment::byName("A6"));
    // A6 (stall fetch on any low confidence) must save power at some
    // performance cost.
    EXPECT_GT(m.powerSavings, 0.0);
    EXPECT_LT(m.speedup, 1.0);
}

TEST(Harness, AverageMetrics)
{
    std::vector<std::pair<std::string, RelativeMetrics>> rows;
    RelativeMetrics a;
    a.speedup = 0.9;
    a.powerSavings = 10.0;
    a.energySavings = 6.0;
    a.edImprovement = 2.0;
    RelativeMetrics b;
    b.speedup = 1.0;
    b.powerSavings = 20.0;
    b.energySavings = 8.0;
    b.edImprovement = 4.0;
    rows.emplace_back("x", a);
    rows.emplace_back("y", b);
    RelativeMetrics avg = averageMetrics(rows);
    EXPECT_NEAR(avg.speedup, 0.95, 1e-12);
    EXPECT_NEAR(avg.powerSavings, 15.0, 1e-12);
    EXPECT_NEAR(avg.energySavings, 7.0, 1e-12);
    EXPECT_NEAR(avg.edImprovement, 3.0, 1e-12);
}

TEST(Simulator, CustomProfileOverridesBenchmark)
{
    BenchmarkProfile p;
    p.name = "custom-unit";
    p.numBlocks = 64;
    p.numFuncs = 8;
    p.seed = 3;
    SimConfig cfg;
    cfg.customProfile = p;
    cfg.maxInstructions = 10'000;
    cfg.warmupInstructions = 2'000;
    SimResults r = Simulator(cfg).run();
    EXPECT_GE(r.core.committedInsts, 10'000u);
}

TEST(Simulator, SharedProgramCacheReturnsSameProgram)
{
    auto a = Simulator::programFor("gcc");
    auto b = Simulator::programFor("gcc");
    EXPECT_EQ(a.get(), b.get());
}

TEST(Simulator, ConfKindNames)
{
    EXPECT_STREQ(confKindName(ConfKind::None), "none");
    EXPECT_STREQ(confKindName(ConfKind::Bpru), "bpru");
    EXPECT_STREQ(confKindName(ConfKind::Jrs), "jrs");
    EXPECT_STREQ(confKindName(ConfKind::Perfect), "perfect");
}
