/**
 * @file
 * Unit tests for the common substrate: saturating counters, RNG,
 * bit utilities, statistics and the table formatter.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/bitutil.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stsim;

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 3);
    EXPECT_EQ(c.value(), 3u);
    c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.isMax());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 0);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(c.isMin());
}

TEST(SatCounter, TakenThreshold)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.isTaken()); // 0
    c.increment();
    EXPECT_FALSE(c.isTaken()); // 1
    c.increment();
    EXPECT_TRUE(c.isTaken()); // 2
    c.increment();
    EXPECT_TRUE(c.isTaken()); // 3
}

TEST(SatCounter, WeakStates2Bit)
{
    EXPECT_FALSE(SatCounter(2, 0).isWeak());
    EXPECT_TRUE(SatCounter(2, 1).isWeak());
    EXPECT_TRUE(SatCounter(2, 2).isWeak());
    EXPECT_FALSE(SatCounter(2, 3).isWeak());
}

TEST(SatCounter, WiderCounters)
{
    SatCounter c(4, 0);
    EXPECT_EQ(c.maxValue(), 15u);
    for (int i = 0; i < 100; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 15u);
    c.set(12);
    EXPECT_EQ(c.value(), 12u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, InitialValueClamped)
{
    SatCounter c(3, 200);
    EXPECT_EQ(c.value(), 7u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.between(3, 6));
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(*seen.begin(), 3u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(BitUtil, PowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(32768), 15u);
    EXPECT_EQ(floorLog2(33000), 15u);
    EXPECT_EQ(ceilLog2(33000), 16u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(BitUtil, LowMask)
{
    EXPECT_EQ(lowMask(0), 0ull);
    EXPECT_EQ(lowMask(4), 0xFull);
    EXPECT_EQ(lowMask(64), ~0ull);
}

TEST(RunningStat, Aggregates)
{
    RunningStat s;
    s.sample(1.0);
    s.sample(3.0);
    s.sample(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndClamp)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(99); // clamps to last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(StatSet, InsertGetOverwrite)
{
    StatSet s;
    s.set("a", 1.0);
    s.set("b", 2.0);
    s.set("a", 3.0);
    EXPECT_TRUE(s.has("a"));
    EXPECT_FALSE(s.has("c"));
    EXPECT_DOUBLE_EQ(s.get("a"), 3.0);
    EXPECT_DOUBLE_EQ(s.getOr("c", -1.0), -1.0);
    EXPECT_EQ(s.size(), 2u);
}

TEST(StatSet, PrintsInsertionOrder)
{
    StatSet s;
    s.set("z", 1);
    s.set("a", 2);
    std::ostringstream os;
    s.print(os);
    EXPECT_EQ(os.str(), "z 1\na 2\n");
}

TEST(TextTable, FormatsAligned)
{
    TextTable t({"col", "x"});
    t.addRow({"a", "1"});
    t.addRow({"long-cell", "2"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| a         | 1 |"), std::string::npos);
    EXPECT_NE(out.find("| long-cell | 2 |"), std::string::npos);
}

TEST(TextTable, NumAndPct)
{
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::pct(12.345, 1), "12.3%");
}
