/**
 * @file
 * In-process SimServer tests: a real server on a Unix socket in a
 * temp dir, driven by raw client sockets through the serve/net.hh
 * helpers. Covers the protocol round-trip (served results must be
 * byte-identical to a direct Simulator run), structured error replies
 * for garbage/oversize/too-large frames, admission-queue load
 * shedding, deadline cancellation, graceful drain, and mid-job client
 * disconnect.
 *
 * The Isolated* tests run the same server with --isolate semantics:
 * real `stsim_runner serve-worker` subprocesses (path baked in via
 * STSIM_RUNNER_PATH), including workers that SIGSEGV mid-job through
 * the STSIM_TEST_CRASH_ON_JOB hook -- crash containment, supervised
 * respawn, and poison-job quarantine are asserted end to end.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/experiment.hh"
#include "core/job_serde.hh"
#include "dist/host_launcher.hh"
#include "core/parallel_harness.hh"
#include "core/simulator.hh"
#include "serve/net.hh"
#include "serve/server.hh"

using namespace stsim;

namespace
{

/** Self-deleting scratch directory for the Unix socket. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/stsim_serve_test_XXXXXX";
        char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        path = d ? d : "";
    }

    ~TempDir()
    {
        if (!path.empty()) {
            std::string cmd = "rm -rf '" + path + "'";
            int rc = std::system(cmd.c_str());
            (void)rc;
        }
    }

    std::string sock() const { return path + "/serve.sock"; }
};

SimJob
tinyJob(std::uint64_t insts = 8'000, std::uint64_t warmup = 2'000)
{
    SimJob j;
    j.cfg.maxInstructions = insts;
    j.cfg.warmupInstructions = warmup;
    j.cfg.benchmark = "go";
    Experiment::byName("baseline").applyTo(j.cfg);
    j.experiment = "baseline";
    return j;
}

/** A request frame: the manifest record plus id/deadline fields. */
std::string
requestFrame(const SimJob &j, std::uint64_t id,
             std::uint64_t deadlineMs = 0)
{
    std::string rec = serde::toJson(j); // {"experiment":...,"cfg":...}
    std::string out = "{\"id\":" + std::to_string(id) + ",";
    if (deadlineMs)
        out += "\"deadlineMs\":" + std::to_string(deadlineMs) + ",";
    out += rec.substr(1);
    out += '\n';
    return out;
}

/** Blocking line-framed client on the server's Unix socket. */
struct Client
{
    int fd = -1;
    serve::LineReader reader;

    explicit Client(const std::string &sockPath, std::size_t maxLine =
                                                     1 << 20)
        : reader(-1, maxLine)
    {
        std::string err;
        fd = serve::connectUnix(sockPath, &err);
        EXPECT_GE(fd, 0) << err;
        reader = serve::LineReader(fd, maxLine);
    }

    ~Client()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void
    send(const std::string &frame)
    {
        std::string err;
        ASSERT_TRUE(serve::sendAll(fd, frame, &err)) << err;
    }

    /** Next reply line; fails the test on EOF/error. */
    std::string
    readLine()
    {
        std::string line;
        serve::LineStatus st = reader.next(line);
        EXPECT_EQ(st, serve::LineStatus::Line);
        return line;
    }

    /** Drain replies until orderly EOF. */
    std::vector<std::string>
    readUntilEof()
    {
        std::vector<std::string> lines;
        for (;;) {
            std::string line;
            serve::LineStatus st = reader.next(line);
            if (st == serve::LineStatus::Line) {
                lines.push_back(std::move(line));
                continue;
            }
            EXPECT_EQ(st, serve::LineStatus::Eof);
            break;
        }
        return lines;
    }
};

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Scoped environment variable: set on entry, unset on exit. */
struct EnvGuard
{
    std::string key;

    EnvGuard(const char *k, const char *v) : key(k)
    {
        ::setenv(k, v, 1);
    }

    ~EnvGuard() { ::unsetenv(key.c_str()); }
};

/** ServeOptions routed through the out-of-process worker fleet. */
serve::ServeOptions
isolatedOptions(const TempDir &dir, unsigned workers)
{
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = workers;
    opts.isolate = true;
    opts.runnerPath = STSIM_RUNNER_PATH;
    return opts;
}

} // namespace

TEST(Serve, PingPong)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    serve::SimServer server(opts);
    server.start();

    Client c(dir.sock());
    c.send("{\"op\":\"ping\",\"id\":41}\n");
    EXPECT_EQ(c.readLine(), "{\"pong\":41}");

    server.beginDrain();
    server.waitDrained();
}

TEST(Serve, ServedResultIsByteIdenticalToDirectRun)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 2;
    serve::SimServer server(opts);
    server.start();

    SimJob j = tinyJob();
    Client c(dir.sock());
    c.send(requestFrame(j, 7));
    std::string reply = c.readLine();

    SimResults direct = Simulator(j.cfg).run();
    direct.experiment = j.experiment;
    EXPECT_EQ(reply, serde::resultRecordToJson(7, direct));

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().completed.load(), 1u);
}

TEST(Serve, GarbageAndBadRequestsGetStructuredErrors)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    serve::SimServer server(opts);
    server.start();

    Client c(dir.sock());
    c.send("this is not json\n");
    EXPECT_TRUE(startsWith(c.readLine(), "{\"error\":\"parse\""));

    c.send("{\"op\":\"reboot\"}\n");
    EXPECT_TRUE(startsWith(c.readLine(), "{\"error\":\"parse\""));

    // Well-formed frame, hostile config: unknown benchmark names fatal
    // deep inside config validation; the server must answer, not die.
    SimJob j = tinyJob();
    std::string frame = requestFrame(j, 3);
    std::size_t at = frame.find("\"go\"");
    ASSERT_NE(at, std::string::npos);
    frame.replace(at, 4, "\"no_such_benchmark\"");
    c.send(frame);
    std::string reply = c.readLine();
    EXPECT_TRUE(startsWith(reply, "{\"error\":\"bad_request\"")) << reply;
    EXPECT_NE(reply.find("\"id\":3"), std::string::npos);

    // The connection survived all of the above.
    c.send("{\"op\":\"ping\",\"id\":1}\n");
    EXPECT_EQ(c.readLine(), "{\"pong\":1}");

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().parseErrors.load(), 2u);
    EXPECT_EQ(server.stats().badRequests.load(), 1u);
}

TEST(Serve, OversizeFrameIsDiscardedNotBuffered)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    opts.maxLineBytes = 256;
    serve::SimServer server(opts);
    server.start();

    Client c(dir.sock());
    std::string big(4096, 'a');
    big += '\n';
    c.send(big);
    EXPECT_TRUE(startsWith(c.readLine(), "{\"error\":\"oversize\""));

    // Framing stays intact after the discard.
    c.send("{\"op\":\"ping\",\"id\":2}\n");
    EXPECT_EQ(c.readLine(), "{\"pong\":2}");

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().oversize.load(), 1u);
}

TEST(Serve, TooLargeJobIsRejectedUpFront)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    opts.maxJobInstructions = 1'000;
    serve::SimServer server(opts);
    server.start();

    Client c(dir.sock());
    c.send(requestFrame(tinyJob(), 9)); // 8k insts > the 1k cap
    std::string reply = c.readLine();
    EXPECT_TRUE(startsWith(reply, "{\"error\":\"too_large\"")) << reply;

    server.beginDrain();
    server.waitDrained();
}

TEST(Serve, OverloadShedsWithBusyNotUnboundedMemory)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    opts.queueCapacity = 1;
    serve::SimServer server(opts);
    server.start();

    // First job occupies the single admission slot; the second must be
    // shed immediately with `busy` while the first still runs.
    Client c(dir.sock());
    c.send(requestFrame(tinyJob(2'000'000, 0), 1));
    c.send(requestFrame(tinyJob(), 2));

    std::string first = c.readLine();
    std::string second = c.readLine();
    // Replies may reorder: the busy shed is immediate, the result slow.
    EXPECT_TRUE(startsWith(first, "{\"error\":\"busy\"")) << first;
    EXPECT_TRUE(startsWith(second, "{\"index\":1,")) << second;

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().busy.load(), 1u);
    EXPECT_EQ(server.stats().completed.load(), 1u);
}

TEST(Serve, DeadlineCancelsLongJob)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    serve::SimServer server(opts);
    server.start();

    Client c(dir.sock());
    c.send(requestFrame(tinyJob(500'000'000, 0), 11, /*deadlineMs=*/40));
    std::string reply = c.readLine();
    EXPECT_TRUE(startsWith(reply, "{\"error\":\"deadline\"")) << reply;
    EXPECT_NE(reply.find("\"id\":11"), std::string::npos);

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().deadlineCancelled.load(), 1u);
}

TEST(Serve, AbsurdDeadlineIsSaturatedNotWrapped)
{
    // deadlineMs = 2^64-1: unsaturated, now() + milliseconds(dl)
    // overflows the signed chrono rep and wraps the deadline into the
    // past, instantly cancelling the job as "deadline expired". It
    // must behave like "no meaningful deadline" and just complete.
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    serve::SimServer server(opts);
    server.start();

    Client c(dir.sock());
    c.send(requestFrame(tinyJob(), 21,
                        /*deadlineMs=*/UINT64_MAX));
    std::string reply = c.readLine();
    EXPECT_TRUE(startsWith(reply, "{\"index\":21,")) << reply;

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().completed.load(), 1u);
    EXPECT_EQ(server.stats().deadlineCancelled.load(), 0u);
}

TEST(Serve, DrainRejectsNewWorkAnswersInFlightAndCompletes)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    opts.drainGraceMs = 300;
    serve::SimServer server(opts);
    server.start();

    Client c(dir.sock());
    c.send(requestFrame(tinyJob(50'000'000, 0), 21));
    // Give the reader time to admit the job so the drain sees it
    // in-flight rather than never-sent.
    ::usleep(50'000);
    server.beginDrain();
    c.send(requestFrame(tinyJob(), 22));

    // The in-flight job either finishes inside the grace window or is
    // cancelled at its end; the post-drain frame must be refused. The
    // server closes the connection once drained, so read to EOF.
    std::vector<std::string> lines = c.readUntilEof();
    ASSERT_EQ(lines.size(), 2u);
    bool sawDraining = false, sawAnswer = false;
    for (const std::string &l : lines) {
        if (startsWith(l, "{\"error\":\"draining\""))
            sawDraining = true;
        else if (startsWith(l, "{\"index\":21,") ||
                 startsWith(l, "{\"error\":\"cancelled\""))
            sawAnswer = true;
    }
    EXPECT_TRUE(sawDraining);
    EXPECT_TRUE(sawAnswer);

    server.waitDrained();
}

TEST(Serve, DisconnectCancelsThatClientsJobs)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    serve::SimServer server(opts);
    server.start();

    {
        Client c(dir.sock());
        c.send(requestFrame(tinyJob(500'000'000, 0), 31));
        ::usleep(50'000); // let the job start
        // Client vanishes mid-job: ~Client closes the socket.
    }

    // Drain must complete promptly: the disconnect cancelled the job,
    // so nothing holds the worker for the full 500M instructions.
    server.beginDrain();
    server.waitDrained();
    EXPECT_GE(server.stats().disconnectCancelled.load(), 1u);
}

TEST(Serve, RepliesCorrelateById)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 4;
    opts.queueCapacity = 16;
    serve::SimServer server(opts);
    server.start();

    Client c(dir.sock());
    const int n = 8;
    for (int i = 0; i < n; ++i)
        c.send(requestFrame(tinyJob(), 100 + i));

    std::vector<bool> seen(n, false);
    for (int i = 0; i < n; ++i) {
        std::string reply = c.readLine();
        std::uint64_t id = serde::resultRecordIndex(reply);
        ASSERT_GE(id, 100u);
        ASSERT_LT(id, 100u + n);
        EXPECT_FALSE(seen[id - 100]) << "duplicate reply id " << id;
        seen[id - 100] = true;
    }

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().completed.load(),
              static_cast<std::uint64_t>(n));
}

TEST(Serve, HealthReportsStats)
{
    TempDir dir;
    serve::ServeOptions opts;
    opts.unixPath = dir.sock();
    opts.workers = 1;
    serve::SimServer server(opts);
    server.start();

    Client c(dir.sock());
    c.send("{\"op\":\"health\",\"id\":5}\n");
    std::string reply = c.readLine();
    EXPECT_TRUE(startsWith(reply, "{\"health\":5,")) << reply;
    EXPECT_NE(reply.find("\"isolate\":false"), std::string::npos)
        << reply;
    // No fleet in-process: the health record must say so by omission.
    EXPECT_EQ(reply.find("\"fleet\""), std::string::npos) << reply;

    server.beginDrain();
    server.waitDrained();
}

// ---------------------------------------------------------------------------
// Process isolation (--isolate): real serve-worker subprocesses
// ---------------------------------------------------------------------------

TEST(Serve, IsolatedResultIsByteIdenticalToDirectRun)
{
    TempDir dir;
    serve::SimServer server(isolatedOptions(dir, 2));
    server.start();

    SimJob j = tinyJob();
    Client c(dir.sock());
    c.send(requestFrame(j, 7));
    std::string reply = c.readLine();

    SimResults direct = Simulator(j.cfg).run();
    direct.experiment = j.experiment;
    EXPECT_EQ(reply, serde::resultRecordToJson(7, direct));

    // Health reports the fleet: two live workers, no restarts yet.
    c.send("{\"op\":\"health\",\"id\":8}\n");
    std::string health = c.readLine();
    EXPECT_TRUE(startsWith(health, "{\"health\":8,")) << health;
    EXPECT_NE(health.find("\"isolate\":true"), std::string::npos)
        << health;
    EXPECT_NE(health.find("\"fleet\":{\"workers\":2,"
                          "\"restarts_total\":0"),
              std::string::npos)
        << health;

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().completed.load(), 1u);
}

TEST(Serve, IsolatedWorkerCrashBecomesStructuredInternalError)
{
    // The crash hook makes a worker SIGSEGV on any job whose
    // experiment name contains the marker. With the poison threshold
    // out of reach, exhausting --job-attempts must answer `internal`
    // -- and the daemon, its other connections, and the next valid
    // job must be completely unaffected.
    EnvGuard crash(dist::kTestCrashOnJobEnv, "killer");
    TempDir dir;
    serve::ServeOptions opts = isolatedOptions(dir, 2);
    opts.jobAttempts = 2;
    opts.poisonThreshold = 100; // never quarantine in this test
    serve::SimServer server(opts);
    server.start();

    SimJob poison = tinyJob();
    poison.experiment = "baseline-killer";
    Client c(dir.sock());
    c.send(requestFrame(poison, 41));
    std::string reply = c.readLine();
    EXPECT_TRUE(startsWith(reply, "{\"error\":\"internal\"")) << reply;
    EXPECT_NE(reply.find("\"id\":41"), std::string::npos) << reply;

    // Crash containment: a valid job right after is served and stays
    // byte-identical to the direct run.
    SimJob good = tinyJob();
    c.send(requestFrame(good, 42));
    std::string served = c.readLine();
    SimResults direct = Simulator(good.cfg).run();
    direct.experiment = good.experiment;
    EXPECT_EQ(served, serde::resultRecordToJson(42, direct));

    // The two worker deaths are visible as supervised restarts.
    c.send("{\"op\":\"health\",\"id\":43}\n");
    std::string health = c.readLine();
    std::size_t at = health.find("\"restarts_total\":");
    ASSERT_NE(at, std::string::npos) << health;
    long restarts =
        std::strtol(health.c_str() + at + 17, nullptr, 10);
    EXPECT_GE(restarts, 2) << health;

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().internalErrors.load(), 1u);
    EXPECT_EQ(server.stats().completed.load(), 1u);
}

TEST(Serve, IsolatedPoisonJobIsQuarantined)
{
    EnvGuard crash(dist::kTestCrashOnJobEnv, "killer");
    TempDir dir;
    serve::ServeOptions opts = isolatedOptions(dir, 2);
    opts.jobAttempts = 6;
    opts.poisonThreshold = 2;
    serve::SimServer server(opts);
    server.start();

    SimJob poison = tinyJob();
    poison.experiment = "baseline-killer";
    Client c(dir.sock());
    c.send(requestFrame(poison, 51));
    std::string reply = c.readLine();
    EXPECT_TRUE(startsWith(reply, "{\"error\":\"poison\"")) << reply;
    EXPECT_NE(reply.find("consecutive workers"), std::string::npos)
        << reply;

    // Resending the same job must be refused from the quarantine set
    // without ever touching a worker again.
    c.send(requestFrame(poison, 52));
    reply = c.readLine();
    EXPECT_TRUE(startsWith(reply, "{\"error\":\"poison\"")) << reply;
    EXPECT_NE(reply.find("quarantined"), std::string::npos) << reply;

    // The identical cfg under its real experiment name is a different
    // fingerprint: still served, still byte-identical.
    SimJob good = tinyJob();
    c.send(requestFrame(good, 53));
    std::string served = c.readLine();
    SimResults direct = Simulator(good.cfg).run();
    direct.experiment = good.experiment;
    EXPECT_EQ(served, serde::resultRecordToJson(53, direct));

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().poisonRejected.load(), 2u);
    EXPECT_EQ(server.stats().completed.load(), 1u);
}

TEST(Serve, IsolatedDeadlineKillsTheWorkerMidJob)
{
    // Deadline semantics survive isolation: the fleet SIGKILLs the
    // executing worker at the deadline and the client still gets the
    // structured `deadline` error; the respawned worker then serves
    // the next job normally.
    TempDir dir;
    serve::SimServer server(isolatedOptions(dir, 1));
    server.start();

    Client c(dir.sock());
    c.send(requestFrame(tinyJob(500'000'000, 0), 61,
                        /*deadlineMs=*/40));
    std::string reply = c.readLine();
    EXPECT_TRUE(startsWith(reply, "{\"error\":\"deadline\"")) << reply;
    EXPECT_NE(reply.find("\"id\":61"), std::string::npos) << reply;

    SimJob good = tinyJob();
    c.send(requestFrame(good, 62));
    std::string served = c.readLine();
    SimResults direct = Simulator(good.cfg).run();
    direct.experiment = good.experiment;
    EXPECT_EQ(served, serde::resultRecordToJson(62, direct));

    server.beginDrain();
    server.waitDrained();
    EXPECT_EQ(server.stats().deadlineCancelled.load(), 1u);
    EXPECT_EQ(server.stats().completed.load(), 1u);
}
