/**
 * @file
 * Unit tests for the Selective Throttling policy engine and the
 * speculation controller (incl. Pipeline Gating).
 */

#include <gtest/gtest.h>

#include "throttle/controller.hh"
#include "throttle/policy.hh"

using namespace stsim;

TEST(Bandwidth, ActiveCycles)
{
    EXPECT_TRUE(bandwidthActive(BandwidthLevel::Full, 0));
    EXPECT_TRUE(bandwidthActive(BandwidthLevel::Full, 3));
    EXPECT_TRUE(bandwidthActive(BandwidthLevel::Half, 0));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Half, 1));
    EXPECT_TRUE(bandwidthActive(BandwidthLevel::Quarter, 4));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Quarter, 5));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Quarter, 7));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Stall, 0));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Stall, 12345));
}

TEST(Bandwidth, HalfMeansEveryOtherCycle)
{
    int active = 0;
    for (Cycle c = 0; c < 100; ++c)
        active += bandwidthActive(BandwidthLevel::Half, c);
    EXPECT_EQ(active, 50);
}

TEST(Bandwidth, QuarterMeansOneInFour)
{
    int active = 0;
    for (Cycle c = 0; c < 100; ++c)
        active += bandwidthActive(BandwidthLevel::Quarter, c);
    EXPECT_EQ(active, 25);
}

TEST(Bandwidth, RestrictionOrdering)
{
    EXPECT_EQ(maxRestriction(BandwidthLevel::Full,
                             BandwidthLevel::Half),
              BandwidthLevel::Half);
    EXPECT_EQ(maxRestriction(BandwidthLevel::Stall,
                             BandwidthLevel::Quarter),
              BandwidthLevel::Stall);
}

TEST(Policy, PaperExperimentDefinitions)
{
    // A5: LC fetch/4, VLC fetch stall.
    ThrottlePolicy a5 = ThrottlePolicy::byName("A5");
    EXPECT_EQ(a5.action(ConfLevel::LC).fetch, BandwidthLevel::Quarter);
    EXPECT_EQ(a5.action(ConfLevel::VLC).fetch, BandwidthLevel::Stall);
    EXPECT_FALSE(a5.action(ConfLevel::LC).noSelect);
    EXPECT_TRUE(a5.action(ConfLevel::VHC).isNull());
    EXPECT_TRUE(a5.action(ConfLevel::HC).isNull());

    // C2 = A5 + no-select on LC (the headline configuration).
    ThrottlePolicy c2 = ThrottlePolicy::byName("C2");
    EXPECT_EQ(c2.action(ConfLevel::LC).fetch, BandwidthLevel::Quarter);
    EXPECT_TRUE(c2.action(ConfLevel::LC).noSelect);
    EXPECT_EQ(c2.action(ConfLevel::VLC).fetch, BandwidthLevel::Stall);

    // B3: decode stall on LC, fetch untouched on LC.
    ThrottlePolicy b3 = ThrottlePolicy::byName("B3");
    EXPECT_EQ(b3.action(ConfLevel::LC).fetch, BandwidthLevel::Full);
    EXPECT_EQ(b3.action(ConfLevel::LC).decode, BandwidthLevel::Stall);
}

TEST(Policy, AllNamedExperimentsResolve)
{
    for (const auto &name : ThrottlePolicy::experimentNames())
        EXPECT_NO_FATAL_FAILURE(ThrottlePolicy::byName(name));
    EXPECT_EQ(ThrottlePolicy::experimentNames().size(), 20u);
}

TEST(Policy, BaselineIsNull)
{
    EXPECT_TRUE(ThrottlePolicy::byName("baseline").isNull());
}

namespace
{

SpeculationController
makeSelective(const std::string &policy)
{
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::Selective;
    cfg.policy = ThrottlePolicy::byName(policy);
    return SpeculationController(cfg);
}

} // namespace

TEST(Controller, NoneModeNeverGates)
{
    SpeculationController c{SpecControlConfig{}};
    c.onCondBranchFetched(1, ConfLevel::VLC);
    EXPECT_TRUE(c.fetchActive(0));
    EXPECT_TRUE(c.fetchActive(1));
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
}

TEST(Controller, VlcStallsFetchUntilResolved)
{
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::VLC);
    EXPECT_FALSE(c.fetchActive(0));
    EXPECT_FALSE(c.fetchActive(3));
    c.onBranchResolved(10);
    EXPECT_TRUE(c.fetchActive(0));
}

TEST(Controller, LcQuarterThrottle)
{
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::LC);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Quarter);
    EXPECT_TRUE(c.fetchActive(0));
    EXPECT_FALSE(c.fetchActive(1));
}

TEST(Controller, HighConfidenceTriggersNothing)
{
    auto c = makeSelective("C2");
    c.onCondBranchFetched(10, ConfLevel::VHC);
    c.onCondBranchFetched(11, ConfLevel::HC);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Full);
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
}

TEST(Controller, MonotonicUpgradeRule)
{
    // 4.2: a later LC/VLC branch may tighten the heuristic, and
    // resolving the tighter branch falls back to the looser one.
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::LC);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Quarter);
    c.onCondBranchFetched(11, ConfLevel::VLC);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Stall);
    c.onBranchResolved(11);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Quarter);
    c.onBranchResolved(10);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Full);
}

TEST(Controller, NoSelectBarrierIsOldestNoSelectBranch)
{
    auto c = makeSelective("C2"); // LC carries no-select
    c.onCondBranchFetched(10, ConfLevel::HC);
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
    c.onCondBranchFetched(20, ConfLevel::LC);
    c.onCondBranchFetched(30, ConfLevel::LC);
    EXPECT_EQ(c.noSelectBarrier(), 20u);
    c.onBranchResolved(20);
    EXPECT_EQ(c.noSelectBarrier(), 30u);
    c.onBranchResolved(30);
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
}

TEST(Controller, VlcDoesNotSetNoSelectInC2)
{
    // The paper's C2 legend attaches noselect to LC only.
    auto c = makeSelective("C2");
    c.onCondBranchFetched(10, ConfLevel::VLC);
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Stall);
}

TEST(Controller, SquashDropsYoungerTracked)
{
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::LC);
    c.onCondBranchFetched(20, ConfLevel::VLC);
    c.onCondBranchFetched(30, ConfLevel::VLC);
    c.squashYoungerThan(15);
    EXPECT_EQ(c.outstanding(), 1u);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Quarter); // LC remains
}

TEST(Controller, ResolveUnknownSeqIsIgnored)
{
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::LC);
    c.onBranchResolved(999);
    EXPECT_EQ(c.outstanding(), 1u);
}

TEST(Controller, DecodeThrottling)
{
    auto c = makeSelective("B3"); // LC: decode stall
    c.onCondBranchFetched(10, ConfLevel::LC);
    EXPECT_TRUE(c.fetchActive(0));
    EXPECT_FALSE(c.decodeActive(0));
    c.onBranchResolved(10);
    EXPECT_TRUE(c.decodeActive(0));
}

TEST(PipelineGating, GatesAboveThreshold)
{
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::PipelineGating;
    cfg.gatingThreshold = 2;
    SpeculationController c(cfg);

    c.onCondBranchFetched(1, ConfLevel::LC);
    c.onCondBranchFetched(2, ConfLevel::LC);
    EXPECT_TRUE(c.fetchActive(0)) << "M == threshold: not gated";
    c.onCondBranchFetched(3, ConfLevel::LC);
    EXPECT_FALSE(c.fetchActive(0)) << "M > threshold: gated";
    c.onBranchResolved(1);
    EXPECT_TRUE(c.fetchActive(0));
}

TEST(PipelineGating, HighConfidenceDoesNotCount)
{
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::PipelineGating;
    cfg.gatingThreshold = 2;
    SpeculationController c(cfg);
    for (InstSeq s = 1; s <= 10; ++s)
        c.onCondBranchFetched(s, ConfLevel::HC);
    EXPECT_TRUE(c.fetchActive(0));
    EXPECT_EQ(c.lowConfOutstanding(), 0u);
}

TEST(PipelineGating, NeverTouchesDecodeOrSelect)
{
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::PipelineGating;
    SpeculationController c(cfg);
    for (InstSeq s = 1; s <= 5; ++s)
        c.onCondBranchFetched(s, ConfLevel::VLC);
    EXPECT_TRUE(c.decodeActive(0));
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
}

TEST(Controller, GatedCycleStats)
{
    auto c = makeSelective("A6"); // LC+VLC: fetch stall
    c.onCondBranchFetched(1, ConfLevel::LC);
    for (Cycle cyc = 0; cyc < 10; ++cyc)
        c.tickStats(cyc);
    EXPECT_EQ(c.fetchGatedCycles(), 10u);
    EXPECT_EQ(c.decodeGatedCycles(), 0u);
}

/** Property: for every named policy, LC is never more restrictive
 *  than VLC on the same stage (the paper's aggressiveness ordering). */
class PolicyOrdering : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PolicyOrdering, VlcAtLeastAsAggressiveAsLc)
{
    ThrottlePolicy p = ThrottlePolicy::byName(GetParam());
    const auto &lc = p.action(ConfLevel::LC);
    const auto &vlc = p.action(ConfLevel::VLC);
    EXPECT_GE(static_cast<int>(maxRestriction(lc.fetch, vlc.fetch)),
              static_cast<int>(lc.fetch));
    EXPECT_EQ(maxRestriction(lc.fetch, vlc.fetch), vlc.fetch)
        << "VLC fetch response must dominate LC's";
}

INSTANTIATE_TEST_SUITE_P(
    AllFetchPolicies, PolicyOrdering,
    ::testing::Values("A1", "A2", "A3", "A4", "A5", "A6", "C1", "C2"));
