/**
 * @file
 * Unit tests for the Selective Throttling policy engine and the
 * speculation controller (incl. Pipeline Gating).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "throttle/controller.hh"
#include "throttle/policy.hh"

using namespace stsim;

TEST(Bandwidth, ActiveCycles)
{
    EXPECT_TRUE(bandwidthActive(BandwidthLevel::Full, 0));
    EXPECT_TRUE(bandwidthActive(BandwidthLevel::Full, 3));
    EXPECT_TRUE(bandwidthActive(BandwidthLevel::Half, 0));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Half, 1));
    EXPECT_TRUE(bandwidthActive(BandwidthLevel::Quarter, 4));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Quarter, 5));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Quarter, 7));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Stall, 0));
    EXPECT_FALSE(bandwidthActive(BandwidthLevel::Stall, 12345));
}

TEST(Bandwidth, HalfMeansEveryOtherCycle)
{
    int active = 0;
    for (Cycle c = 0; c < 100; ++c)
        active += bandwidthActive(BandwidthLevel::Half, c);
    EXPECT_EQ(active, 50);
}

TEST(Bandwidth, QuarterMeansOneInFour)
{
    int active = 0;
    for (Cycle c = 0; c < 100; ++c)
        active += bandwidthActive(BandwidthLevel::Quarter, c);
    EXPECT_EQ(active, 25);
}

TEST(Bandwidth, RestrictionOrdering)
{
    EXPECT_EQ(maxRestriction(BandwidthLevel::Full,
                             BandwidthLevel::Half),
              BandwidthLevel::Half);
    EXPECT_EQ(maxRestriction(BandwidthLevel::Stall,
                             BandwidthLevel::Quarter),
              BandwidthLevel::Stall);
}

TEST(Policy, PaperExperimentDefinitions)
{
    // A5: LC fetch/4, VLC fetch stall.
    ThrottlePolicy a5 = ThrottlePolicy::byName("A5");
    EXPECT_EQ(a5.action(ConfLevel::LC).fetch, BandwidthLevel::Quarter);
    EXPECT_EQ(a5.action(ConfLevel::VLC).fetch, BandwidthLevel::Stall);
    EXPECT_FALSE(a5.action(ConfLevel::LC).noSelect);
    EXPECT_TRUE(a5.action(ConfLevel::VHC).isNull());
    EXPECT_TRUE(a5.action(ConfLevel::HC).isNull());

    // C2 = A5 + no-select on LC (the headline configuration).
    ThrottlePolicy c2 = ThrottlePolicy::byName("C2");
    EXPECT_EQ(c2.action(ConfLevel::LC).fetch, BandwidthLevel::Quarter);
    EXPECT_TRUE(c2.action(ConfLevel::LC).noSelect);
    EXPECT_EQ(c2.action(ConfLevel::VLC).fetch, BandwidthLevel::Stall);

    // B3: decode stall on LC, fetch untouched on LC.
    ThrottlePolicy b3 = ThrottlePolicy::byName("B3");
    EXPECT_EQ(b3.action(ConfLevel::LC).fetch, BandwidthLevel::Full);
    EXPECT_EQ(b3.action(ConfLevel::LC).decode, BandwidthLevel::Stall);
}

TEST(Policy, AllNamedExperimentsResolve)
{
    for (const auto &name : ThrottlePolicy::experimentNames())
        EXPECT_NO_FATAL_FAILURE(ThrottlePolicy::byName(name));
    EXPECT_EQ(ThrottlePolicy::experimentNames().size(), 20u);
}

TEST(Policy, BaselineIsNull)
{
    EXPECT_TRUE(ThrottlePolicy::byName("baseline").isNull());
}

namespace
{

SpeculationController
makeSelective(const std::string &policy)
{
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::Selective;
    cfg.policy = ThrottlePolicy::byName(policy);
    return SpeculationController(cfg);
}

} // namespace

TEST(Controller, NoneModeNeverGates)
{
    SpeculationController c{SpecControlConfig{}};
    c.onCondBranchFetched(1, ConfLevel::VLC);
    EXPECT_TRUE(c.fetchActive(0));
    EXPECT_TRUE(c.fetchActive(1));
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
}

TEST(Controller, VlcStallsFetchUntilResolved)
{
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::VLC);
    EXPECT_FALSE(c.fetchActive(0));
    EXPECT_FALSE(c.fetchActive(3));
    c.onBranchResolved(10);
    EXPECT_TRUE(c.fetchActive(0));
}

TEST(Controller, LcQuarterThrottle)
{
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::LC);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Quarter);
    EXPECT_TRUE(c.fetchActive(0));
    EXPECT_FALSE(c.fetchActive(1));
}

TEST(Controller, HighConfidenceTriggersNothing)
{
    auto c = makeSelective("C2");
    c.onCondBranchFetched(10, ConfLevel::VHC);
    c.onCondBranchFetched(11, ConfLevel::HC);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Full);
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
}

TEST(Controller, MonotonicUpgradeRule)
{
    // 4.2: a later LC/VLC branch may tighten the heuristic, and
    // resolving the tighter branch falls back to the looser one.
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::LC);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Quarter);
    c.onCondBranchFetched(11, ConfLevel::VLC);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Stall);
    c.onBranchResolved(11);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Quarter);
    c.onBranchResolved(10);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Full);
}

TEST(Controller, NoSelectBarrierIsOldestNoSelectBranch)
{
    auto c = makeSelective("C2"); // LC carries no-select
    c.onCondBranchFetched(10, ConfLevel::HC);
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
    c.onCondBranchFetched(20, ConfLevel::LC);
    c.onCondBranchFetched(30, ConfLevel::LC);
    EXPECT_EQ(c.noSelectBarrier(), 20u);
    c.onBranchResolved(20);
    EXPECT_EQ(c.noSelectBarrier(), 30u);
    c.onBranchResolved(30);
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
}

TEST(Controller, VlcDoesNotSetNoSelectInC2)
{
    // The paper's C2 legend attaches noselect to LC only.
    auto c = makeSelective("C2");
    c.onCondBranchFetched(10, ConfLevel::VLC);
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Stall);
}

TEST(Controller, SquashDropsYoungerTracked)
{
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::LC);
    c.onCondBranchFetched(20, ConfLevel::VLC);
    c.onCondBranchFetched(30, ConfLevel::VLC);
    c.squashYoungerThan(15);
    EXPECT_EQ(c.outstanding(), 1u);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Quarter); // LC remains
}

TEST(Controller, ResolveUnknownSeqIsIgnored)
{
    auto c = makeSelective("A5");
    c.onCondBranchFetched(10, ConfLevel::LC);
    c.onBranchResolved(999);
    EXPECT_EQ(c.outstanding(), 1u);
}

TEST(Controller, DecodeThrottling)
{
    auto c = makeSelective("B3"); // LC: decode stall
    c.onCondBranchFetched(10, ConfLevel::LC);
    EXPECT_TRUE(c.fetchActive(0));
    EXPECT_FALSE(c.decodeActive(0));
    c.onBranchResolved(10);
    EXPECT_TRUE(c.decodeActive(0));
}

TEST(PipelineGating, GatesAboveThreshold)
{
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::PipelineGating;
    cfg.gatingThreshold = 2;
    SpeculationController c(cfg);

    c.onCondBranchFetched(1, ConfLevel::LC);
    c.onCondBranchFetched(2, ConfLevel::LC);
    EXPECT_TRUE(c.fetchActive(0)) << "M == threshold: not gated";
    c.onCondBranchFetched(3, ConfLevel::LC);
    EXPECT_FALSE(c.fetchActive(0)) << "M > threshold: gated";
    c.onBranchResolved(1);
    EXPECT_TRUE(c.fetchActive(0));
}

TEST(PipelineGating, HighConfidenceDoesNotCount)
{
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::PipelineGating;
    cfg.gatingThreshold = 2;
    SpeculationController c(cfg);
    for (InstSeq s = 1; s <= 10; ++s)
        c.onCondBranchFetched(s, ConfLevel::HC);
    EXPECT_TRUE(c.fetchActive(0));
    EXPECT_EQ(c.lowConfOutstanding(), 0u);
}

TEST(PipelineGating, NeverTouchesDecodeOrSelect)
{
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::PipelineGating;
    SpeculationController c(cfg);
    for (InstSeq s = 1; s <= 5; ++s)
        c.onCondBranchFetched(s, ConfLevel::VLC);
    EXPECT_TRUE(c.decodeActive(0));
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
}

TEST(Controller, GatedCycleStats)
{
    auto c = makeSelective("A6"); // LC+VLC: fetch stall
    c.onCondBranchFetched(1, ConfLevel::LC);
    for (Cycle cyc = 0; cyc < 10; ++cyc)
        c.tickStats(cyc);
    EXPECT_EQ(c.fetchGatedCycles(), 10u);
    EXPECT_EQ(c.decodeGatedCycles(), 0u);
}

/** Property: for every named policy, LC is never more restrictive
 *  than VLC on the same stage (the paper's aggressiveness ordering). */
class PolicyOrdering : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PolicyOrdering, VlcAtLeastAsAggressiveAsLc)
{
    ThrottlePolicy p = ThrottlePolicy::byName(GetParam());
    const auto &lc = p.action(ConfLevel::LC);
    const auto &vlc = p.action(ConfLevel::VLC);
    EXPECT_GE(static_cast<int>(maxRestriction(lc.fetch, vlc.fetch)),
              static_cast<int>(lc.fetch));
    EXPECT_EQ(maxRestriction(lc.fetch, vlc.fetch), vlc.fetch)
        << "VLC fetch response must dominate LC's";
}

INSTANTIATE_TEST_SUITE_P(
    AllFetchPolicies, PolicyOrdering,
    ::testing::Values("A1", "A2", "A3", "A4", "A5", "A6", "C1", "C2"));

namespace
{

/**
 * Reference semantics for the incremental SpeculationController: the
 * original implementation's full rescan of every outstanding branch
 * on each event. The production controller must agree with this on
 * every derived output after every event.
 */
class ReferenceController
{
  public:
    explicit ReferenceController(const SpecControlConfig &cfg)
        : cfg_(cfg)
    {
    }

    void
    fetched(InstSeq seq, ConfLevel lvl)
    {
        if (cfg_.mode == SpecControlMode::None)
            return;
        tracked_.push_back({seq, lvl});
        recompute();
    }

    void
    resolved(InstSeq seq)
    {
        if (cfg_.mode == SpecControlMode::None)
            return;
        auto it = std::find_if(tracked_.begin(), tracked_.end(),
                               [seq](const auto &t) {
                                   return t.first == seq;
                               });
        if (it == tracked_.end())
            return;
        tracked_.erase(it);
        recompute();
    }

    void
    squashed(InstSeq seq)
    {
        if (cfg_.mode == SpecControlMode::None)
            return;
        while (!tracked_.empty() && tracked_.back().first > seq)
            tracked_.pop_back();
        recompute();
    }

    BandwidthLevel fetchLevel = BandwidthLevel::Full;
    BandwidthLevel decodeLevel = BandwidthLevel::Full;
    InstSeq noSelectBarrier = kInvalidSeq;
    InstSeq decodeBarrier = kInvalidSeq;
    std::size_t outstanding = 0;
    unsigned lowConf = 0;

  private:
    void
    recompute()
    {
        fetchLevel = BandwidthLevel::Full;
        decodeLevel = BandwidthLevel::Full;
        noSelectBarrier = kInvalidSeq;
        decodeBarrier = kInvalidSeq;
        outstanding = tracked_.size();
        lowConf = 0;
        for (const auto &[seq, lvl] : tracked_)
            if (isLowConfidence(lvl))
                ++lowConf;

        switch (cfg_.mode) {
          case SpecControlMode::None:
            return;
          case SpecControlMode::PipelineGating:
            if (lowConf > cfg_.gatingThreshold)
                fetchLevel = BandwidthLevel::Stall;
            return;
          case SpecControlMode::Selective:
            for (const auto &[seq, lvl] : tracked_) {
                const ThrottleAction &a = cfg_.policy.action(lvl);
                fetchLevel = maxRestriction(fetchLevel, a.fetch);
                decodeLevel = maxRestriction(decodeLevel, a.decode);
                if (a.noSelect && noSelectBarrier == kInvalidSeq)
                    noSelectBarrier = seq;
                if (a.decode != BandwidthLevel::Full &&
                    decodeBarrier == kInvalidSeq) {
                    decodeBarrier = seq;
                }
            }
            return;
        }
    }

    SpecControlConfig cfg_;
    std::vector<std::pair<InstSeq, ConfLevel>> tracked_;
};

/** Drive both controllers through one random fetch/resolve/squash
 *  stream, asserting equivalence after every event. */
void
runEquivalenceStream(const SpecControlConfig &cfg, std::uint64_t seed,
                     int events)
{
    SpeculationController c(cfg);
    ReferenceController ref(cfg);
    Rng rng(seed);
    std::vector<InstSeq> live; // outstanding seqs, ascending
    InstSeq next_seq = 1;

    auto check = [&](int step) {
        ASSERT_EQ(c.fetchLevel(), ref.fetchLevel) << "step " << step;
        ASSERT_EQ(c.decodeLevel(), ref.decodeLevel) << "step " << step;
        ASSERT_EQ(c.noSelectBarrier(), ref.noSelectBarrier)
            << "step " << step;
        ASSERT_EQ(c.decodeBarrier(), ref.decodeBarrier)
            << "step " << step;
        ASSERT_EQ(c.outstanding(), ref.outstanding) << "step " << step;
        ASSERT_EQ(c.lowConfOutstanding(), ref.lowConf)
            << "step " << step;
    };

    for (int i = 0; i < events; ++i) {
        std::uint64_t pick = rng.below(100);
        if (pick < 55 || live.empty()) {
            // Fetch a conditional branch with a random confidence
            // level and a (possibly gappy) ascending seq.
            next_seq += 1 + rng.below(7);
            auto lvl = static_cast<ConfLevel>(rng.below(4));
            c.onCondBranchFetched(next_seq, lvl);
            ref.fetched(next_seq, lvl);
            live.push_back(next_seq);
        } else if (pick < 85) {
            // Resolve a random outstanding branch (out of order), or
            // occasionally an unknown seq (must be ignored).
            InstSeq seq;
            if (rng.below(10) == 0) {
                seq = next_seq + 1000; // never tracked
            } else {
                std::size_t idx = rng.below(live.size());
                seq = live[idx];
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(idx));
            }
            c.onBranchResolved(seq);
            ref.resolved(seq);
        } else {
            // Squash somewhere in the live window (or above it).
            InstSeq seq = live.empty()
                              ? next_seq
                              : live[rng.below(live.size())];
            if (rng.below(4) == 0)
                seq += rng.below(20); // cut between tracked seqs
            c.squashYoungerThan(seq);
            ref.squashed(seq);
            live.erase(std::upper_bound(live.begin(), live.end(),
                                        seq),
                       live.end());
        }
        check(i);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

} // namespace

/** Randomized equivalence: the incremental controller matches the
 *  full-rescan reference on every output, for every named Selective
 *  policy, across long out-of-order event streams. */
class ControllerEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ControllerEquivalence, MatchesFullRescanReference)
{
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::Selective;
    cfg.policy = ThrottlePolicy::byName(GetParam());
    runEquivalenceStream(cfg, 0xC0FFEE ^ std::hash<std::string>{}(
                                             GetParam()),
                         6000);
}

INSTANTIATE_TEST_SUITE_P(
    AllNamedPolicies, ControllerEquivalence,
    ::testing::ValuesIn(ThrottlePolicy::experimentNames()));

TEST(ControllerEquivalence, PipelineGatingThresholds)
{
    for (unsigned threshold : {1u, 2u, 4u, 8u}) {
        SpecControlConfig cfg;
        cfg.mode = SpecControlMode::PipelineGating;
        cfg.gatingThreshold = threshold;
        runEquivalenceStream(cfg, 1234 + threshold, 6000);
    }
}

TEST(ControllerEquivalence, NoneModeStaysInert)
{
    SpecControlConfig cfg; // mode None
    runEquivalenceStream(cfg, 42, 2000);
}

TEST(ControllerEquivalence, StressRingGrowth)
{
    // Long monotone bursts with rare resolutions force the tracked
    // window and the seq-index ring through their growth paths.
    SpecControlConfig cfg;
    cfg.mode = SpecControlMode::Selective;
    cfg.policy = ThrottlePolicy::byName("C2");
    SpeculationController c(cfg);
    std::vector<InstSeq> live;
    Rng rng(7);
    InstSeq seq = 1;
    for (int i = 0; i < 3000; ++i) {
        seq += 1 + rng.below(3);
        c.onCondBranchFetched(seq, static_cast<ConfLevel>(
                                       rng.below(4)));
        live.push_back(seq);
        if (rng.below(100) < 3 && !live.empty()) {
            std::size_t idx = rng.below(live.size());
            c.onBranchResolved(live[idx]);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        }
    }
    EXPECT_EQ(c.outstanding(), live.size());
    // Drain everything; the controller must return to quiescence.
    for (InstSeq s : live)
        c.onBranchResolved(s);
    EXPECT_EQ(c.outstanding(), 0u);
    EXPECT_EQ(c.fetchLevel(), BandwidthLevel::Full);
    EXPECT_EQ(c.noSelectBarrier(), kInvalidSeq);
    EXPECT_EQ(c.decodeBarrier(), kInvalidSeq);
}
