/**
 * @file
 * Streaming-sink and shard-merge tests for the out-of-process
 * experiment engine: in-order JSONL/CSV commits, the bounded reorder
 * window (peak held results independent of matrix size), modulo-shard
 * execution merged back bit-for-bit against the in-process path, and
 * the sink-accepting Harness::runMatrix overload.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/harness.hh"
#include "core/job_serde.hh"
#include "core/parallel_harness.hh"
#include "core/results_sink.hh"
#include "core/suites.hh"

using namespace stsim;

namespace
{

std::vector<SimJob>
tinyJobs(std::size_t n)
{
    const char *benches[] = {"go", "twolf", "crafty", "parser"};
    const char *exps[] = {"baseline", "C2", "A3", "PG"};
    std::vector<SimJob> jobs;
    for (std::size_t i = 0; i < n; ++i) {
        SimJob j;
        j.cfg.benchmark = benches[i % 4];
        j.cfg.maxInstructions = 4'000;
        j.cfg.warmupInstructions = 1'000;
        Experiment::byName(exps[(i / 4) % 4]).applyTo(j.cfg);
        j.experiment = exps[(i / 4) % 4];
        jobs.push_back(std::move(j));
    }
    return jobs;
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

} // namespace

TEST(JsonlSink, StreamsRecordsInSubmissionOrder)
{
    std::vector<SimJob> jobs = tinyJobs(6);
    std::ostringstream out;
    JsonlResultsSink sink(out);
    runJobs(jobs, sink, 3);

    std::vector<std::string> recs = lines(out.str());
    ASSERT_EQ(recs.size(), jobs.size());
    std::vector<SimResults> direct = runJobs(jobs, 1);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        auto [idx, r] = serde::resultRecordFromJson(recs[i]);
        EXPECT_EQ(idx, i); // in submission order, indices contiguous
        EXPECT_EQ(r.benchmark, jobs[i].cfg.benchmark);
        EXPECT_EQ(r.experiment, jobs[i].experiment);
        // The streamed record is the vector-path result, bit for bit.
        EXPECT_EQ(serde::toJson(r), serde::toJson(direct[i]));
    }
}

TEST(CsvSink, HeaderOnceThenOneRowPerJob)
{
    std::vector<SimJob> jobs = tinyJobs(3);
    std::ostringstream out;
    CsvResultsSink sink(out);
    runJobs(jobs, sink, 2);

    std::vector<std::string> rows = lines(out.str());
    ASSERT_EQ(rows.size(), jobs.size() + 1);
    EXPECT_EQ(rows[0], CsvResultsSink::header());
    std::size_t cols = 1 + std::count(rows[0].begin(), rows[0].end(),
                                      ',');
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].find("0x"), std::string::npos)
            << "CSV doubles are decimal";
        EXPECT_EQ(1 + std::count(rows[i].begin(), rows[i].end(), ','),
                  static_cast<std::ptrdiff_t>(cols));
        EXPECT_EQ(rows[i].substr(0, 2), std::to_string(i - 1) + ",");
    }
}

TEST(StreamingEngine, ReorderBufferDoesNotGrowWithMatrixSize)
{
    // The acceptance property behind "streaming, not accumulating":
    // the engine may hold at most a small worker-derived window of
    // results for in-order commit, however long the wave is.
    NullResultsSink sink;
    StreamStats small = runJobs(tinyJobs(8), sink, 4);
    StreamStats large = runJobs(tinyJobs(32), sink, 4);
    const std::size_t window = 2 * 4;
    EXPECT_LE(small.maxPending, window);
    EXPECT_LE(large.maxPending, window);
}

TEST(StreamingEngine, ThrowingJobAbortsTheWaveInsteadOfDeadlocking)
{
    // A throw on the commit path (here: from the sink, the same spot a
    // failed Simulator lands in) means the frontier can never advance.
    // Gate-blocked workers must be released and the exception must
    // surface through pool.wait() -- pre-abort-flag, this wave hung
    // forever once the job count exceeded the reorder window.
    class ThrowingSink : public ResultsSink
    {
      public:
        void
        write(std::uint64_t, const SimResults &) override
        {
            throw std::runtime_error("sink failed");
        }
    };
    ThrowingSink sink;
    EXPECT_THROW(runJobs(tinyJobs(12), sink, 2), std::runtime_error);
}

TEST(ShardMerge, FourShardsMergeBitForBitAgainstInProcess)
{
    // The CI gate's logic, in-process: golden-suite jobs (shrunk for
    // test runtime) split i%4, each shard run as its own wave through
    // an IndexRemapSink, lines merged by index, compared byte-for-byte
    // against the one-process dump of the same jobs.
    std::vector<SimJob> jobs = suiteJobs("golden");
    for (SimJob &j : jobs) {
        j.cfg.maxInstructions = 3'000;
        j.cfg.warmupInstructions = 500;
    }

    const unsigned kShards = 4;
    std::map<std::uint64_t, std::string> merged_by_index;
    for (unsigned s = 0; s < kShards; ++s) {
        std::vector<SimJob> mine;
        std::vector<std::uint64_t> global;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (i % kShards == s) {
                mine.push_back(jobs[i]);
                global.push_back(i);
            }
        }
        std::ostringstream out;
        JsonlResultsSink jsonl(out);
        IndexRemapSink remap(jsonl, global);
        runJobs(mine, remap, 2);
        for (const std::string &line : lines(out.str())) {
            std::uint64_t idx = serde::resultRecordIndex(line);
            EXPECT_TRUE(merged_by_index.emplace(idx, line).second)
                << "duplicate index " << idx;
        }
    }
    ASSERT_EQ(merged_by_index.size(), jobs.size());

    std::vector<SimResults> direct = runJobs(jobs, 4);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(merged_by_index.at(i),
                  serde::resultRecordToJson(i, direct[i]))
            << "index " << i;
    }
}

TEST(HarnessSink, RunMatrixStreamsEveryExperimentJob)
{
    SimConfig base;
    base.maxInstructions = 4'000;
    base.warmupInstructions = 1'000;
    Harness h(base);
    std::vector<Experiment> exps = {Experiment::byName("A3"),
                                    Experiment::byName("C2")};

    std::ostringstream out;
    JsonlResultsSink sink(out);
    auto tables = h.runMatrix(exps, sink, 2);

    const std::size_t benches = Harness::benchmarks().size();
    std::vector<std::string> recs = lines(out.str());
    ASSERT_EQ(recs.size(), exps.size() * benches);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        auto [idx, r] = serde::resultRecordFromJson(recs[i]);
        EXPECT_EQ(idx, i);
        EXPECT_EQ(r.experiment, exps[i / benches].name);
        EXPECT_EQ(r.benchmark, Harness::benchmarks()[i % benches]);
    }

    // Metric tables match the non-streaming overload bit for bit.
    Harness h2(base);
    auto plain = h2.runMatrix(exps, 1);
    ASSERT_EQ(tables.size(), plain.size());
    for (std::size_t e = 0; e < tables.size(); ++e) {
        ASSERT_EQ(tables[e].size(), plain[e].size());
        for (std::size_t row = 0; row < tables[e].size(); ++row) {
            EXPECT_EQ(tables[e][row].first, plain[e][row].first);
            EXPECT_EQ(tables[e][row].second.speedup,
                      plain[e][row].second.speedup);
            EXPECT_EQ(tables[e][row].second.energySavings,
                      plain[e][row].second.energySavings);
        }
    }
}
