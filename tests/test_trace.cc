/**
 * @file
 * Unit and property tests for the synthetic workload generator:
 * profiles, static program construction, correct-path walking and
 * wrong-path cursors.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "trace/profile.hh"
#include "trace/static_program.hh"
#include "trace/workload.hh"

using namespace stsim;

namespace
{

std::shared_ptr<const StaticProgram>
smallProgram()
{
    BenchmarkProfile p;
    p.name = "unit";
    p.numBlocks = 64;
    p.numFuncs = 8;
    p.condBranchFrac = 0.12;
    p.seed = 7;
    return std::make_shared<const StaticProgram>(p);
}

} // namespace

TEST(Profiles, EightSpecBenchmarks)
{
    const auto &v = specProfiles();
    ASSERT_EQ(v.size(), 8u);
    const char *names[] = {"compress", "gcc", "go", "bzip2",
                           "crafty", "gzip", "parser", "twolf"};
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(v[i].name, names[i]);
}

TEST(Profiles, Table2Targets)
{
    // Spot-check the Table 2 misprediction-rate targets.
    EXPECT_NEAR(findProfile("go").targetMissRate, 0.197, 1e-9);
    EXPECT_NEAR(findProfile("parser").targetMissRate, 0.068, 1e-9);
    EXPECT_NEAR(findProfile("compress").condBranchFrac, 0.076, 1e-9);
}

TEST(Profiles, ValidateAcceptsDefaults)
{
    BenchmarkProfile p;
    p.name = "ok";
    EXPECT_NO_FATAL_FAILURE(p.validate());
}

TEST(StaticProgram, BlocksAreContiguous)
{
    auto prog = smallProgram();
    Addr pc = prog->codeBase();
    for (std::uint32_t i = 0; i < prog->numBlocks(); ++i) {
        EXPECT_EQ(prog->block(i).pc, pc);
        pc = prog->block(i).endPc();
    }
    EXPECT_EQ(pc, prog->codeEnd());
}

TEST(StaticProgram, BlockContainingFindsEveryInstruction)
{
    auto prog = smallProgram();
    for (std::uint32_t i = 0; i < prog->numBlocks(); ++i) {
        const StaticBlock &b = prog->block(i);
        EXPECT_EQ(prog->blockContaining(b.pc), i);
        EXPECT_EQ(prog->blockContaining(b.termPc()), i);
    }
}

TEST(StaticProgram, SuccessorsInRange)
{
    auto prog = smallProgram();
    for (std::uint32_t i = 0; i < prog->numBlocks(); ++i) {
        const StaticBlock &b = prog->block(i);
        EXPECT_LT(b.takenTarget, prog->numBlocks());
        EXPECT_LT(b.fallthrough, prog->numBlocks());
        EXPECT_NE(b.takenTarget, i) << "degenerate self-loop";
    }
}

TEST(StaticProgram, DeterministicConstruction)
{
    BenchmarkProfile p = findProfile("twolf");
    StaticProgram a(p), b(p);
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    for (std::uint32_t i = 0; i < a.numBlocks(); ++i) {
        EXPECT_EQ(a.block(i).pc, b.block(i).pc);
        EXPECT_EQ(a.block(i).term, b.block(i).term);
        EXPECT_EQ(a.block(i).takenTarget, b.block(i).takenTarget);
    }
}

TEST(Workload, DeterministicStream)
{
    auto prog = smallProgram();
    Workload a(prog, 1), b(prog, 1);
    for (int i = 0; i < 5000; ++i) {
        TraceInst x = a.next(), y = b.next();
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.taken, y.taken);
        EXPECT_EQ(x.memAddr, y.memAddr);
    }
}

TEST(Workload, SeedChangesOutcomes)
{
    auto prog = smallProgram();
    Workload a(prog, 1), b(prog, 2);
    int diff = 0;
    for (int i = 0; i < 5000; ++i)
        diff += a.next().taken != b.next().taken;
    EXPECT_GT(diff, 0);
}

TEST(Workload, PcChainingIsConsistent)
{
    auto prog = smallProgram();
    Workload w(prog, 3);
    TraceInst prev = w.next();
    for (int i = 0; i < 20000; ++i) {
        TraceInst cur = w.next();
        EXPECT_EQ(cur.pc, prev.npc)
            << "instruction stream must follow npc";
        prev = cur;
    }
}

TEST(Workload, BranchOutcomeMatchesNpc)
{
    auto prog = smallProgram();
    Workload w(prog, 4);
    for (int i = 0; i < 20000; ++i) {
        TraceInst t = w.next();
        if (t.isCondBranch()) {
            EXPECT_EQ(t.npc, t.taken ? t.target : t.pc + 4);
        }
    }
}

TEST(Workload, GlobalHistoryTracksOutcomes)
{
    auto prog = smallProgram();
    Workload w(prog, 5);
    std::uint64_t hist = w.globalHistory();
    for (int i = 0; i < 1000; ++i) {
        TraceInst t = w.next();
        if (t.isCondBranch()) {
            hist = (hist << 1) | (t.taken ? 1 : 0);
            EXPECT_EQ(w.globalHistory(), hist);
        }
    }
}

TEST(Workload, MemoryAddressesInDataSegments)
{
    auto prog = smallProgram();
    const auto &p = prog->profile();
    Workload w(prog, 6);
    Addr data_end = StaticProgram::kDataBase +
                    static_cast<Addr>(p.dataFootprintKB) * 1024;
    for (int i = 0; i < 50000; ++i) {
        TraceInst t = w.next();
        if (isMemory(t.cls)) {
            bool in_heap = t.memAddr >= StaticProgram::kDataBase &&
                           t.memAddr < data_end;
            bool in_stack =
                t.memAddr >= StaticProgram::kStackBase &&
                t.memAddr < StaticProgram::kStackBase +
                                StaticProgram::kStackRegionBytes;
            EXPECT_TRUE(in_heap || in_stack)
                << std::hex << t.memAddr;
        }
    }
}

TEST(WrongPath, StartsAtRequestedPc)
{
    auto prog = smallProgram();
    Workload w(prog, 7);
    Addr start = prog->block(5).pc;
    WrongPathCursor c(w, start, 99);
    EXPECT_EQ(c.next().pc, start);
}

TEST(WrongPath, DoesNotDisturbArchitecturalState)
{
    auto prog = smallProgram();
    Workload a(prog, 8), b(prog, 8);
    // Drain a wrong-path cursor against workload a only.
    WrongPathCursor c(a, prog->block(3).pc, 1);
    for (int i = 0; i < 2000; ++i)
        c.next();
    // a and b must still agree exactly.
    for (int i = 0; i < 5000; ++i) {
        TraceInst x = a.next(), y = b.next();
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.taken, y.taken);
        EXPECT_EQ(x.memAddr, y.memAddr);
    }
}

TEST(WrongPath, FollowsItsOwnNpcChain)
{
    auto prog = smallProgram();
    Workload w(prog, 9);
    WrongPathCursor c(w, prog->block(10).pc, 2);
    TraceInst prev = c.next();
    for (int i = 0; i < 5000; ++i) {
        TraceInst cur = c.next();
        EXPECT_EQ(cur.pc, prev.npc);
        prev = cur;
    }
}

TEST(WrongPath, MidBlockStart)
{
    auto prog = smallProgram();
    Workload w(prog, 10);
    // Start one instruction into a block with a body.
    for (std::uint32_t i = 0; i < prog->numBlocks(); ++i) {
        if (!prog->block(i).ops.empty()) {
            WrongPathCursor c(w, prog->block(i).pc + 4, 3);
            EXPECT_EQ(c.next().pc, prog->block(i).pc + 4);
            return;
        }
    }
}

/** Property: every profile's walker emits the advertised instruction
 *  classes and a plausible conditional-branch density. */
class ProfileWalk : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProfileWalk, StreamIsWellFormed)
{
    auto prog = std::make_shared<const StaticProgram>(
        findProfile(GetParam()));
    Workload w(prog, 11);
    std::map<InstClass, int> mix;
    int n = 100000;
    TraceInst prev = w.next();
    for (int i = 1; i < n; ++i) {
        TraceInst t = w.next();
        EXPECT_EQ(t.pc, prev.npc);
        ++mix[t.cls];
        prev = t;
    }
    double cond = mix[InstClass::CondBranch] / static_cast<double>(n);
    const auto &p = prog->profile();
    EXPECT_NEAR(cond, p.condBranchFrac, p.condBranchFrac * 0.5)
        << "conditional-branch density off for " << p.name;
    EXPECT_GT(mix[InstClass::Load], 0);
    EXPECT_GT(mix[InstClass::Store], 0);
    EXPECT_GT(mix[InstClass::IntAlu], 0);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProfileWalk,
                         ::testing::Values("compress", "gcc", "go",
                                           "bzip2", "crafty", "gzip",
                                           "parser", "twolf"));
