/**
 * @file
 * Tests for the experiment harness and the parallel experiment engine:
 * baseline caching and invalidation, suite averaging, the RunPool, and
 * thread-count-independent (bitwise-identical) matrix results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/cancel.hh"
#include "core/harness.hh"
#include "core/parallel_harness.hh"
#include "core/results_sink.hh"
#include "core/run_pool.hh"
#include "core/simulator.hh"

using namespace stsim;

namespace
{

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.maxInstructions = 8'000;
    cfg.warmupInstructions = 2'000;
    return cfg;
}

void
expectSameResults(const SimResults &a, const SimResults &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.core.committedInsts, b.core.committedInsts);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.avgPowerW, b.avgPowerW);
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.edProduct, b.edProduct);
    EXPECT_EQ(a.wastedEnergyJ, b.wastedEnergyJ);
    EXPECT_EQ(a.condMissRate, b.condMissRate);
    EXPECT_EQ(a.il1MissRate, b.il1MissRate);
    EXPECT_EQ(a.dl1MissRate, b.dl1MissRate);
    for (PUnit u : kAllPUnits) {
        auto i = static_cast<std::size_t>(u);
        EXPECT_EQ(a.unitEnergyJ[i], b.unitEnergyJ[i]) << punitName(u);
        EXPECT_EQ(a.unitWastedJ[i], b.unitWastedJ[i]) << punitName(u);
    }
}

} // namespace

TEST(RunPool, ExecutesEveryJobExactlyOnce)
{
    RunPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::vector<int> hits(100, 0);
    pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(RunPool, SubmitAndWaitDrains)
{
    RunPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 50);
}

TEST(RunPool, WaitRethrowsJobException)
{
    RunPool pool(2);
    pool.submit([] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(RunPool, StsimJobsOverridesDefault)
{
    ASSERT_EQ(setenv("STSIM_JOBS", "3", 1), 0);
    EXPECT_EQ(RunPool::defaultWorkers(), 3u);
    ASSERT_EQ(setenv("STSIM_JOBS", "bogus", 1), 0);
    EXPECT_GE(RunPool::defaultWorkers(), 1u); // falls back, never 0
    unsetenv("STSIM_JOBS");
}

TEST(RunJobs, ResultsCommittedInSubmissionOrder)
{
    std::vector<SimJob> jobs;
    for (const char *b : {"twolf", "go"}) {
        SimJob j;
        j.cfg = tinyConfig();
        j.cfg.benchmark = b;
        Experiment::byName("baseline").applyTo(j.cfg);
        j.experiment = "baseline";
        jobs.push_back(std::move(j));
    }
    std::vector<SimResults> r = runJobs(jobs, 2);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].benchmark, "twolf");
    EXPECT_EQ(r[1].benchmark, "go");
    EXPECT_EQ(r[0].experiment, "baseline");
    EXPECT_GE(r[0].core.committedInsts, 8'000u);
}

TEST(Harness, BaselineInvalidatedOnBaseConfigMutation)
{
    Harness h(tinyConfig());
    const SimResults &before = h.baseline("go");
    Counter committed = before.core.committedInsts;
    EXPECT_GE(committed, 8'000u);
    EXPECT_LT(committed, 16'000u);

    // Mutable access invalidates every cached baseline.
    h.baseConfig().maxInstructions = 16'000;
    const SimResults &after = h.baseline("go");
    EXPECT_GE(after.core.committedInsts, 16'000u);
}

TEST(Harness, ComputeBaselinesFillsCache)
{
    Harness h(tinyConfig());
    h.computeBaselines(2);
    // Every subsequent baseline() is a cache hit: same object both
    // times, with no invalidation in between.
    for (const std::string &b : Harness::benchmarks()) {
        const SimResults &a = h.baseline(b);
        EXPECT_EQ(&a, &h.baseline(b));
        EXPECT_EQ(a.benchmark, b);
    }
}

TEST(Harness, RunSuiteAppendsAverageRow)
{
    Harness h(tinyConfig());
    auto rows = h.runSuite(Experiment::byName("A6"));
    ASSERT_EQ(rows.size(), Harness::benchmarks().size() + 1);
    EXPECT_EQ(rows.back().first, "Average");

    RelativeMetrics avg = averageMetrics(rows);
    EXPECT_EQ(avg.speedup, rows.back().second.speedup);
    EXPECT_EQ(avg.powerSavings, rows.back().second.powerSavings);
    EXPECT_EQ(avg.energySavings, rows.back().second.energySavings);
    EXPECT_EQ(avg.edImprovement, rows.back().second.edImprovement);
}

TEST(Harness, MatrixIsWorkerCountIndependent)
{
    std::vector<Experiment> exps = {Experiment::byName("A5"),
                                    Experiment::byName("PG")};

    Harness serial(tinyConfig());
    auto one = serial.runMatrix(exps, 1);
    Harness parallel(tinyConfig());
    auto many = parallel.runMatrix(exps, 4);

    ASSERT_EQ(one.size(), many.size());
    for (std::size_t e = 0; e < one.size(); ++e) {
        ASSERT_EQ(one[e].size(), many[e].size());
        for (std::size_t r = 0; r < one[e].size(); ++r) {
            EXPECT_EQ(one[e][r].first, many[e][r].first);
            const RelativeMetrics &a = one[e][r].second;
            const RelativeMetrics &b = many[e][r].second;
            EXPECT_EQ(a.speedup, b.speedup);
            EXPECT_EQ(a.powerSavings, b.powerSavings);
            EXPECT_EQ(a.energySavings, b.energySavings);
            EXPECT_EQ(a.edImprovement, b.edImprovement);
        }
    }
    // The underlying baselines must match bitwise, not just the
    // derived percentages.
    for (const std::string &b : Harness::benchmarks())
        expectSameResults(serial.baseline(b), parallel.baseline(b));
}

/**
 * Golden determinism through the parallel engine: a throttled (C2)
 * and an unthrottled (baseline/C0) config must produce bitwise the
 * same SimResults whether run directly or through a runJobs wave --
 * the scheduler rework (ready bitmap, calendar writeback queue,
 * incremental controller) must be invisible at any worker count.
 */
TEST(RunJobs, BitwiseIdenticalToDirectRunsForC0AndC2)
{
    std::vector<SimJob> jobs;
    for (const char *exp : {"baseline", "C2"}) {
        SimJob j;
        j.cfg = tinyConfig();
        j.cfg.benchmark = "crafty";
        Experiment::byName(exp).applyTo(j.cfg);
        j.experiment = exp;
        jobs.push_back(std::move(j));
    }
    std::vector<SimResults> pooled = runJobs(jobs, 4);
    ASSERT_EQ(pooled.size(), 2u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SimResults direct = Simulator(jobs[i].cfg).run();
        direct.experiment = jobs[i].experiment;
        expectSameResults(direct, pooled[i]);
    }
    // The throttled run must actually have exercised the controller.
    EXPECT_GT(pooled[1].core.fetchThrottled, 0u);
    EXPECT_GT(pooled[1].core.noSelectSkips, 0u);
}

TEST(AverageMetrics, RejectsAverageOnlyInput)
{
    std::vector<std::pair<std::string, RelativeMetrics>> rows;
    rows.emplace_back("Average", RelativeMetrics{});
    EXPECT_DEATH(averageMetrics(rows), "no rows to average");
}

//
// runJobs abort and cancellation paths. The deadlock hazard in all of
// these is the reorder gate: when a job or the sink throws, the commit
// frontier is stuck forever, so every gate-blocked worker must be
// released or pool.wait() would hang instead of rethrowing. Running
// them under TSan (tier-1 CI) is the point.
//

namespace
{

/** Pins STSIM_REORDER_WINDOW for one test, restoring on scope exit. */
struct ScopedEnv
{
    const char *name;

    ScopedEnv(const char *n, const char *v) : name(n)
    {
        setenv(n, v, 1);
    }

    ~ScopedEnv() { unsetenv(name); }
};

struct CountingSink : ResultsSink
{
    std::atomic<int> writes{0};

    void
    write(std::uint64_t, const SimResults &) override
    {
        ++writes;
    }
};

/** Throws out of the serialized commit path at a chosen index. */
struct ThrowAtSink : ResultsSink
{
    explicit ThrowAtSink(std::uint64_t at) : at_(at) {}

    void
    write(std::uint64_t index, const SimResults &) override
    {
        if (index == at_)
            throw std::runtime_error("sink failure");
    }

    std::uint64_t at_;
};

std::vector<SimJob>
tinyJobs(std::size_t n, std::uint64_t insts = 8'000)
{
    std::vector<SimJob> jobs;
    for (std::size_t i = 0; i < n; ++i) {
        SimJob j;
        j.cfg = tinyConfig();
        j.cfg.maxInstructions = insts;
        j.cfg.benchmark = "go";
        Experiment::byName("baseline").applyTo(j.cfg);
        j.experiment = "baseline";
        jobs.push_back(std::move(j));
    }
    return jobs;
}

} // namespace

TEST(RunJobsAbort, ThrowingSinkReleasesWorkersAtWindowOne)
{
    // Window 1 is the degenerate gate: every non-frontier worker is
    // blocked, so a throwing sink exercises the full release path.
    ScopedEnv env("STSIM_REORDER_WINDOW", "1");
    ThrowAtSink sink(1);
    EXPECT_THROW(runJobs(tinyJobs(8), sink, 4), std::runtime_error);
}

TEST(RunJobsAbort, ThrowingSinkReleasesWorkersAtWindowTwiceWorkers)
{
    // The production window (2*workers): workers run ahead, results
    // pile into `pending`, and the abort lands mid-drain.
    ScopedEnv env("STSIM_REORDER_WINDOW", "8");
    ThrowAtSink sink(2);
    EXPECT_THROW(runJobs(tinyJobs(12), sink, 4), std::runtime_error);
}

TEST(RunJobsAbort, PreCancelledTokenThrowsBeforeAnyCommit)
{
    CancelToken token;
    token.cancel();
    CountingSink sink;
    EXPECT_THROW(runJobs(tinyJobs(6), sink, 2, &token), JobCancelled);
    EXPECT_EQ(sink.writes.load(), 0);
}

TEST(RunJobsAbort, CancelReleasesGateBlockedWorkers)
{
    // Long jobs + window 1: the frontier job holds a worker and polls
    // the token; everyone else is gate-blocked. Firing the token
    // mid-run must surface JobCancelled promptly -- if the blocked
    // workers were not released this test would hang, not fail.
    ScopedEnv env("STSIM_REORDER_WINDOW", "1");
    std::vector<SimJob> jobs = tinyJobs(8, 50'000'000);
    CancelToken token;
    CountingSink sink;
    std::thread firer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        token.cancel();
    });
    EXPECT_THROW(runJobs(jobs, sink, 4, &token), JobCancelled);
    firer.join();
}

TEST(RunJobsAbort, NullTokenAndUnfiredTokenAreHarmless)
{
    // An unfired token must not perturb results: bitwise identical to
    // the no-token path (the poll is a never-taken branch).
    CancelToken token;
    std::vector<SimJob> jobs = tinyJobs(2);
    std::vector<SimResults> plain(jobs.size()), tokened(jobs.size());
    {
        struct VecSink : ResultsSink
        {
            std::vector<SimResults> &out;
            explicit VecSink(std::vector<SimResults> &o) : out(o) {}
            void
            write(std::uint64_t i, const SimResults &r) override
            {
                out[i] = r;
            }
        };
        VecSink a(plain), b(tokened);
        runJobs(jobs, a, 2, nullptr);
        runJobs(jobs, b, 2, &token);
    }
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectSameResults(plain[i], tokened[i]);
}
