/**
 * @file
 * Integration tests for the out-of-order core: flow conservation,
 * squash correctness, oracle modes, pipeline-depth mapping and
 * deadlock freedom under every speculation-control mechanism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hh"
#include "core/simulator.hh"
#include "pipeline/core_config.hh"

using namespace stsim;

namespace
{

SimConfig
smallRun(const std::string &bench = "twolf",
         std::uint64_t insts = 30'000)
{
    SimConfig cfg;
    cfg.benchmark = bench;
    cfg.maxInstructions = insts;
    cfg.warmupInstructions = 5'000;
    return cfg;
}

} // namespace

TEST(CoreConfig, DepthMapping14IsBaseline)
{
    CoreConfig c;
    c.applyPipelineDepth(14);
    // front end + 4 backend stages + extra exec == total depth
    EXPECT_EQ(c.fetchStages + c.decodeStages + 4 + c.extraExecLatency,
              14u);
    EXPECT_GE(c.fetchStages, 1u);
    EXPECT_GE(c.decodeStages, 1u);
}

TEST(CoreConfig, DepthMappingMonotonic)
{
    unsigned prev_front = 0, prev_exec = 0;
    for (unsigned d = 6; d <= 28; d += 2) {
        CoreConfig c;
        c.applyPipelineDepth(d);
        unsigned front = c.fetchStages + c.decodeStages;
        EXPECT_EQ(front + 4 + c.extraExecLatency, d);
        EXPECT_GE(front, prev_front);
        EXPECT_GE(c.extraExecLatency, prev_exec);
        prev_front = front;
        prev_exec = c.extraExecLatency;
    }
}

TEST(CoreConfig, BaseLatencies)
{
    EXPECT_EQ(CoreConfig::baseLatency(InstClass::IntAlu), 1u);
    EXPECT_EQ(CoreConfig::baseLatency(InstClass::IntMult), 3u);
    EXPECT_EQ(CoreConfig::baseLatency(InstClass::FpMult), 4u);
}

TEST(Core, CommitsRequestedInstructions)
{
    Simulator sim(smallRun());
    SimResults r = sim.run();
    EXPECT_GE(r.core.committedInsts, 30'000u);
    EXPECT_GT(r.core.cycles, 0u);
    EXPECT_GT(r.ipc, 0.1);
    EXPECT_LT(r.ipc, 8.0);
}

TEST(Core, FlowConservation)
{
    Simulator sim(smallRun());
    SimResults r = sim.run();
    const CoreStats &s = r.core;
    // Everything dispatched was decoded; everything decoded was
    // fetched (modulo what was still in flight at the end).
    EXPECT_LE(s.dispatchedInsts, s.decodedInsts);
    EXPECT_LE(s.issuedInsts, s.dispatchedInsts);
    EXPECT_LE(s.committedInsts, s.issuedInsts);
    // No wrong-path instruction ever commits; the commit/squash split
    // accounts for all dispatched wrong-path work.
    EXPECT_GT(s.fetchedWrongPath, 0u);
    EXPECT_GT(s.squashedInsts, 0u);
}

TEST(Core, MispredictionRateSane)
{
    Simulator sim(smallRun("go", 60'000));
    SimResults r = sim.run();
    EXPECT_GT(r.condMissRate, 0.08);
    EXPECT_LT(r.condMissRate, 0.35);
    EXPECT_GT(r.core.squashes, 100u);
}

TEST(Core, EnergyAccountingConsistent)
{
    Simulator sim(smallRun());
    SimResults r = sim.run();
    EXPECT_GT(r.energyJ, 0.0);
    EXPECT_GT(r.avgPowerW, 10.0);
    EXPECT_LT(r.avgPowerW, 150.0);
    EXPECT_GT(r.wastedEnergyJ, 0.0);
    EXPECT_LT(r.wastedEnergyJ, r.energyJ);
    double unit_sum = 0.0;
    for (double e : r.unitEnergyJ)
        unit_sum += e;
    EXPECT_NEAR(unit_sum, r.energyJ, r.energyJ * 1e-6);
}

TEST(Core, DeterministicAcrossRuns)
{
    SimResults a = Simulator(smallRun()).run();
    SimResults b = Simulator(smallRun()).run();
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.committedInsts, b.core.committedInsts);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
}

TEST(Core, DeeperPipelineLowersIpc)
{
    SimConfig shallow = smallRun("gzip", 40'000);
    shallow.pipelineDepth = 6;
    SimConfig deep = smallRun("gzip", 40'000);
    deep.pipelineDepth = 28;
    SimResults rs = Simulator(shallow).run();
    SimResults rd = Simulator(deep).run();
    EXPECT_GT(rs.ipc, rd.ipc);
}

TEST(Core, DeeperPipelineFetchesMoreWrongPath)
{
    SimConfig shallow = smallRun("go", 40'000);
    shallow.pipelineDepth = 6;
    SimConfig deep = smallRun("go", 40'000);
    deep.pipelineDepth = 28;
    SimResults rs = Simulator(shallow).run();
    SimResults rd = Simulator(deep).run();
    EXPECT_GT(rd.core.wrongPathFetchFrac(),
              rs.core.wrongPathFetchFrac());
}

TEST(Oracle, FetchNeverFetchesWrongPath)
{
    SimConfig cfg = smallRun("go", 40'000);
    Experiment::byName("oracle-fetch").applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    EXPECT_EQ(r.core.fetchedWrongPath, 0u);
    EXPECT_EQ(r.core.squashedInsts, 0u);
    EXPECT_GT(r.core.oracleFetchStall, 0u);
}

TEST(Oracle, DecodeSuppressesWrongPathEnergyNotFlow)
{
    SimConfig cfg = smallRun("go", 40'000);
    Experiment::byName("oracle-decode").applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    EXPECT_GT(r.core.fetchedWrongPath, 0u);
    EXPECT_GT(r.core.oracleDecodeDrops, 0u);
    EXPECT_EQ(r.core.issuedWrongPath, 0u);
}

TEST(Oracle, SelectBlocksWrongPathIssueOnly)
{
    SimConfig cfg = smallRun("go", 40'000);
    Experiment::byName("oracle-select").applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    EXPECT_GT(r.core.dispatchedWrongPath, 0u);
    EXPECT_EQ(r.core.issuedWrongPath, 0u);
}

TEST(Oracle, SavingsOrderingMatchesFigure1)
{
    // Power savings: fetch > decode > select (Figure 1's shape).
    SimConfig base_cfg = smallRun("go", 60'000);
    SimResults base = Simulator(base_cfg).run();
    auto savings = [&](const char *name) {
        SimConfig cfg = smallRun("go", 60'000);
        Experiment::byName(name).applyTo(cfg);
        SimResults r = Simulator(cfg).run();
        return (base.avgPowerW - r.avgPowerW) / base.avgPowerW;
    };
    double f = savings("oracle-fetch");
    double d = savings("oracle-decode");
    double s = savings("oracle-select");
    EXPECT_GT(f, d);
    EXPECT_GT(d, s);
    EXPECT_GT(s, 0.0);
}

TEST(Throttling, SelectiveReducesEnergyOnGo)
{
    SimConfig base_cfg = smallRun("go", 60'000);
    SimResults base = Simulator(base_cfg).run();
    SimConfig c2_cfg = smallRun("go", 60'000);
    Experiment::byName("C2").applyTo(c2_cfg);
    SimResults c2 = Simulator(c2_cfg).run();
    EXPECT_LT(c2.energyJ, base.energyJ);
    EXPECT_LT(c2.ipc, base.ipc); // some slowdown is expected
    EXPECT_GT(c2.ipc, base.ipc * 0.75); // but bounded
    EXPECT_GT(c2.core.fetchThrottled, 0u);
}

TEST(Throttling, NoSelectSkipsHappenUnderC2)
{
    SimConfig cfg = smallRun("go", 40'000);
    Experiment::byName("C2").applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    EXPECT_GT(r.core.noSelectSkips, 0u);
}

TEST(Throttling, PipelineGatingGatesFetch)
{
    SimConfig cfg = smallRun("go", 40'000);
    Experiment::byName("PG").applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    EXPECT_GT(r.core.fetchThrottled, 0u);
    EXPECT_EQ(r.core.decodeThrottled, 0u);
    EXPECT_EQ(r.core.noSelectSkips, 0u);
}

TEST(Throttling, PerfectEstimatorBeatsRealOnEnergyDelay)
{
    // With oracle confidence, C2 throttles only real mispredictions:
    // slowdown should be smaller than with the realistic estimator.
    SimConfig real_cfg = smallRun("go", 40'000);
    Experiment::byName("C2").applyTo(real_cfg);
    SimConfig perfect_cfg = real_cfg;
    perfect_cfg.confKind = ConfKind::Perfect;
    SimResults real = Simulator(real_cfg).run();
    SimResults perfect = Simulator(perfect_cfg).run();
    EXPECT_GT(perfect.ipc, real.ipc);
}

TEST(Throttling, ConfMetricsPopulated)
{
    SimConfig cfg = smallRun("go", 40'000);
    Experiment::byName("C2").applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    EXPECT_GT(r.spec, 0.0);
    EXPECT_LT(r.spec, 1.0);
    EXPECT_GT(r.pvn, 0.0);
    EXPECT_LT(r.pvn, 1.0);
}

namespace
{

/** The microbenchmark configuration (crafty, 50K measured commits,
 *  10K warmup) under a named experiment. */
SimConfig
benchConfig(const std::string &exp)
{
    SimConfig cfg;
    cfg.benchmark = "crafty";
    cfg.maxInstructions = 50'000;
    cfg.warmupInstructions = 10'000;
    Experiment::byName(exp).applyTo(cfg);
    return cfg;
}

} // namespace

/**
 * Golden scheduler determinism: the exact cycle counts, event counts
 * and energy doubles of the unthrottled (C0/baseline) bench config,
 * pinned from before the ready-bitmap / calendar-writeback / O(1)
 * store-tracking rework. Any scheduling-order change -- a different
 * issue pick, a reordered writeback, a shifted wakeup -- moves at
 * least one of these. The doubles are compared bit-exactly: the
 * results path uses only IEEE-deterministic arithmetic (+,*,/,sqrt).
 */
TEST(GoldenDeterminism, BaselineBenchConfigIsBitExact)
{
    SimResults r = Simulator(benchConfig("baseline")).run();
    EXPECT_EQ(r.core.cycles, 53943u);
    EXPECT_EQ(r.core.committedInsts, 50001u);
    EXPECT_EQ(r.core.fetchedInsts, 81075u);
    EXPECT_EQ(r.core.fetchedWrongPath, 30974u);
    EXPECT_EQ(r.core.decodedInsts, 74587u);
    EXPECT_EQ(r.core.dispatchedInsts, 67006u);
    EXPECT_EQ(r.core.issuedInsts, 55176u);
    EXPECT_EQ(r.core.issuedWrongPath, 5162u);
    EXPECT_EQ(r.core.squashes, 319u);
    EXPECT_EQ(r.core.squashedInsts, 30895u);
    EXPECT_EQ(r.core.loadsBlockedByStore, 7314u);
    EXPECT_EQ(r.core.loadsForwarded, 11u);
    EXPECT_EQ(r.core.fetchIcacheStall, 424u);
    EXPECT_EQ(r.ipc, 0x1.da95a22d30647p-1);
    EXPECT_EQ(r.energyJ, 0x1.3156440cec345p-9);
    EXPECT_EQ(r.wastedEnergyJ, 0x1.408d4dca6e598p-12);
    EXPECT_EQ(r.avgPowerW, 0x1.9e93cfb20bcd5p+5);
}

/** Same pin for the throttled C2 path: additionally covers the
 *  incremental controller's gating and no-select barrier decisions. */
TEST(GoldenDeterminism, C2BenchConfigIsBitExact)
{
    SimResults r = Simulator(benchConfig("C2")).run();
    EXPECT_EQ(r.core.cycles, 57355u);
    EXPECT_EQ(r.core.committedInsts, 50001u);
    EXPECT_EQ(r.core.fetchedInsts, 73135u);
    EXPECT_EQ(r.core.fetchedWrongPath, 23034u);
    EXPECT_EQ(r.core.issuedInsts, 51906u);
    EXPECT_EQ(r.core.issuedWrongPath, 1895u);
    EXPECT_EQ(r.core.noSelectSkips, 15892u);
    EXPECT_EQ(r.core.fetchThrottled, 18351u);
    EXPECT_EQ(r.core.decodeThrottled, 0u);
    EXPECT_EQ(r.core.loadsBlockedByStore, 6031u);
    EXPECT_EQ(r.ipc, 0x1.be5a14b82019ep-1);
    EXPECT_EQ(r.energyJ, 0x1.3019dca2d8664p-9);
    EXPECT_EQ(r.wastedEnergyJ, 0x1.ac213286dfcddp-13);
    EXPECT_EQ(r.avgPowerW, 0x1.845612c9936f5p+5);
}

/**
 * Second-benchmark pin (go instead of crafty): the golden matrix must
 * not be blind to workload-dependent scheduling paths -- go has a much
 * higher misprediction rate, so squash/refetch waves and controller
 * churn dominate differently than in crafty.
 */
TEST(GoldenDeterminism, GoC2BenchConfigIsBitExact)
{
    SimConfig cfg = benchConfig("C2");
    cfg.benchmark = "go";
    SimResults r = Simulator(cfg).run();
    EXPECT_EQ(r.core.cycles, 90200u);
    EXPECT_EQ(r.core.committedInsts, 50000u);
    EXPECT_EQ(r.core.fetchedInsts, 81297u);
    EXPECT_EQ(r.core.fetchedWrongPath, 31329u);
    EXPECT_EQ(r.core.issuedInsts, 51692u);
    EXPECT_EQ(r.core.issuedWrongPath, 1697u);
    EXPECT_EQ(r.core.noSelectSkips, 37122u);
    EXPECT_EQ(r.core.fetchThrottled, 39883u);
    EXPECT_EQ(r.core.decodeThrottled, 0u);
    EXPECT_EQ(r.core.loadsBlockedByStore, 4638u);
    EXPECT_EQ(r.ipc, 0x1.1bd051bd051bdp-1);
    EXPECT_EQ(r.energyJ, 0x1.7aca4af7c9569p-9);
    EXPECT_EQ(r.wastedEnergyJ, 0x1.3462e1af15c34p-12);
    EXPECT_EQ(r.avgPowerW, 0x1.3393a63b12cc7p+5);
}

/**
 * Deep-pipeline pin (24 stages, the upper half of the Figure 6
 * sweep): covers the longer in-order front end, the extra exec/DL1
 * latency mapping and the correspondingly longer throttle windows.
 */
TEST(GoldenDeterminism, DeepPipelineC2BenchConfigIsBitExact)
{
    SimConfig cfg = benchConfig("C2");
    cfg.pipelineDepth = 24;
    SimResults r = Simulator(cfg).run();
    EXPECT_EQ(r.core.cycles, 86982u);
    EXPECT_EQ(r.core.committedInsts, 50001u);
    EXPECT_EQ(r.core.fetchedInsts, 85424u);
    EXPECT_EQ(r.core.fetchedWrongPath, 35323u);
    EXPECT_EQ(r.core.issuedInsts, 51748u);
    EXPECT_EQ(r.core.issuedWrongPath, 1737u);
    EXPECT_EQ(r.core.noSelectSkips, 26860u);
    EXPECT_EQ(r.core.fetchThrottled, 33298u);
    EXPECT_EQ(r.core.decodeThrottled, 0u);
    EXPECT_EQ(r.core.loadsBlockedByStore, 6034u);
    EXPECT_EQ(r.core.squashes, 321u);
    EXPECT_EQ(r.ipc, 0x1.2651d4bc62652p-1);
    EXPECT_EQ(r.energyJ, 0x1.6f5e00ba555ccp-9);
    EXPECT_EQ(r.wastedEnergyJ, 0x1.290516ae51f81p-12);
    EXPECT_EQ(r.avgPowerW, 0x1.355659740e186p+5);
}

/** Deadlock-freedom sweep: every experiment on every benchmark must
 *  retire its instruction budget (the core's watchdog panics on any
 *  stall longer than 100K cycles). */
class ExperimentSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(ExperimentSweep, RunsToCompletion)
{
    auto [bench, exp] = GetParam();
    SimConfig cfg = smallRun(bench, 15'000);
    Experiment::byName(exp).applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    EXPECT_GE(r.core.committedInsts, 15'000u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ExperimentSweep,
    ::testing::Combine(
        ::testing::Values("compress", "go", "parser"),
        ::testing::Values("baseline", "A1", "A3", "A6", "B3", "B8",
                          "C2", "C4", "C6", "PG", "oracle-fetch",
                          "oracle-decode", "oracle-select")));

/** Depth sweep: the machine must be stable at every Figure 6 depth. */
class DepthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DepthSweep, StableAndSane)
{
    SimConfig cfg = smallRun("twolf", 15'000);
    cfg.pipelineDepth = GetParam();
    SimResults r = Simulator(cfg).run();
    EXPECT_GE(r.core.committedInsts, 15'000u);
    EXPECT_GT(r.ipc, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Figure6Depths, DepthSweep,
                         ::testing::Values(6u, 8u, 10u, 12u, 14u, 16u,
                                           18u, 20u, 22u, 24u, 26u,
                                           28u));
