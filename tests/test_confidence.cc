/**
 * @file
 * Unit tests for the confidence estimators (JRS, BPRU-style, perfect)
 * and the SPEC/PVN metrics.
 */

#include <gtest/gtest.h>

#include "confidence/bpru.hh"
#include "confidence/jrs.hh"
#include "confidence/metrics.hh"
#include "confidence/perfect.hh"

using namespace stsim;

namespace
{

DirectionPredictor::Prediction
strongCounter()
{
    return {true, 3, 3};
}

DirectionPredictor::Prediction
weakCounter()
{
    return {true, 2, 3};
}

} // namespace

TEST(Jrs, ColdTableIsLowConfidence)
{
    JrsEstimator jrs(8 * 1024, 12);
    EXPECT_EQ(jrs.estimate(0x1000, 0, strongCounter(), true),
              ConfLevel::LC);
}

TEST(Jrs, ReachesHighAfterThresholdCorrect)
{
    JrsEstimator jrs(8 * 1024, 12);
    for (int i = 0; i < 11; ++i)
        jrs.update(0x1000, 0, true);
    EXPECT_EQ(jrs.estimate(0x1000, 0, strongCounter(), true),
              ConfLevel::LC);
    jrs.update(0x1000, 0, true); // 12th
    EXPECT_EQ(jrs.estimate(0x1000, 0, strongCounter(), true),
              ConfLevel::HC);
}

TEST(Jrs, MissResetsCounter)
{
    JrsEstimator jrs(8 * 1024, 12);
    for (int i = 0; i < 15; ++i)
        jrs.update(0x1000, 0, true);
    EXPECT_EQ(jrs.estimate(0x1000, 0, strongCounter(), true),
              ConfLevel::HC);
    jrs.update(0x1000, 0, false); // one miss clears the MDC
    EXPECT_EQ(jrs.estimate(0x1000, 0, strongCounter(), true),
              ConfLevel::LC);
}

TEST(Jrs, HistorySensitiveIndexing)
{
    JrsEstimator jrs(8 * 1024, 12);
    for (int i = 0; i < 15; ++i)
        jrs.update(0x1000, 0b1010, true);
    EXPECT_EQ(jrs.estimate(0x1000, 0b1010, strongCounter(), true),
              ConfLevel::HC);
    // Different history maps to a different (cold) MDC.
    EXPECT_EQ(jrs.estimate(0x1000, 0b0101, strongCounter(), true),
              ConfLevel::LC);
}

TEST(Jrs, Geometry)
{
    JrsEstimator jrs(8 * 1024, 12);
    EXPECT_EQ(jrs.numEntries(), 16384u); // 2 MDCs per byte
    EXPECT_EQ(jrs.sizeBytes(), 8192u);
    EXPECT_EQ(jrs.threshold(), 12u);
}

TEST(Bpru, LevelMappingMatchesPaper)
{
    // 4.3: counter 0-1 VHC, 2-3 HC, 4-5 LC, 6-7 VLC.
    EXPECT_EQ(BpruEstimator::levelFromCounter(0), ConfLevel::VHC);
    EXPECT_EQ(BpruEstimator::levelFromCounter(1), ConfLevel::VHC);
    EXPECT_EQ(BpruEstimator::levelFromCounter(2), ConfLevel::HC);
    EXPECT_EQ(BpruEstimator::levelFromCounter(3), ConfLevel::HC);
    EXPECT_EQ(BpruEstimator::levelFromCounter(4), ConfLevel::LC);
    EXPECT_EQ(BpruEstimator::levelFromCounter(5), ConfLevel::LC);
    EXPECT_EQ(BpruEstimator::levelFromCounter(6), ConfLevel::VLC);
    EXPECT_EQ(BpruEstimator::levelFromCounter(7), ConfLevel::VLC);
}

TEST(Bpru, TableMissFallsBackToPredictorCounter)
{
    BpruEstimator bpru(8 * 1024);
    // Cold table: weak predictor counter => LC, strong => HC (4.3).
    EXPECT_EQ(bpru.estimate(0x1000, 0, weakCounter(), true),
              ConfLevel::LC);
    EXPECT_EQ(bpru.estimate(0x1000, 0, strongCounter(), true),
              ConfLevel::HC);
}

TEST(Bpru, MispredictionsRaiseCounterTowardVlc)
{
    BpruEstimator::Params params; // missInc=2, correctDec=1, alloc=4
    BpruEstimator bpru(8 * 1024, params);
    bpru.update(0x1000, 0, false); // allocate at 4, then +2 -> 6
    EXPECT_EQ(bpru.estimate(0x1000, 0, strongCounter(), true),
              ConfLevel::VLC);
}

TEST(Bpru, CorrectPredictionsRecoverConfidence)
{
    BpruEstimator bpru(8 * 1024);
    bpru.update(0x1000, 0, false); // counter 6
    for (int i = 0; i < 6; ++i)
        bpru.update(0x1000, 0, true);
    EXPECT_EQ(bpru.estimate(0x1000, 0, strongCounter(), true),
              ConfLevel::VHC);
}

TEST(Bpru, HitRateGrowsWithTraining)
{
    BpruEstimator bpru(8 * 1024);
    bpru.update(0x1000, 0, true);
    bpru.estimate(0x1000, 0, strongCounter(), true);
    EXPECT_GT(bpru.hitRate(), 0.0);
}

TEST(Perfect, LabelsByOracle)
{
    PerfectEstimator p;
    EXPECT_EQ(p.estimate(0, 0, strongCounter(), true), ConfLevel::VHC);
    EXPECT_EQ(p.estimate(0, 0, strongCounter(), false),
              ConfLevel::VLC);
    EXPECT_EQ(p.sizeBytes(), 0u);
}

TEST(ConfMetrics, SpecAndPvn)
{
    ConfMetrics m;
    // 10 branches: 4 misses (3 labeled low), 6 correct (2 labeled low).
    for (int i = 0; i < 3; ++i)
        m.record(ConfLevel::LC, false);
    m.record(ConfLevel::HC, false);
    for (int i = 0; i < 2; ++i)
        m.record(ConfLevel::VLC, true);
    for (int i = 0; i < 4; ++i)
        m.record(ConfLevel::VHC, true);

    EXPECT_EQ(m.total(), 10u);
    EXPECT_EQ(m.misses(), 4u);
    EXPECT_EQ(m.lowCount(), 5u);
    EXPECT_DOUBLE_EQ(m.spec(), 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(m.pvn(), 3.0 / 5.0);
}

TEST(ConfMetrics, EmptyIsZero)
{
    ConfMetrics m;
    EXPECT_DOUBLE_EQ(m.spec(), 0.0);
    EXPECT_DOUBLE_EQ(m.pvn(), 0.0);
}

TEST(ConfLevels, LowConfidencePredicate)
{
    EXPECT_FALSE(isLowConfidence(ConfLevel::VHC));
    EXPECT_FALSE(isLowConfidence(ConfLevel::HC));
    EXPECT_TRUE(isLowConfidence(ConfLevel::LC));
    EXPECT_TRUE(isLowConfidence(ConfLevel::VLC));
}

TEST(ConfLevels, Names)
{
    EXPECT_STREQ(confLevelName(ConfLevel::VHC), "VHC");
    EXPECT_STREQ(confLevelName(ConfLevel::VLC), "VLC");
}

/** Property sweep: with any params, the counter stays in [0,7] and the
 *  level mapping is monotonic in recent misprediction pressure. */
class BpruParamSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(BpruParamSweep, CounterStaysBoundedAndResponsive)
{
    auto [inc, dec] = GetParam();
    BpruEstimator::Params params;
    params.missInc = inc;
    params.correctDec = dec;
    BpruEstimator bpru(4 * 1024, params);

    for (int i = 0; i < 20; ++i)
        bpru.update(0x1000, 0, false);
    ConfLevel after_misses =
        bpru.estimate(0x1000, 0, strongCounter(), true);
    EXPECT_EQ(after_misses, ConfLevel::VLC); // saturated at 7

    for (int i = 0; i < 40; ++i)
        bpru.update(0x1000, 0, true);
    ConfLevel after_correct =
        bpru.estimate(0x1000, 0, strongCounter(), true);
    EXPECT_EQ(after_correct, ConfLevel::VHC); // saturated at 0
}

INSTANTIATE_TEST_SUITE_P(
    UpdateRules, BpruParamSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(1u, 2u)));
