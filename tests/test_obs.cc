/**
 * @file
 * Tests for the observability layer (src/obs): histogram bucket
 * boundaries and quantile estimates, multithreaded counter/gauge/
 * histogram hammering (the wait-free claim, exercised under TSan in
 * CI), snapshot round trips through the flat-record parser, trace-ring
 * overflow/drop accounting, and span-nesting round trips through the
 * emitted Chrome trace JSON.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/job_serde.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace stsim;

namespace
{

const std::string *
flatValue(const std::vector<serde::FlatField> &fields,
          const std::string &key)
{
    for (const serde::FlatField &f : fields)
        if (f.key == key)
            return &f.value;
    return nullptr;
}

} // namespace

TEST(ObsHistogram, BucketBoundaries)
{
    // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i - 1].
    EXPECT_EQ(obs::Histogram::bucketFor(0), 0);
    EXPECT_EQ(obs::Histogram::bucketFor(1), 1);
    EXPECT_EQ(obs::Histogram::bucketFor(2), 2);
    EXPECT_EQ(obs::Histogram::bucketFor(3), 2);
    EXPECT_EQ(obs::Histogram::bucketFor(4), 3);
    EXPECT_EQ(obs::Histogram::bucketFor(7), 3);
    EXPECT_EQ(obs::Histogram::bucketFor(8), 4);
    EXPECT_EQ(obs::Histogram::bucketFor((1ull << 63) - 1), 63);
    EXPECT_EQ(obs::Histogram::bucketFor(1ull << 63), 64);
    EXPECT_EQ(obs::Histogram::bucketFor(~0ull), 64);

    EXPECT_EQ(obs::Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketUpperBound(2), 3u);
    EXPECT_EQ(obs::Histogram::bucketUpperBound(3), 7u);
    EXPECT_EQ(obs::Histogram::bucketUpperBound(64), ~0ull);

    // Every representable value lands in a bucket whose upper bound
    // is at least the value and within 2x of it (the quantile error
    // contract).
    for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
        std::uint64_t hi = obs::Histogram::bucketUpperBound(i);
        EXPECT_EQ(obs::Histogram::bucketFor(hi), i);
        if (hi > 0)
            EXPECT_EQ(obs::Histogram::bucketFor(hi / 2 + 1), i);
    }
}

TEST(ObsHistogram, QuantilesMonotoneAndWithin2x)
{
    obs::Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.observe(v);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.sum(), 500500u);

    std::uint64_t p50 = h.quantile(0.50);
    std::uint64_t p90 = h.quantile(0.90);
    std::uint64_t p99 = h.quantile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // True p50 = 500, p90 = 900, p99 = 990; log buckets promise the
    // upper bound of the containing bucket, i.e. within 2x above.
    EXPECT_GE(p50, 500u);
    EXPECT_LE(p50, 1023u);
    EXPECT_GE(p90, 900u);
    EXPECT_LE(p90, 1023u);
    EXPECT_GE(p99, 990u);
    EXPECT_LE(p99, 1023u);
}

TEST(ObsHistogram, QuantileEdgeCases)
{
    obs::Histogram empty;
    EXPECT_EQ(empty.quantile(0.99), 0u);

    obs::Histogram one;
    one.observe(42);
    EXPECT_EQ(one.quantile(0.0), 63u);  // upper bound of bucket 6
    EXPECT_EQ(one.quantile(0.5), 63u);
    EXPECT_EQ(one.quantile(1.0), 63u);

    obs::Histogram zeros;
    zeros.observe(0);
    zeros.observe(0);
    EXPECT_EQ(zeros.quantile(0.99), 0u);
}

TEST(ObsHistogram, SparseRoundTrip)
{
    obs::Histogram h;
    h.observe(0);
    h.observe(5);
    h.observe(5);
    h.observe(1'000'000);
    std::string s = obs::Histogram::sparseString(h.bucketCounts());
    std::array<std::uint64_t, obs::Histogram::kBuckets> back{};
    ASSERT_TRUE(obs::Histogram::parseSparse(s, back));
    EXPECT_EQ(back, h.bucketCounts());
    EXPECT_EQ(obs::Histogram::quantileFromCounts(back, 0.5),
              h.quantile(0.5));

    std::array<std::uint64_t, obs::Histogram::kBuckets> junk{};
    EXPECT_FALSE(obs::Histogram::parseSparse("3:", junk));
    EXPECT_FALSE(obs::Histogram::parseSparse("notanum", junk));
    EXPECT_FALSE(obs::Histogram::parseSparse("99:1", junk));

    // Empty string = all-zero buckets (a histogram nobody observed).
    std::array<std::uint64_t, obs::Histogram::kBuckets> zero{};
    ASSERT_TRUE(obs::Histogram::parseSparse("", zero));
    for (std::uint64_t c : zero)
        EXPECT_EQ(c, 0u);
}

TEST(ObsMetrics, MultithreadedHammer)
{
    // Distinct names per test: the registry is process-wide.
    obs::Counter &c =
        obs::Registry::instance().counter("test.hammer_counter");
    obs::Gauge &g = obs::Registry::instance().gauge("test.hammer_gauge");
    obs::Histogram &h =
        obs::Registry::instance().histogram("test.hammer_hist");

    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20'000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                c.inc();
                g.add(1);
                g.sub(1);
                h.observe(i % 1024);
                // Concurrent readers must be race-free too (TSan).
                if (i % 4096 == 0) {
                    (void)h.quantile(0.9);
                    (void)obs::Registry::instance().snapshotJson();
                }
            }
            (void)t;
        });
    }
    for (std::thread &th : ts)
        th.join();

    EXPECT_EQ(c.value(), kThreads * kPerThread);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(ObsMetrics, SnapshotParsesAsFlatRecord)
{
    obs::Registry &reg = obs::Registry::instance();
    reg.counter("test.snap_counter").inc(7);
    reg.gauge("test.snap_gauge").set(-3);
    obs::Histogram &h = reg.histogram("test.snap_hist");
    h.observe(10);
    h.observe(100);

    std::string snap = reg.snapshotJson();
    std::vector<serde::FlatField> fields;
    ASSERT_TRUE(serde::parseFlat(snap, fields)) << snap;

    const std::string *c = flatValue(fields, "c.test.snap_counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(*c, "7");

    // Gauges are signed, so they travel as quoted strings (the flat
    // lexer's integer path is unsigned-only).
    const std::string *g = flatValue(fields, "g.test.snap_gauge");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(*g, "-3");

    const std::string *hc = flatValue(fields, "h.test.snap_hist.count");
    ASSERT_NE(hc, nullptr);
    EXPECT_EQ(*hc, "2");
    const std::string *hb =
        flatValue(fields, "h.test.snap_hist.buckets");
    ASSERT_NE(hb, nullptr);
    std::array<std::uint64_t, obs::Histogram::kBuckets> counts{};
    ASSERT_TRUE(obs::Histogram::parseSparse(*hb, counts));
    EXPECT_EQ(counts, h.bucketCounts());

    // The text dump mentions every registered instrument.
    std::string dump = reg.textDump();
    EXPECT_NE(dump.find("test.snap_counter"), std::string::npos);
    EXPECT_NE(dump.find("test.snap_gauge"), std::string::npos);
    EXPECT_NE(dump.find("test.snap_hist"), std::string::npos);
}

TEST(ObsTrace, DisabledPathRecordsNothing)
{
    ASSERT_EQ(obs::TraceSink::current(), nullptr);
    {
        TRACE_SPAN("not.recorded");
    }
    // Install a sink afterwards: the earlier span must not appear.
    obs::TraceSink sink;
    obs::TraceSink::install(&sink);
    obs::TraceSink::install(nullptr);
    EXPECT_EQ(sink.recorded(), 0u);
}

TEST(ObsTrace, SpanNestingRoundTrip)
{
    obs::TraceSink sink;
    obs::TraceSink::install(&sink);
    {
        TRACE_SPAN("outer");
        {
            TRACE_SPAN("inner");
        }
    }
    obs::TraceSink::install(nullptr);
    ASSERT_EQ(sink.recorded(), 2u);
    EXPECT_EQ(sink.dropped(), 0u);

    std::string json = sink.flushJson();
    // Destructor order records inner before outer.
    std::size_t innerAt = json.find("\"name\":\"inner\"");
    std::size_t outerAt = json.find("\"name\":\"outer\"");
    ASSERT_NE(innerAt, std::string::npos) << json;
    ASSERT_NE(outerAt, std::string::npos) << json;
    EXPECT_LT(innerAt, outerAt);

    // The Chrome trace_event keys Perfetto needs, on every event.
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":"), std::string::npos);
    EXPECT_NE(json.find("\"otherData\":{\"dropped\":0}"),
              std::string::npos);
}

TEST(ObsTrace, RingOverflowDropsAndCounts)
{
    obs::TraceSink sink(4);
    obs::TraceSink::install(&sink);
    for (int i = 0; i < 10; ++i)
        sink.record("evt", static_cast<std::uint64_t>(i), 1);
    obs::TraceSink::install(nullptr);
    EXPECT_EQ(sink.recorded(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    std::string json = sink.flushJson();
    EXPECT_NE(json.find("\"otherData\":{\"dropped\":6}"),
              std::string::npos);
}

TEST(ObsTrace, PerThreadRingsGetDistinctTids)
{
    obs::TraceSink sink;
    obs::TraceSink::install(&sink);
    constexpr int kThreads = 4;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < 100; ++i) {
                TRACE_SPAN("thread.work");
            }
        });
    }
    for (std::thread &th : ts)
        th.join();
    obs::TraceSink::install(nullptr);
    EXPECT_EQ(sink.recorded(), kThreads * 100u);
    EXPECT_EQ(sink.dropped(), 0u);

    // Each thread's events carry its own small tid.
    std::string json = sink.flushJson();
    int distinct = 0;
    for (int tid = 1; tid <= kThreads; ++tid) {
        if (json.find("\"tid\":" + std::to_string(tid)) !=
            std::string::npos)
            ++distinct;
    }
    EXPECT_EQ(distinct, kThreads);
}

TEST(ObsTrace, NewSinkDoesNotInheritStaleRings)
{
    // A thread's cached ring belongs to one sink generation: after
    // that sink is gone, records against a fresh sink must land in a
    // fresh ring, not the dead sink's memory.
    {
        obs::TraceSink first;
        obs::TraceSink::install(&first);
        {
            TRACE_SPAN("first.sink");
        }
        obs::TraceSink::install(nullptr);
        EXPECT_EQ(first.recorded(), 1u);
    }
    obs::TraceSink second;
    obs::TraceSink::install(&second);
    {
        TRACE_SPAN("second.sink");
    }
    obs::TraceSink::install(nullptr);
    EXPECT_EQ(second.recorded(), 1u);
    EXPECT_NE(second.flushJson().find("second.sink"),
              std::string::npos);
}
