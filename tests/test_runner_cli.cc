/**
 * @file
 * Subprocess tests for the CLI surfaces: help goes to stdout with
 * exit 0 (so `stsim_runner --help | less` works), the merge failure
 * paths die with their exact fatal diagnostics -- duplicate index,
 * missing index, non-index-ascending shard files, manifest-derived
 * record counts, and the dup-tolerant verify -- and, since all three
 * binaries parse flags through common/arg_parse.hh, the help texts
 * and exit-2 diagnostics of stsim_serve and stsim_loadgen are
 * asserted byte-for-byte against their pre-refactor goldens.
 *
 * The binaries under test are baked in as STSIM_RUNNER_PATH,
 * STSIM_SERVE_PATH, and STSIM_LOADGEN_PATH by CMake.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <stdlib.h>
#include <sys/wait.h>

namespace
{

struct CmdResult
{
    int exitCode = -1;
    std::string output;
};

/** Run @p cmd through the shell, capturing the chosen streams. */
CmdResult
run(const std::string &cmd)
{
    CmdResult r;
    FILE *p = ::popen(cmd.c_str(), "r");
    EXPECT_NE(p, nullptr) << cmd;
    if (!p)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, p)) > 0)
        r.output.append(buf, n);
    int status = ::pclose(p);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::string
runner()
{
    return STSIM_RUNNER_PATH;
}

std::string
serveBin()
{
    return STSIM_SERVE_PATH;
}

std::string
loadgenBin()
{
    return STSIM_LOADGEN_PATH;
}

struct TempDir
{
    std::string path;

    TempDir()
    {
        char buf[] = "/tmp/stsim_cli_test.XXXXXX";
        char *p = ::mkdtemp(buf);
        EXPECT_NE(p, nullptr);
        path = p;
    }

    ~TempDir()
    {
        std::string cmd = "rm -rf '" + path + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }

    std::string
    file(const std::string &base, const std::string &content) const
    {
        std::string full = path + "/" + base;
        std::ofstream out(full, std::ios::binary);
        EXPECT_TRUE(out.is_open()) << full;
        out << content;
        return full;
    }
};

/** One fake result record line; merge only parses the index field. */
std::string
rec(std::uint64_t idx, const std::string &tag = "x")
{
    return "{\"index\":" + std::to_string(idx) + ",\"results\":\"" +
           tag + "\"}\n";
}

} // namespace

TEST(RunnerHelp, PrintsUsageOnStdoutAndExitsZero)
{
    for (const char *flag : {"help", "--help", "-h"}) {
        CmdResult r = run(runner() + " " + flag + " 2>/dev/null");
        EXPECT_EQ(r.exitCode, 0) << flag;
        EXPECT_NE(r.output.find("usage:"), std::string::npos) << flag;
        EXPECT_NE(r.output.find("dispatch"), std::string::npos) << flag;
    }
}

TEST(RunnerHelp, BadInvocationStillFailsOnStderr)
{
    // No args: usage on stderr, exit 2, nothing on stdout.
    CmdResult out = run(runner() + " 2>/dev/null");
    EXPECT_EQ(out.exitCode, 2);
    EXPECT_TRUE(out.output.empty());
    CmdResult err = run(runner() + " 2>&1 >/dev/null");
    EXPECT_EQ(err.exitCode, 2);
    EXPECT_NE(err.output.find("usage:"), std::string::npos);
}

TEST(MergeFailure, RequiresACompletenessTarget)
{
    // The usage line promises (--manifest FILE | --expect N); the
    // code must actually enforce it, or a tail-truncated stream
    // would merge "cleanly".
    TempDir tmp;
    std::string a = tmp.file("a.jsonl", rec(0) + rec(1));
    CmdResult r = run(runner() + " merge --out /dev/null '" + a +
                      "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("merge needs --manifest"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, DuplicateIndexDiagnostic)
{
    TempDir tmp;
    std::string a = tmp.file("a.jsonl", rec(0) + rec(1));
    std::string b = tmp.file("b.jsonl", rec(1) + rec(2));
    CmdResult r = run(runner() + " merge --expect 3 --out /dev/null '" +
                      a + "' '" + b + "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: duplicate result index 1 "
                            "(re-run shards need --allow-dups)"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, MissingIndexDiagnostic)
{
    TempDir tmp;
    std::string a = tmp.file("a.jsonl", rec(0) + rec(2));
    CmdResult r = run(runner() + " merge --expect 3 --out /dev/null '" +
                      a + "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: missing result index 1"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, NonAscendingShardFileDiagnostic)
{
    // The descent must sit past the first record: the merge discovers
    // per-file order violations as it advances a cursor, and a file
    // opening too high trips the gap check first instead.
    TempDir tmp;
    std::string a = tmp.file("a.jsonl", rec(0) + rec(2) + rec(1));
    std::string b = tmp.file("b.jsonl", rec(1));
    CmdResult r = run(runner() + " merge --expect 4 --out /dev/null '" +
                      a + "' '" + b + "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: '" + a +
                            "' is not index-ascending"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, ManifestDerivedCountCatchesTruncation)
{
    TempDir tmp;
    std::string manifest =
        tmp.file("manifest.jsonl", "{\"job\":0}\n{\"job\":1}\n"
                                   "{\"job\":2}\n");
    std::string a = tmp.file("a.jsonl", rec(0) + rec(1));
    CmdResult r = run(runner() + " merge --manifest '" + manifest +
                      "' --out /dev/null '" + a + "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: expected 3 records, "
                            "found 2"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, ExpectOverridesManifest)
{
    TempDir tmp;
    std::string manifest =
        tmp.file("manifest.jsonl", "{\"job\":0}\n{\"job\":1}\n"
                                   "{\"job\":2}\n");
    std::string a = tmp.file("a.jsonl", rec(0) + rec(1));
    CmdResult r = run(runner() + " merge --manifest '" + manifest +
                      "' --expect 2 --out /dev/null '" + a +
                      "' 2>/dev/null");
    EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(MergeDups, IdenticalDuplicatesAreVerifiedAndDropped)
{
    TempDir tmp;
    std::string a =
        tmp.file("a.jsonl", rec(0, "a") + rec(1, "b") + rec(2, "c"));
    std::string b = tmp.file("b.jsonl", rec(1, "b")); // identical re-run
    std::string out = tmp.path + "/merged.jsonl";
    CmdResult r = run(runner() + " merge --allow-dups --expect 3 "
                      "--out '" + out + "' '" + a + "' '" + b +
                      "' 2>/dev/null");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    std::ifstream merged(out);
    std::string text((std::istreambuf_iterator<char>(merged)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, rec(0, "a") + rec(1, "b") + rec(2, "c"));
}

TEST(MergeDups, DifferingDuplicateIsFatal)
{
    TempDir tmp;
    std::string a =
        tmp.file("a.jsonl", rec(0, "a") + rec(1, "b") + rec(2, "c"));
    std::string b = tmp.file("b.jsonl", rec(1, "DIFFERENT"));
    CmdResult r = run(runner() + " merge --allow-dups --expect 3 "
                      "--out /dev/null '" + a + "' '" + b +
                      "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: duplicate records for "
                            "index 1 are not byte-identical"),
              std::string::npos)
        << r.output;
}

TEST(SigPipe, MergePipedIntoHeadExitsZero)
{
    // ~200KB of records overflows the 64KB pipe buffer, so the merge
    // is still writing when `head` exits: the write fails with EPIPE
    // (SIGPIPE is ignored) and the runner must treat a vanished stdout
    // consumer as a clean, successful early exit.
    TempDir tmp;
    std::string content;
    for (int i = 0; i < 5000; ++i)
        content += rec(i);
    std::string a = tmp.file("a.jsonl", content);
    CmdResult r = run("bash -c '\"" STSIM_RUNNER_PATH "\" merge "
                      "--expect 5000 --out - \"" + a + "\" 2>/dev/null "
                      "| head -c 64 >/dev/null; "
                      "exit ${PIPESTATUS[0]}'");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(SigPipe, ManifestPipedIntoHeadExitsZero)
{
    CmdResult r = run("bash -c '\"" STSIM_RUNNER_PATH "\" manifest "
                      "--suite golden 2>/dev/null "
                      "| head -n 1 >/dev/null; "
                      "exit ${PIPESTATUS[0]}'");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(RunTimeout, WatchdogExits124WhenAShardWedges)
{
    // The hang hook stalls the shard after its first committed record
    // -- exactly the wedge --timeout-sec exists for. The watchdog must
    // fire, name itself, and exit 124 (the `timeout(1)` convention).
    TempDir tmp;
    std::string manifest = tmp.path + "/m.jsonl";
    CmdResult m = run(runner() + " manifest --suite golden "
                      "--insts 2000 --warmup 500 --out '" + manifest +
                      "' 2>&1");
    ASSERT_EQ(m.exitCode, 0) << m.output;

    CmdResult r = run("STSIM_TEST_HANG_AFTER_FIRST_RECORD=1 '" +
                      runner() + "' run --manifest '" + manifest +
                      "' --shard 0/4 --jobs 2 --timeout-sec 1 "
                      "--out '" + tmp.path + "/s0.jsonl' "
                      "2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 124) << r.output;
    EXPECT_NE(r.output.find("timed out (--timeout-sec watchdog)"),
              std::string::npos)
        << r.output;
}

TEST(RunTimeout, FlagIsRejectedOutsideShardedRun)
{
    // dump is the in-process oracle; it takes no watchdog.
    CmdResult r = run(runner() + " dump --manifest /dev/null "
                      "--timeout-sec 1 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("unknown flag --timeout-sec"),
              std::string::npos)
        << r.output;
}

TEST(RunnerHelp, EveryPublicSubcommandAndFlagIsDocumented)
{
    // The audit the usage text is held to: every subcommand and every
    // public flag any of them accepts must appear in `help` output.
    // (The STSIM_TEST_* hooks and --test-kill-shard/--test-die-after-
    // kill are intentionally undocumented fault-injection backdoors.)
    CmdResult r = run(runner() + " help 2>/dev/null");
    ASSERT_EQ(r.exitCode, 0);
    for (const char *sub :
         {"manifest", "run", "dump", "snapshot", "merge", "dispatch",
          "resume", "serve-worker", "help"}) {
        EXPECT_NE(r.output.find(std::string("stsim_runner ") + sub),
                  std::string::npos)
            << "subcommand missing from usage: " << sub;
    }
    for (const char *flag :
         {"--suite", "--insts", "--warmup", "--depth", "--out",
          "--manifest", "--shard", "--jobs", "--timeout-sec",
          "--format", "--memoize-warmup", "--from-snapshot", "--index",
          "--expect", "--allow-dups", "--dir", "--shards",
          "--max-attempts", "--concurrent", "--retry-backoff-ms",
          "--retry-backoff-cap-ms", "--runner", "--trace",
          "--metrics"}) {
        EXPECT_NE(r.output.find(flag), std::string::npos)
            << "flag missing from usage: " << flag;
    }
}

TEST(SnapshotCmd, FlagValidation)
{
    CmdResult r = run(runner() + " snapshot 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("--manifest is required"),
              std::string::npos)
        << r.output;

    TempDir tmp;
    std::string manifest = tmp.path + "/m.jsonl";
    CmdResult m = run(runner() + " manifest --suite golden "
                      "--insts 2000 --warmup 500 --out '" + manifest +
                      "' 2>&1");
    ASSERT_EQ(m.exitCode, 0) << m.output;

    CmdResult oor = run(runner() + " snapshot --manifest '" + manifest +
                        "' --index 99 2>&1 >/dev/null");
    EXPECT_EQ(oor.exitCode, 1);
    EXPECT_NE(oor.output.find("fatal: snapshot: --index 99 out of "
                              "range"),
              std::string::npos)
        << oor.output;

    CmdResult excl = run(runner() + " dump --manifest '" + manifest +
                         "' --memoize-warmup --from-snapshot /dev/null "
                         "2>&1 >/dev/null");
    EXPECT_EQ(excl.exitCode, 2);
    EXPECT_NE(excl.output.find("--memoize-warmup and --from-snapshot "
                               "are mutually exclusive"),
              std::string::npos)
        << excl.output;
}

TEST(SnapshotCmd, ForkAndMemoizeAreByteIdenticalToScratch)
{
    // The CLI face of the checkpoint API: a 2-job run-length sweep
    // dumped from scratch, forked from an on-disk snapshot, and
    // memoized must produce identical files.
    TempDir tmp;
    std::string golden = tmp.path + "/golden.jsonl";
    CmdResult m = run(runner() + " manifest --suite golden "
                      "--insts 3000 --warmup 500 --out '" + golden +
                      "' 2>&1");
    ASSERT_EQ(m.exitCode, 0) << m.output;
    std::ifstream in(golden);
    std::string line1;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line1)));
    // Same job at a second run length: one shared warmup class.
    std::string line2 = line1;
    std::size_t pos = line2.find("\"maxInstructions\":3000");
    ASSERT_NE(pos, std::string::npos) << line2;
    line2.replace(pos, 22, "\"maxInstructions\":2000");
    std::string sweep =
        tmp.file("sweep.jsonl", line1 + "\n" + line2 + "\n");

    std::string snap = tmp.path + "/warm.snap";
    CmdResult s = run(runner() + " snapshot --manifest '" + sweep +
                      "' --out '" + snap + "' 2>&1");
    ASSERT_EQ(s.exitCode, 0) << s.output;

    auto dump = [&](const std::string &extra, const std::string &out) {
        CmdResult d = run(runner() + " dump --manifest '" + sweep +
                          "' " + extra + " --out '" + out + "' 2>&1");
        ASSERT_EQ(d.exitCode, 0) << d.output;
    };
    dump("", tmp.path + "/scratch.jsonl");
    dump("--from-snapshot '" + snap + "'", tmp.path + "/fork.jsonl");
    dump("--memoize-warmup", tmp.path + "/memo.jsonl");

    auto slurp = [](const std::string &p) {
        std::ifstream f(p, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(f)),
                           std::istreambuf_iterator<char>());
    };
    std::string scratch = slurp(tmp.path + "/scratch.jsonl");
    ASSERT_FALSE(scratch.empty());
    EXPECT_EQ(scratch, slurp(tmp.path + "/fork.jsonl"));
    EXPECT_EQ(scratch, slurp(tmp.path + "/memo.jsonl"));
}

//
// stsim_serve / stsim_loadgen golden help and diagnostics: their flag
// parsing moved onto common/arg_parse.hh (serve's options block is
// now *generated*), and adopting it must not change one byte.
//

TEST(ServeHelp, GoldenFullText)
{
    const std::string expected =
"usage: stsim_serve (--unix PATH | --tcp PORT) [options]\n"
"\n"
"Serve SimJob requests as JSONL frames; one JSON object per line each\n"
"way. See README 'Serving' for the wire format and error replies.\n"
"\n"
"options:\n"
"  --unix PATH             listen on a Unix stream socket\n"
"  --tcp PORT              listen on 127.0.0.1:PORT (0 = ephemeral;\n"
"                          the bound port is printed on stderr)\n"
"  --jobs N                simulation worker threads (default: STSIM_JOBS\n"
"                          or hardware concurrency)\n"
"  --queue N               admission queue capacity: admitted but\n"
"                          unfinished requests (default 2*jobs+4);\n"
"                          overload => immediate {\"error\":\"busy\"}\n"
"  --default-deadline-ms D deadline for requests that carry none (0 =\n"
"                          unlimited, the default)\n"
"  --max-deadline-ms D     clamp every request's deadline (0 = no clamp)\n"
"  --drain-grace-ms D      on SIGTERM, cancel whatever is still running\n"
"                          this long after the drain starts (default\n"
"                          10000)\n"
"  --max-line-bytes B      request frame size cap (default 1048576)\n"
"  --reply-buffer N        buffered replies per connection before the\n"
"                          reader blocks (default 64)\n"
"  --max-conns N           connection cap (default 256)\n"
"  --max-insts N           per-job instruction cap, warmup and measured\n"
"                          each (default 1000000000; 0 = unlimited)\n"
"  --isolate               run jobs in a supervised fleet of\n"
"                          out-of-process `stsim_runner serve-worker`\n"
"                          subprocesses: a crashing job becomes a\n"
"                          structured reply, never a daemon exit\n"
"  --runner PATH           stsim_runner binary for --isolate (default:\n"
"                          stsim_runner beside this executable)\n"
"  --job-attempts K        worker deaths before a job is answered\n"
"                          {\"error\":\"internal\"} (default 3)\n"
"  --poison-threshold K    consecutive worker kills before a job is\n"
"                          quarantined as {\"error\":\"poison\"}\n"
"                          (default 2)\n"
"  --respawn-base-ms D     worker respawn backoff base (default 50)\n"
"  --respawn-cap-ms D      worker respawn backoff cap (default 5000)\n"
"  --trace FILE            write a Chrome trace_event JSON span trace\n"
"                          of the serving session to FILE on exit\n"
"                          (load it in Perfetto or chrome://tracing)\n"
"  --metrics FILE          write the final metrics-registry snapshot\n"
"                          (one JSONL record) to FILE on exit\n"
"  --stats-interval-sec N  print a one-line stats summary to stderr\n"
"                          every N seconds (0 = off, the default)\n";
    for (const char *flag : {"--help", "-h", "help"}) {
        CmdResult r = run(serveBin() + " " + flag + " 2>/dev/null");
        EXPECT_EQ(r.exitCode, 0) << flag;
        EXPECT_EQ(r.output, expected) << flag;
    }
    // Without an address the same text lands on stderr with exit 2.
    CmdResult noaddr = run(serveBin() + " 2>&1 >/dev/null");
    EXPECT_EQ(noaddr.exitCode, 2);
    EXPECT_EQ(noaddr.output, expected);
}

TEST(ServeDiag, ExactDiagnosticsAndExitCodes)
{
    CmdResult unk = run(serveBin() + " --bogus 2>&1 >/dev/null");
    EXPECT_EQ(unk.exitCode, 2);
    EXPECT_EQ(unk.output.rfind("serve: unknown argument '--bogus'\n"
                               "usage: stsim_serve",
                               0),
              0u)
        << unk.output;

    CmdResult mv = run(serveBin() + " --jobs 2>&1 >/dev/null");
    EXPECT_EQ(mv.exitCode, 1);
    EXPECT_NE(mv.output.find("fatal: serve: --jobs needs a value"),
              std::string::npos)
        << mv.output;

    CmdResult bad = run(serveBin() + " --tcp x 2>&1 >/dev/null");
    EXPECT_EQ(bad.exitCode, 1);
    EXPECT_NE(bad.output.find("fatal: serve: bad value for --tcp: "
                              "'x'"),
              std::string::npos)
        << bad.output;

    for (const char *flag : {"--max-line-bytes", "--reply-buffer",
                             "--job-attempts", "--poison-threshold"}) {
        CmdResult z = run(serveBin() + " " + flag +
                          " 0 2>&1 >/dev/null");
        EXPECT_EQ(z.exitCode, 1) << flag;
        EXPECT_NE(z.output.find(std::string("fatal: serve: ") + flag +
                                " must be positive"),
                  std::string::npos)
            << z.output;
    }
}

TEST(LoadgenHelp, GoldenFullText)
{
    const std::string expected =
"usage: stsim_loadgen MODE (--unix PATH | --tcp PORT) [options]\n"
"\n"
"modes: ping | replay | abuse | slow | bench | oneshot | health\n"
"  ping    --tries N (default 100, 100ms apart)\n"
"  replay  --manifest FILE --out FILE [--window N] [--retry N]\n"
"  abuse   --manifest FILE\n"
"  slow    --manifest FILE [--count N] [--delay-ms D]\n"
"  bench   --manifest FILE [--clients N] [--duration-sec S]\n"
"          [--deadline-ms D] [--json FILE] [--label NAME]\n"
"          [--retry N] [--tolerate-disconnect]\n"
"  oneshot --manifest FILE [--index I] [--id N] [--deadline-ms D]\n"
"          (prints the reply line on stdout)\n"
"  health  [--id N] (prints the health reply line on stdout)\n"
"\n"
"  --retry N  retry busy/internal replies up to N times per job with\n"
"             exponential backoff; without it busy retries forever\n"
"             and internal is fatal (replay) or tallied (bench)\n";
    for (const char *flag : {"--help", "-h", "help"}) {
        CmdResult r = run(loadgenBin() + " " + flag + " 2>/dev/null");
        EXPECT_EQ(r.exitCode, 0) << flag;
        EXPECT_EQ(r.output, expected) << flag;
    }
}

TEST(LoadgenDiag, ExactDiagnosticsAndExitCodes)
{
    CmdResult unk =
        run(loadgenBin() + " ping --bogus 2>&1 >/dev/null");
    EXPECT_EQ(unk.exitCode, 2);
    EXPECT_EQ(unk.output.rfind("loadgen: unknown argument '--bogus'\n"
                               "usage: stsim_loadgen",
                               0),
              0u)
        << unk.output;

    CmdResult mode = run(loadgenBin() + " wat --tcp 1 2>&1 >/dev/null");
    EXPECT_EQ(mode.exitCode, 2);
    EXPECT_EQ(mode.output.rfind("loadgen: unknown mode 'wat'\n"
                                "usage: stsim_loadgen",
                                0),
              0u)
        << mode.output;

    CmdResult mv = run(loadgenBin() + " ping --tries 2>&1 >/dev/null");
    EXPECT_EQ(mv.exitCode, 1);
    EXPECT_NE(mv.output.find("fatal: loadgen: --tries needs a value"),
              std::string::npos)
        << mv.output;

    CmdResult bad =
        run(loadgenBin() + " ping --tries -3 2>&1 >/dev/null");
    EXPECT_EQ(bad.exitCode, 1);
    EXPECT_NE(bad.output.find("fatal: loadgen: bad value for "
                              "--tries: '-3'"),
              std::string::npos)
        << bad.output;

    // No address given: usage on stderr, exit 2.
    CmdResult noaddr = run(loadgenBin() + " ping 2>&1 >/dev/null");
    EXPECT_EQ(noaddr.exitCode, 2);
    EXPECT_EQ(noaddr.output.rfind("usage: stsim_loadgen", 0), 0u)
        << noaddr.output;
}
