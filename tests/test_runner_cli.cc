/**
 * @file
 * Subprocess tests for the stsim_runner CLI surface itself: help goes
 * to stdout with exit 0 (so `stsim_runner --help | less` works), and
 * the merge failure paths die with their exact fatal diagnostics --
 * duplicate index, missing index, non-index-ascending shard files,
 * manifest-derived record counts, and the dup-tolerant verify.
 *
 * The binary under test is baked in as STSIM_RUNNER_PATH by CMake.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <stdlib.h>
#include <sys/wait.h>

namespace
{

struct CmdResult
{
    int exitCode = -1;
    std::string output;
};

/** Run @p cmd through the shell, capturing the chosen streams. */
CmdResult
run(const std::string &cmd)
{
    CmdResult r;
    FILE *p = ::popen(cmd.c_str(), "r");
    EXPECT_NE(p, nullptr) << cmd;
    if (!p)
        return r;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, p)) > 0)
        r.output.append(buf, n);
    int status = ::pclose(p);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::string
runner()
{
    return STSIM_RUNNER_PATH;
}

struct TempDir
{
    std::string path;

    TempDir()
    {
        char buf[] = "/tmp/stsim_cli_test.XXXXXX";
        char *p = ::mkdtemp(buf);
        EXPECT_NE(p, nullptr);
        path = p;
    }

    ~TempDir()
    {
        std::string cmd = "rm -rf '" + path + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }

    std::string
    file(const std::string &base, const std::string &content) const
    {
        std::string full = path + "/" + base;
        std::ofstream out(full, std::ios::binary);
        EXPECT_TRUE(out.is_open()) << full;
        out << content;
        return full;
    }
};

/** One fake result record line; merge only parses the index field. */
std::string
rec(std::uint64_t idx, const std::string &tag = "x")
{
    return "{\"index\":" + std::to_string(idx) + ",\"results\":\"" +
           tag + "\"}\n";
}

} // namespace

TEST(RunnerHelp, PrintsUsageOnStdoutAndExitsZero)
{
    for (const char *flag : {"help", "--help", "-h"}) {
        CmdResult r = run(runner() + " " + flag + " 2>/dev/null");
        EXPECT_EQ(r.exitCode, 0) << flag;
        EXPECT_NE(r.output.find("usage:"), std::string::npos) << flag;
        EXPECT_NE(r.output.find("dispatch"), std::string::npos) << flag;
    }
}

TEST(RunnerHelp, BadInvocationStillFailsOnStderr)
{
    // No args: usage on stderr, exit 2, nothing on stdout.
    CmdResult out = run(runner() + " 2>/dev/null");
    EXPECT_EQ(out.exitCode, 2);
    EXPECT_TRUE(out.output.empty());
    CmdResult err = run(runner() + " 2>&1 >/dev/null");
    EXPECT_EQ(err.exitCode, 2);
    EXPECT_NE(err.output.find("usage:"), std::string::npos);
}

TEST(MergeFailure, RequiresACompletenessTarget)
{
    // The usage line promises (--manifest FILE | --expect N); the
    // code must actually enforce it, or a tail-truncated stream
    // would merge "cleanly".
    TempDir tmp;
    std::string a = tmp.file("a.jsonl", rec(0) + rec(1));
    CmdResult r = run(runner() + " merge --out /dev/null '" + a +
                      "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("merge needs --manifest"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, DuplicateIndexDiagnostic)
{
    TempDir tmp;
    std::string a = tmp.file("a.jsonl", rec(0) + rec(1));
    std::string b = tmp.file("b.jsonl", rec(1) + rec(2));
    CmdResult r = run(runner() + " merge --expect 3 --out /dev/null '" +
                      a + "' '" + b + "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: duplicate result index 1 "
                            "(re-run shards need --allow-dups)"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, MissingIndexDiagnostic)
{
    TempDir tmp;
    std::string a = tmp.file("a.jsonl", rec(0) + rec(2));
    CmdResult r = run(runner() + " merge --expect 3 --out /dev/null '" +
                      a + "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: missing result index 1"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, NonAscendingShardFileDiagnostic)
{
    // The descent must sit past the first record: the merge discovers
    // per-file order violations as it advances a cursor, and a file
    // opening too high trips the gap check first instead.
    TempDir tmp;
    std::string a = tmp.file("a.jsonl", rec(0) + rec(2) + rec(1));
    std::string b = tmp.file("b.jsonl", rec(1));
    CmdResult r = run(runner() + " merge --expect 4 --out /dev/null '" +
                      a + "' '" + b + "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: '" + a +
                            "' is not index-ascending"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, ManifestDerivedCountCatchesTruncation)
{
    TempDir tmp;
    std::string manifest =
        tmp.file("manifest.jsonl", "{\"job\":0}\n{\"job\":1}\n"
                                   "{\"job\":2}\n");
    std::string a = tmp.file("a.jsonl", rec(0) + rec(1));
    CmdResult r = run(runner() + " merge --manifest '" + manifest +
                      "' --out /dev/null '" + a + "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: expected 3 records, "
                            "found 2"),
              std::string::npos)
        << r.output;
}

TEST(MergeFailure, ExpectOverridesManifest)
{
    TempDir tmp;
    std::string manifest =
        tmp.file("manifest.jsonl", "{\"job\":0}\n{\"job\":1}\n"
                                   "{\"job\":2}\n");
    std::string a = tmp.file("a.jsonl", rec(0) + rec(1));
    CmdResult r = run(runner() + " merge --manifest '" + manifest +
                      "' --expect 2 --out /dev/null '" + a +
                      "' 2>/dev/null");
    EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(MergeDups, IdenticalDuplicatesAreVerifiedAndDropped)
{
    TempDir tmp;
    std::string a =
        tmp.file("a.jsonl", rec(0, "a") + rec(1, "b") + rec(2, "c"));
    std::string b = tmp.file("b.jsonl", rec(1, "b")); // identical re-run
    std::string out = tmp.path + "/merged.jsonl";
    CmdResult r = run(runner() + " merge --allow-dups --expect 3 "
                      "--out '" + out + "' '" + a + "' '" + b +
                      "' 2>/dev/null");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    std::ifstream merged(out);
    std::string text((std::istreambuf_iterator<char>(merged)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, rec(0, "a") + rec(1, "b") + rec(2, "c"));
}

TEST(MergeDups, DifferingDuplicateIsFatal)
{
    TempDir tmp;
    std::string a =
        tmp.file("a.jsonl", rec(0, "a") + rec(1, "b") + rec(2, "c"));
    std::string b = tmp.file("b.jsonl", rec(1, "DIFFERENT"));
    CmdResult r = run(runner() + " merge --allow-dups --expect 3 "
                      "--out /dev/null '" + a + "' '" + b +
                      "' 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("fatal: merge: duplicate records for "
                            "index 1 are not byte-identical"),
              std::string::npos)
        << r.output;
}

TEST(SigPipe, MergePipedIntoHeadExitsZero)
{
    // ~200KB of records overflows the 64KB pipe buffer, so the merge
    // is still writing when `head` exits: the write fails with EPIPE
    // (SIGPIPE is ignored) and the runner must treat a vanished stdout
    // consumer as a clean, successful early exit.
    TempDir tmp;
    std::string content;
    for (int i = 0; i < 5000; ++i)
        content += rec(i);
    std::string a = tmp.file("a.jsonl", content);
    CmdResult r = run("bash -c '\"" STSIM_RUNNER_PATH "\" merge "
                      "--expect 5000 --out - \"" + a + "\" 2>/dev/null "
                      "| head -c 64 >/dev/null; "
                      "exit ${PIPESTATUS[0]}'");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(SigPipe, ManifestPipedIntoHeadExitsZero)
{
    CmdResult r = run("bash -c '\"" STSIM_RUNNER_PATH "\" manifest "
                      "--suite golden 2>/dev/null "
                      "| head -n 1 >/dev/null; "
                      "exit ${PIPESTATUS[0]}'");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(RunTimeout, WatchdogExits124WhenAShardWedges)
{
    // The hang hook stalls the shard after its first committed record
    // -- exactly the wedge --timeout-sec exists for. The watchdog must
    // fire, name itself, and exit 124 (the `timeout(1)` convention).
    TempDir tmp;
    std::string manifest = tmp.path + "/m.jsonl";
    CmdResult m = run(runner() + " manifest --suite golden "
                      "--insts 2000 --warmup 500 --out '" + manifest +
                      "' 2>&1");
    ASSERT_EQ(m.exitCode, 0) << m.output;

    CmdResult r = run("STSIM_TEST_HANG_AFTER_FIRST_RECORD=1 '" +
                      runner() + "' run --manifest '" + manifest +
                      "' --shard 0/4 --jobs 2 --timeout-sec 1 "
                      "--out '" + tmp.path + "/s0.jsonl' "
                      "2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 124) << r.output;
    EXPECT_NE(r.output.find("timed out (--timeout-sec watchdog)"),
              std::string::npos)
        << r.output;
}

TEST(RunTimeout, FlagIsRejectedOutsideShardedRun)
{
    // dump is the in-process oracle; it takes no watchdog.
    CmdResult r = run(runner() + " dump --manifest /dev/null "
                      "--timeout-sec 1 2>&1 >/dev/null");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("unknown flag --timeout-sec"),
              std::string::npos)
        << r.output;
}
