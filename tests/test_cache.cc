/**
 * @file
 * Unit tests for the memory hierarchy: caches, TLB, latency
 * composition and wrong-path pollution accounting.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/tlb.hh"

using namespace stsim;

TEST(Cache, ColdMissThenHit)
{
    Cache c({"t", 1024, 2, 32, 1});
    EXPECT_FALSE(c.access(0x1000, false, false));
    EXPECT_TRUE(c.access(0x1000, false, false));
    EXPECT_TRUE(c.access(0x101F, false, false)); // same 32B line
    EXPECT_FALSE(c.access(0x1020, false, false)); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2 sets, 2 ways, 32B lines: 128 bytes total.
    Cache c({"t", 128, 2, 32, 1});
    // Three lines mapping to set 0 (stride 64).
    c.access(0x0, false, false);
    c.access(0x40, false, false);
    c.access(0x0, false, false);  // refresh line 0
    c.access(0x80, false, false); // evicts 0x40
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_TRUE(c.probe(0x80));
}

TEST(Cache, PollutionAccounting)
{
    Cache c({"t", 128, 2, 32, 1});
    c.access(0x0, false, false);  // correct-path fill
    c.access(0x40, false, false); // correct-path fill
    // Wrong-path fill evicts a correct-path line.
    c.access(0x80, false, true);
    EXPECT_EQ(c.pollutionEvictions(), 1u);
    EXPECT_EQ(c.wrongPathAccesses(), 1u);
    // Evicting a wrong-path-filled line is not pollution.
    c.access(0xC0, false, true);
    c.access(0x100, false, true);
    EXPECT_LE(c.pollutionEvictions(), 2u);
}

TEST(Cache, CorrectPathTouchClearsWrongFillMark)
{
    Cache c({"t", 128, 2, 32, 1});
    c.access(0x0, false, true); // wrong-path fill
    c.access(0x0, false, false); // correct path adopts the line
    c.access(0x40, false, false);
    // Now evicting 0x0 via a wrong-path fill counts as pollution.
    c.access(0x80, false, true);
    c.access(0xC0, false, true);
    EXPECT_GE(c.pollutionEvictions(), 1u);
}

TEST(Cache, StatsReset)
{
    Cache c({"t", 1024, 2, 32, 1});
    c.access(0x0, false, false);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.probe(0x0)); // contents survive
}

TEST(Tlb, HitAfterFill)
{
    Tlb tlb(4, 4096, 28);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1FFF)); // same page
    EXPECT_FALSE(tlb.access(0x2000));
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, LruReplacement)
{
    Tlb tlb(2, 4096, 28);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.access(0x1000);  // refresh page 1
    tlb.access(0x3000);  // evicts page 2
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Hierarchy, LatencyComposition)
{
    MemoryConfig cfg; // Table 3 defaults
    MemoryHierarchy mh(cfg);

    // Cold: DL1 miss + L2 miss + TLB miss.
    auto r = mh.accessData(0x1000, false, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.l2Hit);
    EXPECT_TRUE(r.tlbMiss);
    EXPECT_EQ(r.latency, 1u + 6u + 18u + 28u);

    // Warm: DL1 hit.
    r = mh.accessData(0x1000, false, false);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 1u);
}

TEST(Hierarchy, L2CatchesL1Misses)
{
    MemoryConfig cfg;
    cfg.dl1.sizeBytes = 128; // tiny DL1 to force misses
    cfg.dl1.ways = 2;
    MemoryHierarchy mh(cfg);
    mh.accessData(0x0, false, false);
    mh.accessData(0x1000, false, false);
    mh.accessData(0x2000, false, false);
    mh.accessData(0x3000, false, false);
    // 0x0 was evicted from DL1 but lives in L2.
    auto r = mh.accessData(0x0, false, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(r.latency, 1u + 6u);
}

TEST(Hierarchy, InstFetchPath)
{
    MemoryHierarchy mh(MemoryConfig{});
    auto r = mh.fetchInst(0x400000, false);
    EXPECT_FALSE(r.l1Hit);
    r = mh.fetchInst(0x400004, false);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_EQ(mh.il1().accesses(), 2u);
}

TEST(Hierarchy, Dl1ExtraLatencyForDeepPipes)
{
    MemoryConfig cfg;
    cfg.dl1ExtraLatency = 2;
    MemoryHierarchy mh(cfg);
    mh.accessData(0x1000, false, false);
    auto r = mh.accessData(0x1000, false, false);
    EXPECT_EQ(r.latency, 3u); // 1 + 2 extra
}

/** Property sweep: geometry invariants hold over many shapes. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometry, FillsWholeCapacityWithoutConflicts)
{
    auto [size_kb, ways] = GetParam();
    std::size_t size = static_cast<std::size_t>(size_kb) * 1024;
    Cache c({"t", size, static_cast<std::size_t>(ways), 32, 1});
    std::size_t lines = size / 32;
    // Sequential fill touches each line once: all cold misses.
    for (std::size_t i = 0; i < lines; ++i)
        c.access(i * 32, false, false);
    EXPECT_EQ(c.misses(), lines);
    // Second pass: everything fits, so everything hits.
    for (std::size_t i = 0; i < lines; ++i)
        c.access(i * 32, false, false);
    EXPECT_EQ(c.misses(), lines);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CacheGeometry,
                         ::testing::Combine(::testing::Values(1, 4, 64,
                                                              512),
                                            ::testing::Values(1, 2, 4,
                                                              8)));
