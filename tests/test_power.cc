/**
 * @file
 * Unit tests for the Wattch-style power model: cc3 scaling, idle
 * floor, energy accumulation, wrong-path attribution, size scaling.
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"
#include "power/power_params.hh"

using namespace stsim;

namespace
{

PowerParams
simpleParams()
{
    PowerParams p;
    p.frequencyHz = 1e9; // 1 ns cycles for easy math
    for (PUnit u : kAllPUnits) {
        p.setPeak(u, 10.0);
        p.setPorts(u, 2.0);
    }
    return p;
}

} // namespace

TEST(PowerModel, IdleCycleBurnsFloor)
{
    PowerModel pm(simpleParams());
    pm.beginCycle();
    pm.endCycle();
    // 11 units x 10 W x 10% x 1 ns.
    EXPECT_NEAR(pm.totalEnergy(), 11 * 1.0e-9, 1e-12);
    EXPECT_DOUBLE_EQ(pm.wastedEnergy(), 0.0);
}

TEST(PowerModel, FullActivityBurnsPeak)
{
    PowerModel pm(simpleParams());
    pm.beginCycle();
    for (PUnit u : kAllPUnits) {
        if (u != PUnit::Clock)
            pm.record(u, 2.0); // saturate both ports
    }
    pm.endCycle();
    EXPECT_NEAR(pm.totalEnergy(), 11 * 10.0e-9, 1e-12);
}

TEST(PowerModel, LinearInActivity)
{
    PowerModel pm(simpleParams());
    pm.beginCycle();
    pm.record(PUnit::Alu, 1.0); // half the ports
    pm.endCycle();
    double alu = pm.unitEnergy(PUnit::Alu);
    // 10 W * (0.1 + 0.9 * 0.5) * 1 ns.
    EXPECT_NEAR(alu, 10.0 * 0.55e-9, 1e-13);
}

TEST(PowerModel, ActivityClampsAtPorts)
{
    PowerModel pm(simpleParams());
    pm.beginCycle();
    pm.record(PUnit::Alu, 50.0);
    pm.endCycle();
    EXPECT_NEAR(pm.unitEnergy(PUnit::Alu), 10.0e-9, 1e-13);
}

TEST(PowerModel, WrongPathAttribution)
{
    PowerModel pm(simpleParams());
    pm.beginCycle();
    pm.record(PUnit::Alu, 2.0, 1.0); // half the accesses wrong-path
    pm.endCycle();
    // Wrong path owns half the unit's whole energy this cycle.
    EXPECT_NEAR(pm.unitWastedEnergy(PUnit::Alu),
                pm.unitEnergy(PUnit::Alu) * 0.5, 1e-13);
}

TEST(PowerModel, ClockFollowsMeanActivity)
{
    PowerModel pm(simpleParams());
    pm.beginCycle();
    for (PUnit u : kAllPUnits)
        if (u != PUnit::Clock)
            pm.record(u, 2.0);
    pm.endCycle();
    // All units saturated -> clock at full tilt too.
    EXPECT_NEAR(pm.unitEnergy(PUnit::Clock), 10.0e-9, 1e-13);
}

TEST(PowerModel, Cc0IgnoresActivity)
{
    PowerParams p = simpleParams();
    p.style = ClockGatingStyle::cc0;
    PowerModel pm(p);
    pm.beginCycle();
    pm.endCycle();
    EXPECT_NEAR(pm.totalEnergy(), 11 * 10.0e-9, 1e-12);
}

TEST(PowerModel, AvgPowerAndSeconds)
{
    PowerModel pm(simpleParams());
    for (int i = 0; i < 1000; ++i) {
        pm.beginCycle();
        pm.endCycle();
    }
    EXPECT_NEAR(pm.seconds(), 1000e-9, 1e-12);
    EXPECT_NEAR(pm.avgPower(), 11.0 * 1.0, 1e-9); // 11 W floor total
}

TEST(PowerModel, ResetStats)
{
    PowerModel pm(simpleParams());
    pm.beginCycle();
    pm.record(PUnit::Alu, 2.0, 2.0);
    pm.endCycle();
    pm.resetStats();
    EXPECT_EQ(pm.cycles(), 0u);
    EXPECT_DOUBLE_EQ(pm.totalEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(pm.wastedEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(pm.unitEnergy(PUnit::Alu), 0.0);
}

TEST(PowerParams, CalibratedDefaultsArePositive)
{
    PowerParams p = PowerParams::calibratedDefaults();
    double total = 0.0;
    for (PUnit u : kAllPUnits) {
        EXPECT_GT(p.peak(u), 0.0) << punitName(u);
        EXPECT_GT(p.portsOf(u), 0.0) << punitName(u);
        total += p.peak(u);
    }
    EXPECT_GT(total, 56.4); // peaks exceed the average by design
}

TEST(PowerParams, BpredSizeScalingSqrtLaw)
{
    PowerParams p = PowerParams::calibratedDefaults();
    double base = p.peak(PUnit::Bpred);
    p.scaleBpredSize(32 * 1024); // 4x the 8 KB reference
    EXPECT_NEAR(p.peak(PUnit::Bpred), base * 2.0, 1e-9);
}

TEST(PowerParams, CycleSeconds)
{
    PowerParams p = PowerParams::calibratedDefaults();
    EXPECT_NEAR(p.cycleSeconds(), 1.0 / 1.2e9, 1e-18); // 1200 MHz
}

TEST(PowerUnits, NamesMatchTable1)
{
    EXPECT_STREQ(punitName(PUnit::ICache), "icache");
    EXPECT_STREQ(punitName(PUnit::Window), "window");
    EXPECT_STREQ(punitName(PUnit::Clock), "clock");
    EXPECT_EQ(kAllPUnits.size(), kNumPUnits);
}
