/**
 * @file
 * Distributed-dispatch subsystem tests: crash-safe journal round trips
 * (including torn-tail tolerance and corruption refusal), and the
 * ShardScheduler's retry / straggler / exclusive-rename / resume
 * behavior driven through an in-process fake HostLauncher -- no
 * subprocesses, fully deterministic.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include "dist/host_launcher.hh"
#include "dist/journal.hh"
#include "dist/shard_scheduler.hh"

using namespace stsim;
using namespace stsim::dist;

namespace
{

/** A throwaway directory, removed with its contents on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char buf[] = "/tmp/stsim_dist_test.XXXXXX";
        char *p = ::mkdtemp(buf);
        EXPECT_NE(p, nullptr);
        path = p;
    }

    ~TempDir()
    {
        std::string cmd = "rm -rf '" + path + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }

    std::string
    file(const std::string &base) const
    {
        return path + "/" + base;
    }
};

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << path;
    out << content;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** N fake manifest lines (merge/dispatch only count them). */
std::string
fakeManifest(std::size_t jobs)
{
    std::string s;
    for (std::size_t i = 0; i < jobs; ++i)
        s += "{\"job\":" + std::to_string(i) + "}\n";
    return s;
}

/** The record lines shard @p i of @p n owns for a @p jobs manifest. */
std::string
shardRecords(std::uint64_t i, std::uint64_t n, std::uint64_t jobs)
{
    std::string s;
    for (std::uint64_t idx = i; idx < jobs; idx += n)
        s += "{\"index\":" + std::to_string(idx) + ",\"results\":{}}\n";
    return s;
}

/**
 * Scripted in-process launcher: each launch of shard i consumes the
 * next behavior from its script and synchronously produces the
 * corresponding output file + queued exit. Behaviors:
 *   Ok          -- write the full shard slice, exit 0
 *   CrashEarly  -- write a truncated slice, report "signal 9"
 *   ExitNonzero -- write nothing, report "exit 1"
 *   Truncated   -- write a truncated slice but report success
 *   Hang        -- produce nothing until kill() (straggler fodder)
 */
class FakeLauncher : public HostLauncher
{
  public:
    enum class Behavior { Ok, CrashEarly, ExitNonzero, Truncated, Hang };

    FakeLauncher(std::uint64_t jobs) : jobs_(jobs) {}

    std::deque<Behavior> &
    script(std::uint64_t shard)
    {
        return scripts_[shard];
    }

    std::vector<ShardTask> launched;

    void
    launch(const ShardTask &task) override
    {
        launched.push_back(task);
        ++running_;
        Behavior b = Behavior::Ok;
        auto it = scripts_.find(task.shard);
        if (it != scripts_.end() && !it->second.empty()) {
            b = it->second.front();
            it->second.pop_front();
        }
        switch (b) {
          case Behavior::Ok:
            writeFile(task.outPath,
                      shardRecords(task.shard, task.shards, jobs_));
            exits_.push_back({task.shard, true, ""});
            break;
          case Behavior::CrashEarly:
            writeFile(task.outPath, "{\"index\":0,\"results\":{}}\n");
            exits_.push_back({task.shard, false, "signal 9"});
            break;
          case Behavior::ExitNonzero:
            exits_.push_back({task.shard, false, "exit 1"});
            break;
          case Behavior::Truncated:
            writeFile(task.outPath, "{\"index\":0,\"results\":{}}\n");
            exits_.push_back({task.shard, true, ""});
            break;
          case Behavior::Hang:
            hanging_.push_back(task);
            break;
        }
    }

    std::optional<ShardExit>
    waitAny(std::chrono::milliseconds timeout) override
    {
        if (exits_.empty()) {
            std::this_thread::sleep_for(timeout);
            return std::nullopt;
        }
        ShardExit ex = exits_.front();
        exits_.pop_front();
        --running_;
        return ex;
    }

    void
    kill(std::uint64_t shard) override
    {
        for (auto it = hanging_.begin(); it != hanging_.end(); ++it) {
            if (it->shard == shard) {
                hanging_.erase(it);
                exits_.push_back({shard, false, "signal 9"});
                return;
            }
        }
    }

    std::size_t running() const override { return running_; }

  private:
    std::uint64_t jobs_;
    std::map<std::uint64_t, std::deque<Behavior>> scripts_;
    std::deque<ShardExit> exits_;
    std::vector<ShardTask> hanging_;
    std::size_t running_ = 0;
};

DispatchOptions
baseOptions(const TempDir &tmp, std::uint64_t shards)
{
    DispatchOptions o;
    o.manifest = tmp.file("manifest.jsonl");
    o.dir = tmp.file("out");
    o.shards = shards;
    return o;
}

} // namespace

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

TEST(DispatchJournal, RoundTripsPlanAndShardTransitions)
{
    TempDir tmp;
    const std::string path = tmp.file("journal.jsonl");
    {
        DispatchJournal j(path);
        j.plan("m.jsonl", 777, 3, 10, 2, 5, 2, 60000);
        j.launch(0, 1, "shard-0.attempt-1.part");
        j.launch(1, 1, "shard-1.attempt-1.part");
        j.done(0, 1, "shard-0.jsonl");
        j.fail(1, 1, "signal 9");
        j.launch(1, 2, "shard-1.attempt-2.part");
        j.done(1, 2, "shard-1.jsonl");
    }
    JournalState st = DispatchJournal::replay(path);
    EXPECT_EQ(st.manifest, "m.jsonl");
    EXPECT_EQ(st.shards, 3u);
    EXPECT_EQ(st.jobs, 10u);
    EXPECT_EQ(st.workers, 2u);
    EXPECT_EQ(st.manifestHash, 777u);
    EXPECT_EQ(st.maxAttempts, 5u);
    EXPECT_EQ(st.maxConcurrent, 2u);
    EXPECT_EQ(st.timeoutMs, 60000u);
    ASSERT_EQ(st.shard.size(), 3u);
    EXPECT_TRUE(st.shard[0].done);
    EXPECT_EQ(st.shard[0].out, "shard-0.jsonl");
    EXPECT_EQ(st.shard[0].failures, 0u);
    EXPECT_TRUE(st.shard[1].done);
    EXPECT_EQ(st.shard[1].launches, 2u);
    EXPECT_EQ(st.shard[1].failures, 1u);
    EXPECT_FALSE(st.shard[2].done);
    EXPECT_EQ(st.shard[2].launches, 0u);
    EXPECT_EQ(st.doneCount(), 2u);
}

TEST(DispatchJournal, TornTrailingLineIsDroppedOnReplay)
{
    TempDir tmp;
    const std::string path = tmp.file("journal.jsonl");
    {
        DispatchJournal j(path);
        j.plan("m.jsonl", 0, 2, 4, 0, 3, 0, 0);
        j.launch(0, 1, "shard-0.attempt-1.part");
        j.done(0, 1, "shard-0.jsonl");
    }
    // Simulate a crash mid-append: a newline-less fragment.
    std::string text = readFile(path);
    writeFile(path, text + "{\"type\":\"done\",\"sha");

    JournalState st = DispatchJournal::replay(path);
    EXPECT_TRUE(st.shard[0].done);
    EXPECT_FALSE(st.shard[1].done);

    // Re-opening for append repairs the tail, so the next record
    // cannot glue onto the fragment.
    {
        DispatchJournal j(path);
        j.launch(1, 1, "shard-1.attempt-1.part");
        j.done(1, 1, "shard-1.jsonl");
    }
    st = DispatchJournal::replay(path);
    EXPECT_TRUE(st.shard[1].done);
    EXPECT_EQ(st.doneCount(), 2u);
}

TEST(DispatchJournal, NewlineLessButCompleteTailIsPreserved)
{
    // A crash can cut an append right before its trailing newline.
    // Replay accepts that record, so re-opening must complete it --
    // not truncate it -- or resume's in-memory state would diverge
    // from the journal it just rewrote.
    TempDir tmp;
    const std::string path = tmp.file("journal.jsonl");
    {
        DispatchJournal j(path);
        j.plan("m.jsonl", 0, 2, 4, 0, 3, 0, 0);
        j.done(0, 1, "shard-0.jsonl");
    }
    std::string text = readFile(path);
    ASSERT_EQ(text.back(), '\n');
    writeFile(path, text.substr(0, text.size() - 1)); // tear the '\n'

    JournalState st = DispatchJournal::replay(path);
    EXPECT_TRUE(st.shard[0].done);
    {
        DispatchJournal j(path); // repair happens here
        j.done(1, 1, "shard-1.jsonl");
    }
    st = DispatchJournal::replay(path);
    EXPECT_TRUE(st.shard[0].done) << "repair must not drop the record";
    EXPECT_TRUE(st.shard[1].done);
}

TEST(DispatchJournal, MidFileCorruptionIsFatal)
{
    TempDir tmp;
    const std::string path = tmp.file("journal.jsonl");
    writeFile(path,
              "{\"type\":\"plan\",\"manifest\":\"m\","
              "\"manifestHash\":0,\"shards\":2,"
              "\"jobs\":4,\"workers\":0,\"maxAttempts\":3,"
              "\"maxConcurrent\":0,\"timeoutMs\":0}\n"
              "this is not json\n"
              "{\"type\":\"done\",\"shard\":0,\"attempt\":1,"
              "\"out\":\"shard-0.jsonl\"}\n");
    EXPECT_EXIT(DispatchJournal::replay(path),
                ::testing::ExitedWithCode(1), "corrupt at line 2");
}

TEST(DispatchJournal, MissingPlanIsFatal)
{
    TempDir tmp;
    const std::string path = tmp.file("journal.jsonl");
    writeFile(path, "");
    EXPECT_EXIT(DispatchJournal::replay(path),
                ::testing::ExitedWithCode(1), "holds no plan record");
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(ShardScheduler, DispatchRunsEveryShardToDone)
{
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(10));
    FakeLauncher launcher(10);
    ShardScheduler sched(baseOptions(tmp, 3), launcher);
    EXPECT_EQ(sched.dispatch(), 0);

    EXPECT_EQ(launcher.launched.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) {
        EXPECT_EQ(readFile(tmp.file("out/shard-" + std::to_string(i) +
                                    ".jsonl")),
                  shardRecords(i, 3, 10));
    }
    JournalState st = DispatchJournal::replay(
        ShardScheduler::journalPath(tmp.file("out")));
    EXPECT_EQ(st.doneCount(), 3u);
}

TEST(ShardScheduler, RetriesFailedShardAndJournalsTheFailure)
{
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(8));
    FakeLauncher launcher(8);
    launcher.script(1) = {FakeLauncher::Behavior::CrashEarly,
                          FakeLauncher::Behavior::Ok};
    ShardScheduler sched(baseOptions(tmp, 4), launcher);
    EXPECT_EQ(sched.dispatch(), 0);

    EXPECT_EQ(launcher.launched.size(), 5u); // 4 shards + 1 retry
    JournalState st = DispatchJournal::replay(
        ShardScheduler::journalPath(tmp.file("out")));
    EXPECT_EQ(st.shard[1].launches, 2u);
    EXPECT_EQ(st.shard[1].failures, 1u);
    EXPECT_TRUE(st.shard[1].done);
    EXPECT_EQ(readFile(tmp.file("out/shard-1.jsonl")),
              shardRecords(1, 4, 8));
}

TEST(ShardScheduler, SuccessfulExitWithTruncatedOutputIsRetried)
{
    // A zero exit is not proof the records landed: the scheduler
    // verifies the slice's record count before finalizing.
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(8));
    FakeLauncher launcher(8);
    launcher.script(0) = {FakeLauncher::Behavior::Truncated,
                          FakeLauncher::Behavior::Ok};
    ShardScheduler sched(baseOptions(tmp, 2), launcher);
    EXPECT_EQ(sched.dispatch(), 0);

    JournalState st = DispatchJournal::replay(
        ShardScheduler::journalPath(tmp.file("out")));
    EXPECT_EQ(st.shard[0].failures, 1u);
    EXPECT_TRUE(st.shard[0].done);
    EXPECT_EQ(readFile(tmp.file("out/shard-0.jsonl")),
              shardRecords(0, 2, 8));
}

TEST(ShardScheduler, GivesUpAfterMaxAttempts)
{
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(4));
    FakeLauncher launcher(4);
    launcher.script(0) = {FakeLauncher::Behavior::ExitNonzero,
                          FakeLauncher::Behavior::ExitNonzero};
    DispatchOptions opts = baseOptions(tmp, 2);
    opts.maxAttempts = 2;
    ShardScheduler sched(std::move(opts), launcher);
    EXPECT_EXIT(sched.dispatch(), ::testing::ExitedWithCode(1),
                "shard 0 failed 2 time");
}

TEST(ShardScheduler, DispatchRefusesAnExistingJournal)
{
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(4));
    ASSERT_EQ(::mkdir(tmp.file("out").c_str(), 0777), 0);
    writeFile(ShardScheduler::journalPath(tmp.file("out")), "");
    FakeLauncher launcher(4);
    ShardScheduler sched(baseOptions(tmp, 2), launcher);
    EXPECT_EXIT(sched.dispatch(), ::testing::ExitedWithCode(1),
                "already exists");
}

TEST(ShardScheduler, StragglerIsKilledAndRetried)
{
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(4));
    FakeLauncher launcher(4);
    launcher.script(1) = {FakeLauncher::Behavior::Hang,
                          FakeLauncher::Behavior::Ok};
    DispatchOptions opts = baseOptions(tmp, 2);
    opts.shardTimeout = std::chrono::milliseconds(10);
    ShardScheduler sched(std::move(opts), launcher);
    EXPECT_EQ(sched.dispatch(), 0);

    JournalState st = DispatchJournal::replay(
        ShardScheduler::journalPath(tmp.file("out")));
    EXPECT_EQ(st.shard[1].launches, 2u);
    EXPECT_EQ(st.shard[1].failures, 1u);
    EXPECT_TRUE(st.shard[1].done);
}

TEST(ShardScheduler, ResumeRelaunchesOnlyUnfinishedShards)
{
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(10));

    // First dispatch: shard 2 dies, and so does the dispatcher (here:
    // we just stop after recording the failure, by scripting give-up
    // avoidance through a fresh scheduler below).
    ASSERT_EQ(::mkdir(tmp.file("out").c_str(), 0777), 0);
    {
        DispatchJournal j(ShardScheduler::journalPath(tmp.file("out")));
        j.plan(tmp.file("manifest.jsonl"),
               manifestFingerprint(tmp.file("manifest.jsonl")), 4,
               10, 0, 3, 0, 0);
        for (std::uint64_t i = 0; i < 4; ++i)
            j.launch(i, 1, ShardScheduler::attemptFileName(i, 1));
        j.done(0, 1, ShardScheduler::shardFileName(0));
        j.done(3, 1, ShardScheduler::shardFileName(3));
        j.fail(2, 1, "signal 9");
        // shard 1: launch with no terminal record = presumed dead.
    }
    writeFile(tmp.file("out/shard-0.jsonl"), shardRecords(0, 4, 10));
    writeFile(tmp.file("out/shard-3.jsonl"), shardRecords(3, 4, 10));

    FakeLauncher launcher(10);
    DispatchOptions opts;
    opts.dir = tmp.file("out");
    ShardScheduler sched(std::move(opts), launcher);
    EXPECT_EQ(sched.resume(), 0);

    // Only the presumed-dead shard 1 and the failed shard 2 ran.
    ASSERT_EQ(launcher.launched.size(), 2u);
    EXPECT_EQ(launcher.launched[0].shard, 1u);
    EXPECT_EQ(launcher.launched[1].shard, 2u);
    // Attempt numbering continues past the journaled history.
    EXPECT_NE(launcher.launched[0].outPath.find("attempt-2"),
              std::string::npos);

    JournalState st = DispatchJournal::replay(
        ShardScheduler::journalPath(tmp.file("out")));
    EXPECT_EQ(st.doneCount(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(readFile(tmp.file("out/" +
                                    ShardScheduler::shardFileName(i))),
                  shardRecords(i, 4, 10));
    }
}

TEST(ShardScheduler, ExclusiveRenameKeepsCompletedShardIntact)
{
    // A shard file that already exists must never be rewritten: an
    // identical re-run is discarded, a differing one is fatal.
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(4));
    ASSERT_EQ(::mkdir(tmp.file("out").c_str(), 0777), 0);
    writeFile(tmp.file("out/" + ShardScheduler::shardFileName(0)),
              shardRecords(0, 2, 4));

    FakeLauncher launcher(4);
    ShardScheduler sched(baseOptions(tmp, 2), launcher);
    EXPECT_EQ(sched.dispatch(), 0);
    EXPECT_EQ(readFile(tmp.file("out/shard-0.jsonl")),
              shardRecords(0, 2, 4));

    // Now a pre-existing file with DIFFERENT contents: determinism
    // violation, refuse to continue.
    TempDir tmp2;
    writeFile(tmp2.file("manifest.jsonl"), fakeManifest(4));
    ASSERT_EQ(::mkdir(tmp2.file("out").c_str(), 0777), 0);
    writeFile(tmp2.file("out/" + ShardScheduler::shardFileName(0)),
              "{\"index\":0,\"results\":{\"different\":true}}\n"
              "{\"index\":2,\"results\":{}}\n");
    FakeLauncher launcher2(4);
    ShardScheduler sched2(baseOptions(tmp2, 2), launcher2);
    EXPECT_EXIT(sched2.dispatch(), ::testing::ExitedWithCode(1),
                "determinism violation");
}

TEST(ShardScheduler, ResumeHonorsThePlansSchedulingKnobs)
{
    // A bare `resume --dir D` must run with the original dispatch's
    // knobs: with maxAttempts=1 journaled, one more failure gives up
    // instead of silently reverting to the default three attempts.
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(4));
    ASSERT_EQ(::mkdir(tmp.file("out").c_str(), 0777), 0);
    {
        DispatchJournal j(ShardScheduler::journalPath(tmp.file("out")));
        j.plan(tmp.file("manifest.jsonl"),
               manifestFingerprint(tmp.file("manifest.jsonl")), 2,
               4, 0, 1, 0, 0);
    }
    FakeLauncher launcher(4);
    launcher.script(0) = {FakeLauncher::Behavior::ExitNonzero};
    DispatchOptions opts;
    opts.dir = tmp.file("out");
    ShardScheduler sched(std::move(opts), launcher);
    EXPECT_EXIT(sched.resume(), ::testing::ExitedWithCode(1),
                "shard 0 failed 1 time");
}

TEST(ShardScheduler, ResumeRejectsChangedManifestContent)
{
    // Same path, same line count, different bytes: without the
    // journaled fingerprint this would silently mix two configs'
    // results in one output directory.
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(4));
    ASSERT_EQ(::mkdir(tmp.file("out").c_str(), 0777), 0);
    {
        DispatchJournal j(ShardScheduler::journalPath(tmp.file("out")));
        j.plan(tmp.file("manifest.jsonl"),
               manifestFingerprint(tmp.file("manifest.jsonl")), 2, 4,
               0, 3, 0, 0);
    }
    writeFile(tmp.file("manifest.jsonl"),
              "{\"job\":9}\n{\"job\":8}\n{\"job\":7}\n{\"job\":6}\n");
    FakeLauncher launcher(4);
    DispatchOptions opts;
    opts.dir = tmp.file("out");
    ShardScheduler sched(std::move(opts), launcher);
    EXPECT_EXIT(sched.resume(), ::testing::ExitedWithCode(1),
                "content fingerprint");
}

TEST(ShardScheduler, ResumeRefusesAShardWithNoAttemptsLeft)
{
    // The failure budget is cross-run state: --max-attempts exhausted
    // before the crash means resume must refuse, not grant a bonus
    // attempt per invocation.
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(4));
    ASSERT_EQ(::mkdir(tmp.file("out").c_str(), 0777), 0);
    {
        DispatchJournal j(ShardScheduler::journalPath(tmp.file("out")));
        j.plan(tmp.file("manifest.jsonl"),
               manifestFingerprint(tmp.file("manifest.jsonl")), 2, 4,
               0, 1, 0, 0);
        j.launch(0, 1, ShardScheduler::attemptFileName(0, 1));
        j.fail(0, 1, "exit 1");
    }
    FakeLauncher launcher(4);
    DispatchOptions opts;
    opts.dir = tmp.file("out");
    ShardScheduler sched(std::move(opts), launcher);
    EXPECT_EXIT(sched.resume(), ::testing::ExitedWithCode(1),
                "already failed 1 time");

    // An explicit larger --max-attempts is the override lever.
    FakeLauncher launcher2(4);
    DispatchOptions opts2;
    opts2.dir = tmp.file("out");
    opts2.maxAttempts = 2;
    ShardScheduler sched2(std::move(opts2), launcher2);
    EXPECT_EQ(sched2.resume(), 0);
}

TEST(ShardScheduler, RetryDelayIsDeterministicCappedAndJittered)
{
    using std::chrono::milliseconds;
    // Zero failures (first launch) and zero base are both immediate.
    EXPECT_EQ(ShardScheduler::retryDelay(0, 0, 200, 5000),
              milliseconds(0));
    EXPECT_EQ(ShardScheduler::retryDelay(3, 2, 0, 5000),
              milliseconds(0));

    // Deterministic: the same (shard, failures, base, cap) always
    // yields the same delay -- a resumed dispatcher retries on the
    // same schedule as the one that died.
    for (unsigned k = 1; k <= 6; ++k) {
        EXPECT_EQ(ShardScheduler::retryDelay(7, k, 200, 5000),
                  ShardScheduler::retryDelay(7, k, 200, 5000));
    }

    // Exponential with jitter: failure k waits at least
    // min(base << (k-1), cap) and at most base more than that.
    const std::uint64_t base = 200, cap = 5000;
    for (std::uint64_t shard = 0; shard < 4; ++shard) {
        for (unsigned k = 1; k <= 8; ++k) {
            std::uint64_t exp = base << (k - 1);
            if (exp > cap)
                exp = cap;
            auto d = ShardScheduler::retryDelay(shard, k, base, cap);
            EXPECT_GE(d, milliseconds(exp))
                << "shard " << shard << " failure " << k;
            EXPECT_LE(d, milliseconds(exp + base))
                << "shard " << shard << " failure " << k;
        }
    }

    // The jitter seed decorrelates shards: two shards that fail at
    // the same instant must not relaunch in lockstep forever.
    bool anyDiffer = false;
    for (unsigned k = 1; k <= 6 && !anyDiffer; ++k) {
        anyDiffer = ShardScheduler::retryDelay(0, k, base, cap) !=
                    ShardScheduler::retryDelay(1, k, base, cap);
    }
    EXPECT_TRUE(anyDiffer);
}

TEST(ShardScheduler, FailedShardWaitsItsBackoffBeforeRelaunch)
{
    // Two scripted failures, then success: the scheduler must hold
    // the shard back for at least retryDelay(failures) each time
    // instead of hammering relaunches at full speed.
    using clock = std::chrono::steady_clock;
    struct TimedLauncher : FakeLauncher
    {
        using FakeLauncher::FakeLauncher;
        std::vector<clock::time_point> launchTimes;
        void
        launch(const ShardTask &task) override
        {
            launchTimes.push_back(clock::now());
            FakeLauncher::launch(task);
        }
    };

    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(4));
    TimedLauncher launcher(4);
    launcher.script(0) = {FakeLauncher::Behavior::ExitNonzero,
                          FakeLauncher::Behavior::ExitNonzero,
                          FakeLauncher::Behavior::Ok};
    DispatchOptions opts = baseOptions(tmp, 1);
    opts.retryBackoffBaseMs = 40;
    opts.retryBackoffCapMs = 300;
    ShardScheduler sched(std::move(opts), launcher);
    EXPECT_EQ(sched.dispatch(), 0);

    ASSERT_EQ(launcher.launchTimes.size(), 3u);
    for (unsigned k = 1; k <= 2; ++k) {
        auto waited =
            launcher.launchTimes[k] - launcher.launchTimes[k - 1];
        EXPECT_GE(waited, ShardScheduler::retryDelay(0, k, 40, 300))
            << "relaunch " << k << " came back too fast";
    }
    JournalState st = DispatchJournal::replay(
        ShardScheduler::journalPath(tmp.file("out")));
    EXPECT_EQ(st.shard[0].launches, 3u);
    EXPECT_EQ(st.shard[0].failures, 2u);
    EXPECT_TRUE(st.shard[0].done);
}

TEST(ShardScheduler, ResumeRejectsAManifestThatChangedSize)
{
    TempDir tmp;
    writeFile(tmp.file("manifest.jsonl"), fakeManifest(10));
    ASSERT_EQ(::mkdir(tmp.file("out").c_str(), 0777), 0);
    {
        DispatchJournal j(ShardScheduler::journalPath(tmp.file("out")));
        j.plan(tmp.file("manifest.jsonl"), 0, 4, 12, 0, 3, 0, 0);
    }
    FakeLauncher launcher(10);
    DispatchOptions opts;
    opts.dir = tmp.file("out");
    ShardScheduler sched(std::move(opts), launcher);
    EXPECT_EXIT(sched.resume(), ::testing::ExitedWithCode(1),
                "journal planned 12");
}
