/**
 * @file
 * Tests for the uniform checkpoint API (core/state_serde.hh) and the
 * Simulator snapshot/fork workflow: writer/reader round trips, strict
 * rejection of malformed snapshots, and the headline property -- a
 * simulator forked from a snapshot finishes bitwise identical to one
 * that never stopped.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/logging.hh"
#include "core/job_serde.hh"
#include "core/parallel_harness.hh"
#include "core/results_sink.hh"
#include "core/simulator.hh"
#include "core/state_serde.hh"
#include "throttle/policy.hh"

using namespace stsim;

namespace
{

/** Small-but-real config: every subsystem exercised, fast to run. */
SimConfig
smallConfig(const char *experiment)
{
    SimConfig cfg;
    cfg.benchmark = "go";
    cfg.warmupInstructions = 5'000;
    cfg.maxInstructions = 20'000;
    if (std::string(experiment) == "C2") {
        cfg.confKind = ConfKind::Bpru;
        cfg.specControl.mode = SpecControlMode::Selective;
        cfg.specControl.policy = ThrottlePolicy::byName("C2");
    } else if (std::string(experiment) == "PG") {
        cfg.confKind = ConfKind::Jrs;
        cfg.specControl.mode = SpecControlMode::PipelineGating;
        cfg.specControl.gatingThreshold = 2;
    }
    return cfg;
}

/** Bit-exact result identity via the hex-float JSON encoding. */
std::string
fingerprint(const SimResults &r)
{
    return serde::toJson(r);
}

} // namespace

//
// StateWriter / StateReader primitives
//

TEST(StateSerde, ScalarRoundTrip)
{
    serde::StateWriter w;
    w.begin("s");
    w.u64("a", ~0ull);
    w.i64("b", -42);
    w.boolean("c", true);
    w.dbl("d", 0.1);
    w.str("e", "hello world");
    w.end("s");
    std::string img = w.take();

    serde::StateReader r(img);
    r.begin("s");
    EXPECT_EQ(r.u64("a"), ~0ull);
    EXPECT_EQ(r.i64("b"), -42);
    EXPECT_TRUE(r.boolean("c"));
    EXPECT_EQ(r.dbl("d"), 0.1);
    EXPECT_EQ(r.str("e"), "hello world");
    r.end("s");
    r.finish();
}

TEST(StateSerde, ArrayRoundTrip)
{
    const std::uint64_t u[3] = {1, 0, ~0ull};
    const double d[2] = {1.5, -0.0};
    std::vector<std::uint16_t> v{7, 9};

    serde::StateWriter w;
    w.begin("s");
    w.u64Array("u", u, 3);
    w.dblArray("d", d, 2);
    w.u64Vec("v", v);
    w.end("s");
    std::string img = w.take();

    serde::StateReader r(img);
    r.begin("s");
    std::vector<std::uint64_t> ru = r.u64Vec("u");
    ASSERT_EQ(ru.size(), 3u);
    EXPECT_EQ(ru[2], ~0ull);
    std::vector<double> rd = r.dblVec("d");
    ASSERT_EQ(rd.size(), 2u);
    EXPECT_EQ(rd[0], 1.5);
    EXPECT_TRUE(std::signbit(rd[1]));
    std::vector<std::uint64_t> rv = r.u64Vec("v");
    ASSERT_EQ(rv.size(), 2u);
    EXPECT_EQ(rv[1], 9u);
    r.end("s");
    r.finish();
}

TEST(StateSerde, DoubleIsBitExact)
{
    // Values decimal printing would mangle must survive exactly.
    const double vals[] = {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324};
    serde::StateWriter w;
    w.begin("s");
    w.dblArray("v", vals, 4);
    w.end("s");
    std::string img = w.take();
    serde::StateReader r(img);
    r.begin("s");
    std::vector<double> back = r.dblVec("v");
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(back[i], vals[i]) << "index " << i;
    r.end("s");
    r.finish();
}

TEST(StateSerde, WrongKeyIsFatal)
{
    serde::StateWriter w;
    w.begin("s");
    w.u64("a", 1);
    w.end("s");
    std::string img = w.take();

    FatalCaptureScope capture;
    serde::StateReader r(img);
    r.begin("s");
    EXPECT_THROW(r.u64("b"), FatalError);
}

TEST(StateSerde, WrongSectionIsFatal)
{
    serde::StateWriter w;
    w.begin("s");
    w.end("s");
    std::string img = w.take();

    FatalCaptureScope capture;
    serde::StateReader r(img);
    EXPECT_THROW(r.begin("t"), FatalError);
}

TEST(StateSerde, TruncationIsFatal)
{
    serde::StateWriter w;
    w.begin("s");
    w.u64("a", 1);
    w.end("s");
    std::string img = w.take();

    FatalCaptureScope capture;
    // Without the end marker the reader must refuse to finish.
    ASSERT_TRUE(img.size() > 4 &&
                img.compare(img.size() - 4, 4, "end\n") == 0);
    std::string cut = img.substr(0, img.size() - 4);
    serde::StateReader r(cut);
    r.begin("s");
    EXPECT_EQ(r.u64("a"), 1u);
    r.end("s");
    EXPECT_THROW(r.finish(), FatalError);
}

TEST(StateSerde, TrailingGarbageIsFatal)
{
    serde::StateWriter w;
    w.begin("s");
    w.end("s");
    std::string img = w.take() + "junk\n";

    FatalCaptureScope capture;
    serde::StateReader r(img);
    r.begin("s");
    r.end("s");
    EXPECT_THROW(r.finish(), FatalError);
}

TEST(StateSerde, VersionMismatchIsFatal)
{
    FatalCaptureScope capture;
    EXPECT_THROW(serde::StateReader r("stsim-state 999\nend\n"),
                 FatalError);
    EXPECT_THROW(serde::StateReader r("not a snapshot"), FatalError);
}

TEST(StateSerde, ShortArrayIsFatal)
{
    FatalCaptureScope capture;
    serde::StateReader r("stsim-state 1\n[s]\nv 3 1 2\n[/s]\nend\n");
    r.begin("s");
    EXPECT_THROW(r.u64Vec("v"), FatalError);
}

//
// Simulator snapshot / fork
//

TEST(Snapshot, ForkFromWarmupIsBitExact)
{
    for (const char *exp : {"baseline", "C2", "PG"}) {
        SCOPED_TRACE(exp);
        SimConfig cfg = smallConfig(exp);

        SimResults straight = Simulator(cfg).run();

        Simulator warm(cfg);
        warm.runWarmup();
        std::string snap = warm.saveSnapshot();

        Simulator forked(cfg);
        forked.restoreSnapshot(snap);
        SimResults resumed = forked.run();

        EXPECT_EQ(fingerprint(straight), fingerprint(resumed));
    }
}

TEST(Snapshot, MidMeasureSnapshotIsBitExact)
{
    SimConfig cfg = smallConfig("C2");

    Simulator a(cfg);
    a.runWarmup();
    for (int i = 0; i < 1'000; ++i)
        a.core().tick();
    std::string snap = a.saveSnapshot();
    SimResults ra = a.run();

    Simulator b(cfg);
    b.restoreSnapshot(snap);
    SimResults rb = b.run();

    EXPECT_EQ(fingerprint(ra), fingerprint(rb));
}

TEST(Snapshot, MidWarmupSnapshotIsBitExact)
{
    SimConfig cfg = smallConfig("PG");

    Simulator a(cfg);
    for (int i = 0; i < 500; ++i)
        a.core().tick();
    std::string snap = a.saveSnapshot();
    SimResults ra = a.run();

    Simulator b(cfg);
    b.restoreSnapshot(snap);
    SimResults rb = b.run();

    EXPECT_EQ(fingerprint(ra), fingerprint(rb));
}

TEST(Snapshot, SaveLoadSaveIsIdentity)
{
    SimConfig cfg = smallConfig("C2");
    Simulator a(cfg);
    a.runWarmup();
    std::string snap = a.saveSnapshot();

    Simulator b(cfg);
    b.restoreSnapshot(snap);
    EXPECT_EQ(snap, b.saveSnapshot());
}

TEST(Snapshot, ForkMayChangeRunLengthAndPower)
{
    // The class key masks maxInstructions and power, so one warmup
    // serves a sweep over them; the forked short run must equal a
    // straight short run.
    SimConfig warm_cfg = smallConfig("baseline");
    warm_cfg.maxInstructions = 50'000;
    Simulator warm(warm_cfg);
    warm.runWarmup();
    std::string snap = warm.saveSnapshot();

    SimConfig short_cfg = smallConfig("baseline");
    short_cfg.maxInstructions = 10'000;
    short_cfg.power.idleFactor *= 0.5;

    SimResults straight = Simulator(short_cfg).run();
    Simulator forked(short_cfg);
    forked.restoreSnapshot(snap);
    SimResults resumed = forked.run();

    EXPECT_EQ(fingerprint(straight), fingerprint(resumed));
}

TEST(Snapshot, WrongClassIsFatal)
{
    Simulator a(smallConfig("baseline"));
    a.runWarmup();
    std::string snap = a.saveSnapshot();

    SimConfig other = smallConfig("baseline");
    other.runSeed = 1234; // different run: different warmup class
    Simulator b(other);

    FatalCaptureScope capture;
    EXPECT_THROW(b.restoreSnapshot(snap), FatalError);
}

TEST(Snapshot, TruncatedSimulatorSnapshotIsFatal)
{
    SimConfig cfg = smallConfig("baseline");
    Simulator a(cfg);
    a.runWarmup();
    std::string snap = a.saveSnapshot();

    Simulator b(cfg);
    FatalCaptureScope capture;
    EXPECT_THROW(
        b.restoreSnapshot(snap.substr(0, snap.size() / 2)),
        FatalError);
}

namespace
{

/** Collects a wave into a vector (test-local sink). */
class CollectSink : public ResultsSink
{
  public:
    explicit CollectSink(std::vector<SimResults> &out) : out_(out) {}

    void
    write(std::uint64_t index, const SimResults &r) override
    {
        out_[index] = r;
    }

  private:
    std::vector<SimResults> &out_;
};

} // namespace

TEST(Snapshot, MemoizedWaveIsBitwiseIdenticalToScratch)
{
    // A run-length sweep: per (benchmark, experiment) all three run
    // lengths share one warmup class, so the memoized wave must run
    // exactly 4 warmups for 12 jobs -- and still commit byte-identical
    // results.
    std::vector<SimJob> jobs;
    for (const char *b : {"go", "crafty"}) {
        for (const char *exp : {"baseline", "C2"}) {
            for (std::uint64_t n : {8'000u, 12'000u, 16'000u}) {
                SimJob j;
                j.cfg = smallConfig(exp);
                j.cfg.benchmark = b;
                j.cfg.maxInstructions = n;
                j.experiment = exp;
                jobs.push_back(std::move(j));
            }
        }
    }

    std::vector<SimResults> scratch = runJobs(jobs, 3);

    std::vector<SimResults> memo(jobs.size());
    CollectSink sink(memo);
    RunOptions opts;
    opts.workers = 3;
    opts.memoizeWarmup = true;
    StreamStats stats = runJobs(jobs, sink, opts);

    EXPECT_EQ(stats.warmupsRun, 4u);
    ASSERT_EQ(scratch.size(), memo.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(fingerprint(scratch[i]), fingerprint(memo[i]))
            << "job " << i;
}

TEST(Snapshot, CorruptedFieldIsFatal)
{
    SimConfig cfg = smallConfig("baseline");
    Simulator a(cfg);
    a.runWarmup();
    std::string snap = a.saveSnapshot();

    // Damage a key name somewhere past the header; the strict reader
    // must name the mismatch instead of restoring garbage.
    std::size_t pos = snap.find("\nnext_seq ");
    ASSERT_NE(pos, std::string::npos);
    snap[pos + 1] = 'x';

    Simulator b(cfg);
    FatalCaptureScope capture;
    EXPECT_THROW(b.restoreSnapshot(snap), FatalError);
}
