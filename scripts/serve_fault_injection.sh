#!/usr/bin/env bash
# Serve fault-injection soak: prove stsim_serve survives hostile
# clients and rolling restarts without ever corrupting a result.
#
#   1. baseline: replay the golden manifest through the daemon; the
#      served results must be byte-identical to `stsim_runner dump`
#      of the same manifest, and every id answered exactly once.
#   2. abuse: garbage frames, missing keys, unknown benchmark,
#      truncated frame, oversize frame, expired deadline -- each must
#      earn a structured error, and a valid job must still be served.
#   3. client killed mid-stream: a replay is SIGKILLed partway
#      through; the daemon must shrug it off and serve a fresh replay
#      bit-exactly, with a deliberately slow reader parked on another
#      connection the whole time.
#   4. SIGTERM mid-load: a bench fleet is hammering the daemon when
#      it is told to drain; it must exit 0 within the grace period.
#   5. restart: a fresh daemon on the same socket path serves the
#      same replay bit-exactly, then drains cleanly while idle.
#
# CI runs this in Release and ASan; locally:
#
#   cmake -B build -S . && cmake --build build \
#       --target stsim_runner stsim_serve stsim_loadgen
#   scripts/serve_fault_injection.sh build
set -euo pipefail

BUILD=${1:-build}
for bin in stsim_runner stsim_serve stsim_loadgen; do
    if [ ! -x "$BUILD/$bin" ]; then
        echo "serve_fault_injection: $BUILD/$bin not built" >&2
        exit 2
    fi
done
RUNNER="$BUILD/stsim_runner"
SERVE="$BUILD/stsim_serve"
LOADGEN="$BUILD/stsim_loadgen"

TMP=$(mktemp -d)
SERVER_PID=
cleanup() {
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -KILL "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

SOCK="$TMP/serve.sock"

# Small jobs: the soak exercises failure paths, not simulation
# throughput. The manifest/dump pair is still the full golden matrix.
"$RUNNER" manifest --suite golden --insts 3000 --warmup 500 \
    --out "$TMP/manifest.jsonl"
"$RUNNER" dump --manifest "$TMP/manifest.jsonl" \
    --out "$TMP/direct.jsonl"

start_server() {
    "$SERVE" --unix "$SOCK" --queue 16 --drain-grace-ms 4000 \
        2>"$TMP/server-$1.log" &
    SERVER_PID=$!
    "$LOADGEN" ping --unix "$SOCK" --tries 100
}

start_server first

# --- 1. baseline: served results must match the in-process dump.
"$LOADGEN" replay --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --out "$TMP/served-1.jsonl"
cmp "$TMP/served-1.jsonl" "$TMP/direct.jsonl"

# --- 2. hostile input drill.
"$LOADGEN" abuse --unix "$SOCK" --manifest "$TMP/manifest.jsonl"

# --- 3. a client dies mid-stream while a slow reader is parked.
"$LOADGEN" slow --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --count 6 --delay-ms 40 &
SLOW_PID=$!
"$LOADGEN" replay --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --out "$TMP/served-doomed.jsonl" &
DOOMED_PID=$!
sleep 0.3
kill -KILL "$DOOMED_PID" 2>/dev/null || true
wait "$DOOMED_PID" 2>/dev/null || true
if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_fault_injection: server died with the killed" \
         "client" >&2
    exit 1
fi
"$LOADGEN" replay --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --out "$TMP/served-2.jsonl"
cmp "$TMP/served-2.jsonl" "$TMP/direct.jsonl"
wait "$SLOW_PID"

# --- 4. SIGTERM mid-load: drain must finish and exit 0.
"$LOADGEN" bench --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --clients 4 --duration-sec 30 --tolerate-disconnect \
    >/dev/null 2>&1 &
BENCH_PID=$!
sleep 1
kill -TERM "$SERVER_PID"
set +e
wait "$SERVER_PID"
rc=$?
set -e
SERVER_PID=
if [ "$rc" -ne 0 ]; then
    echo "serve_fault_injection: drain under load exited $rc," \
         "expected 0" >&2
    exit 1
fi
# The bench fleet loses its server mid-run; --tolerate-disconnect
# makes that a clean stop rather than a failure.
wait "$BENCH_PID" || true

# --- 5. restart on the same socket path; same bytes; idle drain.
start_server second
"$LOADGEN" replay --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --out "$TMP/served-3.jsonl"
cmp "$TMP/served-3.jsonl" "$TMP/direct.jsonl"
kill -TERM "$SERVER_PID"
set +e
wait "$SERVER_PID"
rc=$?
set -e
SERVER_PID=
if [ "$rc" -ne 0 ]; then
    echo "serve_fault_injection: idle drain exited $rc, expected 0" >&2
    exit 1
fi

echo "serve_fault_injection: abuse -> client-kill -> drain-under-load" \
     "-> restart all served bit-identical results"
