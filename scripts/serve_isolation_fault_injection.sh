#!/usr/bin/env bash
# Isolation supervision soak: prove stsim_serve --isolate contains
# crashing workers, supervises respawn, and quarantines poison jobs
# without ever corrupting a result or taking the daemon down.
#
#   1. baseline: replay the golden manifest through the isolated
#      daemon; served results must be byte-identical to
#      `stsim_runner dump`, every id answered exactly once.
#   2. poison: a job whose experiment name carries the
#      STSIM_TEST_CRASH_ON_JOB marker SIGSEGVs every worker that
#      touches it; after the kill threshold it must earn a structured
#      {"error":"poison"} reply, and resending it must be refused
#      straight from the quarantine set.
#   3. kill storm: a 4-client bench load plus a concurrent replay run
#      while a loop SIGKILLs workers every 250ms. The daemon must
#      never exit, the replay (client-side --retry absorbing any
#      `internal` replies) must still produce bit-exact results.
#   4. health: {"op":"health"} must report the supervised restarts
#      and the quarantined fingerprint.
#   5. drain: SIGTERM must exit 0 with the fleet reaped.
#
# CI runs this in Release and ASan; locally:
#
#   cmake -B build -S . && cmake --build build \
#       --target stsim_runner stsim_serve stsim_loadgen
#   scripts/serve_isolation_fault_injection.sh build
set -euo pipefail

BUILD=${1:-build}
for bin in stsim_runner stsim_serve stsim_loadgen; do
    if [ ! -x "$BUILD/$bin" ]; then
        echo "serve_isolation_fault_injection: $BUILD/$bin not" \
             "built" >&2
        exit 2
    fi
done
RUNNER="$BUILD/stsim_runner"
SERVE="$BUILD/stsim_serve"
LOADGEN="$BUILD/stsim_loadgen"

TMP=$(mktemp -d)
SERVER_PID=
KILLER_PID=
cleanup() {
    if [ -n "$KILLER_PID" ] && kill -0 "$KILLER_PID" 2>/dev/null; then
        kill -KILL "$KILLER_PID" 2>/dev/null || true
    fi
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -KILL "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

SOCK="$TMP/serve.sock"

# Small jobs: the soak exercises supervision, not simulation
# throughput. The manifest/dump pair is still the full golden matrix.
"$RUNNER" manifest --suite golden --insts 3000 --warmup 500 \
    --out "$TMP/manifest.jsonl"
"$RUNNER" dump --manifest "$TMP/manifest.jsonl" \
    --out "$TMP/direct.jsonl"

# The poison job: first manifest line with the crash marker spliced
# into its experiment name. Workers (which inherit the daemon's
# STSIM_TEST_CRASH_ON_JOB below) SIGSEGV on it; everything else in
# the golden matrix is untouched by the marker.
head -n 1 "$TMP/manifest.jsonl" \
    | sed 's/"experiment":"/"experiment":"poisonmark-/' \
    > "$TMP/poison.jsonl"
if ! grep -q poisonmark "$TMP/poison.jsonl"; then
    echo "serve_isolation_fault_injection: failed to build the" \
         "poison job" >&2
    exit 1
fi

STSIM_TEST_CRASH_ON_JOB=poisonmark \
    "$SERVE" --unix "$SOCK" --isolate --jobs 4 --queue 16 \
    --drain-grace-ms 8000 --job-attempts 6 --poison-threshold 4 \
    --respawn-base-ms 20 --respawn-cap-ms 500 \
    2>"$TMP/server.log" &
SERVER_PID=$!
"$LOADGEN" ping --unix "$SOCK" --tries 100

# --- 1. baseline: isolated results must match the in-process dump.
"$LOADGEN" replay --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --retry 10 --out "$TMP/served-1.jsonl"
cmp "$TMP/served-1.jsonl" "$TMP/direct.jsonl"

# --- 2. poison: K consecutive worker kills => structured quarantine.
"$LOADGEN" oneshot --unix "$SOCK" --manifest "$TMP/poison.jsonl" \
    --id 9001 > "$TMP/poison-1.json"
grep -q '"error":"poison"' "$TMP/poison-1.json"
grep -q 'quarantined' "$TMP/poison-1.json"
# Resending must be refused from the quarantine set, not kill more
# workers.
"$LOADGEN" oneshot --unix "$SOCK" --manifest "$TMP/poison.jsonl" \
    --id 9002 > "$TMP/poison-2.json"
grep -q '"error":"poison"' "$TMP/poison-2.json"
grep -q 'quarantined' "$TMP/poison-2.json"

# --- 3. kill storm under load: SIGKILL a worker every 250ms while a
# bench fleet and a byte-exactness replay hammer the daemon.
(
    end=$((SECONDS + 8))
    while [ "$SECONDS" -lt "$end" ]; do
        pgrep -P "$SERVER_PID" 2>/dev/null | head -n 1 \
            | xargs -r kill -KILL 2>/dev/null || true
        sleep 0.25
    done
) &
KILLER_PID=$!
"$LOADGEN" bench --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --clients 4 --duration-sec 8 --retry 8 \
    --label isolation_kill_storm --json "$TMP/storm.json" \
    >/dev/null 2>&1 &
BENCH_PID=$!
"$LOADGEN" replay --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --retry 10 --out "$TMP/served-2.jsonl"
cmp "$TMP/served-2.jsonl" "$TMP/direct.jsonl"
wait "$BENCH_PID"
wait "$KILLER_PID" 2>/dev/null || true
KILLER_PID=
if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_isolation_fault_injection: daemon died during the" \
         "worker kill storm; log:" >&2
    cat "$TMP/server.log" >&2
    exit 1
fi

# --- 4. health must report the supervision that just happened.
"$LOADGEN" health --unix "$SOCK" > "$TMP/health.json"
grep -q '"isolate":true' "$TMP/health.json"
grep -q '"quarantined":1' "$TMP/health.json"
restarts=$(sed 's/.*"restarts_total"://;s/[,}].*//' "$TMP/health.json")
if [ -z "$restarts" ] || [ "$restarts" -lt 1 ]; then
    echo "serve_isolation_fault_injection: health reports no worker" \
         "restarts after the kill storm: $(cat "$TMP/health.json")" >&2
    exit 1
fi

# --- 5. still bit-exact after the storm, then a clean drain.
"$LOADGEN" replay --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --retry 10 --out "$TMP/served-3.jsonl"
cmp "$TMP/served-3.jsonl" "$TMP/direct.jsonl"

kill -TERM "$SERVER_PID"
set +e
wait "$SERVER_PID"
rc=$?
set -e
SERVER_PID=
if [ "$rc" -ne 0 ]; then
    echo "serve_isolation_fault_injection: drain exited $rc," \
         "expected 0; log:" >&2
    cat "$TMP/server.log" >&2
    exit 1
fi

echo "serve_isolation_fault_injection: poison quarantined, $restarts" \
     "supervised restarts, all served results bit-identical"
