#!/usr/bin/env bash
# Dispatch fault-injection gate: prove the distributed dispatcher
# survives the two deaths that matter and still produces bit-exact
# output.
#
#   1. dispatch the golden manifest across 4 local shard workers with
#      fault injection armed: the worker for shard 1 is SIGKILLed
#      mid-shard (first record committed, the rest outstanding), and
#      the dispatcher then "crashes" (exit 3) the instant it journals
#      that death -- no retry, no cleanup.
#   2. `resume` replays the journal and re-launches only unfinished
#      shards.
#   3. re-run one already-complete shard by hand to simulate an
#      over-eager operator, and merge everything --allow-dups: the
#      duplicate records must be verified byte-identical and dropped.
#   4. the merged stream must be byte-for-byte identical to the
#      in-process `dump` of the same manifest (cmp).
#
# CI runs this in Release and ASan; locally:
#
#   cmake -B build -S . && cmake --build build --target stsim_runner
#   scripts/dispatch_fault_injection.sh build
set -euo pipefail

BUILD=${1:-build}
RUNNER="$BUILD/stsim_runner"
if [ ! -x "$RUNNER" ]; then
    echo "dispatch_fault_injection: $RUNNER not built" >&2
    exit 2
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$RUNNER" manifest --suite golden --out "$TMP/manifest.jsonl"

# --- 1. dispatch with a worker SIGKILLed mid-shard + dispatcher crash.
set +e
"$RUNNER" dispatch --manifest "$TMP/manifest.jsonl" --dir "$TMP/out" \
    --shards 4 --test-kill-shard 1 --test-die-after-kill
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "dispatch_fault_injection: expected simulated dispatcher" \
         "crash (exit 3), got exit $rc" >&2
    exit 1
fi
if [ -f "$TMP/out/shard-1.jsonl" ]; then
    echo "dispatch_fault_injection: killed shard must not have been" \
         "finalized" >&2
    exit 1
fi
grep -q '"type":"fail"' "$TMP/out/journal.jsonl" || {
    echo "dispatch_fault_injection: journal records no failure" >&2
    exit 1
}

# Orphaned workers from the crashed dispatcher may still be running;
# resume is designed to be safe against them (exclusive-rename
# finalize), so no cleanup here -- that IS the scenario.

# --- 2. resume: only unfinished shards re-launch.
"$RUNNER" resume --dir "$TMP/out"
for i in 0 1 2 3; do
    if [ ! -f "$TMP/out/shard-$i.jsonl" ]; then
        echo "dispatch_fault_injection: shard $i missing after" \
             "resume" >&2
        exit 1
    fi
done

# --- 3. an operator re-runs a completed shard; merge must tolerate
#        and verify the duplicates.
"$RUNNER" run --manifest "$TMP/manifest.jsonl" --shard 2/4 \
    --out "$TMP/rerun-2.jsonl"
"$RUNNER" merge --manifest "$TMP/manifest.jsonl" --allow-dups \
    --out "$TMP/merged.jsonl" \
    "$TMP"/out/shard-0.jsonl "$TMP"/out/shard-1.jsonl \
    "$TMP"/out/shard-2.jsonl "$TMP"/out/shard-3.jsonl \
    "$TMP/rerun-2.jsonl"

# --- 4. byte-for-byte equivalence with the in-process reference.
"$RUNNER" dump --manifest "$TMP/manifest.jsonl" --out "$TMP/direct.jsonl"
cmp "$TMP/merged.jsonl" "$TMP/direct.jsonl"

echo "dispatch_fault_injection: kill -> crash -> resume -> dup-merge" \
     "is bit-identical to the in-process dump"
