#!/usr/bin/env bash
# Snapshot/fork equivalence gate: the warmup checkpoint API must never
# change a result byte. Three properties, each enforced with cmp:
#
#   1. A memoized dump of the pinned golden matrix (every job its own
#      warmup class: policies change warmup behavior) is byte-identical
#      to a from-scratch dump.
#   2. A run-length sweep forked from one on-disk `stsim_runner
#      snapshot` checkpoint (--from-snapshot) is byte-identical to a
#      from-scratch dump, through both the dump and sharded-run paths.
#   3. A memoized sweep runs its warmup exactly once for the whole wave
#      and still commits byte-identical results.
#
# CI runs this on every PR; locally:
#
#   cmake -B build -S . && cmake --build build --target stsim_runner
#   scripts/snapshot_equivalence.sh build
set -euo pipefail

BUILD=${1:-build}
RUNNER="$BUILD/stsim_runner"
if [ ! -x "$RUNNER" ]; then
    echo "snapshot_equivalence: $RUNNER not built" >&2
    exit 2
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# 1. Memoized golden matrix == scratch golden matrix. Small run
# lengths: this is an equivalence check, not a perf demo.
"$RUNNER" manifest --suite golden --insts 3000 --warmup 500 \
    --out "$TMP/golden.jsonl"
"$RUNNER" dump --manifest "$TMP/golden.jsonl" --out "$TMP/g_scratch.jsonl"
"$RUNNER" dump --manifest "$TMP/golden.jsonl" --memoize-warmup \
    --out "$TMP/g_memo.jsonl"
cmp "$TMP/g_scratch.jsonl" "$TMP/g_memo.jsonl"

# 2. A run-length sweep (same benchmark+policy, growing measured runs)
# shares one warmup class; fork every job from one on-disk snapshot.
for n in 2000 3000 4000; do
    "$RUNNER" manifest --suite golden --insts "$n" --warmup 1000 \
        2>/dev/null | head -n 1
done > "$TMP/sweep.jsonl"
"$RUNNER" snapshot --manifest "$TMP/sweep.jsonl" --index 0 \
    --out "$TMP/warm.snap"
"$RUNNER" dump --manifest "$TMP/sweep.jsonl" --out "$TMP/s_scratch.jsonl"
"$RUNNER" dump --manifest "$TMP/sweep.jsonl" \
    --from-snapshot "$TMP/warm.snap" --out "$TMP/s_fork.jsonl"
cmp "$TMP/s_scratch.jsonl" "$TMP/s_fork.jsonl"
"$RUNNER" run --manifest "$TMP/sweep.jsonl" --shard 0/1 \
    --from-snapshot "$TMP/warm.snap" --out "$TMP/s_fork_run.jsonl"
"$RUNNER" merge --out "$TMP/s_fork_merged.jsonl" \
    --manifest "$TMP/sweep.jsonl" "$TMP/s_fork_run.jsonl"
cmp "$TMP/s_scratch.jsonl" "$TMP/s_fork_merged.jsonl"

# 3. Memoized sweep: one warmup for the whole wave, same bytes.
"$RUNNER" dump --manifest "$TMP/sweep.jsonl" --memoize-warmup \
    --out "$TMP/s_memo.jsonl" 2> "$TMP/s_memo.err"
cmp "$TMP/s_scratch.jsonl" "$TMP/s_memo.jsonl"
grep -q "1 warmup(s) for 3 jobs" "$TMP/s_memo.err" || {
    echo "snapshot_equivalence: expected exactly 1 memoized warmup:" >&2
    cat "$TMP/s_memo.err" >&2
    exit 1
}

echo "snapshot_equivalence: memoized matrix, forked sweep (dump and" \
     "sharded run), and memoized sweep are all bit-identical to" \
     "from-scratch dumps"
