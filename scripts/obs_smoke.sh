#!/usr/bin/env bash
# Observability smoke gate: tracing and metrics are garnish, never an
# ingredient -- turning them on must not change one result byte, and
# the files they emit must be well-formed and self-consistent.
#
#   1. A traced+metered `stsim_runner dump` of the golden matrix is
#      byte-identical to a plain dump; its trace file is a Chrome
#      trace_event document (ph/ts/dur on every event) holding the
#      job lifecycle spans, and its metrics snapshot counts exactly
#      the manifest's jobs in runjobs.jobs_completed.
#   2. A traced stsim_serve (--trace/--metrics/--stats-interval-sec)
#      serves a replay byte-identical to the in-process dump, prints
#      periodic stats lines, and after drain its trace holds the
#      serve.request spans and its metrics snapshot counts exactly
#      the replayed ids.
#   3. `stsim_loadgen bench` ingests {"op":"metrics"} snapshots
#      around its run and reports the server-side queue-wait and
#      sim-time window in its BENCH_serve.json row.
#
# CI runs this in Release and TSan; locally:
#
#   cmake -B build -S . && cmake --build build \
#       --target stsim_runner stsim_serve stsim_loadgen
#   scripts/obs_smoke.sh build
set -euo pipefail

BUILD=${1:-build}
for bin in stsim_runner stsim_serve stsim_loadgen; do
    if [ ! -x "$BUILD/$bin" ]; then
        echo "obs_smoke: $BUILD/$bin not built" >&2
        exit 2
    fi
done
RUNNER="$BUILD/stsim_runner"
SERVE="$BUILD/stsim_serve"
LOADGEN="$BUILD/stsim_loadgen"

TMP=$(mktemp -d)
SERVER_PID=
cleanup() {
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -KILL "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "obs_smoke: $*" >&2
    exit 1
}

# One flat-record integer field, e.g. extract c.serve.jobs_completed f.
extract() {
    grep -o "\"$1\":[0-9]*" "$2" | head -n 1 | cut -d: -f2
}

# The Chrome trace_event keys Perfetto needs, plus the named spans
# this layer promises to emit.
check_trace() {
    local f=$1
    shift
    [ -s "$f" ] || fail "trace file $f is empty"
    grep -q '"traceEvents":\[' "$f" || fail "$f: no traceEvents array"
    grep -q '"ph":"X"' "$f" || fail "$f: no complete (ph:X) events"
    grep -q '"ts":' "$f" || fail "$f: events carry no ts"
    grep -q '"dur":' "$f" || fail "$f: events carry no dur"
    for span in "$@"; do
        grep -q "\"name\":\"$span\"" "$f" ||
            fail "$f: expected span $span is missing"
    done
}

"$RUNNER" manifest --suite golden --insts 3000 --warmup 500 \
    --out "$TMP/manifest.jsonl"
JOBS=$(wc -l < "$TMP/manifest.jsonl")

# --- 1. traced dump == plain dump, byte for byte.
"$RUNNER" dump --manifest "$TMP/manifest.jsonl" \
    --out "$TMP/plain.jsonl"
"$RUNNER" dump --manifest "$TMP/manifest.jsonl" \
    --trace "$TMP/dump.trace.json" --metrics "$TMP/dump.metrics.json" \
    --out "$TMP/traced.jsonl"
cmp "$TMP/plain.jsonl" "$TMP/traced.jsonl"
check_trace "$TMP/dump.trace.json" job.warmup job.measure job.commit
DUMP_DONE=$(extract c.runjobs.jobs_completed "$TMP/dump.metrics.json")
[ "$DUMP_DONE" = "$JOBS" ] ||
    fail "dump metrics: jobs_completed=$DUMP_DONE, manifest has $JOBS"

# --- 2. traced serve: replay matches the dump; counters match the
# replayed ids; the trace holds the request pipeline spans.
SOCK="$TMP/serve.sock"
"$SERVE" --unix "$SOCK" --queue 16 --drain-grace-ms 4000 \
    --trace "$TMP/serve.trace.json" \
    --metrics "$TMP/serve.metrics.json" \
    --stats-interval-sec 1 2>"$TMP/server.log" &
SERVER_PID=$!
"$LOADGEN" ping --unix "$SOCK" --tries 100

"$LOADGEN" replay --unix "$SOCK" --manifest "$TMP/manifest.jsonl" \
    --out "$TMP/served.jsonl"
cmp "$TMP/served.jsonl" "$TMP/plain.jsonl"

# The periodic stats line rides the info log channel (1s cadence).
for _ in $(seq 1 50); do
    grep -q "stats requests=" "$TMP/server.log" && break
    sleep 0.2
done
grep -q "stats requests=" "$TMP/server.log" ||
    fail "no periodic stats line in server log"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=

check_trace "$TMP/serve.trace.json" serve.parse serve.sim \
    serve.request serve.reply_flush
SERVE_DONE=$(extract c.serve.jobs_completed "$TMP/serve.metrics.json")
[ "$SERVE_DONE" = "$JOBS" ] ||
    fail "serve metrics: jobs_completed=$SERVE_DONE, replayed $JOBS"
QWAIT_N=$(extract h.serve.queue_wait_us.count "$TMP/serve.metrics.json")
[ "$QWAIT_N" = "$JOBS" ] ||
    fail "serve metrics: queue_wait count=$QWAIT_N, replayed $JOBS"

# --- 3. bench ingests {"op":"metrics"} and reports the server-side
# window. Fresh untraced server: the op must not need --trace.
SOCK2="$TMP/serve2.sock"
"$SERVE" --unix "$SOCK2" --queue 16 --drain-grace-ms 4000 \
    2>"$TMP/server2.log" &
SERVER_PID=$!
"$LOADGEN" ping --unix "$SOCK2" --tries 100
"$LOADGEN" bench --unix "$SOCK2" --manifest "$TMP/manifest.jsonl" \
    --clients 2 --duration-sec 1 --json "$TMP/bench.json" \
    2>"$TMP/bench.log"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=

grep -q '"server_queue_wait_us":{' "$TMP/bench.json" ||
    fail "bench row lacks server_queue_wait_us"
grep -q '"server_sim_time_us":{' "$TMP/bench.json" ||
    fail "bench row lacks server_sim_time_us"
grep -q "server window" "$TMP/bench.log" ||
    fail "bench did not report the server-side window"
BENCH_OK=$(extract ok "$TMP/bench.json")
# The sim-time window must cover at least every job the bench saw
# complete (replies raced past the closing snapshot may add more).
SIM_N=$(grep -o '"server_sim_time_us":{"count":[0-9]*' \
    "$TMP/bench.json" | cut -d: -f3)
[ -n "$BENCH_OK" ] && [ -n "$SIM_N" ] && [ "$SIM_N" -ge "$BENCH_OK" ] ||
    fail "server sim window count $SIM_N < bench ok $BENCH_OK"

echo "obs_smoke: traced dump and traced serve are byte-identical to" \
     "untraced runs; trace files are Perfetto-shaped; metrics" \
     "snapshots count exactly the work done; bench ingests the" \
     "server-side metrics window"
