#!/usr/bin/env python3
"""Compare a fresh microbench JSON against the committed baseline.

Non-gating by design: the perf trajectory lives in
BENCH_microbench.json, and this script turns a fresh run of the same
benchmarks into a readable drift report. In CI it runs with
--github --strict under continue-on-error, so a regression paints a
::warning:: annotation on the run (loudest for the whole-core
BM_CoreSimulation* rows) without blocking the merge -- single-core CI
runners are far too noisy for a hard perf gate.

Usage:
  scripts/perf_regress.py --baseline BENCH_microbench.json \
      --current fresh.json [--tolerance 0.25] [--github] [--strict]

Exit status: 0, or 1 with --strict when any benchmark regressed past
the tolerance.
"""

import argparse
import json
import sys


def load_rows(path):
    """name -> real_time from a google-benchmark JSON file.

    Plain iteration rows are taken as-is; when a benchmark was run with
    repetitions, the median aggregate row is preferred and the per-rep
    rows are ignored. Synthetic rows appended by bench/run_bench.sh
    (warmup_sweep/*) follow the same schema and need no special case.
    """
    with open(path) as f:
        doc = json.load(f)
    plain = {}
    medians = {}
    for row in doc.get("benchmarks", []):
        name = row.get("run_name") or row.get("name")
        if not name or "real_time" not in row:
            continue
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                medians[name] = float(row["real_time"])
        elif row.get("run_type", "iteration") == "iteration":
            plain.setdefault(name, float(row["real_time"]))
    plain.update(medians)
    return plain


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="BENCH_microbench.json",
                    help="committed benchmark JSON (the trajectory)")
    ap.add_argument("--current", required=True,
                    help="freshly recorded benchmark JSON")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional slowdown before a row "
                         "counts as a regression (default 0.25)")
    ap.add_argument("--github", action="store_true",
                    help="emit ::warning:: workflow annotations for "
                         "regressions")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any row regressed")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("perf_regress: no common benchmarks between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 2

    regressed = []
    width = max(len(n) for n in shared)
    for name in shared:
        b, c = base[name], cur[name]
        if b <= 0:
            continue
        ratio = c / b
        mark = " "
        if ratio > 1.0 + args.tolerance:
            mark = "R"  # slower than baseline beyond tolerance
            regressed.append((name, ratio))
        elif ratio < 1.0 - args.tolerance:
            mark = "+"  # markedly faster; worth refreshing baseline
        print(f"{mark} {name:<{width}}  base {b:12.3f}  "
              f"cur {c:12.3f}  x{ratio:.3f}")

    only = sorted(set(cur) - set(base))
    for name in only:
        print(f"N {name:<{width}}  (no baseline row)")

    for name, ratio in regressed:
        msg = (f"perf regression: {name} is {ratio:.2f}x the "
               f"committed baseline (tolerance "
               f"{1.0 + args.tolerance:.2f}x)")
        if args.github:
            # The whole-core rows are the tentpole metric; annotate
            # them on the file that defines them so the warning lands
            # somewhere clickable.
            if name.startswith("BM_CoreSimulation"):
                print(f"::warning file=bench/microbench.cc::{msg}")
            else:
                print(f"::warning::{msg}")
        else:
            print(msg, file=sys.stderr)

    if regressed:
        print(f"{len(regressed)} of {len(shared)} benchmarks "
              "regressed past tolerance", file=sys.stderr)
        return 1 if args.strict else 0
    print(f"all {len(shared)} shared benchmarks within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
