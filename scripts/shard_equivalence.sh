#!/usr/bin/env bash
# Shard-equivalence gate: run the pinned golden matrix as 4 separate
# stsim_runner subprocesses (--shard i/4), merge the JSONL shard
# outputs back into submission order, and require the merged stream to
# be byte-identical to an in-process `dump` of the same manifest.
# CI runs this on every PR; locally:
#
#   cmake -B build -S . && cmake --build build --target stsim_runner
#   scripts/shard_equivalence.sh build
set -euo pipefail

BUILD=${1:-build}
RUNNER="$BUILD/stsim_runner"
if [ ! -x "$RUNNER" ]; then
    echo "shard_equivalence: $RUNNER not built" >&2
    exit 2
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$RUNNER" manifest --suite golden --out "$TMP/manifest.jsonl"
total=$(wc -l < "$TMP/manifest.jsonl")

pids=()
for i in 0 1 2 3; do
    "$RUNNER" run --manifest "$TMP/manifest.jsonl" --shard "$i/4" \
        --out "$TMP/shard$i.jsonl" &
    pids+=("$!")
done
for p in "${pids[@]}"; do
    wait "$p"
done

# The manifest itself is the authority on the expected record count.
"$RUNNER" merge --out "$TMP/merged.jsonl" --manifest "$TMP/manifest.jsonl" \
    "$TMP"/shard0.jsonl "$TMP"/shard1.jsonl \
    "$TMP"/shard2.jsonl "$TMP"/shard3.jsonl
"$RUNNER" dump --manifest "$TMP/manifest.jsonl" --out "$TMP/direct.jsonl"

cmp "$TMP/merged.jsonl" "$TMP/direct.jsonl"
echo "shard_equivalence: 4-shard merge is bit-identical to the" \
     "in-process dump ($total results)"
