/**
 * @file
 * Fetch stage: follows the predicted instruction stream, switching to a
 * wrong-path cursor after a misprediction and back after resolution.
 */

#include "common/logging.hh"
#include "common/prefetch.hh"
#include "core.hh"

namespace stsim
{

std::optional<Addr>
Core::processControl(DynInst &di)
{
    const bool on_wrong = fetchMode_ == FetchMode::WrongPath;
    const bool wp = di.wrongPath;

    di.pred = deps_.bpred->predict(di.ti);
    di.predicted = true;
    deps_.power->record(PUnit::Bpred, 1, wp ? 1 : 0);

    // Confidence estimation for conditional branches (drives the
    // speculation controller; also metered as bpred-unit activity).
    if (di.ti.isCondBranch() && deps_.confidence) {
        bool dir_correct =
            on_wrong ? true : di.pred.predTaken == di.ti.taken;
        di.conf = confEstimate_(deps_.confidence, di.ti.pc,
                                di.pred.histBefore, di.pred.dir,
                                dir_correct);
        di.confAssigned = true;
        deps_.power->record(PUnit::Bpred, 1, wp ? 1 : 0);
        deps_.controller->onCondBranchFetched(di.seq, di.conf);
    }

    if (on_wrong) {
        // The wrong path follows the cursor's own outcomes; its
        // branches never redirect fetch. A taken control transfer
        // whose target the BTB did not supply still costs the
        // misfetch bubble.
        if (di.ti.taken && !di.pred.btbHit &&
            di.ti.cls != InstClass::Return) {
            fetchStallUntil_ = now_ + cfg_.btbMissPenalty;
            ++stats_.btbMisfetches;
            fetchPc_ = di.ti.npc;
            return std::nullopt;
        }
        return di.ti.npc;
    }

    // Correct path: compare prediction against the architectural
    // outcome (the simulator knows it at fetch; the machine does not).
    bool dir_wrong =
        di.ti.isCondBranch() && di.pred.predTaken != di.ti.taken;
    bool target_wrong = false;
    if (!dir_wrong && di.pred.predTaken && di.ti.taken) {
        if (di.ti.cls == InstClass::Return)
            target_wrong = di.pred.predTarget != di.ti.target;
        else if (di.pred.btbHit && di.pred.predTarget != di.ti.target)
            target_wrong = true; // stale/aliased BTB entry
    }

    if (dir_wrong || target_wrong) {
        di.mispredicted = true;
        if (di.ti.cls == InstClass::Return)
            ++stats_.rasMispredicts;
        guardBranchSeq_ = di.seq;

        if (cfg_.oracle == OracleMode::OracleFetch) {
            fetchMode_ = FetchMode::WaitBranch;
            return std::nullopt;
        }

        // Where the machine believes execution continues.
        Addr wrong_pc = di.pred.predTaken
                            ? (di.pred.predTarget ? di.pred.predTarget
                                                  : di.ti.target)
                            : di.ti.pc + 4;
        const StaticProgram &prog = deps_.workload->program();
        if (wrong_pc < prog.codeBase() || wrong_pc >= prog.codeEnd()) {
            // Predicted into garbage (cold RAS): fetch stalls until
            // the branch resolves.
            fetchMode_ = FetchMode::WaitBranch;
            return std::nullopt;
        }

        fetchMode_ = FetchMode::WrongPath;
        wrongCursor_.emplace(*deps_.workload, wrong_pc,
                             di.seq * 0x9e3779b97f4a7c15ull);
        fetchPc_ = wrong_pc;
        if (di.pred.predTaken && !di.pred.btbHit) {
            // Direction was (wrongly) taken and the target comes from
            // decode: pay the misfetch bubble before the wrong path.
            fetchStallUntil_ = now_ + cfg_.btbMissPenalty;
            ++stats_.btbMisfetches;
            return std::nullopt;
        }
        if (di.pred.predTaken)
            return std::nullopt; // discontinuous fetch: end the group
        return wrong_pc;         // fall-through keeps streaming
    }

    // Correct prediction. A taken transfer with no BTB-supplied target
    // pays the misfetch bubble and resumes at the real target once
    // decode computes it. (Returns with a wrong or empty RAS entry
    // were classified as full mispredicts above.)
    if (di.pred.predTaken && !di.pred.btbHit) {
        fetchStallUntil_ = now_ + cfg_.btbMissPenalty;
        ++stats_.btbMisfetches;
        fetchPc_ = di.ti.npc;
        return std::nullopt;
    }
    return di.ti.npc;
}

void
Core::fetchStage()
{
    if (fetchMode_ == FetchMode::WaitBranch) {
        ++stats_.oracleFetchStall;
        return;
    }
    if (now_ < fetchStallUntil_) {
        ++stats_.fetchRedirectStall;
        return;
    }
    if (!deps_.controller->fetchActive(now_)) {
        ++stats_.fetchThrottled;
        return;
    }
    if (fetchQ_.size() + cfg_.fetchWidth > fetchQCap_)
        return; // backpressure from a stalled decode stage

    const unsigned line_bits = 5; // 32-byte lines (Table 3)
    const unsigned line_insts = 1u << (line_bits - 2);
    unsigned fetched = 0;
    unsigned taken_branches = 0;
    Addr cur_line = kInvalidAddr;
    bool stop = false;

    while (!stop && fetched < cfg_.fetchWidth) {
        const bool wp = fetchMode_ == FetchMode::WrongPath;
        Addr line = fetchPc_ >> line_bits;
        if (line != cur_line) {
            auto r = deps_.memory->fetchInst(fetchPc_, wp);
            deps_.power->record(PUnit::ICache, 1, wp ? 1 : 0);
            if (r.l2Accessed)
                deps_.power->record(PUnit::DCache2, 1, wp ? 1 : 0);
            cur_line = line;
            if (!r.l1Hit) {
                // Miss: instructions already fetched this cycle are
                // delivered; fetch resumes when the line arrives.
                fetchStallUntil_ = now_ + r.latency;
                ++stats_.fetchIcacheStall;
                break;
            }
        }

        // Batched generation: fill up to the line boundary (a group
        // never spans an icache line, so the per-line access above
        // stays once-per-line) straight into freshly popped slots.
        // The generator stops after a block terminator, so a branch
        // can only be the group's last instruction -- fetch mode and
        // PC handling run between groups, exactly as the serial loop
        // interleaved them.
        const unsigned line_room =
            line_insts - ((fetchPc_ >> 2) & (line_insts - 1));
        unsigned navail = cfg_.fetchWidth - fetched;
        if (navail > line_room)
            navail = line_room;
        std::uint32_t group[8];
        TraceInst *tis[8];
        for (unsigned i = 0; i < navail; ++i) {
            group[i] = allocSlotRaw();
            tis[i] = &slots_[group[i]].ti;
        }
        const unsigned m = wp ? wrongCursor_->nextGroup(tis, navail)
                              : deps_.workload->nextGroup(tis, navail);
        // Unused slots go back in reverse pop order, restoring the
        // free stack exactly as if they were never allocated.
        for (unsigned i = navail; i-- > m;)
            freeSlots_.push_back(group[i]);
        ++hot_.fetchGroups;
        stsim_dbg_assert(tis[0]->pc == fetchPc_,
                     "fetch desync: walker %#llx fetch %#llx",
                     static_cast<unsigned long long>(tis[0]->pc),
                     static_cast<unsigned long long>(fetchPc_));

        for (unsigned i = 0; i < m; ++i) {
            const std::uint32_t slot = group[i];
            DynInst &di = inst(slot);
            di.reset(); // deferred from allocSlotRaw; ti already live
            di.seq = nextSeq_++;
            di.wrongPath = wp;
            di.decodeReady = now_ + cfg_.fetchStages;
            insertSeqSlot(di.seq, slot);
            ++inflightCount_;
            fetchQ_.push_back(slot);
            ++stats_.fetchedInsts;
            if (wp)
                ++stats_.fetchedWrongPath;
            ++fetched;

            if (di.ti.isBranch()) {
                stsim_dbg_assert(i + 1 == m,
                             "branch mid-group (terminator must end "
                             "the group)");
                auto cont = processControl(di);
                if (!cont) {
                    stop = true;
                    break;
                }
                fetchPc_ = *cont;
                if (di.pred.predTaken &&
                    ++taken_branches >= cfg_.maxTakenBranchesPerFetch) {
                    stop = true; // Table 3: up to 2 taken per cycle
                    break;
                }
            } else {
                fetchPc_ += 4;
            }
        }
    }
}

} // namespace stsim
