#include "core.hh"

#include "common/logging.hh"

namespace stsim
{

Core::Core(const CoreConfig &cfg, const Deps &deps)
    : cfg_(cfg),
      deps_(deps),
      fuPool_(cfg)
{
    cfg_.validate();
    stsim_assert(deps_.workload && deps_.bpred && deps_.memory &&
                     deps_.power && deps_.controller,
                 "core is missing a collaborator");
    if (deps_.controller->config().mode != SpecControlMode::None) {
        stsim_assert(deps_.confidence,
                     "speculation control requires a confidence estimator");
        stsim_assert(cfg_.oracle == OracleMode::None,
                     "oracle modes and speculation control are exclusive");
    }

    fetchQCap_ = static_cast<std::size_t>(cfg_.fetchWidth) *
                 (cfg_.fetchStages + 1);
    dispatchQCap_ = static_cast<std::size_t>(cfg_.decodeWidth) *
                    (cfg_.decodeStages + 1);

    std::size_t pool = fetchQCap_ + dispatchQCap_ + cfg_.ruuSize + 8;
    slots_.resize(pool);
    freeSlots_.reserve(pool);
    for (std::size_t i = pool; i > 0; --i)
        freeSlots_.push_back(static_cast<std::uint32_t>(i - 1));

    // seqSlot_ ring: starts comfortably larger than the slot pool and
    // grows whenever an insert would evict a live instruction's entry
    // (possible when repeated mispredict-squash-refetch waves run up
    // nextSeq_ while an old long-latency instruction is still in
    // flight), so slotOf stays exact without a sizing proof.
    std::size_t ring = 1;
    while (ring < pool + 512)
        ring <<= 1;
    seqSlot_.assign(ring, 0);
    seqSlotMask_ = ring - 1;

    fetchPc_ = deps_.workload->program().codeBase();
    if (deps_.confidence)
        confEstimate_ = resolveConfEstimate(deps_.confidence);
}

void
Core::growSeqSlot()
{
    constexpr std::uint32_t kEmpty = 0xFFFF'FFFFu;
    std::size_t n = seqSlot_.size();
    for (;;) {
        n <<= 1;
        std::vector<std::uint32_t> fresh(n, kEmpty);
        const InstSeq mask = n - 1;
        bool ok = true;
        for (std::uint32_t s = 0; s < slots_.size(); ++s) {
            const InstSeq seq = slots_[s].seq;
            if (seq == kInvalidSeq)
                continue;
            std::uint32_t &cell = fresh[seq & mask];
            if (cell != kEmpty) {
                ok = false; // two live seqs still collide
                break;
            }
            cell = s;
        }
        if (!ok)
            continue;
        // Unused cells must stay safely indexable by slotOf.
        for (std::uint32_t &cell : fresh)
            if (cell == kEmpty)
                cell = 0;
        seqSlot_ = std::move(fresh);
        seqSlotMask_ = mask;
        return;
    }
}

void
Core::tick()
{
    deps_.power->beginCycle();
    fuPool_.newCycle();

    commitStage();
    writebackStage();
    issueStage();
    dispatchStage();
    decodeStage();
    fetchStage();

    deps_.controller->tickStats(now_);
    deps_.power->endCycle();
    ++stats_.cycles;
    ++now_;

    if (inflightCount_ != 0 && now_ - lastCommitCycle_ > 100000) {
        stsim_panic("no commit for 100000 cycles at cycle %llu "
                    "(inflight=%zu rob=%zu fetchQ=%zu mode=%d)",
                    static_cast<unsigned long long>(now_),
                    inflightCount_, rob_.size(), fetchQ_.size(),
                    static_cast<int>(fetchMode_));
    }
}

void
Core::wakeConsumers(DynInst &producer)
{
    for (InstSeq cs : producer.consumers) {
        auto slot = slotOf(cs);
        if (!slot)
            continue; // consumer squashed
        DynInst &c = inst(*slot);
        if (!c.inWindow || c.issued || c.waitingOn == 0)
            continue;
        --c.waitingOn;
        // Wakeup CAM match in the window (oracle decode spends no
        // energy on wrong-path entries at all).
        if (!(cfg_.oracle == OracleMode::OracleDecode && c.wrongPath))
            deps_.power->record(PUnit::Window, 1, c.wrongPath ? 1 : 0);
        if (c.waitingOn == 0) {
            bool oracle_blocked =
                (cfg_.oracle == OracleMode::OracleSelect ||
                 cfg_.oracle == OracleMode::OracleDecode) &&
                c.wrongPath;
            if (oracle_blocked)
                continue; // never selectable
            readyQ_.push(c.seq);
        }
    }
    producer.consumers.clear();
}

bool
Core::loadMayIssue(const DynInst &di) const
{
    return unknownStoreAddrs_.empty() ||
           *unknownStoreAddrs_.begin() > di.seq;
}

bool
Core::tryForward(const DynInst &load)
{
    Addr word = load.ti.memAddr >> 3;
    for (auto it = lsq_.rbegin(); it != lsq_.rend(); ++it) {
        const DynInst &e = slots_[*it];
        if (e.seq >= load.seq)
            continue;
        if (e.ti.isStore() && e.addrReady &&
            (e.ti.memAddr >> 3) == word)
            return true;
    }
    return false;
}

void
Core::releaseBlockedLoads()
{
    InstSeq min_unknown = unknownStoreAddrs_.empty()
                              ? kInvalidSeq
                              : *unknownStoreAddrs_.begin();
    std::size_t kept = 0;
    for (InstSeq s : blockedLoads_) {
        if (s < min_unknown) {
            if (slotOf(s))
                readyQ_.push(s);
        } else {
            blockedLoads_[kept++] = s;
        }
    }
    blockedLoads_.resize(kept);
}

} // namespace stsim
