#include "core.hh"

#include "common/logging.hh"

namespace stsim
{

Core::Core(const CoreConfig &cfg, const Deps &deps)
    : cfg_(cfg),
      deps_(deps),
      fuPool_(cfg)
{
    cfg_.validate();
    stsim_assert(deps_.workload && deps_.bpred && deps_.memory &&
                     deps_.power && deps_.controller,
                 "core is missing a collaborator");
    if (deps_.controller->config().mode != SpecControlMode::None) {
        stsim_assert(deps_.confidence,
                     "speculation control requires a confidence estimator");
        stsim_assert(cfg_.oracle == OracleMode::None,
                     "oracle modes and speculation control are exclusive");
    }

    fetchQCap_ = static_cast<std::size_t>(cfg_.fetchWidth) *
                 (cfg_.fetchStages + 1);
    dispatchQCap_ = static_cast<std::size_t>(cfg_.decodeWidth) *
                    (cfg_.decodeStages + 1);

    std::size_t pool = fetchQCap_ + dispatchQCap_ + cfg_.ruuSize + 8;
    slots_.resize(pool);
    freeSlots_.reserve(pool);
    for (std::size_t i = pool; i > 0; --i)
        freeSlots_.push_back(static_cast<std::uint32_t>(i - 1));
    inflight_.reserve(pool * 2);

    fetchPc_ = deps_.workload->program().codeBase();
}

std::uint32_t
Core::allocSlot()
{
    stsim_assert(!freeSlots_.empty(), "slot pool exhausted");
    std::uint32_t s = freeSlots_.back();
    freeSlots_.pop_back();
    slots_[s].reset();
    return s;
}

void
Core::freeSlot(std::uint32_t slot)
{
    freeSlots_.push_back(slot);
}

std::optional<std::uint32_t>
Core::slotOf(InstSeq seq) const
{
    auto it = inflight_.find(seq);
    if (it == inflight_.end())
        return std::nullopt;
    return it->second;
}

void
Core::tick()
{
    deps_.power->beginCycle();
    fuPool_.newCycle();

    commitStage();
    writebackStage();
    issueStage();
    dispatchStage();
    decodeStage();
    fetchStage();

    deps_.controller->tickStats(now_);
    deps_.power->endCycle();
    ++stats_.cycles;
    ++now_;

    if (!inflight_.empty() && now_ - lastCommitCycle_ > 100000) {
        stsim_panic("no commit for 100000 cycles at cycle %llu "
                    "(inflight=%zu rob=%zu fetchQ=%zu mode=%d)",
                    static_cast<unsigned long long>(now_),
                    inflight_.size(), rob_.size(), fetchQ_.size(),
                    static_cast<int>(fetchMode_));
    }
}

void
Core::wakeConsumers(DynInst &producer)
{
    for (InstSeq cs : producer.consumers) {
        auto slot = slotOf(cs);
        if (!slot)
            continue; // consumer squashed
        DynInst &c = inst(*slot);
        if (!c.inWindow || c.issued || c.waitingOn == 0)
            continue;
        --c.waitingOn;
        // Wakeup CAM match in the window (oracle decode spends no
        // energy on wrong-path entries at all).
        if (!(cfg_.oracle == OracleMode::OracleDecode && c.wrongPath))
            deps_.power->record(PUnit::Window, 1, c.wrongPath ? 1 : 0);
        if (c.waitingOn == 0) {
            bool oracle_blocked =
                (cfg_.oracle == OracleMode::OracleSelect ||
                 cfg_.oracle == OracleMode::OracleDecode) &&
                c.wrongPath;
            if (oracle_blocked)
                continue; // never selectable
            readyQ_.push(c.seq);
        }
    }
    producer.consumers.clear();
}

bool
Core::loadMayIssue(const DynInst &di) const
{
    return unknownStoreAddrs_.empty() ||
           *unknownStoreAddrs_.begin() > di.seq;
}

bool
Core::tryForward(const DynInst &load)
{
    Addr word = load.ti.memAddr >> 3;
    for (auto it = lsq_.rbegin(); it != lsq_.rend(); ++it) {
        const DynInst &e = slots_[*it];
        if (e.seq >= load.seq)
            continue;
        if (e.ti.isStore() && e.addrReady &&
            (e.ti.memAddr >> 3) == word)
            return true;
    }
    return false;
}

void
Core::releaseBlockedLoads()
{
    InstSeq min_unknown = unknownStoreAddrs_.empty()
                              ? kInvalidSeq
                              : *unknownStoreAddrs_.begin();
    std::size_t kept = 0;
    for (InstSeq s : blockedLoads_) {
        if (s < min_unknown) {
            if (slotOf(s))
                readyQ_.push(s);
        } else {
            blockedLoads_[kept++] = s;
        }
    }
    blockedLoads_.resize(kept);
}

} // namespace stsim
