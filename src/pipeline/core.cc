#include "core.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace stsim
{

Core::Core(const CoreConfig &cfg, const Deps &deps)
    : cfg_(cfg),
      deps_(deps),
      fuPool_(cfg)
{
    cfg_.validate();
    stsim_assert(deps_.workload && deps_.bpred && deps_.memory &&
                     deps_.power && deps_.controller,
                 "core is missing a collaborator");
    if (deps_.controller->config().mode != SpecControlMode::None) {
        stsim_assert(deps_.confidence,
                     "speculation control requires a confidence estimator");
        stsim_assert(cfg_.oracle == OracleMode::None,
                     "oracle modes and speculation control are exclusive");
    }

    fetchQCap_ = static_cast<std::size_t>(cfg_.fetchWidth) *
                 (cfg_.fetchStages + 1);
    dispatchQCap_ = static_cast<std::size_t>(cfg_.decodeWidth) *
                    (cfg_.decodeStages + 1);

    std::size_t pool = fetchQCap_ + dispatchQCap_ + cfg_.ruuSize + 8;
    slots_.resize(pool);
    freeSlots_.reserve(pool);
    for (std::size_t i = pool; i > 0; --i)
        freeSlots_.push_back(static_cast<std::uint32_t>(i - 1));

    // seqSlot_ ring: starts comfortably larger than the slot pool and
    // grows whenever an insert would evict a live instruction's entry
    // (possible when repeated mispredict-squash-refetch waves run up
    // nextSeq_ while an old long-latency instruction is still in
    // flight), so slotOf stays exact without a sizing proof. Vacant
    // cells hold slot 0: slotOf's validation against the slot's own
    // seq rejects them.
    seqSlot_.init(pool + 512, 0);

    fetchQ_.init(fetchQCap_ + 1);
    dispatchQ_.init(dispatchQCap_ + 1);
    rob_.init(cfg_.ruuSize + 1);
    lsq_.init(cfg_.lsqSize + 1);

    // Ready bitmap: the window never holds more than ruuSize entries,
    // so a pow2 bit ring of at least that many positions is aliasing
    // free within [robBasePos_, robBasePos_ + rob_.size()).
    std::uint64_t bits = 64;
    while (bits < cfg_.ruuSize)
        bits <<= 1;
    readyWords_.assign(bits / 64, 0);
    readyMask_ = bits - 1;

    // Producer table: at most ruuSize live producers; 2x cells keeps
    // the load factor low so growth is rare (and exact when it runs).
    prodTab_.init(cfg_.ruuSize * 2);

    // LSQ-position masks share the ready bitmap's aliasing argument:
    // the LSQ never holds more than lsqSize entries, so a pow2 bit
    // ring of at least that many positions is collision free.
    unknownStoreMask_.init(cfg_.lsqSize);
    storeAddrMask_.init(cfg_.lsqSize);
    blockedLoadMask_.init(cfg_.lsqSize);

    // Writeback calendar: covers the longest completion latency (FU +
    // L1 + L2 + memory + TLB walk) plus drain lag; grows on demand.
    wbCal_.resize(256);
    wbCalMask_ = wbCal_.size() - 1;

    fetchPc_ = deps_.workload->program().codeBase();
    if (deps_.confidence)
        confEstimate_ = resolveConfEstimate(deps_.confidence);
}

std::uint64_t
Core::nextReadyPos(std::uint64_t pos, std::uint64_t end) const
{
    while (pos < end) {
        const std::uint64_t idx = pos & readyMask_;
        const std::uint64_t off = idx & 63;
        std::uint64_t word = readyWords_[idx >> 6] >> off;
        if (word) {
            std::uint64_t found =
                pos + static_cast<std::uint64_t>(
                          std::countr_zero(word));
            return found < end ? found : kInvalidSeq;
        }
        pos += 64 - off; // next word boundary
    }
    return kInvalidSeq;
}

void
Core::growProducerTable(InstSeq seq, std::uint32_t slot)
{
    prodTab_.insert(seq, slot,
                    [this](auto &&fn) { forEachLiveProducer(fn); });
}

void
Core::wbPush(Cycle at, InstSeq seq)
{
    stsim_dbg_assert(at > now_, "writeback scheduled in the past");
    for (;;) {
        WbBucket &b = wbCal_[at & wbCalMask_];
        if (b.pending() && b.cycle != at) {
            growWbCal(); // cell still busy with another cycle's events
            continue;
        }
        if (!b.pending()) {
            b.clear();
            b.cycle = at;
        }
        stsim_dbg_assert(!b.sorted, "push into a draining bucket");
        b.ev.push_back(seq);
        ++wbCount_;
        return;
    }
}

void
Core::growWbCal()
{
    std::vector<WbBucket> old = std::move(wbCal_);
    std::size_t cap = old.size();
    for (;;) {
        cap <<= 1;
        wbCal_.assign(cap, WbBucket{});
        wbCalMask_ = cap - 1;
        bool ok = true;
        for (const WbBucket &b : old) {
            if (!b.pending())
                continue;
            WbBucket &n = wbCal_[b.cycle & wbCalMask_];
            if (n.pending()) {
                ok = false; // pending cycles still alias: re-double
                break;
            }
            n.cycle = b.cycle;
            n.ev.assign(b.ev.begin() + b.head, b.ev.end());
            n.head = 0;
            n.sorted = b.sorted;
        }
        if (ok)
            return;
    }
}

void
Core::tick()
{
    deps_.power->beginCycle();
    fuPool_.newCycle();

    commitStage();
    writebackStage();
    issueStage();
    dispatchStage();
    decodeStage();
    fetchStage();

    deps_.controller->tickStats(now_);
    deps_.power->endCycle();
    ++stats_.cycles;
    ++now_;

    if (inflightCount_ != 0 && now_ - lastCommitCycle_ > 100000) {
        stsim_panic("no commit for 100000 cycles at cycle %llu "
                    "(inflight=%zu rob=%zu fetchQ=%zu mode=%d)",
                    static_cast<unsigned long long>(now_),
                    inflightCount_, rob_.size(), fetchQ_.size(),
                    static_cast<int>(fetchMode_));
    }
}

void
Core::wakeConsumers(DynInst &producer)
{
    unsigned cam_cnt = 0, cam_wrong = 0;
    producer.forEachConsumer([&](InstSeq cs) {
        auto slot = slotOf(cs);
        if (!slot)
            return; // consumer squashed
        DynInst &c = inst(*slot);
        if (!c.inWindow || c.issued || c.waitingOn == 0)
            return;
        --c.waitingOn;
        // Wakeup CAM match in the window (oracle decode spends no
        // energy on wrong-path entries at all).
        if (!(cfg_.oracle == OracleMode::OracleDecode && c.wrongPath)) {
            ++cam_cnt;
            cam_wrong += c.wrongPath ? 1 : 0;
        }
        if (c.waitingOn == 0) {
            bool oracle_blocked =
                (cfg_.oracle == OracleMode::OracleSelect ||
                 cfg_.oracle == OracleMode::OracleDecode) &&
                c.wrongPath;
            if (oracle_blocked)
                return; // never selectable
            setReady(c);
        }
    });
    producer.clearConsumers();
    if (cam_cnt) // exact integer batch of the per-match records
        deps_.power->record(PUnit::Window, cam_cnt, cam_wrong);
}

bool
Core::loadMayIssue(const DynInst &di)
{
    // The load may issue when no older store still has an unknown
    // address: one find-first over the unknown-store mask, bounded by
    // the load's own LSQ position (LSQ position order == seq order).
    return unknownStoreMask_.firstSet(lsqBasePos_, di.lsqPos) ==
           ScanMask::kNone;
}

bool
Core::tryForward(const DynInst &load)
{
    if (readyStores_ == 0)
        return false; // no store in the window has a known address
    const Addr word = load.ti.memAddr >> 3;
    // ctz walk over address-ready stores older than the load (the old
    // path scanned every LSQ entry below the load).
    std::uint64_t pos = lsqBasePos_;
    while ((pos = storeAddrMask_.firstSet(pos, load.lsqPos)) !=
           ScanMask::kNone) {
        const DynInst &e = slots_[lsq_[pos - lsqBasePos_]];
        if ((e.ti.memAddr >> 3) == word)
            return true;
        ++pos;
    }
    return false;
}

void
Core::releaseBlockedLoads()
{
    if (blockedLoadMask_.none())
        return;
    // Blocked loads strictly older than the oldest unknown-address
    // store wake up; with no unknown store left, all of them do.
    const std::uint64_t lsq_end = lsqBasePos_ + lsq_.size();
    std::uint64_t limit = unknownStoreMask_.firstSet(lsqBasePos_,
                                                     lsq_end);
    if (limit == ScanMask::kNone)
        limit = lsq_end;
    std::uint64_t pos = lsqBasePos_;
    while ((pos = blockedLoadMask_.firstSet(pos, limit)) !=
           ScanMask::kNone) {
        blockedLoadMask_.clear(pos);
        setReady(slots_[lsq_[pos - lsqBasePos_]]);
        ++pos;
    }
}

} // namespace stsim
