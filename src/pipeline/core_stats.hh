/**
 * @file
 * Raw event counters collected by the core. Derived metrics (IPC,
 * savings) are computed by the core library layer.
 */

#ifndef STSIM_PIPELINE_CORE_STATS_HH
#define STSIM_PIPELINE_CORE_STATS_HH

#include "common/types.hh"

namespace stsim
{

/** Event counters for one simulation run. */
struct CoreStats
{
    Counter cycles = 0;

    /// @name Commit
    /// @{
    Counter committedInsts = 0;
    Counter committedBranches = 0;
    Counter committedCondBranches = 0;
    Counter condMispredicts = 0; ///< commit-time direction mispredicts
    /// @}

    /// @name Flow per stage (correct + wrong path)
    /// @{
    Counter fetchedInsts = 0;
    Counter fetchedWrongPath = 0;
    Counter decodedInsts = 0;
    Counter decodedWrongPath = 0;
    Counter dispatchedInsts = 0;
    Counter dispatchedWrongPath = 0;
    Counter issuedInsts = 0;
    Counter issuedWrongPath = 0;
    /// @}

    /// @name Squash/recovery
    /// @{
    Counter squashes = 0;
    Counter squashedInsts = 0;
    Counter btbMisfetches = 0;
    Counter rasMispredicts = 0;
    /// @}

    /// @name Stall/throttle accounting (cycles)
    /// @{
    Counter fetchIcacheStall = 0;
    Counter fetchRedirectStall = 0;
    Counter fetchThrottled = 0;   ///< gated by the controller
    Counter decodeThrottled = 0;
    Counter oracleFetchStall = 0; ///< oracle-fetch wait-for-resolve
    Counter robFullStalls = 0;
    Counter lsqFullStalls = 0;
    /// @}

    /// @name Issue details
    /// @{
    Counter noSelectSkips = 0; ///< ready-but-suppressed select events
    Counter loadsForwarded = 0;
    Counter loadsBlockedByStore = 0;
    Counter oracleSelectSkips = 0;
    Counter oracleDecodeDrops = 0;
    /// @}

    /** Committed instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedInsts) / cycles
                      : 0.0;
    }

    /** Wrong-path share of fetched instructions. */
    double
    wrongPathFetchFrac() const
    {
        return fetchedInsts ? static_cast<double>(fetchedWrongPath) /
                                  fetchedInsts
                            : 0.0;
    }
};

} // namespace stsim

#endif // STSIM_PIPELINE_CORE_STATS_HH
