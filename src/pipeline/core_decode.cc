/**
 * @file
 * Decode and dispatch stages: the in-order middle of the machine.
 * Decode models the (possibly throttled) decode/rename pipe; dispatch
 * allocates RUU/LSQ entries and resolves register dependences.
 */

#include "common/logging.hh"
#include "common/prefetch.hh"
#include "core.hh"

namespace stsim
{

void
Core::decodeStage()
{
    const bool gated = !deps_.controller->decodeActive(now_);
    const InstSeq barrier = deps_.controller->decodeBarrier();
    if (gated)
        ++stats_.decodeThrottled;

    unsigned n = 0;
    unsigned rename_cnt = 0, rename_wrong = 0;
    unsigned reg_cnt = 0, reg_wrong = 0;
    while (n < cfg_.decodeWidth && !fetchQ_.empty()) {
        std::uint32_t slot = fetchQ_.front();
        DynInst &di = inst(slot);
        if (fetchQ_.size() > 1)
            STSIM_PREFETCH(&slots_[fetchQ_[1]]);
        if (di.decodeReady > now_)
            break;
        if (dispatchQ_.size() >= dispatchQCap_)
            break;
        // Decode throttling gates only instructions younger than the
        // triggering branch; the trigger itself must drain so it can
        // resolve and release the gate.
        if (gated && barrier != kInvalidSeq && di.seq > barrier)
            break;
        fetchQ_.pop_front();

        const bool wp = di.wrongPath;
        // Oracle decode: wrong-path instructions keep flowing (fetch
        // and queue occupancy stay realistic) but spend no decode or
        // downstream energy and never issue -- the machine "knows"
        // not to process them (Figure 1's oracle decode experiment).
        const bool suppress =
            cfg_.oracle == OracleMode::OracleDecode && wp;
        if (suppress)
            ++stats_.oracleDecodeDrops;

        ++stats_.decodedInsts;
        if (wp)
            ++stats_.decodedWrongPath;
        ++n;

        if (!suppress) {
            ++rename_cnt;
            rename_wrong += wp ? 1 : 0;
            unsigned nsrc = (di.ti.srcDist[0] ? 1u : 0u) +
                            (di.ti.srcDist[1] ? 1u : 0u);
            // Operand read at decode (Wattch accounting). Counts are
            // small integers, so the per-cycle batch sums are exact
            // and the recorded activity is bit-identical to the
            // per-instruction calls it replaces.
            reg_cnt += nsrc;
            reg_wrong += wp ? nsrc : 0;
        }

        di.dispatchReady = now_ + cfg_.decodeStages;
        dispatchQ_.push_back(slot);
    }
    if (rename_cnt)
        deps_.power->record(PUnit::Rename, rename_cnt, rename_wrong);
    if (reg_cnt)
        deps_.power->record(PUnit::Regfile, reg_cnt, reg_wrong);
}

void
Core::dispatchStage()
{
    unsigned n = 0;
    unsigned win_cnt = 0, win_wrong = 0;
    while (n < cfg_.decodeWidth && !dispatchQ_.empty()) {
        std::uint32_t slot = dispatchQ_.front();
        DynInst &di = inst(slot);
        if (dispatchQ_.size() > 1)
            STSIM_PREFETCH(&slots_[dispatchQ_[1]]);
        if (di.dispatchReady > now_)
            break;
        if (rob_.size() >= cfg_.ruuSize) {
            ++stats_.robFullStalls;
            break;
        }
        if (isMemory(di.ti.cls) && lsq_.size() >= cfg_.lsqSize) {
            ++stats_.lsqFullStalls;
            break;
        }
        dispatchQ_.pop_front();

        const bool wp = di.wrongPath;
        di.inWindow = true;
        di.fu = fuTypeFor(di.ti.cls);
        di.windowPos = robBasePos_ + rob_.size();
        rob_.push_back(slot);
        if (isMemory(di.ti.cls)) {
            di.lsqPos = lsqBasePos_ + lsq_.size();
            lsq_.push_back(slot);
            if (di.ti.isStore())
                unknownStoreMask_.set(di.lsqPos);
        }

        // Resolve register dependences: producer seq is pure math
        // (seq - srcDist), and the last-producer table answers "live
        // and where" in one indexed load. Dispatch is in order, so a
        // miss means the producer completed, committed or was
        // squashed -- the operand is ready.
        di.waitingOn = 0;
        for (int k = 0; k < 2; ++k) {
            unsigned d = di.ti.srcDist[k];
            if (!d || d >= di.seq)
                continue;
            const InstSeq pseq = di.seq - d;
            const std::uint32_t ps = prodTab_.lookup(pseq);
#ifndef NDEBUG
            {
                // Cross-check against the old slotOf probe path.
                auto ref = slotOf(pseq);
                const bool ref_live =
                    ref && slots_[*ref].ti.hasDest &&
                    !slots_[*ref].completed;
                stsim_assert(ref_live ==
                                 (ps != ProducerTable::kNoSlot),
                             "producer table diverges from probe for "
                             "seq %llu",
                             static_cast<unsigned long long>(pseq));
                stsim_assert(!ref_live || *ref == ps,
                             "producer table slot mismatch for seq "
                             "%llu",
                             static_cast<unsigned long long>(pseq));
            }
#endif
            if (ps == ProducerTable::kNoSlot) {
                ++hot_.producerMisses;
                continue;
            }
            ++hot_.producerHits;
            inst(ps).addConsumer(di.seq);
            ++di.waitingOn;
        }
        if (di.ti.hasDest && !prodTab_.tryInsert(di.seq, slot))
            growProducerTable(di.seq, slot); // cold: rebuild + retry

        if (!(cfg_.oracle == OracleMode::OracleDecode && wp)) {
            ++win_cnt;
            win_wrong += wp ? 1 : 0;
        }
        ++stats_.dispatchedInsts;
        if (wp)
            ++stats_.dispatchedWrongPath;
        ++n;

        // The window position may be reused after a squash: write the
        // ready bit unconditionally so no stale state survives.
        bool oracle_blocked =
            (cfg_.oracle == OracleMode::OracleSelect ||
             cfg_.oracle == OracleMode::OracleDecode) &&
            wp;
        if (di.waitingOn == 0 && !oracle_blocked)
            setReady(di);
        else
            clearReady(di);
    }
    if (win_cnt)
        deps_.power->record(PUnit::Window, win_cnt, win_wrong);
}

} // namespace stsim
