/**
 * @file
 * Decode and dispatch stages: the in-order middle of the machine.
 * Decode models the (possibly throttled) decode/rename pipe; dispatch
 * allocates RUU/LSQ entries and resolves register dependences.
 */

#include "common/logging.hh"
#include "core.hh"

namespace stsim
{

void
Core::decodeStage()
{
    const bool gated = !deps_.controller->decodeActive(now_);
    const InstSeq barrier = deps_.controller->decodeBarrier();
    if (gated)
        ++stats_.decodeThrottled;

    unsigned n = 0;
    while (n < cfg_.decodeWidth && !fetchQ_.empty()) {
        std::uint32_t slot = fetchQ_.front();
        DynInst &di = inst(slot);
        if (di.decodeReady > now_)
            break;
        if (dispatchQ_.size() >= dispatchQCap_)
            break;
        // Decode throttling gates only instructions younger than the
        // triggering branch; the trigger itself must drain so it can
        // resolve and release the gate.
        if (gated && barrier != kInvalidSeq && di.seq > barrier)
            break;
        fetchQ_.pop_front();

        const bool wp = di.wrongPath;
        // Oracle decode: wrong-path instructions keep flowing (fetch
        // and queue occupancy stay realistic) but spend no decode or
        // downstream energy and never issue -- the machine "knows"
        // not to process them (Figure 1's oracle decode experiment).
        const bool suppress =
            cfg_.oracle == OracleMode::OracleDecode && wp;
        if (suppress)
            ++stats_.oracleDecodeDrops;

        ++stats_.decodedInsts;
        if (wp)
            ++stats_.decodedWrongPath;
        ++n;

        if (!suppress) {
            deps_.power->record(PUnit::Rename, 1, wp ? 1 : 0);
            unsigned nsrc = (di.ti.srcDist[0] ? 1u : 0u) +
                            (di.ti.srcDist[1] ? 1u : 0u);
            if (nsrc) // operand read at decode (Wattch accounting)
                deps_.power->record(PUnit::Regfile, nsrc,
                                    wp ? nsrc : 0);
        }

        di.dispatchReady = now_ + cfg_.decodeStages;
        dispatchQ_.push_back(slot);
    }
}

void
Core::dispatchStage()
{
    unsigned n = 0;
    while (n < cfg_.decodeWidth && !dispatchQ_.empty()) {
        std::uint32_t slot = dispatchQ_.front();
        DynInst &di = inst(slot);
        if (di.dispatchReady > now_)
            break;
        if (rob_.size() >= cfg_.ruuSize) {
            ++stats_.robFullStalls;
            break;
        }
        if (isMemory(di.ti.cls) && lsq_.size() >= cfg_.lsqSize) {
            ++stats_.lsqFullStalls;
            break;
        }
        dispatchQ_.pop_front();

        const bool wp = di.wrongPath;
        di.inWindow = true;
        rob_.push_back(slot);
        if (isMemory(di.ti.cls)) {
            lsq_.push_back(slot);
            if (di.ti.isStore())
                unknownStoreAddrs_.insert(di.seq);
        }

        // Resolve register dependences against in-flight producers.
        di.waitingOn = 0;
        for (int k = 0; k < 2; ++k) {
            unsigned d = di.ti.srcDist[k];
            if (!d || d >= di.seq)
                continue;
            auto ps = slotOf(di.seq - d);
            if (!ps)
                continue; // committed, squashed or dropped: ready
            DynInst &prod = inst(*ps);
            if (!prod.ti.hasDest || prod.completed)
                continue;
            prod.consumers.push_back(di.seq);
            ++di.waitingOn;
        }

        if (!(cfg_.oracle == OracleMode::OracleDecode && wp))
            deps_.power->record(PUnit::Window, 1, wp ? 1 : 0);
        ++stats_.dispatchedInsts;
        if (wp)
            ++stats_.dispatchedWrongPath;
        ++n;

        if (di.waitingOn == 0) {
            bool oracle_blocked =
                (cfg_.oracle == OracleMode::OracleSelect ||
                 cfg_.oracle == OracleMode::OracleDecode) &&
                wp;
            if (!oracle_blocked)
                readyQ_.push(di.seq);
        }
    }
}

} // namespace stsim
