/**
 * @file
 * Out-of-order core parameters (defaults = the paper's Table 3) and
 * the pipeline-depth mapping used by the Figure 6 sensitivity study.
 */

#ifndef STSIM_PIPELINE_CORE_CONFIG_HH
#define STSIM_PIPELINE_CORE_CONFIG_HH

#include <cstdint>

#include "trace/instruction.hh"

namespace stsim
{

/** Oracle speculation-control modes from §3 (Figure 1). */
enum class OracleMode : std::uint8_t
{
    None,         ///< realistic speculation
    OracleFetch,  ///< never fetch a mis-speculated path
    OracleDecode, ///< realistic fetch; wrong-path dropped at decode
    OracleSelect, ///< realistic fetch+decode; wrong-path never issues
};

/** Short display name of an oracle mode. */
const char *oracleModeName(OracleMode m);

/**
 * Core configuration. The pipeline-depth parameters (fetchStages,
 * decodeStages, extraExecLatency, extraDl1Latency) are usually derived
 * from a total stage count via applyPipelineDepth(), following §5.3.1:
 * depth is varied by growing the in-order front end and adding
 * execute/L1D latency; the backend contributes a fixed four stages
 * (dispatch, issue, writeback, commit).
 */
struct CoreConfig
{
    /// @name Widths (Table 3)
    /// @{
    unsigned fetchWidth = 8;
    unsigned decodeWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned maxTakenBranchesPerFetch = 2;
    /// @}

    /// @name Structures (Table 3)
    /// @{
    unsigned ruuSize = 128; ///< unified reorder buffer / issue window
    unsigned lsqSize = 64;
    /// @}

    /// @name Functional units (Table 3)
    /// @{
    unsigned numIntAlu = 8;
    unsigned numIntMult = 2;
    unsigned numMemPorts = 2;
    unsigned numFpAlu = 8;
    unsigned numFpMult = 1;
    /// @}

    /// @name Pipeline depth
    /// @{
    unsigned pipelineStages = 14; ///< total fetch-to-commit label
    unsigned fetchStages = 4;     ///< in-order fetch pipe depth
    unsigned decodeStages = 4;    ///< in-order decode/rename pipe depth
    unsigned extraExecLatency = 2; ///< added to every FU latency
    unsigned extraDl1Latency = 1;  ///< added to DL1 hit latency
    /// @}

    /// @name Penalties (Table 3)
    /// @{
    unsigned extraMispredictPenalty = 2; ///< redirect cycles at resolve
    unsigned btbMissPenalty = 2;         ///< misfetch bubble
    /// @}

    /** Oracle experiment mode (Figure 1). */
    OracleMode oracle = OracleMode::None;

    /**
     * Derive the depth-dependent parameters from a total stage count
     * in [6, 28] (§5.3.1). Front end absorbs ~3/4 of the extra depth;
     * the rest lengthens execution, with DL1 latency growing every 8
     * stages. The 14-stage default reproduces the paper's IBM
     * POWER4-like baseline.
     */
    void applyPipelineDepth(unsigned total_stages);

    /** Sanity-check ranges; fatals on nonsense. */
    void validate() const;

    /** Base execution latency of an instruction class (pre-extra). */
    static constexpr unsigned
    baseLatency(InstClass cls)
    {
        switch (cls) {
          case InstClass::IntAlu: return 1;
          case InstClass::IntMult: return 3;
          case InstClass::Load: return 1;  // addr gen; cache added
          case InstClass::Store: return 1; // addr gen
          case InstClass::FpAlu: return 2;
          case InstClass::FpMult: return 4;
          case InstClass::CondBranch: return 1;
          case InstClass::Jump: return 1;
          case InstClass::Call: return 1;
          case InstClass::Return: return 1;
          case InstClass::Nop: return 1;
        }
        return 1;
    }
};

} // namespace stsim

#endif // STSIM_PIPELINE_CORE_CONFIG_HH
