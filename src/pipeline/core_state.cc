/**
 * @file
 * Core checkpointing: saveState/loadState over the complete
 * microarchitectural state. Kept out of core.cc so the cycle-accurate
 * pipeline stages and the (cold) serialization code do not share a
 * translation unit.
 *
 * Snapshots are taken between ticks, which is what makes the state
 * finite: the FU pool resets at the top of every tick and the power
 * model's per-cycle scratch is consumed by endCycle, so neither is
 * state here. Everything else -- including incidental orderings like
 * the free-slot stack and the writeback-calendar bucket contents -- is
 * preserved exactly, so a restored run is bit-identical to one that
 * never stopped.
 */

#include <vector>

#include "core/state_serde.hh"
#include "pipeline/core.hh"

namespace stsim
{

namespace
{

/** CoreStats counters, in snapshot order. Append-only. */
#define STSIM_CORE_STATS_FIELDS(X)                                     \
    X(cycles)                                                          \
    X(committedInsts)                                                  \
    X(committedBranches)                                               \
    X(committedCondBranches)                                           \
    X(condMispredicts)                                                 \
    X(fetchedInsts)                                                    \
    X(fetchedWrongPath)                                                \
    X(decodedInsts)                                                    \
    X(decodedWrongPath)                                                \
    X(dispatchedInsts)                                                 \
    X(dispatchedWrongPath)                                             \
    X(issuedInsts)                                                     \
    X(issuedWrongPath)                                                 \
    X(squashes)                                                        \
    X(squashedInsts)                                                   \
    X(btbMisfetches)                                                   \
    X(rasMispredicts)                                                  \
    X(fetchIcacheStall)                                                \
    X(fetchRedirectStall)                                              \
    X(fetchThrottled)                                                  \
    X(decodeThrottled)                                                 \
    X(oracleFetchStall)                                                \
    X(robFullStalls)                                                   \
    X(lsqFullStalls)                                                   \
    X(noSelectSkips)                                                   \
    X(loadsForwarded)                                                  \
    X(loadsBlockedByStore)                                             \
    X(oracleSelectSkips)                                               \
    X(oracleDecodeDrops)

void
saveStats(serde::StateWriter &w, const CoreStats &s)
{
    std::vector<std::uint64_t> v;
#define X(f) v.push_back(s.f);
    STSIM_CORE_STATS_FIELDS(X)
#undef X
    w.begin("core_stats");
    w.u64Vec("counters", v);
    w.end("core_stats");
}

void
loadStats(serde::StateReader &r, CoreStats &s)
{
    r.begin("core_stats");
    std::vector<std::uint64_t> v = r.u64Vec("counters");
    std::size_t n = 0;
#define X(f) ++n;
    STSIM_CORE_STATS_FIELDS(X)
#undef X
    if (v.size() != n)
        stsim_fatal("state: core stats count mismatch (snapshot %zu, "
                    "expected %zu)",
                    v.size(), n);
    std::size_t i = 0;
#define X(f) s.f = v[i++];
    STSIM_CORE_STATS_FIELDS(X)
#undef X
    r.end("core_stats");
}

/** Pack the DynInst status flags into one word (bit order is ABI). */
std::uint64_t
packFlags(const DynInst &di)
{
    std::uint64_t f = 0;
    f |= std::uint64_t{di.wrongPath} << 0;
    f |= std::uint64_t{di.inWindow} << 1;
    f |= std::uint64_t{di.issued} << 2;
    f |= std::uint64_t{di.completed} << 3;
    f |= std::uint64_t{di.predicted} << 4;
    f |= std::uint64_t{di.mispredicted} << 5;
    f |= std::uint64_t{di.confAssigned} << 6;
    f |= std::uint64_t{di.addrReady} << 7;
    return f;
}

void
unpackFlags(std::uint64_t f, DynInst &di)
{
    di.wrongPath = (f >> 0) & 1;
    di.inWindow = (f >> 1) & 1;
    di.issued = (f >> 2) & 1;
    di.completed = (f >> 3) & 1;
    di.predicted = (f >> 4) & 1;
    di.mispredicted = (f >> 5) & 1;
    di.confAssigned = (f >> 6) & 1;
    di.addrReady = (f >> 7) & 1;
}

void
saveInst(serde::StateWriter &w, const DynInst &di)
{
    w.begin("inst");
    w.u64("seq", di.seq);
    w.u64("flags", packFlags(di));
    w.u64("waiting_on", di.waitingOn);
    std::vector<InstSeq> cons;
    di.forEachConsumer([&](InstSeq s) { cons.push_back(s); });
    w.u64Vec("consumers", cons);
    w.u64("pc", di.ti.pc);
    w.u64("cls", static_cast<std::uint64_t>(di.ti.cls));
    w.u64("src0", di.ti.srcDist[0]);
    w.u64("src1", di.ti.srcDist[1]);
    w.boolean("has_dest", di.ti.hasDest);
    w.u64("mem_addr", di.ti.memAddr);
    w.boolean("taken", di.ti.taken);
    w.u64("target", di.ti.target);
    w.u64("npc", di.ti.npc);
    w.u64("window_pos", di.windowPos);
    w.u64("lsq_pos", di.lsqPos);
    w.u64("decode_ready", di.decodeReady);
    w.u64("dispatch_ready", di.dispatchReady);
    w.u64("complete_at", di.completeAt);
    w.boolean("pred_taken", di.pred.predTaken);
    w.u64("pred_target", di.pred.predTarget);
    w.boolean("btb_hit", di.pred.btbHit);
    w.boolean("dir_taken", di.pred.dir.taken);
    w.u64("dir_counter", di.pred.dir.counter);
    w.u64("dir_counter_max", di.pred.dir.counterMax);
    w.u64("hist_before", di.pred.histBefore);
    w.u64("ras_top", di.pred.rasCp.top);
    w.u64("ras_top_value", di.pred.rasCp.topValue);
    w.u64("conf", static_cast<std::uint64_t>(di.conf));
    w.end("inst");
}

void
loadInst(serde::StateReader &r, DynInst &di)
{
    r.begin("inst");
    di.seq = r.u64("seq");
    unpackFlags(r.u64("flags"), di);
    di.waitingOn = static_cast<std::uint8_t>(r.u64("waiting_on"));
    di.clearConsumers();
    for (std::uint64_t s : r.u64Vec("consumers"))
        di.addConsumer(s);
    di.ti.pc = r.u64("pc");
    di.ti.cls = static_cast<InstClass>(r.u64("cls"));
    di.ti.srcDist[0] = static_cast<std::uint8_t>(r.u64("src0"));
    di.ti.srcDist[1] = static_cast<std::uint8_t>(r.u64("src1"));
    di.ti.hasDest = r.boolean("has_dest");
    di.ti.memAddr = r.u64("mem_addr");
    di.ti.taken = r.boolean("taken");
    di.ti.target = r.u64("target");
    di.ti.npc = r.u64("npc");
    di.fu = fuTypeFor(di.ti.cls); // derived, not serialized
    di.windowPos = r.u64("window_pos");
    di.lsqPos = r.u64("lsq_pos");
    di.decodeReady = r.u64("decode_ready");
    di.dispatchReady = r.u64("dispatch_ready");
    di.completeAt = r.u64("complete_at");
    di.pred.predTaken = r.boolean("pred_taken");
    di.pred.predTarget = r.u64("pred_target");
    di.pred.btbHit = r.boolean("btb_hit");
    di.pred.dir.taken = r.boolean("dir_taken");
    di.pred.dir.counter =
        static_cast<unsigned>(r.u64("dir_counter"));
    di.pred.dir.counterMax =
        static_cast<unsigned>(r.u64("dir_counter_max"));
    di.pred.histBefore = r.u64("hist_before");
    di.pred.rasCp.top = static_cast<std::uint32_t>(r.u64("ras_top"));
    di.pred.rasCp.topValue = r.u64("ras_top_value");
    di.conf = static_cast<ConfLevel>(r.u64("conf"));
    r.end("inst");
}

void
saveRing(serde::StateWriter &w, const char *section, const SlotRing &q)
{
    w.begin(section);
    w.u64("head", q.headPos());
    std::vector<std::uint32_t> items;
    items.reserve(q.size());
    for (std::size_t i = 0; i < q.size(); ++i)
        items.push_back(q[i]);
    w.u64Vec("items", items);
    w.end(section);
}

void
loadRing(serde::StateReader &r, const char *section, SlotRing &q,
         std::size_t pool_size)
{
    r.begin(section);
    q.restartAt(r.u64("head"));
    for (std::uint64_t s : r.u64Vec("items")) {
        if (s >= pool_size)
            stsim_fatal("state: %s holds slot %llu beyond the pool "
                        "(%zu slots)",
                        section, static_cast<unsigned long long>(s),
                        pool_size);
        q.push_back(static_cast<std::uint32_t>(s));
    }
    r.end(section);
}

} // namespace

void
Core::saveState(serde::StateWriter &w) const
{
    w.begin("core");
    w.u64("now", now_);
    w.u64("last_commit_cycle", lastCommitCycle_);
    w.u64("next_seq", nextSeq_);
    saveStats(w, stats_);
    confMetrics_.saveState(w);

    // Slot pool: the free stack in its exact order (allocation order
    // after restore must match), then every live slot's instruction.
    w.u64("pool_size", slots_.size());
    w.u64Vec("free_slots", freeSlots_);
    std::vector<bool> is_free(slots_.size(), false);
    for (std::uint32_t s : freeSlots_)
        is_free[s] = true;
    std::vector<std::uint32_t> live;
    for (std::uint32_t s = 0; s < slots_.size(); ++s)
        if (!is_free[s])
            live.push_back(s);
    w.u64Vec("live_slots", live);
    for (std::uint32_t s : live)
        saveInst(w, slots_[s]);

    saveRing(w, "fetch_q", fetchQ_);
    saveRing(w, "dispatch_q", dispatchQ_);
    saveRing(w, "rob", rob_);
    saveRing(w, "lsq", lsq_);
    w.u64("lsq_base_pos", lsqBasePos_);
    w.u64("rob_base_pos", robBasePos_);
    w.u64("ready_stores", readyStores_);
    w.u64Vec("ready_words", readyWords_);

    // Writeback calendar: pending buckets only, each with its drain
    // state (a half-drained sorted bucket restores as an already-
    // sorted bucket of the remaining events -- same pop order).
    std::vector<const WbBucket *> pending;
    for (const WbBucket &b : wbCal_)
        if (b.pending())
            pending.push_back(&b);
    w.u64("wb_cursor", wbCursor_);
    w.u64("wb_buckets", pending.size());
    for (const WbBucket *b : pending) {
        w.begin("wb_bucket");
        w.u64("cycle", b->cycle);
        w.boolean("sorted", b->sorted);
        std::vector<InstSeq> ev(b->ev.begin() + b->head, b->ev.end());
        w.u64Vec("ev", ev);
        w.end("wb_bucket");
    }

    // Unknown-store and blocked-load sets live in LSQ-position masks;
    // the snapshot keeps the original seq-vector encoding (mask bits
    // walked in ascending position order == ascending seq order).
    const std::uint64_t lsq_end = lsqBasePos_ + lsq_.size();
    std::vector<InstSeq> us;
    unknownStoreMask_.forEachSet(lsqBasePos_, lsq_end,
                                 [&](std::uint64_t pos) {
        us.push_back(slots_[lsq_[pos - lsqBasePos_]].seq);
    });
    w.u64Vec("unknown_stores", us);
    std::vector<InstSeq> bl;
    blockedLoadMask_.forEachSet(lsqBasePos_, lsq_end,
                                [&](std::uint64_t pos) {
        bl.push_back(slots_[lsq_[pos - lsqBasePos_]].seq);
    });
    w.u64Vec("blocked_loads", bl);

    w.u64("fetch_mode", static_cast<std::uint64_t>(fetchMode_));
    w.boolean("has_wrong_cursor", wrongCursor_.has_value());
    if (wrongCursor_)
        wrongCursor_->saveState(w);
    w.u64("guard_branch_seq", guardBranchSeq_);
    w.u64("fetch_pc", fetchPc_);
    w.u64("fetch_stall_until", fetchStallUntil_);
    w.end("core");
}

void
Core::loadState(serde::StateReader &r)
{
    r.begin("core");
    now_ = r.u64("now");
    lastCommitCycle_ = r.u64("last_commit_cycle");
    nextSeq_ = r.u64("next_seq");
    loadStats(r, stats_);
    confMetrics_.loadState(r);

    std::uint64_t pool = r.u64("pool_size");
    if (pool != slots_.size())
        stsim_fatal("state: core slot pool mismatch (snapshot %llu, "
                    "configured %zu) -- snapshot is for a different "
                    "core config",
                    static_cast<unsigned long long>(pool),
                    slots_.size());
    std::vector<std::uint64_t> free_slots = r.u64Vec("free_slots");
    std::vector<std::uint64_t> live = r.u64Vec("live_slots");
    if (free_slots.size() + live.size() != slots_.size())
        stsim_fatal("state: core slot partition mismatch (%zu free + "
                    "%zu live != %zu)",
                    free_slots.size(), live.size(), slots_.size());
    for (DynInst &di : slots_) {
        di.reset();
        di.seq = kInvalidSeq;
    }
    freeSlots_.clear();
    for (std::uint64_t s : free_slots) {
        if (s >= slots_.size())
            stsim_fatal("state: free slot %llu beyond the pool",
                        static_cast<unsigned long long>(s));
        freeSlots_.push_back(static_cast<std::uint32_t>(s));
    }
    for (std::uint64_t s : live) {
        if (s >= slots_.size())
            stsim_fatal("state: live slot %llu beyond the pool",
                        static_cast<unsigned long long>(s));
        loadInst(r, slots_[s]);
    }
    inflightCount_ = live.size();
    seqSlot_.init(slots_.size() + 512, 0);
    for (std::uint64_t s : live)
        insertSeqSlot(slots_[s].seq, static_cast<std::uint32_t>(s));

    loadRing(r, "fetch_q", fetchQ_, slots_.size());
    loadRing(r, "dispatch_q", dispatchQ_, slots_.size());
    loadRing(r, "rob", rob_, slots_.size());
    loadRing(r, "lsq", lsq_, slots_.size());
    lsqBasePos_ = r.u64("lsq_base_pos");
    robBasePos_ = r.u64("rob_base_pos");
    readyStores_ = static_cast<unsigned>(r.u64("ready_stores"));
    std::vector<std::uint64_t> rw = r.u64Vec("ready_words");
    if (rw.size() != readyWords_.size())
        stsim_fatal("state: ready bitmap size mismatch (snapshot %zu "
                    "words, configured %zu)",
                    rw.size(), readyWords_.size());
    readyWords_ = std::move(rw);

    for (WbBucket &b : wbCal_)
        b.clear();
    wbCursor_ = r.u64("wb_cursor");
    wbCount_ = 0;
    std::uint64_t nbuckets = r.u64("wb_buckets");
    for (std::uint64_t i = 0; i < nbuckets; ++i) {
        r.begin("wb_bucket");
        Cycle cycle = r.u64("cycle");
        bool sorted = r.boolean("sorted");
        std::vector<std::uint64_t> ev = r.u64Vec("ev");
        r.end("wb_bucket");
        for (;;) {
            WbBucket &b = wbCal_[cycle & wbCalMask_];
            if (b.pending()) {
                growWbCal(); // two restored cycles alias: widen
                continue;
            }
            b.clear();
            b.cycle = cycle;
            b.sorted = sorted;
            b.ev.assign(ev.begin(), ev.end());
            wbCount_ += b.ev.size();
            break;
        }
    }

    // Rebuild the per-position masks. Unknown/address-ready stores are
    // fully derivable from the restored LSQ (the saved unknown_stores
    // vector is read for format compatibility and may contain stale
    // seqs from older writers); blockedness is real state, restored
    // from the saved seq list.
    unknownStoreMask_.reset();
    storeAddrMask_.reset();
    blockedLoadMask_.reset();
    for (std::size_t i = 0; i < lsq_.size(); ++i) {
        const DynInst &di = slots_[lsq_[i]];
        const std::uint64_t pos = lsqBasePos_ + i;
        if (di.ti.isStore()) {
            if (di.addrReady)
                storeAddrMask_.set(pos);
            else
                unknownStoreMask_.set(pos);
        }
    }
    (void)r.u64Vec("unknown_stores");
    for (std::uint64_t s : r.u64Vec("blocked_loads")) {
        auto slot = slotOf(s);
        if (!slot || !slots_[*slot].ti.isLoad() ||
            !slots_[*slot].inWindow)
            stsim_fatal("state: blocked load %llu is not a live "
                        "in-window load",
                        static_cast<unsigned long long>(s));
        blockedLoadMask_.set(slots_[*slot].lsqPos);
    }

    // Rebuild the last-producer table from the restored window.
    prodTab_.init(cfg_.ruuSize * 2);
    forEachLiveProducer([this](InstSeq seq, std::uint32_t slot) {
        prodTab_.insert(seq, slot,
                        [this](auto &&fn) { forEachLiveProducer(fn); });
    });

    std::uint64_t mode = r.u64("fetch_mode");
    if (mode > static_cast<std::uint64_t>(FetchMode::WaitBranch))
        stsim_fatal("state: bad fetch mode %llu",
                    static_cast<unsigned long long>(mode));
    fetchMode_ = static_cast<FetchMode>(mode);
    wrongCursor_.reset();
    if (r.boolean("has_wrong_cursor"))
        wrongCursor_.emplace(*deps_.workload, r);
    guardBranchSeq_ = r.u64("guard_branch_seq");
    fetchPc_ = r.u64("fetch_pc");
    fetchStallUntil_ = r.u64("fetch_stall_until");
    r.end("core");
}

} // namespace stsim
