/**
 * @file
 * Per-cycle functional-unit issue-port accounting. All units are fully
 * pipelined (SimpleScalar-style issue rates), so availability is a
 * per-cycle counter per FU class.
 */

#ifndef STSIM_PIPELINE_FU_POOL_HH
#define STSIM_PIPELINE_FU_POOL_HH

#include <array>

#include "pipeline/core_config.hh"
#include "pipeline/dyn_inst.hh"

namespace stsim
{

/** Issue-port tracker, reset every cycle. */
class FuPool
{
  public:
    explicit FuPool(const CoreConfig &cfg)
    {
        limit_[static_cast<std::size_t>(FuType::IntAlu)] = cfg.numIntAlu;
        limit_[static_cast<std::size_t>(FuType::IntMult)] =
            cfg.numIntMult;
        limit_[static_cast<std::size_t>(FuType::MemPort)] =
            cfg.numMemPorts;
        limit_[static_cast<std::size_t>(FuType::FpAlu)] = cfg.numFpAlu;
        limit_[static_cast<std::size_t>(FuType::FpMult)] = cfg.numFpMult;
        for (auto l : limit_)
            total_ += l;
    }

    /** Start a new cycle. */
    void newCycle() { used_.fill(0); }

    /** True when a unit of @p type can accept an instruction now. */
    bool
    available(FuType type) const
    {
        auto i = static_cast<std::size_t>(type);
        return used_[i] < limit_[i];
    }

    /** Claim a unit of @p type (must be available). */
    void claim(FuType type) { ++used_[static_cast<std::size_t>(type)]; }

    /** Units of @p type claimed this cycle. */
    unsigned used(FuType type) const
    {
        return used_[static_cast<std::size_t>(type)];
    }

    /** Configured count for @p type. */
    unsigned limit(FuType type) const
    {
        return limit_[static_cast<std::size_t>(type)];
    }

    /** Total configured units across classes (cached at
     *  construction). */
    unsigned totalUnits() const { return total_; }

  private:
    std::array<unsigned, kNumFuTypes> limit_{};
    std::array<unsigned, kNumFuTypes> used_{};
    unsigned total_ = 0;
};

} // namespace stsim

#endif // STSIM_PIPELINE_FU_POOL_HH
