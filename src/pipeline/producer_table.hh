/**
 * @file
 * Last-producer table for dispatch-time dependence resolution: a
 * rename-map-style direct-mapped ring from producer seq to slot index.
 *
 * dispatchStage resolves each source operand as seq math
 * (producer = consumer seq - srcDist), so the question it asks is
 * exactly "is that seq a live producer, and in which slot?". The table
 * holds one entry per in-window, incomplete, destination-writing
 * instruction: inserted at dispatch, erased at completion and on
 * squash. Because dispatch is strictly in order, any older seq not in
 * the table has either completed, committed or been squashed -- i.e.
 * its value is ready -- so a miss needs no further probing.
 *
 * Exactness uses the same grow-on-collision discipline as SeqRing: a
 * cell stores the owning seq alongside the slot, a lookup only trusts
 * a cell whose seq matches, and an insert that would evict a live
 * aliasing entry first doubles the table (rebuilt from the owner's
 * live-producer enumeration) until every live producer owns its cell.
 */

#ifndef STSIM_PIPELINE_PRODUCER_TABLE_HH
#define STSIM_PIPELINE_PRODUCER_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace stsim
{

class ProducerTable
{
  public:
    /** Returned by lookup when @p seq is not a live producer. */
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

    /** (Re)initialize with the smallest power-of-two cell count
     *  >= @p min_cells; all cells vacant. */
    void
    init(std::size_t min_cells)
    {
        std::size_t cells = 2;
        while (cells < min_cells)
            cells <<= 1;
        cells_.assign(cells, Entry{});
        mask_ = cells - 1;
    }

    /** Slot of live producer @p seq, or kNoSlot. One indexed load plus
     *  a seq compare -- the dispatch resolve fast path. */
    std::uint32_t
    lookup(InstSeq seq) const
    {
        const Entry &e = cells_[seq & mask_];
        return e.seq == seq ? e.slot : kNoSlot;
    }

    /**
     * Publish live producer @p seq -> @p slot when its cell is free or
     * already its own; returns false on a collision with a different
     * live producer (the caller grows via insert()). Split from
     * insert() so the dispatch fast path inlines without dragging the
     * rebuild machinery into the hot loop.
     */
    bool
    tryInsert(InstSeq seq, std::uint32_t slot)
    {
        Entry &e = cells_[seq & mask_];
        if (e.seq != kInvalidSeq && e.seq != seq)
            return false;
        e.seq = seq;
        e.slot = slot;
        return true;
    }

    /**
     * Publish live producer @p seq -> @p slot. When the cell is owned
     * by a different live producer (seq aliasing under the current
     * mask), the table doubles until no two live producers collide,
     * refilled from @p forEachLive (invokes fn(InstSeq, slot) per live
     * producer).
     */
    template <typename ForEachLive>
    void
    insert(InstSeq seq, std::uint32_t slot, ForEachLive &&forEachLive)
    {
        while (!tryInsert(seq, slot))
            grow(forEachLive); // would evict a live entry: rebuild
    }

    /** Retire @p seq (completed or squashed); no-op when absent. */
    void
    erase(InstSeq seq)
    {
        Entry &e = cells_[seq & mask_];
        if (e.seq == seq)
            e.seq = kInvalidSeq;
    }

    std::size_t cellCount() const { return cells_.size(); }

  private:
    struct Entry
    {
        InstSeq seq = kInvalidSeq;
        std::uint32_t slot = 0;
    };

    template <typename ForEachLive>
    void
    grow(ForEachLive &&forEachLive)
    {
        std::size_t n = cells_.size();
        for (;;) {
            n <<= 1;
            std::vector<Entry> fresh(n, Entry{});
            const InstSeq mask = n - 1;
            bool ok = true;
            forEachLive([&](InstSeq seq, std::uint32_t slot) {
                Entry &e = fresh[seq & mask];
                if (e.seq != kInvalidSeq)
                    ok = false; // two live producers still collide
                e.seq = seq;
                e.slot = slot;
            });
            if (!ok)
                continue;
            cells_ = std::move(fresh);
            mask_ = mask;
            return;
        }
    }

    std::vector<Entry> cells_;
    InstSeq mask_ = 1;
};

} // namespace stsim

#endif // STSIM_PIPELINE_PRODUCER_TABLE_HH
