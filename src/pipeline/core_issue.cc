/**
 * @file
 * Issue/select and writeback stages. Issue pops ready instructions in
 * age order subject to issue width, FU availability, memory ordering
 * and the selection-throttling barrier (the paper's no-select bit,
 * Figure 2). Writeback completes executions, drives the result bus and
 * wakeup network, resolves branches and triggers recovery.
 */

#include "common/logging.hh"
#include "core.hh"

namespace stsim
{

void
Core::issueStage()
{
    unsigned issued = 0;
    // Entries skipped for structural reasons are re-queued after the
    // scan; the scan bound keeps one cycle's work linear in width.
    std::vector<InstSeq> deferred;

    const InstSeq barrier = deps_.controller->noSelectBarrier();

    while (issued < cfg_.issueWidth && !readyQ_.empty()) {
        InstSeq seq = readyQ_.top();
        readyQ_.pop();
        auto slot = slotOf(seq);
        if (!slot)
            continue; // squashed: lazy removal
        DynInst &di = inst(*slot);
        if (!di.inWindow || di.issued || di.waitingOn)
            continue; // stale entry

        // Selection throttling: entries younger than the oldest
        // outstanding no-select branch keep their request line low.
        // The ready queue pops in age order, so every remaining entry
        // is also younger: stop selecting.
        if (barrier != kInvalidSeq && di.seq > barrier) {
            ++stats_.noSelectSkips;
            deferred.push_back(seq);
            break;
        }

        FuType fu = fuTypeFor(di.ti.cls);
        if (!fuPool_.available(fu)) {
            deferred.push_back(seq);
            continue;
        }

        if (di.ti.isLoad() && !loadMayIssue(di)) {
            ++stats_.loadsBlockedByStore;
            blockedLoads_.push_back(seq);
            continue;
        }

        // Issue.
        fuPool_.claim(fu);
        di.issued = true;
        ++issued;
        ++stats_.issuedInsts;
        const bool wp = di.wrongPath;
        if (wp)
            ++stats_.issuedWrongPath;

        deps_.power->record(PUnit::Window, 1, wp ? 1 : 0); // operand read
        deps_.power->record(PUnit::Alu, 1, wp ? 1 : 0);

        unsigned lat =
            CoreConfig::baseLatency(di.ti.cls) + cfg_.extraExecLatency;
        if (di.ti.isLoad()) {
            deps_.power->record(PUnit::Lsq, 1, wp ? 1 : 0);
            if (tryForward(di)) {
                ++stats_.loadsForwarded;
                lat += 1;
            } else {
                auto r = deps_.memory->accessData(di.ti.memAddr, false,
                                                  wp);
                deps_.power->record(PUnit::DCache, 1, wp ? 1 : 0);
                if (r.l2Accessed)
                    deps_.power->record(PUnit::DCache2, 1, wp ? 1 : 0);
                lat += r.latency;
            }
        } else if (di.ti.isStore()) {
            // Address generation; the cache write happens at commit.
            deps_.power->record(PUnit::Lsq, 1, wp ? 1 : 0);
        }

        di.completeAt = now_ + lat;
        wbQ_.push({di.completeAt, di.seq});
    }

    for (InstSeq s : deferred)
        readyQ_.push(s);
}

void
Core::writebackStage()
{
    unsigned done = 0;
    while (!wbQ_.empty() && wbQ_.top().at <= now_ &&
           done < cfg_.issueWidth) {
        WbEvent ev = wbQ_.top();
        auto slot = slotOf(ev.seq);
        if (!slot) {
            wbQ_.pop(); // squashed in flight
            continue;
        }
        DynInst &di = inst(*slot);
        stsim_assert(di.issued && !di.completed,
                     "bogus writeback event for seq %llu",
                     static_cast<unsigned long long>(ev.seq));
        wbQ_.pop();
        ++done;

        di.completed = true;
        const bool wp = di.wrongPath;
        deps_.power->record(PUnit::ResultBus, 1, wp ? 1 : 0);

        wakeConsumers(di);

        if (di.ti.isStore()) {
            di.addrReady = true;
            unknownStoreAddrs_.erase(di.seq);
            releaseBlockedLoads();
        }

        if (di.ti.isBranch()) {
            // Resolution: release any throttling heuristic this branch
            // triggered, then recover if it was mispredicted.
            if (di.confAssigned)
                deps_.controller->onBranchResolved(di.seq);
            if (di.seq == guardBranchSeq_)
                resolveGuardBranch(di);
        }
    }
}

} // namespace stsim
