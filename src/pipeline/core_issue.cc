/**
 * @file
 * Issue/select and writeback stages. Issue pops ready instructions in
 * age order subject to issue width, FU availability, memory ordering
 * and the selection-throttling barrier (the paper's no-select bit,
 * Figure 2). Writeback completes executions, drives the result bus and
 * wakeup network, resolves branches and triggers recovery.
 */

#include <algorithm>

#include "common/logging.hh"
#include "common/prefetch.hh"
#include "core.hh"

namespace stsim
{

void
Core::issueStage()
{
    unsigned issued = 0;
    unsigned exec_cnt = 0, exec_wrong = 0; // Window read + ALU pairs
    const InstSeq barrier = deps_.controller->noSelectBarrier();

    // Walk ready window positions oldest-first. Entries skipped for
    // structural reasons simply keep their ready bit; issued and
    // store-blocked entries clear it.
    std::uint64_t pos = robBasePos_;
    const std::uint64_t end = robBasePos_ + rob_.size();

    while (issued < cfg_.issueWidth &&
           (pos = nextReadyPos(pos, end)) != kInvalidSeq) {
        DynInst &di = inst(rob_[pos - robBasePos_]);
        if (pos + 1 < end) // walk-ahead: next window slot
            STSIM_PREFETCH(&slots_[rob_[pos + 1 - robBasePos_]]);
        stsim_dbg_assert(di.inWindow && !di.issued && !di.waitingOn,
                     "stale ready bit for seq %llu",
                     static_cast<unsigned long long>(di.seq));

        // Selection throttling: entries younger than the oldest
        // outstanding no-select branch keep their request line low.
        // The walk is in age order, so every remaining entry is also
        // younger: stop selecting.
        if (barrier != kInvalidSeq && di.seq > barrier) {
            ++stats_.noSelectSkips;
            break;
        }

        // FU class cached at dispatch: deferred retries (FU-starved
        // entries revisited every cycle) no longer recompute it.
        const FuType fu = di.fu;
        if (!fuPool_.available(fu)) {
            ++pos; // deferred: bit stays set for a later cycle
            continue;
        }

        if (di.ti.isLoad() && !loadMayIssue(di)) {
            ++stats_.loadsBlockedByStore;
            blockedLoadMask_.set(di.lsqPos);
            clearReady(di);
            ++pos;
            continue;
        }

        // Issue.
        fuPool_.claim(fu);
        di.issued = true;
        clearReady(di);
        ++pos;
        ++issued;
        ++stats_.issuedInsts;
        const bool wp = di.wrongPath;
        if (wp) {
            ++stats_.issuedWrongPath;
            ++exec_wrong;
        }
        ++exec_cnt; // operand read + ALU, batched below

        unsigned lat =
            CoreConfig::baseLatency(di.ti.cls) + cfg_.extraExecLatency;
        if (di.ti.isLoad()) {
            deps_.power->record(PUnit::Lsq, 1, wp ? 1 : 0);
            if (tryForward(di)) {
                ++stats_.loadsForwarded;
                lat += 1;
            } else {
                auto r = deps_.memory->accessData(di.ti.memAddr, false,
                                                  wp);
                deps_.power->record(PUnit::DCache, 1, wp ? 1 : 0);
                if (r.l2Accessed)
                    deps_.power->record(PUnit::DCache2, 1, wp ? 1 : 0);
                lat += r.latency;
            }
        } else if (di.ti.isStore()) {
            // Address generation; the cache write happens at commit.
            deps_.power->record(PUnit::Lsq, 1, wp ? 1 : 0);
        }

        di.completeAt = now_ + lat;
        wbPush(di.completeAt, di.seq);
    }
    if (exec_cnt) {
        deps_.power->record(PUnit::Window, exec_cnt, exec_wrong);
        deps_.power->record(PUnit::Alu, exec_cnt, exec_wrong);
    }
}

void
Core::writebackStage()
{
    unsigned done = 0;
    while (wbCount_ && wbCursor_ <= now_ && done < cfg_.issueWidth) {
        WbBucket &b = wbCal_[wbCursor_ & wbCalMask_];
        if (!b.pending() || b.cycle != wbCursor_) {
            ++wbCursor_; // empty cycle (cell may hold a future one)
            continue;
        }
        if (!b.sorted) {
            // First drain of this cycle's bucket: order by seq so the
            // (cycle, seq) completion order matches the old heap's.
            // Buckets are near-sorted (same-cycle issues push in seq
            // order), so insertion sort beats std::sort at pipe sizes.
            if (b.ev.size() <= 24) {
                for (std::size_t i = 1; i < b.ev.size(); ++i) {
                    InstSeq v = b.ev[i];
                    std::size_t j = i;
                    for (; j > 0 && b.ev[j - 1] > v; --j)
                        b.ev[j] = b.ev[j - 1];
                    b.ev[j] = v;
                }
            } else {
                std::sort(b.ev.begin(), b.ev.end());
            }
            b.sorted = true;
        }

        while (b.pending() && done < cfg_.issueWidth) {
            InstSeq seq = b.ev[b.head];
            if (b.head + 1 < b.ev.size()) // walk-ahead: next event
                STSIM_PREFETCH(&slots_[seqSlot_[b.ev[b.head + 1]]]);
            auto slot = slotOf(seq);
            if (!slot) {
                ++b.head; // squashed in flight
                --wbCount_;
                continue;
            }
            ++b.head;
            --wbCount_;
            completeInst(inst(*slot));
            ++done;
        }
        if (!b.pending()) {
            b.clear();
            ++wbCursor_;
        }
    }
}

void
Core::completeInst(DynInst &di)
{
    stsim_dbg_assert(di.issued && !di.completed,
                 "bogus writeback event for seq %llu",
                 static_cast<unsigned long long>(di.seq));
    di.completed = true;
    deps_.power->record(PUnit::ResultBus, 1, di.wrongPath ? 1 : 0);
    if (di.ti.hasDest)
        prodTab_.erase(di.seq); // no longer a live producer

    wakeConsumers(di);

    if (di.ti.isStore()) {
        di.addrReady = true;
        ++readyStores_;
        unknownStoreMask_.clear(di.lsqPos);
        storeAddrMask_.set(di.lsqPos);
        releaseBlockedLoads();
    }

    if (di.ti.isBranch()) {
        // Resolution: release any throttling heuristic this branch
        // triggered, then recover if it was mispredicted.
        if (di.confAssigned)
            deps_.controller->onBranchResolved(di.seq);
        if (di.seq == guardBranchSeq_)
            resolveGuardBranch(di);
    }
}

} // namespace stsim
