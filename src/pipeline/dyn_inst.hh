/**
 * @file
 * In-flight dynamic instruction state (one RUU/pipe entry).
 */

#ifndef STSIM_PIPELINE_DYN_INST_HH
#define STSIM_PIPELINE_DYN_INST_HH

#include <cstdint>
#include <vector>

#include "bpred/bpred_unit.hh"
#include "common/types.hh"
#include "confidence/estimator.hh"
#include "trace/instruction.hh"

namespace stsim
{

/** Functional-unit classes for issue-port accounting. */
enum class FuType : std::uint8_t
{
    IntAlu,
    IntMult,
    MemPort,
    FpAlu,
    FpMult,
};

/** Number of FU classes. */
inline constexpr std::size_t kNumFuTypes = 5;

/** FU class an instruction issues to. */
constexpr FuType
fuTypeFor(InstClass cls)
{
    switch (cls) {
      case InstClass::IntMult: return FuType::IntMult;
      case InstClass::Load:
      case InstClass::Store: return FuType::MemPort;
      case InstClass::FpAlu: return FuType::FpAlu;
      case InstClass::FpMult: return FuType::FpMult;
      default: return FuType::IntAlu;
    }
}

/**
 * One in-flight instruction. Lives in a fixed slot pool; flows through
 * the fetch pipe, decode pipe and RUU by slot index.
 */
struct DynInst
{
    TraceInst ti;
    InstSeq seq = kInvalidSeq;
    bool wrongPath = false;

    /// @name Pipe timing
    /// @{
    Cycle decodeReady = 0;   ///< cycle it reaches the decode stage
    Cycle dispatchReady = 0; ///< cycle it reaches dispatch
    Cycle completeAt = 0;    ///< cycle its result is available
    /// @}

    /// @name Status flags
    /// @{
    bool inWindow = false; ///< dispatched into the RUU
    bool issued = false;
    bool completed = false;
    /// @}

    /// @name Dependences
    /// @{
    std::uint8_t waitingOn = 0;  ///< outstanding source operands
    std::vector<InstSeq> consumers; ///< wakeup list (seq-addressed)
    /// @}

    /// @name Branch state
    /// @{
    BranchPrediction pred;
    bool predicted = false;    ///< pred is valid
    bool mispredicted = false; ///< known at fetch (simulator oracle)
    ConfLevel conf = ConfLevel::VHC;
    bool confAssigned = false;
    /// @}

    /// @name Memory state
    /// @{
    bool addrReady = false; ///< store address computed
    /// @}

    /** Reset for slot reuse (keeps consumer vector capacity). */
    void
    reset()
    {
        ti = TraceInst{};
        seq = kInvalidSeq;
        wrongPath = false;
        decodeReady = dispatchReady = completeAt = 0;
        inWindow = issued = completed = false;
        waitingOn = 0;
        consumers.clear();
        pred = BranchPrediction{};
        predicted = false;
        mispredicted = false;
        conf = ConfLevel::VHC;
        confAssigned = false;
        addrReady = false;
    }
};

} // namespace stsim

#endif // STSIM_PIPELINE_DYN_INST_HH
