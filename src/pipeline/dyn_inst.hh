/**
 * @file
 * In-flight dynamic instruction state (one RUU/pipe entry).
 */

#ifndef STSIM_PIPELINE_DYN_INST_HH
#define STSIM_PIPELINE_DYN_INST_HH

#include <cstdint>
#include <vector>

#include "bpred/bpred_unit.hh"
#include "common/types.hh"
#include "confidence/estimator.hh"
#include "trace/instruction.hh"

namespace stsim
{

/** Functional-unit classes for issue-port accounting. */
enum class FuType : std::uint8_t
{
    IntAlu,
    IntMult,
    MemPort,
    FpAlu,
    FpMult,
};

/** Number of FU classes. */
inline constexpr std::size_t kNumFuTypes = 5;

/** FU class an instruction issues to. */
constexpr FuType
fuTypeFor(InstClass cls)
{
    switch (cls) {
      case InstClass::IntMult: return FuType::IntMult;
      case InstClass::Load:
      case InstClass::Store: return FuType::MemPort;
      case InstClass::FpAlu: return FuType::FpAlu;
      case InstClass::FpMult: return FuType::FpMult;
      default: return FuType::IntAlu;
    }
}

/**
 * One in-flight instruction. Lives in a fixed slot pool; flows through
 * the fetch pipe, decode pipe and RUU by slot index.
 *
 * Field order is deliberate: seq (the slotOf validation word), the
 * status flags and the inline wakeup list share the leading cache
 * line, so the dependence-resolution path touches one line per
 * producer. Cold spill state lives at the tail.
 */
struct alignas(64) DynInst
{
    InstSeq seq = kInvalidSeq;

    /// @name Status flags
    /// @{
    bool wrongPath = false;
    bool inWindow = false; ///< dispatched into the RUU
    bool issued = false;
    bool completed = false;
    bool predicted = false;    ///< pred is valid
    bool mispredicted = false; ///< known at fetch (simulator oracle)
    bool confAssigned = false;
    bool addrReady = false; ///< store address computed
    /// @}

    /// @name Dependences
    /// @{
    std::uint8_t waitingOn = 0; ///< outstanding source operands

    /** Inline capacity of the wakeup list; covers almost every
     *  producer, so the common case never touches a heap buffer. */
    static constexpr std::size_t kInlineConsumers = 4;
    std::uint8_t consumerCount = 0; ///< entries in consumersInline
    InstSeq consumersInline[kInlineConsumers];

    void
    addConsumer(InstSeq seq)
    {
        if (consumerCount < kInlineConsumers)
            consumersInline[consumerCount++] = seq;
        else
            consumersOverflow.push_back(seq);
    }

    template <typename Fn>
    void
    forEachConsumer(Fn &&fn) const
    {
        for (std::uint8_t i = 0; i < consumerCount; ++i)
            fn(consumersInline[i]);
        for (InstSeq s : consumersOverflow)
            fn(s);
    }

    void
    clearConsumers()
    {
        consumerCount = 0;
        consumersOverflow.clear();
    }
    /// @}

    TraceInst ti;
    std::uint64_t windowPos = 0; ///< monotone ROB position (dispatch)
    std::uint64_t lsqPos = 0;    ///< monotone LSQ position (memory ops)

    /// @name Pipe timing
    /// @{
    Cycle decodeReady = 0;   ///< cycle it reaches the decode stage
    Cycle dispatchReady = 0; ///< cycle it reaches dispatch
    Cycle completeAt = 0;    ///< cycle its result is available
    /// @}

    /// @name Branch state
    /// @{
    BranchPrediction pred;
    ConfLevel conf = ConfLevel::VHC;
    /// @}

    std::vector<InstSeq> consumersOverflow; ///< rare wakeup spill

    /**
     * Reset for slot reuse (keeps consumer vector capacity). Only the
     * gating flags are cleared: every other field is unconditionally
     * rewritten before its first read on the paths that consume it
     * (ti/seq/wrongPath/decodeReady at fetch, pred when predicted is
     * set, conf when confAssigned is set, positions and timestamps at
     * dispatch/issue), and seq is already kInvalidSeq from freeSlot.
     */
    void
    reset()
    {
        inWindow = issued = completed = false;
        waitingOn = 0;
        clearConsumers();
        predicted = false;
        mispredicted = false;
        confAssigned = false;
        addrReady = false;
    }
};

} // namespace stsim

#endif // STSIM_PIPELINE_DYN_INST_HH
