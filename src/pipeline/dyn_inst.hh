/**
 * @file
 * In-flight dynamic instruction state (one RUU/pipe entry).
 */

#ifndef STSIM_PIPELINE_DYN_INST_HH
#define STSIM_PIPELINE_DYN_INST_HH

#include <cstdint>
#include <vector>

#include "bpred/bpred_unit.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "confidence/estimator.hh"
#include "trace/instruction.hh"

namespace stsim
{

/** Functional-unit classes for issue-port accounting. */
enum class FuType : std::uint8_t
{
    IntAlu,
    IntMult,
    MemPort,
    FpAlu,
    FpMult,
};

/** Number of FU classes. */
inline constexpr std::size_t kNumFuTypes = 5;

/** FU class an instruction issues to. */
constexpr FuType
fuTypeFor(InstClass cls)
{
    switch (cls) {
      case InstClass::IntMult: return FuType::IntMult;
      case InstClass::Load:
      case InstClass::Store: return FuType::MemPort;
      case InstClass::FpAlu: return FuType::FpAlu;
      case InstClass::FpMult: return FuType::FpMult;
      default: return FuType::IntAlu;
    }
}

/**
 * One in-flight instruction. Lives in a fixed slot pool; flows through
 * the fetch pipe, decode pipe and RUU by slot index.
 *
 * Field order is deliberate: the whole struct is 192 bytes (three
 * cache lines) and the leading line holds everything the reset,
 * dependence-resolution and wakeup paths touch -- seq (the slotOf
 * validation word), the status flags and the complete wakeup list
 * (inline slots plus the rare spill vector's header). Consumers are
 * stored as 32-bit deltas from the producer's seq: two fit per inline
 * InstSeq slot, and the in-flight seq span is bounded far below 2^32
 * (the no-commit watchdog fires long before fetch could run the seq
 * counter that far past a live producer).
 */
struct alignas(64) DynInst
{
    InstSeq seq = kInvalidSeq;

    /// @name Status flags
    /// @{
    bool wrongPath = false;
    bool inWindow = false; ///< dispatched into the RUU
    bool issued = false;
    bool completed = false;
    bool predicted = false;    ///< pred is valid
    bool mispredicted = false; ///< known at fetch (simulator oracle)
    bool confAssigned = false;
    bool addrReady = false; ///< store address computed
    /// @}

    /// @name Dependences
    /// @{
    std::uint8_t waitingOn = 0; ///< outstanding source operands

    /** Inline capacity of the wakeup list; covers almost every
     *  producer, so the common case never touches a heap buffer. */
    static constexpr std::size_t kInlineConsumers = 4;
    std::uint8_t consumerCount = 0; ///< entries in consumersInline

    /** FU class, cached at dispatch so issue's deferred-retry path
     *  (FU-starved entries revisited every cycle) reads one byte
     *  instead of re-deriving it from the instruction class. */
    FuType fu = FuType::IntAlu;

    ConfLevel conf = ConfLevel::VHC;

    std::uint32_t consumersInline[kInlineConsumers]; ///< seq deltas

    std::vector<std::uint32_t> consumersOverflow; ///< rare spill

    void
    addConsumer(InstSeq cs)
    {
        stsim_dbg_assert(cs > seq && cs - seq < UINT32_MAX,
                     "consumer delta out of range");
        const auto d = static_cast<std::uint32_t>(cs - seq);
        if (consumerCount < kInlineConsumers)
            consumersInline[consumerCount++] = d;
        else
            consumersOverflow.push_back(d);
    }

    /** Visit consumer seqs (absolute, reconstructed from deltas). */
    template <typename Fn>
    void
    forEachConsumer(Fn &&fn) const
    {
        for (std::uint8_t i = 0; i < consumerCount; ++i)
            fn(seq + consumersInline[i]);
        for (std::uint32_t d : consumersOverflow)
            fn(seq + d);
    }

    void
    clearConsumers()
    {
        consumerCount = 0;
        consumersOverflow.clear();
    }
    /// @}

    TraceInst ti;
    std::uint64_t windowPos = 0; ///< monotone ROB position (dispatch)
    std::uint64_t lsqPos = 0;    ///< monotone LSQ position (memory ops)

    /// @name Pipe timing
    /// @{
    Cycle decodeReady = 0;   ///< cycle it reaches the decode stage
    Cycle dispatchReady = 0; ///< cycle it reaches dispatch
    Cycle completeAt = 0;    ///< cycle its result is available
    /// @}

    BranchPrediction pred;

    /**
     * Reset for slot reuse (keeps consumer vector capacity). Only the
     * gating flags are cleared: every other field is unconditionally
     * rewritten before its first read on the paths that consume it
     * (ti/seq/wrongPath/decodeReady at fetch, pred when predicted is
     * set, conf when confAssigned is set, positions and timestamps at
     * dispatch/issue), and seq is already kInvalidSeq from freeSlot.
     */
    void
    reset()
    {
        inWindow = issued = completed = false;
        waitingOn = 0;
        clearConsumers();
        predicted = false;
        mispredicted = false;
        confAssigned = false;
        addrReady = false;
    }
};

} // namespace stsim

#endif // STSIM_PIPELINE_DYN_INST_HH
