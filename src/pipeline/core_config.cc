#include "core_config.hh"

#include "common/logging.hh"

namespace stsim
{

const char *
oracleModeName(OracleMode m)
{
    switch (m) {
      case OracleMode::None: return "none";
      case OracleMode::OracleFetch: return "oracle-fetch";
      case OracleMode::OracleDecode: return "oracle-decode";
      case OracleMode::OracleSelect: return "oracle-select";
    }
    return "?";
}

void
CoreConfig::applyPipelineDepth(unsigned total_stages)
{
    if (total_stages < 6 || total_stages > 32)
        stsim_fatal("pipeline depth %u outside supported range [6,32]",
                    total_stages);
    pipelineStages = total_stages;

    // Four fixed backend stages: dispatch, issue/select, writeback,
    // commit. The remainder splits 3:1 between the in-order front end
    // and execution latency (§5.3.1 grows both).
    unsigned extra = total_stages - 6;
    unsigned front_end = 2 + (extra * 3 + 2) / 4; // >= 2
    extraExecLatency = extra - (front_end - 2);
    fetchStages = (front_end + 1) / 2;
    decodeStages = front_end / 2;
    extraDl1Latency = extra / 8;
}

void
CoreConfig::validate() const
{
    if (fetchWidth == 0 || decodeWidth == 0 || issueWidth == 0 ||
        commitWidth == 0)
        stsim_fatal("zero pipeline width");
    if (fetchWidth > 64 || issueWidth > 64)
        stsim_fatal("implausible width");
    if (ruuSize < 8 || lsqSize < 4)
        stsim_fatal("window/LSQ too small");
    if (fetchStages < 1 || decodeStages < 1)
        stsim_fatal("front-end depth must be at least 1+1");
    if (numIntAlu == 0 || numMemPorts == 0)
        stsim_fatal("need at least one int ALU and one memory port");
    if (maxTakenBranchesPerFetch == 0)
        stsim_fatal("maxTakenBranchesPerFetch must be >= 1");
}

} // namespace stsim
