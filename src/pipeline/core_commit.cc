/**
 * @file
 * Commit stage, squash/recovery and misprediction resolution.
 */

#include "common/logging.hh"
#include "common/prefetch.hh"
#include "core.hh"

namespace stsim
{

void
Core::commitStage()
{
    unsigned n = 0;
    unsigned reg_writes = 0;
    while (n < cfg_.commitWidth && !rob_.empty()) {
        std::uint32_t slot = rob_.front();
        DynInst &di = inst(slot);
        if (rob_.size() > 1)
            STSIM_PREFETCH(&slots_[rob_[1]]);
        if (!di.completed)
            break;
        stsim_dbg_assert(!di.wrongPath,
                     "wrong-path instruction reached commit");
        rob_.pop_front();
        ++robBasePos_;
        if (isMemory(di.ti.cls)) {
            stsim_dbg_assert(!lsq_.empty() && lsq_.front() == slot,
                         "LSQ out of sync at commit");
            lsq_.pop_front();
            ++lsqBasePos_;
            if (di.ti.isStore()) {
                --readyStores_; // committed stores had known addresses
                storeAddrMask_.clear(di.lsqPos);
            }
        }

        if (di.ti.isStore()) {
            // Stores write the cache at commit (write-allocate).
            auto r = deps_.memory->accessData(di.ti.memAddr, true,
                                              false);
            deps_.power->record(PUnit::DCache, 1, 0);
            if (r.l2Accessed)
                deps_.power->record(PUnit::DCache2, 1, 0);
        }
        if (di.ti.hasDest)
            ++reg_writes; // batched below (exact integer counts)

        if (di.ti.isBranch()) {
            deps_.bpred->commitUpdate(di.ti, di.pred);
            ++stats_.committedBranches;
            if (di.ti.isCondBranch()) {
                ++stats_.committedCondBranches;
                bool correct = di.pred.predTaken == di.ti.taken;
                if (!correct)
                    ++stats_.condMispredicts;
                if (di.confAssigned) {
                    confMetrics_.record(di.conf, correct);
                    deps_.confidence->update(di.ti.pc,
                                             di.pred.histBefore,
                                             correct);
                }
            }
        }

        ++stats_.committedInsts;
        ++n;
        lastCommitCycle_ = now_;
        freeSlot(slot);
    }
    if (reg_writes)
        deps_.power->record(PUnit::Regfile, reg_writes, 0);
}

void
Core::squashAfter(InstSeq seq)
{
    ++stats_.squashes;

    // LSQ first: its slots are shared with the ROB, so only unlink.
    // Every per-position mask bit dies with its entry here, so no
    // stale bit can survive into a reused position.
    while (!lsq_.empty() && inst(lsq_.back()).seq > seq) {
        const DynInst &e = inst(lsq_.back());
        if (e.ti.isStore()) {
            if (e.addrReady) {
                --readyStores_; // wrong-path store that had completed
                storeAddrMask_.clear(e.lsqPos);
            } else {
                unknownStoreMask_.clear(e.lsqPos);
            }
        } else {
            blockedLoadMask_.clear(e.lsqPos);
        }
        lsq_.pop_back();
    }

    auto drop_young = [&](SlotRing &q) {
        while (!q.empty() && inst(q.back()).seq > seq) {
            std::uint32_t slot = q.back();
            q.pop_back();
            DynInst &di = inst(slot);
            if (di.inWindow) {
                clearReady(di); // position will be reused
                if (di.ti.hasDest)
                    prodTab_.erase(di.seq);
            }
            ++stats_.squashedInsts;
            freeSlot(slot);
        }
    };
    drop_young(fetchQ_);
    drop_young(dispatchQ_);
    drop_young(rob_);

    // Writeback-calendar events are validated lazily against the slot
    // pool (slotOf).

    deps_.controller->squashYoungerThan(seq);
    releaseBlockedLoads();
}

void
Core::resolveGuardBranch(DynInst &branch)
{
    stsim_assert(branch.seq == guardBranchSeq_, "guard mismatch");

    // Repair speculative predictor state (global history, RAS).
    deps_.bpred->squashRestore(branch.ti, branch.pred);

    if (fetchMode_ == FetchMode::WrongPath)
        squashAfter(branch.seq);
    // In WaitBranch mode (oracle fetch / garbage target) nothing
    // younger was fetched, so there is nothing to squash.

    fetchMode_ = FetchMode::CorrectPath;
    wrongCursor_.reset();
    guardBranchSeq_ = kInvalidSeq;
    fetchPc_ = branch.ti.npc;
    Cycle resume = now_ + 1 + cfg_.extraMispredictPenalty;
    if (resume > fetchStallUntil_)
        fetchStallUntil_ = resume;
}

} // namespace stsim
