/**
 * @file
 * The out-of-order core: an RUU-style (SimpleScalar sim-outorder)
 * machine with a parameterizable deep front end, executing a synthetic
 * workload under a branch predictor, confidence estimator, speculation
 * controller (Selective Throttling / Pipeline Gating), memory
 * hierarchy and Wattch-style power model.
 *
 * One tick() simulates one cycle, processing stages in reverse order
 * (commit, writeback, issue, dispatch, decode, fetch) so same-cycle
 * structural hazards resolve without events.
 */

#ifndef STSIM_PIPELINE_CORE_HH
#define STSIM_PIPELINE_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "bpred/bpred_unit.hh"
#include "cache/hierarchy.hh"
#include "common/logging.hh"
#include "common/scan_mask.hh"
#include "common/seq_ring.hh"
#include "common/types.hh"
#include "confidence/dispatch.hh"
#include "confidence/estimator.hh"
#include "confidence/metrics.hh"
#include "pipeline/core_config.hh"
#include "pipeline/core_stats.hh"
#include "pipeline/dyn_inst.hh"
#include "pipeline/fu_pool.hh"
#include "pipeline/producer_table.hh"
#include "power/power_model.hh"
#include "throttle/controller.hh"
#include "trace/workload.hh"

namespace stsim
{

/**
 * Fixed-capacity power-of-two ring of slot indices. The pipe and
 * window queues (fetch, dispatch, ROB, LSQ) have config-bounded
 * occupancy, so a masked ring replaces std::deque's segmented
 * bookkeeping with single-array indexing on the per-cycle hot paths.
 */
class SlotRing
{
  public:
    void
    init(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        buf_.assign(cap, 0);
        mask_ = cap - 1;
        head_ = tail_ = 0;
    }

    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return tail_ - head_; }

    void
    push_back(std::uint32_t v)
    {
        stsim_dbg_assert(size() <= mask_, "slot ring overflow");
        buf_[tail_++ & mask_] = v;
    }

    void pop_front() { ++head_; }
    void pop_back() { --tail_; }
    std::uint32_t front() const { return buf_[head_ & mask_]; }
    std::uint32_t back() const { return buf_[(tail_ - 1) & mask_]; }

    std::uint32_t
    operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    /** Absolute head position (checkpointing). */
    std::uint64_t headPos() const { return head_; }

    /** Empty the ring at absolute position @p head (checkpoint
     *  restore; the caller re-pushes the saved contents). */
    void
    restartAt(std::uint64_t head)
    {
        head_ = tail_ = head;
    }

  private:
    std::vector<std::uint32_t> buf_;
    std::uint64_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

/** The simulated processor core. */
class Core
{
  public:
    /** Non-owning references to the core's collaborators. */
    struct Deps
    {
        Workload *workload = nullptr;
        BpredUnit *bpred = nullptr;
        ConfidenceEstimator *confidence = nullptr; ///< may be null
        MemoryHierarchy *memory = nullptr;
        PowerModel *power = nullptr;
        SpeculationController *controller = nullptr;
    };

    Core(const CoreConfig &cfg, const Deps &deps);

    /** Simulate one cycle. */
    void tick();

    /** Current cycle. */
    Cycle now() const { return now_; }

    const CoreStats &stats() const { return stats_; }

    /** Confidence quality confusion counts (commit-time). */
    const ConfMetrics &confMetrics() const { return confMetrics_; }

    const CoreConfig &config() const { return cfg_; }

    /** In-flight instruction count (diagnostics/tests). */
    std::size_t inFlight() const { return inflightCount_; }

    /**
     * Hot-path event counts for the observability registry. Plain
     * (non-atomic) members bumped on the per-cycle paths; the
     * simulator flushes them into obs counters once per run, so the
     * pipeline itself never touches an atomic.
     */
    struct HotCounters
    {
        std::uint64_t fetchGroups = 0;    ///< batched fetch-group calls
        std::uint64_t producerHits = 0;   ///< dispatch resolves: waiting
        std::uint64_t producerMisses = 0; ///< dispatch resolves: ready
    };

    const HotCounters &hotCounters() const { return hot_; }

    /** Cycles since the last commit (deadlock watchdog). */
    Cycle cyclesSinceCommit() const { return now_ - lastCommitCycle_; }

    /** Zero event counters at the end of warmup; state is untouched. */
    void
    resetStats()
    {
        stats_ = CoreStats{};
        confMetrics_ = ConfMetrics{};
    }

    /**
     * Checkpoint the full microarchitectural state between ticks: the
     * in-flight instruction pool (with the exact free-list order, so
     * restored runs allocate the same slots), the pipe/window rings,
     * the scheduler bitmap, the writeback calendar, and the fetch
     * engine. Load restores into a freshly constructed Core with the
     * same config and collaborators. Implemented in core_state.cc.
     */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    /// @name Pipeline stages (called in this order by tick())
    /// @{
    void commitStage();
    void writebackStage();
    /** Result-bus/wakeup/branch-resolution work for one completion. */
    void completeInst(DynInst &di);
    void issueStage();
    void dispatchStage();
    void decodeStage();
    void fetchStage();
    /// @}

    /// @name Fetch helpers
    /// @{
    /** Fetch source mode. */
    enum class FetchMode : std::uint8_t
    {
        CorrectPath,
        WrongPath,   ///< running a WrongPathCursor after a mispredict
        WaitBranch,  ///< stalled until guard branch resolves
    };

    /** Handle a fetched control instruction; returns next fetch PC or
     *  nullopt when the fetch group must end. */
    std::optional<Addr> processControl(DynInst &di);
    /// @}

    /// @name Squash/recovery
    /// @{
    /** Remove everything younger than @p seq from the machine. */
    void squashAfter(InstSeq seq);

    /** Handle resolution of the fetch-blocking branch. */
    void resolveGuardBranch(DynInst &branch);
    /// @}

    /// @name Slot pool
    /// @{
    std::uint32_t
    allocSlot()
    {
        std::uint32_t s = allocSlotRaw();
        slots_[s].reset();
        return s;
    }

    /**
     * Pop a slot without resetting it. The fetch group path allocates
     * a line's worth of slots before knowing how many the generator
     * fills; unused ones go straight back, so the reset is deferred to
     * the instructions actually kept.
     */
    std::uint32_t
    allocSlotRaw()
    {
        stsim_dbg_assert(!freeSlots_.empty(), "slot pool exhausted");
        std::uint32_t s = freeSlots_.back();
        freeSlots_.pop_back();
        return s;
    }

    /** Return @p slot to the pool; its instruction leaves flight. */
    void
    freeSlot(std::uint32_t slot)
    {
        slots_[slot].seq = kInvalidSeq; // invalidate seqSlot_ hits
        freeSlots_.push_back(slot);
        --inflightCount_;
    }

    DynInst &inst(std::uint32_t slot) { return slots_[slot]; }

    /**
     * Slot of an in-flight seq, or nullopt (committed or squashed).
     * A masked ring lookup validated against the slot's own seq.
     * insertSeqSlot() grows the ring before it would ever overwrite a
     * live instruction's entry, so this is exact, not probabilistic.
     */
    std::optional<std::uint32_t>
    slotOf(InstSeq seq) const
    {
        std::uint32_t s = seqSlot_[seq];
        if (slots_[s].seq == seq)
            return s;
        return std::nullopt;
    }

    /** Publish @p seq -> @p slot; grows the ring on a live collision. */
    void
    insertSeqSlot(InstSeq seq, std::uint32_t slot)
    {
        seqSlot_.insert(
            seq, slot,
            [this](std::uint32_t s) { return slots_[s].seq; },
            [this](auto &&fn) {
                for (std::uint32_t s = 0; s < slots_.size(); ++s) {
                    if (slots_[s].seq != kInvalidSeq)
                        fn(slots_[s].seq, s);
                }
            });
    }

    /** Cold path of producer publication: the table doubles until
     *  @p seq's cell is collision-free, then the entry lands. */
    void growProducerTable(InstSeq seq, std::uint32_t slot);

    /** Enumerate live producers (in-window, incomplete, writes a
     *  destination) for ProducerTable growth and restore. */
    template <typename Fn>
    void
    forEachLiveProducer(Fn &&fn) const
    {
        for (std::size_t i = 0; i < rob_.size(); ++i) {
            const std::uint32_t s = rob_[i];
            const DynInst &di = slots_[s];
            if (di.ti.hasDest && !di.completed)
                fn(di.seq, s);
        }
    }
    /// @}

    /// @name Ready tracking
    /// @{
    /**
     * Readiness is a bitmap over monotone window positions (assigned
     * at dispatch, so position order == age order). issueStage walks
     * set bits oldest-first -- the same selection order the previous
     * min-heap produced, without per-entry heap churn.
     */
    void
    setReady(const DynInst &di)
    {
        readyWords_[(di.windowPos & readyMask_) >> 6] |=
            std::uint64_t{1} << (di.windowPos & 63);
    }

    void
    clearReady(const DynInst &di)
    {
        readyWords_[(di.windowPos & readyMask_) >> 6] &=
            ~(std::uint64_t{1} << (di.windowPos & 63));
    }

    /** First ready window position in [pos, end), or kInvalidSeq. */
    std::uint64_t nextReadyPos(std::uint64_t pos,
                               std::uint64_t end) const;
    /// @}

    /// @name Writeback calendar
    /// @{
    /** Schedule completion of @p seq at cycle @p at (strictly
     *  future). Buckets are sorted by seq when first drained, giving
     *  the heap's exact (cycle, seq) pop order. */
    void wbPush(Cycle at, InstSeq seq);

    /** Re-bucket pending events into a wider calendar ring. */
    void growWbCal();
    /// @}

    /// @name Issue helpers
    /// @{
    bool loadMayIssue(const DynInst &di);
    /** Try store-to-load forwarding; true when forwarded. */
    bool tryForward(const DynInst &load);
    void wakeConsumers(DynInst &producer);
    void releaseBlockedLoads();
    /// @}

    CoreConfig cfg_;
    Deps deps_;
    CoreStats stats_;
    ConfMetrics confMetrics_;

    Cycle now_ = 0;
    Cycle lastCommitCycle_ = 0;
    InstSeq nextSeq_ = 1;

    // Slot pool. seqSlot_ maps seq -> slot index through the shared
    // grow-on-collision ring, validated against DynInst::seq (see
    // slotOf).
    std::vector<DynInst> slots_;
    std::vector<std::uint32_t> freeSlots_;
    SeqRing<std::uint32_t> seqSlot_;
    std::size_t inflightCount_ = 0;

    // Pipes and window (slot indices, oldest first).
    SlotRing fetchQ_;
    SlotRing dispatchQ_;
    SlotRing rob_;
    SlotRing lsq_;
    std::uint64_t lsqBasePos_ = 0; ///< position of lsq_.front()
    unsigned readyStores_ = 0; ///< in-window stores with known address

    // Last-producer table: dispatch resolves srcDist operands with one
    // indexed load instead of slotOf probes plus a DynInst deref.
    ProducerTable prodTab_;

    // Per-domain masks over LSQ positions (position order == seq order
    // for memory ops, so every seq comparison the old vector walks did
    // becomes a position compare / ctz find-first).
    ScanMask unknownStoreMask_; ///< stores whose address is not known
    ScanMask storeAddrMask_;    ///< stores with a known address
    ScanMask blockedLoadMask_;  ///< loads waiting on an older store

    // Scheduling: ready bitmap over window positions. robBasePos_ is
    // the position of rob_.front(); the window covers
    // [robBasePos_, robBasePos_ + rob_.size()).
    std::vector<std::uint64_t> readyWords_;
    std::uint64_t readyMask_ = 0; ///< (bit capacity - 1), pow2 >= RUU
    std::uint64_t robBasePos_ = 0;

    // Writeback calendar: one bucket per future cycle, ring-indexed.
    struct WbBucket
    {
        std::vector<InstSeq> ev;
        Cycle cycle = 0;          ///< cycle these events belong to
        std::uint32_t head = 0;   ///< drain offset into ev
        bool sorted = false;      ///< seq-sorted (set at first drain)

        bool pending() const { return head < ev.size(); }

        void
        clear()
        {
            ev.clear();
            head = 0;
            sorted = false;
        }
    };
    std::vector<WbBucket> wbCal_;
    Cycle wbCalMask_ = 0;
    Cycle wbCursor_ = 0;      ///< oldest cycle that may hold events
    std::size_t wbCount_ = 0; ///< pending events across all buckets

    FuPool fuPool_;
    HotCounters hot_;

    /** Devirtualized estimate() for the (single) estimator; null when
     *  the core has no confidence estimator. */
    ConfEstimateFn confEstimate_ = nullptr;

    // Fetch state.
    FetchMode fetchMode_ = FetchMode::CorrectPath;
    std::optional<WrongPathCursor> wrongCursor_;
    InstSeq guardBranchSeq_ = kInvalidSeq; ///< branch fetch waits on
    Addr fetchPc_ = 0;
    Cycle fetchStallUntil_ = 0;

    // Capacities.
    std::size_t fetchQCap_;
    std::size_t dispatchQCap_;
};

} // namespace stsim

#endif // STSIM_PIPELINE_CORE_HH
