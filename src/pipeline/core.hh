/**
 * @file
 * The out-of-order core: an RUU-style (SimpleScalar sim-outorder)
 * machine with a parameterizable deep front end, executing a synthetic
 * workload under a branch predictor, confidence estimator, speculation
 * controller (Selective Throttling / Pipeline Gating), memory
 * hierarchy and Wattch-style power model.
 *
 * One tick() simulates one cycle, processing stages in reverse order
 * (commit, writeback, issue, dispatch, decode, fetch) so same-cycle
 * structural hazards resolve without events.
 */

#ifndef STSIM_PIPELINE_CORE_HH
#define STSIM_PIPELINE_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "bpred/bpred_unit.hh"
#include "cache/hierarchy.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "confidence/dispatch.hh"
#include "confidence/estimator.hh"
#include "confidence/metrics.hh"
#include "pipeline/core_config.hh"
#include "pipeline/core_stats.hh"
#include "pipeline/dyn_inst.hh"
#include "pipeline/fu_pool.hh"
#include "power/power_model.hh"
#include "throttle/controller.hh"
#include "trace/workload.hh"

namespace stsim
{

/** The simulated processor core. */
class Core
{
  public:
    /** Non-owning references to the core's collaborators. */
    struct Deps
    {
        Workload *workload = nullptr;
        BpredUnit *bpred = nullptr;
        ConfidenceEstimator *confidence = nullptr; ///< may be null
        MemoryHierarchy *memory = nullptr;
        PowerModel *power = nullptr;
        SpeculationController *controller = nullptr;
    };

    Core(const CoreConfig &cfg, const Deps &deps);

    /** Simulate one cycle. */
    void tick();

    /** Current cycle. */
    Cycle now() const { return now_; }

    const CoreStats &stats() const { return stats_; }

    /** Confidence quality confusion counts (commit-time). */
    const ConfMetrics &confMetrics() const { return confMetrics_; }

    const CoreConfig &config() const { return cfg_; }

    /** In-flight instruction count (diagnostics/tests). */
    std::size_t inFlight() const { return inflightCount_; }

    /** Cycles since the last commit (deadlock watchdog). */
    Cycle cyclesSinceCommit() const { return now_ - lastCommitCycle_; }

    /** Zero event counters at the end of warmup; state is untouched. */
    void
    resetStats()
    {
        stats_ = CoreStats{};
        confMetrics_ = ConfMetrics{};
    }

  private:
    /// @name Pipeline stages (called in this order by tick())
    /// @{
    void commitStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void decodeStage();
    void fetchStage();
    /// @}

    /// @name Fetch helpers
    /// @{
    /** Fetch source mode. */
    enum class FetchMode : std::uint8_t
    {
        CorrectPath,
        WrongPath,   ///< running a WrongPathCursor after a mispredict
        WaitBranch,  ///< stalled until guard branch resolves
    };

    /** Produce the next instruction on the current fetch path. */
    TraceInst nextFetchInst();

    /** Handle a fetched control instruction; returns next fetch PC or
     *  nullopt when the fetch group must end. */
    std::optional<Addr> processControl(DynInst &di);
    /// @}

    /// @name Squash/recovery
    /// @{
    /** Remove everything younger than @p seq from the machine. */
    void squashAfter(InstSeq seq);

    /** Handle resolution of the fetch-blocking branch. */
    void resolveGuardBranch(DynInst &branch);
    /// @}

    /// @name Slot pool
    /// @{
    std::uint32_t
    allocSlot()
    {
        stsim_assert(!freeSlots_.empty(), "slot pool exhausted");
        std::uint32_t s = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[s].reset();
        return s;
    }

    /** Return @p slot to the pool; its instruction leaves flight. */
    void
    freeSlot(std::uint32_t slot)
    {
        slots_[slot].seq = kInvalidSeq; // invalidate seqSlot_ hits
        freeSlots_.push_back(slot);
        --inflightCount_;
    }

    DynInst &inst(std::uint32_t slot) { return slots_[slot]; }

    /**
     * Slot of an in-flight seq, or nullopt (committed or squashed).
     * A masked ring lookup validated against the slot's own seq.
     * insertSeqSlot() grows the ring before it would ever overwrite a
     * live instruction's entry, so this is exact, not probabilistic.
     */
    std::optional<std::uint32_t>
    slotOf(InstSeq seq) const
    {
        std::uint32_t s = seqSlot_[seq & seqSlotMask_];
        if (slots_[s].seq == seq)
            return s;
        return std::nullopt;
    }

    /** Publish @p seq -> @p slot; grows the ring on a live collision. */
    void
    insertSeqSlot(InstSeq seq, std::uint32_t slot)
    {
        std::uint32_t prev = seqSlot_[seq & seqSlotMask_];
        const InstSeq prev_seq = slots_[prev].seq;
        if (prev_seq != kInvalidSeq && prev_seq != seq &&
            (prev_seq & seqSlotMask_) == (seq & seqSlotMask_)) {
            growSeqSlot(); // would evict a live instruction: rebuild
        }
        seqSlot_[seq & seqSlotMask_] = slot;
    }

    /** Double the seq ring until every live seq has its own cell. */
    void growSeqSlot();
    /// @}

    /// @name Issue helpers
    /// @{
    bool loadMayIssue(const DynInst &di) const;
    /** Try store-to-load forwarding; true when forwarded. */
    bool tryForward(const DynInst &load);
    void wakeConsumers(DynInst &producer);
    void releaseBlockedLoads();
    /// @}

    CoreConfig cfg_;
    Deps deps_;
    CoreStats stats_;
    ConfMetrics confMetrics_;

    Cycle now_ = 0;
    Cycle lastCommitCycle_ = 0;
    InstSeq nextSeq_ = 1;

    // Slot pool. seqSlot_ maps seq & seqSlotMask_ -> slot index and is
    // validated against DynInst::seq (see slotOf).
    std::vector<DynInst> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<std::uint32_t> seqSlot_;
    InstSeq seqSlotMask_ = 0;
    std::size_t inflightCount_ = 0;

    // Pipes and window (slot indices, oldest first).
    std::deque<std::uint32_t> fetchQ_;
    std::deque<std::uint32_t> dispatchQ_;
    std::deque<std::uint32_t> rob_;
    std::deque<std::uint32_t> lsq_;

    // Scheduling.
    std::priority_queue<InstSeq, std::vector<InstSeq>,
                        std::greater<InstSeq>>
        readyQ_; // lazy-validated
    struct WbEvent
    {
        Cycle at;
        InstSeq seq;
        bool operator>(const WbEvent &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };
    std::priority_queue<WbEvent, std::vector<WbEvent>,
                        std::greater<WbEvent>>
        wbQ_;
    std::set<InstSeq> unknownStoreAddrs_;
    std::vector<InstSeq> blockedLoads_;
    FuPool fuPool_;

    /** Devirtualized estimate() for the (single) estimator; null when
     *  the core has no confidence estimator. */
    ConfEstimateFn confEstimate_ = nullptr;

    // Fetch state.
    FetchMode fetchMode_ = FetchMode::CorrectPath;
    std::optional<WrongPathCursor> wrongCursor_;
    InstSeq guardBranchSeq_ = kInvalidSeq; ///< branch fetch waits on
    Addr fetchPc_ = 0;
    Cycle fetchStallUntil_ = 0;
    Addr lastFetchLine_ = kInvalidAddr;

    // Capacities.
    std::size_t fetchQCap_;
    std::size_t dispatchQCap_;
};

} // namespace stsim

#endif // STSIM_PIPELINE_CORE_HH
