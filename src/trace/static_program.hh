/**
 * @file
 * Synthetic static program: a control-flow graph of basic blocks whose
 * branches carry persistent behavioural models. Walking the CFG yields
 * an instruction stream with learnable branch behaviour (for gshare and
 * the confidence estimators), realistic code locality (for the I-cache)
 * and a genuine alternate path at every branch (for wrong-path fetch).
 */

#ifndef STSIM_TRACE_STATIC_PROGRAM_HH
#define STSIM_TRACE_STATIC_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/instruction.hh"
#include "trace/profile.hh"

namespace stsim
{

/** Behavioural class of a static conditional branch. */
enum class BranchBehavior : std::uint8_t
{
    Loop,     ///< taken (period-1)/period times; backward target
    Pattern,  ///< deterministic function of recent global history
    Biased,   ///< iid Bernoulli with strong bias
    Chaotic,  ///< iid Bernoulli near 0.5 (unlearnable)
};

/** Terminator kind of a static basic block. */
enum class TermKind : std::uint8_t
{
    CondBranch,
    Jump,
    Call,
    Return,
};

/** Data-access pattern of a static memory instruction. */
enum class MemPattern : std::uint8_t
{
    Stack,   ///< small hot region, high temporal locality
    Stream,  ///< sequential strides through an array region
    Random,  ///< uniform within the data footprint
};

/** A non-terminator instruction slot inside a static block. */
struct StaticOp
{
    InstClass cls = InstClass::IntAlu;
    std::uint8_t srcDist[2] = {0, 0};
    bool hasDest = true;

    // Memory slots only:
    MemPattern memPattern = MemPattern::Random;
    Addr regionBase = 0;       ///< absolute base address of the region
    std::uint32_t regionSize = 0;  ///< bytes
    std::uint16_t stride = 8;      ///< bytes per step (Stream)
    std::uint32_t memStateIdx = 0; ///< index of mutable stream cursor
};

/** A static basic block: body ops plus one control-flow terminator. */
struct StaticBlock
{
    Addr pc = 0;                   ///< address of the first instruction
    std::vector<StaticOp> ops;     ///< body (terminator excluded)

    TermKind term = TermKind::CondBranch;
    std::uint32_t takenTarget = 0;   ///< successor block index if taken
    std::uint32_t fallthrough = 0;   ///< successor block index if not

    /** Conditional branches consume the comparison result: source
     *  operand distances, like body ops (0 = none). */
    std::uint8_t termSrcDist[2] = {0, 0};

    // Conditional-branch behaviour:
    BranchBehavior behavior = BranchBehavior::Biased;
    std::uint16_t loopPeriod = 8;    ///< Loop trip count
    float takenP = 0.5f;             ///< Biased/Chaotic P(taken)
    std::uint8_t patternBits = 4;    ///< Pattern: history bits consumed
    std::uint32_t patternSalt = 1;   ///< Pattern: per-branch hash salt

    /** Address of the terminator instruction. */
    Addr termPc() const { return pc + 4 * ops.size(); }

    /** Address one past the last instruction. */
    Addr endPc() const { return pc + 4 * (ops.size() + 1); }
};

/**
 * Immutable synthetic program built deterministically from a
 * BenchmarkProfile. Shared by the correct-path walker and any number of
 * wrong-path cursors.
 */
class StaticProgram
{
  public:
    explicit StaticProgram(const BenchmarkProfile &profile);

    const BenchmarkProfile &profile() const { return profile_; }

    const StaticBlock &block(std::uint32_t idx) const
    {
        return blocks_[idx];
    }

    std::uint32_t numBlocks() const
    {
        return static_cast<std::uint32_t>(blocks_.size());
    }

    /** Block index whose address range contains @p pc (by start addr). */
    std::uint32_t blockContaining(Addr pc) const;

    /** Number of mutable stream cursors the walkers must allocate. */
    std::uint32_t numMemStates() const { return numMemStates_; }

    /** Number of pooled array regions shared by Stream ops. */
    std::uint32_t numArrayRegions() const { return numArrayRegions_; }

    /** First code address. */
    Addr codeBase() const { return kCodeBase; }

    /** One past the last code address. */
    Addr codeEnd() const { return codeEnd_; }

    /** Entry block indices reachable via Call terminators. */
    const std::vector<std::uint32_t> &funcEntries() const
    {
        return funcEntries_;
    }

    static constexpr Addr kCodeBase = 0x0040'0000;
    static constexpr Addr kStackBase = 0x7ffe'0000;
    static constexpr Addr kDataBase = 0x1000'0000;
    static constexpr std::uint32_t kStackRegionBytes = 16 * 1024;

  private:
    BenchmarkProfile profile_;
    std::vector<StaticBlock> blocks_;
    std::vector<std::uint32_t> funcEntries_;
    std::uint32_t numMemStates_ = 0;
    std::uint32_t numArrayRegions_ = 0;
    Addr codeEnd_ = 0;
};

} // namespace stsim

#endif // STSIM_TRACE_STATIC_PROGRAM_HH
