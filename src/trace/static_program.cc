#include "static_program.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace stsim
{

namespace
{

/** Pick an instruction class for a body slot from the profile mix. */
InstClass
drawBodyClass(const BenchmarkProfile &p, Rng &rng)
{
    double r = rng.uniform();
    if ((r -= p.fracLoad) < 0)
        return InstClass::Load;
    if ((r -= p.fracStore) < 0)
        return InstClass::Store;
    if ((r -= p.fracIntMult) < 0)
        return InstClass::IntMult;
    if ((r -= p.fracFpAlu) < 0)
        return InstClass::FpAlu;
    if ((r -= p.fracFpMult) < 0)
        return InstClass::FpMult;
    return InstClass::IntAlu;
}

/** Pick a branch behaviour from the (normalized) profile mix. */
BranchBehavior
drawBehavior(const BenchmarkProfile &p, Rng &rng)
{
    double total = p.fracLoop + p.fracPattern + p.fracBiased +
                   p.fracChaotic;
    double r = rng.uniform() * total;
    if ((r -= p.fracLoop) < 0)
        return BranchBehavior::Loop;
    if ((r -= p.fracPattern) < 0)
        return BranchBehavior::Pattern;
    if ((r -= p.fracBiased) < 0)
        return BranchBehavior::Biased;
    return BranchBehavior::Chaotic;
}

} // namespace

StaticProgram::StaticProgram(const BenchmarkProfile &profile)
    : profile_(profile)
{
    profile_.validate();
    Rng rng(profile_.seed * 0x517c'c1b7'2722'0a95ull + 1);

    const std::uint32_t n = profile_.numBlocks;
    blocks_.resize(n);

    // Function entries spread evenly through the code.
    funcEntries_.reserve(profile_.numFuncs);
    for (std::uint32_t f = 0; f < profile_.numFuncs; ++f)
        funcEntries_.push_back(f * (n / profile_.numFuncs));

    // Mean total block length so that the dynamic conditional-branch
    // density approximates the profile target: condFrac = P(cond)/L.
    // blockLenScale compensates for loop blocks (always cond-
    // terminated) repeating more often than the static mix suggests.
    double p_cond = 1.0 - profile_.fracJumpTerm - profile_.fracCallTerm -
                    profile_.fracRetTerm;
    double mean_len = std::max(
        2.0, profile_.blockLenScale * p_cond / profile_.condBranchFrac);
    double body_geom_p = 1.0 / std::max(1.0, mean_len - 1.0);
    unsigned body_cap = static_cast<unsigned>(4 * mean_len) + 8;

    Addr pc = kCodeBase;
    const Addr data_bytes =
        static_cast<Addr>(profile_.dataFootprintKB) * 1024;

    // Pooled array regions shared by all Stream ops: real programs
    // traverse a handful of live arrays, not one per load site. The
    // shared per-region cursor models cooperative traversal.
    struct Region
    {
        Addr base;
        std::uint32_t size;
        std::uint16_t stride;
    };
    std::vector<Region> regions;
    numArrayRegions_ = 8;
    for (std::uint32_t i = 0; i < numArrayRegions_; ++i) {
        std::uint32_t max_region = static_cast<std::uint32_t>(
            std::min<Addr>(6 * 1024, data_bytes / 2));
        std::uint32_t size = static_cast<std::uint32_t>(
            rng.between(2 * 1024, max_region));
        Addr base = kDataBase + rng.below(data_bytes - size + 1);
        static const std::uint16_t strides[] = {4, 4, 4, 8, 8, 8};
        regions.push_back({base, size, strides[rng.below(6)]});
    }

    for (std::uint32_t i = 0; i < n; ++i) {
        StaticBlock &b = blocks_[i];
        b.pc = pc;

        unsigned body_len = rng.geometric(body_geom_p, body_cap);
        b.ops.resize(body_len);
        for (auto &op : b.ops) {
            op.cls = drawBodyClass(profile_, rng);
            op.hasDest = op.cls != InstClass::Store &&
                         op.cls != InstClass::Nop;
            for (int s = 0; s < 2; ++s) {
                if (rng.chance(profile_.srcChance)) {
                    op.srcDist[s] = static_cast<std::uint8_t>(
                        1 + rng.geometric(profile_.depDistP, 62));
                }
            }
            if (isMemory(op.cls)) {
                double r = rng.uniform();
                if (r < profile_.fracStackAccess) {
                    op.memPattern = MemPattern::Stack;
                    op.regionBase = kStackBase;
                    op.regionSize = kStackRegionBytes;
                    op.memStateIdx = 0; // unused
                } else if (r < profile_.fracStackAccess +
                                   profile_.fracStreamAccess) {
                    op.memPattern = MemPattern::Stream;
                    std::uint32_t ri = static_cast<std::uint32_t>(
                        rng.below(regions.size()));
                    op.regionBase = regions[ri].base;
                    op.regionSize = regions[ri].size;
                    op.stride = regions[ri].stride;
                    op.memStateIdx = ri; // shared per-region cursor
                } else {
                    op.memPattern = MemPattern::Random;
                    op.regionBase = kDataBase;
                    op.regionSize = static_cast<std::uint32_t>(data_bytes);
                    op.memStateIdx = 0; // unused
                }
            }
        }

        // Terminator.
        double r = rng.uniform();
        if (r < profile_.fracJumpTerm) {
            b.term = TermKind::Jump;
        } else if (r < profile_.fracJumpTerm + profile_.fracCallTerm) {
            b.term = TermKind::Call;
        } else if (r < profile_.fracJumpTerm + profile_.fracCallTerm +
                           profile_.fracRetTerm) {
            b.term = TermKind::Return;
        } else {
            b.term = TermKind::CondBranch;
            // The branch consumes a freshly computed comparison (the
            // usual compare-and-branch idiom), which puts resolution
            // on the dataflow critical path.
            b.termSrcDist[0] = static_cast<std::uint8_t>(
                1 + rng.geometric(0.6, 7));
            if (rng.chance(0.4)) {
                b.termSrcDist[1] = static_cast<std::uint8_t>(
                    1 + rng.geometric(profile_.depDistP, 62));
            }
        }
        pc = b.endPc();
    }
    codeEnd_ = pc;

    // Second pass: successors (needs all block count/addresses fixed).
    for (std::uint32_t i = 0; i < n; ++i) {
        StaticBlock &b = blocks_[i];
        b.fallthrough = (i + 1) % n;

        switch (b.term) {
          case TermKind::CondBranch: {
            b.behavior = drawBehavior(profile_, rng);
            switch (b.behavior) {
              case BranchBehavior::Loop: {
                // Backward branch: loop body of 1..16 blocks.
                std::uint32_t span = static_cast<std::uint32_t>(
                    rng.between(1, 16));
                b.takenTarget = i >= span ? i - span : 0;
                b.loopPeriod = static_cast<std::uint16_t>(rng.between(
                    static_cast<std::uint64_t>(profile_.loopPeriodMin),
                    static_cast<std::uint64_t>(profile_.loopPeriodMax)));
                break;
              }
              case BranchBehavior::Pattern:
                b.patternBits = static_cast<std::uint8_t>(
                    rng.between(2, 6));
                b.patternSalt = static_cast<std::uint32_t>(rng.next()) | 1;
                b.takenP = 0.5f;
                b.takenTarget = static_cast<std::uint32_t>(
                    (i + rng.between(2, 24)) % n);
                break;
              case BranchBehavior::Biased: {
                double miss = profile_.biasedMissMin +
                    rng.uniform() *
                        (profile_.biasedMissMax - profile_.biasedMissMin);
                b.takenP = static_cast<float>(
                    rng.chance(profile_.biasedTakenFrac) ? 1.0 - miss
                                                         : miss);
                b.takenTarget = static_cast<std::uint32_t>(
                    (i + rng.between(2, 24)) % n);
                break;
              }
              case BranchBehavior::Chaotic:
                b.takenP = static_cast<float>(profile_.chaoticTakenP);
                b.takenTarget = static_cast<std::uint32_t>(
                    (i + rng.between(2, 32)) % n);
                break;
            }
            break;
          }
          case TermKind::Jump:
            // Mostly local control transfers, occasionally far.
            if (rng.chance(0.8)) {
                b.takenTarget = static_cast<std::uint32_t>(
                    (i + rng.between(1, 32)) % n);
            } else {
                b.takenTarget = static_cast<std::uint32_t>(rng.below(n));
            }
            break;
          case TermKind::Call:
            b.takenTarget =
                funcEntries_[rng.below(funcEntries_.size())];
            break;
          case TermKind::Return:
            // Fallback target when the shadow call stack is empty.
            b.takenTarget = static_cast<std::uint32_t>(rng.below(n));
            break;
        }
        if (b.takenTarget == i) // avoid self-loop degenerate case
            b.takenTarget = b.fallthrough;
    }
}

std::uint32_t
StaticProgram::blockContaining(Addr pc) const
{
    stsim_assert(pc >= kCodeBase && pc < codeEnd_,
                 "pc %#llx outside code segment",
                 static_cast<unsigned long long>(pc));
    // Binary search on block start addresses (blocks are contiguous).
    std::uint32_t lo = 0, hi = numBlocks() - 1;
    while (lo < hi) {
        std::uint32_t mid = (lo + hi + 1) / 2;
        if (blocks_[mid].pc <= pc)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

const char *
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::IntAlu: return "IntAlu";
      case InstClass::IntMult: return "IntMult";
      case InstClass::Load: return "Load";
      case InstClass::Store: return "Store";
      case InstClass::FpAlu: return "FpAlu";
      case InstClass::FpMult: return "FpMult";
      case InstClass::CondBranch: return "CondBranch";
      case InstClass::Jump: return "Jump";
      case InstClass::Call: return "Call";
      case InstClass::Return: return "Return";
      case InstClass::Nop: return "Nop";
    }
    return "?";
}

} // namespace stsim
