/**
 * @file
 * Per-benchmark synthetic workload parameters. The eight built-in
 * profiles model the SPECint95/2000 benchmarks of the paper's Table 2:
 * their dynamic conditional-branch density and their gshare-8KB
 * misprediction rate are the calibration targets.
 */

#ifndef STSIM_TRACE_PROFILE_HH
#define STSIM_TRACE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stsim
{

/**
 * Parameter set describing one synthetic benchmark. All probabilities
 * are in [0,1]; behaviour-mix fractions need not sum to 1 (they are
 * normalized at program-construction time).
 */
struct BenchmarkProfile
{
    std::string name;

    /// @name Table 2 targets (used for reporting/validation only)
    /// @{
    double targetMissRate = 0.10;  ///< gshare-8KB misprediction target
    double condBranchFrac = 0.10;  ///< dyn. cond. branches / instructions
    /// @}

    /// @name Static code structure
    /// @{
    std::uint32_t numBlocks = 1024;  ///< static basic blocks
    std::uint32_t numFuncs = 32;     ///< call-target entry points
    double fracJumpTerm = 0.10;      ///< block terminators: uncond jump
    double fracCallTerm = 0.05;      ///< block terminators: call
    double fracRetTerm = 0.05;       ///< block terminators: return
    /// @}

    /// @name Conditional-branch behaviour mix (per static branch)
    /// @{
    double fracLoop = 0.35;     ///< backward loop-exit branches
    double fracPattern = 0.20;  ///< history-correlated (learnable)
    double fracBiased = 0.30;   ///< iid Bernoulli with strong bias
    double fracChaotic = 0.15;  ///< iid Bernoulli near 0.5
    double loopPeriodMin = 3;   ///< min loop trip count
    double loopPeriodMax = 40;  ///< max loop trip count
    double biasedMissMin = 0.02; ///< min per-branch miss prob (biased)
    double biasedMissMax = 0.30; ///< max per-branch miss prob (biased)
    double chaoticTakenP = 0.5;  ///< P(taken) of chaotic branches
    /// @}

    /// @name Instruction mix (non-terminator slots)
    /// @{
    double fracLoad = 0.26;
    double fracStore = 0.12;
    double fracIntMult = 0.02;
    double fracFpAlu = 0.01;
    double fracFpMult = 0.005;
    /// @}

    /// @name Dependences
    /// @{
    double srcChance = 0.70;   ///< probability each source slot is used
    double depDistP = 0.25;    ///< geometric parameter for distance - 1
    /// @}

    /// @name Data memory behaviour
    /// @{
    std::uint32_t dataFootprintKB = 1024;
    double fracStackAccess = 0.30;   ///< hot small region
    double fracStreamAccess = 0.45;  ///< sequential strides
    std::uint32_t hotDataKB = 16;    ///< hot heap region (Random ops)
    double hotDataFrac = 0.98;       ///< Random accesses hitting it
    /// @}

    /// @name Shape correction factors (empirical calibration)
    /// @{
    /** Dynamic block-length multiplier compensating for the
     *  overrepresentation of loop blocks in the walk. */
    double blockLenScale = 1.30;
    /** Fraction of biased branches biased toward taken (cold-start
     *  friendly: cold PHT entries predict weakly taken). */
    double biasedTakenFrac = 0.75;
    /// @}

    std::uint64_t seed = 1;  ///< program-construction seed

    /** Validate ranges; fatals on nonsense values. */
    void validate() const;
};

/**
 * The eight SPECint95/2000 benchmarks with the highest misprediction
 * rates, per the paper's Table 2 (compress, gcc, go, bzip2, crafty,
 * gzip, parser, twolf), modeled as synthetic profiles.
 */
const std::vector<BenchmarkProfile> &specProfiles();

/** Look up a built-in profile by name; fatals when unknown. */
const BenchmarkProfile &findProfile(const std::string &name);

} // namespace stsim

#endif // STSIM_TRACE_PROFILE_HH
