#include "workload.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

namespace
{

/** Maximum shadow call-stack depth; deeper calls drop the oldest frame. */
constexpr std::size_t kMaxCallDepth = 64;

/** Deterministic Pattern-branch outcome from history bits and a salt. */
bool
patternOutcome(std::uint64_t hist, std::uint8_t bits, std::uint32_t salt)
{
    std::uint64_t key = (hist & lowMask(bits)) * 0x9e3779b97f4a7c15ull;
    return hashMix(key ^ salt) & 1;
}

} // namespace

//
// Workload (correct path)
//

Workload::Workload(std::shared_ptr<const StaticProgram> program,
                   std::uint64_t run_seed)
    : program_(std::move(program)),
      rng_(run_seed ^ 0xabcd'ef01'2345'6789ull),
      loopCount_(program_->numBlocks(), 0),
      chaosWild_(program_->numBlocks(), 0),
      biasStreak_(program_->numBlocks(), 0),
      streamPos_(program_->numArrayRegions(), 0)
{
    stsim_assert(program_ != nullptr, "null program");
}

const std::string &
Workload::name() const
{
    return program_->profile().name;
}

bool
Workload::evalCondBranch(std::uint32_t block_idx)
{
    const StaticBlock &b = program_->block(block_idx);
    switch (b.behavior) {
      case BranchBehavior::Loop: {
        std::uint16_t &ctr = loopCount_[block_idx];
        if (++ctr >= b.loopPeriod) {
            ctr = 0;
            return false; // loop exit: fall through
        }
        return true; // backward taken: continue looping
      }
      case BranchBehavior::Pattern:
        return patternOutcome(globalHist_, b.patternBits, b.patternSalt);
      case BranchBehavior::Biased: {
        // The uncommon outcome arrives in short streaks (e.g. a run of
        // loop-carried exceptions) rather than as isolated flips:
        // misses cluster, which is what confidence estimators detect.
        std::uint8_t &streak = biasStreak_[block_idx];
        bool common = b.takenP >= 0.5f;
        double miss_p = common ? 1.0 - b.takenP : b.takenP;
        if (streak > 0) {
            --streak;
            return !common;
        }
        if (rng_.chance(miss_p / 4.0)) {
            streak = static_cast<std::uint8_t>(
                rng_.between(2, 6)); // this one + 2..6 more
            return !common;
        }
        return common;
      }
      case BranchBehavior::Chaotic: {
        // Regime-switching: chaotic branches alternate between a calm,
        // strongly-biased phase and a wild phase near p=0.5 (real
        // data-dependent branches misbehave in bursts, which is the
        // clustering confidence estimators detect).
        std::uint8_t &wild = chaosWild_[block_idx];
        if (wild) {
            if (rng_.chance(1.0 / 50))
                wild = 0;
            return rng_.chance(b.takenP);
        }
        if (rng_.chance(1.0 / 100))
            wild = 1;
        return rng_.chance(0.96);
      }
    }
    return false;
}

Addr
Workload::memAddress(const StaticOp &op)
{
    switch (op.memPattern) {
      case MemPattern::Stack:
        // Hot small region; word-granular uniform within it.
        return op.regionBase + 8 * rng_.below(op.regionSize / 8);
      case MemPattern::Stream: {
        std::uint32_t &pos = streamPos_[op.memStateIdx];
        Addr a = op.regionBase + pos;
        pos += op.stride;
        if (pos + op.stride > op.regionSize)
            pos = 0;
        return a;
      }
      case MemPattern::Random: {
        // Pointer-chasing style: mostly within a hot heap region,
        // occasionally anywhere in the footprint.
        const BenchmarkProfile &p = program_->profile();
        Addr hot_bytes = static_cast<Addr>(p.hotDataKB) * 1024;
        if (rng_.chance(p.hotDataFrac))
            return op.regionBase + 8 * rng_.below(hot_bytes / 8);
        return op.regionBase + 8 * rng_.below(op.regionSize / 8);
      }
    }
    return op.regionBase;
}

TraceInst
Workload::nextTerminator(const StaticBlock &b)
{
    TraceInst ti;
    ti.pc = b.termPc();
    ti.hasDest = false;
    if (b.term == TermKind::CondBranch) {
        ti.srcDist[0] = b.termSrcDist[0];
        ti.srcDist[1] = b.termSrcDist[1];
    }

    std::uint32_t next_block = b.fallthrough;
    switch (b.term) {
      case TermKind::CondBranch: {
        ti.cls = InstClass::CondBranch;
        ti.taken = evalCondBranch(curBlock_);
        globalHist_ = (globalHist_ << 1) | (ti.taken ? 1 : 0);
        ti.target = program_->block(b.takenTarget).pc;
        next_block = ti.taken ? b.takenTarget : b.fallthrough;
        break;
      }
      case TermKind::Jump:
        ti.cls = InstClass::Jump;
        ti.taken = true;
        ti.target = program_->block(b.takenTarget).pc;
        next_block = b.takenTarget;
        break;
      case TermKind::Call:
        ti.cls = InstClass::Call;
        ti.taken = true;
        ti.target = program_->block(b.takenTarget).pc;
        next_block = b.takenTarget;
        if (callStack_.size() >= kMaxCallDepth)
            callStack_.erase(callStack_.begin());
        callStack_.push_back(b.fallthrough);
        break;
      case TermKind::Return: {
        ti.cls = InstClass::Return;
        ti.taken = true;
        std::uint32_t ret_block = b.takenTarget;
        if (!callStack_.empty()) {
            ret_block = callStack_.back();
            callStack_.pop_back();
        }
        ti.target = program_->block(ret_block).pc;
        next_block = ret_block;
        break;
      }
    }

    ti.npc = ti.taken ? ti.target
                      : program_->block(b.fallthrough).pc;
    curBlock_ = next_block;
    opIdx_ = 0;
    return ti;
}

namespace
{

/** Restore a sized per-block/per-slot vector, validating its length. */
template <typename T>
void
loadSizedVec(serde::StateReader &r, const char *key, std::vector<T> &out)
{
    std::vector<std::uint64_t> v = r.u64Vec(key);
    if (v.size() != out.size())
        stsim_fatal("state: workload %s length mismatch (snapshot %zu, "
                    "program %zu)",
                    key, v.size(), out.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = static_cast<T>(v[i]);
}

} // namespace

void
Workload::saveState(serde::StateWriter &w) const
{
    w.begin("workload");
    w.u64("rng_s0", rng_.stateS0());
    w.u64("rng_s1", rng_.stateS1());
    w.u64("cur_block", curBlock_);
    w.u64("op_idx", opIdx_);
    w.u64("global_hist", globalHist_);
    w.u64("generated", generated_);
    w.u64Vec("loop_count", loopCount_);
    w.u64Vec("chaos_wild", chaosWild_);
    w.u64Vec("bias_streak", biasStreak_);
    w.u64Vec("stream_pos", streamPos_);
    w.u64Vec("call_stack", callStack_);
    w.end("workload");
}

void
Workload::loadState(serde::StateReader &r)
{
    r.begin("workload");
    std::uint64_t s0 = r.u64("rng_s0");
    std::uint64_t s1 = r.u64("rng_s1");
    rng_.setState(s0, s1);
    std::uint64_t cur_block = r.u64("cur_block");
    if (cur_block >= program_->numBlocks())
        stsim_fatal("state: workload cur_block %llu out of range "
                    "(program has %zu blocks)",
                    static_cast<unsigned long long>(cur_block),
                    static_cast<std::size_t>(program_->numBlocks()));
    curBlock_ = static_cast<std::uint32_t>(cur_block);
    opIdx_ = static_cast<std::uint32_t>(r.u64("op_idx"));
    globalHist_ = r.u64("global_hist");
    generated_ = r.u64("generated");
    loadSizedVec(r, "loop_count", loopCount_);
    loadSizedVec(r, "chaos_wild", chaosWild_);
    loadSizedVec(r, "bias_streak", biasStreak_);
    loadSizedVec(r, "stream_pos", streamPos_);
    std::vector<std::uint64_t> cs = r.u64Vec("call_stack");
    callStack_.assign(cs.begin(), cs.end());
    r.end("workload");
}

//
// WrongPathCursor
//

WrongPathCursor::WrongPathCursor(const Workload &workload, Addr start_pc,
                                 std::uint64_t seed)
    : program_(&workload.program()),
      rng_(seed ^ 0x5bd1'e995'7b93'cd0full),
      specHist_(workload.globalHistory())
{
    curBlock_ = program_->blockContaining(start_pc);
    const StaticBlock &b = program_->block(curBlock_);
    Addr off = (start_pc - b.pc) / 4;
    opIdx_ = static_cast<std::uint32_t>(off);
    // A fall-through resume address can point one past the terminator;
    // clamp onto the next block.
    if (opIdx_ > b.ops.size()) {
        curBlock_ = b.fallthrough;
        opIdx_ = 0;
    }
}

WrongPathCursor::WrongPathCursor(const Workload &workload,
                                 serde::StateReader &r)
    : program_(&workload.program()),
      rng_(0)
{
    r.begin("wrong_cursor");
    std::uint64_t s0 = r.u64("rng_s0");
    std::uint64_t s1 = r.u64("rng_s1");
    rng_.setState(s0, s1);
    std::uint64_t cur_block = r.u64("cur_block");
    if (cur_block >= program_->numBlocks())
        stsim_fatal("state: wrong-path cursor block %llu out of range",
                    static_cast<unsigned long long>(cur_block));
    curBlock_ = static_cast<std::uint32_t>(cur_block);
    opIdx_ = static_cast<std::uint32_t>(r.u64("op_idx"));
    specHist_ = r.u64("spec_hist");
    std::vector<std::uint64_t> cs = r.u64Vec("call_stack");
    callStack_.assign(cs.begin(), cs.end());
    r.end("wrong_cursor");
}

void
WrongPathCursor::saveState(serde::StateWriter &w) const
{
    w.begin("wrong_cursor");
    w.u64("rng_s0", rng_.stateS0());
    w.u64("rng_s1", rng_.stateS1());
    w.u64("cur_block", curBlock_);
    w.u64("op_idx", opIdx_);
    w.u64("spec_hist", specHist_);
    w.u64Vec("call_stack", callStack_);
    w.end("wrong_cursor");
}

Addr
WrongPathCursor::wrongPathMem(const StaticOp &op)
{
    // Stateless address approximation with the same locality class;
    // the architectural stream cursors are untouched.
    const BenchmarkProfile &p = program_->profile();
    Addr span = op.regionSize;
    if (op.memPattern == MemPattern::Random &&
        rng_.chance(p.hotDataFrac)) {
        span = static_cast<Addr>(p.hotDataKB) * 1024;
    } else if (op.memPattern == MemPattern::Stream) {
        span = op.stride * 64u; // local window of the array
    }
    if (span > op.regionSize)
        span = op.regionSize;
    return op.regionBase + 8 * rng_.below(span / 8);
}

unsigned
WrongPathCursor::nextGroup(TraceInst *const *out, unsigned n)
{
    const StaticBlock &b = program_->block(curBlock_);
    const std::uint32_t nops =
        static_cast<std::uint32_t>(b.ops.size());
    std::uint32_t oi = opIdx_;
    unsigned m = 0;
    while (m < n && oi < nops) {
        const StaticOp &op = b.ops[oi];
        Addr mem = isMemory(op.cls) ? wrongPathMem(op) : 0;
        *out[m] = detail::makeBodyInst(b, oi, mem);
        ++m;
        ++oi;
    }
    opIdx_ = oi;
    if (m < n) // terminator: reuse the scalar slow path
        *out[m++] = next();
    return m;
}

TraceInst
WrongPathCursor::next()
{
    const StaticBlock &b = program_->block(curBlock_);

    if (opIdx_ < b.ops.size()) {
        const StaticOp &op = b.ops[opIdx_];
        Addr mem = isMemory(op.cls) ? wrongPathMem(op) : 0;
        TraceInst ti = detail::makeBodyInst(b, opIdx_, mem);
        ++opIdx_;
        return ti;
    }

    TraceInst ti;
    ti.pc = b.termPc();
    ti.hasDest = false;
    if (b.term == TermKind::CondBranch) {
        ti.srcDist[0] = b.termSrcDist[0];
        ti.srcDist[1] = b.termSrcDist[1];
    }

    std::uint32_t next_block = b.fallthrough;
    switch (b.term) {
      case TermKind::CondBranch: {
        ti.cls = InstClass::CondBranch;
        // Stateless behavioural approximation.
        switch (b.behavior) {
          case BranchBehavior::Loop:
            ti.taken = rng_.chance(1.0 - 1.0 / b.loopPeriod);
            break;
          case BranchBehavior::Pattern:
            ti.taken = patternOutcome(specHist_, b.patternBits,
                                      b.patternSalt);
            break;
          case BranchBehavior::Biased:
          case BranchBehavior::Chaotic:
            ti.taken = rng_.chance(b.takenP);
            break;
        }
        specHist_ = (specHist_ << 1) | (ti.taken ? 1 : 0);
        ti.target = program_->block(b.takenTarget).pc;
        next_block = ti.taken ? b.takenTarget : b.fallthrough;
        break;
      }
      case TermKind::Jump:
        ti.cls = InstClass::Jump;
        ti.taken = true;
        ti.target = program_->block(b.takenTarget).pc;
        next_block = b.takenTarget;
        break;
      case TermKind::Call:
        ti.cls = InstClass::Call;
        ti.taken = true;
        ti.target = program_->block(b.takenTarget).pc;
        next_block = b.takenTarget;
        if (callStack_.size() >= kMaxCallDepth)
            callStack_.erase(callStack_.begin());
        callStack_.push_back(b.fallthrough);
        break;
      case TermKind::Return: {
        ti.cls = InstClass::Return;
        ti.taken = true;
        std::uint32_t ret_block = b.takenTarget;
        if (!callStack_.empty()) {
            ret_block = callStack_.back();
            callStack_.pop_back();
        }
        ti.target = program_->block(ret_block).pc;
        next_block = ret_block;
        break;
      }
    }

    ti.npc = ti.taken ? ti.target : program_->block(b.fallthrough).pc;
    curBlock_ = next_block;
    opIdx_ = 0;
    return ti;
}

} // namespace stsim
