/**
 * @file
 * Workload walkers over a StaticProgram: the architectural (correct-
 * path) walker with persistent branch/memory state, and lightweight
 * wrong-path cursors the fetch unit runs after a misprediction.
 */

#ifndef STSIM_TRACE_WORKLOAD_HH
#define STSIM_TRACE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/instruction.hh"
#include "trace/static_program.hh"

namespace stsim
{

namespace serde
{
class StateWriter;
class StateReader;
} // namespace serde

/**
 * Correct-path instruction generator. Owns all persistent behavioural
 * state: loop trip counters, the architectural global outcome history
 * consumed by Pattern branches, stream cursors of memory slots, and the
 * shadow call stack. Deterministic given (program, seed).
 */
class Workload
{
  public:
    /**
     * @param program Immutable synthetic program (shared).
     * @param run_seed Seed for this run's stochastic branch outcomes.
     */
    Workload(std::shared_ptr<const StaticProgram> program,
             std::uint64_t run_seed);

    /** Benchmark name from the underlying profile. */
    const std::string &name() const;

    /**
     * Generate the next correct-path instruction. Body ops (the vast
     * majority of the stream) are produced inline; only block
     * terminators take the out-of-line slow path.
     */
    TraceInst next();

    /**
     * Bulk path for the fetch unit: fill up to @p n instructions
     * through the pointers in @p out (one per destination slot, so the
     * group lands straight in the pipeline's slot pool with no copy).
     * Stops early after emitting a block terminator -- the caller's
     * control handling runs between groups -- so the return value m is
     * in [1, n] and out[m-1] is the only possible branch. Produces the
     * byte-identical stream (same RNG consumption, same generated()
     * count) as m successive next() calls; the block lookup is hoisted
     * out of the per-instruction loop.
     */
    unsigned nextGroup(TraceInst *const *out, unsigned n);

    /** Architectural global branch-outcome history (LSB = most recent). */
    std::uint64_t globalHistory() const { return globalHist_; }

    const StaticProgram &program() const { return *program_; }

    /** Total correct-path instructions generated so far. */
    Counter generated() const { return generated_; }

    /**
     * Checkpoint the walker: RNG, block cursor, outcome history, and
     * every per-block/per-slot behavioural counter. Load validates the
     * vector sizes against the program, so a snapshot cannot silently
     * restore onto a different benchmark.
     */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    friend class WrongPathCursor;

    /** Evaluate a conditional branch's outcome, mutating its state. */
    bool evalCondBranch(std::uint32_t block_idx);

    /** Compute the effective address of a memory slot (mutating). */
    Addr memAddress(const StaticOp &op);

    /** Produce @p b's terminator and advance to the successor block. */
    TraceInst nextTerminator(const StaticBlock &b);

    std::shared_ptr<const StaticProgram> program_;
    Rng rng_;
    std::uint32_t curBlock_ = 0;
    std::uint32_t opIdx_ = 0;
    std::uint64_t globalHist_ = 0;
    Counter generated_ = 0;
    std::vector<std::uint16_t> loopCount_;   // per block
    std::vector<std::uint8_t> chaosWild_;    // chaotic regime per block
    std::vector<std::uint8_t> biasStreak_;   // inverted-outcome streaks
    std::vector<std::uint32_t> streamPos_;   // per memory slot
    std::vector<std::uint32_t> callStack_;   // shadow stack (block idx)
};

/**
 * Wrong-path instruction generator. Walks the same static program from
 * the not-taken-in-reality successor of a mispredicted branch, using
 * stateless approximations of branch behaviour so the architectural
 * walker's state is never disturbed. Cheap to construct per
 * misprediction.
 */
class WrongPathCursor
{
  public:
    /**
     * @param workload The owning workload (for program and history).
     * @param start_pc First wrong-path fetch address (a block boundary
     *                 or mid-block fall-through address).
     * @param seed Per-cursor RNG seed (derive from branch seq).
     */
    WrongPathCursor(const Workload &workload, Addr start_pc,
                    std::uint64_t seed);

    /** Restore a cursor previously written by saveState. */
    WrongPathCursor(const Workload &workload, serde::StateReader &r);

    /** Generate the next wrong-path instruction. */
    TraceInst next();

    /** Bulk path mirroring Workload::nextGroup: same stream, same RNG
     *  consumption as successive next() calls. */
    unsigned nextGroup(TraceInst *const *out, unsigned n);

    /** Checkpoint the cursor (pairs with the restore constructor). */
    void saveState(serde::StateWriter &w) const;

  private:
    /** Stateless wrong-path address approximation for one memory op. */
    Addr wrongPathMem(const StaticOp &op);

    const StaticProgram *program_;
    Rng rng_;
    std::uint32_t curBlock_;
    std::uint32_t opIdx_;
    std::uint64_t specHist_;
    std::vector<std::uint32_t> callStack_;
};

namespace detail
{

/** Fill the common fields of a body-op TraceInst. */
inline TraceInst
makeBodyInst(const StaticBlock &blk, std::uint32_t op_idx,
             Addr mem_addr)
{
    const StaticOp &op = blk.ops[op_idx];
    TraceInst ti;
    ti.pc = blk.pc + 4 * op_idx;
    ti.cls = op.cls;
    ti.srcDist[0] = op.srcDist[0];
    ti.srcDist[1] = op.srcDist[1];
    ti.hasDest = op.hasDest;
    ti.memAddr = mem_addr;
    ti.npc = ti.pc + 4;
    return ti;
}

} // namespace detail

inline TraceInst
Workload::next()
{
    const StaticBlock &b = program_->block(curBlock_);
    ++generated_;

    if (opIdx_ < b.ops.size()) {
        const StaticOp &op = b.ops[opIdx_];
        Addr mem = isMemory(op.cls) ? memAddress(op) : 0;
        TraceInst ti = detail::makeBodyInst(b, opIdx_, mem);
        ++opIdx_;
        return ti;
    }
    return nextTerminator(b);
}

inline unsigned
Workload::nextGroup(TraceInst *const *out, unsigned n)
{
    const StaticBlock &b = program_->block(curBlock_);
    const std::uint32_t nops =
        static_cast<std::uint32_t>(b.ops.size());
    std::uint32_t oi = opIdx_;
    unsigned m = 0;
    while (m < n && oi < nops) {
        const StaticOp &op = b.ops[oi];
        Addr mem = isMemory(op.cls) ? memAddress(op) : 0;
        *out[m] = detail::makeBodyInst(b, oi, mem);
        ++m;
        ++oi;
    }
    opIdx_ = oi;
    generated_ += m;
    if (m < n) { // room left in the group: emit the terminator
        ++generated_;
        *out[m] = nextTerminator(b);
        ++m;
    }
    return m;
}

} // namespace stsim

#endif // STSIM_TRACE_WORKLOAD_HH
