/**
 * @file
 * Dynamic-instruction record produced by a workload generator and
 * consumed by the pipeline's fetch stage.
 */

#ifndef STSIM_TRACE_INSTRUCTION_HH
#define STSIM_TRACE_INSTRUCTION_HH

#include <cstdint>

#include "common/types.hh"

namespace stsim
{

/** Functional class of an instruction; drives FU choice and latency. */
enum class InstClass : std::uint8_t
{
    IntAlu,
    IntMult,
    Load,
    Store,
    FpAlu,
    FpMult,
    CondBranch,
    Jump,    // direct unconditional
    Call,    // direct call (pushes return address)
    Return,  // indirect through return-address stack
    Nop,
};

/** Human-readable name of an instruction class. */
const char *instClassName(InstClass cls);

/** True for any control-transfer class. */
constexpr bool
isControl(InstClass cls)
{
    return cls == InstClass::CondBranch || cls == InstClass::Jump ||
           cls == InstClass::Call || cls == InstClass::Return;
}

/** True for memory classes. */
constexpr bool
isMemory(InstClass cls)
{
    return cls == InstClass::Load || cls == InstClass::Store;
}

/**
 * One dynamic instruction on the (correct or wrong) path.
 *
 * Register dependences are encoded as *producer distances*: source k
 * depends on the instruction fetched srcDist[k] slots earlier in the
 * dynamic stream (0 = no dependence). This is the standard synthetic-
 * trace encoding; the pipeline maps distances onto in-flight producers.
 */
struct TraceInst
{
    Addr pc = 0;
    InstClass cls = InstClass::Nop;
    std::uint8_t srcDist[2] = {0, 0};
    bool hasDest = false;

    /** Effective address (loads/stores only). */
    Addr memAddr = 0;

    /** Architectural branch outcome (control only; uncond => true). */
    bool taken = false;

    /** Architectural branch target (control only). */
    Addr target = 0;

    /** Next correct-path PC (valid on correct-path instructions). */
    Addr npc = 0;

    bool isBranch() const { return isControl(cls); }
    bool isCondBranch() const { return cls == InstClass::CondBranch; }
    bool isLoad() const { return cls == InstClass::Load; }
    bool isStore() const { return cls == InstClass::Store; }
};

} // namespace stsim

#endif // STSIM_TRACE_INSTRUCTION_HH
