#include "profile.hh"

#include "common/logging.hh"

namespace stsim
{

void
BenchmarkProfile::validate() const
{
    auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
    if (name.empty())
        stsim_fatal("profile needs a name");
    if (numBlocks < 8)
        stsim_fatal("profile %s: numBlocks must be >= 8", name.c_str());
    if (numFuncs < 1 || numFuncs > numBlocks)
        stsim_fatal("profile %s: bad numFuncs", name.c_str());
    if (!in01(condBranchFrac) || condBranchFrac <= 0.0)
        stsim_fatal("profile %s: bad condBranchFrac", name.c_str());
    if (!in01(fracJumpTerm) || !in01(fracCallTerm) || !in01(fracRetTerm) ||
        fracJumpTerm + fracCallTerm + fracRetTerm >= 1.0) {
        stsim_fatal("profile %s: terminator fractions invalid",
                    name.c_str());
    }
    double mix = fracLoop + fracPattern + fracBiased + fracChaotic;
    if (mix <= 0.0)
        stsim_fatal("profile %s: branch-behaviour mix is empty",
                    name.c_str());
    if (loopPeriodMin < 2 || loopPeriodMax < loopPeriodMin)
        stsim_fatal("profile %s: bad loop periods", name.c_str());
    if (!in01(biasedMissMin) || !in01(biasedMissMax) ||
        biasedMissMax < biasedMissMin || biasedMissMax > 0.5) {
        stsim_fatal("profile %s: bad biased miss range", name.c_str());
    }
    double imix = fracLoad + fracStore + fracIntMult + fracFpAlu +
                  fracFpMult;
    if (imix >= 1.0)
        stsim_fatal("profile %s: instruction mix exceeds 1", name.c_str());
    if (dataFootprintKB < 4)
        stsim_fatal("profile %s: data footprint too small", name.c_str());
}

namespace
{

/**
 * Build the eight Table 2 profiles. Branch-behaviour mixes were
 * calibrated by examples/profile_autotune so an 8 KB gshare lands near
 * the paper's per-benchmark misprediction rates at the default run
 * length (1M measured instructions after 200K warmup).
 */
std::vector<BenchmarkProfile>
makeSpecProfiles()
{
    std::vector<BenchmarkProfile> v;

    {
        BenchmarkProfile p;
        p.name = "compress";
        p.targetMissRate = 0.102;
        p.condBranchFrac = 0.076;
        p.numBlocks = 320;
        p.numFuncs = 12;
        p.fracLoop = 0.38;
        p.fracPattern = 0.12;
        p.fracBiased = 0.34;
        p.fracChaotic = 0.22;
        p.biasedMissMin = 0.02;
        p.biasedMissMax = 0.12;
        p.blockLenScale = 1.3;
        p.dataFootprintKB = 2048;
        p.fracStackAccess = 0.20;
        p.fracStreamAccess = 0.55;
        p.seed = 101;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "gcc";
        p.targetMissRate = 0.092;
        p.condBranchFrac = 0.131;
        p.numBlocks = 8192;
        p.numFuncs = 256;
        p.fracJumpTerm = 0.12;
        p.fracCallTerm = 0.07;
        p.fracRetTerm = 0.07;
        p.fracLoop = 0.25;
        p.fracPattern = 0.22;
        p.fracBiased = 0.40;
        p.fracChaotic = 0.1153;
        p.biasedMissMin = 0.0106;
        p.biasedMissMax = 0.0635;
        p.blockLenScale = 1.359;
        p.dataFootprintKB = 4096;
        p.fracStackAccess = 0.40;
        p.fracStreamAccess = 0.25;
        p.seed = 102;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "go";
        p.targetMissRate = 0.197;
        p.condBranchFrac = 0.103;
        p.numBlocks = 4096;
        p.numFuncs = 128;
        p.fracLoop = 0.18;
        p.fracPattern = 0.10;
        p.fracBiased = 0.36;
        p.fracChaotic = 0.3315;
        p.biasedMissMin = 0.034;
        p.biasedMissMax = 0.2124;
        p.blockLenScale = 1.321;
        p.chaoticTakenP = 0.5;
        p.dataFootprintKB = 2048;
        p.fracStackAccess = 0.35;
        p.fracStreamAccess = 0.25;
        p.seed = 103;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "bzip2";
        p.targetMissRate = 0.080;
        p.condBranchFrac = 0.086;
        p.numBlocks = 512;
        p.numFuncs = 16;
        p.fracLoop = 0.42;
        p.fracPattern = 0.16;
        p.fracBiased = 0.32;
        p.fracChaotic = 0.0872;
        p.biasedMissMin = 0.0134;
        p.biasedMissMax = 0.0804;
        p.blockLenScale = 1.075;
        p.dataFootprintKB = 8192;
        p.fracStackAccess = 0.15;
        p.fracStreamAccess = 0.60;
        p.seed = 104;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "crafty";
        p.targetMissRate = 0.077;
        p.condBranchFrac = 0.087;
        p.numBlocks = 2048;
        p.numFuncs = 96;
        p.fracCallTerm = 0.07;
        p.fracRetTerm = 0.07;
        p.fracLoop = 0.34;
        p.fracPattern = 0.24;
        p.fracBiased = 0.32;
        p.fracChaotic = 0.0553;
        p.biasedMissMin = 0.0087;
        p.biasedMissMax = 0.0871;
        p.blockLenScale = 1.085;
        p.dataFootprintKB = 2048;
        p.fracStackAccess = 0.45;
        p.fracStreamAccess = 0.25;
        p.seed = 105;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "gzip";
        p.targetMissRate = 0.088;
        p.condBranchFrac = 0.104;
        p.numBlocks = 448;
        p.numFuncs = 16;
        p.fracLoop = 0.40;
        p.fracPattern = 0.14;
        p.fracBiased = 0.34;
        p.fracChaotic = 0.02;
        p.biasedMissMin = 0.0142;
        p.biasedMissMax = 0.0853;
        p.blockLenScale = 1.072;
        p.dataFootprintKB = 4096;
        p.fracStackAccess = 0.20;
        p.fracStreamAccess = 0.55;
        p.seed = 106;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "parser";
        p.targetMissRate = 0.068;
        p.condBranchFrac = 0.128;
        p.numBlocks = 2048;
        p.numFuncs = 64;
        p.fracCallTerm = 0.06;
        p.fracRetTerm = 0.06;
        p.fracLoop = 0.36;
        p.fracPattern = 0.26;
        p.fracBiased = 0.30;
        p.fracChaotic = 0.02;
        p.biasedMissMin = 0.0061;
        p.biasedMissMax = 0.0605;
        p.blockLenScale = 1.287;
        p.dataFootprintKB = 2048;
        p.fracStackAccess = 0.40;
        p.fracStreamAccess = 0.25;
        p.seed = 107;
        v.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "twolf";
        p.targetMissRate = 0.112;
        p.condBranchFrac = 0.081;
        p.numBlocks = 1024;
        p.numFuncs = 48;
        p.fracLoop = 0.30;
        p.fracPattern = 0.14;
        p.fracBiased = 0.36;
        p.fracChaotic = 0.0744;
        p.biasedMissMin = 0.03;
        p.biasedMissMax = 0.16;
        p.blockLenScale = 1.229;
        p.dataFootprintKB = 1024;
        p.fracStackAccess = 0.30;
        p.fracStreamAccess = 0.30;
        p.seed = 108;
        v.push_back(p);
    }

    for (const auto &p : v)
        p.validate();
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
specProfiles()
{
    static const std::vector<BenchmarkProfile> profiles =
        makeSpecProfiles();
    return profiles;
}

const BenchmarkProfile &
findProfile(const std::string &name)
{
    for (const auto &p : specProfiles())
        if (p.name == name)
            return p;
    stsim_fatal("unknown benchmark profile '%s'", name.c_str());
}

} // namespace stsim
