/**
 * @file
 * Per-unit peak power parameters and clock-gating styles for the
 * Wattch-style power model.
 */

#ifndef STSIM_POWER_POWER_PARAMS_HH
#define STSIM_POWER_POWER_PARAMS_HH

#include <array>
#include <cstddef>

#include "power/units.hh"

namespace stsim
{

/**
 * Wattch conditional-clocking styles. The paper evaluates everything
 * under cc3: power scales linearly with port/unit usage and inactive
 * units still dissipate 10% of their peak.
 */
enum class ClockGatingStyle
{
    cc0, ///< no gating: every unit burns peak power every cycle
    cc3, ///< linear scaling with usage; 10% floor when idle
};

/**
 * Power-model parameters. Peak watts per unit are calibrated so the
 * baseline 8-wide, 14-stage configuration reproduces the paper's
 * Table 1 percentage breakdown (56.4 W total); ports define the
 * activity normalization (accesses per cycle at full tilt).
 */
struct PowerParams
{
    ClockGatingStyle style = ClockGatingStyle::cc3;

    /** Idle floor fraction under cc3 (Wattch: 10%). */
    double idleFactor = 0.10;

    /** Clock frequency (Table 3: 1200 MHz at 0.18um, 2.0 V). */
    double frequencyHz = 1.2e9;

    std::array<double, kNumPUnits> peakWatts{};
    std::array<double, kNumPUnits> ports{};

    double peak(PUnit u) const
    {
        return peakWatts[static_cast<std::size_t>(u)];
    }
    double portsOf(PUnit u) const
    {
        return ports[static_cast<std::size_t>(u)];
    }
    void setPeak(PUnit u, double w)
    {
        peakWatts[static_cast<std::size_t>(u)] = w;
    }
    void setPorts(PUnit u, double p)
    {
        ports[static_cast<std::size_t>(u)] = p;
    }

    /**
     * Calibrated defaults for the baseline core (see
     * tools-style example `examples/power_calibration` and DESIGN.md
     * substitution #2).
     */
    static PowerParams calibratedDefaults();

    /**
     * Scale table-indexed front-end structures for Figure 7: peak
     * power of the bpred unit (predictor + confidence estimator)
     * follows an area-like sqrt law in total budget relative to the
     * 8 KB + 8 KB baseline.
     */
    void scaleBpredSize(std::size_t total_bytes);

    /** Cycle period in seconds. */
    double cycleSeconds() const { return 1.0 / frequencyHz; }
};

} // namespace stsim

#endif // STSIM_POWER_POWER_PARAMS_HH
