#include "power_model.hh"

#include <vector>

#include "core/state_serde.hh"

namespace stsim
{

namespace
{

constexpr std::size_t kClockIdx =
    static_cast<std::size_t>(PUnit::Clock);

/** Index of the lowest set bit; mask must be nonzero. */
inline unsigned
lowestBit(std::uint32_t mask)
{
    return static_cast<unsigned>(__builtin_ctz(mask));
}

} // namespace

PowerModel::PowerModel(const PowerParams &params)
    : params_(params)
{
    const double dt = params_.cycleSeconds();
    idleFactor_ = params_.idleFactor;
    activeFactor_ = 1.0 - idleFactor_;
    invMetered_ = 1.0 / static_cast<double>(kNumPUnits - 1);
    for (PUnit u : kAllPUnits) {
        auto i = static_cast<std::size_t>(u);
        invPorts_[i] = 1.0 / params_.portsOf(u);
        peakDt_[i] = params_.peak(u) * dt;
        idleCycleE_[i] = params_.style == ClockGatingStyle::cc0
                             ? peakDt_[i]
                             : peakDt_[i] * idleFactor_;
    }
    cc0_ = params_.style == ClockGatingStyle::cc0;
}

template <ClockGatingStyle Style>
void
PowerModel::endCycleImpl()
{
    double act_sum = 0.0;
    double total_cnt = 0.0;
    double total_wrong = 0.0;

    // Only the units recorded this cycle need floating-point work; the
    // rest dissipate idleCycleE_ per cycle, accounted lazily from
    // touchedCycles_ when results are read.
    std::uint32_t mask = dirty_;
    dirty_ = 0;
    while (mask) {
        const std::size_t i = lowestBit(mask);
        mask &= mask - 1;
        const double cnt = cycleCount_[i];
        const double wrong = cycleWrong_[i];
        cycleCount_[i] = 0.0;
        cycleWrong_[i] = 0.0;
        if (i == kClockIdx)
            continue; // clock activity is derived, never recorded

        double act = cnt * invPorts_[i];
        if (act > 1.0)
            act = 1.0;

        const double e = Style == ClockGatingStyle::cc0
                             ? peakDt_[i]
                             : peakDt_[i] * (idleFactor_ +
                                             activeFactor_ * act);
        // Wrong-path instructions own their proportional share of the
        // unit's whole dissipation this cycle (the paper's Table 1
        // accounting); idle cycles attribute to nobody. When wrong is
        // zero the share is exactly +0.0 and both accumulations are
        // bit-exact no-ops, so the divide (the expensive op in this
        // loop) runs only on cycles with wrong-path activity.
        if (wrong > 0.0 && cnt > 0.0) {
            const double wasted = e * (wrong / cnt);
            unitWasted_[i] += wasted;
            totalWasted_ += wasted;
        }

        unitEnergyAcc_[i] += e;
        activitySum_[i] += act;
        ++touchedCycles_[i];

        act_sum += act;
        total_cnt += cnt;
        total_wrong += wrong;
    }

    // Clock network: activity = mean activity of the metered units;
    // waste attribution follows the global wrong-path activity share.
    {
        const double act = act_sum * invMetered_;
        const double e = Style == ClockGatingStyle::cc0
                             ? peakDt_[kClockIdx]
                             : peakDt_[kClockIdx] *
                                   (idleFactor_ + activeFactor_ * act);
        if (total_wrong > 0.0 && total_cnt > 0.0) {
            const double wasted = e * (total_wrong / total_cnt);
            unitWasted_[kClockIdx] += wasted;
            totalWasted_ += wasted;
        }
        unitEnergyAcc_[kClockIdx] += e;
        activitySum_[kClockIdx] += act;
        ++touchedCycles_[kClockIdx];
    }

    ++cycles_;
}

// endCycle() selects the instantiation by branch; force both here so
// the out-of-line template bodies exist in this translation unit.
template void PowerModel::endCycleImpl<ClockGatingStyle::cc0>();
template void PowerModel::endCycleImpl<ClockGatingStyle::cc3>();

double
PowerModel::totalEnergy() const
{
    double total = 0.0;
    for (PUnit u : kAllPUnits)
        total += unitEnergy(u);
    return total;
}

double
PowerModel::meanActivity(PUnit u) const
{
    // Untouched cycles contribute exactly zero activity, so the lazy
    // idle accounting needs no correction here.
    auto i = static_cast<std::size_t>(u);
    return cycles_ ? activitySum_[i] / static_cast<double>(cycles_)
                   : 0.0;
}

double
PowerModel::avgPower() const
{
    return cycles_ ? totalEnergy() / seconds() : 0.0;
}

void
PowerModel::resetStats()
{
    unitEnergyAcc_.fill(0.0);
    unitWasted_.fill(0.0);
    activitySum_.fill(0.0);
    touchedCycles_.fill(0);
    cycleCount_.fill(0.0);
    cycleWrong_.fill(0.0);
    dirty_ = 0;
    cycles_ = 0;
    totalWasted_ = 0.0;
}

void
PowerModel::saveState(serde::StateWriter &w) const
{
    stsim_assert(dirty_ == 0, "power snapshot mid-cycle");
    w.begin("power");
    w.dblArray("unit_energy", unitEnergyAcc_.data(), kNumPUnits);
    w.dblArray("unit_wasted", unitWasted_.data(), kNumPUnits);
    w.dblArray("activity_sum", activitySum_.data(), kNumPUnits);
    w.u64Array("touched_cycles", touchedCycles_.data(), kNumPUnits);
    w.u64("cycles", cycles_);
    w.dbl("total_wasted", totalWasted_);
    w.end("power");
}

void
PowerModel::loadState(serde::StateReader &r)
{
    r.begin("power");
    std::vector<double> ue = r.dblVec("unit_energy");
    std::vector<double> uw = r.dblVec("unit_wasted");
    std::vector<double> as = r.dblVec("activity_sum");
    std::vector<std::uint64_t> tc = r.u64Vec("touched_cycles");
    if (ue.size() != kNumPUnits || tc.size() != kNumPUnits)
        stsim_fatal("state: power unit count mismatch (snapshot %zu, "
                    "model %zu)",
                    ue.size(), kNumPUnits);
    for (std::size_t i = 0; i < kNumPUnits; ++i) {
        unitEnergyAcc_[i] = ue[i];
        unitWasted_[i] = uw.at(i);
        activitySum_[i] = as.at(i);
        touchedCycles_[i] = tc[i];
    }
    cycles_ = r.u64("cycles");
    totalWasted_ = r.dbl("total_wasted");
    cycleCount_.fill(0.0);
    cycleWrong_.fill(0.0);
    dirty_ = 0;
    r.end("power");
}

} // namespace stsim
