#include "power_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stsim
{

PowerModel::PowerModel(const PowerParams &params)
    : params_(params)
{
}

void
PowerModel::beginCycle()
{
    cycleCount_.fill(0.0);
    cycleWrong_.fill(0.0);
}

void
PowerModel::record(PUnit unit, double count, double wrong_count)
{
    auto i = static_cast<std::size_t>(unit);
    stsim_assert(wrong_count <= count + 1e-9,
                 "wrong_count %f > count %f on %s", wrong_count, count,
                 punitName(unit));
    cycleCount_[i] += count;
    cycleWrong_[i] += wrong_count;
}

void
PowerModel::endCycle()
{
    const double dt = params_.cycleSeconds();
    const double idle = params_.idleFactor;

    double act_sum = 0.0;
    double total_cnt = 0.0;
    double total_wrong = 0.0;

    for (PUnit u : kAllPUnits) {
        if (u == PUnit::Clock)
            continue;
        auto i = static_cast<std::size_t>(u);
        double act = std::min(1.0, cycleCount_[i] / params_.portsOf(u));
        double wrong_frac =
            cycleCount_[i] > 0 ? cycleWrong_[i] / cycleCount_[i] : 0.0;

        double p;
        switch (params_.style) {
          case ClockGatingStyle::cc0:
            p = params_.peak(u);
            break;
          case ClockGatingStyle::cc3:
          default:
            p = params_.peak(u) * (idle + (1.0 - idle) * act);
            break;
        }
        double e = p * dt;
        // Wrong-path instructions own their proportional share of the
        // unit's whole dissipation this cycle (the paper's Table 1
        // accounting); idle cycles attribute to nobody.
        double wasted = e * wrong_frac;

        unitEnergy_[i] += e;
        unitWasted_[i] += wasted;
        totalEnergy_ += e;
        totalWasted_ += wasted;
        activitySum_[i] += act;

        act_sum += act;
        total_cnt += cycleCount_[i];
        total_wrong += cycleWrong_[i];
    }

    // Clock network: activity = mean activity of the metered units;
    // waste attribution follows the global wrong-path activity share.
    {
        auto i = static_cast<std::size_t>(PUnit::Clock);
        double act = act_sum / (kNumPUnits - 1);
        double wrong_frac = total_cnt > 0 ? total_wrong / total_cnt : 0.0;
        double p;
        switch (params_.style) {
          case ClockGatingStyle::cc0:
            p = params_.peak(PUnit::Clock);
            break;
          case ClockGatingStyle::cc3:
          default:
            p = params_.peak(PUnit::Clock) * (idle + (1.0 - idle) * act);
            break;
        }
        double e = p * dt;
        double wasted = e * wrong_frac;
        unitEnergy_[i] += e;
        unitWasted_[i] += wasted;
        totalEnergy_ += e;
        totalWasted_ += wasted;
        activitySum_[i] += act;
    }

    ++cycles_;
}

double
PowerModel::avgPower() const
{
    return cycles_ ? totalEnergy_ / seconds() : 0.0;
}

void
PowerModel::resetStats()
{
    unitEnergy_.fill(0.0);
    unitWasted_.fill(0.0);
    activitySum_.fill(0.0);
    cycles_ = 0;
    totalEnergy_ = 0.0;
    totalWasted_ = 0.0;
}

double
PowerModel::meanActivity(PUnit u) const
{
    auto i = static_cast<std::size_t>(u);
    return cycles_ ? activitySum_[i] / static_cast<double>(cycles_) : 0.0;
}

} // namespace stsim
