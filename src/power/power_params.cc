#include "power_params.hh"

#include <cmath>

#include "common/logging.hh"

namespace stsim
{

const char *
punitName(PUnit u)
{
    switch (u) {
      case PUnit::ICache: return "icache";
      case PUnit::Bpred: return "bpred";
      case PUnit::Regfile: return "regfile";
      case PUnit::Rename: return "rename";
      case PUnit::Window: return "window";
      case PUnit::Lsq: return "lsq";
      case PUnit::Alu: return "alu";
      case PUnit::DCache: return "dcache";
      case PUnit::DCache2: return "dcache2";
      case PUnit::ResultBus: return "resultbus";
      case PUnit::Clock: return "clock";
    }
    return "?";
}

PowerParams
PowerParams::calibratedDefaults()
{
    PowerParams p;

    // Activity normalization: accesses per cycle at high load (about
    // twice the baseline mean, so cc3 stays in its linear region but
    // the idle floor does not swamp the activity-proportional part).
    p.setPorts(PUnit::ICache, 1);
    p.setPorts(PUnit::Bpred, 1);
    p.setPorts(PUnit::Regfile, 6);
    p.setPorts(PUnit::Rename, 4);
    p.setPorts(PUnit::Window, 8);
    p.setPorts(PUnit::Lsq, 1);
    p.setPorts(PUnit::Alu, 3);
    p.setPorts(PUnit::DCache, 1);
    p.setPorts(PUnit::DCache2, 1);
    p.setPorts(PUnit::ResultBus, 3);
    p.setPorts(PUnit::Clock, 1); // activity derived from other units

    // Peak watts calibrated against the measured baseline activity
    // factors of the eight Table 2 workloads so that average power
    // reproduces Table 1's breakdown of 56.4 W (see
    // examples/power_calibration.cpp, which regenerates these).
    p.setPeak(PUnit::ICache, 15.32);
    p.setPeak(PUnit::Bpred, 7.93);
    p.setPeak(PUnit::Regfile, 2.34);
    p.setPeak(PUnit::Rename, 1.74);
    p.setPeak(PUnit::Window, 22.76);
    p.setPeak(PUnit::Lsq, 3.27);
    p.setPeak(PUnit::Alu, 12.28);
    p.setPeak(PUnit::DCache, 20.31);
    p.setPeak(PUnit::DCache2, 2.77);
    p.setPeak(PUnit::ResultBus, 13.56);
    p.setPeak(PUnit::Clock, 56.17);

    return p;
}

void
PowerParams::scaleBpredSize(std::size_t total_bytes)
{
    stsim_assert(total_bytes > 0, "empty bpred budget");
    // Reference budget: the Table 1 baseline's 8 KB gshare (no
    // confidence estimator). Configurations that add an estimator pay
    // its array power honestly.
    constexpr double kBaselineBytes = 8.0 * 1024;
    double ratio = static_cast<double>(total_bytes) / kBaselineBytes;
    // Array read energy grows roughly with the square root of area
    // (bitline/wordline lengths), the usual first-order CACTI trend.
    setPeak(PUnit::Bpred, peak(PUnit::Bpred) * std::sqrt(ratio));
}

} // namespace stsim
