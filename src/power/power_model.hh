/**
 * @file
 * Wattch-style architecture-level power model: pipeline stages record
 * per-unit access counts each cycle; the model converts them to power
 * under the configured conditional-clocking style and accumulates
 * energy, split into useful and mis-speculated (wasted) parts.
 */

#ifndef STSIM_POWER_POWER_MODEL_HH
#define STSIM_POWER_POWER_MODEL_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"
#include "power/power_params.hh"
#include "power/units.hh"

namespace stsim
{

namespace serde
{
class StateWriter;
class StateReader;
} // namespace serde

/**
 * Cycle-driven power/energy accumulator.
 *
 * Usage per simulated cycle:
 *   beginCycle(); record(unit, n, n_wrong)...; endCycle();
 *
 * Under cc3 a unit with activity a (accesses clamped by its port
 * count) dissipates peak*(idle + (1-idle)*a); the clock network's
 * activity is the mean activity of all other units. Wasted-energy
 * attribution follows the paper's Table 1 accounting: each cycle a
 * unit's whole dissipation is split across its accesses, so wrong-path
 * work owns its proportional share (cycles with no accesses attribute
 * to nobody).
 *
 * Hot-path structure: per-unit peak*dt and 1/ports are precomputed,
 * the cc0/cc3 style is resolved once at construction (endCycle()
 * branches to the matching specialization), and endCycle() only
 * visits units actually recorded this cycle (dirty mask). A unit that was not
 * touched dissipates a constant per-cycle idle energy, which is
 * accounted lazily from its untouched-cycle count when results are
 * read, so idle cycles cost no floating-point work at all.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerParams &params);

    /** Start a new cycle. endCycle() self-clears, so this is a no-op
     *  kept for API symmetry. */
    void beginCycle() {}

    /**
     * Record @p count accesses to @p unit this cycle, of which
     * @p wrong_count were made on behalf of wrong-path instructions.
     */
    void
    record(PUnit unit, double count, double wrong_count = 0.0)
    {
        auto i = static_cast<std::size_t>(unit);
        stsim_dbg_assert(wrong_count <= count + 1e-9,
                     "wrong_count %f > count %f on %s", wrong_count,
                     count, punitName(unit));
        cycleCount_[i] += count;
        cycleWrong_[i] += wrong_count;
        dirty_ |= std::uint32_t{1} << i;
    }

    /** Close the cycle: convert activity to power and accumulate. The
     *  gating style is fixed at construction, so this is a perfectly
     *  predicted branch (and LTO-inlinable) instead of an indirect
     *  member call on the per-cycle path. */
    void
    endCycle()
    {
        if (cc0_)
            endCycleImpl<ClockGatingStyle::cc0>();
        else
            endCycleImpl<ClockGatingStyle::cc3>();
    }

    /// @name Results
    /// @{
    Counter cycles() const { return cycles_; }
    /** Total energy so far, including lazy idle-cycle energy. */
    double totalEnergy() const;                              ///< joules
    double wastedEnergy() const { return totalWasted_; }     ///< joules
    double
    unitEnergy(PUnit u) const
    {
        auto i = static_cast<std::size_t>(u);
        return unitEnergyAcc_[i] +
               static_cast<double>(cycles_ - touchedCycles_[i]) *
                   idleCycleE_[i];
    }
    double unitWastedEnergy(PUnit u) const
    {
        return unitWasted_[static_cast<std::size_t>(u)];
    }
    /** Average power over all cycles so far (watts). */
    double avgPower() const;
    /** Elapsed simulated seconds. */
    double seconds() const
    {
        return static_cast<double>(cycles_) * params_.cycleSeconds();
    }
    const PowerParams &params() const { return params_; }
    /** Mean activity factor of a unit across the run (diagnostics). */
    double meanActivity(PUnit u) const;
    /// @}

    /** Zero all accumulated energy/cycle statistics (end of warmup). */
    void resetStats();

    /**
     * Checkpoint the energy accumulators (between ticks only: the
     * per-cycle scratch is empty then -- endCycle self-clears -- so
     * only the accumulators are state; the constants are rebuilt from
     * params at construction).
     */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    template <ClockGatingStyle Style> void endCycleImpl();

    PowerParams params_;

    /// @name Per-cycle scratch (consumed and cleared by endCycle)
    /// @{
    std::array<double, kNumPUnits> cycleCount_{};
    std::array<double, kNumPUnits> cycleWrong_{};
    std::uint32_t dirty_ = 0;
    /// @}

    /// @name Constants precomputed at construction
    /// @{
    bool cc0_ = false; ///< gating style resolved at construction
    std::array<double, kNumPUnits> invPorts_{};
    std::array<double, kNumPUnits> peakDt_{};    ///< peak * dt
    std::array<double, kNumPUnits> idleCycleE_{}; ///< untouched-cycle energy
    double idleFactor_ = 0.0;
    double activeFactor_ = 0.0;  ///< 1 - idleFactor
    double invMetered_ = 0.0;    ///< 1 / (kNumPUnits - 1)
    /// @}

    /// @name Accumulators
    /// @{
    std::array<double, kNumPUnits> unitEnergyAcc_{};
    std::array<double, kNumPUnits> unitWasted_{};
    std::array<double, kNumPUnits> activitySum_{};
    std::array<Counter, kNumPUnits> touchedCycles_{};
    Counter cycles_ = 0;
    double totalWasted_ = 0.0;
    /// @}
};

} // namespace stsim

#endif // STSIM_POWER_POWER_MODEL_HH
