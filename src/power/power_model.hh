/**
 * @file
 * Wattch-style architecture-level power model: pipeline stages record
 * per-unit access counts each cycle; the model converts them to power
 * under the configured conditional-clocking style and accumulates
 * energy, split into useful and mis-speculated (wasted) parts.
 */

#ifndef STSIM_POWER_POWER_MODEL_HH
#define STSIM_POWER_POWER_MODEL_HH

#include <array>

#include "common/types.hh"
#include "power/power_params.hh"
#include "power/units.hh"

namespace stsim
{

/**
 * Cycle-driven power/energy accumulator.
 *
 * Usage per simulated cycle:
 *   beginCycle(); record(unit, n, n_wrong)...; endCycle();
 *
 * Under cc3 a unit with activity a (accesses clamped by its port
 * count) dissipates peak*(idle + (1-idle)*a); the clock network's
 * activity is the mean activity of all other units. Wasted-energy
 * attribution follows the paper's Table 1 accounting: each cycle a
 * unit's whole dissipation is split across its accesses, so wrong-path
 * work owns its proportional share (cycles with no accesses attribute
 * to nobody).
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerParams &params);

    /** Start a new cycle (clears per-cycle activity). */
    void beginCycle();

    /**
     * Record @p count accesses to @p unit this cycle, of which
     * @p wrong_count were made on behalf of wrong-path instructions.
     */
    void record(PUnit unit, double count, double wrong_count = 0.0);

    /** Close the cycle: convert activity to power and accumulate. */
    void endCycle();

    /// @name Results
    /// @{
    Counter cycles() const { return cycles_; }
    double totalEnergy() const { return totalEnergy_; }      ///< joules
    double wastedEnergy() const { return totalWasted_; }     ///< joules
    double unitEnergy(PUnit u) const
    {
        return unitEnergy_[static_cast<std::size_t>(u)];
    }
    double unitWastedEnergy(PUnit u) const
    {
        return unitWasted_[static_cast<std::size_t>(u)];
    }
    /** Average power over all cycles so far (watts). */
    double avgPower() const;
    /** Elapsed simulated seconds. */
    double seconds() const
    {
        return static_cast<double>(cycles_) * params_.cycleSeconds();
    }
    const PowerParams &params() const { return params_; }
    /** Mean activity factor of a unit across the run (diagnostics). */
    double meanActivity(PUnit u) const;
    /// @}

    /** Zero all accumulated energy/cycle statistics (end of warmup). */
    void resetStats();

  private:
    PowerParams params_;
    std::array<double, kNumPUnits> cycleCount_{};
    std::array<double, kNumPUnits> cycleWrong_{};
    std::array<double, kNumPUnits> unitEnergy_{};
    std::array<double, kNumPUnits> unitWasted_{};
    std::array<double, kNumPUnits> activitySum_{};
    Counter cycles_ = 0;
    double totalEnergy_ = 0.0;
    double totalWasted_ = 0.0;
};

} // namespace stsim

#endif // STSIM_POWER_POWER_MODEL_HH
