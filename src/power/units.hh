/**
 * @file
 * The power-metered hardware units, matching the rows of the paper's
 * Table 1 (which are Wattch v1.02's block names).
 */

#ifndef STSIM_POWER_UNITS_HH
#define STSIM_POWER_UNITS_HH

#include <array>
#include <cstdint>

namespace stsim
{

/** Hardware blocks metered by the power model (Table 1 rows). */
enum class PUnit : std::uint8_t
{
    ICache,    ///< instruction cache (part of the fetch stage)
    Bpred,     ///< branch predictor + BTB + confidence estimator
    Regfile,   ///< architectural register file
    Rename,    ///< rename/dependence-check logic (decode stage)
    Window,    ///< RUU: wakeup, selection, operand storage
    Lsq,       ///< load/store queue
    Alu,       ///< integer + FP functional units
    DCache,    ///< L1 data cache
    DCache2,   ///< unified L2
    ResultBus, ///< result/forwarding buses
    Clock,     ///< global clock network
};

/** Number of metered units. */
inline constexpr std::size_t kNumPUnits = 11;

/** All units, for iteration. */
inline constexpr std::array<PUnit, kNumPUnits> kAllPUnits = {
    PUnit::ICache, PUnit::Bpred,   PUnit::Regfile, PUnit::Rename,
    PUnit::Window, PUnit::Lsq,     PUnit::Alu,     PUnit::DCache,
    PUnit::DCache2, PUnit::ResultBus, PUnit::Clock,
};

/** Wattch block name of a unit (Table 1 spelling). */
const char *punitName(PUnit u);

} // namespace stsim

#endif // STSIM_POWER_UNITS_HH
