/**
 * @file
 * Fully-associative TLB (Table 3: 128 entries, 4 KB pages).
 */

#ifndef STSIM_CACHE_TLB_HH
#define STSIM_CACHE_TLB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace stsim
{

namespace serde
{
class StateWriter;
class StateReader;
} // namespace serde

/** Fully-associative LRU TLB. */
class Tlb
{
  public:
    /**
     * @param entries Number of page entries.
     * @param page_bytes Page size (power of two).
     * @param miss_penalty Cycles added on a TLB miss.
     */
    Tlb(std::size_t entries, std::size_t page_bytes,
        unsigned miss_penalty);

    /** Translate; returns true on hit (allocates on miss). */
    bool access(Addr vaddr);

    unsigned missPenalty() const { return missPenalty_; }
    Counter accesses() const { return accesses_; }
    Counter misses() const { return misses_; }

    /** Zero counters (end of warmup); contents stay warm. */
    void resetStats() { accesses_ = misses_ = 0; }

    /**
     * Checkpoint resident pages + LRU clock; the hash index is rebuilt
     * on load (it is never iterated, so its layout is not state).
     */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    struct Entry
    {
        Addr vpn = 0;
        std::uint64_t lastUse = 0;
    };

    // Hit path is one hash lookup; the O(entries) LRU-victim scan only
    // runs on the (rare) miss. vpnIndex_ is never iterated, so the
    // unordered layout cannot affect determinism.
    std::vector<Entry> entries_;                    ///< resident pages
    std::unordered_map<Addr, std::uint32_t> vpnIndex_; ///< vpn -> slot
    std::size_t capacity_;
    unsigned pageBits_;
    unsigned missPenalty_;
    std::uint64_t useClock_ = 0;
    Counter accesses_ = 0;
    Counter misses_ = 0;
};

} // namespace stsim

#endif // STSIM_CACHE_TLB_HH
