/**
 * @file
 * Set-associative LRU cache model with wrong-path pollution accounting.
 * Timing is returned to the caller as hit/miss; latencies are composed
 * by the MemoryHierarchy.
 */

#ifndef STSIM_CACHE_CACHE_HH
#define STSIM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stsim
{

namespace serde
{
class StateWriter;
class StateReader;
} // namespace serde

/** Geometry/latency parameters of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::size_t sizeBytes = 64 * 1024;
    std::size_t ways = 2;
    std::size_t lineBytes = 32;
    unsigned hitLatency = 1;
};

/**
 * Blocking set-associative cache with true-LRU replacement. Tracks
 * which lines were filled by wrong-path accesses so speculative
 * pollution (a wrong-path fill evicting a correct-path line) can be
 * quantified.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access one address.
     *
     * @param addr Byte address.
     * @param is_write Store (writes allocate, like SimpleScalar's WB L1).
     * @param wrong_path Access issued on a mis-speculated path.
     * @return true on hit.
     */
    bool access(Addr addr, bool is_write, bool wrong_path);

    /** Probe without updating state (for tests/inspection). */
    bool probe(Addr addr) const;

    const CacheConfig &config() const { return cfg_; }

    /// @name Statistics
    /// @{
    Counter accesses() const { return accesses_; }
    Counter misses() const { return misses_; }
    Counter wrongPathAccesses() const { return wrongPathAccesses_; }
    /** Correct-path lines evicted by wrong-path fills. */
    Counter pollutionEvictions() const { return pollutionEvictions_; }
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
    }
    /** Zero counters (end of warmup); contents stay warm. */
    void
    resetStats()
    {
        accesses_ = misses_ = wrongPathAccesses_ = pollutionEvictions_ = 0;
    }
    /// @}

    /** Checkpoint lines, MRU hints, LRU clock, and counters. */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool wrongPathFill = false;
    };

    CacheConfig cfg_;
    std::size_t numSets_;
    unsigned setBits_;
    unsigned lineBits_;
    std::vector<Line> lines_; // sets * ways
    /**
     * Per-set MRU way hint: the way the set last hit or filled.
     * Checked before the associative scan -- repeated touches to a
     * hot line (instruction streaming, stack traffic) short-circuit
     * in one compare. Purely an accelerator: a wrong hint falls back
     * to the full scan, so replacement behavior is unchanged.
     */
    std::vector<std::uint8_t> mruWay_;
    Addr setMask_ = 0;
    std::uint64_t useClock_ = 0;

    Counter accesses_ = 0;
    Counter misses_ = 0;
    Counter wrongPathAccesses_ = 0;
    Counter pollutionEvictions_ = 0;
};

} // namespace stsim

#endif // STSIM_CACHE_CACHE_HH
