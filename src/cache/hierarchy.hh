/**
 * @file
 * Two-level memory hierarchy per the paper's Table 3: split 64 KB
 * 2-way L1s, a unified 512 KB 4-way L2 (6-cycle hit), 18-cycle memory
 * latency beyond L2, and a 128-entry fully-associative TLB.
 */

#ifndef STSIM_CACHE_HIERARCHY_HH
#define STSIM_CACHE_HIERARCHY_HH

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "common/types.hh"

namespace stsim
{

/** Hierarchy parameters (defaults = Table 3). */
struct MemoryConfig
{
    CacheConfig il1{"il1", 64 * 1024, 2, 32, 1};
    CacheConfig dl1{"dl1", 64 * 1024, 2, 32, 1};
    CacheConfig l2{"l2", 512 * 1024, 4, 32, 6};
    unsigned memLatency = 18;     ///< beyond-L2 latency (cycles)
    std::size_t tlbEntries = 128;
    std::size_t pageBytes = 4 * 1024;
    unsigned tlbMissPenalty = 28;
    /** Extra DL1 latency added by deep-pipeline configs (§5.3.1). */
    unsigned dl1ExtraLatency = 0;
};

/** Result of a hierarchy access. */
struct MemAccessResult
{
    unsigned latency = 1;  ///< total cycles to data/instructions
    bool l1Hit = true;
    bool l2Hit = true;     ///< meaningful only when !l1Hit
    bool l2Accessed = false;
    bool tlbMiss = false;
};

/** Front door for instruction fetch and data access timing. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryConfig &cfg);

    /** Fetch the line containing @p pc. */
    MemAccessResult fetchInst(Addr pc, bool wrong_path);

    /** Load/store data access at @p addr. */
    MemAccessResult accessData(Addr addr, bool is_write, bool wrong_path);

    const Cache &il1() const { return il1_; }
    const Cache &dl1() const { return dl1_; }
    const Cache &l2() const { return l2_; }
    const Tlb &dtlb() const { return dtlb_; }
    const MemoryConfig &config() const { return cfg_; }

    /** Zero all cache/TLB statistics (end of warmup); state is kept. */
    void
    resetStats()
    {
        il1_.resetStats();
        dl1_.resetStats();
        l2_.resetStats();
        dtlb_.resetStats();
    }

    /** Checkpoint every level (see core/state_serde.hh). */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    MemoryConfig cfg_;
    Cache il1_;
    Cache dl1_;
    Cache l2_;
    Tlb dtlb_;
};

} // namespace stsim

#endif // STSIM_CACHE_HIERARCHY_HH
