#include "tlb.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace stsim
{

Tlb::Tlb(std::size_t entries, std::size_t page_bytes,
         unsigned miss_penalty)
    : capacity_(entries),
      missPenalty_(miss_penalty)
{
    if (!isPowerOf2(page_bytes))
        stsim_fatal("TLB page size must be a power of two");
    stsim_assert(entries >= 1, "empty TLB");
    pageBits_ = floorLog2(page_bytes);
    entries_.reserve(capacity_);
    vpnIndex_.reserve(capacity_ * 2);
}

bool
Tlb::access(Addr vaddr)
{
    ++accesses_;
    Addr vpn = vaddr >> pageBits_;

    auto it = vpnIndex_.find(vpn);
    if (it != vpnIndex_.end()) {
        entries_[it->second].lastUse = ++useClock_;
        return true;
    }

    ++misses_;
    std::uint32_t slot;
    if (entries_.size() < capacity_) {
        slot = static_cast<std::uint32_t>(entries_.size());
        entries_.push_back(Entry{});
    } else {
        // Exact LRU victim; the scan runs only on misses.
        slot = 0;
        for (std::uint32_t i = 1; i < entries_.size(); ++i) {
            if (entries_[i].lastUse < entries_[slot].lastUse)
                slot = i;
        }
        vpnIndex_.erase(entries_[slot].vpn);
    }
    entries_[slot].vpn = vpn;
    entries_[slot].lastUse = ++useClock_;
    vpnIndex_.emplace(vpn, slot);
    return false;
}

} // namespace stsim
