#include "tlb.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace stsim
{

Tlb::Tlb(std::size_t entries, std::size_t page_bytes,
         unsigned miss_penalty)
    : entries_(entries),
      missPenalty_(miss_penalty)
{
    if (!isPowerOf2(page_bytes))
        stsim_fatal("TLB page size must be a power of two");
    stsim_assert(entries >= 1, "empty TLB");
    pageBits_ = floorLog2(page_bytes);
}

bool
Tlb::access(Addr vaddr)
{
    ++accesses_;
    Addr vpn = vaddr >> pageBits_;

    Entry *victim = &entries_[0];
    for (auto &e : entries_) {
        if (e.valid && e.vpn == vpn) {
            e.lastUse = ++useClock_;
            return true;
        }
        if (!e.valid)
            victim = &e;
        else if (victim->valid && e.lastUse < victim->lastUse)
            victim = &e;
    }
    ++misses_;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = ++useClock_;
    return false;
}

} // namespace stsim
