#include "tlb.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

Tlb::Tlb(std::size_t entries, std::size_t page_bytes,
         unsigned miss_penalty)
    : capacity_(entries),
      missPenalty_(miss_penalty)
{
    if (!isPowerOf2(page_bytes))
        stsim_fatal("TLB page size must be a power of two");
    stsim_assert(entries >= 1, "empty TLB");
    pageBits_ = floorLog2(page_bytes);
    entries_.reserve(capacity_);
    vpnIndex_.reserve(capacity_ * 2);
}

bool
Tlb::access(Addr vaddr)
{
    ++accesses_;
    Addr vpn = vaddr >> pageBits_;

    auto it = vpnIndex_.find(vpn);
    if (it != vpnIndex_.end()) {
        entries_[it->second].lastUse = ++useClock_;
        return true;
    }

    ++misses_;
    std::uint32_t slot;
    if (entries_.size() < capacity_) {
        slot = static_cast<std::uint32_t>(entries_.size());
        entries_.push_back(Entry{});
    } else {
        // Exact LRU victim; the scan runs only on misses.
        slot = 0;
        for (std::uint32_t i = 1; i < entries_.size(); ++i) {
            if (entries_[i].lastUse < entries_[slot].lastUse)
                slot = i;
        }
        vpnIndex_.erase(entries_[slot].vpn);
    }
    entries_[slot].vpn = vpn;
    entries_[slot].lastUse = ++useClock_;
    vpnIndex_.emplace(vpn, slot);
    return false;
}

void
Tlb::saveState(serde::StateWriter &w) const
{
    w.begin("tlb");
    std::vector<std::uint64_t> vpn(entries_.size());
    std::vector<std::uint64_t> lastUse(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        vpn[i] = entries_[i].vpn;
        lastUse[i] = entries_[i].lastUse;
    }
    w.u64Vec("vpn", vpn);
    w.u64Vec("last_use", lastUse);
    w.u64("use_clock", useClock_);
    w.u64("accesses", accesses_);
    w.u64("misses", misses_);
    w.end("tlb");
}

void
Tlb::loadState(serde::StateReader &r)
{
    r.begin("tlb");
    std::vector<std::uint64_t> vpn = r.u64Vec("vpn");
    std::vector<std::uint64_t> lastUse = r.u64Vec("last_use");
    if (vpn.size() > capacity_)
        stsim_fatal("state: TLB snapshot has %zu entries but only %zu "
                    "fit",
                    vpn.size(), capacity_);
    entries_.clear();
    vpnIndex_.clear();
    for (std::size_t i = 0; i < vpn.size(); ++i) {
        entries_.push_back(Entry{vpn[i], lastUse[i]});
        vpnIndex_.emplace(vpn[i], static_cast<std::uint32_t>(i));
    }
    useClock_ = r.u64("use_clock");
    accesses_ = r.u64("accesses");
    misses_ = r.u64("misses");
    r.end("tlb");
}

} // namespace stsim
