#include "cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace stsim
{

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    if (!isPowerOf2(cfg.lineBytes) || !isPowerOf2(cfg.sizeBytes))
        stsim_fatal("%s: size/line must be powers of two",
                    cfg.name.c_str());
    std::size_t lines = cfg.sizeBytes / cfg.lineBytes;
    if (cfg.ways == 0 || lines % cfg.ways != 0)
        stsim_fatal("%s: bad associativity", cfg.name.c_str());
    numSets_ = lines / cfg.ways;
    if (!isPowerOf2(numSets_))
        stsim_fatal("%s: set count must be a power of two",
                    cfg.name.c_str());
    setBits_ = floorLog2(numSets_);
    lineBits_ = floorLog2(cfg.lineBytes);
    setMask_ = numSets_ - 1;
    lines_.resize(lines);
    mruWay_.assign(numSets_, 0);
}

bool
Cache::access(Addr addr, bool /*is_write*/, bool wrong_path)
{
    ++accesses_;
    if (wrong_path)
        ++wrongPathAccesses_;

    Addr line_addr = addr >> lineBits_;
    std::size_t set = static_cast<std::size_t>(line_addr & setMask_);
    Addr tag = line_addr >> setBits_;
    Line *ways = &lines_[set * cfg_.ways];

    // MRU fast path: hot lines hit the same way they hit last time.
    Line &mru = ways[mruWay_[set]];
    if (mru.valid && mru.tag == tag) {
        mru.lastUse = ++useClock_;
        if (!wrong_path)
            mru.wrongPathFill = false;
        return true;
    }

    // Hit/victim scan in one pass: the victim is the last invalid
    // way, else true-LRU among the valid ones.
    Line *victim = &ways[0];
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ways[w].lastUse = ++useClock_;
            if (!wrong_path)
                ways[w].wrongPathFill = false;
            mruWay_[set] = static_cast<std::uint8_t>(w);
            return true;
        }
        if (!ways[w].valid)
            victim = &ways[w];
        else if (victim->valid && ways[w].lastUse < victim->lastUse)
            victim = &ways[w];
    }

    // Miss: allocate into the victim way.
    ++misses_;
    if (wrong_path && victim->valid && !victim->wrongPathFill)
        ++pollutionEvictions_;
    victim->valid = true;
    victim->tag = tag;
    victim->wrongPathFill = wrong_path;
    victim->lastUse = ++useClock_;
    mruWay_[set] = static_cast<std::uint8_t>(victim - ways);
    return false;
}

bool
Cache::probe(Addr addr) const
{
    Addr line_addr = addr >> lineBits_;
    std::size_t set = static_cast<std::size_t>(line_addr & setMask_);
    Addr tag = line_addr >> setBits_;
    const Line *ways = &lines_[set * cfg_.ways];
    const Line &mru = ways[mruWay_[set]];
    if (mru.valid && mru.tag == tag)
        return true;
    for (std::size_t w = 0; w < cfg_.ways; ++w)
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    return false;
}

} // namespace stsim
