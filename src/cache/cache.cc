#include "cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace stsim
{

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    if (!isPowerOf2(cfg.lineBytes) || !isPowerOf2(cfg.sizeBytes))
        stsim_fatal("%s: size/line must be powers of two",
                    cfg.name.c_str());
    std::size_t lines = cfg.sizeBytes / cfg.lineBytes;
    if (cfg.ways == 0 || lines % cfg.ways != 0)
        stsim_fatal("%s: bad associativity", cfg.name.c_str());
    numSets_ = lines / cfg.ways;
    if (!isPowerOf2(numSets_))
        stsim_fatal("%s: set count must be a power of two",
                    cfg.name.c_str());
    setBits_ = floorLog2(numSets_);
    lineBits_ = floorLog2(cfg.lineBytes);
    lines_.resize(lines);
}

bool
Cache::access(Addr addr, bool /*is_write*/, bool wrong_path)
{
    ++accesses_;
    if (wrong_path)
        ++wrongPathAccesses_;

    Addr line_addr = addr >> lineBits_;
    std::size_t set = static_cast<std::size_t>(line_addr &
                                               lowMask(setBits_));
    Addr tag = line_addr >> setBits_;
    Line *ways = &lines_[set * cfg_.ways];

    Line *victim = &ways[0];
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ways[w].lastUse = ++useClock_;
            if (!wrong_path)
                ways[w].wrongPathFill = false;
            return true;
        }
        if (!ways[w].valid)
            victim = &ways[w];
        else if (victim->valid && ways[w].lastUse < victim->lastUse)
            victim = &ways[w];
    }

    // Miss: allocate into the LRU way.
    ++misses_;
    if (wrong_path && victim->valid && !victim->wrongPathFill)
        ++pollutionEvictions_;
    victim->valid = true;
    victim->tag = tag;
    victim->wrongPathFill = wrong_path;
    victim->lastUse = ++useClock_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    Addr line_addr = addr >> lineBits_;
    std::size_t set = static_cast<std::size_t>(line_addr &
                                               lowMask(setBits_));
    Addr tag = line_addr >> setBits_;
    const Line *ways = &lines_[set * cfg_.ways];
    for (std::size_t w = 0; w < cfg_.ways; ++w)
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    return false;
}

} // namespace stsim
