#include "cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    if (!isPowerOf2(cfg.lineBytes) || !isPowerOf2(cfg.sizeBytes))
        stsim_fatal("%s: size/line must be powers of two",
                    cfg.name.c_str());
    std::size_t lines = cfg.sizeBytes / cfg.lineBytes;
    if (cfg.ways == 0 || lines % cfg.ways != 0)
        stsim_fatal("%s: bad associativity", cfg.name.c_str());
    numSets_ = lines / cfg.ways;
    if (!isPowerOf2(numSets_))
        stsim_fatal("%s: set count must be a power of two",
                    cfg.name.c_str());
    setBits_ = floorLog2(numSets_);
    lineBits_ = floorLog2(cfg.lineBytes);
    setMask_ = numSets_ - 1;
    lines_.resize(lines);
    mruWay_.assign(numSets_, 0);
}

bool
Cache::access(Addr addr, bool /*is_write*/, bool wrong_path)
{
    ++accesses_;
    if (wrong_path)
        ++wrongPathAccesses_;

    Addr line_addr = addr >> lineBits_;
    std::size_t set = static_cast<std::size_t>(line_addr & setMask_);
    Addr tag = line_addr >> setBits_;
    Line *ways = &lines_[set * cfg_.ways];

    // MRU fast path: hot lines hit the same way they hit last time.
    Line &mru = ways[mruWay_[set]];
    if (mru.valid && mru.tag == tag) {
        mru.lastUse = ++useClock_;
        if (!wrong_path)
            mru.wrongPathFill = false;
        return true;
    }

    // Hit/victim scan in one pass: the victim is the last invalid
    // way, else true-LRU among the valid ones.
    Line *victim = &ways[0];
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ways[w].lastUse = ++useClock_;
            if (!wrong_path)
                ways[w].wrongPathFill = false;
            mruWay_[set] = static_cast<std::uint8_t>(w);
            return true;
        }
        if (!ways[w].valid)
            victim = &ways[w];
        else if (victim->valid && ways[w].lastUse < victim->lastUse)
            victim = &ways[w];
    }

    // Miss: allocate into the victim way.
    ++misses_;
    if (wrong_path && victim->valid && !victim->wrongPathFill)
        ++pollutionEvictions_;
    victim->valid = true;
    victim->tag = tag;
    victim->wrongPathFill = wrong_path;
    victim->lastUse = ++useClock_;
    mruWay_[set] = static_cast<std::uint8_t>(victim - ways);
    return false;
}

bool
Cache::probe(Addr addr) const
{
    Addr line_addr = addr >> lineBits_;
    std::size_t set = static_cast<std::size_t>(line_addr & setMask_);
    Addr tag = line_addr >> setBits_;
    const Line *ways = &lines_[set * cfg_.ways];
    const Line &mru = ways[mruWay_[set]];
    if (mru.valid && mru.tag == tag)
        return true;
    for (std::size_t w = 0; w < cfg_.ways; ++w)
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    return false;
}

void
Cache::saveState(serde::StateWriter &w) const
{
    w.begin("cache");
    w.str("name", cfg_.name);
    std::vector<std::uint64_t> tag(lines_.size());
    std::vector<std::uint64_t> lastUse(lines_.size());
    std::vector<std::uint64_t> flags(lines_.size());
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        tag[i] = lines_[i].tag;
        lastUse[i] = lines_[i].lastUse;
        flags[i] = (lines_[i].valid ? 1u : 0u) |
                   (lines_[i].wrongPathFill ? 2u : 0u);
    }
    w.u64Vec("tag", tag);
    w.u64Vec("last_use", lastUse);
    w.u64Vec("flags", flags);
    w.u64Vec("mru_way", mruWay_);
    w.u64("use_clock", useClock_);
    w.u64("accesses", accesses_);
    w.u64("misses", misses_);
    w.u64("wrong_path_accesses", wrongPathAccesses_);
    w.u64("pollution_evictions", pollutionEvictions_);
    w.end("cache");
}

void
Cache::loadState(serde::StateReader &r)
{
    r.begin("cache");
    std::string name = r.str("name");
    if (name != cfg_.name)
        stsim_fatal("state: cache name mismatch (snapshot '%s', "
                    "configured '%s')",
                    name.c_str(), cfg_.name.c_str());
    std::vector<std::uint64_t> tag = r.u64Vec("tag");
    std::vector<std::uint64_t> lastUse = r.u64Vec("last_use");
    std::vector<std::uint64_t> flags = r.u64Vec("flags");
    std::vector<std::uint64_t> mru = r.u64Vec("mru_way");
    if (tag.size() != lines_.size() || mru.size() != mruWay_.size())
        stsim_fatal("state: cache '%s' geometry mismatch (snapshot "
                    "%zu lines, configured %zu)",
                    cfg_.name.c_str(), tag.size(), lines_.size());
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        lines_[i].tag = tag[i];
        lines_[i].lastUse = lastUse[i];
        lines_[i].valid = (flags[i] & 1) != 0;
        lines_[i].wrongPathFill = (flags[i] & 2) != 0;
    }
    for (std::size_t i = 0; i < mruWay_.size(); ++i)
        mruWay_[i] = static_cast<std::uint8_t>(mru[i]);
    useClock_ = r.u64("use_clock");
    accesses_ = r.u64("accesses");
    misses_ = r.u64("misses");
    wrongPathAccesses_ = r.u64("wrong_path_accesses");
    pollutionEvictions_ = r.u64("pollution_evictions");
    r.end("cache");
}

} // namespace stsim
