#include "hierarchy.hh"

#include "core/state_serde.hh"

namespace stsim
{

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &cfg)
    : cfg_(cfg),
      il1_(cfg.il1),
      dl1_(cfg.dl1),
      l2_(cfg.l2),
      dtlb_(cfg.tlbEntries, cfg.pageBytes, cfg.tlbMissPenalty)
{
}

MemAccessResult
MemoryHierarchy::fetchInst(Addr pc, bool wrong_path)
{
    MemAccessResult r;
    r.l1Hit = il1_.access(pc, false, wrong_path);
    r.latency = cfg_.il1.hitLatency;
    if (!r.l1Hit) {
        r.l2Accessed = true;
        r.l2Hit = l2_.access(pc, false, wrong_path);
        r.latency += cfg_.l2.hitLatency;
        if (!r.l2Hit)
            r.latency += cfg_.memLatency;
    }
    return r;
}

MemAccessResult
MemoryHierarchy::accessData(Addr addr, bool is_write, bool wrong_path)
{
    MemAccessResult r;
    r.tlbMiss = !dtlb_.access(addr);
    r.l1Hit = dl1_.access(addr, is_write, wrong_path);
    r.latency = cfg_.dl1.hitLatency + cfg_.dl1ExtraLatency;
    if (!r.l1Hit) {
        r.l2Accessed = true;
        r.l2Hit = l2_.access(addr, is_write, wrong_path);
        r.latency += cfg_.l2.hitLatency;
        if (!r.l2Hit)
            r.latency += cfg_.memLatency;
    }
    if (r.tlbMiss)
        r.latency += dtlb_.missPenalty();
    return r;
}

void
MemoryHierarchy::saveState(serde::StateWriter &w) const
{
    w.begin("memory");
    il1_.saveState(w);
    dl1_.saveState(w);
    l2_.saveState(w);
    dtlb_.saveState(w);
    w.end("memory");
}

void
MemoryHierarchy::loadState(serde::StateReader &r)
{
    r.begin("memory");
    il1_.loadState(r);
    dl1_.loadState(r);
    l2_.loadState(r);
    dtlb_.loadState(r);
    r.end("memory");
}

} // namespace stsim
