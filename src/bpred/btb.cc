#include "btb.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace stsim
{

Btb::Btb(std::size_t entries, std::size_t ways)
    : ways_(ways)
{
    if (!isPowerOf2(entries) || ways == 0 || entries % ways != 0)
        stsim_fatal("bad BTB geometry: %zu entries, %zu ways",
                    entries, ways);
    numSets_ = entries / ways;
    if (!isPowerOf2(numSets_))
        stsim_fatal("BTB set count must be a power of two");
    setBits_ = floorLog2(numSets_);
    entries_.resize(entries);
}

std::size_t
Btb::setIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) & lowMask(setBits_));
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++lookups_;
    Addr tag = pc >> (2 + setBits_);
    Entry *set = &entries_[setIndex(pc) * ways_];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++useClock_;
            ++hits_;
            return set[w].target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    Addr tag = pc >> (2 + setBits_);
    Entry *set = &entries_[setIndex(pc) * ways_];
    Entry *victim = &set[0];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].target = target;
            set[w].lastUse = ++useClock_;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
        } else if (victim->valid && set[w].lastUse < victim->lastUse) {
            victim = &set[w];
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lastUse = ++useClock_;
}

} // namespace stsim
