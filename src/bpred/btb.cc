#include "btb.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

Btb::Btb(std::size_t entries, std::size_t ways)
    : ways_(ways)
{
    if (!isPowerOf2(entries) || ways == 0 || entries % ways != 0)
        stsim_fatal("bad BTB geometry: %zu entries, %zu ways",
                    entries, ways);
    numSets_ = entries / ways;
    if (!isPowerOf2(numSets_))
        stsim_fatal("BTB set count must be a power of two");
    setBits_ = floorLog2(numSets_);
    entries_.resize(entries);
}

std::size_t
Btb::setIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) & lowMask(setBits_));
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++lookups_;
    Addr tag = pc >> (2 + setBits_);
    Entry *set = &entries_[setIndex(pc) * ways_];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++useClock_;
            ++hits_;
            return set[w].target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    Addr tag = pc >> (2 + setBits_);
    Entry *set = &entries_[setIndex(pc) * ways_];
    Entry *victim = &set[0];
    for (std::size_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].target = target;
            set[w].lastUse = ++useClock_;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
        } else if (victim->valid && set[w].lastUse < victim->lastUse) {
            victim = &set[w];
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lastUse = ++useClock_;
}

void
Btb::saveState(serde::StateWriter &w) const
{
    w.begin("btb");
    std::vector<std::uint64_t> valid(entries_.size());
    std::vector<std::uint64_t> tag(entries_.size());
    std::vector<std::uint64_t> target(entries_.size());
    std::vector<std::uint64_t> lastUse(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        valid[i] = entries_[i].valid ? 1 : 0;
        tag[i] = entries_[i].tag;
        target[i] = entries_[i].target;
        lastUse[i] = entries_[i].lastUse;
    }
    w.u64Vec("valid", valid);
    w.u64Vec("tag", tag);
    w.u64Vec("target", target);
    w.u64Vec("last_use", lastUse);
    w.u64("use_clock", useClock_);
    w.u64("lookups", lookups_);
    w.u64("hits", hits_);
    w.end("btb");
}

void
Btb::loadState(serde::StateReader &r)
{
    r.begin("btb");
    std::vector<std::uint64_t> valid = r.u64Vec("valid");
    std::vector<std::uint64_t> tag = r.u64Vec("tag");
    std::vector<std::uint64_t> target = r.u64Vec("target");
    std::vector<std::uint64_t> lastUse = r.u64Vec("last_use");
    if (valid.size() != entries_.size())
        stsim_fatal("state: BTB size mismatch (snapshot %zu, "
                    "configured %zu)",
                    valid.size(), entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        entries_[i].valid = valid[i] != 0;
        entries_[i].tag = tag[i];
        entries_[i].target = target[i];
        entries_[i].lastUse = lastUse[i];
    }
    useClock_ = r.u64("use_clock");
    lookups_ = r.u64("lookups");
    hits_ = r.u64("hits");
    r.end("btb");
}

} // namespace stsim
