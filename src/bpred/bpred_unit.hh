/**
 * @file
 * Combined front-end branch prediction engine: direction predictor +
 * BTB + RAS with speculative global history and squash repair.
 */

#ifndef STSIM_BPRED_BPRED_UNIT_HH
#define STSIM_BPRED_BPRED_UNIT_HH

#include <cstdint>
#include <memory>

#include "bpred/btb.hh"
#include "bpred/direction_predictor.hh"
#include "bpred/ras.hh"
#include "common/types.hh"
#include "trace/instruction.hh"

namespace stsim
{

/** Construction parameters for a BpredUnit. */
struct BpredConfig
{
    enum class Kind { Gshare, Bimodal };

    Kind kind = Kind::Gshare;
    std::size_t predictorBytes = 8 * 1024; ///< paper baseline: 8 KB
    std::size_t btbEntries = 1024;         ///< Table 3
    std::size_t btbWays = 2;
    std::size_t rasEntries = 32;
};

/**
 * Everything the front end learns about one control instruction at
 * prediction time, including the checkpoints needed to repair
 * speculative state when the instruction turns out to be on a wrong
 * path or mispredicted.
 */
struct BranchPrediction
{
    // Wide members first, flags and the byte-sized counter state last:
    // the struct packs to 40 bytes and is embedded in every DynInst,
    // so its size is hot-loop cache footprint.
    Addr predTarget = 0;   ///< 0 when the target is unknown (BTB miss)
    std::uint64_t histBefore = 0;       ///< global history checkpoint
    Ras::Checkpoint rasCp;              ///< RAS checkpoint
    DirectionPredictor::Prediction dir; ///< raw counter (cond only)
    bool predTaken = false;
    bool btbHit = false;
};

/**
 * The front-end prediction engine. The fetch stage calls predict() for
 * every control instruction (speculatively updating global history and
 * the RAS), commitUpdate() when a control instruction retires, and
 * squashRestore() when a mispredicted branch resolves.
 */
class BpredUnit
{
  public:
    explicit BpredUnit(const BpredConfig &cfg);

    /** Predict direction/target for @p inst; mutates speculative state. */
    BranchPrediction predict(const TraceInst &inst);

    /**
     * Train tables with the architectural outcome of a retiring control
     * instruction. @p pred must be the prediction returned at fetch.
     */
    void commitUpdate(const TraceInst &inst, const BranchPrediction &pred);

    /**
     * Repair speculative state after the branch predicted by @p pred
     * resolved as mispredicted: global history is rolled back to the
     * checkpoint plus the actual outcome, and the RAS is restored and
     * replayed for the branch itself.
     */
    void squashRestore(const TraceInst &inst,
                       const BranchPrediction &pred);

    /** Current speculative global history. */
    std::uint64_t specHistory() const { return specHist_; }

    /** The direction predictor (for confidence-estimator fallback). */
    DirectionPredictor &directionPredictor() { return *dirPred_; }

    const Btb &btb() const { return btb_; }

    /** Direction-predictor lookups (activity accounting). */
    Counter lookups() const { return lookups_; }

    /** Conditional-branch mispredict training events seen at commit. */
    Counter condUpdates() const { return condUpdates_; }
    Counter condMispredicts() const { return condMispredicts_; }

    /** Commit-time conditional misprediction rate. */
    double
    condMissRate() const
    {
        return condUpdates_ ? static_cast<double>(condMispredicts_) /
                                  condUpdates_
                            : 0.0;
    }

    /** Zero training/lookup counters (end of warmup); tables stay. */
    void resetStats()
    {
        lookups_ = condUpdates_ = condMispredicts_ = 0;
    }

    /**
     * Checkpoint the whole front end: direction-predictor tables, BTB,
     * RAS, speculative history, and counters.
     */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    std::unique_ptr<DirectionPredictor> dirPred_;
    Btb btb_;
    Ras ras_;
    std::uint64_t specHist_ = 0;
    Counter lookups_ = 0;
    Counter condUpdates_ = 0;
    Counter condMispredicts_ = 0;
};

} // namespace stsim

#endif // STSIM_BPRED_BPRED_UNIT_HH
