/**
 * @file
 * Bimodal predictor: PC-indexed table of 2-bit counters. Used as a
 * history-free baseline and in tests.
 */

#ifndef STSIM_BPRED_BIMODAL_HH
#define STSIM_BPRED_BIMODAL_HH

#include <vector>

#include "bpred/direction_predictor.hh"
#include "common/sat_counter.hh"

namespace stsim
{

/** Bimodal: PHT[pc] of 2-bit saturating counters. */
class Bimodal : public DirectionPredictor
{
  public:
    /** @param size_bytes Budget; 4 two-bit counters per byte. */
    explicit Bimodal(std::size_t size_bytes);

    Prediction predict(Addr pc, std::uint64_t hist) override;
    void update(Addr pc, std::uint64_t hist, bool taken) override;
    std::size_t sizeBytes() const override { return sizeBytes_; }
    unsigned historyBits() const override { return 0; }

    std::size_t numEntries() const { return pht_.size(); }

    void saveState(serde::StateWriter &w) const override;
    void loadState(serde::StateReader &r) override;

  private:
    std::size_t sizeBytes_;
    unsigned indexBits_;
    std::vector<SatCounter> pht_;
};

} // namespace stsim

#endif // STSIM_BPRED_BIMODAL_HH
