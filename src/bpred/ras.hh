/**
 * @file
 * Return-address stack with top-of-stack checkpointing for squash
 * recovery.
 */

#ifndef STSIM_BPRED_RAS_HH
#define STSIM_BPRED_RAS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace stsim
{

namespace serde
{
class StateWriter;
class StateReader;
} // namespace serde

/**
 * Circular return-address stack. Speculative pushes/pops are repaired
 * after a squash by restoring a (top index, top value) checkpoint, the
 * standard low-cost RAS recovery scheme.
 */
class Ras
{
  public:
    explicit Ras(std::size_t entries);

    /** Checkpoint for later restore. */
    struct Checkpoint
    {
        std::uint32_t top = 0;
        Addr topValue = 0;
    };

    /** Push a return address (on call). */
    void push(Addr ret_addr);

    /** Pop the predicted return address (on return); 0 when empty-ish. */
    Addr pop();

    /** Current recovery checkpoint. */
    Checkpoint checkpoint() const { return {top_, stack_[top_]}; }

    /** Restore a checkpoint taken before the squashed region. */
    void restore(const Checkpoint &cp);

    std::size_t size() const { return stack_.size(); }

    /** Checkpoint the full stack contents and top index. */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    std::vector<Addr> stack_;
    std::uint32_t top_ = 0; // index of current top entry
};

} // namespace stsim

#endif // STSIM_BPRED_RAS_HH
