#include "ras.hh"

#include "common/logging.hh"

namespace stsim
{

Ras::Ras(std::size_t entries)
    : stack_(entries, 0)
{
    stsim_assert(entries >= 2, "RAS too small");
}

void
Ras::push(Addr ret_addr)
{
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = ret_addr;
}

Addr
Ras::pop()
{
    Addr v = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    return v;
}

void
Ras::restore(const Checkpoint &cp)
{
    top_ = cp.top;
    stack_[top_] = cp.topValue;
}

} // namespace stsim
