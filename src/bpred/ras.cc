#include "ras.hh"

#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

Ras::Ras(std::size_t entries)
    : stack_(entries, 0)
{
    stsim_assert(entries >= 2, "RAS too small");
}

void
Ras::push(Addr ret_addr)
{
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = ret_addr;
}

Addr
Ras::pop()
{
    Addr v = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    return v;
}

void
Ras::restore(const Checkpoint &cp)
{
    top_ = cp.top;
    stack_[top_] = cp.topValue;
}

void
Ras::saveState(serde::StateWriter &w) const
{
    w.begin("ras");
    w.u64Vec("stack", stack_);
    w.u64("top", top_);
    w.end("ras");
}

void
Ras::loadState(serde::StateReader &r)
{
    r.begin("ras");
    std::vector<std::uint64_t> stack = r.u64Vec("stack");
    if (stack.size() != stack_.size())
        stsim_fatal("state: RAS size mismatch (snapshot %zu, "
                    "configured %zu)",
                    stack.size(), stack_.size());
    for (std::size_t i = 0; i < stack_.size(); ++i)
        stack_[i] = stack[i];
    top_ = static_cast<std::uint32_t>(r.u64("top"));
    r.end("ras");
}

} // namespace stsim
