#include "gshare.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

Gshare::Gshare(std::size_t size_bytes)
    : sizeBytes_(size_bytes)
{
    std::size_t entries = size_bytes * 4; // 2-bit counters
    if (!isPowerOf2(entries))
        stsim_fatal("gshare size %zu B yields non-power-of-2 entries",
                    size_bytes);
    histBits_ = floorLog2(entries);
    // Initialize counters weakly taken (2), the usual cold-start choice.
    pht_.assign(entries, SatCounter(2, 2));
}

std::size_t
Gshare::index(Addr pc, std::uint64_t hist) const
{
    return static_cast<std::size_t>(((pc >> 2) ^ hist) &
                                    lowMask(histBits_));
}

DirectionPredictor::Prediction
Gshare::predict(Addr pc, std::uint64_t hist)
{
    const SatCounter &c = pht_[index(pc, hist)];
    return {c.isTaken(), static_cast<std::uint8_t>(c.value()),
            static_cast<std::uint8_t>(c.maxValue())};
}

void
Gshare::update(Addr pc, std::uint64_t hist, bool taken)
{
    SatCounter &c = pht_[index(pc, hist)];
    if (taken)
        c.increment();
    else
        c.decrement();
}

void
Gshare::saveState(serde::StateWriter &w) const
{
    w.begin("gshare");
    std::vector<std::uint64_t> v(pht_.size());
    for (std::size_t i = 0; i < pht_.size(); ++i)
        v[i] = pht_[i].value();
    w.u64Vec("pht", v);
    w.end("gshare");
}

void
Gshare::loadState(serde::StateReader &r)
{
    r.begin("gshare");
    std::vector<std::uint64_t> v = r.u64Vec("pht");
    if (v.size() != pht_.size())
        stsim_fatal("state: gshare PHT size mismatch (snapshot %zu, "
                    "configured %zu)",
                    v.size(), pht_.size());
    for (std::size_t i = 0; i < pht_.size(); ++i)
        pht_[i].set(static_cast<unsigned>(v[i]));
    r.end("gshare");
}

} // namespace stsim
