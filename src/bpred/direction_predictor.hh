/**
 * @file
 * Abstract conditional-branch direction predictor interface.
 */

#ifndef STSIM_BPRED_DIRECTION_PREDICTOR_HH
#define STSIM_BPRED_DIRECTION_PREDICTOR_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace stsim
{

namespace serde
{
class StateWriter;
class StateReader;
} // namespace serde

/** Abstract PC(+history)-indexed taken/not-taken predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /**
     * Direction prediction plus the raw counter state that produced it;
     * the BPRU-style confidence estimator consumes the counter to label
     * weakly-biased predictions as low confidence on a table miss.
     */
    struct Prediction
    {
        bool taken = false;
        std::uint8_t counter = 0;    ///< raw saturating-counter value
        std::uint8_t counterMax = 3; ///< its saturation value
        bool weak() const
        {
            unsigned mid = counterMax / 2u;
            return counter == mid || counter == mid + 1;
        }
    };

    /** Predict the direction of the branch at @p pc under @p hist. */
    virtual Prediction predict(Addr pc, std::uint64_t hist) = 0;

    /** Train with the architectural outcome (commit time). */
    virtual void update(Addr pc, std::uint64_t hist, bool taken) = 0;

    /** Hardware budget in bytes (for Figure 7 sizing). */
    virtual std::size_t sizeBytes() const = 0;

    /** History bits this predictor consumes (0 for bimodal). */
    virtual unsigned historyBits() const = 0;

    /** Checkpoint the table contents (see core/state_serde.hh). */
    virtual void saveState(serde::StateWriter &w) const = 0;
    virtual void loadState(serde::StateReader &r) = 0;
};

} // namespace stsim

#endif // STSIM_BPRED_DIRECTION_PREDICTOR_HH
