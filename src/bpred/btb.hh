/**
 * @file
 * Branch target buffer: set-associative tagged cache of branch targets
 * (Table 3: 1024 entries, 2-way).
 */

#ifndef STSIM_BPRED_BTB_HH
#define STSIM_BPRED_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace stsim
{

namespace serde
{
class StateWriter;
class StateReader;
} // namespace serde

/** Set-associative BTB with LRU replacement. */
class Btb
{
  public:
    /**
     * @param entries Total entries (power of two).
     * @param ways Associativity (divides entries).
     */
    Btb(std::size_t entries, std::size_t ways);

    /** Predicted target for the branch at @p pc, if present. */
    std::optional<Addr> lookup(Addr pc);

    /** Install/refresh the target of the branch at @p pc. */
    void update(Addr pc, Addr target);

    std::size_t numEntries() const { return entries_.size(); }
    std::size_t numWays() const { return ways_; }

    /** Lookups performed (for activity accounting). */
    Counter lookups() const { return lookups_; }

    /** Lookup hits. */
    Counter hits() const { return hits_; }

    /** Checkpoint table contents + LRU clock + counters. */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr pc) const;

    std::size_t ways_;
    std::size_t numSets_;
    unsigned setBits_;
    std::vector<Entry> entries_; // sets * ways, way-major within set
    std::uint64_t useClock_ = 0;
    Counter lookups_ = 0;
    Counter hits_ = 0;
};

} // namespace stsim

#endif // STSIM_BPRED_BTB_HH
