#include "bimodal.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

Bimodal::Bimodal(std::size_t size_bytes)
    : sizeBytes_(size_bytes)
{
    std::size_t entries = size_bytes * 4;
    if (!isPowerOf2(entries))
        stsim_fatal("bimodal size %zu B yields non-power-of-2 entries",
                    size_bytes);
    indexBits_ = floorLog2(entries);
    pht_.assign(entries, SatCounter(2, 2));
}

DirectionPredictor::Prediction
Bimodal::predict(Addr pc, std::uint64_t /*hist*/)
{
    const SatCounter &c = pht_[(pc >> 2) & lowMask(indexBits_)];
    return {c.isTaken(), static_cast<std::uint8_t>(c.value()),
            static_cast<std::uint8_t>(c.maxValue())};
}

void
Bimodal::update(Addr pc, std::uint64_t /*hist*/, bool taken)
{
    SatCounter &c = pht_[(pc >> 2) & lowMask(indexBits_)];
    if (taken)
        c.increment();
    else
        c.decrement();
}

void
Bimodal::saveState(serde::StateWriter &w) const
{
    w.begin("bimodal");
    std::vector<std::uint64_t> v(pht_.size());
    for (std::size_t i = 0; i < pht_.size(); ++i)
        v[i] = pht_[i].value();
    w.u64Vec("pht", v);
    w.end("bimodal");
}

void
Bimodal::loadState(serde::StateReader &r)
{
    r.begin("bimodal");
    std::vector<std::uint64_t> v = r.u64Vec("pht");
    if (v.size() != pht_.size())
        stsim_fatal("state: bimodal PHT size mismatch (snapshot %zu, "
                    "configured %zu)",
                    v.size(), pht_.size());
    for (std::size_t i = 0; i < pht_.size(); ++i)
        pht_[i].set(static_cast<unsigned>(v[i]));
    r.end("bimodal");
}

} // namespace stsim
