/**
 * @file
 * gshare predictor (McFarling, DEC WRL TN-36): a PHT of 2-bit counters
 * indexed by PC xor global history. The paper's baseline predictor at
 * 8 KB (32 Ki counters, 15 history bits).
 */

#ifndef STSIM_BPRED_GSHARE_HH
#define STSIM_BPRED_GSHARE_HH

#include <vector>

#include "bpred/direction_predictor.hh"
#include "common/sat_counter.hh"

namespace stsim
{

/** gshare: PHT[pc ^ hist] of 2-bit saturating counters. */
class Gshare : public DirectionPredictor
{
  public:
    /**
     * @param size_bytes Hardware budget; 4 two-bit counters per byte.
     *                   Must make the entry count a power of two.
     */
    explicit Gshare(std::size_t size_bytes);

    Prediction predict(Addr pc, std::uint64_t hist) override;
    void update(Addr pc, std::uint64_t hist, bool taken) override;
    std::size_t sizeBytes() const override { return sizeBytes_; }
    unsigned historyBits() const override { return histBits_; }

    /** Number of PHT entries. */
    std::size_t numEntries() const { return pht_.size(); }

    void saveState(serde::StateWriter &w) const override;
    void loadState(serde::StateReader &r) override;

  private:
    std::size_t index(Addr pc, std::uint64_t hist) const;

    std::size_t sizeBytes_;
    unsigned histBits_;
    std::vector<SatCounter> pht_;
};

} // namespace stsim

#endif // STSIM_BPRED_GSHARE_HH
