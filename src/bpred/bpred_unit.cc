#include "bpred_unit.hh"

#include "bpred/bimodal.hh"
#include "bpred/gshare.hh"
#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

namespace
{

std::unique_ptr<DirectionPredictor>
makePredictor(const BpredConfig &cfg)
{
    switch (cfg.kind) {
      case BpredConfig::Kind::Gshare:
        return std::make_unique<Gshare>(cfg.predictorBytes);
      case BpredConfig::Kind::Bimodal:
        return std::make_unique<Bimodal>(cfg.predictorBytes);
    }
    stsim_panic("bad predictor kind");
}

} // namespace

BpredUnit::BpredUnit(const BpredConfig &cfg)
    : dirPred_(makePredictor(cfg)),
      btb_(cfg.btbEntries, cfg.btbWays),
      ras_(cfg.rasEntries)
{
}

BranchPrediction
BpredUnit::predict(const TraceInst &inst)
{
    stsim_dbg_assert(inst.isBranch(), "predict() on non-control inst");
    BranchPrediction bp;
    bp.histBefore = specHist_;
    bp.rasCp = ras_.checkpoint();

    switch (inst.cls) {
      case InstClass::CondBranch: {
        ++lookups_;
        bp.dir = dirPred_->predict(inst.pc, specHist_);
        bp.predTaken = bp.dir.taken;
        auto t = btb_.lookup(inst.pc);
        bp.btbHit = t.has_value();
        if (bp.predTaken)
            bp.predTarget = bp.btbHit ? *t : 0;
        else
            bp.predTarget = inst.pc + 4;
        // Speculative history update (repaired on squash).
        specHist_ = (specHist_ << 1) | (bp.predTaken ? 1 : 0);
        break;
      }
      case InstClass::Jump: {
        bp.predTaken = true;
        auto t = btb_.lookup(inst.pc);
        bp.btbHit = t.has_value();
        bp.predTarget = bp.btbHit ? *t : 0;
        break;
      }
      case InstClass::Call: {
        bp.predTaken = true;
        auto t = btb_.lookup(inst.pc);
        bp.btbHit = t.has_value();
        bp.predTarget = bp.btbHit ? *t : 0;
        ras_.push(inst.pc + 4);
        break;
      }
      case InstClass::Return: {
        bp.predTaken = true;
        bp.predTarget = ras_.pop();
        bp.btbHit = bp.predTarget != 0;
        break;
      }
      default:
        stsim_panic("unreachable");
    }
    return bp;
}

void
BpredUnit::commitUpdate(const TraceInst &inst, const BranchPrediction &pred)
{
    switch (inst.cls) {
      case InstClass::CondBranch:
        ++condUpdates_;
        if (pred.predTaken != inst.taken)
            ++condMispredicts_;
        dirPred_->update(inst.pc, pred.histBefore, inst.taken);
        if (inst.taken)
            btb_.update(inst.pc, inst.target);
        break;
      case InstClass::Jump:
      case InstClass::Call:
        btb_.update(inst.pc, inst.target);
        break;
      case InstClass::Return:
        break; // RAS-predicted; nothing to train
      default:
        break;
    }
}

void
BpredUnit::squashRestore(const TraceInst &inst,
                         const BranchPrediction &pred)
{
    // Roll global history back to the checkpoint, then insert the
    // branch's architectural outcome (cond branches only contribute).
    if (inst.cls == InstClass::CondBranch)
        specHist_ = (pred.histBefore << 1) | (inst.taken ? 1 : 0);
    else
        specHist_ = pred.histBefore;

    // Restore the RAS to the pre-branch state and replay the branch's
    // own architectural stack operation.
    ras_.restore(pred.rasCp);
    if (inst.cls == InstClass::Call)
        ras_.push(inst.pc + 4);
    else if (inst.cls == InstClass::Return)
        ras_.pop();
}

void
BpredUnit::saveState(serde::StateWriter &w) const
{
    w.begin("bpred");
    dirPred_->saveState(w);
    btb_.saveState(w);
    ras_.saveState(w);
    w.u64("spec_hist", specHist_);
    w.u64("lookups", lookups_);
    w.u64("cond_updates", condUpdates_);
    w.u64("cond_mispredicts", condMispredicts_);
    w.end("bpred");
}

void
BpredUnit::loadState(serde::StateReader &r)
{
    r.begin("bpred");
    dirPred_->loadState(r);
    btb_.loadState(r);
    ras_.loadState(r);
    specHist_ = r.u64("spec_hist");
    lookups_ = r.u64("lookups");
    condUpdates_ = r.u64("cond_updates");
    condMispredicts_ = r.u64("cond_mispredicts");
    r.end("bpred");
}

} // namespace stsim
