#include "host_launcher.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"

namespace stsim
{
namespace dist
{

HostLauncher::~HostLauncher() = default;

LocalProcessLauncher::LocalProcessLauncher(std::string runnerPath)
    : runner_(std::move(runnerPath))
{
    if (::access(runner_.c_str(), X_OK) != 0) {
        stsim_fatal("launcher: '%s' is not an executable runner (%s)",
                    runner_.c_str(), std::strerror(errno));
    }
}

std::string
LocalProcessLauncher::selfExecutable()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0) {
        stsim_fatal("launcher: cannot resolve /proc/self/exe (%s); "
                    "pass --runner PATH",
                    std::strerror(errno));
    }
    buf[n] = '\0';
    return buf;
}

void
LocalProcessLauncher::launch(const ShardTask &task)
{
    stsim_assert(!pids_.count(task.shard),
                 "launcher: shard %" PRIu64 " already running",
                 task.shard);

    char shardSpec[48];
    std::snprintf(shardSpec, sizeof shardSpec,
                  "%" PRIu64 "/%" PRIu64, task.shard, task.shards);
    char jobsSpec[24];
    std::snprintf(jobsSpec, sizeof jobsSpec, "%u", task.workers);

    std::vector<const char *> argv = {
        runner_.c_str(),  "run",
        "--manifest",     task.manifest.c_str(),
        "--shard",        shardSpec,
        "--out",          task.outPath.c_str(),
    };
    if (task.workers) {
        argv.push_back("--jobs");
        argv.push_back(jobsSpec);
    }
    argv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0)
        stsim_fatal("launcher: fork failed (%s)", std::strerror(errno));
    if (pid == 0) {
        // Child. The dispatcher is single-threaded, so mutating the
        // environment between fork and exec is safe.
        if (task.testHangAfterFirstRecord)
            ::setenv(kTestHangEnv, "1", 1);
        ::execv(runner_.c_str(),
                const_cast<char *const *>(argv.data()));
        std::fprintf(stderr, "launcher: exec '%s' failed: %s\n",
                     runner_.c_str(), std::strerror(errno));
        ::_exit(127);
    }
    pids_.emplace(task.shard, pid);
}

std::optional<ShardExit>
LocalProcessLauncher::waitAny(std::chrono::milliseconds timeout)
{
    stsim_assert(!pids_.empty(), "launcher: waitAny with none running");
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
        for (auto it = pids_.begin(); it != pids_.end(); ++it) {
            int status = 0;
            pid_t r = ::waitpid(it->second, &status, WNOHANG);
            if (r == 0)
                continue;
            if (r < 0) {
                stsim_fatal("launcher: waitpid(%d) failed (%s)",
                            static_cast<int>(it->second),
                            std::strerror(errno));
            }
            ShardExit ex;
            ex.shard = it->first;
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                ex.success = true;
            } else if (WIFEXITED(status)) {
                ex.reason = "exit " +
                            std::to_string(WEXITSTATUS(status));
            } else if (WIFSIGNALED(status)) {
                ex.reason = "signal " +
                            std::to_string(WTERMSIG(status));
            } else {
                ex.reason = "status " + std::to_string(status);
            }
            pids_.erase(it);
            return ex;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return std::nullopt;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

void
LocalProcessLauncher::kill(std::uint64_t shard)
{
    auto it = pids_.find(shard);
    if (it == pids_.end())
        return; // already reaped: the kill raced a normal exit
    ::kill(it->second, SIGKILL);
    // The exit is reported through waitAny like any other death, so
    // the scheduler journals exactly one terminal record per attempt.
}

} // namespace dist
} // namespace stsim
