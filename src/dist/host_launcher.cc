#include "host_launcher.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"

namespace stsim
{
namespace dist
{

HostLauncher::~HostLauncher() = default;

std::uint64_t
backoffDelayMs(unsigned stage, std::uint64_t baseMs,
               std::uint64_t capMs, std::uint64_t seed)
{
    if (stage == 0 || baseMs == 0)
        return 0;
    // Capped exponential: base << (stage-1), saturating well before
    // the shift could overflow.
    unsigned shift = stage - 1 > 20 ? 20 : stage - 1;
    std::uint64_t exp = baseMs << shift;
    if (exp > capMs || (exp >> shift) != baseMs)
        exp = capMs;
    // Deterministic jitter in [0, baseMs]: FNV-1a over (seed, stage).
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(seed);
    mix(stage);
    return exp + h % (baseMs + 1);
}

std::string
describeWaitStatus(int status)
{
    if (WIFEXITED(status))
        return "exit " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "signal " + std::to_string(WTERMSIG(status));
    return "status " + std::to_string(status);
}

LocalProcessLauncher::LocalProcessLauncher(std::string runnerPath)
    : runner_(std::move(runnerPath))
{
    if (::access(runner_.c_str(), X_OK) != 0) {
        stsim_fatal("launcher: '%s' is not an executable runner (%s)",
                    runner_.c_str(), std::strerror(errno));
    }
}

std::string
LocalProcessLauncher::selfExecutable()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0) {
        stsim_fatal("launcher: cannot resolve /proc/self/exe (%s); "
                    "pass --runner PATH",
                    std::strerror(errno));
    }
    buf[n] = '\0';
    return buf;
}

void
LocalProcessLauncher::launch(const ShardTask &task)
{
    stsim_assert(!pids_.count(task.shard),
                 "launcher: shard %" PRIu64 " already running",
                 task.shard);

    char shardSpec[48];
    std::snprintf(shardSpec, sizeof shardSpec,
                  "%" PRIu64 "/%" PRIu64, task.shard, task.shards);
    char jobsSpec[24];
    std::snprintf(jobsSpec, sizeof jobsSpec, "%u", task.workers);

    std::vector<const char *> argv = {
        runner_.c_str(),  "run",
        "--manifest",     task.manifest.c_str(),
        "--shard",        shardSpec,
        "--out",          task.outPath.c_str(),
    };
    if (task.workers) {
        argv.push_back("--jobs");
        argv.push_back(jobsSpec);
    }
    argv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0)
        stsim_fatal("launcher: fork failed (%s)", std::strerror(errno));
    if (pid == 0) {
        // Child. The dispatcher is single-threaded, so mutating the
        // environment between fork and exec is safe.
        if (task.testHangAfterFirstRecord)
            ::setenv(kTestHangEnv, "1", 1);
        ::execv(runner_.c_str(),
                const_cast<char *const *>(argv.data()));
        std::fprintf(stderr, "launcher: exec '%s' failed: %s\n",
                     runner_.c_str(), std::strerror(errno));
        ::_exit(127);
    }
    pids_.emplace(task.shard, pid);
}

std::optional<ShardExit>
LocalProcessLauncher::waitAny(std::chrono::milliseconds timeout)
{
    stsim_assert(!pids_.empty(), "launcher: waitAny with none running");
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
        for (auto it = pids_.begin(); it != pids_.end(); ++it) {
            int status = 0;
            pid_t r = ::waitpid(it->second, &status, WNOHANG);
            if (r == 0)
                continue;
            if (r < 0) {
                stsim_fatal("launcher: waitpid(%d) failed (%s)",
                            static_cast<int>(it->second),
                            std::strerror(errno));
            }
            ShardExit ex;
            ex.shard = it->first;
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
                ex.success = true;
            else
                ex.reason = describeWaitStatus(status);
            pids_.erase(it);
            return ex;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return std::nullopt;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

void
LocalProcessLauncher::kill(std::uint64_t shard)
{
    auto it = pids_.find(shard);
    if (it == pids_.end())
        return; // already reaped: the kill raced a normal exit
    ::kill(it->second, SIGKILL);
    // The exit is reported through waitAny like any other death, so
    // the scheduler journals exactly one terminal record per attempt.
}

WorkerLauncher::~WorkerLauncher() = default;

LocalWorkerLauncher::LocalWorkerLauncher(std::string runnerPath)
    : runner_(std::move(runnerPath))
{
    if (::access(runner_.c_str(), X_OK) != 0) {
        stsim_fatal("fleet: '%s' is not an executable runner (%s)",
                    runner_.c_str(), std::strerror(errno));
    }
}

WorkerProcess
LocalWorkerLauncher::launch()
{
    int inPipe[2];  // parent writes jobs -> worker stdin
    int outPipe[2]; // worker stdout -> parent reads replies
    // CLOEXEC everywhere: a worker forked later must not inherit this
    // one's pipe ends, or closing our copy would never deliver EOF.
    // dup2 onto stdio below clears the flag on the child's own ends.
    if (::pipe2(inPipe, O_CLOEXEC) != 0 ||
        ::pipe2(outPipe, O_CLOEXEC) != 0)
        stsim_fatal("fleet: pipe failed (%s)", std::strerror(errno));

    pid_t pid = ::fork();
    if (pid < 0)
        stsim_fatal("fleet: fork failed (%s)", std::strerror(errno));
    if (pid == 0) {
        ::dup2(inPipe[0], STDIN_FILENO);
        ::dup2(outPipe[1], STDOUT_FILENO);
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        const char *argv[] = {runner_.c_str(), "serve-worker", nullptr};
        ::execv(runner_.c_str(), const_cast<char *const *>(argv));
        std::fprintf(stderr, "fleet: exec '%s' failed: %s\n",
                     runner_.c_str(), std::strerror(errno));
        ::_exit(127);
    }
    ::close(inPipe[0]);
    ::close(outPipe[1]);
    // Nonblocking reads so the supervisor can poll() the whole fleet;
    // job writes stay blocking (one small line, pipe never fills).
    int fl = ::fcntl(outPipe[0], F_GETFL, 0);
    ::fcntl(outPipe[0], F_SETFL, fl | O_NONBLOCK);

    WorkerProcess w;
    w.pid = pid;
    w.stdinFd = inPipe[1];
    w.stdoutFd = outPipe[0];
    return w;
}

void
LocalWorkerLauncher::kill(pid_t pid)
{
    if (pid > 0)
        ::kill(pid, SIGKILL);
}

bool
LocalWorkerLauncher::reap(pid_t pid, std::string &statusText)
{
    int status = 0;
    pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == 0)
        return false;
    if (r < 0) {
        // ECHILD would mean someone else reaped it; report it as gone.
        statusText = std::string("waitpid: ") + std::strerror(errno);
        return true;
    }
    statusText = describeWaitStatus(status);
    return true;
}

} // namespace dist
} // namespace stsim
