/**
 * @file
 * Execution substrate for the distributed dispatch subsystem: a
 * HostLauncher starts one `stsim_runner run --shard i/N` worker per
 * shard and reports their exits. The scheduler only ever talks to
 * this interface, so moving shards off-machine (ssh, a job queue) is
 * a launcher swap, not a scheduler rewrite. LocalProcessLauncher is
 * the in-tree implementation: fork/exec of the runner binary itself.
 */

#ifndef STSIM_DIST_HOST_LAUNCHER_HH
#define STSIM_DIST_HOST_LAUNCHER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include <sys/types.h>

namespace stsim
{
namespace dist
{

/**
 * Fault-injection hook honored by `stsim_runner run`: after streaming
 * (and flushing) its first result record, the worker stalls until it
 * is killed. Lets tests SIGKILL a worker that is deterministically
 * mid-shard -- some output committed, more outstanding.
 */
inline constexpr const char *kTestHangEnv =
    "STSIM_TEST_HANG_AFTER_FIRST_RECORD";

/**
 * Fault-injection hook honored by `stsim_runner serve-worker`: a job
 * whose experiment name contains this value makes the worker write a
 * torn partial reply and SIGSEGV mid-job. Lets the isolation tests
 * exercise crash containment and poison-job quarantine with a
 * deterministic killer job.
 */
inline constexpr const char *kTestCrashOnJobEnv =
    "STSIM_TEST_CRASH_ON_JOB";

/**
 * Retry/respawn backoff schedule shared by the shard scheduler and
 * the serve worker fleet: capped exponential growth from @p baseMs
 * (stage 1 = base, stage 2 = 2*base, ...) up to @p capMs, plus a
 * deterministic jitter in [0, baseMs] derived from (seed, stage) so
 * simultaneous failures do not relaunch in lockstep -- and so tests
 * can assert the exact schedule. Stage 0 means "no failures yet" and
 * returns 0.
 */
std::uint64_t backoffDelayMs(unsigned stage, std::uint64_t baseMs,
                             std::uint64_t capMs, std::uint64_t seed);

/** Human-readable wait(2) status: "exit N" / "signal N". */
std::string describeWaitStatus(int status);

/** One shard's worth of work, fully specified. */
struct ShardTask
{
    std::uint64_t shard = 0;    ///< this shard's index
    std::uint64_t shards = 1;   ///< total shard count (the N in i/N)
    std::string manifest;       ///< manifest path, readable by the host
    std::string outPath;        ///< where the worker streams its records
    unsigned workers = 0;       ///< worker threads (0 = runner default)
    bool testHangAfterFirstRecord = false; ///< sets kTestHangEnv
};

/** Terminal report for one launched shard. */
struct ShardExit
{
    std::uint64_t shard = 0;
    bool success = false;
    std::string reason; ///< "exit N" / "signal N" when !success
};

/**
 * Starts shard workers and reports their exits. Implementations are
 * driven from a single scheduler thread; no locking is required. At
 * most one worker per shard index is in flight at a time.
 */
class HostLauncher
{
  public:
    virtual ~HostLauncher();

    /** Start the worker for @p task; returns once it is running. */
    virtual void launch(const ShardTask &task) = 0;

    /**
     * Block up to @p timeout for any launched worker to finish.
     * Returns std::nullopt on timeout. Must not be called with no
     * workers running.
     */
    virtual std::optional<ShardExit>
    waitAny(std::chrono::milliseconds timeout) = 0;

    /** Forcibly terminate a running shard (straggler replacement). */
    virtual void kill(std::uint64_t shard) = 0;

    /** Number of launched-but-unreported workers. */
    virtual std::size_t running() const = 0;
};

/**
 * Runs each shard as a local `stsim_runner run --manifest M --shard
 * i/N --out TMP` subprocess. Workers inherit stderr, so their status
 * lines interleave with the dispatcher's.
 */
class LocalProcessLauncher : public HostLauncher
{
  public:
    /** @p runnerPath is the stsim_runner binary to exec. */
    explicit LocalProcessLauncher(std::string runnerPath);

    void launch(const ShardTask &task) override;
    std::optional<ShardExit>
    waitAny(std::chrono::milliseconds timeout) override;
    void kill(std::uint64_t shard) override;
    std::size_t running() const override { return pids_.size(); }

    /**
     * Path of the currently executing binary (/proc/self/exe) -- the
     * default runner for a dispatcher that is itself stsim_runner.
     */
    static std::string selfExecutable();

  private:
    std::string runner_;
    std::map<std::uint64_t, pid_t> pids_; ///< shard -> live worker
};

/**
 * Handle to one spawned serve worker: its pid plus the parent ends of
 * the stdin/stdout pipes. The stdout end is opened O_NONBLOCK so a
 * supervisor can poll(2) many workers from one thread.
 */
struct WorkerProcess
{
    pid_t pid = -1;
    int stdinFd = -1;  ///< write jobs here, one JSONL line each
    int stdoutFd = -1; ///< read hello + reply lines here (nonblocking)
};

/**
 * Spawns and reaps `stsim_runner serve-worker` processes for the
 * serve-side fleet. Same role the HostLauncher plays for shard
 * dispatch: the fleet supervisor only talks to this interface, so a
 * remote (ssh) worker launcher is a drop-in later.
 */
class WorkerLauncher
{
  public:
    virtual ~WorkerLauncher();

    /** Spawn one worker; fatal on fork/pipe failure. */
    virtual WorkerProcess launch() = 0;

    /** SIGKILL @p pid. Reaping still happens through reap(). */
    virtual void kill(pid_t pid) = 0;

    /**
     * Nonblocking waitpid on @p pid. Returns true and fills
     * @p statusText ("exit N" / "signal N") once the worker has been
     * reaped; false while it is still running.
     */
    virtual bool reap(pid_t pid, std::string &statusText) = 0;
};

/** fork/exec of `<runner> serve-worker` with stdio pipes. */
class LocalWorkerLauncher : public WorkerLauncher
{
  public:
    /** @p runnerPath is the stsim_runner binary to exec. */
    explicit LocalWorkerLauncher(std::string runnerPath);

    WorkerProcess launch() override;
    void kill(pid_t pid) override;
    bool reap(pid_t pid, std::string &statusText) override;

  private:
    std::string runner_;
};

} // namespace dist
} // namespace stsim

#endif // STSIM_DIST_HOST_LAUNCHER_HH
