/**
 * @file
 * Execution substrate for the distributed dispatch subsystem: a
 * HostLauncher starts one `stsim_runner run --shard i/N` worker per
 * shard and reports their exits. The scheduler only ever talks to
 * this interface, so moving shards off-machine (ssh, a job queue) is
 * a launcher swap, not a scheduler rewrite. LocalProcessLauncher is
 * the in-tree implementation: fork/exec of the runner binary itself.
 */

#ifndef STSIM_DIST_HOST_LAUNCHER_HH
#define STSIM_DIST_HOST_LAUNCHER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include <sys/types.h>

namespace stsim
{
namespace dist
{

/**
 * Fault-injection hook honored by `stsim_runner run`: after streaming
 * (and flushing) its first result record, the worker stalls until it
 * is killed. Lets tests SIGKILL a worker that is deterministically
 * mid-shard -- some output committed, more outstanding.
 */
inline constexpr const char *kTestHangEnv =
    "STSIM_TEST_HANG_AFTER_FIRST_RECORD";

/** One shard's worth of work, fully specified. */
struct ShardTask
{
    std::uint64_t shard = 0;    ///< this shard's index
    std::uint64_t shards = 1;   ///< total shard count (the N in i/N)
    std::string manifest;       ///< manifest path, readable by the host
    std::string outPath;        ///< where the worker streams its records
    unsigned workers = 0;       ///< worker threads (0 = runner default)
    bool testHangAfterFirstRecord = false; ///< sets kTestHangEnv
};

/** Terminal report for one launched shard. */
struct ShardExit
{
    std::uint64_t shard = 0;
    bool success = false;
    std::string reason; ///< "exit N" / "signal N" when !success
};

/**
 * Starts shard workers and reports their exits. Implementations are
 * driven from a single scheduler thread; no locking is required. At
 * most one worker per shard index is in flight at a time.
 */
class HostLauncher
{
  public:
    virtual ~HostLauncher();

    /** Start the worker for @p task; returns once it is running. */
    virtual void launch(const ShardTask &task) = 0;

    /**
     * Block up to @p timeout for any launched worker to finish.
     * Returns std::nullopt on timeout. Must not be called with no
     * workers running.
     */
    virtual std::optional<ShardExit>
    waitAny(std::chrono::milliseconds timeout) = 0;

    /** Forcibly terminate a running shard (straggler replacement). */
    virtual void kill(std::uint64_t shard) = 0;

    /** Number of launched-but-unreported workers. */
    virtual std::size_t running() const = 0;
};

/**
 * Runs each shard as a local `stsim_runner run --manifest M --shard
 * i/N --out TMP` subprocess. Workers inherit stderr, so their status
 * lines interleave with the dispatcher's.
 */
class LocalProcessLauncher : public HostLauncher
{
  public:
    /** @p runnerPath is the stsim_runner binary to exec. */
    explicit LocalProcessLauncher(std::string runnerPath);

    void launch(const ShardTask &task) override;
    std::optional<ShardExit>
    waitAny(std::chrono::milliseconds timeout) override;
    void kill(std::uint64_t shard) override;
    std::size_t running() const override { return pids_.size(); }

    /**
     * Path of the currently executing binary (/proc/self/exe) -- the
     * default runner for a dispatcher that is itself stsim_runner.
     */
    static std::string selfExecutable();

  private:
    std::string runner_;
    std::map<std::uint64_t, pid_t> pids_; ///< shard -> live worker
};

} // namespace dist
} // namespace stsim

#endif // STSIM_DIST_HOST_LAUNCHER_HH
