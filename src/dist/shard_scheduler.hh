/**
 * @file
 * Fault-tolerant shard scheduler: dispatches a manifest's shards onto
 * a HostLauncher, tracks per-shard state (pending / running / done /
 * failed) through a crash-safe journal, retries failed or straggling
 * shards, and finalizes each shard's output with an exclusive-rename
 * protocol so a re-run can never corrupt a completed shard file.
 *
 * Output protocol: a worker for shard i, attempt k streams records to
 * `<dir>/shard-i.attempt-k.part`. Only the scheduler promotes a
 * verified-complete .part to the final `<dir>/shard-i.jsonl`, via
 * link(2) -- which fails with EEXIST instead of clobbering. If the
 * final file already exists (a resumed dispatcher racing its own
 * past, or an orphaned worker that finished after a presumed-dead
 * relaunch), the new output must be byte-identical to be discarded;
 * any difference is a determinism violation and fatals.
 */

#ifndef STSIM_DIST_SHARD_SCHEDULER_HH
#define STSIM_DIST_SHARD_SCHEDULER_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/host_launcher.hh"
#include "dist/journal.hh"

namespace stsim
{
namespace dist
{

/** Everything a dispatch run needs beyond the launcher. */
struct DispatchOptions
{
    std::string manifest;      ///< job manifest (JSONL, one SimJob/line)
    std::string dir;           ///< output + journal directory
    std::uint64_t shards = 4;  ///< shard count (i % shards == i slices)
    unsigned workersPerShard = 0; ///< forwarded as the worker's --jobs

    // The scheduling knobs are journaled in the plan record so a bare
    // `resume --dir D` runs with the original dispatch's settings;
    // unset here means "dispatch default / resume from the plan".
    std::optional<unsigned> maxAttempts;   ///< failures before give-up
                                           ///< (default 3)
    std::optional<unsigned> maxConcurrent; ///< running-shard cap
                                           ///< (default 0 = all)
    /** Running longer than this gets a shard killed and retried
     *  (straggler replacement); zero disables the timeout. */
    std::optional<std::chrono::milliseconds> shardTimeout;

    // Retry backoff: a failed shard waits backoffDelayMs(failures,
    // base, cap, shard) before relaunching, so a host-level problem
    // (disk full, fork storms) is not hammered at full speed. Per-run
    // knobs, deliberately NOT journaled: the journal records what
    // happened, not how fast it was retried. Zero base = immediate.
    std::uint64_t retryBackoffBaseMs = 200;
    std::uint64_t retryBackoffCapMs = 5'000;

    // Fault-injection hooks (tests/CI only): SIGKILL this shard's
    // first attempt once it has streamed a record; optionally crash
    // the dispatcher itself right after observing that death, leaving
    // recovery entirely to `resume`.
    std::optional<std::uint64_t> testKillShard;
    bool testDieAfterKill = false;
};

class ShardScheduler
{
  public:
    ShardScheduler(DispatchOptions opts, HostLauncher &launcher);

    /**
     * Fresh dispatch: creates @p dir if needed, refuses to run if a
     * journal already exists there (that is what resume is for),
     * journals the plan, and runs every shard to completion. Returns
     * 0 once all shard files are finalized.
     */
    int dispatch();

    /**
     * Resume after a dispatcher death: replays the journal, fills
     * unset options (manifest, shards, workers) from the plan, and
     * relaunches only unfinished shards. Attempts that were running
     * when the dispatcher died are presumed dead and relaunched; the
     * exclusive-rename finalize keeps that safe even if the old
     * worker is in fact still running.
     */
    int resume();

    /** Final output basename for @p shard ("shard-3.jsonl"). */
    static std::string shardFileName(std::uint64_t shard);

    /** Attempt-scoped temporary basename ("shard-3.attempt-2.part"). */
    static std::string attemptFileName(std::uint64_t shard,
                                       unsigned attempt);

    /** The journal's path inside a dispatch directory. */
    static std::string journalPath(const std::string &dir);

    /**
     * The relaunch delay after @p failures failures of @p shard --
     * backoffDelayMs with the shard index as the jitter seed. Exposed
     * so the FakeLauncher unit test can assert the exact schedule.
     */
    static std::chrono::milliseconds
    retryDelay(std::uint64_t shard, unsigned failures,
               std::uint64_t baseMs, std::uint64_t capMs);

  private:
    struct Shard
    {
        unsigned launches = 0; ///< attempts started (incl. presumed dead)
        unsigned failures = 0; ///< observed terminal failures
        bool done = false;
        bool running = false;
        bool killRequested = false;
        std::chrono::steady_clock::time_point startedAt{};
        /// earliest next launch (retry backoff gate)
        std::chrono::steady_clock::time_point eligibleAt{};
        /// span start for "shard.attempt" (valid when traced)
        std::uint64_t traceTs = 0;
        bool traced = false;
    };

    int runLoop();
    void launchShard(std::uint64_t shard);
    void handleExit(const ShardExit &ex);
    void failShard(std::uint64_t shard, const std::string &reason);
    /** Promote a completed attempt's .part; false = retryable. */
    bool finalizeShard(std::uint64_t shard, unsigned attempt,
                       std::string &error);
    void maybeInjectKill();
    void killStragglers();
    std::string pathIn(const std::string &base) const;

    DispatchOptions opts_;
    HostLauncher &launcher_;
    std::unique_ptr<DispatchJournal> journal_;
    std::vector<Shard> shards_;
    std::deque<std::uint64_t> pending_;
    std::uint64_t jobs_ = 0;
    // Effective knobs: CLI override > journal plan > defaults.
    unsigned maxAttempts_ = 3;
    unsigned maxConcurrent_ = 0;
    std::chrono::milliseconds shardTimeout_{0};
    bool testKillIssued_ = false;
};

/** Count of non-empty lines in @p path; fatals if unreadable. */
std::uint64_t countRecords(const std::string &path);

/**
 * Content fingerprint (FNV-1a 64) of @p path; fatals if unreadable.
 * Journaled with the plan so resume can prove it is re-running the
 * same manifest, not merely one with the same path and line count.
 */
std::uint64_t manifestFingerprint(const std::string &path);

} // namespace dist
} // namespace stsim

#endif // STSIM_DIST_SHARD_SCHEDULER_HH
