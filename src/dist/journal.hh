/**
 * @file
 * Crash-safe checkpoint journal for the distributed dispatcher: an
 * append-only JSONL file (one flat serde record per line, fsynced per
 * append) recording the dispatch plan and every per-shard attempt
 * transition. `resume` replays it to learn which shards are already
 * done and how many attempts the rest have burned -- after the
 * dispatcher itself is SIGKILLed, nothing else survives.
 *
 * Record shapes (field order fixed):
 *   {"type":"plan","manifest":M,"manifestHash":H,"shards":N,
 *    "jobs":J,"workers":W,"maxAttempts":K,"maxConcurrent":C,
 *    "timeoutMs":T}
 *   {"type":"launch","shard":i,"attempt":k,"tmp":"shard-i.attempt-k.part"}
 *   {"type":"done","shard":i,"attempt":k,"out":"shard-i.jsonl"}
 *   {"type":"fail","shard":i,"attempt":k,"reason":"signal 9"}
 *
 * A "launch" with no matching terminal record means the dispatcher
 * died while that attempt ran: replay treats the attempt as presumed
 * dead (the shard is relaunched) without counting it as a failure.
 * Replay tolerates a torn final line -- the one write a crash can cut
 * mid-buffer -- and refuses anything else malformed.
 */

#ifndef STSIM_DIST_JOURNAL_HH
#define STSIM_DIST_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stsim
{
namespace dist
{

/** Replayed view of one shard's history. */
struct ShardJournalState
{
    unsigned launches = 0; ///< highest attempt number started
    unsigned failures = 0; ///< attempts with an observed terminal failure
    bool done = false;
    std::string out;       ///< final output basename once done
};

/** Replayed view of a whole journal. */
struct JournalState
{
    std::string manifest;
    std::uint64_t manifestHash = 0;
    std::uint64_t shards = 0;
    std::uint64_t jobs = 0;
    unsigned workers = 0;
    unsigned maxAttempts = 3;
    unsigned maxConcurrent = 0;
    std::uint64_t timeoutMs = 0;
    std::vector<ShardJournalState> shard; ///< size == shards

    std::size_t
    doneCount() const
    {
        std::size_t n = 0;
        for (const ShardJournalState &s : shard)
            n += s.done;
        return n;
    }
};

/**
 * Append handle on a journal file. Every append is a single write()
 * of one full line followed by fsync, so a completed append survives
 * the dispatcher dying at any instruction boundary.
 */
class DispatchJournal
{
  public:
    /** Opens (creating if needed) @p path for appending. */
    explicit DispatchJournal(const std::string &path);
    ~DispatchJournal();

    DispatchJournal(const DispatchJournal &) = delete;
    DispatchJournal &operator=(const DispatchJournal &) = delete;

    void plan(const std::string &manifest, std::uint64_t manifestHash,
              std::uint64_t shards, std::uint64_t jobs,
              unsigned workers, unsigned maxAttempts,
              unsigned maxConcurrent, std::uint64_t timeoutMs);
    void launch(std::uint64_t shard, unsigned attempt,
                const std::string &tmpBase);
    void done(std::uint64_t shard, unsigned attempt,
              const std::string &outBase);
    void fail(std::uint64_t shard, unsigned attempt,
              const std::string &reason);

    static bool exists(const std::string &path);

    /**
     * Replay @p path into a JournalState. Fatals on a missing file, a
     * missing/duplicate plan record, or corruption anywhere but a
     * torn final line (which is dropped with a warning).
     */
    static JournalState replay(const std::string &path);

  private:
    void append(const std::string &line);

    int fd_ = -1;
    std::string path_;
};

} // namespace dist
} // namespace stsim

#endif // STSIM_DIST_JOURNAL_HH
