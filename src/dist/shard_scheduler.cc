#include "shard_scheduler.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace stsim
{
namespace dist
{

namespace
{

/** Poll granularity of the scheduler loop. */
constexpr std::chrono::milliseconds kWaitSlice{50};

bool
filesIdentical(const std::string &a, const std::string &b)
{
    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    if (!fa || !fb)
        stsim_fatal("dispatch: cannot compare '%s' and '%s' (%s)",
                    a.c_str(), b.c_str(), std::strerror(errno));
    char ba[1 << 16], bb[1 << 16];
    for (;;) {
        fa.read(ba, sizeof ba);
        fb.read(bb, sizeof bb);
        if (fa.gcount() != fb.gcount())
            return false;
        if (std::memcmp(ba, bb, static_cast<std::size_t>(fa.gcount())))
            return false;
        if (fa.gcount() == 0)
            return fa.eof() == fb.eof();
    }
}

void
fsyncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0)
        return; // advisory: rename durability, not correctness
    ::fsync(fd);
    ::close(fd);
}

} // namespace

std::uint64_t
countRecords(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        stsim_fatal("dispatch: cannot read '%s' (%s)", path.c_str(),
                    std::strerror(errno));
    std::uint64_t n = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++n;
    return n;
}

std::uint64_t
manifestFingerprint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        stsim_fatal("dispatch: cannot read '%s' (%s)", path.c_str(),
                    std::strerror(errno));
    std::uint64_t h = 14695981039346656037ull; // FNV-1a 64 offset
    char buf[1 << 16];
    for (;;) {
        in.read(buf, sizeof buf);
        std::streamsize n = in.gcount();
        for (std::streamsize i = 0; i < n; ++i) {
            h ^= static_cast<unsigned char>(buf[i]);
            h *= 1099511628211ull; // FNV prime
        }
        if (n == 0)
            break;
    }
    return h;
}

ShardScheduler::ShardScheduler(DispatchOptions opts,
                               HostLauncher &launcher)
    : opts_(std::move(opts)), launcher_(launcher)
{
}

std::string
ShardScheduler::shardFileName(std::uint64_t shard)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "shard-%" PRIu64 ".jsonl", shard);
    return buf;
}

std::string
ShardScheduler::attemptFileName(std::uint64_t shard, unsigned attempt)
{
    char buf[64];
    std::snprintf(buf, sizeof buf,
                  "shard-%" PRIu64 ".attempt-%u.part", shard, attempt);
    return buf;
}

std::string
ShardScheduler::journalPath(const std::string &dir)
{
    return dir + "/journal.jsonl";
}

std::chrono::milliseconds
ShardScheduler::retryDelay(std::uint64_t shard, unsigned failures,
                           std::uint64_t baseMs, std::uint64_t capMs)
{
    return std::chrono::milliseconds(
        backoffDelayMs(failures, baseMs, capMs, shard));
}

std::string
ShardScheduler::pathIn(const std::string &base) const
{
    return opts_.dir + "/" + base;
}

int
ShardScheduler::dispatch()
{
    if (opts_.manifest.empty() || opts_.dir.empty())
        stsim_fatal("dispatch: needs a manifest and a directory");
    if (opts_.shards == 0)
        stsim_fatal("dispatch: shard count must be positive");
    jobs_ = countRecords(opts_.manifest);
    if (jobs_ == 0)
        stsim_fatal("dispatch: manifest '%s' holds no jobs",
                    opts_.manifest.c_str());
    // Journal the manifest by absolute path: resume may run from a
    // different working directory, and a relative path must not be
    // free to resolve to some other file there.
    if (char *abs = ::realpath(opts_.manifest.c_str(), nullptr)) {
        opts_.manifest = abs;
        std::free(abs);
    } else {
        stsim_fatal("dispatch: cannot resolve '%s' (%s)",
                    opts_.manifest.c_str(), std::strerror(errno));
    }
    if (opts_.shards > jobs_) {
        stsim_warn("dispatch: %" PRIu64 " shards for %" PRIu64
                   " jobs; trailing shards will be empty",
                   opts_.shards, jobs_);
    }

    if (::mkdir(opts_.dir.c_str(), 0777) != 0 && errno != EEXIST) {
        stsim_fatal("dispatch: cannot create '%s' (%s)",
                    opts_.dir.c_str(), std::strerror(errno));
    }
    const std::string jpath = journalPath(opts_.dir);
    if (DispatchJournal::exists(jpath)) {
        stsim_fatal("dispatch: '%s' already exists -- a previous "
                    "dispatch ran here; use `stsim_runner resume "
                    "--dir %s` (or remove the directory)",
                    jpath.c_str(), opts_.dir.c_str());
    }
    maxAttempts_ = opts_.maxAttempts.value_or(3);
    maxConcurrent_ = opts_.maxConcurrent.value_or(0);
    shardTimeout_ =
        opts_.shardTimeout.value_or(std::chrono::milliseconds(0));
    if (maxAttempts_ == 0)
        stsim_fatal("dispatch: max attempts must be positive");

    journal_ = std::make_unique<DispatchJournal>(jpath);
    journal_->plan(opts_.manifest, manifestFingerprint(opts_.manifest),
                   opts_.shards, jobs_, opts_.workersPerShard,
                   maxAttempts_, maxConcurrent_,
                   static_cast<std::uint64_t>(shardTimeout_.count()));

    shards_.assign(opts_.shards, Shard{});
    for (std::uint64_t i = 0; i < opts_.shards; ++i)
        pending_.push_back(i);
    return runLoop();
}

int
ShardScheduler::resume()
{
    if (opts_.dir.empty())
        stsim_fatal("resume: needs a dispatch directory");
    const std::string jpath = journalPath(opts_.dir);
    JournalState st = DispatchJournal::replay(jpath);

    opts_.manifest = st.manifest;
    opts_.shards = st.shards;
    if (!opts_.workersPerShard)
        opts_.workersPerShard = st.workers;
    // A bare resume runs with the original dispatch's scheduling
    // knobs (they are part of the plan); CLI flags still override.
    maxAttempts_ = opts_.maxAttempts.value_or(st.maxAttempts);
    maxConcurrent_ = opts_.maxConcurrent.value_or(st.maxConcurrent);
    shardTimeout_ = opts_.shardTimeout.value_or(
        std::chrono::milliseconds(st.timeoutMs));
    if (maxAttempts_ == 0)
        stsim_fatal("resume: max attempts must be positive");
    jobs_ = countRecords(opts_.manifest);
    if (jobs_ != st.jobs) {
        stsim_fatal("resume: manifest '%s' now holds %" PRIu64
                    " jobs but the journal planned %" PRIu64
                    " -- outputs would not match the journal's plan",
                    opts_.manifest.c_str(), jobs_, st.jobs);
    }
    if (manifestFingerprint(opts_.manifest) != st.manifestHash) {
        stsim_fatal("resume: manifest '%s' does not match the one "
                    "the journal planned (content fingerprint "
                    "differs) -- refusing to mix results from two "
                    "different manifests",
                    opts_.manifest.c_str());
    }

    shards_.assign(opts_.shards, Shard{});
    std::size_t presumedDead = 0;
    for (std::uint64_t i = 0; i < opts_.shards; ++i) {
        Shard &s = shards_[i];
        s.launches = st.shard[i].launches;
        s.failures = st.shard[i].failures;
        s.done = st.shard[i].done;
        if (s.done)
            continue;
        // The failure budget is cross-run state: a shard that already
        // burned every attempt must not get a bonus one per resume.
        if (s.failures >= maxAttempts_) {
            stsim_fatal("resume: shard %" PRIu64 " already failed %u "
                        "time(s) of %u allowed; pass a larger "
                        "--max-attempts to retry it anyway",
                        i, s.failures, maxAttempts_);
        }
        if (s.launches > s.failures)
            ++presumedDead; // was running when the dispatcher died
        pending_.push_back(i);
    }
    stsim_inform("stsim_runner: resume: %zu/%" PRIu64 " shards done, "
                 "%zu to run (%zu presumed dead)",
                 st.doneCount(), opts_.shards, pending_.size(),
                 presumedDead);
    journal_ = std::make_unique<DispatchJournal>(jpath);
    if (pending_.empty()) {
        stsim_inform("stsim_runner: resume: nothing to do");
        return 0;
    }
    return runLoop();
}

void
ShardScheduler::launchShard(std::uint64_t shard)
{
    Shard &s = shards_[shard];
    ++s.launches;
    const std::string tmpBase = attemptFileName(shard, s.launches);
    journal_->launch(shard, s.launches, tmpBase);

    ShardTask task;
    task.shard = shard;
    task.shards = opts_.shards;
    task.manifest = opts_.manifest;
    task.outPath = pathIn(tmpBase);
    task.workers = opts_.workersPerShard;
    task.testHangAfterFirstRecord =
        opts_.testKillShard && *opts_.testKillShard == shard &&
        s.launches == 1;
    launcher_.launch(task);
    s.running = true;
    s.killRequested = false;
    s.startedAt = std::chrono::steady_clock::now();
    // An attempt's span opens at launch and closes in handleExit --
    // two separate calls on the scheduler thread, so the pair is
    // recorded explicitly instead of via TRACE_SPAN.
    if (obs::TraceSink *sink = obs::TraceSink::current()) {
        s.traced = true;
        s.traceTs = sink->nowUs();
    } else {
        s.traced = false;
    }
}

bool
ShardScheduler::finalizeShard(std::uint64_t shard, unsigned attempt,
                              std::string &error)
{
    const std::string tmp = pathIn(attemptFileName(shard, attempt));
    const std::string finalPath = pathIn(shardFileName(shard));

    // A zero exit does not prove the output landed: verify the record
    // count against the manifest slice before promoting it.
    const std::uint64_t expect =
        jobs_ / opts_.shards + (shard < jobs_ % opts_.shards ? 1 : 0);
    const std::uint64_t got = countRecords(tmp);
    if (got != expect) {
        error = "output '" + tmp + "' holds " + std::to_string(got) +
                " of " + std::to_string(expect) + " records";
        return false;
    }

    // Exclusive rename: link(2) refuses to clobber, so a completed
    // shard file can never be corrupted by a re-run -- the one
    // invariant every retry/resume path leans on.
    if (::link(tmp.c_str(), finalPath.c_str()) == 0) {
        ::unlink(tmp.c_str());
        fsyncDir(opts_.dir);
    } else if (errno == EEXIST) {
        if (!filesIdentical(tmp, finalPath)) {
            stsim_fatal("dispatch: shard %" PRIu64 " re-ran to '%s' "
                        "but it differs from the completed '%s' -- "
                        "determinism violation, refusing to continue",
                        shard, tmp.c_str(), finalPath.c_str());
        }
        stsim_warn("dispatch: shard %" PRIu64 " already finalized; "
                   "re-run output is byte-identical, dropping it",
                   shard);
        ::unlink(tmp.c_str());
    } else {
        stsim_fatal("dispatch: cannot finalize '%s' -> '%s' (%s)",
                    tmp.c_str(), finalPath.c_str(), std::strerror(errno));
    }

    // Garbage-collect superseded attempts' partial outputs.
    for (unsigned a = 1; a < attempt; ++a)
        ::unlink(pathIn(attemptFileName(shard, a)).c_str());
    journal_->done(shard, attempt, shardFileName(shard));
    return true;
}

void
ShardScheduler::failShard(std::uint64_t shard,
                          const std::string &reason)
{
    Shard &s = shards_[shard];
    ++s.failures;
    journal_->fail(shard, s.launches, reason);
    stsim_warn("dispatch: shard %" PRIu64 " attempt %u failed: %s",
               shard, s.launches, reason.c_str());

    if (opts_.testDieAfterKill && opts_.testKillShard &&
        *opts_.testKillShard == shard && testKillIssued_) {
        // Fault injection: the dispatcher "crashes" the instant it has
        // journaled the worker's death -- no retries, no cleanup, no
        // flushing. Recovery must come entirely from `resume`.
        stsim_warn("stsim_runner: dispatch: test-die-after-kill: "
                   "simulating dispatcher crash");
        std::_Exit(3);
    }

    if (s.failures >= maxAttempts_) {
        stsim_fatal("dispatch: shard %" PRIu64 " failed %u time(s); "
                    "giving up (last: %s)",
                    shard, s.failures, reason.c_str());
    }
    // Capped exponential backoff with deterministic per-shard jitter
    // before the relaunch: retries must not hammer a struggling host,
    // and simultaneous failures must not relaunch in lockstep.
    const auto delay =
        retryDelay(shard, s.failures, opts_.retryBackoffBaseMs,
                   opts_.retryBackoffCapMs);
    s.eligibleAt = std::chrono::steady_clock::now() + delay;
    if (delay.count() > 0) {
        stsim_warn("dispatch: shard %" PRIu64 " retry in %lld ms",
                   shard, static_cast<long long>(delay.count()));
    }
    pending_.push_back(shard);
}

void
ShardScheduler::handleExit(const ShardExit &ex)
{
    Shard &s = shards_[ex.shard];
    stsim_assert(s.running, "dispatch: exit for idle shard %" PRIu64,
                 ex.shard);
    s.running = false;
    if (s.traced) {
        s.traced = false;
        if (obs::TraceSink *sink = obs::TraceSink::current()) {
            std::uint64_t now = sink->nowUs();
            sink->record("shard.attempt", s.traceTs,
                         now > s.traceTs ? now - s.traceTs : 0);
        }
    }
    if (!ex.success) {
        failShard(ex.shard, ex.reason.empty() ? "unknown" : ex.reason);
        return;
    }
    std::string error;
    if (finalizeShard(ex.shard, s.launches, error)) {
        s.done = true;
        return;
    }
    failShard(ex.shard, error);
}

void
ShardScheduler::maybeInjectKill()
{
    if (!opts_.testKillShard || testKillIssued_)
        return;
    const std::uint64_t target = *opts_.testKillShard;
    if (target >= shards_.size() || !shards_[target].running ||
        shards_[target].launches != 1) {
        return;
    }
    // Kill only once the worker is provably mid-shard: its first
    // record is flushed (the hang hook guarantees no more follow).
    struct stat st;
    const std::string tmp = pathIn(attemptFileName(target, 1));
    if (::stat(tmp.c_str(), &st) != 0 || st.st_size == 0)
        return;
    stsim_warn("dispatch: test-kill-shard: SIGKILLing shard %" PRIu64
               " mid-shard",
               target);
    launcher_.kill(target);
    testKillIssued_ = true;
}

void
ShardScheduler::killStragglers()
{
    if (shardTimeout_.count() <= 0)
        return;
    const auto now = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < shards_.size(); ++i) {
        Shard &s = shards_[i];
        if (!s.running || s.killRequested)
            continue;
        if (now - s.startedAt < shardTimeout_)
            continue;
        stsim_warn("dispatch: shard %" PRIu64 " attempt %u is a "
                   "straggler (over %lld ms); killing for retry",
                   i, s.launches,
                   static_cast<long long>(shardTimeout_.count()));
        s.killRequested = true;
        launcher_.kill(i);
        // Its death arrives through waitAny like any other failure.
    }
}

int
ShardScheduler::runLoop()
{
    while (!pending_.empty() || launcher_.running() > 0) {
        // One rotation over the pending queue: launch what is both
        // eligible (backoff elapsed) and within the concurrency cap,
        // cycle the rest to the back so a cooling-down shard cannot
        // block an eligible one behind it.
        const auto now = std::chrono::steady_clock::now();
        std::size_t scan = pending_.size();
        while (scan-- > 0 && !pending_.empty() &&
               (maxConcurrent_ == 0 ||
                launcher_.running() < maxConcurrent_)) {
            std::uint64_t shard = pending_.front();
            pending_.pop_front();
            if (now < shards_[shard].eligibleAt) {
                pending_.push_back(shard);
                continue;
            }
            launchShard(shard);
        }
        maybeInjectKill();
        // Check stragglers every iteration: a steady stream of other
        // workers' exits must not starve the timeout enforcement.
        killStragglers();
        if (launcher_.running() == 0) {
            // Everything pending is in backoff; waitAny's contract
            // forbids calling it with no workers running.
            std::this_thread::sleep_for(kWaitSlice);
            continue;
        }
        std::optional<ShardExit> ex = launcher_.waitAny(kWaitSlice);
        if (!ex)
            continue;
        handleExit(*ex);
    }

    std::size_t done = 0;
    for (const Shard &s : shards_)
        done += s.done;
    stsim_assert(done == shards_.size(),
                 "dispatch: loop ended with %zu/%zu shards done",
                 done, shards_.size());
    stsim_inform("stsim_runner: dispatch complete: %zu shard file(s) "
                 "in %s; merge with:\n"
                 "  stsim_runner merge --manifest %s --out merged.jsonl"
                 " %s/shard-*.jsonl",
                 done, opts_.dir.c_str(), opts_.manifest.c_str(),
                 opts_.dir.c_str());
    return 0;
}

} // namespace dist
} // namespace stsim
