#include "journal.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/job_serde.hh"

namespace stsim
{
namespace dist
{

namespace
{

const std::string *
fieldStr(const std::vector<serde::FlatField> &rec, const char *key)
{
    for (const serde::FlatField &f : rec)
        if (f.isString && f.key == key)
            return &f.value;
    return nullptr;
}

bool
fieldU64(const std::vector<serde::FlatField> &rec, const char *key,
         std::uint64_t &out)
{
    for (const serde::FlatField &f : rec) {
        if (!f.isString && f.key == key) {
            char *end = nullptr;
            out = std::strtoull(f.value.c_str(), &end, 10);
            return end && *end == '\0';
        }
    }
    return false;
}

} // namespace

DispatchJournal::DispatchJournal(const std::string &path) : path_(path)
{
    // Repair a torn tail before appending: a crash mid-append leaves a
    // newline-less fragment that the next append would otherwise glue
    // onto, corrupting the line for every future replay. The repair
    // must mirror replay()'s tolerance exactly: a newline-less tail
    // that still parses is a record replay accepted, so complete it
    // with the missing newline; only an unparseable fragment -- the
    // one thing replay drops -- may be truncated away.
    {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::ostringstream whole;
            whole << in.rdbuf();
            const std::string text = whole.str();
            if (!text.empty() && text.back() != '\n') {
                std::size_t nl = text.rfind('\n');
                std::size_t lineStart =
                    nl == std::string::npos ? 0 : nl + 1;
                std::vector<serde::FlatField> rec;
                if (serde::parseFlat(text.substr(lineStart), rec)) {
                    stsim_warn("journal: completing newline-less "
                               "final record of '%s'",
                               path.c_str());
                    std::ofstream fix(path, std::ios::binary |
                                                std::ios::app);
                    fix << '\n';
                    if (!fix.flush())
                        stsim_fatal("journal: cannot repair '%s' (%s)",
                                    path.c_str(),
                                    std::strerror(errno));
                } else {
                    stsim_warn("journal: truncating torn tail of "
                               "'%s' (%zu -> %zu bytes)",
                               path.c_str(), text.size(), lineStart);
                    if (::truncate(path.c_str(),
                                   static_cast<off_t>(lineStart)) !=
                        0) {
                        stsim_fatal("journal: cannot repair '%s' (%s)",
                                    path.c_str(),
                                    std::strerror(errno));
                    }
                }
            }
        }
    }
    fd_ = ::open(path.c_str(),
                 O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        stsim_fatal("journal: cannot open '%s' for appending (%s)",
                    path.c_str(), std::strerror(errno));
    }
}

DispatchJournal::~DispatchJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
DispatchJournal::append(const std::string &line)
{
    std::string buf = line;
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            stsim_fatal("journal: write to '%s' failed (%s)",
                        path_.c_str(), std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0) {
        stsim_fatal("journal: fsync of '%s' failed (%s)",
                    path_.c_str(), std::strerror(errno));
    }
}

void
DispatchJournal::plan(const std::string &manifest,
                      std::uint64_t manifestHash, std::uint64_t shards,
                      std::uint64_t jobs, unsigned workers,
                      unsigned maxAttempts, unsigned maxConcurrent,
                      std::uint64_t timeoutMs)
{
    append(serde::FlatWriter()
               .str("type", "plan")
               .str("manifest", manifest)
               .u64("manifestHash", manifestHash)
               .u64("shards", shards)
               .u64("jobs", jobs)
               .u64("workers", workers)
               .u64("maxAttempts", maxAttempts)
               .u64("maxConcurrent", maxConcurrent)
               .u64("timeoutMs", timeoutMs)
               .finish());
}

void
DispatchJournal::launch(std::uint64_t shard, unsigned attempt,
                        const std::string &tmpBase)
{
    append(serde::FlatWriter()
               .str("type", "launch")
               .u64("shard", shard)
               .u64("attempt", attempt)
               .str("tmp", tmpBase)
               .finish());
}

void
DispatchJournal::done(std::uint64_t shard, unsigned attempt,
                      const std::string &outBase)
{
    append(serde::FlatWriter()
               .str("type", "done")
               .u64("shard", shard)
               .u64("attempt", attempt)
               .str("out", outBase)
               .finish());
}

void
DispatchJournal::fail(std::uint64_t shard, unsigned attempt,
                      const std::string &reason)
{
    append(serde::FlatWriter()
               .str("type", "fail")
               .u64("shard", shard)
               .u64("attempt", attempt)
               .str("reason", reason)
               .finish());
}

bool
DispatchJournal::exists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

JournalState
DispatchJournal::replay(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        stsim_fatal("journal: cannot read '%s' (%s)", path.c_str(),
                    std::strerror(errno));
    std::ostringstream whole;
    whole << in.rdbuf();
    const std::string text = whole.str();

    JournalState st;
    bool sawPlan = false;
    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        const bool torn = nl == std::string::npos;
        std::string line =
            text.substr(pos, torn ? std::string::npos : nl - pos);
        pos = torn ? text.size() : nl + 1;
        ++lineNo;
        if (line.empty())
            continue;

        std::vector<serde::FlatField> rec;
        if (!serde::parseFlat(line, rec)) {
            // The only line a crash can cut short is the final,
            // newline-less append; anything else unparseable is real
            // corruption.
            if (torn) {
                stsim_warn("journal: dropping torn trailing line %zu "
                           "of '%s'",
                           lineNo, path.c_str());
                break;
            }
            stsim_fatal("journal: '%s' is corrupt at line %zu",
                        path.c_str(), lineNo);
        }

        const std::string *type = fieldStr(rec, "type");
        if (!type)
            stsim_fatal("journal: '%s' line %zu has no type",
                        path.c_str(), lineNo);

        if (*type == "plan") {
            if (sawPlan)
                stsim_fatal("journal: '%s' has two plan records",
                            path.c_str());
            sawPlan = true;
            const std::string *m = fieldStr(rec, "manifest");
            std::uint64_t workers = 0, maxAttempts = 0;
            std::uint64_t maxConcurrent = 0;
            if (!m || !fieldU64(rec, "manifestHash", st.manifestHash) ||
                !fieldU64(rec, "shards", st.shards) ||
                !fieldU64(rec, "jobs", st.jobs) ||
                !fieldU64(rec, "workers", workers) ||
                !fieldU64(rec, "maxAttempts", maxAttempts) ||
                !fieldU64(rec, "maxConcurrent", maxConcurrent) ||
                !fieldU64(rec, "timeoutMs", st.timeoutMs) ||
                st.shards == 0 || maxAttempts == 0) {
                stsim_fatal("journal: '%s' has a malformed plan",
                            path.c_str());
            }
            st.manifest = *m;
            st.workers = static_cast<unsigned>(workers);
            st.maxAttempts = static_cast<unsigned>(maxAttempts);
            st.maxConcurrent = static_cast<unsigned>(maxConcurrent);
            st.shard.assign(st.shards, ShardJournalState{});
            continue;
        }

        if (!sawPlan)
            stsim_fatal("journal: '%s' line %zu precedes the plan",
                        path.c_str(), lineNo);
        std::uint64_t shard = 0, attempt = 0;
        if (!fieldU64(rec, "shard", shard) ||
            !fieldU64(rec, "attempt", attempt) || shard >= st.shards) {
            stsim_fatal("journal: '%s' line %zu has a bad shard record",
                        path.c_str(), lineNo);
        }
        ShardJournalState &s = st.shard[shard];
        if (*type == "launch") {
            s.launches = std::max(
                s.launches, static_cast<unsigned>(attempt));
        } else if (*type == "fail") {
            ++s.failures;
        } else if (*type == "done") {
            const std::string *out = fieldStr(rec, "out");
            if (!out)
                stsim_fatal("journal: '%s' line %zu: done without out",
                            path.c_str(), lineNo);
            s.done = true;
            s.out = *out;
        } else {
            stsim_fatal("journal: '%s' line %zu has unknown type '%s'",
                        path.c_str(), lineNo, type->c_str());
        }
    }
    if (!sawPlan)
        stsim_fatal("journal: '%s' holds no plan record", path.c_str());
    return st;
}

} // namespace dist
} // namespace stsim
