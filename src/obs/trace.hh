/**
 * @file
 * Span tracer emitting Chrome trace_event JSON (loadable in Perfetto
 * and chrome://tracing). Spans are recorded into fixed-capacity
 * per-thread ring buffers owned by the installed TraceSink; a full
 * ring drops new events and counts the drops instead of blocking or
 * reallocating. The TRACE_SPAN(...) RAII macro costs one relaxed
 * atomic load when no sink is installed -- the disabled path does no
 * clock reads, no allocation, nothing.
 *
 * Events are "complete" events (ph:"X") with microsecond ts/dur
 * relative to sink construction; properly nested spans on a thread
 * render as a flame graph without any begin/end pairing.
 *
 * Lifetime contract: install(sink) publishes, install(nullptr)
 * retracts. The sink must outlive every span recorded against it;
 * the intended shape (and what every binary here does) is
 * install-in-main, run, install(nullptr) after all workers joined,
 * write the file, destroy.
 */

#ifndef STSIM_OBS_TRACE_HH
#define STSIM_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stsim
{
namespace obs
{

/** One recorded complete-span event. */
struct TraceEvent
{
    const char *name;  ///< static string (the TRACE_SPAN literal)
    std::uint64_t ts;  ///< microseconds since trace start
    std::uint64_t dur; ///< microseconds
    std::uint32_t tid; ///< small per-thread id assigned at first record
};

class TraceSink
{
  public:
    /** @param ringCapacity events retained per thread before dropping. */
    explicit TraceSink(std::size_t ringCapacity = 1 << 14);
    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Publish / retract the process-wide sink. */
    static void install(TraceSink *sink);

    static TraceSink *current()
    {
        return g_.load(std::memory_order_relaxed);
    }

    /** Microseconds since this sink was constructed (steady clock). */
    std::uint64_t nowUs() const;

    /**
     * Record one complete event on the calling thread's ring. Drops
     * (with accounting) when the ring is full. `name` must be a
     * static string.
     */
    void record(const char *name, std::uint64_t ts, std::uint64_t dur);

    /** Events dropped across all rings because a ring was full. */
    std::uint64_t dropped() const;

    /** Events currently retained across all rings. */
    std::uint64_t recorded() const;

    /**
     * Serialize everything recorded so far as one Chrome trace JSON
     * document: {"traceEvents":[...complete events...],
     * "otherData":{"dropped":N}}. Safe to call while other threads
     * record (each ring is copied under its own lock).
     */
    std::string flushJson() const;

    /** flushJson() to a file; false (with errno intact) on failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Ring
    {
        std::mutex mu;
        std::vector<TraceEvent> events; ///< append-only up to capacity
        std::uint64_t dropped = 0;
        std::uint32_t tid = 0;
    };

    Ring *ringForThisThread();

    static std::atomic<TraceSink *> g_;

    const std::size_t ringCapacity_;
    std::chrono::steady_clock::time_point start_;

    mutable std::mutex mu_; ///< guards rings_ registration + iteration
    std::vector<std::shared_ptr<Ring>> rings_;
    std::uint32_t nextTid_ = 1;
    std::uint64_t gen_;
};

/**
 * RAII span: measures construction-to-destruction against the sink
 * installed at construction time. When no sink is installed the
 * constructor is a single relaxed load and the destructor a null
 * check.
 */
class SpanGuard
{
  public:
    explicit SpanGuard(const char *name) : sink_(TraceSink::current())
    {
        if (sink_) {
            name_ = name;
            start_ = sink_->nowUs();
        }
    }

    ~SpanGuard()
    {
        if (sink_)
            sink_->record(name_, start_, sink_->nowUs() - start_);
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    TraceSink *sink_;
    const char *name_ = nullptr;
    std::uint64_t start_ = 0;
};

#define STSIM_OBS_CONCAT2(a, b) a##b
#define STSIM_OBS_CONCAT(a, b) STSIM_OBS_CONCAT2(a, b)

/**
 * Trace the enclosing scope as a named span. `name` must be a string
 * literal (it is retained by pointer, not copied).
 */
#define TRACE_SPAN(name) \
    ::stsim::obs::SpanGuard STSIM_OBS_CONCAT(stsimTraceSpan_, \
                                             __LINE__)(name)

} // namespace obs
} // namespace stsim

#endif // STSIM_OBS_TRACE_HH
