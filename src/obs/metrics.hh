/**
 * @file
 * Process-wide metrics registry: lock-free counters and gauges plus
 * fixed-bucket log-scale histograms, registered by name and
 * snapshot-able as one flat JSONL record or a text exposition dump.
 *
 * Design constraints, in order:
 *  - the observation path (inc/set/observe) is wait-free -- relaxed
 *    atomics only, no locks, no allocation -- so instrumentation at
 *    job/request granularity can never perturb simulation results or
 *    measurably slow the engine;
 *  - registration (`Registry::counter(...)` etc.) takes a mutex and
 *    returns a stable reference, so call sites register once into a
 *    `static` local and observe forever;
 *  - the snapshot is a *flat* record (string / unsigned-integer
 *    fields, no nesting) in the exact FlatWriter shape the rest of
 *    the stack already parses, so `{"op":"metrics"}` replies go
 *    through `serde::parseFlat` like every other wire line.
 *
 * This library is deliberately self-contained (no stsim headers): the
 * core engine links it, not the other way around.
 */

#ifndef STSIM_OBS_METRICS_HH
#define STSIM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace stsim
{
namespace obs
{

/** Monotonically increasing event count. Wait-free. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Instantaneous signed level (queue depth, idle workers). Wait-free. */
class Gauge
{
  public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }

    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed-bucket log-scale histogram over non-negative integer samples
 * (latencies in microseconds, sizes in bytes). Bucket 0 holds the
 * value 0; bucket i (1..64) holds values in [2^(i-1), 2^i - 1] --
 * i.e. the bucket index is std::bit_width(value). Quantiles are
 * estimated as the upper bound of the bucket where the cumulative
 * count crosses the rank, so p50 <= p90 <= p99 always holds and the
 * estimate is within 2x of the true sample.
 *
 * The raw bucket counts travel in snapshots (sparse "idx:count"
 * string), so a client can diff two snapshots and compute quantiles
 * over just its own measurement window.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 65;

    void observe(std::uint64_t v)
    {
        buckets_[bucketFor(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Copy of the bucket counts (relaxed; a torn-across-buckets view
     *  during concurrent observation is acceptable for monitoring). */
    std::array<std::uint64_t, kBuckets> bucketCounts() const;

    /** Quantile estimate over the live counts; 0 when empty. */
    std::uint64_t quantile(double q) const;

    /** Which bucket a sample lands in: 0 for 0, else bit_width(v). */
    static int bucketFor(std::uint64_t v);

    /** Largest value bucket i can hold (0, 1, 3, 7, ..., 2^i - 1). */
    static std::uint64_t bucketUpperBound(int i);

    /**
     * Quantile over an explicit bucket-count array (the snapshot-diff
     * path: subtract two snapshots' buckets, then ask for p99 of the
     * window). Returns 0 when the counts are all zero.
     */
    static std::uint64_t quantileFromCounts(
        const std::array<std::uint64_t, kBuckets> &counts, double q);

    /** Sparse "idx:count,idx:count" encoding of nonzero buckets. */
    static std::string sparseString(
        const std::array<std::uint64_t, kBuckets> &counts);

    /** Inverse of sparseString; false on malformed input. */
    static bool parseSparse(std::string_view s,
                            std::array<std::uint64_t, kBuckets> &out);

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * The process-wide named-metric registry. Lookup-or-create is
 * mutex-guarded and returns a reference that stays valid for the
 * process lifetime; the returned objects are the wait-free
 * instruments above. Names are free-form but the convention is
 * dotted lowercase ("serve.queue_wait_us").
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * One flat JSONL record of the whole registry: counters as
     * "c.<name>", gauges as "g.<name>" (string field, signed),
     * histograms as "h.<name>.count/.sum/.p50/.p90/.p99" plus the
     * sparse "h.<name>.buckets" string. Keys are emitted in sorted
     * order so snapshots diff cleanly.
     */
    std::string snapshotJson() const;

    /** Human-oriented exposition dump, one metric per line. */
    std::string textDump() const;

    /**
     * Append the snapshot fields to a caller-provided flat-record
     * line under construction ("{...already-open object"). The
     * append target is a raw string because obs cannot depend on
     * serde's FlatWriter; the field syntax is kept byte-compatible
     * with it (same escaping needs never arise: keys and values here
     * are [A-Za-z0-9._:,-] only).
     */
    void appendFlatFields(std::string &line, bool &first) const;

  private:
    Registry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace obs
} // namespace stsim

#endif // STSIM_OBS_METRICS_HH
