#include "obs/metrics.hh"

#include <bit>
#include <cstdio>
#include <limits>

namespace stsim
{
namespace obs
{

namespace
{

std::string
u64Str(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
i64Str(std::int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
}

/** Append one `"key":value` field to a flat record under construction. */
void
field(std::string &line, bool &first, const std::string &key,
      const std::string &value, bool quoted)
{
    if (!first)
        line += ',';
    first = false;
    line += '"';
    line += key;
    line += "\":";
    if (quoted) {
        line += '"';
        line += value;
        line += '"';
    } else {
        line += value;
    }
}

} // namespace

std::array<std::uint64_t, Histogram::kBuckets>
Histogram::bucketCounts() const
{
    std::array<std::uint64_t, kBuckets> out;
    for (int i = 0; i < kBuckets; ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

int
Histogram::bucketFor(std::uint64_t v)
{
    return v == 0 ? 0 : std::bit_width(v);
}

std::uint64_t
Histogram::bucketUpperBound(int i)
{
    if (i <= 0)
        return 0;
    if (i >= 64)
        return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
}

std::uint64_t
Histogram::quantile(double q) const
{
    return quantileFromCounts(bucketCounts(), q);
}

std::uint64_t
Histogram::quantileFromCounts(
    const std::array<std::uint64_t, kBuckets> &counts, double q)
{
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-quantile sample, 1-based; q=0 means the minimum.
    std::uint64_t rank = static_cast<std::uint64_t>(q * double(total - 1)) + 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += counts[i];
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1);
}

std::string
Histogram::sparseString(const std::array<std::uint64_t, kBuckets> &counts)
{
    std::string out;
    for (int i = 0; i < kBuckets; ++i) {
        if (counts[i] == 0)
            continue;
        if (!out.empty())
            out += ',';
        out += u64Str(static_cast<std::uint64_t>(i));
        out += ':';
        out += u64Str(counts[i]);
    }
    return out;
}

bool
Histogram::parseSparse(std::string_view s,
                       std::array<std::uint64_t, kBuckets> &out)
{
    out.fill(0);
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t colon = s.find(':', pos);
        if (colon == std::string_view::npos)
            return false;
        std::size_t comma = s.find(',', colon + 1);
        std::size_t end = comma == std::string_view::npos ? s.size() : comma;
        std::uint64_t idx = 0, cnt = 0;
        auto parseU64 = [&](std::string_view tok, std::uint64_t &v) {
            if (tok.empty())
                return false;
            v = 0;
            for (char c : tok) {
                if (c < '0' || c > '9')
                    return false;
                v = v * 10 + static_cast<std::uint64_t>(c - '0');
            }
            return true;
        };
        if (!parseU64(s.substr(pos, colon - pos), idx) ||
            !parseU64(s.substr(colon + 1, end - colon - 1), cnt)) {
            return false;
        }
        if (idx >= static_cast<std::uint64_t>(kBuckets))
            return false;
        out[static_cast<std::size_t>(idx)] = cnt;
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
Registry::appendFlatFields(std::string &line, bool &first) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_)
        field(line, first, "c." + name, u64Str(c->value()), false);
    // Gauges can go negative, and the flat-record integer lexer is
    // unsigned-only, so gauges travel as quoted signed decimals.
    for (const auto &[name, g] : gauges_)
        field(line, first, "g." + name, i64Str(g->value()), true);
    for (const auto &[name, h] : histograms_) {
        auto counts = h->bucketCounts();
        field(line, first, "h." + name + ".count", u64Str(h->count()),
              false);
        field(line, first, "h." + name + ".sum", u64Str(h->sum()), false);
        field(line, first, "h." + name + ".p50",
              u64Str(Histogram::quantileFromCounts(counts, 0.50)), false);
        field(line, first, "h." + name + ".p90",
              u64Str(Histogram::quantileFromCounts(counts, 0.90)), false);
        field(line, first, "h." + name + ".p99",
              u64Str(Histogram::quantileFromCounts(counts, 0.99)), false);
        field(line, first, "h." + name + ".buckets",
              Histogram::sparseString(counts), true);
    }
}

std::string
Registry::snapshotJson() const
{
    std::string line = "{";
    bool first = true;
    appendFlatFields(line, first);
    line += '}';
    return line;
}

std::string
Registry::textDump() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto &[name, c] : counters_) {
        out += "counter " + name + " " + u64Str(c->value()) + "\n";
    }
    for (const auto &[name, g] : gauges_) {
        out += "gauge " + name + " " + i64Str(g->value()) + "\n";
    }
    for (const auto &[name, h] : histograms_) {
        auto counts = h->bucketCounts();
        out += "histogram " + name + " count=" + u64Str(h->count()) +
               " sum=" + u64Str(h->sum()) +
               " p50=" + u64Str(Histogram::quantileFromCounts(counts, 0.50)) +
               " p90=" + u64Str(Histogram::quantileFromCounts(counts, 0.90)) +
               " p99=" + u64Str(Histogram::quantileFromCounts(counts, 0.99)) +
               "\n";
    }
    return out;
}

} // namespace obs
} // namespace stsim
