#include "obs/trace.hh"

#include <cstdio>

namespace stsim
{
namespace obs
{

std::atomic<TraceSink *> TraceSink::g_{nullptr};

namespace
{

/**
 * Distinguishes sinks across install/destroy cycles so a thread-local
 * ring cached against a dead sink is never replayed into a new sink
 * that happens to reuse the same address.
 */
std::atomic<std::uint64_t> g_sinkGen{0};

struct TlsSlot
{
    std::uint64_t gen = 0;
    void *raw = nullptr; ///< the Ring; owned by the sink's rings_ list
};

thread_local TlsSlot tlsSlot;

/** Minimal JSON string escaping; span names are identifiers anyway. */
void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
}

std::string
u64Str(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

TraceSink::TraceSink(std::size_t ringCapacity)
    : ringCapacity_(ringCapacity ? ringCapacity : 1),
      start_(std::chrono::steady_clock::now()),
      gen_(g_sinkGen.fetch_add(1, std::memory_order_relaxed) + 1)
{
}

TraceSink::~TraceSink()
{
    TraceSink *self = this;
    g_.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

void
TraceSink::install(TraceSink *sink)
{
    g_.store(sink, std::memory_order_release);
}

std::uint64_t
TraceSink::nowUs() const
{
    auto d = std::chrono::steady_clock::now() - start_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

TraceSink::Ring *
TraceSink::ringForThisThread()
{
    if (tlsSlot.gen != gen_ || !tlsSlot.raw) {
        auto ring = std::make_shared<Ring>();
        ring->events.reserve(ringCapacity_);
        {
            std::lock_guard<std::mutex> lock(mu_);
            ring->tid = nextTid_++;
            rings_.push_back(ring);
        }
        tlsSlot.gen = gen_;
        tlsSlot.raw = ring.get();
    }
    return static_cast<Ring *>(tlsSlot.raw);
}

void
TraceSink::record(const char *name, std::uint64_t ts, std::uint64_t dur)
{
    Ring *ring = ringForThisThread();
    std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->events.size() >= ringCapacity_) {
        ++ring->dropped;
        return;
    }
    ring->events.push_back(TraceEvent{name, ts, dur, ring->tid});
}

std::uint64_t
TraceSink::dropped() const
{
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> rlock(ring->mu);
        total += ring->dropped;
    }
    return total;
}

std::uint64_t
TraceSink::recorded() const
{
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> rlock(ring->mu);
        total += ring->events.size();
    }
    return total;
}

std::string
TraceSink::flushJson() const
{
    std::vector<std::shared_ptr<Ring>> rings;
    {
        std::lock_guard<std::mutex> lock(mu_);
        rings = rings_;
    }
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    std::uint64_t droppedTotal = 0;
    for (const auto &ring : rings) {
        std::vector<TraceEvent> events;
        {
            std::lock_guard<std::mutex> rlock(ring->mu);
            events = ring->events;
            droppedTotal += ring->dropped;
        }
        for (const TraceEvent &e : events) {
            if (!first)
                out += ',';
            first = false;
            out += "{\"name\":\"";
            appendEscaped(out, e.name);
            out += "\",\"ph\":\"X\",\"ts\":";
            out += u64Str(e.ts);
            out += ",\"dur\":";
            out += u64Str(e.dur);
            out += ",\"pid\":1,\"tid\":";
            out += u64Str(e.tid);
            out += '}';
        }
    }
    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":";
    out += u64Str(droppedTotal);
    out += "}}";
    return out;
}

bool
TraceSink::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = flushJson();
    bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    ok = ok && std::fputc('\n', f) != EOF;
    if (std::fclose(f) != 0)
        ok = false;
    return ok;
}

} // namespace obs
} // namespace stsim
