#include "controller.hh"

#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

SpeculationController::SpeculationController(const SpecControlConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.mode == SpecControlMode::PipelineGating)
        stsim_assert(cfg_.gatingThreshold >= 1, "bad gating threshold");

    for (std::size_t i = 0; i < kNumLevels; ++i) {
        actFetch_[i] = BandwidthLevel::Full;
        actDecode_[i] = BandwidthLevel::Full;
    }
    if (cfg_.mode == SpecControlMode::Selective) {
        for (std::size_t i = 0; i < kNumLevels; ++i) {
            const ThrottleAction &a =
                cfg_.policy.action(static_cast<ConfLevel>(i));
            actFetch_[i] = a.fetch;
            actDecode_[i] = a.decode;
            actNoSelect_[i] = a.noSelect;
            actDecodeRestricted_[i] = a.decode != BandwidthLevel::Full;
        }
    }

    // Sized for the deepest realistic in-flight branch population; the
    // structures grow on demand so these are not correctness bounds.
    buf_.resize(256);
    bufMask_ = buf_.size() - 1;
    posRing_.init(2048, kInvalidPos);
}

std::uint64_t
SpeculationController::findLive(InstSeq seq) const
{
    std::uint64_t pos = posRing_[seq];
    if (pos >= head_ && pos < tail_) {
        const Tracked &t = at(pos);
        if (t.seq == seq && t.live)
            return pos;
    }
    return kInvalidPos;
}

void
SpeculationController::indexSeq(InstSeq seq, std::uint64_t pos)
{
    // kInvalidPos (the vacant cell value) and any stale position both
    // fail the [head_, tail_) / live checks, so only a genuinely live
    // aliasing entry triggers growth.
    posRing_.insert(
        seq, pos,
        [this](std::uint64_t p) {
            if (p >= head_ && p < tail_) {
                const Tracked &t = at(p);
                if (t.live)
                    return t.seq;
            }
            return kInvalidSeq;
        },
        [this](auto &&fn) {
            for (std::uint64_t p = head_; p < tail_; ++p) {
                const Tracked &t = at(p);
                if (t.live)
                    fn(t.seq, p);
            }
        });
}

void
SpeculationController::rebuildBuffer(std::size_t min_capacity)
{
    std::size_t cap = buf_.size();
    while (cap < min_capacity)
        cap <<= 1;
    std::vector<Tracked> fresh(cap);
    std::uint64_t n = 0;
    std::deque<std::uint64_t> nosel, dec;
    const std::uint64_t mask = cap - 1;
    for (std::uint64_t p = head_; p < tail_; ++p) {
        const Tracked &t = at(p);
        if (!t.live)
            continue;
        fresh[n & mask] = t;
        auto li = static_cast<std::size_t>(t.lvl);
        if (actNoSelect_[li])
            nosel.push_back(n);
        if (actDecodeRestricted_[li])
            dec.push_back(n);
        ++n;
    }
    buf_ = std::move(fresh);
    bufMask_ = mask;
    head_ = 0;
    tail_ = n;
    noSelectQ_ = std::move(nosel);
    decodeQ_ = std::move(dec);
    // Stale posRing_ cells cannot validate against relocated entries
    // unless they happen to point at the right one, so a plain
    // re-index of the live set is sufficient.
    for (std::uint64_t p = head_; p < tail_; ++p)
        indexSeq(at(p).seq, p);
}

void
SpeculationController::refreshLevels()
{
    switch (cfg_.mode) {
      case SpecControlMode::None:
        return;
      case SpecControlMode::PipelineGating:
        fetchLevel_ = lowCount_ > cfg_.gatingThreshold
                          ? BandwidthLevel::Stall
                          : BandwidthLevel::Full;
        return;
      case SpecControlMode::Selective: {
        BandwidthLevel f = BandwidthLevel::Full;
        BandwidthLevel d = BandwidthLevel::Full;
        for (std::size_t i = 0; i < kNumLevels; ++i) {
            if (!levelCount_[i])
                continue;
            f = maxRestriction(f, actFetch_[i]);
            d = maxRestriction(d, actDecode_[i]);
        }
        fetchLevel_ = f;
        decodeLevel_ = d;
        return;
      }
    }
}

void
SpeculationController::refreshBarriers()
{
    if (cfg_.mode != SpecControlMode::Selective)
        return;
    while (!noSelectQ_.empty()) {
        std::uint64_t p = noSelectQ_.front();
        if (p >= head_ && at(p).live)
            break;
        noSelectQ_.pop_front();
    }
    while (!decodeQ_.empty()) {
        std::uint64_t p = decodeQ_.front();
        if (p >= head_ && at(p).live)
            break;
        decodeQ_.pop_front();
    }
    noSelectBarrier_ =
        noSelectQ_.empty() ? kInvalidSeq : at(noSelectQ_.front()).seq;
    decodeBarrier_ =
        decodeQ_.empty() ? kInvalidSeq : at(decodeQ_.front()).seq;
}

void
SpeculationController::onCondBranchFetched(InstSeq seq, ConfLevel lvl)
{
    if (cfg_.mode == SpecControlMode::None)
        return;
    stsim_dbg_assert(tail_ == head_ || at(tail_ - 1).seq < seq,
                 "branches must arrive in fetch order");
    if (tail_ - head_ == buf_.size())
        rebuildBuffer(liveCount_ + 1);

    std::uint64_t pos = tail_++;
    at(pos) = Tracked{seq, lvl, true};
    indexSeq(seq, pos);

    auto li = static_cast<std::size_t>(lvl);
    ++levelCount_[li];
    ++liveCount_;
    if (isLowConfidence(lvl))
        ++lowCount_;
    if (actNoSelect_[li])
        noSelectQ_.push_back(pos);
    if (actDecodeRestricted_[li])
        decodeQ_.push_back(pos);

    refreshLevels();
    refreshBarriers();
#ifndef NDEBUG
    crossCheck();
#endif
}

void
SpeculationController::onBranchResolved(InstSeq seq)
{
    if (cfg_.mode == SpecControlMode::None)
        return;
    std::uint64_t pos = findLive(seq);
    if (pos == kInvalidPos)
        return; // not a tracked branch (or already squashed)

    Tracked &t = at(pos);
    t.live = false;
    auto li = static_cast<std::size_t>(t.lvl);
    --levelCount_[li];
    --liveCount_;
    if (isLowConfidence(t.lvl))
        --lowCount_;

    // Keep the window compact from the old end. The young end must
    // NOT retreat here: the barrier deques hold positions, and a
    // retreating tail would let the next fetch reuse a position a
    // stale deque entry still points at. Tombstones at the back are
    // reclaimed by squashes (which trim the deques by position) or by
    // the occupancy-driven rebuild.
    while (head_ < tail_ && !at(head_).live)
        ++head_;

    refreshLevels();
    refreshBarriers();
#ifndef NDEBUG
    crossCheck();
#endif
}

void
SpeculationController::squashYoungerThan(InstSeq seq)
{
    if (cfg_.mode == SpecControlMode::None)
        return;
    while (tail_ > head_ && at(tail_ - 1).seq > seq) {
        const Tracked &t = at(tail_ - 1);
        if (t.live) {
            auto li = static_cast<std::size_t>(t.lvl);
            --levelCount_[li];
            --liveCount_;
            if (isLowConfidence(t.lvl))
                --lowCount_;
        }
        --tail_;
    }
    while (!noSelectQ_.empty() && noSelectQ_.back() >= tail_)
        noSelectQ_.pop_back();
    while (!decodeQ_.empty() && decodeQ_.back() >= tail_)
        decodeQ_.pop_back();

    refreshLevels();
    refreshBarriers();
#ifndef NDEBUG
    crossCheck();
#endif
}

void
SpeculationController::saveState(serde::StateWriter &w) const
{
    w.begin("controller");
    // Only the live tracked branches are state; tombstones, buffer
    // geometry and deque positions are reconstructed by replaying the
    // inserts in fetch order (the same path rebuildBuffer compacts
    // through), which restores every derived quantity exactly.
    std::vector<std::uint64_t> seq, lvl;
    for (std::uint64_t p = head_; p < tail_; ++p) {
        const Tracked &t = at(p);
        if (!t.live)
            continue;
        seq.push_back(t.seq);
        lvl.push_back(static_cast<std::uint64_t>(t.lvl));
    }
    w.u64Vec("seq", seq);
    w.u64Vec("lvl", lvl);
    w.u64("fetch_gated_cycles", fetchGatedCycles_);
    w.u64("decode_gated_cycles", decodeGatedCycles_);
    w.end("controller");
}

void
SpeculationController::loadState(serde::StateReader &r)
{
    r.begin("controller");
    std::vector<std::uint64_t> seq = r.u64Vec("seq");
    std::vector<std::uint64_t> lvl = r.u64Vec("lvl");
    if (seq.size() != lvl.size())
        stsim_fatal("state: controller seq/lvl length mismatch "
                    "(%zu vs %zu)",
                    seq.size(), lvl.size());

    // Back to the constructed state, then replay the live set.
    buf_.assign(256, Tracked{});
    bufMask_ = buf_.size() - 1;
    head_ = tail_ = 0;
    posRing_.init(2048, kInvalidPos);
    for (auto &c : levelCount_)
        c = 0;
    lowCount_ = liveCount_ = 0;
    noSelectQ_.clear();
    decodeQ_.clear();
    fetchLevel_ = decodeLevel_ = BandwidthLevel::Full;
    noSelectBarrier_ = decodeBarrier_ = kInvalidSeq;
    refreshLevels();

    for (std::size_t i = 0; i < seq.size(); ++i) {
        if (lvl[i] >= kNumLevels)
            stsim_fatal("state: controller entry %zu has bad "
                        "confidence level %llu",
                        i,
                        static_cast<unsigned long long>(lvl[i]));
        onCondBranchFetched(seq[i], static_cast<ConfLevel>(lvl[i]));
    }
    if (cfg_.mode == SpecControlMode::None && !seq.empty())
        stsim_fatal("state: controller snapshot has %zu tracked "
                    "branches but this config has no speculation "
                    "control",
                    seq.size());

    fetchGatedCycles_ = r.u64("fetch_gated_cycles");
    decodeGatedCycles_ = r.u64("decode_gated_cycles");
    r.end("controller");
}

#ifndef NDEBUG
void
SpeculationController::crossCheck() const
{
    // Reference semantics: a full rescan of the outstanding set, as
    // the pre-incremental controller computed on every event.
    BandwidthLevel f = BandwidthLevel::Full;
    BandwidthLevel d = BandwidthLevel::Full;
    InstSeq nosel = kInvalidSeq;
    InstSeq decb = kInvalidSeq;
    unsigned low = 0, live = 0;

    for (std::uint64_t p = head_; p < tail_; ++p) {
        const Tracked &t = at(p);
        if (!t.live)
            continue;
        ++live;
        if (isLowConfidence(t.lvl))
            ++low;
        if (cfg_.mode != SpecControlMode::Selective)
            continue;
        const ThrottleAction &a = cfg_.policy.action(t.lvl);
        f = maxRestriction(f, a.fetch);
        d = maxRestriction(d, a.decode);
        if (a.noSelect && nosel == kInvalidSeq)
            nosel = t.seq;
        if (a.decode != BandwidthLevel::Full && decb == kInvalidSeq)
            decb = t.seq;
    }
    if (cfg_.mode == SpecControlMode::PipelineGating)
        f = low > cfg_.gatingThreshold ? BandwidthLevel::Stall
                                       : BandwidthLevel::Full;

    stsim_assert(live == liveCount_ && low == lowCount_,
                 "incremental controller counter drift");
    stsim_assert(f == fetchLevel_ && d == decodeLevel_,
                 "incremental controller level drift");
    stsim_assert(nosel == noSelectBarrier_ && decb == decodeBarrier_,
                 "incremental controller barrier drift");
}
#endif

} // namespace stsim
