#include "controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stsim
{

SpeculationController::SpeculationController(const SpecControlConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.mode == SpecControlMode::PipelineGating)
        stsim_assert(cfg_.gatingThreshold >= 1, "bad gating threshold");
}

void
SpeculationController::onCondBranchFetched(InstSeq seq, ConfLevel lvl)
{
    if (cfg_.mode == SpecControlMode::None)
        return;
    stsim_assert(tracked_.empty() || tracked_.back().seq < seq,
                 "branches must arrive in fetch order");
    tracked_.push_back({seq, lvl});
    if (isLowConfidence(lvl))
        ++lowCount_;
    recompute();
}

void
SpeculationController::onBranchResolved(InstSeq seq)
{
    if (cfg_.mode == SpecControlMode::None)
        return;
    auto it = std::find_if(tracked_.begin(), tracked_.end(),
                           [seq](const Tracked &t) {
                               return t.seq == seq;
                           });
    if (it == tracked_.end())
        return; // not a tracked branch (or already squashed)
    if (isLowConfidence(it->lvl))
        --lowCount_;
    tracked_.erase(it);
    recompute();
}

void
SpeculationController::squashYoungerThan(InstSeq seq)
{
    if (cfg_.mode == SpecControlMode::None)
        return;
    while (!tracked_.empty() && tracked_.back().seq > seq) {
        if (isLowConfidence(tracked_.back().lvl))
            --lowCount_;
        tracked_.pop_back();
    }
    recompute();
}

void
SpeculationController::recompute()
{
    fetchLevel_ = BandwidthLevel::Full;
    decodeLevel_ = BandwidthLevel::Full;
    noSelectBarrier_ = kInvalidSeq;
    decodeBarrier_ = kInvalidSeq;

    switch (cfg_.mode) {
      case SpecControlMode::None:
        return;
      case SpecControlMode::PipelineGating:
        if (lowCount_ > cfg_.gatingThreshold)
            fetchLevel_ = BandwidthLevel::Stall;
        return;
      case SpecControlMode::Selective:
        for (const Tracked &t : tracked_) {
            const ThrottleAction &a = cfg_.policy.action(t.lvl);
            fetchLevel_ = maxRestriction(fetchLevel_, a.fetch);
            decodeLevel_ = maxRestriction(decodeLevel_, a.decode);
            if (a.noSelect && noSelectBarrier_ == kInvalidSeq)
                noSelectBarrier_ = t.seq; // oldest such branch
            if (a.decode != BandwidthLevel::Full &&
                decodeBarrier_ == kInvalidSeq) {
                decodeBarrier_ = t.seq;
            }
        }
        return;
    }
}

} // namespace stsim
