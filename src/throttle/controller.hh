/**
 * @file
 * Speculation controller: tracks outstanding low-confidence branches
 * and turns a ThrottlePolicy (Selective Throttling) or a gating
 * threshold (Pipeline Gating) into per-cycle fetch/decode gating
 * decisions and the selection-throttling barrier.
 */

#ifndef STSIM_THROTTLE_CONTROLLER_HH
#define STSIM_THROTTLE_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/seq_ring.hh"
#include "common/types.hh"
#include "confidence/estimator.hh"
#include "throttle/policy.hh"

namespace stsim
{

/** Which speculation-control mechanism is active. */
enum class SpecControlMode : std::uint8_t
{
    None,            ///< baseline: no speculation control
    Selective,       ///< the paper's Selective Throttling
    PipelineGating,  ///< Manne et al.: stall fetch while M > threshold
};

/** Controller configuration. */
struct SpecControlConfig
{
    SpecControlMode mode = SpecControlMode::None;
    ThrottlePolicy policy;        ///< Selective mode only
    unsigned gatingThreshold = 2; ///< PipelineGating mode only
};

/**
 * Tracks every unresolved conditional branch that was assigned a
 * confidence level at fetch and derives the currently active throttle
 * state.
 *
 * Selective mode: the active fetch/decode restriction is the
 * element-wise most restrictive action over all outstanding LC/VLC
 * branches, which realizes §4.2's monotonic-upgrade rule (a younger
 * LC/VLC branch can only tighten the throttle; resolutions release
 * it). The selection-throttling barrier is the oldest outstanding
 * branch whose action carries no-select: window entries younger than
 * the barrier must not raise their selection request.
 *
 * PipelineGating mode: fetch is fully gated while the number of
 * outstanding low-confidence (LC/VLC) branches exceeds the gating
 * threshold (paper configuration: JRS estimator, threshold 2).
 *
 * The control state is maintained incrementally: per-confidence-level
 * outstanding counts give the active bandwidth levels in O(levels)
 * per event, the barriers come from per-action deques of tracked-entry
 * positions (cleaned lazily, amortized O(1)), and resolution finds its
 * entry through a seq-indexed ring instead of a linear walk. A full
 * rescan over the outstanding set -- the reference semantics -- is
 * kept behind !NDEBUG and cross-checked after every mutation.
 */
class SpeculationController
{
  public:
    explicit SpeculationController(const SpecControlConfig &cfg);

    /** A conditional branch with confidence @p lvl entered the pipe. */
    void onCondBranchFetched(InstSeq seq, ConfLevel lvl);

    /** Branch @p seq resolved (executed); releases its heuristic. */
    void onBranchResolved(InstSeq seq);

    /** Squash: drop tracked branches younger than @p seq. */
    void squashYoungerThan(InstSeq seq);

    /** May fetch do work this cycle? */
    bool
    fetchActive(Cycle cycle) const
    {
        return bandwidthActive(fetchLevel_, cycle);
    }

    /** May decode do work this cycle? */
    bool
    decodeActive(Cycle cycle) const
    {
        return bandwidthActive(decodeLevel_, cycle);
    }

    /**
     * Selection-throttling barrier: window entries with seq strictly
     * greater than this are not selectable. kInvalidSeq when no
     * no-select heuristic is active (all entries selectable).
     */
    InstSeq noSelectBarrier() const { return noSelectBarrier_; }

    /**
     * Decode-throttling barrier: the decode gate applies only to
     * instructions younger than the oldest branch that triggered a
     * decode restriction -- the trigger itself (and everything older)
     * must drain, or it could never resolve and release the gate.
     * kInvalidSeq when decode is unrestricted.
     */
    InstSeq decodeBarrier() const { return decodeBarrier_; }

    /** Current fetch restriction level (Selective mode). */
    BandwidthLevel fetchLevel() const { return fetchLevel_; }

    /** Current decode restriction level (Selective mode). */
    BandwidthLevel decodeLevel() const { return decodeLevel_; }

    /** Outstanding tracked branches (diagnostics). */
    std::size_t outstanding() const { return liveCount_; }

    /** Outstanding LC/VLC branches (Pipeline Gating's M). */
    unsigned lowConfOutstanding() const { return lowCount_; }

    const SpecControlConfig &config() const { return cfg_; }

    /// @name Statistics
    /// @{
    Counter fetchGatedCycles() const { return fetchGatedCycles_; }
    Counter decodeGatedCycles() const { return decodeGatedCycles_; }
    /** Called by the core once per cycle to accumulate gating stats. */
    void
    tickStats(Cycle cycle)
    {
        if (!fetchActive(cycle))
            ++fetchGatedCycles_;
        if (!decodeActive(cycle))
            ++decodeGatedCycles_;
    }
    /// @}

    /**
     * Checkpoint the outstanding-branch set and gating counters. Load
     * replays the live branches in fetch order through
     * onCondBranchFetched, so every incremental structure (counts,
     * barrier deques, position ring, cached levels) is rebuilt through
     * the same code the live path uses -- and re-validated by the
     * !NDEBUG cross-check.
     */
    void saveState(serde::StateWriter &w) const;
    void loadState(serde::StateReader &r);

  private:
    /** Number of confidence levels (VHC, HC, LC, VLC). */
    static constexpr std::size_t kNumLevels = 4;

    /** One tracked branch in the position ring buffer. */
    struct Tracked
    {
        InstSeq seq;
        ConfLevel lvl;
        bool live; ///< false once resolved (tombstone)
    };

    Tracked &at(std::uint64_t pos) { return buf_[pos & bufMask_]; }
    const Tracked &
    at(std::uint64_t pos) const
    {
        return buf_[pos & bufMask_];
    }

    /** Position of the live entry for @p seq, or kInvalidPos. */
    std::uint64_t findLive(InstSeq seq) const;

    /** Re-derive fetchLevel_/decodeLevel_ from the counters (O(1)). */
    void refreshLevels();

    /** Drop dead fronts of the barrier deques; recache barriers. */
    void refreshBarriers();

    /** Compact live entries into a (possibly larger) fresh buffer. */
    void rebuildBuffer(std::size_t min_capacity);

    /** Publish seq -> pos; grows the ring on a live collision. */
    void indexSeq(InstSeq seq, std::uint64_t pos);

#ifndef NDEBUG
    /** Reference full-rescan recomputation, asserted equal. */
    void crossCheck() const;
#endif

    static constexpr std::uint64_t kInvalidPos =
        ~static_cast<std::uint64_t>(0);

    SpecControlConfig cfg_;

    // Tracked branches: a circular buffer addressed by monotone
    // position; [head_, tail_) is the (tombstone-bearing) window.
    std::vector<Tracked> buf_;
    std::uint64_t bufMask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;

    // seq -> position through the shared grow-on-collision ring,
    // validated against the entry's own seq (same exact-ring pattern
    // as Core's seqSlot_).
    SeqRing<std::uint64_t> posRing_;

    // Incremental state.
    unsigned levelCount_[kNumLevels] = {0, 0, 0, 0};
    unsigned lowCount_ = 0;
    unsigned liveCount_ = 0;
    std::deque<std::uint64_t> noSelectQ_; ///< positions, fetch order
    std::deque<std::uint64_t> decodeQ_;   ///< positions, fetch order

    // Per-level policy actions, resolved at construction.
    BandwidthLevel actFetch_[kNumLevels];
    BandwidthLevel actDecode_[kNumLevels];
    bool actNoSelect_[kNumLevels] = {false, false, false, false};
    bool actDecodeRestricted_[kNumLevels] = {false, false, false,
                                             false};

    // Cached outputs.
    BandwidthLevel fetchLevel_ = BandwidthLevel::Full;
    BandwidthLevel decodeLevel_ = BandwidthLevel::Full;
    InstSeq noSelectBarrier_ = kInvalidSeq;
    InstSeq decodeBarrier_ = kInvalidSeq;

    Counter fetchGatedCycles_ = 0;
    Counter decodeGatedCycles_ = 0;
};

} // namespace stsim

#endif // STSIM_THROTTLE_CONTROLLER_HH
