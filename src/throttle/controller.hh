/**
 * @file
 * Speculation controller: tracks outstanding low-confidence branches
 * and turns a ThrottlePolicy (Selective Throttling) or a gating
 * threshold (Pipeline Gating) into per-cycle fetch/decode gating
 * decisions and the selection-throttling barrier.
 */

#ifndef STSIM_THROTTLE_CONTROLLER_HH
#define STSIM_THROTTLE_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "confidence/estimator.hh"
#include "throttle/policy.hh"

namespace stsim
{

/** Which speculation-control mechanism is active. */
enum class SpecControlMode : std::uint8_t
{
    None,            ///< baseline: no speculation control
    Selective,       ///< the paper's Selective Throttling
    PipelineGating,  ///< Manne et al.: stall fetch while M > threshold
};

/** Controller configuration. */
struct SpecControlConfig
{
    SpecControlMode mode = SpecControlMode::None;
    ThrottlePolicy policy;        ///< Selective mode only
    unsigned gatingThreshold = 2; ///< PipelineGating mode only
};

/**
 * Tracks every unresolved conditional branch that was assigned a
 * confidence level at fetch and derives the currently active throttle
 * state.
 *
 * Selective mode: the active fetch/decode restriction is the
 * element-wise most restrictive action over all outstanding LC/VLC
 * branches, which realizes §4.2's monotonic-upgrade rule (a younger
 * LC/VLC branch can only tighten the throttle; resolutions release
 * it). The selection-throttling barrier is the oldest outstanding
 * branch whose action carries no-select: window entries younger than
 * the barrier must not raise their selection request.
 *
 * PipelineGating mode: fetch is fully gated while the number of
 * outstanding low-confidence (LC/VLC) branches exceeds the gating
 * threshold (paper configuration: JRS estimator, threshold 2).
 */
class SpeculationController
{
  public:
    explicit SpeculationController(const SpecControlConfig &cfg);

    /** A conditional branch with confidence @p lvl entered the pipe. */
    void onCondBranchFetched(InstSeq seq, ConfLevel lvl);

    /** Branch @p seq resolved (executed); releases its heuristic. */
    void onBranchResolved(InstSeq seq);

    /** Squash: drop tracked branches younger than @p seq. */
    void squashYoungerThan(InstSeq seq);

    /** May fetch do work this cycle? */
    bool
    fetchActive(Cycle cycle) const
    {
        return bandwidthActive(fetchLevel_, cycle);
    }

    /** May decode do work this cycle? */
    bool
    decodeActive(Cycle cycle) const
    {
        return bandwidthActive(decodeLevel_, cycle);
    }

    /**
     * Selection-throttling barrier: window entries with seq strictly
     * greater than this are not selectable. kInvalidSeq when no
     * no-select heuristic is active (all entries selectable).
     */
    InstSeq noSelectBarrier() const { return noSelectBarrier_; }

    /**
     * Decode-throttling barrier: the decode gate applies only to
     * instructions younger than the oldest branch that triggered a
     * decode restriction -- the trigger itself (and everything older)
     * must drain, or it could never resolve and release the gate.
     * kInvalidSeq when decode is unrestricted.
     */
    InstSeq decodeBarrier() const { return decodeBarrier_; }

    /** Current fetch restriction level (Selective mode). */
    BandwidthLevel fetchLevel() const { return fetchLevel_; }

    /** Current decode restriction level (Selective mode). */
    BandwidthLevel decodeLevel() const { return decodeLevel_; }

    /** Outstanding tracked branches (diagnostics). */
    std::size_t outstanding() const { return tracked_.size(); }

    /** Outstanding LC/VLC branches (Pipeline Gating's M). */
    unsigned lowConfOutstanding() const { return lowCount_; }

    const SpecControlConfig &config() const { return cfg_; }

    /// @name Statistics
    /// @{
    Counter fetchGatedCycles() const { return fetchGatedCycles_; }
    Counter decodeGatedCycles() const { return decodeGatedCycles_; }
    /** Called by the core once per cycle to accumulate gating stats. */
    void
    tickStats(Cycle cycle)
    {
        if (!fetchActive(cycle))
            ++fetchGatedCycles_;
        if (!decodeActive(cycle))
            ++decodeGatedCycles_;
    }
    /// @}

  private:
    void recompute();

    struct Tracked
    {
        InstSeq seq;
        ConfLevel lvl;
    };

    SpecControlConfig cfg_;
    std::vector<Tracked> tracked_; // ordered by seq (fetch order)
    unsigned lowCount_ = 0;
    BandwidthLevel fetchLevel_ = BandwidthLevel::Full;
    BandwidthLevel decodeLevel_ = BandwidthLevel::Full;
    InstSeq noSelectBarrier_ = kInvalidSeq;
    InstSeq decodeBarrier_ = kInvalidSeq;
    Counter fetchGatedCycles_ = 0;
    Counter decodeGatedCycles_ = 0;
};

} // namespace stsim

#endif // STSIM_THROTTLE_CONTROLLER_HH
