#include "policy.hh"

#include "common/logging.hh"

namespace stsim
{

const char *
bandwidthLevelName(BandwidthLevel lvl)
{
    switch (lvl) {
      case BandwidthLevel::Full: return "1/1";
      case BandwidthLevel::Half: return "1/2";
      case BandwidthLevel::Quarter: return "1/4";
      case BandwidthLevel::Stall: return "0";
    }
    return "?";
}

ThrottlePolicy
ThrottlePolicy::make(std::string name, ThrottleAction lc,
                     ThrottleAction vlc)
{
    ThrottlePolicy p;
    p.name = std::move(name);
    p.byLevel[static_cast<std::size_t>(ConfLevel::LC)] = lc;
    p.byLevel[static_cast<std::size_t>(ConfLevel::VLC)] = vlc;
    return p;
}

namespace
{

constexpr BandwidthLevel F = BandwidthLevel::Full;
constexpr BandwidthLevel H = BandwidthLevel::Half;
constexpr BandwidthLevel Q = BandwidthLevel::Quarter;
constexpr BandwidthLevel S = BandwidthLevel::Stall;

/** {fetch, decode, noSelect} shorthand. */
ThrottleAction
act(BandwidthLevel fetch, BandwidthLevel decode = F,
    bool no_select = false)
{
    return ThrottleAction{fetch, decode, no_select};
}

} // namespace

ThrottlePolicy
ThrottlePolicy::byName(const std::string &name)
{
    // Figure 3: fetch throttling only.
    if (name == "A1")
        return make(name, act(H), act(H));
    if (name == "A2")
        return make(name, act(H), act(Q));
    if (name == "A3")
        return make(name, act(H), act(S));
    if (name == "A4")
        return make(name, act(Q), act(Q));
    if (name == "A5")
        return make(name, act(Q), act(S));
    if (name == "A6")
        return make(name, act(S), act(S));

    // Figure 4: decode throttling; fetch always stalls on VLC.
    if (name == "B1")
        return make(name, act(F, H), act(S));
    if (name == "B2")
        return make(name, act(F, Q), act(S));
    if (name == "B3")
        return make(name, act(F, S), act(S));
    if (name == "B4")
        return make(name, act(H, H), act(S));
    if (name == "B5")
        return make(name, act(H, Q), act(S));
    if (name == "B6")
        return make(name, act(H, S), act(S));
    if (name == "B7")
        return make(name, act(Q, Q), act(S));
    if (name == "B8")
        return make(name, act(Q, S), act(S));

    // Figure 5: selection throttling added to the Figure 3/4 winners.
    if (name == "C1") // = A5
        return make(name, act(Q), act(S));
    if (name == "C2") // = A5 + no-select on LC (the headline config)
        return make(name, act(Q, F, true), act(S));
    if (name == "C3") // = B5
        return make(name, act(H, Q), act(S));
    if (name == "C4")
        return make(name, act(H, Q, true), act(S));
    if (name == "C5") // = B7
        return make(name, act(Q, Q), act(S));
    if (name == "C6")
        return make(name, act(Q, Q, true), act(S));

    if (name == "none" || name == "baseline")
        return ThrottlePolicy{};

    stsim_fatal("unknown throttle policy '%s'", name.c_str());
}

const std::vector<std::string> &
ThrottlePolicy::experimentNames()
{
    static const std::vector<std::string> names = {
        "A1", "A2", "A3", "A4", "A5", "A6",
        "B1", "B2", "B3", "B4", "B5", "B6", "B7", "B8",
        "C1", "C2", "C3", "C4", "C5", "C6",
    };
    return names;
}

} // namespace stsim
