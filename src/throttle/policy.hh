/**
 * @file
 * Selective Throttling policy descriptions (§4.1/§4.2): which
 * power-aware heuristic each confidence level triggers.
 */

#ifndef STSIM_THROTTLE_POLICY_HH
#define STSIM_THROTTLE_POLICY_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "confidence/estimator.hh"

namespace stsim
{

/**
 * Bandwidth restriction applied to an in-order stage, ordered from
 * least to most restrictive. Half/Quarter alternate full-activity
 * cycles with stalled cycles (§4.1: "eight instructions are fetched in
 * a given cycle and zero instructions are fetched in the next").
 */
enum class BandwidthLevel : std::uint8_t
{
    Full,    ///< no restriction
    Half,    ///< active every 2nd cycle
    Quarter, ///< active every 4th cycle
    Stall,   ///< fully gated
};

/** Short display name ("1/1", "1/2", "1/4", "0"). */
const char *bandwidthLevelName(BandwidthLevel lvl);

/** True when the stage may do work this @p cycle under @p lvl. */
inline bool
bandwidthActive(BandwidthLevel lvl, Cycle cycle)
{
    switch (lvl) {
      case BandwidthLevel::Full: return true;
      case BandwidthLevel::Half: return (cycle & 1) == 0;
      case BandwidthLevel::Quarter: return (cycle & 3) == 0;
      case BandwidthLevel::Stall: return false;
    }
    return true;
}

/** The more restrictive of two levels. */
inline BandwidthLevel
maxRestriction(BandwidthLevel a, BandwidthLevel b)
{
    return a > b ? a : b;
}

/** The set of heuristics one confidence level triggers. */
struct ThrottleAction
{
    BandwidthLevel fetch = BandwidthLevel::Full;
    BandwidthLevel decode = BandwidthLevel::Full;
    bool noSelect = false; ///< selection throttling of dependents

    bool
    isNull() const
    {
        return fetch == BandwidthLevel::Full &&
               decode == BandwidthLevel::Full && !noSelect;
    }
};

/**
 * A Selective Throttling policy: one ThrottleAction per confidence
 * level. VHC/HC are conventionally null; LC/VLC carry the heuristics.
 */
struct ThrottlePolicy
{
    std::string name = "none";

    /** Indexed by static_cast<size_t>(ConfLevel). */
    std::array<ThrottleAction, 4> byLevel{};

    const ThrottleAction &
    action(ConfLevel lvl) const
    {
        return byLevel[static_cast<std::size_t>(lvl)];
    }

    /** True when no level triggers anything (baseline). */
    bool
    isNull() const
    {
        for (const auto &a : byLevel)
            if (!a.isNull())
                return false;
        return true;
    }

    /** Convenience builder: assign the LC and VLC actions. */
    static ThrottlePolicy make(std::string name, ThrottleAction lc,
                               ThrottleAction vlc);

    /**
     * The paper's named experiments: A1..A6 (Figure 3), B1..B8
     * (Figure 4), C1..C6 (Figure 5). Pipeline Gating (A7/B9/C7) is a
     * separate mechanism, not a ThrottlePolicy. Fatals on an unknown
     * name.
     */
    static ThrottlePolicy byName(const std::string &name);

    /** All named experiment policies, in paper order. */
    static const std::vector<std::string> &experimentNames();
};

} // namespace stsim

#endif // STSIM_THROTTLE_POLICY_HH
