/**
 * @file
 * Perfect (oracle) confidence estimator: labels every prediction VLC
 * when it will mispredict and VHC otherwise. Provides the upper bound
 * on what confidence-driven throttling could achieve.
 */

#ifndef STSIM_CONFIDENCE_PERFECT_HH
#define STSIM_CONFIDENCE_PERFECT_HH

#include "confidence/estimator.hh"

namespace stsim
{

/** Oracle estimator; zero hardware cost, perfect SPEC and PVN. */
class PerfectEstimator : public ConfidenceEstimator
{
  public:
    /** Non-virtual estimate; the devirtualized fetch-stage entry. */
    ConfLevel
    estimateFast(Addr /*pc*/, std::uint64_t /*hist*/,
                 const DirectionPredictor::Prediction & /*dir*/,
                 bool oracle_correct)
    {
        return oracle_correct ? ConfLevel::VHC : ConfLevel::VLC;
    }

    ConfLevel
    estimate(Addr pc, std::uint64_t hist,
             const DirectionPredictor::Prediction &dir,
             bool oracle_correct) override
    {
        return estimateFast(pc, hist, dir, oracle_correct);
    }

    void update(Addr /*pc*/, std::uint64_t /*hist*/,
                bool /*correct*/) override
    {
    }

    std::size_t sizeBytes() const override { return 0; }
};

} // namespace stsim

#endif // STSIM_CONFIDENCE_PERFECT_HH
