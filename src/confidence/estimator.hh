/**
 * @file
 * Branch-confidence estimation interface with the paper's four-level
 * categorization (§4.2).
 */

#ifndef STSIM_CONFIDENCE_ESTIMATOR_HH
#define STSIM_CONFIDENCE_ESTIMATOR_HH

#include <cstddef>
#include <cstdint>

#include "bpred/direction_predictor.hh"
#include "common/types.hh"

namespace stsim
{

/**
 * Confidence assigned to a branch prediction, ordered from most to
 * least confident. LC and VLC are the "low confidence" levels that
 * trigger throttling heuristics.
 */
enum class ConfLevel : std::uint8_t
{
    VHC, ///< very-high confidence
    HC,  ///< high confidence
    LC,  ///< low confidence
    VLC, ///< very-low confidence
};

/** Short display name of a confidence level. */
const char *confLevelName(ConfLevel lvl);

/** True for the levels that trigger power-aware heuristics. */
constexpr bool
isLowConfidence(ConfLevel lvl)
{
    return lvl == ConfLevel::LC || lvl == ConfLevel::VLC;
}

/**
 * Abstract confidence estimator. estimate() is called at prediction
 * time; update() at branch resolution with whether the direction
 * prediction was correct.
 */
class ConfidenceEstimator
{
  public:
    virtual ~ConfidenceEstimator() = default;

    /**
     * Classify the prediction for the branch at @p pc.
     *
     * @param pc Branch address.
     * @param hist Global history at prediction time.
     * @param dir The direction predictor's raw output (for fallback
     *            schemes that inspect the saturating counter).
     * @param oracle_correct Whether the prediction will turn out
     *            correct; only the perfect estimator may consult this.
     */
    virtual ConfLevel estimate(Addr pc, std::uint64_t hist,
                               const DirectionPredictor::Prediction &dir,
                               bool oracle_correct) = 0;

    /** Train with the resolved prediction correctness. */
    virtual void update(Addr pc, std::uint64_t hist, bool correct) = 0;

    /** Hardware budget in bytes (Figure 7 sizing). */
    virtual std::size_t sizeBytes() const = 0;

    /**
     * Checkpoint estimator tables (see core/state_serde.hh). The
     * defaults write/expect an empty section -- right for stateless
     * estimators (the oracle); table-backed ones override both.
     */
    virtual void saveState(serde::StateWriter &w) const;
    virtual void loadState(serde::StateReader &r);
};

} // namespace stsim

#endif // STSIM_CONFIDENCE_ESTIMATOR_HH
