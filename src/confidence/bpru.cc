#include "bpru.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

BpruEstimator::BpruEstimator(std::size_t size_bytes, const Params &params)
    : sizeBytes_(size_bytes),
      params_(params)
{
    std::size_t entries = size_bytes / 2; // ~2 bytes: tag + 3-bit ctr
    if (!isPowerOf2(entries))
        stsim_fatal("BPRU size %zu B yields non-power-of-2 entries",
                    size_bytes);
    indexBits_ = floorLog2(entries);
    stsim_assert(params_.missInc >= 1 && params_.correctDec >= 1,
                 "degenerate BPRU update rule");
    stsim_assert(params_.allocValue <= 7, "allocValue out of range");
    table_.resize(entries);
}

std::size_t
BpruEstimator::index(Addr pc, std::uint64_t hist) const
{
    // History-sensitive indexing: mispredictions cluster in specific
    // (branch, history) contexts, so folding global history into the
    // index raises both SPEC and PVN (the role value-prediction
    // context plays in the original BPRU).
    return static_cast<std::size_t>(((pc >> 2) ^ hist) &
                                    lowMask(indexBits_));
}

std::uint32_t
BpruEstimator::tagOf(Addr pc) const
{
    return static_cast<std::uint32_t>((pc >> (2 + indexBits_)) &
                                      lowMask(params_.tagBits));
}

ConfLevel
BpruEstimator::levelFromCounter(unsigned value)
{
    if (value <= 1)
        return ConfLevel::VHC;
    if (value <= 3)
        return ConfLevel::HC;
    if (value <= 5)
        return ConfLevel::LC;
    return ConfLevel::VLC;
}

ConfLevel
BpruEstimator::estimateFast(Addr pc, std::uint64_t hist,
                            const DirectionPredictor::Prediction &dir,
                            bool /*oracle_correct*/)
{
    ++lookups_;
    const Entry &e = table_[index(pc, hist)];
    if (e.valid && e.tag == tagOf(pc)) {
        ++hits_;
        return levelFromCounter(e.counter);
    }
    // Table miss: fall back to the underlying branch predictor's
    // saturating counter (§4.3). Weakly taken / weakly not-taken ⇒ LC;
    // strongly biased counters ⇒ HC.
    return dir.weak() ? ConfLevel::LC : ConfLevel::HC;
}

void
BpruEstimator::update(Addr pc, std::uint64_t hist, bool correct)
{
    Entry &e = table_[index(pc, hist)];
    if (!e.valid || e.tag != tagOf(pc)) {
        // Allocate on update so the estimator learns the branch.
        e.valid = true;
        e.tag = tagOf(pc);
        e.counter = static_cast<std::uint8_t>(params_.allocValue);
    }
    if (correct) {
        unsigned dec = params_.correctDec;
        e.counter = static_cast<std::uint8_t>(
            e.counter > dec ? e.counter - dec : 0);
    } else {
        unsigned v = e.counter + params_.missInc;
        e.counter = static_cast<std::uint8_t>(v > 7 ? 7 : v);
    }
}

void
BpruEstimator::saveState(serde::StateWriter &w) const
{
    w.begin("confidence");
    std::vector<std::uint64_t> valid(table_.size());
    std::vector<std::uint64_t> tag(table_.size());
    std::vector<std::uint64_t> counter(table_.size());
    for (std::size_t i = 0; i < table_.size(); ++i) {
        valid[i] = table_[i].valid ? 1 : 0;
        tag[i] = table_[i].tag;
        counter[i] = table_[i].counter;
    }
    w.u64Vec("valid", valid);
    w.u64Vec("tag", tag);
    w.u64Vec("counter", counter);
    w.u64("lookups", lookups_);
    w.u64("hits", hits_);
    w.end("confidence");
}

void
BpruEstimator::loadState(serde::StateReader &r)
{
    r.begin("confidence");
    std::vector<std::uint64_t> valid = r.u64Vec("valid");
    std::vector<std::uint64_t> tag = r.u64Vec("tag");
    std::vector<std::uint64_t> counter = r.u64Vec("counter");
    if (valid.size() != table_.size())
        stsim_fatal("state: BPRU table size mismatch (snapshot %zu, "
                    "configured %zu)",
                    valid.size(), table_.size());
    for (std::size_t i = 0; i < table_.size(); ++i) {
        table_[i].valid = valid[i] != 0;
        table_[i].tag = static_cast<std::uint32_t>(tag[i]);
        table_[i].counter = static_cast<std::uint8_t>(counter[i]);
    }
    lookups_ = r.u64("lookups");
    hits_ = r.u64("hits");
    r.end("confidence");
}

} // namespace stsim
