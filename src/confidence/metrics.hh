/**
 * @file
 * Confidence-estimator quality metrics, after Grunwald et al. (ISCA'98):
 * SPEC (coverage of mispredictions by the low-confidence label) and
 * PVN (precision of the low-confidence label).
 */

#ifndef STSIM_CONFIDENCE_METRICS_HH
#define STSIM_CONFIDENCE_METRICS_HH

#include <array>

#include "common/types.hh"
#include "confidence/estimator.hh"
#include "core/state_serde.hh"

namespace stsim
{

/**
 * Streaming confusion counts between confidence labels and prediction
 * outcomes. SPEC = fraction of incorrect predictions labeled low
 * confidence; PVN = fraction of low-confidence labels that turn out
 * incorrect.
 */
class ConfMetrics
{
  public:
    /** Record one resolved branch: its label and prediction outcome. */
    void
    record(ConfLevel lvl, bool correct)
    {
        auto i = static_cast<std::size_t>(lvl);
        if (correct)
            ++correctByLevel_[i];
        else
            ++missByLevel_[i];
    }

    /** Branches labeled LC or VLC. */
    Counter
    lowCount() const
    {
        return count(ConfLevel::LC) + count(ConfLevel::VLC);
    }

    /** Total resolved branches recorded. */
    Counter
    total() const
    {
        Counter t = 0;
        for (std::size_t i = 0; i < 4; ++i)
            t += correctByLevel_[i] + missByLevel_[i];
        return t;
    }

    /** Total mispredictions recorded. */
    Counter
    misses() const
    {
        Counter t = 0;
        for (std::size_t i = 0; i < 4; ++i)
            t += missByLevel_[i];
        return t;
    }

    /** SPEC: P(labeled low | mispredicted). */
    double
    spec() const
    {
        Counter m = misses();
        if (m == 0)
            return 0.0;
        Counter low_miss = missByLevel_[2] + missByLevel_[3];
        return static_cast<double>(low_miss) / m;
    }

    /** PVN: P(mispredicted | labeled low). */
    double
    pvn() const
    {
        Counter low = lowCount();
        if (low == 0)
            return 0.0;
        Counter low_miss = missByLevel_[2] + missByLevel_[3];
        return static_cast<double>(low_miss) / low;
    }

    /** Branches labeled with @p lvl. */
    Counter
    count(ConfLevel lvl) const
    {
        auto i = static_cast<std::size_t>(lvl);
        return correctByLevel_[i] + missByLevel_[i];
    }

    /** Mispredicted branches labeled with @p lvl. */
    Counter
    missCount(ConfLevel lvl) const
    {
        return missByLevel_[static_cast<std::size_t>(lvl)];
    }

    void
    saveState(serde::StateWriter &w) const
    {
        w.begin("conf_metrics");
        w.u64Array("correct_by_level", correctByLevel_.data(), 4);
        w.u64Array("miss_by_level", missByLevel_.data(), 4);
        w.end("conf_metrics");
    }

    void
    loadState(serde::StateReader &r)
    {
        r.begin("conf_metrics");
        std::vector<std::uint64_t> c = r.u64Vec("correct_by_level");
        std::vector<std::uint64_t> m = r.u64Vec("miss_by_level");
        for (std::size_t i = 0; i < 4; ++i) {
            correctByLevel_[i] = c.at(i);
            missByLevel_[i] = m.at(i);
        }
        r.end("conf_metrics");
    }

  private:
    std::array<Counter, 4> correctByLevel_{};
    std::array<Counter, 4> missByLevel_{};
};

} // namespace stsim

#endif // STSIM_CONFIDENCE_METRICS_HH
