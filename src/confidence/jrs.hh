/**
 * @file
 * JRS confidence estimator (Jacobsen, Rotenberg, Smith, MICRO-29):
 * a table of miss distance counters (MDC). A counter resets on a
 * misprediction and saturates upward on correct predictions; the branch
 * is high-confidence when the counter has reached the MDC threshold.
 * The paper uses an 8 KB table with threshold 12 for Pipeline Gating.
 */

#ifndef STSIM_CONFIDENCE_JRS_HH
#define STSIM_CONFIDENCE_JRS_HH

#include <vector>

#include "common/sat_counter.hh"
#include "confidence/estimator.hh"

namespace stsim
{

/** JRS miss-distance-counter estimator (two effective levels). */
class JrsEstimator : public ConfidenceEstimator
{
  public:
    /**
     * @param size_bytes Hardware budget; 2 four-bit MDCs per byte.
     * @param threshold MDC threshold for high confidence (paper: 12).
     */
    explicit JrsEstimator(std::size_t size_bytes, unsigned threshold = 12);

    /** Non-virtual estimate; the devirtualized fetch-stage entry. */
    ConfLevel estimateFast(Addr pc, std::uint64_t hist,
                           const DirectionPredictor::Prediction &dir,
                           bool oracle_correct);

    ConfLevel
    estimate(Addr pc, std::uint64_t hist,
             const DirectionPredictor::Prediction &dir,
             bool oracle_correct) override
    {
        return estimateFast(pc, hist, dir, oracle_correct);
    }
    void update(Addr pc, std::uint64_t hist, bool correct) override;
    std::size_t sizeBytes() const override { return sizeBytes_; }

    unsigned threshold() const { return threshold_; }
    std::size_t numEntries() const { return table_.size(); }

    void saveState(serde::StateWriter &w) const override;
    void loadState(serde::StateReader &r) override;

  private:
    std::size_t index(Addr pc, std::uint64_t hist) const;

    std::size_t sizeBytes_;
    unsigned indexBits_;
    unsigned threshold_;
    std::vector<SatCounter> table_;
};

} // namespace stsim

#endif // STSIM_CONFIDENCE_JRS_HH
