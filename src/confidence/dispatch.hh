/**
 * @file
 * Devirtualized dispatch for ConfidenceEstimator::estimate. A core
 * carries at most one estimator whose concrete type is fixed for the
 * whole run, so the per-branch virtual call in the fetch stage can be
 * resolved once at construction into a direct trampoline.
 */

#ifndef STSIM_CONFIDENCE_DISPATCH_HH
#define STSIM_CONFIDENCE_DISPATCH_HH

#include <typeinfo>

#include "confidence/bpru.hh"
#include "confidence/estimator.hh"
#include "confidence/jrs.hh"
#include "confidence/perfect.hh"

namespace stsim
{

/** Signature of a resolved estimate() entry point. */
using ConfEstimateFn =
    ConfLevel (*)(ConfidenceEstimator *, Addr, std::uint64_t,
                  const DirectionPredictor::Prediction &, bool);

namespace detail
{

template <typename Concrete>
ConfLevel
estimateTrampoline(ConfidenceEstimator *est, Addr pc,
                   std::uint64_t hist,
                   const DirectionPredictor::Prediction &dir,
                   bool oracle_correct)
{
    return static_cast<Concrete *>(est)->estimateFast(pc, hist, dir,
                                                      oracle_correct);
}

inline ConfLevel
estimateVirtual(ConfidenceEstimator *est, Addr pc, std::uint64_t hist,
                const DirectionPredictor::Prediction &dir,
                bool oracle_correct)
{
    return est->estimate(pc, hist, dir, oracle_correct);
}

} // namespace detail

/**
 * Resolve the concrete type of @p est once; the returned function
 * calls its non-virtual estimateFast directly. Matching is by exact
 * dynamic type (not dynamic_cast), so a subclass that overrides
 * estimate() correctly falls back to the virtual call.
 */
inline ConfEstimateFn
resolveConfEstimate(ConfidenceEstimator *est)
{
    const std::type_info &t = typeid(*est);
    if (t == typeid(BpruEstimator))
        return &detail::estimateTrampoline<BpruEstimator>;
    if (t == typeid(JrsEstimator))
        return &detail::estimateTrampoline<JrsEstimator>;
    if (t == typeid(PerfectEstimator))
        return &detail::estimateTrampoline<PerfectEstimator>;
    return &detail::estimateVirtual;
}

} // namespace stsim

#endif // STSIM_CONFIDENCE_DISPATCH_HH
