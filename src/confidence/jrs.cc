#include "jrs.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace stsim
{

JrsEstimator::JrsEstimator(std::size_t size_bytes, unsigned threshold)
    : sizeBytes_(size_bytes),
      threshold_(threshold)
{
    std::size_t entries = size_bytes * 2; // 4-bit MDCs
    if (!isPowerOf2(entries))
        stsim_fatal("JRS size %zu B yields non-power-of-2 entries",
                    size_bytes);
    indexBits_ = floorLog2(entries);
    stsim_assert(threshold_ >= 1 && threshold_ <= 15,
                 "bad MDC threshold %u", threshold_);
    table_.assign(entries, SatCounter(4, 0));
}

std::size_t
JrsEstimator::index(Addr pc, std::uint64_t hist) const
{
    return static_cast<std::size_t>(((pc >> 2) ^ hist) &
                                    lowMask(indexBits_));
}

ConfLevel
JrsEstimator::estimateFast(Addr pc, std::uint64_t hist,
                           const DirectionPredictor::Prediction & /*dir*/,
                           bool /*oracle_correct*/)
{
    // JRS is inherently two-level: the MDC either cleared the threshold
    // (high confidence) or it did not (low confidence).
    const SatCounter &c = table_[index(pc, hist)];
    return c.value() >= threshold_ ? ConfLevel::HC : ConfLevel::LC;
}

void
JrsEstimator::update(Addr pc, std::uint64_t hist, bool correct)
{
    SatCounter &c = table_[index(pc, hist)];
    if (correct)
        c.increment();
    else
        c.reset(); // miss distance counter: any miss clears it
}

const char *
confLevelName(ConfLevel lvl)
{
    switch (lvl) {
      case ConfLevel::VHC: return "VHC";
      case ConfLevel::HC: return "HC";
      case ConfLevel::LC: return "LC";
      case ConfLevel::VLC: return "VLC";
    }
    return "?";
}

} // namespace stsim
