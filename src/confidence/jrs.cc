#include "jrs.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "core/state_serde.hh"

namespace stsim
{

JrsEstimator::JrsEstimator(std::size_t size_bytes, unsigned threshold)
    : sizeBytes_(size_bytes),
      threshold_(threshold)
{
    std::size_t entries = size_bytes * 2; // 4-bit MDCs
    if (!isPowerOf2(entries))
        stsim_fatal("JRS size %zu B yields non-power-of-2 entries",
                    size_bytes);
    indexBits_ = floorLog2(entries);
    stsim_assert(threshold_ >= 1 && threshold_ <= 15,
                 "bad MDC threshold %u", threshold_);
    table_.assign(entries, SatCounter(4, 0));
}

std::size_t
JrsEstimator::index(Addr pc, std::uint64_t hist) const
{
    return static_cast<std::size_t>(((pc >> 2) ^ hist) &
                                    lowMask(indexBits_));
}

ConfLevel
JrsEstimator::estimateFast(Addr pc, std::uint64_t hist,
                           const DirectionPredictor::Prediction & /*dir*/,
                           bool /*oracle_correct*/)
{
    // JRS is inherently two-level: the MDC either cleared the threshold
    // (high confidence) or it did not (low confidence).
    const SatCounter &c = table_[index(pc, hist)];
    return c.value() >= threshold_ ? ConfLevel::HC : ConfLevel::LC;
}

void
JrsEstimator::update(Addr pc, std::uint64_t hist, bool correct)
{
    SatCounter &c = table_[index(pc, hist)];
    if (correct)
        c.increment();
    else
        c.reset(); // miss distance counter: any miss clears it
}

void
JrsEstimator::saveState(serde::StateWriter &w) const
{
    w.begin("confidence");
    std::vector<std::uint64_t> v(table_.size());
    for (std::size_t i = 0; i < table_.size(); ++i)
        v[i] = table_[i].value();
    w.u64Vec("mdc", v);
    w.end("confidence");
}

void
JrsEstimator::loadState(serde::StateReader &r)
{
    r.begin("confidence");
    std::vector<std::uint64_t> v = r.u64Vec("mdc");
    if (v.size() != table_.size())
        stsim_fatal("state: JRS table size mismatch (snapshot %zu, "
                    "configured %zu)",
                    v.size(), table_.size());
    for (std::size_t i = 0; i < table_.size(); ++i)
        table_[i].set(static_cast<unsigned>(v[i]));
    r.end("confidence");
}

// The base-class defaults serialize an empty section: stateless
// estimators (the oracle) round-trip as a tagged placeholder, so the
// snapshot layout is uniform across confidence kinds.
void
ConfidenceEstimator::saveState(serde::StateWriter &w) const
{
    w.begin("confidence");
    w.end("confidence");
}

void
ConfidenceEstimator::loadState(serde::StateReader &r)
{
    r.begin("confidence");
    r.end("confidence");
}

const char *
confLevelName(ConfLevel lvl)
{
    switch (lvl) {
      case ConfLevel::VHC: return "VHC";
      case ConfLevel::HC: return "HC";
      case ConfLevel::LC: return "LC";
      case ConfLevel::VLC: return "VLC";
    }
    return "?";
}

} // namespace stsim
