/**
 * @file
 * BPRU-style confidence estimator (§4.3 of the paper, after Aragón et
 * al., "Confidence Estimation for Branch Prediction Reversal").
 *
 * A tagged table; each entry holds a 3-bit up/down saturating counter
 * that tracks how often the branch's predictions have been wrong
 * recently. Counter values map onto the four confidence levels:
 * 0-1 → VHC, 2-3 → HC, 4-5 → LC, 6-7 → VLC. On a table miss the
 * estimator falls back to the underlying direction predictor's
 * saturating counter: a weak counter labels the branch LC, a strong
 * one HC (the paper's modification that raises SPEC at some PVN cost).
 *
 * The original BPRU derives its signal from a data-value predictor;
 * this implementation reproduces the table structure, level mapping
 * and fallback exactly, with the counter trained directly on
 * prediction correctness (see DESIGN.md substitution #3). The update
 * weights are calibrated so the estimator lands near the paper's
 * measured quality (SPEC ≈ 60%, PVN ≈ 45% with an 8 KB gshare).
 */

#ifndef STSIM_CONFIDENCE_BPRU_HH
#define STSIM_CONFIDENCE_BPRU_HH

#include <cstdint>
#include <vector>

#include "confidence/estimator.hh"

namespace stsim
{

/** Tagged four-level confidence estimator in the BPRU mould. */
class BpruEstimator : public ConfidenceEstimator
{
  public:
    /** Tuning knobs; defaults reproduce the paper's reported quality. */
    struct Params
    {
        unsigned missInc = 2;   ///< counter += on a misprediction
        unsigned correctDec = 1; ///< counter -= on a correct prediction
        unsigned allocValue = 4; ///< counter value for fresh entries
        unsigned tagBits = 10;   ///< partial tag width
    };

    /**
     * @param size_bytes Hardware budget. An entry holds a partial tag
     *        plus a 3-bit counter; we charge 2 bytes per entry.
     * @param params Update-rule tuning.
     */
    BpruEstimator(std::size_t size_bytes, const Params &params);

    /** Construct with the calibrated default parameters. */
    explicit BpruEstimator(std::size_t size_bytes)
        : BpruEstimator(size_bytes, Params{})
    {
    }

    /** Non-virtual estimate; the devirtualized fetch-stage entry. */
    ConfLevel estimateFast(Addr pc, std::uint64_t hist,
                           const DirectionPredictor::Prediction &dir,
                           bool oracle_correct);

    ConfLevel
    estimate(Addr pc, std::uint64_t hist,
             const DirectionPredictor::Prediction &dir,
             bool oracle_correct) override
    {
        return estimateFast(pc, hist, dir, oracle_correct);
    }
    void update(Addr pc, std::uint64_t hist, bool correct) override;
    std::size_t sizeBytes() const override { return sizeBytes_; }

    std::size_t numEntries() const { return table_.size(); }

    /** Map a 3-bit counter value onto a confidence level (§4.3). */
    static ConfLevel levelFromCounter(unsigned value);

    /** Fraction of estimate() calls that hit in the tagged table. */
    double hitRate() const
    {
        return lookups_ ? static_cast<double>(hits_) / lookups_ : 0.0;
    }

    void saveState(serde::StateWriter &w) const override;
    void loadState(serde::StateReader &r) override;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint8_t counter = 0; // 0..7
    };

    std::size_t index(Addr pc, std::uint64_t hist) const;
    std::uint32_t tagOf(Addr pc) const;

    std::size_t sizeBytes_;
    unsigned indexBits_;
    Params params_;
    std::vector<Entry> table_;
    Counter lookups_ = 0;
    Counter hits_ = 0;
};

} // namespace stsim

#endif // STSIM_CONFIDENCE_BPRU_HH
