#include "parallel_harness.hh"

#include <algorithm>

#include "core/harness.hh"
#include "core/run_pool.hh"
#include "core/simulator.hh"

namespace stsim
{

std::vector<SimResults>
runJobs(const std::vector<SimJob> &jobs, unsigned workers)
{
    std::vector<SimResults> results(jobs.size());
    if (jobs.empty())
        return results;

    // Warm the shared program cache first — one build per distinct
    // benchmark, itself fanned out over the pool — so the job wave
    // never races workers into duplicate StaticProgram builds.
    std::vector<std::string> names;
    for (const SimJob &j : jobs) {
        if (!j.cfg.customProfile &&
            std::find(names.begin(), names.end(), j.cfg.benchmark) ==
                names.end()) {
            names.push_back(j.cfg.benchmark);
        }
    }
    RunPool pool(workers);
    pool.parallelFor(names.size(), [&](std::size_t i) {
        Simulator::programFor(names[i]);
    });
    pool.parallelFor(jobs.size(), [&](std::size_t i) {
        SimResults r = Simulator(jobs[i].cfg).run();
        r.experiment = jobs[i].experiment;
        results[i] = std::move(r);
    });
    return results;
}

//
// Harness methods that fan out over the pool (kept here so the
// serial harness core stays free of threading concerns).
//

void
Harness::computeBaselines(unsigned workers)
{
    std::vector<SimJob> jobs;
    std::vector<std::string> missing;
    for (const std::string &b : benchmarks()) {
        if (baselines_.count(b))
            continue;
        SimJob j;
        j.cfg = base_;
        j.cfg.benchmark = b;
        Experiment::byName("baseline").applyTo(j.cfg);
        j.experiment = "baseline";
        jobs.push_back(std::move(j));
        missing.push_back(b);
    }
    std::vector<SimResults> results = runJobs(jobs, workers);
    for (std::size_t i = 0; i < missing.size(); ++i)
        baselines_.emplace(missing[i], std::move(results[i]));
}

std::vector<Harness::SuiteRows>
Harness::runMatrix(const std::vector<Experiment> &exps, unsigned workers)
{
    computeBaselines(workers);

    const std::vector<std::string> &benches = benchmarks();
    std::vector<SimJob> jobs;
    jobs.reserve(exps.size() * benches.size());
    for (const Experiment &exp : exps) {
        for (const std::string &b : benches) {
            SimJob j;
            j.cfg = base_;
            j.cfg.benchmark = b;
            exp.applyTo(j.cfg);
            j.experiment = exp.name;
            jobs.push_back(std::move(j));
        }
    }
    std::vector<SimResults> results = runJobs(jobs, workers);

    // Commit in submission order: experiment-major, benchmark-minor.
    std::vector<SuiteRows> tables;
    tables.reserve(exps.size());
    std::size_t i = 0;
    for (std::size_t e = 0; e < exps.size(); ++e) {
        SuiteRows rows;
        rows.reserve(benches.size() + 1);
        for (const std::string &b : benches) {
            rows.emplace_back(
                b, RelativeMetrics::compute(baselines_.at(b),
                                            results[i++]));
        }
        rows.emplace_back("Average", averageMetrics(rows));
        tables.push_back(std::move(rows));
    }
    return tables;
}

} // namespace stsim
