#include "parallel_harness.hh"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "core/cancel.hh"
#include "core/harness.hh"
#include "core/results_sink.hh"
#include "core/run_pool.hh"
#include "core/simulator.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace stsim
{

namespace
{

/**
 * Reorder-window size: normally a small multiple of the worker count,
 * but pinnable via STSIM_REORDER_WINDOW so tests can force the
 * degenerate window=1 gate and the exact 2*workers boundary.
 */
std::size_t
reorderWindow(std::size_t workers)
{
    if (const char *s = std::getenv("STSIM_REORDER_WINDOW")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(s, &end, 10);
        if (end && *end == '\0' && v >= 1)
            return static_cast<std::size_t>(v);
    }
    return std::max<std::size_t>(std::size_t{2} * workers, 4);
}

/**
 * One warmup-equivalence class of a memoized wave: whichever of its
 * jobs starts first runs the warmup and publishes the snapshot; every
 * other job of the class waits for it, and every job (builder
 * included) forks a fresh Simulator from the snapshot. The builder is
 * never gate-blocked (it already passed the start gate), so waiting on
 * it cannot deadlock the reorder window.
 */
struct WarmupClass
{
    enum class State : std::uint8_t
    {
        Unbuilt,  ///< nobody has claimed the warmup yet
        Building, ///< a job is running the warmup now
        Ready,    ///< snapshot is published
        Aborted,  ///< the builder threw; waiters must bail out
    };

    State state = State::Unbuilt;
    std::string snapshot;
    std::size_t remaining = 0; ///< jobs still needing the snapshot
};

} // namespace

StreamStats
runJobs(const std::vector<SimJob> &jobs, ResultsSink &sink,
        unsigned workers, const CancelToken *cancel)
{
    RunOptions opts;
    opts.workers = workers;
    opts.cancel = cancel;
    return runJobs(jobs, sink, opts);
}

StreamStats
runJobs(const std::vector<SimJob> &jobs, ResultsSink &sink,
        const RunOptions &opts)
{
    stsim_assert(!(opts.memoizeWarmup && opts.fromSnapshot),
                 "memoizeWarmup and fromSnapshot are mutually "
                 "exclusive");
    unsigned workers = opts.workers;
    const CancelToken *cancel = opts.cancel;
    StreamStats stats;
    if (jobs.empty()) {
        sink.flush();
        return stats;
    }

    // Warm the shared program cache first — one build per distinct
    // benchmark, itself fanned out over the pool — so the job wave
    // never races workers into duplicate StaticProgram builds.
    std::vector<std::string> names;
    for (const SimJob &j : jobs) {
        if (!j.cfg.customProfile &&
            std::find(names.begin(), names.end(), j.cfg.benchmark) ==
                names.end()) {
            names.push_back(j.cfg.benchmark);
        }
    }
    RunPool pool(workers);
    pool.parallelFor(names.size(), [&](std::size_t i) {
        Simulator::programFor(names[i]);
    });

    // Memoized warmup: group the wave by warmup class up front. The
    // key computation is pure config serialization -- trivial next to
    // a single simulated cycle.
    std::mutex cacheMu;
    std::condition_variable cacheCv;
    std::vector<WarmupClass> classes;
    std::vector<std::size_t> jobClass(jobs.size(), 0);
    if (opts.memoizeWarmup) {
        std::map<std::string, std::size_t> byKey;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            std::string key = Simulator::warmupClassKey(jobs[i].cfg);
            auto [it, inserted] =
                byKey.emplace(std::move(key), classes.size());
            if (inserted)
                classes.emplace_back();
            jobClass[i] = it->second;
            ++classes[it->second].remaining;
        }
    }

    // Lifecycle accounting lives at job granularity: one counter inc
    // or span per job, never per instruction, so the engine's hot
    // path is untouched and results cannot be perturbed.
    obs::Counter &memoHits =
        obs::Registry::instance().counter("runjobs.warmup_memo_hits");
    obs::Counter &memoMisses =
        obs::Registry::instance().counter("runjobs.warmup_memo_misses");
    obs::Counter &jobsCompleted =
        obs::Registry::instance().counter("runjobs.jobs_completed");

    /** Run job @p i forked from its class's (possibly fresh) warmup. */
    auto runMemoized = [&](std::size_t i) {
        WarmupClass &wc = classes[jobClass[i]];
        bool builder = false;
        {
            std::unique_lock<std::mutex> lock(cacheMu);
            if (wc.state == WarmupClass::State::Unbuilt) {
                wc.state = WarmupClass::State::Building;
                builder = true;
            } else {
                cacheCv.wait(lock, [&] {
                    return wc.state == WarmupClass::State::Ready ||
                           wc.state == WarmupClass::State::Aborted;
                });
                if (wc.state == WarmupClass::State::Aborted)
                    throw JobCancelled();
            }
        }
        if (builder)
            memoMisses.inc();
        else
            memoHits.inc();
        if (builder) {
            try {
                TRACE_SPAN("job.warmup");
                Simulator warm(jobs[i].cfg);
                warm.runWarmup(cancel);
                std::string snap = warm.saveSnapshot();
                std::lock_guard<std::mutex> lock(cacheMu);
                wc.snapshot = std::move(snap);
                wc.state = WarmupClass::State::Ready;
                ++stats.warmupsRun;
                cacheCv.notify_all();
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(cacheMu);
                    wc.state = WarmupClass::State::Aborted;
                }
                cacheCv.notify_all();
                throw;
            }
        }

        // Every job of the class -- the builder included -- forks a
        // fresh machine from the snapshot, so the restore path is
        // exercised on all of them and memoized results are bitwise
        // identical to scratch results. The snapshot string is stable
        // here: it is only freed when the last job of the class
        // decrements `remaining`, which cannot happen before this job
        // has restored.
        Simulator sim(jobs[i].cfg);
        sim.restoreSnapshot(wc.snapshot);
        SimResults r;
        {
            TRACE_SPAN("job.measure");
            r = sim.run(cancel);
        }
        {
            std::lock_guard<std::mutex> lock(cacheMu);
            if (--wc.remaining == 0) {
                wc.snapshot.clear();
                wc.snapshot.shrink_to_fit();
            }
        }
        return r;
    };

    // In-order streaming commit with a bounded reorder window. A
    // worker may not *start* job i until i is within `window` of the
    // commit frontier, which caps the completed-but-unwritable set at
    // `window` entries however large the wave is. The job at the
    // frontier always passes the gate, so the oldest incomplete job is
    // always running and the wave cannot deadlock.
    std::mutex mu;
    std::condition_variable gate;
    std::size_t next = 0; // commit frontier (submission order)
    std::map<std::size_t, SimResults> pending;
    bool aborted = false; // a job threw: frontier will never advance
    const std::size_t window = reorderWindow(pool.workers());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.submit([&, i] {
            {
                TRACE_SPAN("job.queued");
                std::unique_lock<std::mutex> lock(mu);
                gate.wait(lock,
                          [&] { return aborted || i < next + window; });
                if (aborted)
                    return;
            }
            SimResults r;
            try {
                // The upfront check makes cancellation prompt for jobs
                // that have not started; the token handed to run()
                // covers the frontier job, which always holds a
                // worker, so a fired token always surfaces.
                if (cancel && cancel->cancelled())
                    throw JobCancelled();
                if (opts.memoizeWarmup) {
                    r = runMemoized(i);
                } else if (opts.fromSnapshot) {
                    Simulator sim(jobs[i].cfg);
                    sim.restoreSnapshot(*opts.fromSnapshot);
                    TRACE_SPAN("job.measure");
                    r = sim.run(cancel);
                } else {
                    // Warmup and measurement run as two explicit
                    // phases on one machine; runWarmup() is a no-op-
                    // if-done prefix of run(), so this is the same
                    // simulation whether or not anyone is tracing.
                    Simulator sim(jobs[i].cfg);
                    {
                        TRACE_SPAN("job.warmup");
                        sim.runWarmup(cancel);
                    }
                    TRACE_SPAN("job.measure");
                    r = sim.run(cancel);
                }
            } catch (...) {
                // This job's result will never reach `pending`, so the
                // frontier is stuck: release every gate-blocked worker
                // or pool.wait() would deadlock instead of rethrowing.
                {
                    std::lock_guard<std::mutex> lock(mu);
                    aborted = true;
                }
                gate.notify_all();
                throw; // surfaces through pool.wait()
            }
            r.experiment = jobs[i].experiment;

            TRACE_SPAN("job.commit");
            std::lock_guard<std::mutex> lock(mu);
            if (aborted)
                return;
            if (!opts.memoizeWarmup && !opts.fromSnapshot)
                ++stats.warmupsRun; // scratch jobs warm up themselves
            jobsCompleted.inc();
            pending.emplace(i, std::move(r));
            stats.maxPending =
                std::max(stats.maxPending, pending.size());
            while (!pending.empty() && pending.begin()->first == next) {
                // Consume the record before writing, and mark the
                // abort while still holding the lock on a throwing
                // write: no drain (they are serialized under `mu`,
                // which also spares sinks their own locking) can ever
                // re-attempt an index or commit past a failure.
                SimResults out = std::move(pending.begin()->second);
                pending.erase(pending.begin());
                const std::size_t idx = next++;
                gate.notify_all();
                try {
                    sink.write(idx, out);
                } catch (...) {
                    aborted = true;
                    gate.notify_all();
                    throw; // lock released by unwinding
                }
            }
        });
    }
    pool.wait();
    sink.flush();
    return stats;
}

namespace
{

/** Commits a wave into a preallocated vector (in-memory callers). */
class VectorSink : public ResultsSink
{
  public:
    explicit VectorSink(std::vector<SimResults> &out) : out_(out) {}

    void
    write(std::uint64_t index, const SimResults &r) override
    {
        out_[index] = r;
    }

  private:
    std::vector<SimResults> &out_;
};

} // namespace

std::vector<SimResults>
runJobs(const std::vector<SimJob> &jobs, unsigned workers)
{
    std::vector<SimResults> results(jobs.size());
    VectorSink sink(results);
    runJobs(jobs, sink, workers);
    return results;
}

std::vector<SimResults>
runJobs(const std::vector<SimJob> &jobs, const RunOptions &opts)
{
    std::vector<SimResults> results(jobs.size());
    VectorSink sink(results);
    runJobs(jobs, sink, opts);
    return results;
}

//
// Harness methods that fan out over the pool (kept here so the
// serial harness core stays free of threading concerns).
//

void
Harness::computeBaselines(unsigned workers)
{
    std::vector<SimJob> jobs;
    std::vector<std::string> missing;
    for (const std::string &b : benchmarks()) {
        if (baselines_.count(b))
            continue;
        SimJob j;
        j.cfg = base_;
        j.cfg.benchmark = b;
        Experiment::byName("baseline").applyTo(j.cfg);
        j.experiment = "baseline";
        jobs.push_back(std::move(j));
        missing.push_back(b);
    }
    std::vector<SimResults> results = runJobs(jobs, workers);
    for (std::size_t i = 0; i < missing.size(); ++i)
        baselines_.emplace(missing[i], std::move(results[i]));
}

std::vector<Harness::SuiteRows>
Harness::runMatrix(const std::vector<Experiment> &exps, unsigned workers)
{
    NullResultsSink sink;
    return runMatrix(exps, sink, workers);
}

std::vector<Harness::SuiteRows>
Harness::runMatrix(const std::vector<Experiment> &exps,
                   ResultsSink &sink, unsigned workers)
{
    computeBaselines(workers);

    const std::vector<std::string> &benches = benchmarks();
    std::vector<SimJob> jobs;
    jobs.reserve(exps.size() * benches.size());
    for (const Experiment &exp : exps) {
        for (const std::string &b : benches) {
            SimJob j;
            j.cfg = base_;
            j.cfg.benchmark = b;
            exp.applyTo(j.cfg);
            j.experiment = exp.name;
            jobs.push_back(std::move(j));
        }
    }

    // Stream full results to the caller's sink while folding each one
    // down to its four relative metrics as it commits — only the small
    // metric tables stay resident, experiment-major, benchmark-minor.
    class MetricsTee : public TeeSink
    {
      public:
        MetricsTee(Harness &h, ResultsSink &inner,
                   const std::vector<std::string> &benches,
                   std::vector<SuiteRows> &tables)
            : TeeSink(inner), h_(h), benches_(benches), tables_(tables)
        {
        }

      protected:
        void
        onResult(std::uint64_t index, const SimResults &r) override
        {
            const std::string &bench = benches_[index % benches_.size()];
            tables_[index / benches_.size()].emplace_back(
                bench, RelativeMetrics::compute(
                           h_.baselines_.at(bench), r));
        }

      private:
        Harness &h_;
        const std::vector<std::string> &benches_;
        std::vector<SuiteRows> &tables_;
    };

    std::vector<SuiteRows> tables(exps.size());
    for (SuiteRows &rows : tables)
        rows.reserve(benches.size() + 1);
    MetricsTee tee(*this, sink, benches, tables);
    runJobs(jobs, tee, workers);

    for (SuiteRows &rows : tables)
        rows.emplace_back("Average", averageMetrics(rows));
    return tables;
}

} // namespace stsim
