#include "results_sink.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>

#include <poll.h>

#include "common/logging.hh"
#include "core/job_serde.hh"

namespace stsim
{

ResultsSink::~ResultsSink() = default;

bool
stdoutClosedByPeer()
{
    struct pollfd p = {1 /* stdout */, POLLOUT, 0};
    if (::poll(&p, 1, 0) < 0)
        return false;
    return (p.revents & (POLLERR | POLLHUP)) != 0;
}

namespace
{

/**
 * A stdout stream failure is usually a vanished consumer (`| head`):
 * with SIGPIPE ignored the write fails, the stream poisons, and the
 * right behavior is a quiet, successful exit -- the downstream got
 * everything it wanted. Anything else stays fatal.
 */
[[noreturn]] void
streamWriteFailed(std::ostream &out, const char *what)
{
    if (&out == &std::cout && stdoutClosedByPeer()) {
        stsim_inform("%s: stdout consumer closed the pipe; exiting",
                     what);
        std::exit(0);
    }
    stsim_fatal("%s: stream write failed", what);
}

} // namespace

void
JsonlResultsSink::write(std::uint64_t index, const SimResults &r)
{
    out_ << serde::resultRecordToJson(index, r) << '\n';
}

void
JsonlResultsSink::flush()
{
    out_.flush();
    if (!out_)
        streamWriteFailed(out_, "JSONL results sink");
}

namespace
{

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

void
appendDbl(std::string &out, double v)
{
    // 17 significant digits round-trip an IEEE binary64 exactly
    // through a correctly-rounding strtod.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void
appendField(std::string &out, const std::string &s)
{
    // Built-in names are plain, but manifests may carry arbitrary
    // custom-profile/experiment strings: RFC 4180-quote when needed.
    if (s.find_first_of(",\"\n\r") == std::string::npos) {
        out += s;
        return;
    }
    out += '"';
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
}

} // namespace

std::string
CsvResultsSink::header()
{
    std::string h = "index,benchmark,experiment";
    h += ",cycles,committedInsts,committedBranches"
         ",committedCondBranches,condMispredicts"
         ",fetchedInsts,fetchedWrongPath,decodedInsts,decodedWrongPath"
         ",dispatchedInsts,dispatchedWrongPath,issuedInsts"
         ",issuedWrongPath,squashes,squashedInsts,btbMisfetches"
         ",rasMispredicts,fetchIcacheStall,fetchRedirectStall"
         ",fetchThrottled,decodeThrottled,oracleFetchStall"
         ",robFullStalls,lsqFullStalls,noSelectSkips,loadsForwarded"
         ",loadsBlockedByStore,oracleSelectSkips,oracleDecodeDrops";
    h += ",ipc,seconds,avgPowerW,energyJ,edProduct,wastedEnergyJ"
         ",condMissRate,spec,pvn,il1MissRate,dl1MissRate,l2MissRate";
    for (PUnit u : kAllPUnits) {
        h += ",energyJ_";
        h += punitName(u);
    }
    for (PUnit u : kAllPUnits) {
        h += ",wastedJ_";
        h += punitName(u);
    }
    for (PUnit u : kAllPUnits) {
        h += ",act_";
        h += punitName(u);
    }
    return h;
}

std::string
CsvResultsSink::row(std::uint64_t index, const SimResults &r)
{
    std::string out;
    appendU64(out, index);
    out += ',';
    appendField(out, r.benchmark);
    out += ',';
    appendField(out, r.experiment);
    const CoreStats &c = r.core;
    for (Counter v :
         {c.cycles, c.committedInsts, c.committedBranches,
          c.committedCondBranches, c.condMispredicts, c.fetchedInsts,
          c.fetchedWrongPath, c.decodedInsts, c.decodedWrongPath,
          c.dispatchedInsts, c.dispatchedWrongPath, c.issuedInsts,
          c.issuedWrongPath, c.squashes, c.squashedInsts,
          c.btbMisfetches, c.rasMispredicts, c.fetchIcacheStall,
          c.fetchRedirectStall, c.fetchThrottled, c.decodeThrottled,
          c.oracleFetchStall, c.robFullStalls, c.lsqFullStalls,
          c.noSelectSkips, c.loadsForwarded, c.loadsBlockedByStore,
          c.oracleSelectSkips, c.oracleDecodeDrops}) {
        out += ',';
        appendU64(out, v);
    }
    for (double v :
         {r.ipc, r.seconds, r.avgPowerW, r.energyJ, r.edProduct,
          r.wastedEnergyJ, r.condMissRate, r.spec, r.pvn,
          r.il1MissRate, r.dl1MissRate, r.l2MissRate}) {
        out += ',';
        appendDbl(out, v);
    }
    for (double v : r.unitEnergyJ) {
        out += ',';
        appendDbl(out, v);
    }
    for (double v : r.unitWastedJ) {
        out += ',';
        appendDbl(out, v);
    }
    for (double v : r.unitActivity) {
        out += ',';
        appendDbl(out, v);
    }
    return out;
}

void
CsvResultsSink::write(std::uint64_t index, const SimResults &r)
{
    if (!wroteHeader_) {
        out_ << header() << '\n';
        wroteHeader_ = true;
    }
    out_ << row(index, r) << '\n';
}

void
CsvResultsSink::flush()
{
    out_.flush();
    if (!out_)
        streamWriteFailed(out_, "CSV results sink");
}

void
IndexRemapSink::write(std::uint64_t index, const SimResults &r)
{
    stsim_assert(index < globalIndex_.size(),
                 "remap sink: index %llu out of range",
                 static_cast<unsigned long long>(index));
    inner_.write(globalIndex_[index], r);
}

void
IndexRemapSink::flush()
{
    inner_.flush();
}

namespace
{

/** File-backed sink: owns the stream its inner formatter writes to. */
class OwningFileSink : public ResultsSink
{
  public:
    OwningFileSink(const std::string &path, bool csv)
    {
        file_.open(path);
        if (!file_)
            stsim_fatal("cannot open '%s' for writing: %s",
                        path.c_str(), std::strerror(errno));
        if (csv)
            inner_ = std::make_unique<CsvResultsSink>(file_);
        else
            inner_ = std::make_unique<JsonlResultsSink>(file_);
    }

    void
    write(std::uint64_t index, const SimResults &r) override
    {
        inner_->write(index, r);
    }

    void flush() override { inner_->flush(); }

  private:
    std::ofstream file_;
    std::unique_ptr<ResultsSink> inner_;
};

} // namespace

std::unique_ptr<ResultsSink>
openSink(const std::string &path, const std::string &format)
{
    bool csv = false;
    if (format == "csv") {
        csv = true;
    } else if (format.empty()) {
        csv = path.size() >= 4 &&
              path.compare(path.size() - 4, 4, ".csv") == 0;
    } else if (format != "jsonl") {
        stsim_fatal("unknown results format '%s' (jsonl or csv)",
                    format.c_str());
    }
    if (path.empty() || path == "-") {
        if (csv)
            return std::make_unique<CsvResultsSink>(std::cout);
        return std::make_unique<JsonlResultsSink>(std::cout);
    }
    return std::make_unique<OwningFileSink>(path, csv);
}

} // namespace stsim
