#include "job_serde.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"

namespace stsim
{
namespace serde
{

namespace
{

// ---------------------------------------------------------------------------
// Minimal strict JSON value + recursive-descent parser. Numbers keep
// their raw token (we never need float JSON numbers: doubles travel as
// hex-float strings); objects preserve key order.
// ---------------------------------------------------------------------------

struct JVal
{
    enum class Kind { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Kind::Null;
    bool b = false;
    std::string num;  ///< raw token (Kind::Num)
    std::string str;  ///< decoded string (Kind::Str)
    std::vector<JVal> arr;
    std::vector<std::pair<std::string, JVal>> obj;

    const JVal *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }

    const JVal &
    at(const std::string &key) const
    {
        if (kind != Kind::Obj)
            stsim_fatal("serde: '%s' looked up on a non-object",
                        key.c_str());
        if (const JVal *v = find(key))
            return *v;
        stsim_fatal("serde: missing key '%s'", key.c_str());
    }

    std::uint64_t
    asU64() const
    {
        if (kind != Kind::Num)
            stsim_fatal("serde: expected an integer");
        // strtoull would silently wrap a negative value to 2^64-v.
        if (num.empty() || num[0] == '-')
            stsim_fatal("serde: bad integer '%s' (must be unsigned)",
                        num.c_str());
        char *end = nullptr;
        std::uint64_t v = std::strtoull(num.c_str(), &end, 10);
        if (!end || *end != '\0')
            stsim_fatal("serde: bad integer '%s'", num.c_str());
        return v;
    }

    unsigned
    asUnsigned() const
    {
        return static_cast<unsigned>(asU64());
    }

    std::size_t
    asSize() const
    {
        return static_cast<std::size_t>(asU64());
    }

    std::uint32_t
    asU32() const
    {
        return static_cast<std::uint32_t>(asU64());
    }

    double
    asDouble() const
    {
        // Doubles are serialized as hex-float strings; accept plain
        // JSON numbers too (hand-written manifests).
        if (kind == Kind::Str)
            return doubleFromHex(str);
        if (kind == Kind::Num)
            return doubleFromHex(num);
        stsim_fatal("serde: expected a double");
    }

    bool
    asBool() const
    {
        if (kind != Kind::Bool)
            stsim_fatal("serde: expected a bool");
        return b;
    }

    const std::string &
    asStr() const
    {
        if (kind != Kind::Str)
            stsim_fatal("serde: expected a string");
        return str;
    }
};

class Parser
{
  public:
    explicit Parser(std::string_view s) : s_(s) {}

    JVal
    parse()
    {
        JVal v = value();
        skipWs();
        if (pos_ != s_.size())
            stsim_fatal("serde: trailing bytes after JSON value");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            stsim_fatal("serde: unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            stsim_fatal("serde: expected '%c' at offset %zu", c, pos_);
        ++pos_;
    }

    JVal
    value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't':
          case 'f': return boolean();
          case 'n': return null();
          default: return number();
        }
    }

    // The parser (and JVal's destructor) recurse per nesting level; a
    // hostile frame of '['/'{"a":' repeated would otherwise overflow
    // the stack, which FatalCaptureScope cannot catch. Real records
    // nest ~5 levels, so 64 is generous.
    void
    enterNested()
    {
        if (++depth_ > kMaxDepth)
            stsim_fatal("serde: JSON nested deeper than %zu levels",
                        kMaxDepth);
    }

    JVal
    object()
    {
        expect('{');
        enterNested();
        JVal v;
        v.kind = JVal::Kind::Obj;
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return v;
        }
        for (;;) {
            JVal key = string();
            expect(':');
            v.obj.emplace_back(std::move(key.str), value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            --depth_;
            return v;
        }
    }

    JVal
    array()
    {
        expect('[');
        enterNested();
        JVal v;
        v.kind = JVal::Kind::Arr;
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return v;
        }
        for (;;) {
            v.arr.push_back(value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            --depth_;
            return v;
        }
    }

    JVal
    string()
    {
        expect('"');
        JVal v;
        v.kind = JVal::Kind::Str;
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return v;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    break;
                char e = s_[pos_++];
                switch (e) {
                  case '"': v.str += '"'; break;
                  case '\\': v.str += '\\'; break;
                  case '/': v.str += '/'; break;
                  case 'n': v.str += '\n'; break;
                  case 't': v.str += '\t'; break;
                  case 'r': v.str += '\r'; break;
                  default:
                    stsim_fatal("serde: unsupported escape '\\%c'", e);
                }
                continue;
            }
            v.str += c;
        }
        stsim_fatal("serde: unterminated string");
    }

    JVal
    boolean()
    {
        JVal v;
        v.kind = JVal::Kind::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.b = true;
            pos_ += 4;
            return v;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            v.b = false;
            pos_ += 5;
            return v;
        }
        stsim_fatal("serde: bad literal at offset %zu", pos_);
    }

    JVal
    null()
    {
        if (s_.compare(pos_, 4, "null") != 0)
            stsim_fatal("serde: bad literal at offset %zu", pos_);
        pos_ += 4;
        return JVal{};
    }

    JVal
    number()
    {
        std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        while (pos_ < s_.size() &&
               ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' ||
                s_[pos_] == '+')) {
            ++pos_;
        }
        if (pos_ == start)
            stsim_fatal("serde: bad token at offset %zu", start);
        JVal v;
        v.kind = JVal::Kind::Num;
        v.num.assign(s_.substr(start, pos_ - start));
        return v;
    }

    static constexpr std::size_t kMaxDepth = 64;

    std::string_view s_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

// ---------------------------------------------------------------------------
// Writer: appends "key":value pairs with a fixed field order so that
// serialize(parse(serialize(x))) is byte-identical to serialize(x).
// ---------------------------------------------------------------------------

class Obj
{
  public:
    explicit Obj(std::string &out) : out_(out) { out_ += '{'; }

    void
    raw(const char *key, const std::string &value)
    {
        sep();
        out_ += '"';
        out_ += key;
        out_ += "\":";
        out_ += value;
    }

    void
    str(const char *key, const std::string &value)
    {
        sep();
        out_ += '"';
        out_ += key;
        out_ += "\":";
        appendQuoted(out_, value);
    }

    void
    u64(const char *key, std::uint64_t value)
    {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%" PRIu64, value);
        raw(key, buf);
    }

    void
    boolean(const char *key, bool value)
    {
        raw(key, value ? "true" : "false");
    }

    void
    dbl(const char *key, double value)
    {
        str(key, doubleToHex(value));
    }

    void
    close()
    {
        out_ += '}';
    }

    static void
    appendQuoted(std::string &out, const std::string &s)
    {
        out += '"';
        for (char c : s) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              case '\r': out += "\\r"; break;
              default: out += c;
            }
        }
        out += '"';
    }

  private:
    void
    sep()
    {
        if (!first_)
            out_ += ',';
        first_ = false;
    }

    std::string &out_;
    bool first_ = true;
};

std::string
dblArray(const double *v, std::size_t n)
{
    std::string out = "[";
    for (std::size_t i = 0; i < n; ++i) {
        if (i)
            out += ',';
        Obj::appendQuoted(out, doubleToHex(v[i]));
    }
    out += ']';
    return out;
}

void
parseDblArray(const JVal &v, double *out, std::size_t n)
{
    if (v.kind != JVal::Kind::Arr || v.arr.size() != n)
        stsim_fatal("serde: expected an array of %zu doubles", n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = v.arr[i].asDouble();
}

// ---------------------------------------------------------------------------
// Enum <-> name maps. To-string reuses the display-name functions the
// rest of the codebase already exposes.
// ---------------------------------------------------------------------------

ConfKind
confKindFromName(const std::string &s)
{
    for (ConfKind k : {ConfKind::None, ConfKind::Bpru, ConfKind::Jrs,
                       ConfKind::Perfect}) {
        if (s == confKindName(k))
            return k;
    }
    stsim_fatal("serde: unknown confKind '%s'", s.c_str());
}

OracleMode
oracleModeFromName(const std::string &s)
{
    for (OracleMode m :
         {OracleMode::None, OracleMode::OracleFetch,
          OracleMode::OracleDecode, OracleMode::OracleSelect}) {
        if (s == oracleModeName(m))
            return m;
    }
    stsim_fatal("serde: unknown oracle mode '%s'", s.c_str());
}

const char *
specModeName(SpecControlMode m)
{
    switch (m) {
      case SpecControlMode::None: return "none";
      case SpecControlMode::Selective: return "selective";
      case SpecControlMode::PipelineGating: return "pipeline-gating";
    }
    return "?";
}

SpecControlMode
specModeFromName(const std::string &s)
{
    for (SpecControlMode m :
         {SpecControlMode::None, SpecControlMode::Selective,
          SpecControlMode::PipelineGating}) {
        if (s == specModeName(m))
            return m;
    }
    stsim_fatal("serde: unknown specControl mode '%s'", s.c_str());
}

BandwidthLevel
bandwidthFromName(const std::string &s)
{
    for (BandwidthLevel l :
         {BandwidthLevel::Full, BandwidthLevel::Half,
          BandwidthLevel::Quarter, BandwidthLevel::Stall}) {
        if (s == bandwidthLevelName(l))
            return l;
    }
    stsim_fatal("serde: unknown bandwidth level '%s'", s.c_str());
}

const char *
gatingStyleName(ClockGatingStyle s)
{
    return s == ClockGatingStyle::cc0 ? "cc0" : "cc3";
}

ClockGatingStyle
gatingStyleFromName(const std::string &s)
{
    if (s == "cc0")
        return ClockGatingStyle::cc0;
    if (s == "cc3")
        return ClockGatingStyle::cc3;
    stsim_fatal("serde: unknown clock-gating style '%s'", s.c_str());
}

const char *
bpredKindName(BpredConfig::Kind k)
{
    return k == BpredConfig::Kind::Gshare ? "gshare" : "bimodal";
}

BpredConfig::Kind
bpredKindFromName(const std::string &s)
{
    if (s == "gshare")
        return BpredConfig::Kind::Gshare;
    if (s == "bimodal")
        return BpredConfig::Kind::Bimodal;
    stsim_fatal("serde: unknown predictor kind '%s'", s.c_str());
}

// ---------------------------------------------------------------------------
// Per-struct serializers. Field order is the declaration order of the
// corresponding struct.
// ---------------------------------------------------------------------------

std::string
cacheToJson(const CacheConfig &c)
{
    std::string out;
    Obj o(out);
    o.str("name", c.name);
    o.u64("sizeBytes", c.sizeBytes);
    o.u64("ways", c.ways);
    o.u64("lineBytes", c.lineBytes);
    o.u64("hitLatency", c.hitLatency);
    o.close();
    return out;
}

CacheConfig
cacheFromJson(const JVal &v)
{
    CacheConfig c;
    c.name = v.at("name").asStr();
    c.sizeBytes = v.at("sizeBytes").asSize();
    c.ways = v.at("ways").asSize();
    c.lineBytes = v.at("lineBytes").asSize();
    c.hitLatency = v.at("hitLatency").asUnsigned();
    return c;
}

std::string
memoryToJson(const MemoryConfig &m)
{
    std::string out;
    Obj o(out);
    o.raw("il1", cacheToJson(m.il1));
    o.raw("dl1", cacheToJson(m.dl1));
    o.raw("l2", cacheToJson(m.l2));
    o.u64("memLatency", m.memLatency);
    o.u64("tlbEntries", m.tlbEntries);
    o.u64("pageBytes", m.pageBytes);
    o.u64("tlbMissPenalty", m.tlbMissPenalty);
    o.u64("dl1ExtraLatency", m.dl1ExtraLatency);
    o.close();
    return out;
}

MemoryConfig
memoryFromJson(const JVal &v)
{
    MemoryConfig m;
    m.il1 = cacheFromJson(v.at("il1"));
    m.dl1 = cacheFromJson(v.at("dl1"));
    m.l2 = cacheFromJson(v.at("l2"));
    m.memLatency = v.at("memLatency").asUnsigned();
    m.tlbEntries = v.at("tlbEntries").asSize();
    m.pageBytes = v.at("pageBytes").asSize();
    m.tlbMissPenalty = v.at("tlbMissPenalty").asUnsigned();
    m.dl1ExtraLatency = v.at("dl1ExtraLatency").asUnsigned();
    return m;
}

std::string
coreToJson(const CoreConfig &c)
{
    std::string out;
    Obj o(out);
    o.u64("fetchWidth", c.fetchWidth);
    o.u64("decodeWidth", c.decodeWidth);
    o.u64("issueWidth", c.issueWidth);
    o.u64("commitWidth", c.commitWidth);
    o.u64("maxTakenBranchesPerFetch", c.maxTakenBranchesPerFetch);
    o.u64("ruuSize", c.ruuSize);
    o.u64("lsqSize", c.lsqSize);
    o.u64("numIntAlu", c.numIntAlu);
    o.u64("numIntMult", c.numIntMult);
    o.u64("numMemPorts", c.numMemPorts);
    o.u64("numFpAlu", c.numFpAlu);
    o.u64("numFpMult", c.numFpMult);
    o.u64("pipelineStages", c.pipelineStages);
    o.u64("fetchStages", c.fetchStages);
    o.u64("decodeStages", c.decodeStages);
    o.u64("extraExecLatency", c.extraExecLatency);
    o.u64("extraDl1Latency", c.extraDl1Latency);
    o.u64("extraMispredictPenalty", c.extraMispredictPenalty);
    o.u64("btbMissPenalty", c.btbMissPenalty);
    o.str("oracle", oracleModeName(c.oracle));
    o.close();
    return out;
}

CoreConfig
coreFromJson(const JVal &v)
{
    CoreConfig c;
    c.fetchWidth = v.at("fetchWidth").asUnsigned();
    c.decodeWidth = v.at("decodeWidth").asUnsigned();
    c.issueWidth = v.at("issueWidth").asUnsigned();
    c.commitWidth = v.at("commitWidth").asUnsigned();
    c.maxTakenBranchesPerFetch =
        v.at("maxTakenBranchesPerFetch").asUnsigned();
    c.ruuSize = v.at("ruuSize").asUnsigned();
    c.lsqSize = v.at("lsqSize").asUnsigned();
    c.numIntAlu = v.at("numIntAlu").asUnsigned();
    c.numIntMult = v.at("numIntMult").asUnsigned();
    c.numMemPorts = v.at("numMemPorts").asUnsigned();
    c.numFpAlu = v.at("numFpAlu").asUnsigned();
    c.numFpMult = v.at("numFpMult").asUnsigned();
    c.pipelineStages = v.at("pipelineStages").asUnsigned();
    c.fetchStages = v.at("fetchStages").asUnsigned();
    c.decodeStages = v.at("decodeStages").asUnsigned();
    c.extraExecLatency = v.at("extraExecLatency").asUnsigned();
    c.extraDl1Latency = v.at("extraDl1Latency").asUnsigned();
    c.extraMispredictPenalty =
        v.at("extraMispredictPenalty").asUnsigned();
    c.btbMissPenalty = v.at("btbMissPenalty").asUnsigned();
    c.oracle = oracleModeFromName(v.at("oracle").asStr());
    return c;
}

std::string
bpredToJson(const BpredConfig &b)
{
    std::string out;
    Obj o(out);
    o.str("kind", bpredKindName(b.kind));
    o.u64("predictorBytes", b.predictorBytes);
    o.u64("btbEntries", b.btbEntries);
    o.u64("btbWays", b.btbWays);
    o.u64("rasEntries", b.rasEntries);
    o.close();
    return out;
}

BpredConfig
bpredFromJson(const JVal &v)
{
    BpredConfig b;
    b.kind = bpredKindFromName(v.at("kind").asStr());
    b.predictorBytes = v.at("predictorBytes").asSize();
    b.btbEntries = v.at("btbEntries").asSize();
    b.btbWays = v.at("btbWays").asSize();
    b.rasEntries = v.at("rasEntries").asSize();
    return b;
}

std::string
bpruParamsToJson(const BpruEstimator::Params &p)
{
    std::string out;
    Obj o(out);
    o.u64("missInc", p.missInc);
    o.u64("correctDec", p.correctDec);
    o.u64("allocValue", p.allocValue);
    o.u64("tagBits", p.tagBits);
    o.close();
    return out;
}

BpruEstimator::Params
bpruParamsFromJson(const JVal &v)
{
    BpruEstimator::Params p;
    p.missInc = v.at("missInc").asUnsigned();
    p.correctDec = v.at("correctDec").asUnsigned();
    p.allocValue = v.at("allocValue").asUnsigned();
    p.tagBits = v.at("tagBits").asUnsigned();
    return p;
}

std::string
actionToJson(const ThrottleAction &a)
{
    std::string out;
    Obj o(out);
    o.str("fetch", bandwidthLevelName(a.fetch));
    o.str("decode", bandwidthLevelName(a.decode));
    o.boolean("noSelect", a.noSelect);
    o.close();
    return out;
}

ThrottleAction
actionFromJson(const JVal &v)
{
    ThrottleAction a;
    a.fetch = bandwidthFromName(v.at("fetch").asStr());
    a.decode = bandwidthFromName(v.at("decode").asStr());
    a.noSelect = v.at("noSelect").asBool();
    return a;
}

std::string
specControlToJson(const SpecControlConfig &s)
{
    std::string out;
    Obj o(out);
    o.str("mode", specModeName(s.mode));
    std::string pol;
    {
        Obj p(pol);
        p.str("name", s.policy.name);
        std::string lv = "[";
        for (std::size_t i = 0; i < s.policy.byLevel.size(); ++i) {
            if (i)
                lv += ',';
            lv += actionToJson(s.policy.byLevel[i]);
        }
        lv += ']';
        p.raw("byLevel", lv);
        p.close();
    }
    o.raw("policy", pol);
    o.u64("gatingThreshold", s.gatingThreshold);
    o.close();
    return out;
}

SpecControlConfig
specControlFromJson(const JVal &v)
{
    SpecControlConfig s;
    s.mode = specModeFromName(v.at("mode").asStr());
    const JVal &pol = v.at("policy");
    s.policy.name = pol.at("name").asStr();
    const JVal &lv = pol.at("byLevel");
    if (lv.kind != JVal::Kind::Arr ||
        lv.arr.size() != s.policy.byLevel.size()) {
        stsim_fatal("serde: policy.byLevel must have %zu entries",
                    s.policy.byLevel.size());
    }
    for (std::size_t i = 0; i < s.policy.byLevel.size(); ++i)
        s.policy.byLevel[i] = actionFromJson(lv.arr[i]);
    s.gatingThreshold = v.at("gatingThreshold").asUnsigned();
    return s;
}

std::string
powerToJson(const PowerParams &p)
{
    std::string out;
    Obj o(out);
    o.str("style", gatingStyleName(p.style));
    o.dbl("idleFactor", p.idleFactor);
    o.dbl("frequencyHz", p.frequencyHz);
    o.raw("peakWatts", dblArray(p.peakWatts.data(), kNumPUnits));
    o.raw("ports", dblArray(p.ports.data(), kNumPUnits));
    o.close();
    return out;
}

PowerParams
powerFromJson(const JVal &v)
{
    PowerParams p;
    p.style = gatingStyleFromName(v.at("style").asStr());
    p.idleFactor = v.at("idleFactor").asDouble();
    p.frequencyHz = v.at("frequencyHz").asDouble();
    parseDblArray(v.at("peakWatts"), p.peakWatts.data(), kNumPUnits);
    parseDblArray(v.at("ports"), p.ports.data(), kNumPUnits);
    return p;
}

std::string
profileToJson(const BenchmarkProfile &p)
{
    std::string out;
    Obj o(out);
    o.str("name", p.name);
    o.dbl("targetMissRate", p.targetMissRate);
    o.dbl("condBranchFrac", p.condBranchFrac);
    o.u64("numBlocks", p.numBlocks);
    o.u64("numFuncs", p.numFuncs);
    o.dbl("fracJumpTerm", p.fracJumpTerm);
    o.dbl("fracCallTerm", p.fracCallTerm);
    o.dbl("fracRetTerm", p.fracRetTerm);
    o.dbl("fracLoop", p.fracLoop);
    o.dbl("fracPattern", p.fracPattern);
    o.dbl("fracBiased", p.fracBiased);
    o.dbl("fracChaotic", p.fracChaotic);
    o.dbl("loopPeriodMin", p.loopPeriodMin);
    o.dbl("loopPeriodMax", p.loopPeriodMax);
    o.dbl("biasedMissMin", p.biasedMissMin);
    o.dbl("biasedMissMax", p.biasedMissMax);
    o.dbl("chaoticTakenP", p.chaoticTakenP);
    o.dbl("fracLoad", p.fracLoad);
    o.dbl("fracStore", p.fracStore);
    o.dbl("fracIntMult", p.fracIntMult);
    o.dbl("fracFpAlu", p.fracFpAlu);
    o.dbl("fracFpMult", p.fracFpMult);
    o.dbl("srcChance", p.srcChance);
    o.dbl("depDistP", p.depDistP);
    o.u64("dataFootprintKB", p.dataFootprintKB);
    o.dbl("fracStackAccess", p.fracStackAccess);
    o.dbl("fracStreamAccess", p.fracStreamAccess);
    o.u64("hotDataKB", p.hotDataKB);
    o.dbl("hotDataFrac", p.hotDataFrac);
    o.dbl("blockLenScale", p.blockLenScale);
    o.dbl("biasedTakenFrac", p.biasedTakenFrac);
    o.u64("seed", p.seed);
    o.close();
    return out;
}

BenchmarkProfile
profileFromJson(const JVal &v)
{
    BenchmarkProfile p;
    p.name = v.at("name").asStr();
    p.targetMissRate = v.at("targetMissRate").asDouble();
    p.condBranchFrac = v.at("condBranchFrac").asDouble();
    p.numBlocks = v.at("numBlocks").asU32();
    p.numFuncs = v.at("numFuncs").asU32();
    p.fracJumpTerm = v.at("fracJumpTerm").asDouble();
    p.fracCallTerm = v.at("fracCallTerm").asDouble();
    p.fracRetTerm = v.at("fracRetTerm").asDouble();
    p.fracLoop = v.at("fracLoop").asDouble();
    p.fracPattern = v.at("fracPattern").asDouble();
    p.fracBiased = v.at("fracBiased").asDouble();
    p.fracChaotic = v.at("fracChaotic").asDouble();
    p.loopPeriodMin = v.at("loopPeriodMin").asDouble();
    p.loopPeriodMax = v.at("loopPeriodMax").asDouble();
    p.biasedMissMin = v.at("biasedMissMin").asDouble();
    p.biasedMissMax = v.at("biasedMissMax").asDouble();
    p.chaoticTakenP = v.at("chaoticTakenP").asDouble();
    p.fracLoad = v.at("fracLoad").asDouble();
    p.fracStore = v.at("fracStore").asDouble();
    p.fracIntMult = v.at("fracIntMult").asDouble();
    p.fracFpAlu = v.at("fracFpAlu").asDouble();
    p.fracFpMult = v.at("fracFpMult").asDouble();
    p.srcChance = v.at("srcChance").asDouble();
    p.depDistP = v.at("depDistP").asDouble();
    p.dataFootprintKB = v.at("dataFootprintKB").asU32();
    p.fracStackAccess = v.at("fracStackAccess").asDouble();
    p.fracStreamAccess = v.at("fracStreamAccess").asDouble();
    p.hotDataKB = v.at("hotDataKB").asU32();
    p.hotDataFrac = v.at("hotDataFrac").asDouble();
    p.blockLenScale = v.at("blockLenScale").asDouble();
    p.biasedTakenFrac = v.at("biasedTakenFrac").asDouble();
    p.seed = v.at("seed").asU64();
    return p;
}

std::string
coreStatsToJson(const CoreStats &c)
{
    std::string out;
    Obj o(out);
    o.u64("cycles", c.cycles);
    o.u64("committedInsts", c.committedInsts);
    o.u64("committedBranches", c.committedBranches);
    o.u64("committedCondBranches", c.committedCondBranches);
    o.u64("condMispredicts", c.condMispredicts);
    o.u64("fetchedInsts", c.fetchedInsts);
    o.u64("fetchedWrongPath", c.fetchedWrongPath);
    o.u64("decodedInsts", c.decodedInsts);
    o.u64("decodedWrongPath", c.decodedWrongPath);
    o.u64("dispatchedInsts", c.dispatchedInsts);
    o.u64("dispatchedWrongPath", c.dispatchedWrongPath);
    o.u64("issuedInsts", c.issuedInsts);
    o.u64("issuedWrongPath", c.issuedWrongPath);
    o.u64("squashes", c.squashes);
    o.u64("squashedInsts", c.squashedInsts);
    o.u64("btbMisfetches", c.btbMisfetches);
    o.u64("rasMispredicts", c.rasMispredicts);
    o.u64("fetchIcacheStall", c.fetchIcacheStall);
    o.u64("fetchRedirectStall", c.fetchRedirectStall);
    o.u64("fetchThrottled", c.fetchThrottled);
    o.u64("decodeThrottled", c.decodeThrottled);
    o.u64("oracleFetchStall", c.oracleFetchStall);
    o.u64("robFullStalls", c.robFullStalls);
    o.u64("lsqFullStalls", c.lsqFullStalls);
    o.u64("noSelectSkips", c.noSelectSkips);
    o.u64("loadsForwarded", c.loadsForwarded);
    o.u64("loadsBlockedByStore", c.loadsBlockedByStore);
    o.u64("oracleSelectSkips", c.oracleSelectSkips);
    o.u64("oracleDecodeDrops", c.oracleDecodeDrops);
    o.close();
    return out;
}

CoreStats
coreStatsFromJson(const JVal &v)
{
    CoreStats c;
    c.cycles = v.at("cycles").asU64();
    c.committedInsts = v.at("committedInsts").asU64();
    c.committedBranches = v.at("committedBranches").asU64();
    c.committedCondBranches = v.at("committedCondBranches").asU64();
    c.condMispredicts = v.at("condMispredicts").asU64();
    c.fetchedInsts = v.at("fetchedInsts").asU64();
    c.fetchedWrongPath = v.at("fetchedWrongPath").asU64();
    c.decodedInsts = v.at("decodedInsts").asU64();
    c.decodedWrongPath = v.at("decodedWrongPath").asU64();
    c.dispatchedInsts = v.at("dispatchedInsts").asU64();
    c.dispatchedWrongPath = v.at("dispatchedWrongPath").asU64();
    c.issuedInsts = v.at("issuedInsts").asU64();
    c.issuedWrongPath = v.at("issuedWrongPath").asU64();
    c.squashes = v.at("squashes").asU64();
    c.squashedInsts = v.at("squashedInsts").asU64();
    c.btbMisfetches = v.at("btbMisfetches").asU64();
    c.rasMispredicts = v.at("rasMispredicts").asU64();
    c.fetchIcacheStall = v.at("fetchIcacheStall").asU64();
    c.fetchRedirectStall = v.at("fetchRedirectStall").asU64();
    c.fetchThrottled = v.at("fetchThrottled").asU64();
    c.decodeThrottled = v.at("decodeThrottled").asU64();
    c.oracleFetchStall = v.at("oracleFetchStall").asU64();
    c.robFullStalls = v.at("robFullStalls").asU64();
    c.lsqFullStalls = v.at("lsqFullStalls").asU64();
    c.noSelectSkips = v.at("noSelectSkips").asU64();
    c.loadsForwarded = v.at("loadsForwarded").asU64();
    c.loadsBlockedByStore = v.at("loadsBlockedByStore").asU64();
    c.oracleSelectSkips = v.at("oracleSelectSkips").asU64();
    c.oracleDecodeDrops = v.at("oracleDecodeDrops").asU64();
    return c;
}

SimConfig
configFromJVal(const JVal &v)
{
    SimConfig cfg;
    cfg.benchmark = v.at("benchmark").asStr();
    if (const JVal *p = v.find("customProfile")) {
        if (p->kind != JVal::Kind::Null)
            cfg.customProfile = profileFromJson(*p);
    }
    cfg.maxInstructions = v.at("maxInstructions").asU64();
    cfg.warmupInstructions = v.at("warmupInstructions").asU64();
    cfg.runSeed = v.at("runSeed").asU64();
    cfg.core = coreFromJson(v.at("core"));
    cfg.memory = memoryFromJson(v.at("memory"));
    cfg.pipelineDepth = v.at("pipelineDepth").asUnsigned();
    cfg.bpred = bpredFromJson(v.at("bpred"));
    cfg.confKind = confKindFromName(v.at("confKind").asStr());
    cfg.confBytes = v.at("confBytes").asSize();
    cfg.jrsThreshold = v.at("jrsThreshold").asUnsigned();
    cfg.bpruParams = bpruParamsFromJson(v.at("bpruParams"));
    cfg.specControl = specControlFromJson(v.at("specControl"));
    cfg.power = powerFromJson(v.at("power"));
    cfg.finalized = v.at("finalized").asBool();
    return cfg;
}

SimResults
resultsFromJVal(const JVal &v)
{
    SimResults r;
    r.benchmark = v.at("benchmark").asStr();
    r.experiment = v.at("experiment").asStr();
    r.core = coreStatsFromJson(v.at("core"));
    r.ipc = v.at("ipc").asDouble();
    r.seconds = v.at("seconds").asDouble();
    r.avgPowerW = v.at("avgPowerW").asDouble();
    r.energyJ = v.at("energyJ").asDouble();
    r.edProduct = v.at("edProduct").asDouble();
    parseDblArray(v.at("unitEnergyJ"), r.unitEnergyJ.data(),
                  kNumPUnits);
    parseDblArray(v.at("unitWastedJ"), r.unitWastedJ.data(),
                  kNumPUnits);
    parseDblArray(v.at("unitActivity"), r.unitActivity.data(),
                  kNumPUnits);
    r.wastedEnergyJ = v.at("wastedEnergyJ").asDouble();
    r.condMissRate = v.at("condMissRate").asDouble();
    r.spec = v.at("spec").asDouble();
    r.pvn = v.at("pvn").asDouble();
    r.il1MissRate = v.at("il1MissRate").asDouble();
    r.dl1MissRate = v.at("dl1MissRate").asDouble();
    r.l2MissRate = v.at("l2MissRate").asDouble();
    return r;
}

} // namespace

FlatWriter &
FlatWriter::str(const char *k, std::string_view value)
{
    key(k);
    Obj::appendQuoted(out_, std::string(value));
    return *this;
}

FlatWriter &
FlatWriter::u64(const char *k, std::uint64_t value)
{
    key(k);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out_ += buf;
    return *this;
}

std::string
FlatWriter::finish()
{
    out_ += '}';
    return std::move(out_);
}

void
FlatWriter::key(const char *k)
{
    if (!first_)
        out_ += ',';
    first_ = false;
    out_ += '"';
    out_ += k;
    out_ += "\":";
}

namespace
{

/** Non-fatal scanner over one flat record; never touches stsim_fatal. */
class FlatScanner
{
  public:
    explicit FlatScanner(std::string_view s) : s_(s) {}

    bool
    scan(std::vector<FlatField> &out)
    {
        out.clear();
        if (!eat('{'))
            return false;
        if (eat('}'))
            return done();
        for (;;) {
            FlatField f;
            if (!string(f.key))
                return false;
            if (!eat(':'))
                return false;
            if (peek() == '"') {
                f.isString = true;
                if (!string(f.value))
                    return false;
            } else if (!integer(f.value)) {
                return false;
            }
            out.push_back(std::move(f));
            if (eat(','))
                continue;
            if (eat('}'))
                return done();
            return false;
        }
    }

  private:
    bool
    done()
    {
        return pos_ == s_.size();
    }

    char
    peek()
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (!eat('"'))
            return false;
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  default: return false;
                }
                continue;
            }
            out += c;
        }
        return false;
    }

    bool
    integer(std::string &out)
    {
        std::size_t start = pos_;
        while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9')
            ++pos_;
        if (pos_ == start)
            return false;
        out.assign(s_.substr(start, pos_ - start));
        return true;
    }

    std::string_view s_;
    std::size_t pos_ = 0;
};

} // namespace

ParseOutcome
parseFlat(std::string_view json, std::vector<FlatField> &out)
{
    if (FlatScanner(json).scan(out))
        return ParseOutcome{};
    return ParseOutcome{false, "malformed flat record"};
}

std::string
doubleToHex(double d)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", d);
    return buf;
}

double
doubleFromHex(std::string_view s)
{
    std::string z(s);
    char *end = nullptr;
    double d = std::strtod(z.c_str(), &end);
    if (!end || *end != '\0' || z.empty())
        stsim_fatal("serde: bad double '%s'", z.c_str());
    return d;
}

std::string
toJson(const SimConfig &cfg)
{
    std::string out;
    Obj o(out);
    o.str("benchmark", cfg.benchmark);
    if (cfg.customProfile)
        o.raw("customProfile", profileToJson(*cfg.customProfile));
    o.u64("maxInstructions", cfg.maxInstructions);
    o.u64("warmupInstructions", cfg.warmupInstructions);
    o.u64("runSeed", cfg.runSeed);
    o.raw("core", coreToJson(cfg.core));
    o.raw("memory", memoryToJson(cfg.memory));
    o.u64("pipelineDepth", cfg.pipelineDepth);
    o.raw("bpred", bpredToJson(cfg.bpred));
    o.str("confKind", confKindName(cfg.confKind));
    o.u64("confBytes", cfg.confBytes);
    o.u64("jrsThreshold", cfg.jrsThreshold);
    o.raw("bpruParams", bpruParamsToJson(cfg.bpruParams));
    o.raw("specControl", specControlToJson(cfg.specControl));
    o.raw("power", powerToJson(cfg.power));
    o.boolean("finalized", cfg.finalized);
    o.close();
    return out;
}

SimConfig
configFromJson(std::string_view json)
{
    return configFromJVal(Parser(json).parse());
}

std::string
toJson(const SimJob &job)
{
    std::string out;
    Obj o(out);
    o.str("experiment", job.experiment);
    o.raw("cfg", toJson(job.cfg));
    o.close();
    return out;
}

SimJob
jobFromJson(std::string_view json)
{
    JVal v = Parser(json).parse();
    SimJob j;
    j.experiment = v.at("experiment").asStr();
    j.cfg = configFromJVal(v.at("cfg"));
    return j;
}

ParseOutcome
parseServeRequest(std::string_view json, ServeRequest &out)
{
    // Every fatal the strict parser / config decoder raises on this
    // thread while the scope is active becomes a FatalError caught
    // below -- one request frame can never take the daemon down.
    FatalCaptureScope scope;
    try {
        JVal v = Parser(json).parse();
        out = ServeRequest{};
        if (const JVal *id = v.find("id"))
            out.id = id->asU64();
        if (const JVal *op = v.find("op")) {
            if (op->asStr() == "ping") {
                out.ping = true;
                return ParseOutcome{};
            }
            if (op->asStr() == "health") {
                out.health = true;
                return ParseOutcome{};
            }
            if (op->asStr() == "metrics") {
                out.metrics = true;
                return ParseOutcome{};
            }
            return ParseOutcome{false,
                                "unknown op '" + op->asStr() + "'"};
        }
        if (const JVal *dl = v.find("deadlineMs"))
            out.deadlineMs = dl->asU64();
        out.job.experiment = v.at("experiment").asStr();
        out.job.cfg = configFromJVal(v.at("cfg"));
        return ParseOutcome{};
    } catch (const FatalError &e) {
        return ParseOutcome{false, e.what()};
    }
}

namespace
{

/** Shared body of the non-fatal DOM-parse wrappers. */
template <typename Fn>
ParseOutcome
captureFatal(Fn &&fn)
{
    FatalCaptureScope scope;
    try {
        fn();
        return ParseOutcome{};
    } catch (const FatalError &e) {
        return ParseOutcome{false, e.what()};
    }
}

} // namespace

ParseOutcome
parseJob(std::string_view json, SimJob &out)
{
    return captureFatal([&] { out = jobFromJson(json); });
}

ParseOutcome
parseConfig(std::string_view json, SimConfig &out)
{
    return captureFatal([&] { out = configFromJson(json); });
}

ParseOutcome
parseResults(std::string_view json, SimResults &out)
{
    return captureFatal([&] { out = resultsFromJson(json); });
}

std::string
toJson(const SimResults &r)
{
    std::string out;
    Obj o(out);
    o.str("benchmark", r.benchmark);
    o.str("experiment", r.experiment);
    o.raw("core", coreStatsToJson(r.core));
    o.dbl("ipc", r.ipc);
    o.dbl("seconds", r.seconds);
    o.dbl("avgPowerW", r.avgPowerW);
    o.dbl("energyJ", r.energyJ);
    o.dbl("edProduct", r.edProduct);
    o.raw("unitEnergyJ", dblArray(r.unitEnergyJ.data(), kNumPUnits));
    o.raw("unitWastedJ", dblArray(r.unitWastedJ.data(), kNumPUnits));
    o.raw("unitActivity", dblArray(r.unitActivity.data(), kNumPUnits));
    o.dbl("wastedEnergyJ", r.wastedEnergyJ);
    o.dbl("condMissRate", r.condMissRate);
    o.dbl("spec", r.spec);
    o.dbl("pvn", r.pvn);
    o.dbl("il1MissRate", r.il1MissRate);
    o.dbl("dl1MissRate", r.dl1MissRate);
    o.dbl("l2MissRate", r.l2MissRate);
    o.close();
    return out;
}

SimResults
resultsFromJson(std::string_view json)
{
    return resultsFromJVal(Parser(json).parse());
}

std::string
resultRecordToJson(std::uint64_t index, const SimResults &r)
{
    std::string out;
    Obj o(out);
    o.u64("index", index);
    o.raw("results", toJson(r));
    o.close();
    return out;
}

std::pair<std::uint64_t, SimResults>
resultRecordFromJson(std::string_view json)
{
    JVal v = Parser(json).parse();
    return {v.at("index").asU64(), resultsFromJVal(v.at("results"))};
}

std::uint64_t
resultRecordIndex(std::string_view json)
{
    // Fast path for this serializer's own output ('index' is always
    // the first key): a streaming merge over millions of records must
    // not DOM-parse every full SimResults just to read its index.
    constexpr std::string_view kPrefix = "{\"index\":";
    if (json.substr(0, kPrefix.size()) == kPrefix) {
        std::uint64_t v = 0;
        std::size_t p = kPrefix.size();
        bool any = false;
        while (p < json.size() && json[p] >= '0' && json[p] <= '9') {
            v = v * 10 + static_cast<std::uint64_t>(json[p] - '0');
            ++p;
            any = true;
        }
        if (any && p < json.size() &&
            (json[p] == ',' || json[p] == '}')) {
            return v;
        }
    }
    JVal v = Parser(json).parse();
    return v.at("index").asU64();
}

} // namespace serde
} // namespace stsim
