/**
 * @file
 * stsim_runner: the out-of-process experiment engine CLI.
 *
 * A large benchmark x policy matrix runs as: one `manifest` emitting
 * the fully-specified job list (JSONL, one SimJob per line), N `run
 * --shard i/N` processes each executing its slice on its own RunPool
 * and streaming indexed results to disk as jobs complete, and one
 * `merge` restoring submission order. Because results carry their
 * manifest index and every double is hex-float encoded, the merged
 * stream is byte-identical to an in-process `dump` of the same
 * manifest -- the equivalence CI checks on every PR.
 *
 * Subcommands:
 *   manifest --suite NAME [--insts N] [--warmup N] [--depth D]
 *            [--out FILE]
 *   run      --manifest FILE [--shard I/N] [--jobs W]
 *            [--timeout-sec S] [--format jsonl|csv] [--out FILE]
 *   dump     --manifest FILE [--jobs W] [--format jsonl|csv]
 *            [--out FILE]
 *   merge    --out FILE (--manifest FILE | --expect N) [--allow-dups]
 *            SHARD...
 *   dispatch --manifest FILE --dir DIR [--shards N] ...
 *   resume   --dir DIR ...
 *   serve-worker   (stdin/stdout job loop for stsim_serve --isolate)
 *   help | --help | -h
 *
 * Sharding is by manifest index modulo N, so shard workloads stay
 * balanced even when a suite orders jobs benchmark-major. dispatch /
 * resume drive the fault-tolerant scheduler in src/dist/: shard
 * workers are subprocesses tracked through a crash-safe journal,
 * failed or straggling shards retry, and a SIGKILLed dispatcher picks
 * up exactly where the journal ends via resume.
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/job_serde.hh"
#include "core/parallel_harness.hh"
#include "core/results_sink.hh"
#include "core/simulator.hh"
#include "core/suites.hh"
#include "dist/host_launcher.hh"
#include "dist/shard_scheduler.hh"

using namespace stsim;

namespace
{

void
printUsage(std::FILE *to)
{
    std::fprintf(to,
        "usage:\n"
        "  stsim_runner manifest --suite NAME [--insts N] "
        "[--warmup N] [--depth D] [--out FILE]\n"
        "  stsim_runner run --manifest FILE [--shard I/N] "
        "[--jobs W] [--timeout-sec S]\n"
        "               [--format jsonl|csv] [--out FILE]\n"
        "  stsim_runner dump --manifest FILE [--jobs W] "
        "[--format jsonl|csv] [--out FILE]\n"
        "  stsim_runner merge --out FILE (--manifest FILE | "
        "--expect N) [--allow-dups] SHARD...\n"
        "  stsim_runner dispatch --manifest FILE --dir DIR "
        "[--shards N] [--jobs W] [--max-attempts K]\n"
        "               [--concurrent C] [--timeout-sec S] "
        "[--retry-backoff-ms B]\n"
        "               [--retry-backoff-cap-ms C] [--runner PATH]\n"
        "  stsim_runner resume --dir DIR [--jobs W] "
        "[--max-attempts K] [--concurrent C]\n"
        "               [--timeout-sec S] [--runner PATH]\n"
        "  stsim_runner serve-worker\n"
        "  stsim_runner help\n"
        "\n"
        "merge derives the expected record count from --manifest "
        "(--expect overrides it);\n"
        "--allow-dups keeps the first record per index and verifies "
        "re-run shards produced\n"
        "byte-identical lines. dispatch runs shards as local "
        "subprocesses behind a crash-safe\n"
        "journal (DIR/journal.jsonl); after any crash, resume "
        "re-launches only unfinished\n"
        "shards. Completed shard files are immutable "
        "(exclusive-rename finalize).\n");
}

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "stsim_runner: %s\n", msg);
    printUsage(stderr);
    std::exit(2);
}

/** Flag cursor: `need("--flag")` consumes and returns its value. */
struct Args
{
    int argc;
    char **argv;
    int i = 2;

    const char *
    need(const char *flag)
    {
        if (i + 1 >= argc)
            usage((std::string(flag) + " needs a value").c_str());
        return argv[++i];
    }
};

std::uint64_t
parseU64(const char *s, const char *what)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0')
        usage((std::string("bad ") + what + " '" + s + "'").c_str());
    return v;
}

/** Output stream selection: --out FILE or stdout. */
class OutFile
{
  public:
    explicit OutFile(const std::string &path) : path_(path)
    {
        if (path.empty() || path == "-")
            return;
        file_.open(path);
        if (!file_)
            stsim_fatal("cannot open '%s' for writing: %s",
                        path.c_str(), std::strerror(errno));
    }

    std::ostream &stream() { return file_.is_open() ? file_ : std::cout; }

    /**
     * Flush and verify. A stdout stream poisoned because the consumer
     * closed the pipe (`... | head`, SIGPIPE ignored) is a clean early
     * exit; any other failure is fatal, with the path named.
     */
    void
    finish(const char *what)
    {
        stream().flush();
        if (stream())
            return;
        if (!file_.is_open() && stdoutClosedByPeer()) {
            stsim_inform("%s: stdout consumer closed the pipe; "
                         "exiting", what);
            std::exit(0);
        }
        stsim_fatal("%s: write to '%s' failed", what,
                    file_.is_open() ? path_.c_str() : "<stdout>");
    }

  private:
    std::string path_;
    std::ofstream file_;
};

/**
 * Fault-injection sink for the dispatch gate (dist::kTestHangEnv):
 * commits and flushes the first record, then stalls so the test
 * harness can SIGKILL a worker that is deterministically mid-shard.
 */
class HangAfterFirstRecordSink : public ResultsSink
{
  public:
    explicit HangAfterFirstRecordSink(ResultsSink &inner)
        : inner_(inner)
    {
    }

    void
    write(std::uint64_t index, const SimResults &r) override
    {
        inner_.write(index, r);
        if (hung_)
            return;
        hung_ = true;
        inner_.flush(); // the record must be visible to the killer
        for (int i = 0; i < 1200; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        stsim_fatal("test hang expired without a SIGKILL");
    }

    void flush() override { inner_.flush(); }

  private:
    ResultsSink &inner_;
    bool hung_ = false;
};

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        stsim_fatal("cannot read '%s': %s", path.c_str(),
                    std::strerror(errno));
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

int
cmdManifest(Args &a)
{
    std::string suite, out_path;
    std::uint64_t insts = 0, warmup = 0, depth = 0;
    for (; a.i < a.argc; ++a.i) {
        if (!std::strcmp(a.argv[a.i], "--suite"))
            suite = a.need("--suite");
        else if (!std::strcmp(a.argv[a.i], "--insts"))
            insts = parseU64(a.need("--insts"), "--insts");
        else if (!std::strcmp(a.argv[a.i], "--warmup"))
            warmup = parseU64(a.need("--warmup"), "--warmup");
        else if (!std::strcmp(a.argv[a.i], "--depth"))
            depth = parseU64(a.need("--depth"), "--depth");
        else if (!std::strcmp(a.argv[a.i], "--out"))
            out_path = a.need("--out");
        else
            usage(("unknown flag " + std::string(a.argv[a.i])).c_str());
    }
    if (suite.empty())
        usage("manifest needs --suite");

    std::vector<SimJob> jobs = suiteJobs(suite);
    for (SimJob &j : jobs) {
        if (insts)
            j.cfg.maxInstructions = insts;
        if (warmup)
            j.cfg.warmupInstructions = warmup;
        if (depth)
            j.cfg.pipelineDepth = static_cast<unsigned>(depth);
    }

    OutFile out(out_path);
    for (const SimJob &j : jobs) {
        out.stream() << serde::toJson(j) << '\n';
        if (!out.stream())
            break; // poisoned (consumer gone?): finish() decides
    }
    out.finish("manifest");
    std::fprintf(stderr, "stsim_runner: %zu jobs (suite %s)\n",
                 jobs.size(), suite.c_str());
    return 0;
}

/**
 * Self-watchdog for `run --timeout-sec`: if the shard wedges (a hung
 * sink, a stuck filesystem), SIGALRM fires and the handler hard-exits
 * with code 124 -- async-signal-safe (raw write + _exit), so a CI
 * dispatcher never waits on a zombie shard forever.
 */
extern "C" void
runTimeoutHandler(int)
{
    static const char msg[] =
        "stsim_runner: run timed out (--timeout-sec watchdog)\n";
    ssize_t n = ::write(2, msg, sizeof msg - 1);
    (void)n;
    ::_exit(124);
}

int
cmdRunOrDump(Args &a, bool sharded)
{
    std::string manifest, out_path, format;
    std::uint64_t shard = 0, shards = 1;
    std::uint64_t timeoutSec = 0;
    unsigned workers = 0;
    for (; a.i < a.argc; ++a.i) {
        if (!std::strcmp(a.argv[a.i], "--manifest"))
            manifest = a.need("--manifest");
        else if (sharded && !std::strcmp(a.argv[a.i], "--shard")) {
            const char *spec = a.need("--shard");
            unsigned long long i = 0, n = 0;
            if (std::sscanf(spec, "%llu/%llu", &i, &n) != 2 || n == 0 ||
                i >= n) {
                usage("--shard wants I/N with 0 <= I < N");
            }
            shard = i;
            shards = n;
        } else if (!std::strcmp(a.argv[a.i], "--jobs"))
            workers = static_cast<unsigned>(
                parseU64(a.need("--jobs"), "--jobs"));
        else if (sharded && !std::strcmp(a.argv[a.i], "--timeout-sec"))
            timeoutSec =
                parseU64(a.need("--timeout-sec"), "--timeout-sec");
        else if (!std::strcmp(a.argv[a.i], "--format"))
            format = a.need("--format");
        else if (!std::strcmp(a.argv[a.i], "--out"))
            out_path = a.need("--out");
        else
            usage(("unknown flag " + std::string(a.argv[a.i])).c_str());
    }
    if (manifest.empty())
        usage("--manifest is required");
    if (timeoutSec) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sa.sa_handler = runTimeoutHandler;
        sigemptyset(&sa.sa_mask);
        ::sigaction(SIGALRM, &sa, nullptr);
        ::alarm(static_cast<unsigned>(timeoutSec));
    }

    std::vector<std::string> lines = readLines(manifest);
    if (lines.empty())
        stsim_fatal("manifest '%s' holds no jobs", manifest.c_str());
    std::unique_ptr<ResultsSink> sink = openSink(out_path, format);

    if (!sharded) {
        // In-process reference path: the whole matrix through the
        // vector API, then the same serializer. This is the byte-wise
        // comparison target for a sharded merge.
        std::vector<SimJob> all;
        all.reserve(lines.size());
        for (const std::string &line : lines)
            all.push_back(serde::jobFromJson(line));
        std::vector<SimResults> results = runJobs(all, workers);
        for (std::size_t i = 0; i < results.size(); ++i)
            sink->write(i, results[i]);
        sink->flush();
        std::fprintf(stderr, "stsim_runner: dumped %zu results\n",
                     results.size());
        return 0;
    }

    // Parse only this shard's slice: a shard of a huge manifest must
    // not pay the whole matrix's parse cost and job memory.
    std::vector<SimJob> mine;
    std::vector<std::uint64_t> globalIndex;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (i % shards == shard) {
            mine.push_back(serde::jobFromJson(lines[i]));
            globalIndex.push_back(i);
        }
    }
    ResultsSink *commit = sink.get();
    std::unique_ptr<HangAfterFirstRecordSink> hang;
    if (std::getenv(dist::kTestHangEnv)) {
        hang = std::make_unique<HangAfterFirstRecordSink>(*commit);
        commit = hang.get();
    }
    IndexRemapSink remap(*commit, std::move(globalIndex));
    StreamStats stats = runJobs(mine, remap, workers);
    std::fprintf(stderr,
                 "stsim_runner: shard %llu/%llu ran %zu of %zu jobs "
                 "(max %zu results held for reorder)\n",
                 static_cast<unsigned long long>(shard),
                 static_cast<unsigned long long>(shards), mine.size(),
                 lines.size(), stats.maxPending);
    return 0;
}

int
cmdMerge(Args &a)
{
    std::string out_path, manifest;
    std::uint64_t expect = 0;
    bool allowDups = false;
    std::vector<std::string> inputs;
    for (; a.i < a.argc; ++a.i) {
        if (!std::strcmp(a.argv[a.i], "--out"))
            out_path = a.need("--out");
        else if (!std::strcmp(a.argv[a.i], "--expect"))
            expect = parseU64(a.need("--expect"), "--expect");
        else if (!std::strcmp(a.argv[a.i], "--manifest"))
            manifest = a.need("--manifest");
        else if (!std::strcmp(a.argv[a.i], "--allow-dups"))
            allowDups = true;
        else if (a.argv[a.i][0] == '-')
            usage(("unknown flag " + std::string(a.argv[a.i])).c_str());
        else
            inputs.push_back(a.argv[a.i]);
    }
    if (inputs.empty())
        usage("merge needs at least one shard file");
    if (!expect && manifest.empty()) {
        // Without a completeness target, a stream truncated at the
        // tail would merge "cleanly" -- refuse to pretend.
        usage("merge needs --manifest (or --expect) to know the "
              "expected record count");
    }

    // The manifest is the authority on what a complete merge holds:
    // records are indexed 0..jobs-1, so its line count IS the
    // expected index set. --expect stays as an explicit override.
    if (!expect) {
        expect = dist::countRecords(manifest);
        if (!expect)
            stsim_fatal("merge: manifest '%s' holds no jobs",
                        manifest.c_str());
    }

    // Streaming k-way merge: each shard file is already
    // index-ascending (the sink commits in submission order), so one
    // line per open shard is all that is ever held — merge memory is
    // O(shards), not O(matrix). Records pass through verbatim, so the
    // merged bytes are the producing serializer's bytes.
    struct Cursor
    {
        std::ifstream in;
        std::string line;
        std::uint64_t idx = 0;
        bool live = false;
    };
    std::vector<Cursor> cursors(inputs.size());
    auto advance = [&](std::size_t c) {
        Cursor &cur = cursors[c];
        const bool had = cur.live;
        const std::uint64_t prev = cur.idx;
        cur.live = false;
        while (std::getline(cur.in, cur.line)) {
            if (cur.line.empty())
                continue;
            std::uint64_t idx = serde::resultRecordIndex(cur.line);
            if (had && idx <= prev) {
                stsim_fatal("merge: '%s' is not index-ascending",
                            inputs[c].c_str());
            }
            cur.idx = idx;
            cur.live = true;
            return;
        }
    };
    for (std::size_t c = 0; c < inputs.size(); ++c) {
        cursors[c].in.open(inputs[c]);
        if (!cursors[c].in)
            stsim_fatal("cannot read '%s': %s", inputs[c].c_str(),
                        std::strerror(errno));
        advance(c);
    }

    OutFile out(out_path);
    std::uint64_t want = 0;
    std::uint64_t dupsDropped = 0;
    std::string lastEmitted;
    for (;;) {
        std::size_t min_c = inputs.size();
        for (std::size_t c = 0; c < cursors.size(); ++c) {
            if (cursors[c].live &&
                (min_c == inputs.size() ||
                 cursors[c].idx < cursors[min_c].idx)) {
                min_c = c;
            }
        }
        if (min_c == inputs.size())
            break;
        if (cursors[min_c].idx < want) {
            if (!allowDups) {
                stsim_fatal("merge: duplicate result index %llu "
                            "(re-run shards need --allow-dups)",
                            static_cast<unsigned long long>(
                                cursors[min_c].idx));
            }
            // Dup-tolerant path for re-run shards: because every
            // cursor is primed before the loop and each file is
            // strictly index-ascending, a duplicate can only be a
            // copy of the record emitted immediately before -- so a
            // single held line suffices to verify the re-run is
            // byte-identical before the copy is discarded.
            if (cursors[min_c].idx != want - 1 ||
                cursors[min_c].line != lastEmitted) {
                stsim_fatal("merge: duplicate records for index %llu "
                            "are not byte-identical (shard re-run "
                            "was not deterministic?)",
                            static_cast<unsigned long long>(
                                cursors[min_c].idx));
            }
            ++dupsDropped;
            advance(min_c);
            continue;
        }
        if (cursors[min_c].idx > want)
            stsim_fatal("merge: missing result index %llu",
                        static_cast<unsigned long long>(want));
        lastEmitted = cursors[min_c].line;
        out.stream() << lastEmitted << '\n';
        if (!out.stream()) {
            // Either a vanished stdout consumer (clean exit 0 inside
            // finish) or a real write failure (fatal) -- but never a
            // truncated merge passed off as complete.
            out.finish("merge");
        }
        ++want;
        advance(min_c);
    }
    if (expect && want != expect) {
        stsim_fatal("merge: expected %llu records, found %llu",
                    static_cast<unsigned long long>(expect),
                    static_cast<unsigned long long>(want));
    }
    if (want == 0)
        stsim_fatal("merge: shard files hold no records");
    out.finish("merge");
    std::fprintf(stderr,
                 "stsim_runner: merged %llu results from %zu "
                 "shard files (%llu duplicate record(s) verified "
                 "and dropped)\n",
                 static_cast<unsigned long long>(want), inputs.size(),
                 static_cast<unsigned long long>(dupsDropped));
    return 0;
}

/**
 * Fleet worker mode for stsim_serve --isolate: one JSONL request
 * frame per stdin line (the ServeRequest shape the daemon already
 * speaks), one reply line per request on stdout. Results use the
 * exact `dump` serializer, so whatever the daemon forwards verbatim
 * stays byte-identical to an in-process run. A hostile config becomes
 * a structured bad_request reply via FatalCaptureScope; a genuine
 * crash takes down only this process -- that is the point.
 */
int
cmdServeWorker(Args &a)
{
    if (a.i < a.argc)
        usage("serve-worker takes no flags");
    const char *crashMarker = std::getenv(dist::kTestCrashOnJobEnv);

    // Hello line first: the supervisor treats it as proof the exec
    // succeeded and the pipe is live before dispatching any job.
    {
        serde::FlatWriter hello;
        hello.u64("worker_hello",
                  static_cast<std::uint64_t>(::getpid()));
        std::string line = hello.finish();
        line.push_back('\n');
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fflush(stdout);
    }

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        serde::ServeRequest req;
        std::string err;
        std::string reply;
        if (!serde::tryParseServeRequest(line, req, err)) {
            serde::FlatWriter w;
            w.str("error", "bad_request");
            w.u64("id", 0);
            w.str("detail", err);
            reply = w.finish();
        } else if (req.ping || req.health) {
            serde::FlatWriter w;
            w.u64("pong", req.id);
            reply = w.finish();
        } else {
            if (crashMarker && *crashMarker &&
                req.job.experiment.find(crashMarker) !=
                    std::string::npos) {
                // Fault injection (dist::kTestCrashOnJobEnv): commit a
                // torn partial reply, then die mid-job. The supervisor
                // must discard the fragment and report the crash.
                std::fputs("{\"index\":", stdout);
                std::fflush(stdout);
                volatile int *p = nullptr;
                *p = 1; // SIGSEGV
            }
            FatalCaptureScope scope;
            try {
                Simulator sim(req.job.cfg);
                SimResults r = sim.run();
                r.experiment = req.job.experiment;
                reply = serde::resultRecordToJson(req.id, r);
            } catch (const FatalError &e) {
                serde::FlatWriter w;
                w.str("error", "bad_request");
                w.u64("id", req.id);
                w.str("detail", e.what());
                reply = w.finish();
            }
        }
        reply.push_back('\n');
        if (std::fwrite(reply.data(), 1, reply.size(), stdout) !=
                reply.size() ||
            std::fflush(stdout) != 0) {
            return 0; // supervisor is gone; nothing left to serve
        }
    }
    // stdin EOF: the supervisor closed our pipe -- clean retirement.
    return 0;
}

int
cmdDispatchOrResume(Args &a, bool isResume)
{
    dist::DispatchOptions opts;
    std::string runner;
    for (; a.i < a.argc; ++a.i) {
        if (!isResume && !std::strcmp(a.argv[a.i], "--manifest"))
            opts.manifest = a.need("--manifest");
        else if (!std::strcmp(a.argv[a.i], "--dir"))
            opts.dir = a.need("--dir");
        else if (!isResume && !std::strcmp(a.argv[a.i], "--shards"))
            opts.shards = parseU64(a.need("--shards"), "--shards");
        else if (!std::strcmp(a.argv[a.i], "--jobs"))
            opts.workersPerShard = static_cast<unsigned>(
                parseU64(a.need("--jobs"), "--jobs"));
        else if (!std::strcmp(a.argv[a.i], "--max-attempts"))
            opts.maxAttempts = static_cast<unsigned>(
                parseU64(a.need("--max-attempts"), "--max-attempts"));
        else if (!std::strcmp(a.argv[a.i], "--concurrent"))
            opts.maxConcurrent = static_cast<unsigned>(
                parseU64(a.need("--concurrent"), "--concurrent"));
        else if (!std::strcmp(a.argv[a.i], "--timeout-sec"))
            opts.shardTimeout = std::chrono::seconds(
                parseU64(a.need("--timeout-sec"), "--timeout-sec"));
        else if (!std::strcmp(a.argv[a.i], "--retry-backoff-ms"))
            opts.retryBackoffBaseMs = parseU64(
                a.need("--retry-backoff-ms"), "--retry-backoff-ms");
        else if (!std::strcmp(a.argv[a.i], "--retry-backoff-cap-ms"))
            opts.retryBackoffCapMs =
                parseU64(a.need("--retry-backoff-cap-ms"),
                         "--retry-backoff-cap-ms");
        else if (!std::strcmp(a.argv[a.i], "--runner"))
            runner = a.need("--runner");
        else if (!isResume &&
                 !std::strcmp(a.argv[a.i], "--test-kill-shard"))
            opts.testKillShard = parseU64(a.need("--test-kill-shard"),
                                          "--test-kill-shard");
        else if (!isResume &&
                 !std::strcmp(a.argv[a.i], "--test-die-after-kill"))
            opts.testDieAfterKill = true;
        else
            usage(("unknown flag " + std::string(a.argv[a.i])).c_str());
    }
    if (opts.dir.empty())
        usage("--dir is required");
    if (!isResume && opts.manifest.empty())
        usage("--manifest is required");
    if (opts.maxAttempts == 0)
        usage("--max-attempts must be positive");

    if (runner.empty())
        runner = dist::LocalProcessLauncher::selfExecutable();
    dist::LocalProcessLauncher launcher(runner);
    dist::ShardScheduler sched(std::move(opts), launcher);
    return isResume ? sched.resume() : sched.dispatch();
}

} // namespace

int
main(int argc, char **argv)
{
    // Piping `manifest`/`merge`/`dump` output into `head` must not
    // kill the process with SIGPIPE: ignore it and let writes fail
    // with EPIPE, which the stream paths turn into a clean exit 0.
    ::signal(SIGPIPE, SIG_IGN);

    if (argc < 2)
        usage();
    Args a{argc, argv};
    const char *cmd = argv[1];
    if (!std::strcmp(cmd, "help") || !std::strcmp(cmd, "--help") ||
        !std::strcmp(cmd, "-h")) {
        printUsage(stdout);
        return 0;
    }
    if (!std::strcmp(cmd, "manifest"))
        return cmdManifest(a);
    if (!std::strcmp(cmd, "run"))
        return cmdRunOrDump(a, /*sharded=*/true);
    if (!std::strcmp(cmd, "dump"))
        return cmdRunOrDump(a, /*sharded=*/false);
    if (!std::strcmp(cmd, "merge"))
        return cmdMerge(a);
    if (!std::strcmp(cmd, "dispatch"))
        return cmdDispatchOrResume(a, /*isResume=*/false);
    if (!std::strcmp(cmd, "resume"))
        return cmdDispatchOrResume(a, /*isResume=*/true);
    if (!std::strcmp(cmd, "serve-worker"))
        return cmdServeWorker(a);
    usage(("unknown subcommand '" + std::string(cmd) + "'").c_str());
}
