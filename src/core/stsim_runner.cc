/**
 * @file
 * stsim_runner: the out-of-process experiment engine CLI.
 *
 * A large benchmark x policy matrix runs as: one `manifest` emitting
 * the fully-specified job list (JSONL, one SimJob per line), N `run
 * --shard i/N` processes each executing its slice on its own RunPool
 * and streaming indexed results to disk as jobs complete, and one
 * `merge` restoring submission order. Because results carry their
 * manifest index and every double is hex-float encoded, the merged
 * stream is byte-identical to an in-process `dump` of the same
 * manifest -- the equivalence CI checks on every PR.
 *
 * Subcommands:
 *   manifest --suite NAME [--insts N] [--warmup N] [--depth D]
 *            [--out FILE]
 *   run      --manifest FILE [--shard I/N] [--jobs W]
 *            [--timeout-sec S] [--format jsonl|csv] [--out FILE]
 *            [--memoize-warmup] [--from-snapshot FILE]
 *   dump     --manifest FILE [--jobs W] [--format jsonl|csv]
 *            [--out FILE] [--memoize-warmup] [--from-snapshot FILE]
 *   snapshot --manifest FILE [--index I] [--out FILE]
 *   merge    --out FILE (--manifest FILE | --expect N) [--allow-dups]
 *            SHARD...
 *   dispatch --manifest FILE --dir DIR [--shards N] ...
 *   resume   --dir DIR ...
 *   serve-worker   (stdin/stdout job loop for stsim_serve --isolate)
 *   help | --help | -h
 *
 * Sharding is by manifest index modulo N, so shard workloads stay
 * balanced even when a suite orders jobs benchmark-major. dispatch /
 * resume drive the fault-tolerant scheduler in src/dist/: shard
 * workers are subprocesses tracked through a crash-safe journal,
 * failed or straggling shards retry, and a SIGKILLed dispatcher picks
 * up exactly where the journal ends via resume.
 *
 * snapshot / --from-snapshot / --memoize-warmup expose the warmup
 * checkpoint API (core/state_serde.hh): `snapshot` runs one job's
 * warmup and writes the machine-state checkpoint; `run`/`dump
 * --from-snapshot` fork every job from that on-disk checkpoint, and
 * `--memoize-warmup` warms each distinct warmup-equivalence class
 * once per wave in memory. All of them commit results byte-identical
 * to from-scratch runs (the snapshot-equivalence CI gate).
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "common/arg_parse.hh"
#include "common/logging.hh"
#include "core/job_serde.hh"
#include "core/parallel_harness.hh"
#include "core/results_sink.hh"
#include "core/simulator.hh"
#include "core/suites.hh"
#include "dist/host_launcher.hh"
#include "dist/shard_scheduler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace stsim;

namespace
{

void
printUsage(std::FILE *to)
{
    std::fprintf(to,
        "usage:\n"
        "  stsim_runner manifest --suite NAME [--insts N] "
        "[--warmup N] [--depth D] [--out FILE]\n"
        "  stsim_runner run --manifest FILE [--shard I/N] "
        "[--jobs W] [--timeout-sec S]\n"
        "               [--format jsonl|csv] [--out FILE] "
        "[--memoize-warmup]\n"
        "               [--from-snapshot FILE] [--trace FILE] "
        "[--metrics FILE]\n"
        "  stsim_runner dump --manifest FILE [--jobs W] "
        "[--format jsonl|csv] [--out FILE]\n"
        "               [--memoize-warmup] [--from-snapshot FILE] "
        "[--trace FILE]\n"
        "               [--metrics FILE]\n"
        "  stsim_runner snapshot --manifest FILE [--index I] "
        "[--out FILE]\n"
        "  stsim_runner merge --out FILE (--manifest FILE | "
        "--expect N) [--allow-dups] SHARD...\n"
        "  stsim_runner dispatch --manifest FILE --dir DIR "
        "[--shards N] [--jobs W] [--max-attempts K]\n"
        "               [--concurrent C] [--timeout-sec S] "
        "[--retry-backoff-ms B]\n"
        "               [--retry-backoff-cap-ms C] [--runner PATH] "
        "[--trace FILE]\n"
        "               [--metrics FILE]\n"
        "  stsim_runner resume --dir DIR [--jobs W] "
        "[--max-attempts K] [--concurrent C]\n"
        "               [--timeout-sec S] [--runner PATH] "
        "[--trace FILE] [--metrics FILE]\n"
        "  stsim_runner serve-worker\n"
        "  stsim_runner help\n"
        "\n"
        "merge derives the expected record count from --manifest "
        "(--expect overrides it);\n"
        "--allow-dups keeps the first record per index and verifies "
        "re-run shards produced\n"
        "byte-identical lines. dispatch runs shards as local "
        "subprocesses behind a crash-safe\n"
        "journal (DIR/journal.jsonl); after any crash, resume "
        "re-launches only unfinished\n"
        "shards. Completed shard files are immutable "
        "(exclusive-rename finalize).\n"
        "\n"
        "snapshot runs one manifest job's warmup (--index, default 0) "
        "and writes its\n"
        "machine-state checkpoint; run/dump --from-snapshot fork every "
        "job from that\n"
        "checkpoint (every job must share the snapshot's warmup class: "
        "only run length\n"
        "and power parameters may differ). --memoize-warmup instead "
        "warms each distinct\n"
        "class once per wave, in memory. Both commit results "
        "byte-identical to\n"
        "from-scratch runs.\n"
        "\n"
        "--trace FILE writes a Chrome trace_event JSON span trace of "
        "the command\n"
        "(open it in Perfetto or chrome://tracing); --metrics FILE "
        "writes the final\n"
        "metrics-registry snapshot as one JSONL record. Neither "
        "perturbs results:\n"
        "output files are byte-identical with and without them.\n");
}

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "stsim_runner: %s\n", msg);
    printUsage(stderr);
    std::exit(2);
}

std::uint64_t
parseU64(const char *s, const char *what)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0')
        usage((std::string("bad ") + what + " '" + s + "'").c_str());
    return v;
}

/**
 * The runner's diagnostic style for the shared FlagSet parser: every
 * parse error is a usage() exit-2 with the exact historical message
 * shapes ("X needs a value", "bad X 'V'", "unknown flag X"), asserted
 * verbatim in tests/test_runner_cli.cc.
 */
args::Diag
runnerDiag()
{
    args::Diag d;
    d.missingValue = [](const char *flag) {
        usage((std::string(flag) + " needs a value").c_str());
    };
    d.unknown = [](const char *arg) {
        usage(("unknown flag " + std::string(arg)).c_str());
    };
    d.parseU64 = [](const char *flag, const char *value) {
        return parseU64(value, flag);
    };
    return d;
}

/** Output stream selection: --out FILE or stdout. */
class OutFile
{
  public:
    explicit OutFile(const std::string &path) : path_(path)
    {
        if (path.empty() || path == "-")
            return;
        file_.open(path);
        if (!file_)
            stsim_fatal("cannot open '%s' for writing: %s",
                        path.c_str(), std::strerror(errno));
    }

    std::ostream &stream() { return file_.is_open() ? file_ : std::cout; }

    /**
     * Flush and verify. A stdout stream poisoned because the consumer
     * closed the pipe (`... | head`, SIGPIPE ignored) is a clean early
     * exit; any other failure is fatal, with the path named.
     */
    void
    finish(const char *what)
    {
        stream().flush();
        if (stream())
            return;
        if (!file_.is_open() && stdoutClosedByPeer()) {
            stsim_inform("%s: stdout consumer closed the pipe; "
                         "exiting", what);
            std::exit(0);
        }
        stsim_fatal("%s: write to '%s' failed", what,
                    file_.is_open() ? path_.c_str() : "<stdout>");
    }

  private:
    std::string path_;
    std::ofstream file_;
};

/**
 * Fault-injection sink for the dispatch gate (dist::kTestHangEnv):
 * commits and flushes the first record, then stalls so the test
 * harness can SIGKILL a worker that is deterministically mid-shard.
 */
class HangAfterFirstRecordSink : public ResultsSink
{
  public:
    explicit HangAfterFirstRecordSink(ResultsSink &inner)
        : inner_(inner)
    {
    }

    void
    write(std::uint64_t index, const SimResults &r) override
    {
        inner_.write(index, r);
        if (hung_)
            return;
        hung_ = true;
        inner_.flush(); // the record must be visible to the killer
        for (int i = 0; i < 1200; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        stsim_fatal("test hang expired without a SIGKILL");
    }

    void flush() override { inner_.flush(); }

  private:
    ResultsSink &inner_;
    bool hung_ = false;
};

/**
 * The run/dump/dispatch observability surfaces: --trace FILE installs
 * a process-wide span sink for the command's duration and writes the
 * Chrome trace JSON on the way out; --metrics FILE writes the final
 * metrics-registry snapshot (one JSONL record). Both are written by
 * the destructor so every successful return path is covered; fatal
 * exits (which bypass destructors) intentionally leave no files.
 */
class ObsSession
{
  public:
    void
    registerFlags(args::FlagSet &fs)
    {
        fs.str("--trace", "FILE", &tracePath_)
            .str("--metrics", "FILE", &metricsPath_);
    }

    /** Call once after parse(), before the work starts. */
    void
    begin()
    {
        if (!tracePath_.empty()) {
            sink_ = std::make_unique<obs::TraceSink>();
            obs::TraceSink::install(sink_.get());
        }
    }

    ~ObsSession()
    {
        if (sink_) {
            obs::TraceSink::install(nullptr);
            if (!sink_->writeFile(tracePath_)) {
                stsim_warn("cannot write trace file %s: %s",
                           tracePath_.c_str(), std::strerror(errno));
            }
        }
        if (metricsPath_.empty())
            return;
        std::string snap = obs::Registry::instance().snapshotJson();
        std::FILE *f = std::fopen(metricsPath_.c_str(), "w");
        bool ok = f != nullptr;
        if (ok) {
            ok = std::fwrite(snap.data(), 1, snap.size(), f) ==
                     snap.size() &&
                 std::fputc('\n', f) != EOF;
        }
        if (f && std::fclose(f) != 0)
            ok = false;
        if (!ok) {
            stsim_warn("cannot write metrics file %s: %s",
                       metricsPath_.c_str(), std::strerror(errno));
        }
    }

  private:
    std::string tracePath_;
    std::string metricsPath_;
    std::unique_ptr<obs::TraceSink> sink_;
};

/** Whole-file read for snapshot images (newlines are significant). */
std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        stsim_fatal("cannot read '%s': %s", path.c_str(),
                    std::strerror(errno));
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        stsim_fatal("cannot read '%s': %s", path.c_str(),
                    std::strerror(errno));
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

int
cmdManifest(int argc, char **argv)
{
    std::string suite, out_path;
    std::uint64_t insts = 0, warmup = 0, depth = 0;
    args::FlagSet fs(runnerDiag());
    fs.str("--suite", "NAME", &suite)
        .u64("--insts", "N", &insts)
        .u64("--warmup", "N", &warmup)
        .u64("--depth", "D", &depth)
        .str("--out", "FILE", &out_path);
    fs.parse(argc, argv, 2);
    if (suite.empty())
        usage("manifest needs --suite");

    std::vector<SimJob> jobs = suiteJobs(suite);
    for (SimJob &j : jobs) {
        if (insts)
            j.cfg.maxInstructions = insts;
        if (warmup)
            j.cfg.warmupInstructions = warmup;
        if (depth)
            j.cfg.pipelineDepth = static_cast<unsigned>(depth);
    }

    OutFile out(out_path);
    for (const SimJob &j : jobs) {
        out.stream() << serde::toJson(j) << '\n';
        if (!out.stream())
            break; // poisoned (consumer gone?): finish() decides
    }
    out.finish("manifest");
    std::fprintf(stderr, "stsim_runner: %zu jobs (suite %s)\n",
                 jobs.size(), suite.c_str());
    return 0;
}

/**
 * Self-watchdog for `run --timeout-sec`: if the shard wedges (a hung
 * sink, a stuck filesystem), SIGALRM fires and the handler hard-exits
 * with code 124 -- async-signal-safe (raw write + _exit), so a CI
 * dispatcher never waits on a zombie shard forever.
 */
extern "C" void
runTimeoutHandler(int)
{
    static const char msg[] =
        "stsim_runner: run timed out (--timeout-sec watchdog)\n";
    ssize_t n = ::write(2, msg, sizeof msg - 1);
    (void)n;
    ::_exit(124);
}

int
cmdRunOrDump(int argc, char **argv, bool sharded)
{
    std::string manifest, out_path, format, snapshot_path;
    std::uint64_t shard = 0, shards = 1;
    std::uint64_t timeoutSec = 0;
    unsigned workers = 0;
    bool memoize = false;
    args::FlagSet fs(runnerDiag());
    fs.str("--manifest", "FILE", &manifest);
    if (sharded) {
        fs.flag("--shard", "I/N", [&](const char *spec) {
            unsigned long long i = 0, n = 0;
            if (std::sscanf(spec, "%llu/%llu", &i, &n) != 2 || n == 0 ||
                i >= n) {
                usage("--shard wants I/N with 0 <= I < N");
            }
            shard = i;
            shards = n;
        });
    }
    fs.u64("--jobs", "W", &workers);
    if (sharded)
        fs.u64("--timeout-sec", "S", &timeoutSec);
    fs.str("--format", "jsonl|csv", &format)
        .str("--out", "FILE", &out_path)
        .boolean("--memoize-warmup", &memoize)
        .str("--from-snapshot", "FILE", &snapshot_path);
    ObsSession obsSession;
    obsSession.registerFlags(fs);
    fs.parse(argc, argv, 2);
    if (manifest.empty())
        usage("--manifest is required");
    obsSession.begin();
    if (memoize && !snapshot_path.empty())
        usage("--memoize-warmup and --from-snapshot are mutually "
              "exclusive");
    if (timeoutSec) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sa.sa_handler = runTimeoutHandler;
        sigemptyset(&sa.sa_mask);
        ::sigaction(SIGALRM, &sa, nullptr);
        ::alarm(static_cast<unsigned>(timeoutSec));
    }

    std::vector<std::string> lines = readLines(manifest);
    if (lines.empty())
        stsim_fatal("manifest '%s' holds no jobs", manifest.c_str());
    std::unique_ptr<ResultsSink> sink = openSink(out_path, format);

    // Warmup options: forked-from-disk snapshot, memoized in-memory
    // warmup, or neither (every job warms itself). The snapshot image
    // lives here for the wave's duration; the engine only borrows it.
    std::string snapshot;
    RunOptions ropts;
    ropts.workers = workers;
    ropts.memoizeWarmup = memoize;
    if (!snapshot_path.empty()) {
        snapshot = readFile(snapshot_path);
        ropts.fromSnapshot = &snapshot;
    }

    if (!sharded) {
        // In-process reference path: the whole matrix through the
        // streaming engine into the same serializer. This is the
        // byte-wise comparison target for a sharded merge.
        std::vector<SimJob> all;
        all.reserve(lines.size());
        for (const std::string &line : lines)
            all.push_back(serde::jobFromJson(line));
        StreamStats stats = runJobs(all, *sink, ropts);
        std::fprintf(stderr, "stsim_runner: dumped %zu results\n",
                     all.size());
        if (memoize) {
            std::fprintf(stderr,
                         "stsim_runner: %zu warmup(s) for %zu jobs "
                         "(memoized)\n",
                         stats.warmupsRun, all.size());
        }
        return 0;
    }

    // Parse only this shard's slice: a shard of a huge manifest must
    // not pay the whole matrix's parse cost and job memory.
    std::vector<SimJob> mine;
    std::vector<std::uint64_t> globalIndex;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (i % shards == shard) {
            mine.push_back(serde::jobFromJson(lines[i]));
            globalIndex.push_back(i);
        }
    }
    ResultsSink *commit = sink.get();
    std::unique_ptr<HangAfterFirstRecordSink> hang;
    if (std::getenv(dist::kTestHangEnv)) {
        hang = std::make_unique<HangAfterFirstRecordSink>(*commit);
        commit = hang.get();
    }
    IndexRemapSink remap(*commit, std::move(globalIndex));
    StreamStats stats = runJobs(mine, remap, ropts);
    std::fprintf(stderr,
                 "stsim_runner: shard %llu/%llu ran %zu of %zu jobs "
                 "(max %zu results held for reorder)\n",
                 static_cast<unsigned long long>(shard),
                 static_cast<unsigned long long>(shards), mine.size(),
                 lines.size(), stats.maxPending);
    if (memoize) {
        std::fprintf(stderr,
                     "stsim_runner: %zu warmup(s) for %zu jobs "
                     "(memoized)\n",
                     stats.warmupsRun, mine.size());
    }
    return 0;
}

/**
 * snapshot: run one manifest job's warmup and write the machine-state
 * checkpoint. Any job of the same warmup class (same benchmark, seed,
 * machine, predictor and throttle config -- only run length and power
 * parameters free) can then fork from it via run/dump --from-snapshot.
 */
int
cmdSnapshot(int argc, char **argv)
{
    std::string manifest, out_path;
    std::uint64_t index = 0;
    args::FlagSet fs(runnerDiag());
    fs.str("--manifest", "FILE", &manifest)
        .u64("--index", "I", &index)
        .str("--out", "FILE", &out_path);
    fs.parse(argc, argv, 2);
    if (manifest.empty())
        usage("--manifest is required");

    std::vector<std::string> lines = readLines(manifest);
    if (lines.empty())
        stsim_fatal("manifest '%s' holds no jobs", manifest.c_str());
    if (index >= lines.size())
        stsim_fatal("snapshot: --index %llu out of range (manifest "
                    "has %zu jobs)",
                    static_cast<unsigned long long>(index),
                    lines.size());

    SimJob job = serde::jobFromJson(lines[index]);
    Simulator sim(job.cfg);
    sim.runWarmup();
    std::string snap = sim.saveSnapshot();

    OutFile out(out_path);
    out.stream().write(snap.data(),
                       static_cast<std::streamsize>(snap.size()));
    out.finish("snapshot");
    std::fprintf(stderr,
                 "stsim_runner: wrote warmup snapshot for job %llu "
                 "(%zu bytes)\n",
                 static_cast<unsigned long long>(index), snap.size());
    return 0;
}

int
cmdMerge(int argc, char **argv)
{
    std::string out_path, manifest;
    std::uint64_t expect = 0;
    bool allowDups = false;
    std::vector<std::string> inputs;
    args::FlagSet fs(runnerDiag());
    fs.str("--out", "FILE", &out_path)
        .u64("--expect", "N", &expect)
        .str("--manifest", "FILE", &manifest)
        .boolean("--allow-dups", &allowDups);
    fs.parse(argc, argv, 2,
             [&](const char *arg) { inputs.push_back(arg); });
    if (inputs.empty())
        usage("merge needs at least one shard file");
    if (!expect && manifest.empty()) {
        // Without a completeness target, a stream truncated at the
        // tail would merge "cleanly" -- refuse to pretend.
        usage("merge needs --manifest (or --expect) to know the "
              "expected record count");
    }

    // The manifest is the authority on what a complete merge holds:
    // records are indexed 0..jobs-1, so its line count IS the
    // expected index set. --expect stays as an explicit override.
    if (!expect) {
        expect = dist::countRecords(manifest);
        if (!expect)
            stsim_fatal("merge: manifest '%s' holds no jobs",
                        manifest.c_str());
    }

    // Streaming k-way merge: each shard file is already
    // index-ascending (the sink commits in submission order), so one
    // line per open shard is all that is ever held — merge memory is
    // O(shards), not O(matrix). Records pass through verbatim, so the
    // merged bytes are the producing serializer's bytes.
    struct Cursor
    {
        std::ifstream in;
        std::string line;
        std::uint64_t idx = 0;
        bool live = false;
    };
    std::vector<Cursor> cursors(inputs.size());
    auto advance = [&](std::size_t c) {
        Cursor &cur = cursors[c];
        const bool had = cur.live;
        const std::uint64_t prev = cur.idx;
        cur.live = false;
        while (std::getline(cur.in, cur.line)) {
            if (cur.line.empty())
                continue;
            std::uint64_t idx = serde::resultRecordIndex(cur.line);
            if (had && idx <= prev) {
                stsim_fatal("merge: '%s' is not index-ascending",
                            inputs[c].c_str());
            }
            cur.idx = idx;
            cur.live = true;
            return;
        }
    };
    for (std::size_t c = 0; c < inputs.size(); ++c) {
        cursors[c].in.open(inputs[c]);
        if (!cursors[c].in)
            stsim_fatal("cannot read '%s': %s", inputs[c].c_str(),
                        std::strerror(errno));
        advance(c);
    }

    OutFile out(out_path);
    std::uint64_t want = 0;
    std::uint64_t dupsDropped = 0;
    std::string lastEmitted;
    for (;;) {
        std::size_t min_c = inputs.size();
        for (std::size_t c = 0; c < cursors.size(); ++c) {
            if (cursors[c].live &&
                (min_c == inputs.size() ||
                 cursors[c].idx < cursors[min_c].idx)) {
                min_c = c;
            }
        }
        if (min_c == inputs.size())
            break;
        if (cursors[min_c].idx < want) {
            if (!allowDups) {
                stsim_fatal("merge: duplicate result index %llu "
                            "(re-run shards need --allow-dups)",
                            static_cast<unsigned long long>(
                                cursors[min_c].idx));
            }
            // Dup-tolerant path for re-run shards: because every
            // cursor is primed before the loop and each file is
            // strictly index-ascending, a duplicate can only be a
            // copy of the record emitted immediately before -- so a
            // single held line suffices to verify the re-run is
            // byte-identical before the copy is discarded.
            if (cursors[min_c].idx != want - 1 ||
                cursors[min_c].line != lastEmitted) {
                stsim_fatal("merge: duplicate records for index %llu "
                            "are not byte-identical (shard re-run "
                            "was not deterministic?)",
                            static_cast<unsigned long long>(
                                cursors[min_c].idx));
            }
            ++dupsDropped;
            advance(min_c);
            continue;
        }
        if (cursors[min_c].idx > want)
            stsim_fatal("merge: missing result index %llu",
                        static_cast<unsigned long long>(want));
        lastEmitted = cursors[min_c].line;
        out.stream() << lastEmitted << '\n';
        if (!out.stream()) {
            // Either a vanished stdout consumer (clean exit 0 inside
            // finish) or a real write failure (fatal) -- but never a
            // truncated merge passed off as complete.
            out.finish("merge");
        }
        ++want;
        advance(min_c);
    }
    if (expect && want != expect) {
        stsim_fatal("merge: expected %llu records, found %llu",
                    static_cast<unsigned long long>(expect),
                    static_cast<unsigned long long>(want));
    }
    if (want == 0)
        stsim_fatal("merge: shard files hold no records");
    out.finish("merge");
    std::fprintf(stderr,
                 "stsim_runner: merged %llu results from %zu "
                 "shard files (%llu duplicate record(s) verified "
                 "and dropped)\n",
                 static_cast<unsigned long long>(want), inputs.size(),
                 static_cast<unsigned long long>(dupsDropped));
    return 0;
}

/**
 * Fleet worker mode for stsim_serve --isolate: one JSONL request
 * frame per stdin line (the ServeRequest shape the daemon already
 * speaks), one reply line per request on stdout. Results use the
 * exact `dump` serializer, so whatever the daemon forwards verbatim
 * stays byte-identical to an in-process run. A hostile config becomes
 * a structured bad_request reply via FatalCaptureScope; a genuine
 * crash takes down only this process -- that is the point.
 */
int
cmdServeWorker(int argc, char **argv)
{
    (void)argv;
    if (argc > 2)
        usage("serve-worker takes no flags");
    const char *crashMarker = std::getenv(dist::kTestCrashOnJobEnv);

    // Hello line first: the supervisor treats it as proof the exec
    // succeeded and the pipe is live before dispatching any job.
    {
        serde::FlatWriter hello;
        hello.u64("worker_hello",
                  static_cast<std::uint64_t>(::getpid()));
        std::string line = hello.finish();
        line.push_back('\n');
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fflush(stdout);
    }

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        serde::ServeRequest req;
        std::string reply;
        serde::ParseOutcome parsed = serde::parseServeRequest(line, req);
        if (!parsed) {
            serde::FlatWriter w;
            w.str("error", "bad_request");
            w.u64("id", 0);
            w.str("detail", parsed.error);
            reply = w.finish();
        } else if (req.ping || req.health) {
            serde::FlatWriter w;
            w.u64("pong", req.id);
            reply = w.finish();
        } else {
            if (crashMarker && *crashMarker &&
                req.job.experiment.find(crashMarker) !=
                    std::string::npos) {
                // Fault injection (dist::kTestCrashOnJobEnv): commit a
                // torn partial reply, then die mid-job. The supervisor
                // must discard the fragment and report the crash.
                std::fputs("{\"index\":", stdout);
                std::fflush(stdout);
                volatile int *p = nullptr;
                *p = 1; // SIGSEGV
            }
            FatalCaptureScope scope;
            try {
                Simulator sim(req.job.cfg);
                SimResults r = sim.run();
                r.experiment = req.job.experiment;
                reply = serde::resultRecordToJson(req.id, r);
            } catch (const FatalError &e) {
                serde::FlatWriter w;
                w.str("error", "bad_request");
                w.u64("id", req.id);
                w.str("detail", e.what());
                reply = w.finish();
            }
        }
        reply.push_back('\n');
        if (std::fwrite(reply.data(), 1, reply.size(), stdout) !=
                reply.size() ||
            std::fflush(stdout) != 0) {
            return 0; // supervisor is gone; nothing left to serve
        }
    }
    // stdin EOF: the supervisor closed our pipe -- clean retirement.
    return 0;
}

int
cmdDispatchOrResume(int argc, char **argv, bool isResume)
{
    dist::DispatchOptions opts;
    std::string runner;
    args::FlagSet fs(runnerDiag());
    if (!isResume) {
        fs.str("--manifest", "FILE", &opts.manifest)
            .u64("--shards", "N", &opts.shards);
    }
    fs.str("--dir", "DIR", &opts.dir)
        .u64("--jobs", "W", &opts.workersPerShard)
        .u64("--max-attempts", "K", &opts.maxAttempts)
        .u64("--concurrent", "C", &opts.maxConcurrent)
        .flag("--timeout-sec", "S",
              [&](const char *v) {
                  opts.shardTimeout = std::chrono::seconds(
                      parseU64(v, "--timeout-sec"));
              })
        .u64("--retry-backoff-ms", "B", &opts.retryBackoffBaseMs)
        .u64("--retry-backoff-cap-ms", "C", &opts.retryBackoffCapMs)
        .str("--runner", "PATH", &runner);
    if (!isResume) {
        fs.u64("--test-kill-shard", "N", &opts.testKillShard)
            .boolean("--test-die-after-kill", &opts.testDieAfterKill);
    }
    ObsSession obsSession;
    obsSession.registerFlags(fs);
    fs.parse(argc, argv, 2);
    if (opts.dir.empty())
        usage("--dir is required");
    if (!isResume && opts.manifest.empty())
        usage("--manifest is required");
    if (opts.maxAttempts == 0)
        usage("--max-attempts must be positive");
    obsSession.begin();

    if (runner.empty())
        runner = dist::LocalProcessLauncher::selfExecutable();
    dist::LocalProcessLauncher launcher(runner);
    dist::ShardScheduler sched(std::move(opts), launcher);
    return isResume ? sched.resume() : sched.dispatch();
}

} // namespace

int
main(int argc, char **argv)
{
    // Piping `manifest`/`merge`/`dump` output into `head` must not
    // kill the process with SIGPIPE: ignore it and let writes fail
    // with EPIPE, which the stream paths turn into a clean exit 0.
    ::signal(SIGPIPE, SIG_IGN);

    if (argc < 2)
        usage();
    const char *cmd = argv[1];
    if (!std::strcmp(cmd, "help") || !std::strcmp(cmd, "--help") ||
        !std::strcmp(cmd, "-h")) {
        printUsage(stdout);
        return 0;
    }
    if (!std::strcmp(cmd, "manifest"))
        return cmdManifest(argc, argv);
    if (!std::strcmp(cmd, "run"))
        return cmdRunOrDump(argc, argv, /*sharded=*/true);
    if (!std::strcmp(cmd, "dump"))
        return cmdRunOrDump(argc, argv, /*sharded=*/false);
    if (!std::strcmp(cmd, "snapshot"))
        return cmdSnapshot(argc, argv);
    if (!std::strcmp(cmd, "merge"))
        return cmdMerge(argc, argv);
    if (!std::strcmp(cmd, "dispatch"))
        return cmdDispatchOrResume(argc, argv, /*isResume=*/false);
    if (!std::strcmp(cmd, "resume"))
        return cmdDispatchOrResume(argc, argv, /*isResume=*/true);
    if (!std::strcmp(cmd, "serve-worker"))
        return cmdServeWorker(argc, argv);
    usage(("unknown subcommand '" + std::string(cmd) + "'").c_str());
}
