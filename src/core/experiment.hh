/**
 * @file
 * Named experiment registry: the paper's configurations (baseline,
 * oracle fetch/decode/select, A1–A6, B1–B8, C1–C6, Pipeline Gating) as
 * reusable SimConfig transformations.
 */

#ifndef STSIM_CORE_EXPERIMENT_HH
#define STSIM_CORE_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/sim_config.hh"

namespace stsim
{

/** One named machine configuration from the paper's evaluation. */
struct Experiment
{
    std::string name;
    std::string description; ///< paper legend, e.g. "LC: fetch/4, VLC: fetch=0"

    ConfKind confKind = ConfKind::None;
    SpecControlConfig specControl;
    OracleMode oracle = OracleMode::None;

    /** Impose this experiment's mechanism settings on @p cfg. */
    void applyTo(SimConfig &cfg) const;

    /**
     * Look up by name: "baseline", "oracle-fetch", "oracle-decode",
     * "oracle-select", "A1".."A6", "B1".."B8", "C1".."C6", "PG".
     * Fatals on unknown names.
     */
    static Experiment byName(const std::string &name);

    /** The Figure 3 series (A1..A6 plus PG as A7). */
    static std::vector<Experiment> figure3Series();

    /** The Figure 4 series (B1..B8 plus PG as B9). */
    static std::vector<Experiment> figure4Series();

    /** The Figure 5 series (C1..C6 plus PG as C7). */
    static std::vector<Experiment> figure5Series();
};

} // namespace stsim

#endif // STSIM_CORE_EXPERIMENT_HH
