/**
 * @file
 * Streaming results sinks for the experiment engine: SimResults are
 * committed to the sink in submission order as jobs complete, instead
 * of accumulating whole benchmark x policy matrices in memory. The
 * JSONL sink is the sharded runner's wire format (bit-exact doubles);
 * the CSV sink is the human/spreadsheet format.
 */

#ifndef STSIM_CORE_RESULTS_SINK_HH
#define STSIM_CORE_RESULTS_SINK_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/sim_results.hh"

namespace stsim
{

/**
 * Receives one SimResults per job. The engine guarantees write() is
 * called exactly once per job, in submission order, serialized (never
 * concurrently), so implementations need no locking.
 */
class ResultsSink
{
  public:
    virtual ~ResultsSink();

    /** Commit the result of submission index @p index. */
    virtual void write(std::uint64_t index, const SimResults &r) = 0;

    /** Called once after the last write of a wave. */
    virtual void flush() {}
};

/** Discards everything (in-process callers that only want metrics). */
class NullResultsSink : public ResultsSink
{
  public:
    void write(std::uint64_t, const SimResults &) override {}
};

/**
 * One indexed JSON record per line (serde::resultRecordToJson).
 * Because every double is hex-float encoded, two JSONL streams are
 * byte-identical iff the results are bit-identical -- the property the
 * CI shard-equivalence gate diffs for.
 */
class JsonlResultsSink : public ResultsSink
{
  public:
    /** Writes to @p out; the stream must outlive the sink. */
    explicit JsonlResultsSink(std::ostream &out) : out_(out) {}

    void write(std::uint64_t index, const SimResults &r) override;
    void flush() override;

  private:
    std::ostream &out_;
};

/**
 * Flat CSV: an "index" column, identity columns, every CoreStats
 * counter, and the headline doubles in round-trippable "%.17g" form.
 * The header row is emitted before the first record.
 */
class CsvResultsSink : public ResultsSink
{
  public:
    explicit CsvResultsSink(std::ostream &out) : out_(out) {}

    void write(std::uint64_t index, const SimResults &r) override;
    void flush() override;

    /** The header row (no trailing newline). */
    static std::string header();

    /** One record as a CSV row (no trailing newline). */
    static std::string row(std::uint64_t index, const SimResults &r);

  private:
    std::ostream &out_;
    bool wroteHeader_ = false;
};

/**
 * Forwards every record to an inner sink, then hands it to
 * onResult() -- the base for fold-as-you-stream consumers that derive
 * small summaries (metric tables, calibration accumulators) while the
 * full results go to disk. Engine ordering guarantees carry over to
 * onResult unchanged.
 */
class TeeSink : public ResultsSink
{
  public:
    explicit TeeSink(ResultsSink &inner) : inner_(inner) {}

    void
    write(std::uint64_t index, const SimResults &r) final
    {
        inner_.write(index, r);
        onResult(index, r);
    }

    void flush() override { inner_.flush(); }

  protected:
    virtual void onResult(std::uint64_t index, const SimResults &r) = 0;

  private:
    ResultsSink &inner_;
};

/**
 * Forwards to an inner sink with indices translated through a map --
 * how a shard reports results under their global manifest indices
 * while the engine numbers the shard's jobs 0..n-1.
 */
class IndexRemapSink : public ResultsSink
{
  public:
    IndexRemapSink(ResultsSink &inner,
                   std::vector<std::uint64_t> globalIndex)
        : inner_(inner), globalIndex_(std::move(globalIndex))
    {
    }

    void write(std::uint64_t index, const SimResults &r) override;
    void flush() override;

  private:
    ResultsSink &inner_;
    std::vector<std::uint64_t> globalIndex_;
};

/**
 * Open a file-backed sink (the one place the --out/--format policy
 * lives for the runner and the examples). @p format selects "jsonl"
 * or "csv"; when empty, a ".csv" extension selects CSV and anything
 * else JSONL. An empty path or "-" writes to stdout. The returned
 * sink owns its stream. Fatals on an unopenable path or an unknown
 * format.
 */
std::unique_ptr<ResultsSink> openSink(const std::string &path,
                                      const std::string &format = "");

/**
 * True when stdout is a pipe whose read end has gone away (EPIPE
 * territory) -- detected via poll(), so no errno is consumed. Lets
 * `stsim_runner ... | head` treat a failed stdout write as a clean
 * early exit instead of a fatal, while real write failures (disk
 * full, I/O error) keep dying loudly.
 */
bool stdoutClosedByPeer();

} // namespace stsim

#endif // STSIM_CORE_RESULTS_SINK_HH
