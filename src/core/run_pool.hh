/**
 * @file
 * Fixed-size worker pool for the experiment engine: executes
 * independent simulation jobs concurrently while keeping results
 * deterministic and thread-count-independent (each job owns its
 * inputs and writes only its own output slot; callers commit results
 * in submission order).
 */

#ifndef STSIM_CORE_RUN_POOL_HH
#define STSIM_CORE_RUN_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace stsim
{

/**
 * A fixed-size thread pool with a FIFO work queue.
 *
 * Worker count resolution: an explicit constructor argument wins;
 * otherwise the STSIM_JOBS environment variable; otherwise the
 * hardware concurrency. Jobs must not touch shared mutable state
 * unless they synchronize it themselves — the standard pattern is one
 * Simulator per job writing into a preallocated result slot, so the
 * result of a wave is identical for any worker count.
 */
class RunPool
{
  public:
    /** @param workers Worker threads; 0 resolves via defaultWorkers(). */
    explicit RunPool(unsigned workers = 0);

    /** Drains the queue (waits for all submitted jobs) before exit. */
    ~RunPool();

    RunPool(const RunPool &) = delete;
    RunPool &operator=(const RunPool &) = delete;

    /** Number of worker threads in this pool. */
    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

    /** Enqueue one job; returns immediately. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. Rethrows the first
     * exception any job raised (subsequent ones are dropped).
     */
    void wait();

    /**
     * Run @p fn(0) .. @p fn(n-1) across the pool and wait. Equivalent
     * to n submit() calls plus wait(); index order of side effects is
     * unspecified, so @p fn must write only to its own slot.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Worker count used when none is requested explicitly: the
     * STSIM_JOBS environment variable (clamped to [1, 256]) when set
     * and parseable, else std::thread::hardware_concurrency(), else 1.
     */
    static unsigned defaultWorkers();

  private:
    void workerLoop(unsigned idx);

    /// @name Idle-worker bitmask (guarded by mu_)
    /// @{
    /**
     * One bit per parked worker plus one condition variable each.
     * submit() claims the lowest-indexed idle worker with a ctz scan
     * and notifies only that worker's cv, so a job wakes exactly one
     * thread (no thundering herd through a shared cv) and work
     * concentrates on low-numbered -- recently active, cache-warm --
     * workers. A worker re-sets its own bit each time it re-checks an
     * empty queue, so a claim whose job was drained by another worker
     * cannot strand the claimed thread unreachable.
     */
    void
    setIdle(unsigned idx)
    {
        idleBits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }

    void
    clearIdle(unsigned idx)
    {
        idleBits_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    /** Claim (clear) the lowest-indexed idle worker; -1 when none. */
    int claimIdleWorker();
    /// @}

    // Process-wide gauges (shared across pools): how many jobs sit
    // queued and how many workers are parked waiting for work. Two
    // relaxed atomic ops per job -- nowhere near any hot path.
    obs::Gauge &queueDepth_;
    obs::Gauge &idleWorkers_;

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::vector<std::uint64_t> idleBits_; ///< parked workers, by index
    std::unique_ptr<std::condition_variable[]> cvWorker_; ///< per worker
    std::condition_variable cvIdle_;  ///< signals wait(): all jobs done
    std::size_t inFlight_ = 0;        ///< queued + currently executing
    std::exception_ptr firstError_;
    bool stopping_ = false;
};

} // namespace stsim

#endif // STSIM_CORE_RUN_POOL_HH
