/**
 * @file
 * Experiment harness shared by the bench binaries and examples: runs
 * named experiments over the Table 2 benchmark suite against cached
 * per-benchmark baselines and computes the paper's relative metrics.
 */

#ifndef STSIM_CORE_HARNESS_HH
#define STSIM_CORE_HARNESS_HH

#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/sim_config.hh"
#include "core/sim_results.hh"

namespace stsim
{

class ResultsSink;

/** Runs experiments over the benchmark suite with a cached baseline. */
class Harness
{
  public:
    /** Per-benchmark metrics plus the trailing "Average" row. */
    using SuiteRows =
        std::vector<std::pair<std::string, RelativeMetrics>>;

    /**
     * @param base Template configuration; experiments override only the
     *        speculation-control fields. REPRO_INSTRUCTIONS is honoured.
     */
    explicit Harness(SimConfig base = SimConfig{});

    /** The eight Table 2 benchmark names. */
    static const std::vector<std::string> &benchmarks();

    /** Baseline result for @p bench (simulated once, then cached). */
    const SimResults &baseline(const std::string &bench);

    /** Run @p exp on @p bench. */
    SimResults run(const std::string &bench, const Experiment &exp);

    /** Run @p exp and compute baseline-relative metrics. */
    RelativeMetrics relative(const std::string &bench,
                             const Experiment &exp);

    /**
     * Run @p exp over all benchmarks; returns per-benchmark metrics
     * plus the arithmetic mean as a final "Average" row (the paper's
     * plots report per-benchmark bars plus the average). Routes
     * through the parallel engine (equivalent to runMatrix({exp})).
     */
    SuiteRows runSuite(const Experiment &exp);

    /**
     * Run every experiment over every benchmark as one parallel wave
     * (missing baselines are computed in a preceding wave) and return
     * one suite table per experiment, in input order. Results are
     * bitwise identical for any worker count.
     *
     * @param workers Worker threads; 0 resolves STSIM_JOBS / hardware.
     */
    std::vector<SuiteRows> runMatrix(const std::vector<Experiment> &exps,
                                     unsigned workers = 0);

    /**
     * Streaming variant: every experiment-job SimResults is committed
     * to @p sink in submission order as it completes (the same commit
     * path the sharded runner uses), while only the small metric
     * tables accumulate in memory. Baselines are computed in a
     * preceding wave and are not streamed.
     */
    std::vector<SuiteRows> runMatrix(const std::vector<Experiment> &exps,
                                     ResultsSink &sink,
                                     unsigned workers = 0);

    /**
     * Simulate all not-yet-cached baselines in one parallel wave
     * (lazily-serial baseline() calls then hit the cache).
     */
    void computeBaselines(unsigned workers = 0);

    const SimConfig &baseConfig() const { return base_; }

    /** Mutable template (e.g. to change pipeline depth per sweep). */
    SimConfig &baseConfig() { invalidateBaselines(); return base_; }

  private:
    void invalidateBaselines() { baselines_.clear(); }

    SimConfig base_;
    std::map<std::string, SimResults> baselines_;
};

/** Arithmetic mean of relative metrics (the paper's "Average" bars). */
RelativeMetrics
averageMetrics(const std::vector<std::pair<std::string,
                                           RelativeMetrics>> &rows);

} // namespace stsim

#endif // STSIM_CORE_HARNESS_HH
