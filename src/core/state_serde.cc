/**
 * @file
 * StateWriter/StateReader implementation. See state_serde.hh for the
 * format contract. The reader is deliberately unforgiving: simulator
 * state is only useful when it is exactly right, so every parse
 * problem is a fatal with the line number and the offending text.
 */

#include "core/state_serde.hh"

#include <charconv>

#include "common/logging.hh"
#include "core/job_serde.hh"

namespace stsim
{
namespace serde
{

// ---------------------------------------------------------------------------
// StateWriter
// ---------------------------------------------------------------------------

StateWriter::StateWriter()
{
    out_ = "stsim-state ";
    out_ += std::to_string(kStateFormatVersion);
    out_ += '\n';
}

void
StateWriter::begin(const char *section)
{
    out_ += '[';
    out_ += section;
    out_ += "]\n";
    stack_.emplace_back(section);
}

void
StateWriter::end(const char *section)
{
    if (stack_.empty() || stack_.back() != section)
        stsim_panic("state: unbalanced section end '[/%s]'", section);
    stack_.pop_back();
    out_ += "[/";
    out_ += section;
    out_ += "]\n";
}

void
StateWriter::u64(const char *key, std::uint64_t v)
{
    out_ += key;
    out_ += ' ';
    out_ += std::to_string(v);
    out_ += '\n';
}

void
StateWriter::i64(const char *key, std::int64_t v)
{
    out_ += key;
    out_ += ' ';
    out_ += std::to_string(v);
    out_ += '\n';
}

void
StateWriter::boolean(const char *key, bool v)
{
    out_ += key;
    out_ += v ? " 1\n" : " 0\n";
}

void
StateWriter::dbl(const char *key, double v)
{
    out_ += key;
    out_ += ' ';
    out_ += doubleToHex(v);
    out_ += '\n';
}

void
StateWriter::str(const char *key, std::string_view v)
{
    if (v.find('\n') != std::string_view::npos)
        stsim_panic("state: string value for '%s' contains a newline",
                    key);
    out_ += key;
    out_ += ' ';
    out_ += v;
    out_ += '\n';
}

void
StateWriter::u64Array(const char *key, const std::uint64_t *v,
                      std::size_t n)
{
    out_ += key;
    out_ += ' ';
    out_ += std::to_string(n);
    for (std::size_t i = 0; i < n; ++i) {
        out_ += ' ';
        out_ += std::to_string(v[i]);
    }
    out_ += '\n';
}

void
StateWriter::dblArray(const char *key, const double *v, std::size_t n)
{
    out_ += key;
    out_ += ' ';
    out_ += std::to_string(n);
    for (std::size_t i = 0; i < n; ++i) {
        out_ += ' ';
        out_ += doubleToHex(v[i]);
    }
    out_ += '\n';
}

std::string
StateWriter::take()
{
    if (!stack_.empty())
        stsim_panic("state: take() with open section '[%s]'",
                    stack_.back().c_str());
    out_ += "end\n";
    return std::move(out_);
}

// ---------------------------------------------------------------------------
// StateReader
// ---------------------------------------------------------------------------

namespace
{

std::uint64_t
parseTokenU64(std::string_view tok, const char *key, std::size_t lineNo)
{
    std::uint64_t v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(),
                                   v, 10);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
        stsim_fatal("state: line %zu: bad integer for '%s': '%.*s'",
                    lineNo, key, static_cast<int>(tok.size()),
                    tok.data());
    }
    return v;
}

std::int64_t
parseTokenI64(std::string_view tok, const char *key, std::size_t lineNo)
{
    std::int64_t v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(),
                                   v, 10);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
        stsim_fatal("state: line %zu: bad integer for '%s': '%.*s'",
                    lineNo, key, static_cast<int>(tok.size()),
                    tok.data());
    }
    return v;
}

/** Space-separated token scanner over one line's value text. */
class TokenScan
{
  public:
    TokenScan(std::string_view text, const char *key,
              std::size_t lineNo)
        : text_(text), key_(key), lineNo_(lineNo)
    {
    }

    std::string_view
    next()
    {
        while (pos_ < text_.size() && text_[pos_] == ' ')
            ++pos_;
        if (pos_ >= text_.size()) {
            stsim_fatal("state: line %zu: array '%s' is shorter than "
                        "its declared count",
                        lineNo_, key_);
        }
        std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != ' ')
            ++pos_;
        return text_.substr(start, pos_ - start);
    }

    void
    done()
    {
        while (pos_ < text_.size() && text_[pos_] == ' ')
            ++pos_;
        if (pos_ != text_.size()) {
            stsim_fatal("state: line %zu: array '%s' has trailing "
                        "tokens beyond its declared count",
                        lineNo_, key_);
        }
    }

  private:
    std::string_view text_;
    const char *key_;
    std::size_t lineNo_;
    std::size_t pos_ = 0;
};

} // namespace

StateReader::StateReader(std::string_view image) : image_(image)
{
    std::string_view hdr = line("header");
    std::string want =
        "stsim-state " + std::to_string(kStateFormatVersion);
    if (hdr != want) {
        stsim_fatal("state: not a stsim snapshot or unsupported "
                    "version (expected '%s', got '%.*s')",
                    want.c_str(), static_cast<int>(hdr.size()),
                    hdr.data());
    }
}

std::string_view
StateReader::line(const char *wantKey)
{
    if (pos_ >= image_.size()) {
        stsim_fatal("state: unexpected end of snapshot while reading "
                    "'%s' (truncated image?)",
                    wantKey);
    }
    std::size_t nl = image_.find('\n', pos_);
    if (nl == std::string_view::npos) {
        stsim_fatal("state: unexpected end of snapshot while reading "
                    "'%s' (missing final newline)",
                    wantKey);
    }
    std::string_view l = image_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    ++lineNo_;
    return l;
}

void
StateReader::fail(const char *what, std::string_view got)
{
    stsim_fatal("state: line %zu: expected %s, got '%.*s'", lineNo_ - 1,
                what, static_cast<int>(got.size()), got.data());
}

void
StateReader::begin(const char *section)
{
    std::string_view l = line(section);
    std::string want = std::string("[") + section + "]";
    if (l != want)
        fail(("section " + want).c_str(), l);
}

void
StateReader::end(const char *section)
{
    std::string_view l = line(section);
    std::string want = std::string("[/") + section + "]";
    if (l != want)
        fail(("section close " + want).c_str(), l);
}

bool
StateReader::nextIs(const char *section) const
{
    if (pos_ >= image_.size())
        return false;
    std::size_t nl = image_.find('\n', pos_);
    std::string_view l =
        image_.substr(pos_, nl == std::string_view::npos
                                ? std::string_view::npos
                                : nl - pos_);
    std::string want = std::string("[") + section + "]";
    return l == want;
}

std::string_view
StateReader::value(const char *key)
{
    std::string_view l = line(key);
    std::size_t klen = std::string_view(key).size();
    if (l.size() < klen + 1 || l.compare(0, klen, key) != 0 ||
        l[klen] != ' ') {
        fail((std::string("key '") + key + "'").c_str(), l);
    }
    return l.substr(klen + 1);
}

std::uint64_t
StateReader::u64(const char *key)
{
    return parseTokenU64(value(key), key, lineNo_ - 1);
}

std::int64_t
StateReader::i64(const char *key)
{
    return parseTokenI64(value(key), key, lineNo_ - 1);
}

bool
StateReader::boolean(const char *key)
{
    std::string_view v = value(key);
    if (v == "1")
        return true;
    if (v == "0")
        return false;
    fail((std::string("boolean for '") + key + "'").c_str(), v);
}

double
StateReader::dbl(const char *key)
{
    return doubleFromHex(value(key));
}

std::string
StateReader::str(const char *key)
{
    return std::string(value(key));
}

std::vector<std::uint64_t>
StateReader::u64Vec(const char *key)
{
    std::string_view v = value(key);
    std::size_t ln = lineNo_ - 1;
    TokenScan scan(v, key, ln);
    std::uint64_t n = parseTokenU64(scan.next(), key, ln);
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(parseTokenU64(scan.next(), key, ln));
    scan.done();
    return out;
}

std::vector<double>
StateReader::dblVec(const char *key)
{
    std::string_view v = value(key);
    std::size_t ln = lineNo_ - 1;
    TokenScan scan(v, key, ln);
    std::uint64_t n = parseTokenU64(scan.next(), key, ln);
    std::vector<double> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(doubleFromHex(scan.next()));
    scan.done();
    return out;
}

void
StateReader::finish()
{
    std::string_view l = line("end marker");
    if (l != "end")
        fail("end marker", l);
    if (pos_ != image_.size()) {
        stsim_fatal("state: line %zu: trailing bytes after the end "
                    "marker",
                    lineNo_);
    }
}

} // namespace serde
} // namespace stsim
