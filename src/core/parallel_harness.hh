/**
 * @file
 * Parallel experiment engine: turns lists of fully-specified
 * simulation jobs into results using a RunPool. All paths -- the
 * in-memory vector API, the Harness matrix waves, and the sharded
 * stsim_runner -- share one streaming commit path: results are handed
 * to a ResultsSink in submission order as jobs complete, behind a
 * bounded reorder window, so the output is bitwise identical for any
 * worker count and peak memory does not grow with matrix size.
 */

#ifndef STSIM_CORE_PARALLEL_HARNESS_HH
#define STSIM_CORE_PARALLEL_HARNESS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/sim_config.hh"
#include "core/sim_results.hh"

namespace stsim
{

class CancelToken;
class ResultsSink;

/** One fully-specified simulation job. */
struct SimJob
{
    SimConfig cfg;          ///< must already name its benchmark
    std::string experiment; ///< stamped into SimResults::experiment
};

/** Engine diagnostics for one wave. */
struct StreamStats
{
    /**
     * High-water mark of results held for in-order commit. Bounded by
     * the reorder window (a small multiple of the worker count), never
     * by the number of jobs -- the "streaming, not accumulating"
     * guarantee a big sweep relies on.
     */
    std::size_t maxPending = 0;

    /**
     * Warmup phases actually executed (memoized waves only; equals the
     * job count otherwise). With memoization this is the number of
     * distinct warmup-equivalence classes -- at most one warmup per
     * class, which is the memoization win being measured.
     */
    std::size_t warmupsRun = 0;
};

/** Knobs for a runJobs wave. */
struct RunOptions
{
    /** Worker threads; 0 resolves STSIM_JOBS / hardware. */
    unsigned workers = 0;

    /** Cooperative cancellation; may be null. */
    const CancelToken *cancel = nullptr;

    /**
     * Warmup once per warmup-equivalence class
     * (Simulator::warmupClassKey) and fork every job of the class from
     * the in-memory snapshot. Every job -- including the one that ran
     * the warmup -- restores into a fresh Simulator from the snapshot,
     * so a memoized wave is bitwise identical to a scratch wave; only
     * the repeated warmups are saved. Snapshots are reference-counted
     * and freed as soon as the last job of a class has restored.
     */
    bool memoizeWarmup = false;

    /**
     * Fork every job of the wave from this pre-warmed snapshot
     * (Simulator::saveSnapshot image) instead of running its own
     * warmup. All jobs must share the snapshot's warmup class
     * (Simulator::restoreSnapshot fatals otherwise), the pointed-to
     * string must outlive the wave, and the option is mutually
     * exclusive with memoizeWarmup.
     */
    const std::string *fromSnapshot = nullptr;
};

/**
 * Run every job on a RunPool, committing each result to @p sink in
 * submission order as soon as its contiguous prefix has completed.
 *
 * Each job constructs its own Simulator, so the only shared state is
 * the read-mostly program cache (internally synchronized). Results
 * are independent of @p workers. Workers that run too far ahead of
 * the in-order commit frontier are paused (bounded reorder window),
 * which caps held results without limiting steady-state parallelism.
 *
 * sink.write() calls are serialized and in submission order;
 * sink.flush() runs once after the last write.
 *
 * When @p cancel is non-null, it is checked before each job starts
 * and polled inside Simulator::run; a fired token makes the wave
 * throw JobCancelled out of this call after releasing every
 * gate-blocked worker (same path as a throwing job or sink). The
 * reorder window can be pinned with STSIM_REORDER_WINDOW (tests).
 *
 * @param workers Worker threads; 0 resolves STSIM_JOBS / hardware.
 */
StreamStats runJobs(const std::vector<SimJob> &jobs, ResultsSink &sink,
                    unsigned workers = 0,
                    const CancelToken *cancel = nullptr);

/** Full-options form of the streaming engine. */
StreamStats runJobs(const std::vector<SimJob> &jobs, ResultsSink &sink,
                    const RunOptions &opts);

/**
 * Convenience wrapper over the streaming engine for callers that want
 * the whole wave in memory: returns results in submission order.
 */
std::vector<SimResults> runJobs(const std::vector<SimJob> &jobs,
                                unsigned workers = 0);

/** In-memory wrapper with full options. */
std::vector<SimResults> runJobs(const std::vector<SimJob> &jobs,
                                const RunOptions &opts);

} // namespace stsim

#endif // STSIM_CORE_PARALLEL_HARNESS_HH
