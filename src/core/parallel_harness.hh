/**
 * @file
 * Parallel experiment engine: turns lists of fully-specified
 * simulation jobs into results using a RunPool. All paths -- the
 * in-memory vector API, the Harness matrix waves, and the sharded
 * stsim_runner -- share one streaming commit path: results are handed
 * to a ResultsSink in submission order as jobs complete, behind a
 * bounded reorder window, so the output is bitwise identical for any
 * worker count and peak memory does not grow with matrix size.
 */

#ifndef STSIM_CORE_PARALLEL_HARNESS_HH
#define STSIM_CORE_PARALLEL_HARNESS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/sim_config.hh"
#include "core/sim_results.hh"

namespace stsim
{

class CancelToken;
class ResultsSink;

/** One fully-specified simulation job. */
struct SimJob
{
    SimConfig cfg;          ///< must already name its benchmark
    std::string experiment; ///< stamped into SimResults::experiment
};

/** Engine diagnostics for one wave. */
struct StreamStats
{
    /**
     * High-water mark of results held for in-order commit. Bounded by
     * the reorder window (a small multiple of the worker count), never
     * by the number of jobs -- the "streaming, not accumulating"
     * guarantee a big sweep relies on.
     */
    std::size_t maxPending = 0;
};

/**
 * Run every job on a RunPool, committing each result to @p sink in
 * submission order as soon as its contiguous prefix has completed.
 *
 * Each job constructs its own Simulator, so the only shared state is
 * the read-mostly program cache (internally synchronized). Results
 * are independent of @p workers. Workers that run too far ahead of
 * the in-order commit frontier are paused (bounded reorder window),
 * which caps held results without limiting steady-state parallelism.
 *
 * sink.write() calls are serialized and in submission order;
 * sink.flush() runs once after the last write.
 *
 * When @p cancel is non-null, it is checked before each job starts
 * and polled inside Simulator::run; a fired token makes the wave
 * throw JobCancelled out of this call after releasing every
 * gate-blocked worker (same path as a throwing job or sink). The
 * reorder window can be pinned with STSIM_REORDER_WINDOW (tests).
 *
 * @param workers Worker threads; 0 resolves STSIM_JOBS / hardware.
 */
StreamStats runJobs(const std::vector<SimJob> &jobs, ResultsSink &sink,
                    unsigned workers = 0,
                    const CancelToken *cancel = nullptr);

/**
 * Convenience wrapper over the streaming engine for callers that want
 * the whole wave in memory: returns results in submission order.
 */
std::vector<SimResults> runJobs(const std::vector<SimJob> &jobs,
                                unsigned workers = 0);

} // namespace stsim

#endif // STSIM_CORE_PARALLEL_HARNESS_HH
