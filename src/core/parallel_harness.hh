/**
 * @file
 * Parallel experiment engine: turns lists of fully-specified
 * simulation jobs into results using a RunPool, with results committed
 * in submission order so the output is bitwise identical for any
 * worker count. Harness::runMatrix and the bench drivers that need
 * per-job config control (Figure 7, Tables 1-2) route through here.
 */

#ifndef STSIM_CORE_PARALLEL_HARNESS_HH
#define STSIM_CORE_PARALLEL_HARNESS_HH

#include <string>
#include <vector>

#include "core/sim_config.hh"
#include "core/sim_results.hh"

namespace stsim
{

/** One fully-specified simulation job. */
struct SimJob
{
    SimConfig cfg;          ///< must already name its benchmark
    std::string experiment; ///< stamped into SimResults::experiment
};

/**
 * Run every job on a RunPool and return results in submission order.
 *
 * Each job constructs its own Simulator, so the only shared state is
 * the read-mostly program cache (internally synchronized). Results
 * are independent of @p workers.
 *
 * @param workers Worker threads; 0 resolves STSIM_JOBS / hardware.
 */
std::vector<SimResults> runJobs(const std::vector<SimJob> &jobs,
                                unsigned workers = 0);

} // namespace stsim

#endif // STSIM_CORE_PARALLEL_HARNESS_HH
