/**
 * @file
 * Top-level simulation configuration: workload, machine, predictor,
 * confidence estimator, speculation control and power model in one
 * value type.
 */

#ifndef STSIM_CORE_SIM_CONFIG_HH
#define STSIM_CORE_SIM_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>

#include "bpred/bpred_unit.hh"
#include "cache/hierarchy.hh"
#include "confidence/bpru.hh"
#include "pipeline/core_config.hh"
#include "power/power_params.hh"
#include "throttle/controller.hh"
#include "trace/profile.hh"

namespace stsim
{

/** Which confidence estimator the front end carries. */
enum class ConfKind : std::uint8_t
{
    None,    ///< no estimator (baseline / oracle runs)
    Bpru,    ///< BPRU-style tagged 4-level estimator (§4.3)
    Jrs,     ///< JRS miss-distance counters (Pipeline Gating)
    Perfect, ///< oracle estimator (upper bounds, tests)
};

/** Display name of a ConfKind. */
const char *confKindName(ConfKind k);

/** Everything needed to run one simulation. */
struct SimConfig
{
    /// @name Workload
    /// @{
    std::string benchmark = "go";        ///< Table 2 profile name
    /** When set, overrides `benchmark` with a user-supplied profile
     *  (custom workloads, calibration sweeps). */
    std::optional<BenchmarkProfile> customProfile;
    std::uint64_t maxInstructions = 2'000'000; ///< measured commits
    std::uint64_t warmupInstructions = 200'000;
    std::uint64_t runSeed = 42;
    /// @}

    /// @name Machine
    /// @{
    CoreConfig core;      ///< Table 3 widths/structures
    MemoryConfig memory;  ///< Table 3 hierarchy
    unsigned pipelineDepth = 14; ///< applied via applyPipelineDepth()
    /// @}

    /// @name Prediction & confidence
    /// @{
    BpredConfig bpred;              ///< 8 KB gshare default
    ConfKind confKind = ConfKind::None;
    std::size_t confBytes = 8 * 1024;
    unsigned jrsThreshold = 12;     ///< paper's MDC threshold
    BpruEstimator::Params bpruParams{};
    /// @}

    /// @name Speculation control
    /// @{
    SpecControlConfig specControl;  ///< throttling / gating
    /// @}

    /** Power model parameters (calibrated defaults). */
    PowerParams power = PowerParams::calibratedDefaults();

    /**
     * Resolve derived parameters: pipeline-depth mapping, DL1 extra
     * latency, bpred power scaling. Idempotent; the Simulator
     * constructor calls it automatically.
     */
    void finalize();

    /** Set once finalize() has run (guards double power scaling). */
    bool finalized = false;

    /**
     * Honour the REPRO_INSTRUCTIONS environment variable (used by the
     * bench harnesses so full reproduction runs can be lengthened or
     * shortened without rebuilds).
     */
    void applyEnvOverrides();
};

} // namespace stsim

#endif // STSIM_CORE_SIM_CONFIG_HH
