/**
 * @file
 * Named job suites for the sharded runner and CI: fully-specified
 * SimJob lists (manifest content) for the paper's figure sweeps and
 * the pinned golden matrix the shard-equivalence gate runs.
 */

#ifndef STSIM_CORE_SUITES_HH
#define STSIM_CORE_SUITES_HH

#include <string>
#include <vector>

#include "core/parallel_harness.hh"

namespace stsim
{

/**
 * Jobs of a named suite, in canonical submission order:
 *
 *  - "golden": the pinned CI matrix — {crafty, go, twolf, parser} x
 *    {baseline, A3, C2, PG} at 10K measured / 2K warmup commits, plus
 *    two 24-stage deep-pipeline jobs (crafty/C2, go/baseline). Small
 *    enough to run on every PR, wide enough to cover every control
 *    mechanism; changing it invalidates recorded shard outputs, so
 *    treat its contents as pinned.
 *  - "fig3" / "fig4" / "fig5": baseline plus the corresponding
 *    experiment series over the full Table 2 suite at the paper's
 *    2M-commit runs.
 *
 * Fatals on an unknown name.
 */
std::vector<SimJob> suiteJobs(const std::string &name);

/** All known suite names. */
const std::vector<std::string> &suiteNames();

} // namespace stsim

#endif // STSIM_CORE_SUITES_HH
