#include "suites.hh"

#include "common/logging.hh"
#include "core/experiment.hh"
#include "core/harness.hh"

namespace stsim
{

namespace
{

SimJob
makeJob(const std::string &bench, const std::string &exp,
        const SimConfig &base)
{
    SimJob j;
    j.cfg = base;
    j.cfg.benchmark = bench;
    Experiment::byName(exp).applyTo(j.cfg);
    j.experiment = exp;
    return j;
}

std::vector<SimJob>
goldenSuite()
{
    SimConfig base;
    base.maxInstructions = 10'000;
    base.warmupInstructions = 2'000;

    std::vector<SimJob> jobs;
    for (const char *bench : {"crafty", "go", "twolf", "parser"})
        for (const char *exp : {"baseline", "A3", "C2", "PG"})
            jobs.push_back(makeJob(bench, exp, base));

    // Deep-pipeline rows: exercise the Figure 6 depth mapping through
    // the manifest/serde path too.
    SimConfig deep = base;
    deep.pipelineDepth = 24;
    jobs.push_back(makeJob("crafty", "C2", deep));
    jobs.push_back(makeJob("go", "baseline", deep));
    return jobs;
}

std::vector<SimJob>
figureSuite(const std::vector<Experiment> &series)
{
    SimConfig base; // paper defaults: 2M measured commits
    std::vector<SimJob> jobs;
    for (const std::string &bench : Harness::benchmarks())
        jobs.push_back(makeJob(bench, "baseline", base));
    for (const Experiment &exp : series) {
        for (const std::string &bench : Harness::benchmarks()) {
            SimJob j;
            j.cfg = base;
            j.cfg.benchmark = bench;
            exp.applyTo(j.cfg);
            j.experiment = exp.name;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

} // namespace

std::vector<SimJob>
suiteJobs(const std::string &name)
{
    if (name == "golden")
        return goldenSuite();
    if (name == "fig3")
        return figureSuite(Experiment::figure3Series());
    if (name == "fig4")
        return figureSuite(Experiment::figure4Series());
    if (name == "fig5")
        return figureSuite(Experiment::figure5Series());
    stsim_fatal("unknown suite '%s' (known: golden, fig3, fig4, fig5)",
                name.c_str());
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {"golden", "fig3",
                                                   "fig4", "fig5"};
    return names;
}

} // namespace stsim
