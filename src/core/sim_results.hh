/**
 * @file
 * Results of one simulation run plus the baseline-relative metrics the
 * paper reports (speedup, power/energy savings, E-D improvement).
 */

#ifndef STSIM_CORE_SIM_RESULTS_HH
#define STSIM_CORE_SIM_RESULTS_HH

#include <array>
#include <string>

#include "pipeline/core_stats.hh"
#include "power/units.hh"

namespace stsim
{

/** Everything measured in one run. */
struct SimResults
{
    std::string benchmark;
    std::string experiment;

    CoreStats core;

    /// @name Headline metrics
    /// @{
    double ipc = 0.0;
    double seconds = 0.0;     ///< simulated execution time
    double avgPowerW = 0.0;
    double energyJ = 0.0;
    double edProduct = 0.0;   ///< energy * delay (J*s)
    /// @}

    /// @name Power breakdown
    /// @{
    std::array<double, kNumPUnits> unitEnergyJ{};
    std::array<double, kNumPUnits> unitWastedJ{};
    /** Mean per-unit activity factors (calibration diagnostics). */
    std::array<double, kNumPUnits> unitActivity{};
    double wastedEnergyJ = 0.0; ///< total mis-speculation energy
    /// @}

    /// @name Prediction & confidence
    /// @{
    double condMissRate = 0.0;
    double spec = 0.0; ///< SPEC metric (0 when no estimator)
    double pvn = 0.0;  ///< PVN metric
    /// @}

    /// @name Memory
    /// @{
    double il1MissRate = 0.0;
    double dl1MissRate = 0.0;
    double l2MissRate = 0.0;
    /// @}

    /** Fraction of total energy attributed to mis-speculation. */
    double
    wastedEnergyFrac() const
    {
        return energyJ > 0.0 ? wastedEnergyJ / energyJ : 0.0;
    }
};

/** Baseline-relative improvements, in percent (paper's four plots). */
struct RelativeMetrics
{
    double speedup = 1.0;       ///< ratio (>1 is faster)
    double powerSavings = 0.0;  ///< %
    double energySavings = 0.0; ///< %
    double edImprovement = 0.0; ///< %

    /** Compute experiment-vs-baseline metrics. */
    static RelativeMetrics compute(const SimResults &baseline,
                                   const SimResults &experiment);
};

} // namespace stsim

#endif // STSIM_CORE_SIM_RESULTS_HH
