#include "harness.hh"

#include "common/logging.hh"
#include "core/simulator.hh"
#include "trace/profile.hh"

namespace stsim
{

Harness::Harness(SimConfig base)
    : base_(std::move(base))
{
    base_.applyEnvOverrides();
}

const std::vector<std::string> &
Harness::benchmarks()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &p : specProfiles())
            v.push_back(p.name);
        return v;
    }();
    return names;
}

const SimResults &
Harness::baseline(const std::string &bench)
{
    auto it = baselines_.find(bench);
    if (it != baselines_.end())
        return it->second;

    SimConfig cfg = base_;
    cfg.benchmark = bench;
    Experiment::byName("baseline").applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    r.experiment = "baseline";
    return baselines_.emplace(bench, std::move(r)).first->second;
}

SimResults
Harness::run(const std::string &bench, const Experiment &exp)
{
    SimConfig cfg = base_;
    cfg.benchmark = bench;
    exp.applyTo(cfg);
    SimResults r = Simulator(cfg).run();
    r.experiment = exp.name;
    return r;
}

RelativeMetrics
Harness::relative(const std::string &bench, const Experiment &exp)
{
    const SimResults &base = baseline(bench);
    SimResults r = run(bench, exp);
    return RelativeMetrics::compute(base, r);
}

Harness::SuiteRows
Harness::runSuite(const Experiment &exp)
{
    return runMatrix({exp}).front();
}

RelativeMetrics
averageMetrics(
    const std::vector<std::pair<std::string, RelativeMetrics>> &rows)
{
    // RelativeMetrics defaults seed speedup to 1.0 (the "no change"
    // identity); an accumulator must start every field at zero.
    RelativeMetrics avg;
    avg.speedup = 0.0;
    avg.powerSavings = 0.0;
    avg.energySavings = 0.0;
    avg.edImprovement = 0.0;
    double n = 0.0;
    for (const auto &[name, m] : rows) {
        if (name == "Average")
            continue;
        avg.speedup += m.speedup;
        avg.powerSavings += m.powerSavings;
        avg.energySavings += m.energySavings;
        avg.edImprovement += m.edImprovement;
        n += 1.0;
    }
    stsim_assert(n > 0, "no rows to average (got %zu 'Average'-only rows)",
                 rows.size());
    avg.speedup /= n;
    avg.powerSavings /= n;
    avg.energySavings /= n;
    avg.edImprovement /= n;
    return avg;
}

} // namespace stsim
