#include "run_pool.hh"

#include <bit>
#include <cstdlib>

#include "common/logging.hh"

namespace stsim
{

unsigned
RunPool::defaultWorkers()
{
    if (const char *s = std::getenv("STSIM_JOBS")) {
        // strtoul silently wraps negative input, so parse signed.
        char *end = nullptr;
        long long v = std::strtoll(s, &end, 10);
        if (end && *end == '\0' && v >= 1) {
            if (v > 256)
                v = 256;
            return static_cast<unsigned>(v);
        }
        stsim_warn("ignoring bad STSIM_JOBS='%s'", s);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

RunPool::RunPool(unsigned workers)
    : queueDepth_(obs::Registry::instance().gauge("runpool.queue_depth")),
      idleWorkers_(obs::Registry::instance().gauge("runpool.idle_workers"))
{
    if (workers == 0)
        workers = defaultWorkers();
    idleBits_.assign((workers + 63) / 64, 0);
    cvWorker_ = std::make_unique<std::condition_variable[]>(workers);
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

RunPool::~RunPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        cvIdle_.wait(lock, [this] { return inFlight_ == 0; });
        stopping_ = true;
    }
    for (std::size_t i = 0; i < threads_.size(); ++i)
        cvWorker_[i].notify_one();
    for (std::thread &t : threads_)
        t.join();
}

int
RunPool::claimIdleWorker()
{
    for (std::size_t w = 0; w < idleBits_.size(); ++w) {
        const std::uint64_t word = idleBits_[w];
        if (word) {
            const unsigned bit =
                static_cast<unsigned>(std::countr_zero(word));
            idleBits_[w] = word & (word - 1); // claim: clear lowest
            return static_cast<int>(w * 64 + bit);
        }
    }
    return -1; // every worker busy; one will drain the queue
}

void
RunPool::submit(std::function<void()> job)
{
    int w;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stsim_assert(!stopping_, "submit on a stopping RunPool");
        queue_.push_back(std::move(job));
        ++inFlight_;
        queueDepth_.add(1);
        w = claimIdleWorker();
    }
    if (w >= 0)
        cvWorker_[w].notify_one();
}

void
RunPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    cvIdle_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
RunPool::parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); });
    wait();
}

void
RunPool::workerLoop(unsigned idx)
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            while (!stopping_ && queue_.empty()) {
                // Park: publish the idle bit, wait for a claim. The
                // bit is re-set on every loop iteration because a
                // claimant's job may have been drained by another
                // worker before this one woke.
                setIdle(idx);
                idleWorkers_.add(1);
                cvWorker_[idx].wait(lock);
                idleWorkers_.sub(1);
                clearIdle(idx);
            }
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            queueDepth_.sub(1);
        }
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (inFlight_ == 0)
                cvIdle_.notify_all();
        }
    }
}

} // namespace stsim
