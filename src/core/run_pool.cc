#include "run_pool.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace stsim
{

unsigned
RunPool::defaultWorkers()
{
    if (const char *s = std::getenv("STSIM_JOBS")) {
        // strtoul silently wraps negative input, so parse signed.
        char *end = nullptr;
        long long v = std::strtoll(s, &end, 10);
        if (end && *end == '\0' && v >= 1) {
            if (v > 256)
                v = 256;
            return static_cast<unsigned>(v);
        }
        stsim_warn("ignoring bad STSIM_JOBS='%s'", s);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

RunPool::RunPool(unsigned workers)
    : queueDepth_(obs::Registry::instance().gauge("runpool.queue_depth")),
      idleWorkers_(obs::Registry::instance().gauge("runpool.idle_workers"))
{
    if (workers == 0)
        workers = defaultWorkers();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

RunPool::~RunPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        cvIdle_.wait(lock, [this] { return inFlight_ == 0; });
        stopping_ = true;
    }
    cvWork_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
RunPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stsim_assert(!stopping_, "submit on a stopping RunPool");
        queue_.push_back(std::move(job));
        ++inFlight_;
        queueDepth_.add(1);
    }
    cvWork_.notify_one();
}

void
RunPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    cvIdle_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
RunPool::parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); });
    wait();
}

void
RunPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            idleWorkers_.add(1);
            cvWork_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
            idleWorkers_.sub(1);
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            queueDepth_.sub(1);
        }
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (inFlight_ == 0)
                cvIdle_.notify_all();
        }
    }
}

} // namespace stsim
