#include "experiment.hh"

#include "common/logging.hh"

namespace stsim
{

void
Experiment::applyTo(SimConfig &cfg) const
{
    cfg.confKind = confKind;
    cfg.specControl = specControl;
    cfg.core.oracle = oracle;
}

namespace
{

/** Paper legend strings for the throttling experiments. */
std::string
legendFor(const ThrottlePolicy &p)
{
    const ThrottleAction &lc = p.action(ConfLevel::LC);
    const ThrottleAction &vlc = p.action(ConfLevel::VLC);
    auto fmt = [](const ThrottleAction &a) {
        std::string s = "fetch ";
        s += bandwidthLevelName(a.fetch);
        if (a.decode != BandwidthLevel::Full) {
            s += " + decode ";
            s += bandwidthLevelName(a.decode);
        }
        if (a.noSelect)
            s += " + noselect";
        return s;
    };
    return "LC: " + fmt(lc) + "; VLC: " + fmt(vlc);
}

Experiment
selective(const std::string &name)
{
    Experiment e;
    e.name = name;
    e.confKind = ConfKind::Bpru;
    e.specControl.mode = SpecControlMode::Selective;
    e.specControl.policy = ThrottlePolicy::byName(name);
    e.description = legendFor(e.specControl.policy);
    return e;
}

} // namespace

Experiment
Experiment::byName(const std::string &name)
{
    if (name == "baseline") {
        Experiment e;
        e.name = name;
        e.description = "no speculation control";
        return e;
    }
    if (name == "oracle-fetch" || name == "oracle-decode" ||
        name == "oracle-select") {
        Experiment e;
        e.name = name;
        e.description = "oracle speculation control (" + name + ")";
        e.oracle = name == "oracle-fetch"
                       ? OracleMode::OracleFetch
                       : (name == "oracle-decode"
                              ? OracleMode::OracleDecode
                              : OracleMode::OracleSelect);
        return e;
    }
    if (name == "PG" || name == "pipeline-gating") {
        Experiment e;
        e.name = "PG";
        e.description = "Pipeline Gating (JRS, MDC=12, threshold 2)";
        e.confKind = ConfKind::Jrs;
        e.specControl.mode = SpecControlMode::PipelineGating;
        e.specControl.gatingThreshold = 2;
        return e;
    }
    // A1..A6 / B1..B8 / C1..C6 selective-throttling policies.
    return selective(name);
}

std::vector<Experiment>
Experiment::figure3Series()
{
    std::vector<Experiment> v;
    for (const char *n : {"A1", "A2", "A3", "A4", "A5", "A6"})
        v.push_back(byName(n));
    v.push_back(byName("PG")); // the paper's A7
    return v;
}

std::vector<Experiment>
Experiment::figure4Series()
{
    std::vector<Experiment> v;
    for (const char *n :
         {"B1", "B2", "B3", "B4", "B5", "B6", "B7", "B8"})
        v.push_back(byName(n));
    v.push_back(byName("PG")); // the paper's B9
    return v;
}

std::vector<Experiment>
Experiment::figure5Series()
{
    std::vector<Experiment> v;
    for (const char *n : {"C1", "C2", "C3", "C4", "C5", "C6"})
        v.push_back(byName(n));
    v.push_back(byName("PG")); // the paper's C7
    return v;
}

} // namespace stsim
