#include "simulator.hh"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "confidence/bpru.hh"
#include "confidence/jrs.hh"
#include "confidence/perfect.hh"
#include "core/job_serde.hh"
#include "core/state_serde.hh"
#include "obs/metrics.hh"
#include "trace/profile.hh"

namespace stsim
{

const char *
confKindName(ConfKind k)
{
    switch (k) {
      case ConfKind::None: return "none";
      case ConfKind::Bpru: return "bpru";
      case ConfKind::Jrs: return "jrs";
      case ConfKind::Perfect: return "perfect";
    }
    return "?";
}

void
SimConfig::finalize()
{
    if (finalized)
        return;
    finalized = true;
    core.applyPipelineDepth(pipelineDepth);
    memory.dl1ExtraLatency = core.extraDl1Latency;
    core.validate();
    if (specControl.mode != SpecControlMode::None &&
        confKind == ConfKind::None) {
        stsim_fatal("speculation control needs a confidence estimator");
    }
    // Bpred-unit power follows its total array budget: predictor plus
    // confidence estimator when one is present (Figure 7 scaling; also
    // charges Selective Throttling for its estimator hardware).
    std::size_t budget = bpred.predictorBytes;
    if (confKind == ConfKind::Bpru || confKind == ConfKind::Jrs)
        budget += confBytes;
    power.scaleBpredSize(budget);
}

void
SimConfig::applyEnvOverrides()
{
    if (const char *s = std::getenv("REPRO_INSTRUCTIONS")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(s, &end, 10);
        if (end && *end == '\0' && v >= 1000)
            maxInstructions = v;
        else
            stsim_warn("ignoring bad REPRO_INSTRUCTIONS='%s'", s);
    }
}

std::shared_ptr<const StaticProgram>
Simulator::programFor(const std::string &benchmark)
{
    // Shared across concurrently-constructed Simulators (the parallel
    // experiment engine); the map is the only mutable shared state.
    static std::mutex mu;
    static std::map<std::string, std::shared_ptr<const StaticProgram>>
        cache;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = cache.find(benchmark);
        if (it != cache.end())
            return it->second;
    }
    // Build outside the lock: CFG construction is expensive and
    // deterministic, so a racing duplicate is wasted work, not a
    // correctness problem — emplace keeps whichever landed first.
    auto prog = std::make_shared<const StaticProgram>(
        findProfile(benchmark));
    std::lock_guard<std::mutex> lock(mu);
    return cache.emplace(benchmark, std::move(prog)).first->second;
}

Simulator::Simulator(SimConfig cfg)
    : cfg_(std::move(cfg))
{
    cfg_.finalize();

    std::shared_ptr<const StaticProgram> program;
    if (cfg_.customProfile) {
        program =
            std::make_shared<const StaticProgram>(*cfg_.customProfile);
    } else {
        program = programFor(cfg_.benchmark);
    }
    workload_ = std::make_unique<Workload>(std::move(program),
                                           cfg_.runSeed);
    bpred_ = std::make_unique<BpredUnit>(cfg_.bpred);

    switch (cfg_.confKind) {
      case ConfKind::None:
        break;
      case ConfKind::Bpru:
        confidence_ = std::make_unique<BpruEstimator>(cfg_.confBytes,
                                                      cfg_.bpruParams);
        break;
      case ConfKind::Jrs:
        confidence_ = std::make_unique<JrsEstimator>(cfg_.confBytes,
                                                     cfg_.jrsThreshold);
        break;
      case ConfKind::Perfect:
        confidence_ = std::make_unique<PerfectEstimator>();
        break;
    }

    memory_ = std::make_unique<MemoryHierarchy>(cfg_.memory);
    power_ = std::make_unique<PowerModel>(cfg_.power);
    controller_ =
        std::make_unique<SpeculationController>(cfg_.specControl);

    Core::Deps deps;
    deps.workload = workload_.get();
    deps.bpred = bpred_.get();
    deps.confidence = confidence_.get();
    deps.memory = memory_.get();
    deps.power = power_.get();
    deps.controller = controller_.get();
    core_ = std::make_unique<Core>(cfg_.core, deps);
}

Simulator::~Simulator() = default;

SimResults
Simulator::run(const CancelToken *cancel)
{
    if (phase_ == Phase::Warmup)
        runWarmup(cancel);
    return runMeasure(cancel);
}

void
Simulator::runWarmup(const CancelToken *cancel)
{
    if (phase_ != Phase::Warmup)
        return;

    // Poll cadence for cooperative cancellation: every 2048 cycles is
    // frequent enough that a deadline fires within microseconds of
    // wall time, and rare enough to be invisible in the profile.
    constexpr Cycle kCancelPollMask = 2047;

    // Warmup: trains caches/predictors, then statistics reset.
    while (core_->stats().committedInsts < cfg_.warmupInstructions) {
        core_->tick();
        if (cancel && (core_->now() & kCancelPollMask) == 0 &&
            cancel->cancelled()) {
            throw JobCancelled();
        }
    }
    core_->resetStats();
    power_->resetStats();
    bpred_->resetStats();

    // Cache stats reset so reported miss rates exclude cold start.
    memory_->resetStats();
    phase_ = Phase::Measure;
}

SimResults
Simulator::runMeasure(const CancelToken *cancel)
{
    stsim_assert(phase_ == Phase::Measure,
                 "runMeasure before warmup completed");
    constexpr Cycle kCancelPollMask = 2047;
    auto pollCancel = [&] {
        if (cancel && (core_->now() & kCancelPollMask) == 0 &&
            cancel->cancelled()) {
            throw JobCancelled();
        }
    };

    const Cycle max_cycles =
        static_cast<Cycle>(cfg_.maxInstructions) * 64 + 1'000'000;
    Cycle start = core_->now();
    while (core_->stats().committedInsts < cfg_.maxInstructions) {
        core_->tick();
        pollCancel();
        if (core_->now() - start > max_cycles)
            stsim_panic("simulation ran away: %llu cycles for %llu insts",
                        static_cast<unsigned long long>(core_->now() -
                                                        start),
                        static_cast<unsigned long long>(
                            core_->stats().committedInsts));
    }

    SimResults r;
    r.benchmark = cfg_.benchmark;
    r.core = core_->stats();
    r.ipc = r.core.ipc();
    r.seconds = power_->seconds();
    r.avgPowerW = power_->avgPower();
    r.energyJ = power_->totalEnergy();
    r.edProduct = r.energyJ * r.seconds;
    for (PUnit u : kAllPUnits) {
        auto i = static_cast<std::size_t>(u);
        r.unitEnergyJ[i] = power_->unitEnergy(u);
        r.unitWastedJ[i] = power_->unitWastedEnergy(u);
        r.unitActivity[i] = power_->meanActivity(u);
    }
    r.wastedEnergyJ = power_->wastedEnergy();
    r.condMissRate = bpred_->condMissRate();
    r.spec = core_->confMetrics().spec();
    r.pvn = core_->confMetrics().pvn();
    r.il1MissRate = memory_->il1().missRate();
    r.dl1MissRate = memory_->dl1().missRate();
    r.l2MissRate = memory_->l2().missRate();

    // Flush the core's plain hot-path counters into the process-wide
    // registry once per run; the pipeline itself never touches an
    // atomic, and results are unaffected (observability only).
    {
        const Core::HotCounters &h = core_->hotCounters();
        obs::Registry &reg = obs::Registry::instance();
        reg.counter("core.fetch_groups").inc(h.fetchGroups);
        reg.counter("core.producer_table_hits").inc(h.producerHits);
        reg.counter("core.producer_table_misses")
            .inc(h.producerMisses);
    }
    return r;
}

std::string
Simulator::warmupClassKey(const SimConfig &cfg)
{
    SimConfig key = cfg;
    key.finalize(); // idempotent; normalizes derived parameters
    key.maxInstructions = 0;
    key.power = PowerParams{};
    return serde::toJson(key);
}

std::string
Simulator::saveSnapshot() const
{
    serde::StateWriter w;
    w.begin("sim");
    w.str("class_key", warmupClassKey(cfg_));
    w.u64("phase", static_cast<std::uint64_t>(phase_));
    workload_->saveState(w);
    bpred_->saveState(w);
    if (confidence_)
        confidence_->saveState(w);
    memory_->saveState(w);
    power_->saveState(w);
    controller_->saveState(w);
    core_->saveState(w);
    w.end("sim");
    return w.take();
}

void
Simulator::restoreSnapshot(std::string_view image)
{
    serde::StateReader r(image);
    r.begin("sim");
    std::string key = r.str("class_key");
    std::string want = warmupClassKey(cfg_);
    if (key != want)
        stsim_fatal("state: snapshot is for a different warmup class "
                    "(benchmark/seed/machine/predictor/throttle config "
                    "must match; only run length and power parameters "
                    "may differ)");
    std::uint64_t phase = r.u64("phase");
    if (phase > static_cast<std::uint64_t>(Phase::Measure))
        stsim_fatal("state: bad simulator phase %llu",
                    static_cast<unsigned long long>(phase));
    phase_ = static_cast<Phase>(phase);
    workload_->loadState(r);
    bpred_->loadState(r);
    if (confidence_)
        confidence_->loadState(r);
    memory_->loadState(r);
    power_->loadState(r);
    controller_->loadState(r);
    core_->loadState(r);
    r.end("sim");
    r.finish();
}

RelativeMetrics
RelativeMetrics::compute(const SimResults &baseline,
                         const SimResults &experiment)
{
    RelativeMetrics m;
    if (experiment.ipc > 0.0)
        m.speedup = experiment.ipc / baseline.ipc;
    if (baseline.avgPowerW > 0.0)
        m.powerSavings = 100.0 *
            (baseline.avgPowerW - experiment.avgPowerW) /
            baseline.avgPowerW;
    if (baseline.energyJ > 0.0)
        m.energySavings = 100.0 *
            (baseline.energyJ - experiment.energyJ) / baseline.energyJ;
    if (baseline.edProduct > 0.0)
        m.edImprovement = 100.0 *
            (baseline.edProduct - experiment.edProduct) /
            baseline.edProduct;
    return m;
}

} // namespace stsim
