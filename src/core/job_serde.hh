/**
 * @file
 * Serialization layer for the out-of-process experiment engine: round
 * trips SimConfig / SimJob / SimResults through a compact line-based
 * JSON format (JSONL). Every double is encoded as a C99 hex-float
 * string ("0x1.3156440cec345p-9"), so parse(serialize(x)) reproduces x
 * bit for bit -- the property the sharded runner's merge-vs-in-process
 * equivalence gate relies on.
 *
 * One serialized value per line, no embedded newlines: a manifest is
 * one SimJob per line, a result stream is one indexed SimResults
 * record per line, and shard outputs can be merged by sorting lines on
 * their "index" field without re-serializing.
 */

#ifndef STSIM_CORE_JOB_SERDE_HH
#define STSIM_CORE_JOB_SERDE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/parallel_harness.hh"
#include "core/sim_config.hh"
#include "core/sim_results.hh"

namespace stsim
{
namespace serde
{

/** Serialize a full SimConfig as one JSON object (one line). */
std::string toJson(const SimConfig &cfg);

/** Parse a SimConfig; fatals on malformed input. */
SimConfig configFromJson(std::string_view json);

/** Serialize a manifest entry: {"experiment": ..., "cfg": {...}}. */
std::string toJson(const SimJob &job);

/** Parse a manifest entry; fatals on malformed input. */
SimJob jobFromJson(std::string_view json);

/** Serialize a SimResults with bit-exact doubles. */
std::string toJson(const SimResults &r);

/** Parse a SimResults; fatals on malformed input. */
SimResults resultsFromJson(std::string_view json);

/**
 * Serialize one result-stream record: the submission index plus the
 * full SimResults. The index is what makes shard outputs mergeable
 * back into submission order.
 */
std::string resultRecordToJson(std::uint64_t index, const SimResults &r);

/** Parse a result-stream record into (index, results). */
std::pair<std::uint64_t, SimResults>
resultRecordFromJson(std::string_view json);

/** The submission index of a result-stream record (cheap field pick). */
std::uint64_t resultRecordIndex(std::string_view json);

/**
 * One parsed stsim_serve request frame. The job shape is a strict
 * superset of a manifest record -- any manifest line is a valid
 * request -- plus an optional client-chosen "id" echoed in the reply
 * (default 0), an optional per-request "deadlineMs", and three
 * jobless operator forms: {"op":"ping"} (liveness), {"op":"health"}
 * (stats + worker-fleet state), and {"op":"metrics"} (the process
 * metrics-registry snapshot).
 */
struct ServeRequest
{
    bool ping = false;
    bool health = false;
    bool metrics = false;
    std::uint64_t id = 0;
    std::uint64_t deadlineMs = 0; ///< 0 = no per-request deadline
    SimJob job; ///< valid only when !ping && !health && !metrics
};

/**
 * Result of a non-fatal parse entry point. Truthiness is success;
 * on failure `error` carries the strict parser's diagnostic. One
 * result shape for every parse surface (serve requests, flat records,
 * manifest jobs, configs, results) -- callers that used to pick
 * between a bool + out-param style and a fatal DOM style now all
 * write `if (ParseOutcome p = parseX(...)) ... else use(p.error)`.
 */
struct ParseOutcome
{
    bool ok = true;
    std::string error;

    explicit operator bool() const { return ok; }
};

/**
 * Parse a request frame without fataling on hostile input: any
 * malformed frame (bad JSON, missing keys, wrong types -- anything
 * the strict parser or config decoder rejects) yields a failed
 * outcome carrying the diagnostic. The daemon's front door: garbage
 * must become an error reply, never a process exit.
 */
ParseOutcome parseServeRequest(std::string_view json,
                               ServeRequest &out);

/**
 * Writer for flat single-line JSON records (string / unsigned-integer
 * fields, no nesting) -- the dispatch journal's record shape. Shares
 * the main serializer's byte conventions (insertion-ordered fields,
 * identical string escaping), so journal lines are parseable by the
 * same strict reader as every other on-disk format here.
 */
class FlatWriter
{
  public:
    FlatWriter() : out_("{") {}

    FlatWriter &str(const char *key, std::string_view value);
    FlatWriter &u64(const char *key, std::uint64_t value);

    /** Close the object and take the line. The writer is spent. */
    std::string finish();

  private:
    void key(const char *k);

    std::string out_;
    bool first_ = true;
};

/** One parsed field of a flat record. */
struct FlatField
{
    std::string key;
    std::string value;     ///< decoded string, or raw integer token
    bool isString = false;
};

/**
 * Parse a flat single-line JSON record (the FlatWriter shape) without
 * fataling. Journal replay uses the failed outcome to drop a torn
 * trailing line after a dispatcher crash instead of refusing to
 * resume.
 */
ParseOutcome parseFlat(std::string_view json,
                       std::vector<FlatField> &out);

/** Non-fatal form of jobFromJson. */
ParseOutcome parseJob(std::string_view json, SimJob &out);

/** Non-fatal form of configFromJson. */
ParseOutcome parseConfig(std::string_view json, SimConfig &out);

/** Non-fatal form of resultsFromJson. */
ParseOutcome parseResults(std::string_view json, SimResults &out);

/** Bit-exact hex-float encoding of a double ("%a"). */
std::string doubleToHex(double d);

/** Inverse of doubleToHex; also accepts plain decimal doubles. */
double doubleFromHex(std::string_view s);

} // namespace serde
} // namespace stsim

#endif // STSIM_CORE_JOB_SERDE_HH
