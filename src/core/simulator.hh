/**
 * @file
 * Simulator: owns and wires every subsystem for one run. This is the
 * library's primary entry point.
 *
 * Example:
 * @code
 *   SimConfig cfg;
 *   cfg.benchmark = "go";
 *   cfg.confKind = ConfKind::Bpru;
 *   cfg.specControl.mode = SpecControlMode::Selective;
 *   cfg.specControl.policy = ThrottlePolicy::byName("C2");
 *   SimResults r = Simulator(cfg).run();
 * @endcode
 */

#ifndef STSIM_CORE_SIMULATOR_HH
#define STSIM_CORE_SIMULATOR_HH

#include <memory>
#include <string>
#include <string_view>

#include "bpred/bpred_unit.hh"
#include "cache/hierarchy.hh"
#include "confidence/estimator.hh"
#include "core/cancel.hh"
#include "core/sim_config.hh"
#include "core/sim_results.hh"
#include "pipeline/core.hh"
#include "power/power_model.hh"
#include "throttle/controller.hh"
#include "trace/workload.hh"

namespace stsim
{

/** Owns one simulated machine and runs it to completion. */
class Simulator
{
  public:
    explicit Simulator(SimConfig cfg);
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Run warmup + measurement; returns the collected results. When
     * @p cancel is non-null it is polled every few thousand cycles
     * (warmup included) and a fired token throws JobCancelled; a null
     * token costs one never-taken branch per tick.
     */
    SimResults run(const CancelToken *cancel = nullptr);

    /**
     * Run (or finish) the warmup phase only: train predictors/caches,
     * then reset the event counters exactly as run() would. Afterwards
     * the simulator sits at the first measured cycle -- the natural
     * point to saveSnapshot() and fork measurement sweeps from. No-op
     * when warmup has already completed.
     */
    void runWarmup(const CancelToken *cancel = nullptr);

    /**
     * Serialize the complete machine state (between ticks) into a
     * snapshot image. A fresh Simulator with an equivalent config that
     * restoreSnapshot()s this image and then run()s produces results
     * bitwise identical to an uninterrupted run.
     */
    std::string saveSnapshot() const;

    /**
     * Restore state written by saveSnapshot(). Fatals unless this
     * simulator's warmupClassKey() matches the snapshot's (same
     * benchmark, seed, machine, predictor and throttle config; only
     * the run length and power parameters may differ).
     */
    void restoreSnapshot(std::string_view image);

    /**
     * Canonical identity of the warmup-equivalence class of @p cfg:
     * the finalized config serialized as JSON with the fields that
     * cannot influence post-warmup architectural state masked out --
     * the measured-instruction budget and the power parameters (power
     * is purely observational and its accumulators are zeroed when
     * warmup ends). Two jobs with equal keys may share one warmup
     * snapshot.
     */
    static std::string warmupClassKey(const SimConfig &cfg);

    /** Access the core (tests/diagnostics). */
    Core &core() { return *core_; }
    const SimConfig &config() const { return cfg_; }
    BpredUnit &bpred() { return *bpred_; }
    MemoryHierarchy &memory() { return *memory_; }
    PowerModel &power() { return *power_; }

    /**
     * Shared cache of immutable synthetic programs, keyed by profile
     * name; avoids rebuilding the CFG for every experiment.
     */
    static std::shared_ptr<const StaticProgram>
    programFor(const std::string &benchmark);

  private:
    /** Where the run stands; serialized, so snapshots resume exactly. */
    enum class Phase : std::uint8_t
    {
        Warmup,  ///< still training (or never ticked)
        Measure, ///< stats reset done; measuring
    };

    /** The measurement loop + result assembly (phase_ == Measure). */
    SimResults runMeasure(const CancelToken *cancel);

    SimConfig cfg_;
    Phase phase_ = Phase::Warmup;
    std::unique_ptr<Workload> workload_;
    std::unique_ptr<BpredUnit> bpred_;
    std::unique_ptr<ConfidenceEstimator> confidence_;
    std::unique_ptr<MemoryHierarchy> memory_;
    std::unique_ptr<PowerModel> power_;
    std::unique_ptr<SpeculationController> controller_;
    std::unique_ptr<Core> core_;
};

} // namespace stsim

#endif // STSIM_CORE_SIMULATOR_HH
