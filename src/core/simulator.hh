/**
 * @file
 * Simulator: owns and wires every subsystem for one run. This is the
 * library's primary entry point.
 *
 * Example:
 * @code
 *   SimConfig cfg;
 *   cfg.benchmark = "go";
 *   cfg.confKind = ConfKind::Bpru;
 *   cfg.specControl.mode = SpecControlMode::Selective;
 *   cfg.specControl.policy = ThrottlePolicy::byName("C2");
 *   SimResults r = Simulator(cfg).run();
 * @endcode
 */

#ifndef STSIM_CORE_SIMULATOR_HH
#define STSIM_CORE_SIMULATOR_HH

#include <memory>

#include "bpred/bpred_unit.hh"
#include "cache/hierarchy.hh"
#include "confidence/estimator.hh"
#include "core/cancel.hh"
#include "core/sim_config.hh"
#include "core/sim_results.hh"
#include "pipeline/core.hh"
#include "power/power_model.hh"
#include "throttle/controller.hh"
#include "trace/workload.hh"

namespace stsim
{

/** Owns one simulated machine and runs it to completion. */
class Simulator
{
  public:
    explicit Simulator(SimConfig cfg);
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Run warmup + measurement; returns the collected results. When
     * @p cancel is non-null it is polled every few thousand cycles
     * (warmup included) and a fired token throws JobCancelled; a null
     * token costs one never-taken branch per tick.
     */
    SimResults run(const CancelToken *cancel = nullptr);

    /** Access the core (tests/diagnostics). */
    Core &core() { return *core_; }
    const SimConfig &config() const { return cfg_; }
    BpredUnit &bpred() { return *bpred_; }
    MemoryHierarchy &memory() { return *memory_; }
    PowerModel &power() { return *power_; }

    /**
     * Shared cache of immutable synthetic programs, keyed by profile
     * name; avoids rebuilding the CFG for every experiment.
     */
    static std::shared_ptr<const StaticProgram>
    programFor(const std::string &benchmark);

  private:
    SimConfig cfg_;
    std::unique_ptr<Workload> workload_;
    std::unique_ptr<BpredUnit> bpred_;
    std::unique_ptr<ConfidenceEstimator> confidence_;
    std::unique_ptr<MemoryHierarchy> memory_;
    std::unique_ptr<PowerModel> power_;
    std::unique_ptr<SpeculationController> controller_;
    std::unique_ptr<Core> core_;
};

} // namespace stsim

#endif // STSIM_CORE_SIMULATOR_HH
