/**
 * @file
 * Cooperative cancellation for simulation work. A CancelToken is a
 * single atomic flag shared between a requester (a deadline reaper, a
 * disconnecting client, a draining server) and the code doing the
 * work. Simulator::run polls it every few thousand cycles; runJobs
 * checks it before starting each job. Cancellation surfaces as a
 * thrown JobCancelled, which rides the same abort path as any other
 * job exception, so gate-blocked pool workers are released exactly
 * the way they are on a sink failure.
 *
 * Everything is best-effort and cooperative: cancel() never
 * interrupts a tick mid-flight, it just makes the next poll throw.
 * With no token supplied (the default everywhere), the polling code
 * is a never-taken null check -- zero overhead when disabled.
 */

#ifndef STSIM_CORE_CANCEL_HH
#define STSIM_CORE_CANCEL_HH

#include <atomic>
#include <stdexcept>

namespace stsim
{

/** One-shot, thread-safe cancellation flag. Never resets. */
class CancelToken
{
  public:
    void
    cancel()
    {
        // Release/acquire pairing: a canceller records *why* (e.g. the
        // server's cancelReason CAS) before firing the token, and the
        // observer reads that reason after seeing cancelled()==true.
        // The cost is noise at the multi-thousand-cycle poll cadence.
        cancelled_.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

/** Thrown out of a simulation when its CancelToken fires. */
class JobCancelled : public std::runtime_error
{
  public:
    JobCancelled() : std::runtime_error("job cancelled") {}
};

} // namespace stsim

#endif // STSIM_CORE_CANCEL_HH
