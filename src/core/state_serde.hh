/**
 * @file
 * The uniform simulator checkpoint API: StateWriter/StateReader, a
 * versioned, tagged, line-based text format every stateful component
 * serializes itself through (Core, caches, predictors, confidence
 * estimators, throttle controller, power model, workload RNG).
 *
 * Design points, in the order they matter:
 *
 *  - **Bit-exact.** Doubles use the same C99 hex-float convention as
 *    job_serde ("%a" / strtod), so a restored simulator replays the
 *    measured phase to byte-identical SimResults. That property is the
 *    snapshot gate (`scripts/snapshot_equivalence.sh`).
 *  - **Strict and self-describing.** A snapshot is a `stsim-state 1`
 *    header, nested `[section]` ... `[/section]` groups, in-order
 *    `key value...` lines, and a final `end` marker. The reader
 *    demands exactly the structure the writer produced: a wrong key,
 *    a missing section, or a truncated file is an immediate
 *    stsim_fatal naming the line -- never a silently wrong simulator.
 *  - **Versioned.** The header carries a format version; readers
 *    reject snapshots from a different version rather than guess.
 *
 * Components implement `saveState(StateWriter &) const` and
 * `loadState(StateReader &)`; composition mirrors ownership (the
 * Simulator writes one section per subsystem).
 */

#ifndef STSIM_CORE_STATE_SERDE_HH
#define STSIM_CORE_STATE_SERDE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stsim
{
namespace serde
{

/** Current snapshot format version (the `stsim-state N` header). */
constexpr unsigned kStateFormatVersion = 1;

/**
 * Serializes simulator state into the snapshot text format. Purely
 * appending; take() hands over the finished image (header + sections +
 * end marker).
 */
class StateWriter
{
  public:
    StateWriter();

    /** Open / close a tagged section. Sections nest. */
    void begin(const char *section);
    void end(const char *section);

    void u64(const char *key, std::uint64_t v);
    void i64(const char *key, std::int64_t v);
    void boolean(const char *key, bool v);
    /** Hex-float ("%a"), bit-exact round trip. */
    void dbl(const char *key, double v);
    /** Rest-of-line string; must not contain newlines. */
    void str(const char *key, std::string_view v);

    /** `key N v1 .. vN` on one line. */
    void u64Array(const char *key, const std::uint64_t *v, std::size_t n);
    void dblArray(const char *key, const double *v, std::size_t n);

    template <typename Vec>
    void
    u64Vec(const char *key, const Vec &v)
    {
        out_ += key;
        out_ += ' ';
        out_ += std::to_string(v.size());
        for (const auto &x : v) {
            out_ += ' ';
            out_ += std::to_string(static_cast<std::uint64_t>(x));
        }
        out_ += '\n';
    }

    /** Finish the image: appends the end marker and returns the text. */
    std::string take();

  private:
    std::string out_;
    std::vector<std::string> stack_; ///< open sections, for validation
};

/**
 * Strict sequential reader over a snapshot image. Every accessor
 * names the key it expects; any mismatch, type error, or premature end
 * of input fatals with the offending line. Call finish() after the
 * last section to verify the end marker (truncation detection).
 */
class StateReader
{
  public:
    /** Validates the `stsim-state N` header; fatals on mismatch. */
    explicit StateReader(std::string_view image);

    void begin(const char *section);
    void end(const char *section);

    std::uint64_t u64(const char *key);
    std::int64_t i64(const char *key);
    bool boolean(const char *key);
    double dbl(const char *key);
    std::string str(const char *key);

    /** Reads `key N v1 .. vN`; returns the N values. */
    std::vector<std::uint64_t> u64Vec(const char *key);
    std::vector<double> dblVec(const char *key);

    /** Expect the end marker and end of input. */
    void finish();

    /** Peek whether the next line is `[section]` for @p section. */
    bool nextIs(const char *section) const;

  private:
    /** Next line, or fatal on truncation. */
    std::string_view line(const char *wantKey);
    /** Split `key rest`; fatal unless key matches. */
    std::string_view value(const char *key);
    [[noreturn]] void fail(const char *what, std::string_view got);

    std::string_view image_;
    std::size_t pos_ = 0;
    std::size_t lineNo_ = 1; ///< 1-based line of the *next* line
};

} // namespace serde
} // namespace stsim

#endif // STSIM_CORE_STATE_SERDE_HH
