#include "logging.hh"

#include <chrono>
#include <cstdarg>
#include <cstring>
#include <vector>

namespace stsim
{

namespace
{
/**
 * Depth of active FatalCaptureScopes on this thread. Nonzero turns
 * stsim_fatal into a throw; zero keeps the historical exit(1).
 */
thread_local int fatalCaptureDepth = 0;

/** Timestamp base for leveled log lines (process start, roughly). */
const std::chrono::steady_clock::time_point logStart =
    std::chrono::steady_clock::now();

double
monotonicSeconds()
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         logStart)
        .count();
}

LogLevel
parseLogLevel()
{
    const char *env = std::getenv("STSIM_LOG");
    if (!env)
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::Error;
    std::fprintf(stderr, "warn: unknown STSIM_LOG level '%s' "
                 "(want debug|info|warn|error); using info\n", env);
    return LogLevel::Info;
}
} // namespace

LogLevel
logLevel()
{
    static const LogLevel level = parseLogLevel();
    return level;
}

FatalCaptureScope::FatalCaptureScope()
{
    ++fatalCaptureDepth;
}

FatalCaptureScope::~FatalCaptureScope()
{
    --fatalCaptureDepth;
}

namespace detail
{

std::string
formatStr(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0) {
        va_end(args);
        return fmt;
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatalCaptureDepth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!logEnabled(LogLevel::Warn))
        return;
    std::fprintf(stderr, "[%10.3f] warn: %s\n", monotonicSeconds(),
                 msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!logEnabled(LogLevel::Info))
        return;
    std::fprintf(stderr, "[%10.3f] info: %s\n", monotonicSeconds(),
                 msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "[%10.3f] debug: %s\n", monotonicSeconds(),
                 msg.c_str());
}

} // namespace detail
} // namespace stsim
