/**
 * @file
 * ASCII table formatter used by the bench harnesses to print paper-style
 * tables (rows = benchmarks/experiments, columns = metrics).
 */

#ifndef STSIM_COMMON_TABLE_HH
#define STSIM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace stsim
{

/** Column-aligned text table with a header row and optional title. */
class TextTable
{
  public:
    /** @param header Column titles, defining the column count. */
    explicit TextTable(std::vector<std::string> header);

    /** Optional title printed above the table. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Append a row; must match the header's column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);

    /** Format a percentage ("12.3%") with @p digits decimals. */
    static std::string pct(double v, int digits = 1);

    /** Render the table. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row = separator
};

} // namespace stsim

#endif // STSIM_COMMON_TABLE_HH
