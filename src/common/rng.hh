/**
 * @file
 * Deterministic xorshift128+ random number generator. Every simulation
 * derives all stochastic behaviour from one seeded instance so results
 * are exactly reproducible across runs and platforms.
 */

#ifndef STSIM_COMMON_RNG_HH
#define STSIM_COMMON_RNG_HH

#include <cstdint>

namespace stsim
{

/** Fast, deterministic xorshift128+ PRNG (not cryptographic). */
class Rng
{
  public:
    /** Seed with a nonzero 64-bit value; 0 is remapped internally. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to decorrelate nearby seeds.
        std::uint64_t z = seed ? seed : 0x9e3779b97f4a7c15ull;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9e3779b97f4a7c15ull;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            *s = x ^ (x >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift range reduction; bias is negligible for the
        // table sizes used here.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /**
     * Geometric-flavoured small integer: number of failures before a
     * success with probability p, capped at @p cap.
     */
    unsigned
    geometric(double p, unsigned cap)
    {
        unsigned n = 0;
        while (n < cap && !chance(p))
            ++n;
        return n;
    }

    /**
     * Raw engine state, for checkpointing. Restoring via setState
     * resumes the stream exactly where state() observed it.
     */
    std::uint64_t stateS0() const { return s0_; }
    std::uint64_t stateS1() const { return s1_; }

    void
    setState(std::uint64_t s0, std::uint64_t s1)
    {
        s0_ = s0;
        s1_ = s1;
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace stsim

#endif // STSIM_COMMON_RNG_HH
