/**
 * @file
 * gem5-style status/error reporting: panic for simulator bugs, fatal for
 * user errors, warn/inform for non-fatal conditions.
 */

#ifndef STSIM_COMMON_LOGGING_HH
#define STSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace stsim
{

/**
 * Recoverable form of stsim_fatal: thrown instead of exiting while a
 * FatalCaptureScope is active on the calling thread. Long-lived
 * processes (the stsim_serve daemon) use this to turn "user fault"
 * conditions buried in shared code -- malformed serde input, invalid
 * configurations, unknown benchmark/policy names -- into structured
 * error replies instead of process exits. stsim_panic (simulator
 * bugs) is never captured and still aborts.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * RAII guard that redirects stsim_fatal on this thread into a thrown
 * FatalError for its lifetime. Nestable; purely thread-local, so one
 * request thread capturing fatals never changes the behavior of any
 * other thread. The default (no active scope) is the historical
 * print-and-exit(1), which every CLI and test relies on.
 */
class FatalCaptureScope
{
  public:
    FatalCaptureScope();
    ~FatalCaptureScope();

    FatalCaptureScope(const FatalCaptureScope &) = delete;
    FatalCaptureScope &operator=(const FatalCaptureScope &) = delete;
};

/**
 * Severity of the non-fatal stderr channels. The active threshold is
 * parsed once from the STSIM_LOG environment variable
 * (debug|info|warn|error, default info): stsim_debug prints only at
 * debug, stsim_inform at info and below, stsim_warn at warn and
 * below; error silences everything non-fatal. Leveled lines carry a
 * monotonic [seconds.millis] timestamp measured from process start so
 * daemon logs interleave meaningfully across threads. Fatal and panic
 * diagnostics are not leveled and keep their historical byte-exact
 * shapes.
 */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** The active threshold (STSIM_LOG, default Info). */
LogLevel logLevel();

/** Whether a message at `lvl` would be printed. */
inline bool
logEnabled(LogLevel lvl)
{
    return static_cast<int>(lvl) >= static_cast<int>(logLevel());
}

namespace detail
{
/** Print a tagged message to stderr; never returns for fatal severities. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Minimal printf-style formatter into a std::string. */
std::string formatStr(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
} // namespace detail

/**
 * Abort on an internal invariant violation (a simulator bug): something
 * that should never happen regardless of user input.
 */
#define stsim_panic(...) \
    ::stsim::detail::panicImpl(__FILE__, __LINE__, \
                               ::stsim::detail::formatStr(__VA_ARGS__))

/**
 * Exit on a condition that is the user's fault (bad configuration,
 * invalid arguments) rather than a simulator bug.
 */
#define stsim_fatal(...) \
    ::stsim::detail::fatalImpl(__FILE__, __LINE__, \
                               ::stsim::detail::formatStr(__VA_ARGS__))

/** Alert the user to a suspicious but survivable condition. */
#define stsim_warn(...) \
    ::stsim::detail::warnImpl(::stsim::detail::formatStr(__VA_ARGS__))

/** Informative status message. */
#define stsim_inform(...) \
    ::stsim::detail::informImpl(::stsim::detail::formatStr(__VA_ARGS__))

/**
 * Diagnostic chatter, silenced unless STSIM_LOG=debug. The format
 * arguments are still evaluated; keep them cheap at call sites on
 * warm paths (none live on the per-instruction hot path).
 */
#define stsim_debug(...) \
    do { \
        if (::stsim::logEnabled(::stsim::LogLevel::Debug)) { \
            ::stsim::detail::debugImpl( \
                ::stsim::detail::formatStr(__VA_ARGS__)); \
        } \
    } while (0)

/** Panic unless a simulator invariant holds. */
#define stsim_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::stsim::detail::panicImpl(__FILE__, __LINE__, \
                std::string("assertion failed: " #cond " ") + \
                ::stsim::detail::formatStr(__VA_ARGS__)); \
        } \
    } while (0)

/**
 * Per-instruction invariant check: active in debug builds, compiled
 * out under NDEBUG. stsim_assert stays on in release builds, which is
 * right for once-per-run or once-per-event checks, but a check inside
 * the fetch/dispatch/issue/writeback/commit per-instruction loops is
 * measurable at whole-simulation throughput; those use this tier.
 */
#ifdef NDEBUG
#define stsim_dbg_assert(cond, ...) \
    do { \
    } while (0)
#else
#define stsim_dbg_assert(cond, ...) stsim_assert(cond, __VA_ARGS__)
#endif

} // namespace stsim

#endif // STSIM_COMMON_LOGGING_HH
