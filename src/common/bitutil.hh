/**
 * @file
 * Small bit-manipulation helpers used by table-indexed structures.
 */

#ifndef STSIM_COMMON_BITUTIL_HH
#define STSIM_COMMON_BITUTIL_HH

#include <cstdint>

namespace stsim
{

/** True when v is a nonzero power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceil of log2(v); v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Mask with the low n bits set (n <= 64). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ull : (1ull << n) - 1;
}

/** Mix a 64-bit value (splitmix64 finalizer) for hashing addresses. */
constexpr std::uint64_t
hashMix(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace stsim

#endif // STSIM_COMMON_BITUTIL_HH
