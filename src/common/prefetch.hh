/**
 * @file
 * Software-prefetch hint for the pipeline's walk-ahead paths (next
 * ready window slot, next pipe-queue slot, next writeback event).
 *
 * STSIM_PREFETCH(p) expands to __builtin_prefetch(p) by default and to
 * nothing when the build defines STSIM_DISABLE_PREFETCH (CMake option
 * STSIM_ENABLE_PREFETCH=OFF), so the toggle costs literally zero when
 * disabled -- no branch, no call, no argument evaluation side effects
 * are permitted at call sites (all current sites pass a plain address
 * expression).
 */

#ifndef STSIM_COMMON_PREFETCH_HH
#define STSIM_COMMON_PREFETCH_HH

#if defined(STSIM_DISABLE_PREFETCH) || !defined(__GNUC__)
#define STSIM_PREFETCH(p) ((void)0)
#else
#define STSIM_PREFETCH(p) __builtin_prefetch((p))
#endif

#endif // STSIM_COMMON_PREFETCH_HH
