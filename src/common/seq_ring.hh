/**
 * @file
 * Grow-on-collision masked sequence ring: a power-of-two direct-mapped
 * table from a monotone sequence number to a small value (a slot or
 * position), validated by the caller against the referent's own seq.
 *
 * The pattern appears wherever a hot path needs exact O(1)
 * seq -> entry lookup without a hash map: the cell at `seq & mask` is
 * only trusted when the entry it points at still carries `seq`, and an
 * insert that would overwrite the cell of a *live* aliasing seq first
 * doubles the ring until every live seq owns its own cell. Lookups are
 * therefore exact (never falsely positive, never falsely negative for
 * a live seq), not probabilistic, with no sizing proof required.
 *
 * Shared by Core's seq -> slot map and the SpeculationController's
 * seq -> tracked-position map; both call sites keep their existing
 * validation of a looked-up value against the backing structure.
 */

#ifndef STSIM_COMMON_SEQ_RING_HH
#define STSIM_COMMON_SEQ_RING_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace stsim
{

/**
 * @tparam ValueT Small trivially-copyable handle stored per cell
 *         (e.g. a slot index or a window position).
 *
 * The owner supplies two callables:
 *  - liveSeqOf(ValueT) -> InstSeq: the seq currently live at that
 *    handle, or kInvalidSeq when the handle is vacant/dead/stale.
 *  - forEachLive(fn): invokes fn(InstSeq, ValueT) for every live
 *    entry in the backing structure (used to refill after growth).
 */
template <typename ValueT>
class SeqRing
{
  public:
    /**
     * (Re)initialize with the smallest power-of-two cell count
     * >= @p min_cells. Vacant cells hold @p vacant; the caller's
     * validation must treat a lookup of @p vacant as a miss (either
     * because it is an always-dead sentinel, or because the referent's
     * seq comparison rejects it).
     */
    void
    init(std::size_t min_cells, ValueT vacant)
    {
        vacant_ = vacant;
        std::size_t cells = 1;
        while (cells < min_cells)
            cells <<= 1;
        cells_.assign(cells, vacant_);
        mask_ = cells - 1;
    }

    /** The cell for @p seq; trust only after caller-side validation. */
    ValueT operator[](InstSeq seq) const { return cells_[seq & mask_]; }

    /** Current index mask (cell count - 1). */
    InstSeq mask() const { return mask_; }

    std::size_t cellCount() const { return cells_.size(); }

    /**
     * Publish @p seq -> @p value. When the cell already serves a
     * *live* different seq that aliases under the current mask, the
     * ring doubles (rebuilt from @p forEachLive) until every live seq
     * has its own cell, so no live mapping is ever evicted.
     */
    template <typename LiveSeqOf, typename ForEachLive>
    void
    insert(InstSeq seq, ValueT value, LiveSeqOf &&liveSeqOf,
           ForEachLive &&forEachLive)
    {
        const ValueT prev = cells_[seq & mask_];
        const InstSeq prev_seq = liveSeqOf(prev);
        if (prev_seq != kInvalidSeq && prev_seq != seq &&
            (prev_seq & mask_) == (seq & mask_)) {
            grow(forEachLive); // would evict a live entry: rebuild
        }
        cells_[seq & mask_] = value;
    }

    /**
     * Double the ring until every live seq maps to a distinct cell,
     * then refill from @p forEachLive. Stale cells are reset to the
     * vacant value.
     */
    template <typename ForEachLive>
    void
    grow(ForEachLive &&forEachLive)
    {
        std::size_t n = cells_.size();
        for (;;) {
            n <<= 1;
            std::vector<ValueT> fresh(n, vacant_);
            std::vector<bool> used(n, false);
            const InstSeq mask = n - 1;
            bool ok = true;
            forEachLive([&](InstSeq seq, ValueT value) {
                std::size_t cell = seq & mask;
                if (used[cell])
                    ok = false; // two live seqs still collide
                used[cell] = true;
                fresh[cell] = value;
            });
            if (!ok)
                continue;
            cells_ = std::move(fresh);
            mask_ = mask;
#ifndef NDEBUG
            // Every live seq must now own its cell exclusively.
            forEachLive([&](InstSeq seq, ValueT value) {
                stsim_assert(cells_[seq & mask_] == value,
                             "seq ring lost a live mapping in grow");
            });
#endif
            return;
        }
    }

  private:
    std::vector<ValueT> cells_;
    InstSeq mask_ = 0;
    ValueT vacant_{};
};

} // namespace stsim

#endif // STSIM_COMMON_SEQ_RING_HH
