/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 */

#ifndef STSIM_COMMON_TYPES_HH
#define STSIM_COMMON_TYPES_HH

#include <cstdint>

namespace stsim
{

/** Byte address in the simulated machine's address space. */
using Addr = std::uint64_t;

/** Absolute cycle count since simulation start. */
using Cycle = std::uint64_t;

/** Monotonic dynamic-instruction sequence number (fetch order). */
using InstSeq = std::uint64_t;

/** Generic event/instruction counter. */
using Counter = std::uint64_t;

/** An invalid/sentinel address. */
inline constexpr Addr kInvalidAddr = ~static_cast<Addr>(0);

/** An invalid/sentinel sequence number. */
inline constexpr InstSeq kInvalidSeq = ~static_cast<InstSeq>(0);

} // namespace stsim

#endif // STSIM_COMMON_TYPES_HH
