/**
 * @file
 * Lightweight statistics primitives: running aggregates, histograms and
 * an ordered set of named scalar statistics for end-of-run reporting.
 */

#ifndef STSIM_COMMON_STATS_HH
#define STSIM_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace stsim
{

/** Streaming mean/min/max/count aggregate. */
class RunningStat
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Mean of samples, 0 when empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Minimum sample, +inf when empty. */
    double min() const { return min_; }

    /** Maximum sample, -inf when empty. */
    double max() const { return max_; }

    /** Forget all samples. */
    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram over [0, buckets); larger samples clamp. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 16) : counts_(buckets, 0) {}

    /** Record one sample (clamped into the last bucket). */
    void
    sample(std::size_t v)
    {
        ++total_;
        if (v >= counts_.size())
            v = counts_.size() - 1;
        ++counts_[v];
    }

    /** Count in bucket i. */
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }

    /** Number of buckets. */
    std::size_t size() const { return counts_.size(); }

    /** Total samples recorded. */
    std::uint64_t total() const { return total_; }

    /** Fraction of samples in bucket i (0 when empty). */
    double
    fraction(std::size_t i) const
    {
        return total_ ? static_cast<double>(counts_.at(i)) / total_ : 0.0;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Ordered collection of named scalar statistics. Subsystems dump their
 * counters here at end of run; benches/tests read them back by name.
 */
class StatSet
{
  public:
    /** Set (or overwrite) a named scalar. */
    void
    set(const std::string &name, double value)
    {
        auto it = index_.find(name);
        if (it == index_.end()) {
            index_[name] = entries_.size();
            entries_.push_back({name, value});
        } else {
            entries_[it->second].value = value;
        }
    }

    /** True when a statistic with this name exists. */
    bool has(const std::string &name) const { return index_.count(name); }

    /** Fetch by name; fatals via .at() when absent. */
    double
    get(const std::string &name) const
    {
        return entries_.at(index_.at(name)).value;
    }

    /** Fetch by name with a default for absent entries. */
    double
    getOr(const std::string &name, double dflt) const
    {
        auto it = index_.find(name);
        return it == index_.end() ? dflt : entries_[it->second].value;
    }

    /** Print all stats, one "name value" line each, insertion order. */
    void
    print(std::ostream &os) const
    {
        for (const auto &e : entries_)
            os << e.name << " " << e.value << "\n";
    }

    /** Number of named statistics. */
    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        std::string name;
        double value;
    };

    std::vector<Entry> entries_;
    std::map<std::string, std::size_t> index_;
};

} // namespace stsim

#endif // STSIM_COMMON_STATS_HH
