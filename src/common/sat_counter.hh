/**
 * @file
 * Saturating up/down counter, the workhorse of branch predictors and
 * confidence estimators.
 */

#ifndef STSIM_COMMON_SAT_COUNTER_HH
#define STSIM_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "logging.hh"

namespace stsim
{

/**
 * An n-bit saturating counter. Increment saturates at 2^bits - 1,
 * decrement saturates at 0.
 */
class SatCounter
{
  public:
    /**
     * @param bits Counter width in bits (1..8; real predictors use 2-4
     *             bit counters, and the byte-sized representation
     *             halves the footprint of the large PHT/CIT arrays).
     * @param initial Initial counter value (clamped to range).
     */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal_(static_cast<std::uint8_t>((1u << bits) - 1)),
          value_(static_cast<std::uint8_t>(
              initial > maxVal_ ? maxVal_ : initial))
    {
        stsim_assert(bits >= 1 && bits <= 8, "bits=%u", bits);
    }

    /** Saturating increment. */
    void increment() { if (value_ < maxVal_) ++value_; }

    /** Saturating decrement. */
    void decrement() { if (value_ > 0) --value_; }

    /** Set to an explicit value (clamped). */
    void
    set(unsigned v)
    {
        value_ = static_cast<std::uint8_t>(v > maxVal_ ? maxVal_ : v);
    }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    /** Current counter value. */
    unsigned value() const { return value_; }

    /** Maximum representable value. */
    unsigned maxValue() const { return maxVal_; }

    /** True when the counter is in its upper half (MSB set). */
    bool isTaken() const { return value_ > maxVal_ / 2; }

    /**
     * True when the counter is in a "weak" state: the two values
     * adjacent to the taken/not-taken boundary (for a 2-bit counter,
     * values 1 and 2).
     */
    bool
    isWeak() const
    {
        unsigned mid = maxVal_ / 2; // e.g. 1 for 2-bit
        return value_ == mid || value_ == mid + 1;
    }

    /** True when saturated high. */
    bool isMax() const { return value_ == maxVal_; }

    /** True when saturated low. */
    bool isMin() const { return value_ == 0; }

  private:
    std::uint8_t maxVal_;
    std::uint8_t value_;
};

} // namespace stsim

#endif // STSIM_COMMON_SAT_COUNTER_HH
