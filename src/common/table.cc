#include "table.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"

namespace stsim
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    stsim_assert(!header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    stsim_assert(cells.size() == header_.size(),
                 "row has %zu cells, header has %zu",
                 cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back(); // empty row marks a separator
}

std::string
TextTable::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
TextTable::pct(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, v);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_sep = [&] {
        os << '+';
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << '+';
        os << '\n';
    };
    auto print_row = [&](const std::vector<std::string> &row) {
        os << '|';
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << ' ' << cell << std::string(width[c] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    print_sep();
    print_row(header_);
    print_sep();
    for (const auto &row : rows_) {
        if (row.empty())
            print_sep();
        else
            print_row(row);
    }
    print_sep();
}

} // namespace stsim
