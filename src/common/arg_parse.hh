/**
 * @file
 * One typed flag-parsing API for every CLI binary (stsim_runner,
 * stsim_serve, stsim_loadgen). Each binary used to hand-roll the same
 * loop -- strcmp chains, a "needs a value" cursor, strtoull with an
 * end-pointer check -- three times, with three slightly different
 * diagnostic styles. FlagSet centralizes the mechanics (flag matching,
 * value consumption, typed decoding, required/default handling, usage
 * generation) while the diagnostics stay per-binary through the Diag
 * hooks, so adopting it changes NO observable byte: help output and
 * exit-2 diagnostics are asserted verbatim in tests/test_runner_cli.cc.
 *
 * Defaults are the initializers of the bound targets (an Options
 * struct); required flags are enforced after parse() via seen()
 * (each binary keeps its exact historical "X is required" message).
 */

#ifndef STSIM_COMMON_ARG_PARSE_HH
#define STSIM_COMMON_ARG_PARSE_HH

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace stsim
{
namespace args
{

/**
 * Per-binary diagnostic style. Every hook that reports an error must
 * not return (exit, or stsim_fatal). parseU64 returns the decoded
 * value or does not return; binaries differ in strictness (the runner
 * historically accepts what strtoull accepts, serve/loadgen also
 * reject empty and leading '-'), so the decoder itself is a hook.
 */
struct Diag
{
    /** A value-taking flag was last on the command line. */
    std::function<void(const char *flag)> missingValue;

    /** An argument matched no registered flag (nor a positional). */
    std::function<void(const char *arg)> unknown;

    /** Decode an unsigned value for @p flag or do not return. */
    std::function<std::uint64_t(const char *flag, const char *value)>
        parseU64;

    /** A u64Positive flag decoded to zero (optional). */
    std::function<void(const char *flag)> notPositive;
};

/** Typed flag registry + parser + usage-text generator. */
class FlagSet
{
  public:
    explicit FlagSet(Diag diag) : diag_(std::move(diag)) {}

    /**
     * Lowest-level registration: @p apply receives the raw value.
     * @p metavar empty means the flag takes no value (apply gets "").
     * @p help is the flag's optionsText() entry, '\n'-separated
     * continuation lines; empty help keeps the flag out of the text
     * (the runner's synopsis-style usage documents flags itself).
     */
    FlagSet &
    flag(const char *name, const char *metavar,
         std::function<void(const char *value)> apply,
         const char *help = "")
    {
        flags_.push_back(Entry{name, metavar, help, std::move(apply),
                               metavar[0] != '\0', false});
        return *this;
    }

    /** Value-less flag. */
    FlagSet &
    boolean(const char *name, std::function<void()> apply,
            const char *help = "")
    {
        auto fn = std::move(apply);
        return flag(name, "",
                    [fn = std::move(fn)](const char *) { fn(); }, help);
    }

    /** Value-less flag that just sets @p *out. */
    FlagSet &
    boolean(const char *name, bool *out, const char *help = "")
    {
        return boolean(name, [out] { *out = true; }, help);
    }

    /** String flag. */
    FlagSet &
    str(const char *name, const char *metavar, std::string *out,
        const char *help = "")
    {
        return flag(name, metavar,
                    [out](const char *v) { *out = v; }, help);
    }

    /**
     * Unsigned flag decoded through Diag::parseU64 and cast to the
     * target's type (the historical static_cast<unsigned>(...) sites).
     */
    template <typename T>
    FlagSet &
    u64(const char *name, const char *metavar, T *out,
        const char *help = "")
    {
        return flag(name, metavar,
                    [this, out, name](const char *v) {
                        *out = static_cast<T>(diag_.parseU64(name, v));
                    },
                    help);
    }

    /** Like u64 but zero routes to Diag::notPositive. */
    template <typename T>
    FlagSet &
    u64Positive(const char *name, const char *metavar, T *out,
                const char *help = "")
    {
        return flag(name, metavar,
                    [this, out, name](const char *v) {
                        std::uint64_t u = diag_.parseU64(name, v);
                        if (u == 0)
                            diag_.notPositive(name);
                        *out = static_cast<T>(u);
                    },
                    help);
    }

    /**
     * Double flag with atof semantics (no validation) -- matches the
     * historical loadgen --duration-sec behavior exactly.
     */
    FlagSet &
    dblAtof(const char *name, const char *metavar, double *out,
            const char *help = "")
    {
        return flag(name, metavar,
                    [out](const char *v) { *out = std::atof(v); },
                    help);
    }

    /** Whether @p name was given (for caller-side required checks). */
    bool
    seen(const char *name) const
    {
        for (const Entry &e : flags_) {
            if (e.name == name)
                return e.seen;
        }
        return false;
    }

    /**
     * Parse argv[from..argc). An argument matching no flag goes to
     * @p positional when that is set and the argument does not start
     * with '-'; everything else unmatched routes to Diag::unknown.
     */
    void
    parse(int argc, char **argv, int from,
          const std::function<void(const char *arg)> &positional = {})
    {
        for (int i = from; i < argc; ++i) {
            const char *a = argv[i];
            Entry *e = match(a);
            if (!e) {
                if (positional && a[0] != '-') {
                    positional(a);
                    continue;
                }
                diag_.unknown(a);
                return; // unknown() must not return; appease flow
            }
            e->seen = true;
            const char *value = "";
            if (e->takesValue) {
                if (i + 1 >= argc) {
                    diag_.missingValue(e->name.c_str());
                    return;
                }
                value = argv[++i];
            }
            e->apply(value);
        }
    }

    /**
     * The aligned options block of a --help text: two-space indent,
     * "NAME METAVAR" padded so help starts at column 26, continuation
     * lines indented to the same column. Flags registered with empty
     * help are omitted. Byte-compatible with the hand-written blocks
     * it replaced (asserted golden in tests/test_runner_cli.cc).
     */
    std::string
    optionsText() const
    {
        constexpr std::size_t kHelpCol = 26;
        std::string out;
        for (const Entry &e : flags_) {
            if (e.help.empty())
                continue;
            std::string head = "  " + e.name;
            if (!e.metavar.empty())
                head += " " + e.metavar;
            if (head.size() < kHelpCol)
                head.append(kHelpCol - head.size(), ' ');
            else
                head.push_back(' ');
            std::size_t start = 0;
            bool first = true;
            while (start <= e.help.size()) {
                std::size_t nl = e.help.find('\n', start);
                std::string_view lineView(e.help);
                std::string line(lineView.substr(
                    start, nl == std::string::npos ? std::string::npos
                                                   : nl - start));
                if (first)
                    out += head + line + "\n";
                else
                    out += std::string(kHelpCol, ' ') + line + "\n";
                first = false;
                if (nl == std::string::npos)
                    break;
                start = nl + 1;
            }
        }
        return out;
    }

  private:
    struct Entry
    {
        std::string name;
        std::string metavar;
        std::string help;
        std::function<void(const char *value)> apply;
        bool takesValue;
        bool seen;
    };

    Entry *
    match(const char *arg)
    {
        for (Entry &e : flags_) {
            if (e.name == arg)
                return &e;
        }
        return nullptr;
    }

    Diag diag_;
    std::vector<Entry> flags_;
};

} // namespace args
} // namespace stsim

#endif // STSIM_COMMON_ARG_PARSE_HH
