/**
 * @file
 * Two-level bitmask over monotone ring positions: a find-first
 * structure for the window scans that used to walk vectors (unknown
 * stores, address-ready stores, blocked loads).
 *
 * Positions are monotone 64-bit values masked into a power-of-two bit
 * ring (the same aliasing argument as the scheduler's ready bitmap: as
 * long as the live window [base, base + occupancy) never spans more
 * than the capacity, every live position owns a distinct bit). A
 * summary word carries one bit per 64-bit leaf word, so find-first
 * skips empty words without loading them and emptiness is a single
 * register test.
 */

#ifndef STSIM_COMMON_SCAN_MASK_HH
#define STSIM_COMMON_SCAN_MASK_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace stsim
{

class ScanMask
{
  public:
    /** Returned by firstSet when no bit is set in the range. */
    static constexpr std::uint64_t kNone = ~std::uint64_t{0};

    /**
     * (Re)initialize with the smallest power-of-two bit capacity
     * >= max(@p capacity, 64). One summary word covers up to 64 leaf
     * words, bounding the capacity at 4096 positions -- far above any
     * configured window.
     */
    void
    init(std::uint64_t capacity)
    {
        std::uint64_t bits = 64;
        while (bits < capacity)
            bits <<= 1;
        stsim_assert(bits <= 64 * 64,
                     "scan mask capacity %llu exceeds one summary word",
                     static_cast<unsigned long long>(bits));
        words_.assign(bits / 64, 0);
        mask_ = bits - 1;
        summary_ = 0;
    }

    /** Clear every bit (capacity unchanged). */
    void
    reset()
    {
        std::fill(words_.begin(), words_.end(), 0);
        summary_ = 0;
    }

    bool none() const { return summary_ == 0; }

    void
    set(std::uint64_t pos)
    {
        const std::uint64_t idx = pos & mask_;
        words_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        summary_ |= std::uint64_t{1} << (idx >> 6);
    }

    void
    clear(std::uint64_t pos)
    {
        const std::uint64_t idx = pos & mask_;
        const std::uint64_t w = idx >> 6;
        words_[w] &= ~(std::uint64_t{1} << (idx & 63));
        if (words_[w] == 0)
            summary_ &= ~(std::uint64_t{1} << w);
    }

    bool
    test(std::uint64_t pos) const
    {
        const std::uint64_t idx = pos & mask_;
        return (words_[idx >> 6] >> (idx & 63)) & 1;
    }

    /** First set position in [@p pos, @p end), or kNone. The span
     *  end - pos must not exceed the capacity. */
    std::uint64_t
    firstSet(std::uint64_t pos, std::uint64_t end) const
    {
        if (summary_ == 0)
            return kNone;
        while (pos < end) {
            const std::uint64_t idx = pos & mask_;
            const std::uint64_t off = idx & 63;
            if (summary_ & (std::uint64_t{1} << (idx >> 6))) {
                const std::uint64_t word = words_[idx >> 6] >> off;
                if (word) {
                    const std::uint64_t found =
                        pos + static_cast<std::uint64_t>(
                                  std::countr_zero(word));
                    return found < end ? found : kNone;
                }
            }
            pos += 64 - off; // next word boundary
        }
        return kNone;
    }

    /** Invoke @p fn(pos) for every set position in [@p pos, @p end),
     *  ascending. @p fn may clear the bit it was called for. */
    template <typename Fn>
    void
    forEachSet(std::uint64_t pos, std::uint64_t end, Fn &&fn) const
    {
        while ((pos = firstSet(pos, end)) != kNone)
            fn(pos++);
    }

    /** Bit capacity (power of two, >= 64). */
    std::uint64_t capacity() const { return mask_ + 1; }

  private:
    std::vector<std::uint64_t> words_;
    std::uint64_t summary_ = 0;
    std::uint64_t mask_ = 63;
};

} // namespace stsim

#endif // STSIM_COMMON_SCAN_MASK_HH
