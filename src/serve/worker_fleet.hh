/**
 * @file
 * Supervised out-of-process worker fleet for stsim_serve --isolate.
 *
 * The daemon-side half of the crash-containment story: N
 * `stsim_runner serve-worker` subprocesses, each fed one JSONL job at
 * a time over its stdin and read back over its stdout. A worker that
 * exits, is signalled, or wedges takes down only itself: the
 * supervisor detects the death, retries the job on another worker (up
 * to a bounded attempt count), and respawns the dead slot with capped
 * exponential backoff plus deterministic jitter so a crash loop can
 * never spin the host.
 *
 * Poison-job quarantine: a job whose executions kill K consecutive
 * workers is answered with a structured `poison` error instead of
 * being retried forever, and its fingerprint (FNV-1a over the
 * serialized job) is remembered for the fleet's lifetime -- later
 * submissions of the same job are rejected without touching a worker.
 *
 * Single supervisor thread owns all process state (spawn, dispatch,
 * poll, reap); submissions and health snapshots cross into it under
 * one mutex. Completion callbacks run on the supervisor thread and
 * must not block. The launcher is an interface (dist::WorkerLauncher)
 * for the same reason the shard scheduler's is: a remote worker
 * launcher is a drop-in, not a rewrite.
 */

#ifndef STSIM_SERVE_WORKER_FLEET_HH
#define STSIM_SERVE_WORKER_FLEET_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hh"
#include "core/parallel_harness.hh"
#include "dist/host_launcher.hh"

namespace stsim
{
namespace serve
{

struct FleetOptions
{
    unsigned workers = 1;         ///< fleet size
    unsigned jobAttempts = 3;     ///< worker deaths before `internal`
    unsigned poisonThreshold = 2; ///< consecutive kills => quarantine
    std::uint64_t respawnBaseMs = 50;   ///< backoff base
    std::uint64_t respawnCapMs = 5'000; ///< backoff cap
    std::uint64_t helloTimeoutMs = 10'000; ///< spawn-wedge watchdog
};

/** How one submitted job ended. */
enum class FleetOutcome
{
    kReply,     ///< worker replied: line holds the verbatim record
    kCancelled, ///< token fired first; worker was killed
    kInternal,  ///< job died jobAttempts workers without quarantining
    kPoison,    ///< job quarantined (now or on a prior submission)
};

struct FleetResult
{
    FleetOutcome outcome = FleetOutcome::kInternal;
    std::string line;   ///< kReply: the worker's reply, no newline
    std::string detail; ///< error context for the other outcomes
};

/** Per-worker state for {"op":"health"}. */
struct FleetWorkerInfo
{
    unsigned slot = 0;
    int pid = -1;
    const char *state = "down";
    std::uint64_t jobs = 0;     ///< replies served by this slot
    std::uint64_t restarts = 0; ///< respawns of this slot
    unsigned backoffStage = 0;  ///< consecutive-crash streak
};

struct FleetSnapshot
{
    std::uint64_t restartsTotal = 0;
    std::uint64_t quarantined = 0;    ///< fingerprints in quarantine
    std::uint64_t poisonRejected = 0; ///< jobs answered `poison`
    std::vector<FleetWorkerInfo> workers;
};

class WorkerFleet
{
  public:
    /** Called exactly once per submitted job, on the supervisor. */
    using Callback = std::function<void(FleetResult)>;

    WorkerFleet(FleetOptions opts, dist::WorkerLauncher &launcher);
    ~WorkerFleet();

    WorkerFleet(const WorkerFleet &) = delete;
    WorkerFleet &operator=(const WorkerFleet &) = delete;

    /** Spawn the fleet and the supervisor thread. */
    void start();

    /** Retire every worker (EOF, then SIGKILL stragglers) and join. */
    void stop();

    /**
     * Queue one job. @p id is echoed in the reply record; @p token is
     * polled by the supervisor -- when it fires, the executing worker
     * is killed and the job completes as kCancelled.
     */
    void submit(std::uint64_t id, const SimJob &job,
                std::shared_ptr<CancelToken> token, Callback cb);

    FleetSnapshot snapshot() const;

  private:
    struct Job
    {
        std::uint64_t id = 0;
        std::string line; ///< wire frame, '\n'-terminated
        std::uint64_t finger = 0;
        std::shared_ptr<CancelToken> token;
        Callback cb;
        unsigned deaths = 0; ///< workers this job has killed
    };

    struct Slot
    {
        enum State
        {
            kDown,     ///< not spawned yet / awaiting respawn decision
            kSpawning, ///< forked, waiting for the hello line
            kIdle,
            kBusy,
            kBackoff, ///< dead; respawn gated on eligibleAt
        };
        State state = kDown;
        dist::WorkerProcess proc;
        std::string rdbuf;
        bool killedByFleet = false; ///< cancel-kill: not a crash
        unsigned crashStreak = 0;   ///< resets on a served reply
        std::uint64_t jobsServed = 0;
        std::uint64_t restarts = 0;
        std::chrono::steady_clock::time_point eligibleAt{};
        std::chrono::steady_clock::time_point helloBy{};
        std::optional<Job> job; ///< present while kBusy
    };

    void supervisorMain();
    void spawnSlot(Slot &s);
    void closeSlotFds(Slot &s);
    void handleDeath(std::size_t idx,
                     std::chrono::steady_clock::time_point now);
    void completeJob(Job &&job, FleetResult res);
    void dispatchQueued(std::chrono::steady_clock::time_point now);
    void readSlot(std::size_t idx,
                  std::chrono::steady_clock::time_point now);
    void wake();
    void shutdownWorkers();

    FleetOptions opts_;
    dist::WorkerLauncher &launcher_;

    mutable std::mutex mu_;
    std::vector<Slot> slots_;
    std::deque<Job> queue_;
    std::set<std::uint64_t> quarantined_;
    /// consecutive worker kills per live (unquarantined) fingerprint
    std::map<std::uint64_t, unsigned> fingerKills_;
    std::vector<pid_t> unreaped_; ///< dead pids awaiting waitpid
    std::uint64_t restartsTotal_ = 0;
    std::uint64_t poisonRejected_ = 0;
    bool stopping_ = false;

    int wakePipe_[2] = {-1, -1};
    std::thread supervisor_;
    bool started_ = false;
    bool stopped_ = false;
};

} // namespace serve
} // namespace stsim

#endif // STSIM_SERVE_WORKER_FLEET_HH
