#include "net.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace stsim
{
namespace serve
{

namespace
{

std::string
errnoStr()
{
    return std::strerror(errno);
}

} // namespace

int
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        stsim_fatal("serve: unix socket path too long: '%s'",
                    path.c_str());
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        stsim_fatal("serve: socket: %s", errnoStr().c_str());
    // A stale socket file from a previous run would make bind fail
    // with EADDRINUSE even though nobody is listening.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) < 0)
        stsim_fatal("serve: bind '%s': %s", path.c_str(),
                    errnoStr().c_str());
    if (::listen(fd, 128) < 0)
        stsim_fatal("serve: listen '%s': %s", path.c_str(),
                    errnoStr().c_str());
    return fd;
}

int
listenTcp(int port, int *boundPort)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        stsim_fatal("serve: socket: %s", errnoStr().c_str());
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) < 0)
        stsim_fatal("serve: bind 127.0.0.1:%d: %s", port,
                    errnoStr().c_str());
    if (::listen(fd, 128) < 0)
        stsim_fatal("serve: listen 127.0.0.1:%d: %s", port,
                    errnoStr().c_str());
    if (boundPort) {
        sockaddr_in got{};
        socklen_t len = sizeof got;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&got),
                          &len) < 0) {
            stsim_fatal("serve: getsockname: %s", errnoStr().c_str());
        }
        *boundPort = ntohs(got.sin_port);
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        if (err)
            *err = "unix socket path too long";
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (err)
            *err = "socket: " + errnoStr();
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        if (err)
            *err = "connect '" + path + "': " + errnoStr();
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(int port, std::string *err)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (err)
            *err = "socket: " + errnoStr();
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        if (err)
            *err = "connect 127.0.0.1:" + std::to_string(port) + ": " +
                   errnoStr();
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, std::string_view data, std::string *err)
{
    while (!data.empty()) {
        ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = "send: " + errnoStr();
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

LineStatus
LineReader::next(std::string &line)
{
    for (;;) {
        std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            if (discarding_ || nl > maxLine_) {
                // Tail of an over-cap line -- or a whole over-cap line
                // that arrived in one read: drop it and resume normal
                // framing at the byte after the newline.
                buf_.erase(0, nl + 1);
                discarding_ = false;
                return LineStatus::Overflow;
            }
            line.assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return LineStatus::Line;
        }
        if (buf_.size() > maxLine_) {
            // No newline yet and already over the cap: stop buffering,
            // discard until the line finally terminates.
            buf_.clear();
            discarding_ = true;
        }

        char chunk[65536];
        ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return LineStatus::Error;
        }
        if (n == 0)
            return LineStatus::Eof;
        if (discarding_) {
            // Keep only bytes past a newline, if one arrived.
            const char *p = static_cast<const char *>(
                ::memchr(chunk, '\n', static_cast<std::size_t>(n)));
            if (p) {
                discarding_ = false;
                buf_.assign(p + 1, static_cast<std::size_t>(
                                       chunk + n - (p + 1)));
                return LineStatus::Overflow;
            }
            continue;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace serve
} // namespace stsim
