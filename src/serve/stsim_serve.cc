/**
 * @file
 * stsim_serve: long-lived simulation daemon. Listens on a Unix or
 * loopback-TCP socket, serves SimJob requests (JSONL frames, see
 * serve/server.hh for the wire protocol), and drains gracefully on
 * SIGTERM/SIGINT: stop accepting, finish or cancel in-flight work by
 * its deadline, exit 0.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <signal.h>

#include "common/logging.hh"
#include "serve/server.hh"

using namespace stsim;

namespace
{

int
usage(FILE *to)
{
    std::fprintf(to,
"usage: stsim_serve (--unix PATH | --tcp PORT) [options]\n"
"\n"
"Serve SimJob requests as JSONL frames; one JSON object per line each\n"
"way. See README 'Serving' for the wire format and error replies.\n"
"\n"
"options:\n"
"  --unix PATH             listen on a Unix stream socket\n"
"  --tcp PORT              listen on 127.0.0.1:PORT (0 = ephemeral;\n"
"                          the bound port is printed on stderr)\n"
"  --jobs N                simulation worker threads (default: STSIM_JOBS\n"
"                          or hardware concurrency)\n"
"  --queue N               admission queue capacity: admitted but\n"
"                          unfinished requests (default 2*jobs+4);\n"
"                          overload => immediate {\"error\":\"busy\"}\n"
"  --default-deadline-ms D deadline for requests that carry none (0 =\n"
"                          unlimited, the default)\n"
"  --max-deadline-ms D     clamp every request's deadline (0 = no clamp)\n"
"  --drain-grace-ms D      on SIGTERM, cancel whatever is still running\n"
"                          this long after the drain starts (default\n"
"                          10000)\n"
"  --max-line-bytes B      request frame size cap (default 1048576)\n"
"  --reply-buffer N        buffered replies per connection before the\n"
"                          reader blocks (default 64)\n"
"  --max-conns N           connection cap (default 256)\n"
"  --max-insts N           per-job instruction cap, warmup and measured\n"
"                          each (default 1000000000; 0 = unlimited)\n"
"  --isolate               run jobs in a supervised fleet of\n"
"                          out-of-process `stsim_runner serve-worker`\n"
"                          subprocesses: a crashing job becomes a\n"
"                          structured reply, never a daemon exit\n"
"  --runner PATH           stsim_runner binary for --isolate (default:\n"
"                          stsim_runner beside this executable)\n"
"  --job-attempts K        worker deaths before a job is answered\n"
"                          {\"error\":\"internal\"} (default 3)\n"
"  --poison-threshold K    consecutive worker kills before a job is\n"
"                          quarantined as {\"error\":\"poison\"}\n"
"                          (default 2)\n"
"  --respawn-base-ms D     worker respawn backoff base (default 50)\n"
"  --respawn-cap-ms D      worker respawn backoff cap (default 5000)\n");
    return to == stdout ? 0 : 2;
}

std::uint64_t
parseU64(const char *flag, const char *s)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || s[0] == '\0' || s[0] == '-')
        stsim_fatal("serve: bad value for %s: '%s'", flag, s);
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    ::signal(SIGPIPE, SIG_IGN);

    serve::ServeOptions opts;
    bool haveAddr = false;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto val = [&]() -> const char * {
            if (i + 1 >= argc)
                stsim_fatal("serve: %s needs a value", a);
            return argv[++i];
        };
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h") ||
            !std::strcmp(a, "help")) {
            return usage(stdout);
        } else if (!std::strcmp(a, "--unix")) {
            opts.unixPath = val();
            haveAddr = true;
        } else if (!std::strcmp(a, "--tcp")) {
            opts.tcpPort = static_cast<int>(parseU64(a, val()));
            haveAddr = true;
        } else if (!std::strcmp(a, "--jobs")) {
            opts.workers = static_cast<unsigned>(parseU64(a, val()));
        } else if (!std::strcmp(a, "--queue")) {
            opts.queueCapacity =
                static_cast<std::size_t>(parseU64(a, val()));
        } else if (!std::strcmp(a, "--default-deadline-ms")) {
            opts.defaultDeadlineMs = parseU64(a, val());
        } else if (!std::strcmp(a, "--max-deadline-ms")) {
            opts.maxDeadlineMs = parseU64(a, val());
        } else if (!std::strcmp(a, "--drain-grace-ms")) {
            opts.drainGraceMs = parseU64(a, val());
        } else if (!std::strcmp(a, "--max-line-bytes")) {
            // 0 would make every frame oversize; reject it up front.
            opts.maxLineBytes =
                static_cast<std::size_t>(parseU64(a, val()));
            if (!opts.maxLineBytes)
                stsim_fatal("serve: %s must be positive", a);
        } else if (!std::strcmp(a, "--reply-buffer")) {
            // 0 makes the reply-slot predicate unsatisfiable and
            // deadlocks every connection; reject it up front.
            opts.replyQueueCap =
                static_cast<std::size_t>(parseU64(a, val()));
            if (!opts.replyQueueCap)
                stsim_fatal("serve: %s must be positive", a);
        } else if (!std::strcmp(a, "--max-conns")) {
            opts.maxConnections =
                static_cast<std::size_t>(parseU64(a, val()));
        } else if (!std::strcmp(a, "--max-insts")) {
            opts.maxJobInstructions = parseU64(a, val());
        } else if (!std::strcmp(a, "--isolate")) {
            opts.isolate = true;
        } else if (!std::strcmp(a, "--runner")) {
            opts.runnerPath = val();
        } else if (!std::strcmp(a, "--job-attempts")) {
            opts.jobAttempts = static_cast<unsigned>(parseU64(a, val()));
            if (!opts.jobAttempts)
                stsim_fatal("serve: %s must be positive", a);
        } else if (!std::strcmp(a, "--poison-threshold")) {
            opts.poisonThreshold =
                static_cast<unsigned>(parseU64(a, val()));
            if (!opts.poisonThreshold)
                stsim_fatal("serve: %s must be positive", a);
        } else if (!std::strcmp(a, "--respawn-base-ms")) {
            opts.respawnBaseMs = parseU64(a, val());
        } else if (!std::strcmp(a, "--respawn-cap-ms")) {
            opts.respawnCapMs = parseU64(a, val());
        } else {
            std::fprintf(stderr, "serve: unknown argument '%s'\n", a);
            return usage(stderr);
        }
    }
    if (!haveAddr)
        return usage(stderr);

    // Block the shutdown signals in every thread (the server's threads
    // inherit this mask), then field them synchronously below.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGINT);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    serve::SimServer server(opts);
    server.start();
    if (!opts.unixPath.empty())
        stsim_inform("stsim_serve: listening on unix:%s",
                     opts.unixPath.c_str());
    else
        stsim_inform("stsim_serve: listening on 127.0.0.1:%d",
                     server.tcpPort());

    int sig = 0;
    sigwait(&set, &sig);
    stsim_inform("stsim_serve: %s received, draining "
                 "(grace %llu ms)...",
                 sig == SIGTERM ? "SIGTERM" : "SIGINT",
                 static_cast<unsigned long long>(opts.drainGraceMs));
    server.beginDrain();
    server.waitDrained();

    const serve::ServeStats &s = server.stats();
    stsim_inform(
        "stsim_serve: drained; conns=%llu (rejected %llu) "
        "requests=%llu completed=%llu busy=%llu parse=%llu "
        "oversize=%llu bad=%llu deadline=%llu disconnect=%llu "
        "drain-cancelled=%llu internal=%llu poison=%llu",
        static_cast<unsigned long long>(s.connections.load()),
        static_cast<unsigned long long>(s.rejectedConnections.load()),
        static_cast<unsigned long long>(s.requests.load()),
        static_cast<unsigned long long>(s.completed.load()),
        static_cast<unsigned long long>(s.busy.load()),
        static_cast<unsigned long long>(s.parseErrors.load()),
        static_cast<unsigned long long>(s.oversize.load()),
        static_cast<unsigned long long>(s.badRequests.load()),
        static_cast<unsigned long long>(s.deadlineCancelled.load()),
        static_cast<unsigned long long>(s.disconnectCancelled.load()),
        static_cast<unsigned long long>(s.drainCancelled.load()),
        static_cast<unsigned long long>(s.internalErrors.load()),
        static_cast<unsigned long long>(s.poisonRejected.load()));
    return 0;
}
