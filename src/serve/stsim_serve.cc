/**
 * @file
 * stsim_serve: long-lived simulation daemon. Listens on a Unix or
 * loopback-TCP socket, serves SimJob requests (JSONL frames, see
 * serve/server.hh for the wire protocol), and drains gracefully on
 * SIGTERM/SIGINT: stop accepting, finish or cancel in-flight work by
 * its deadline, exit 0.
 */

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include <signal.h>

#include "common/arg_parse.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/server.hh"

using namespace stsim;

namespace
{

/** Observability surfaces; CLI-only, not part of ServeOptions. */
struct ObsCli
{
    std::string traceFile;
    std::string metricsFile;
    std::uint64_t statsIntervalSec = 0;
};

std::uint64_t
parseU64(const char *flag, const char *s)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || s[0] == '\0' || s[0] == '-')
        stsim_fatal("serve: bad value for %s: '%s'", flag, s);
    return v;
}

int usage(FILE *to);

/**
 * The full flag surface, bound to @p opts. usage() registers against
 * throwaway targets just to generate the options block, so the help
 * text can never drift from the flags actually parsed.
 */
void
registerFlags(args::FlagSet &fs, serve::ServeOptions &opts,
              ObsCli &obsCli, bool &haveAddr)
{
    for (const char *h : {"--help", "-h", "help"})
        fs.boolean(h, [] { std::exit(usage(stdout)); });
    fs.flag("--unix", "PATH",
            [&opts, &haveAddr](const char *v) {
                opts.unixPath = v;
                haveAddr = true;
            },
            "listen on a Unix stream socket")
        .flag("--tcp", "PORT",
              [&opts, &haveAddr](const char *v) {
                  opts.tcpPort =
                      static_cast<int>(parseU64("--tcp", v));
                  haveAddr = true;
              },
              "listen on 127.0.0.1:PORT (0 = ephemeral;\n"
              "the bound port is printed on stderr)")
        .u64("--jobs", "N", &opts.workers,
             "simulation worker threads (default: STSIM_JOBS\n"
             "or hardware concurrency)")
        .u64("--queue", "N", &opts.queueCapacity,
             "admission queue capacity: admitted but\n"
             "unfinished requests (default 2*jobs+4);\n"
             "overload => immediate {\"error\":\"busy\"}")
        .u64("--default-deadline-ms", "D", &opts.defaultDeadlineMs,
             "deadline for requests that carry none (0 =\n"
             "unlimited, the default)")
        .u64("--max-deadline-ms", "D", &opts.maxDeadlineMs,
             "clamp every request's deadline (0 = no clamp)")
        .u64("--drain-grace-ms", "D", &opts.drainGraceMs,
             "on SIGTERM, cancel whatever is still running\n"
             "this long after the drain starts (default\n"
             "10000)")
        // 0 would make every frame oversize; reject it up front.
        .u64Positive("--max-line-bytes", "B", &opts.maxLineBytes,
                     "request frame size cap (default 1048576)")
        // 0 makes the reply-slot predicate unsatisfiable and
        // deadlocks every connection; reject it up front.
        .u64Positive("--reply-buffer", "N", &opts.replyQueueCap,
                     "buffered replies per connection before the\n"
                     "reader blocks (default 64)")
        .u64("--max-conns", "N", &opts.maxConnections,
             "connection cap (default 256)")
        .u64("--max-insts", "N", &opts.maxJobInstructions,
             "per-job instruction cap, warmup and measured\n"
             "each (default 1000000000; 0 = unlimited)")
        .boolean("--isolate", &opts.isolate,
                 "run jobs in a supervised fleet of\n"
                 "out-of-process `stsim_runner serve-worker`\n"
                 "subprocesses: a crashing job becomes a\n"
                 "structured reply, never a daemon exit")
        .str("--runner", "PATH", &opts.runnerPath,
             "stsim_runner binary for --isolate (default:\n"
             "stsim_runner beside this executable)")
        .u64Positive("--job-attempts", "K", &opts.jobAttempts,
                     "worker deaths before a job is answered\n"
                     "{\"error\":\"internal\"} (default 3)")
        .u64Positive("--poison-threshold", "K", &opts.poisonThreshold,
                     "consecutive worker kills before a job is\n"
                     "quarantined as {\"error\":\"poison\"}\n"
                     "(default 2)")
        .u64("--respawn-base-ms", "D", &opts.respawnBaseMs,
             "worker respawn backoff base (default 50)")
        .u64("--respawn-cap-ms", "D", &opts.respawnCapMs,
             "worker respawn backoff cap (default 5000)")
        .str("--trace", "FILE", &obsCli.traceFile,
             "write a Chrome trace_event JSON span trace\n"
             "of the serving session to FILE on exit\n"
             "(load it in Perfetto or chrome://tracing)")
        .str("--metrics", "FILE", &obsCli.metricsFile,
             "write the final metrics-registry snapshot\n"
             "(one JSONL record) to FILE on exit")
        .u64("--stats-interval-sec", "N", &obsCli.statsIntervalSec,
             "print a one-line stats summary to stderr\n"
             "every N seconds (0 = off, the default)");
}

args::Diag
serveDiag()
{
    args::Diag d;
    d.missingValue = [](const char *flag) {
        stsim_fatal("serve: %s needs a value", flag);
    };
    d.unknown = [](const char *arg) {
        std::fprintf(stderr, "serve: unknown argument '%s'\n", arg);
        std::exit(usage(stderr));
    };
    d.parseU64 = [](const char *flag, const char *v) {
        return parseU64(flag, v);
    };
    d.notPositive = [](const char *flag) {
        stsim_fatal("serve: %s must be positive", flag);
    };
    return d;
}

int
usage(FILE *to)
{
    serve::ServeOptions dummy;
    ObsCli dummyObs;
    bool dummyAddr = false;
    args::FlagSet fs(serveDiag());
    registerFlags(fs, dummy, dummyObs, dummyAddr);
    std::fprintf(to,
"usage: stsim_serve (--unix PATH | --tcp PORT) [options]\n"
"\n"
"Serve SimJob requests as JSONL frames; one JSON object per line each\n"
"way. See README 'Serving' for the wire format and error replies.\n"
"\n"
"options:\n"
"%s", fs.optionsText().c_str());
    return to == stdout ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    ::signal(SIGPIPE, SIG_IGN);

    serve::ServeOptions opts;
    ObsCli obsCli;
    bool haveAddr = false;
    args::FlagSet fs(serveDiag());
    registerFlags(fs, opts, obsCli, haveAddr);
    fs.parse(argc, argv, 1);
    if (!haveAddr)
        return usage(stderr);

    // Tracing is installed before the server exists so accept/parse
    // spans from the very first connection land in the file.
    std::unique_ptr<obs::TraceSink> traceSink;
    if (!obsCli.traceFile.empty()) {
        traceSink = std::make_unique<obs::TraceSink>();
        obs::TraceSink::install(traceSink.get());
    }

    // Block the shutdown signals in every thread (the server's threads
    // inherit this mask), then field them synchronously below.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGINT);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    serve::SimServer server(opts);
    server.start();
    if (!opts.unixPath.empty())
        stsim_inform("stsim_serve: listening on unix:%s",
                     opts.unixPath.c_str());
    else
        stsim_inform("stsim_serve: listening on 127.0.0.1:%d",
                     server.tcpPort());

    // Periodic one-line operator stats: the key ServeStats counters
    // plus live registry gauges/quantiles, on the leveled log channel.
    std::mutex statsMu;
    std::condition_variable statsCv;
    bool statsStop = false;
    std::thread statsThread;
    if (obsCli.statsIntervalSec) {
        statsThread = std::thread([&] {
            obs::Registry &reg = obs::Registry::instance();
            std::unique_lock<std::mutex> lock(statsMu);
            while (!statsCv.wait_for(
                lock, std::chrono::seconds(obsCli.statsIntervalSec),
                [&] { return statsStop; })) {
                const serve::ServeStats &s = server.stats();
                stsim_inform(
                    "stsim_serve: stats requests=%llu completed=%llu "
                    "busy=%llu queue-depth=%lld idle-workers=%lld "
                    "qwait-p99-us=%llu sim-p99-us=%llu",
                    static_cast<unsigned long long>(s.requests.load()),
                    static_cast<unsigned long long>(s.completed.load()),
                    static_cast<unsigned long long>(s.busy.load()),
                    static_cast<long long>(
                        reg.gauge("runpool.queue_depth").value()),
                    static_cast<long long>(
                        reg.gauge("runpool.idle_workers").value()),
                    static_cast<unsigned long long>(
                        reg.histogram("serve.queue_wait_us")
                            .quantile(0.99)),
                    static_cast<unsigned long long>(
                        reg.histogram("serve.sim_time_us")
                            .quantile(0.99)));
            }
        });
    }

    int sig = 0;
    sigwait(&set, &sig);
    stsim_inform("stsim_serve: %s received, draining "
                 "(grace %llu ms)...",
                 sig == SIGTERM ? "SIGTERM" : "SIGINT",
                 static_cast<unsigned long long>(opts.drainGraceMs));
    server.beginDrain();
    server.waitDrained();

    if (statsThread.joinable()) {
        {
            std::lock_guard<std::mutex> lock(statsMu);
            statsStop = true;
        }
        statsCv.notify_all();
        statsThread.join();
    }

    // Every worker/reader thread is parked or joined by now, so the
    // retract-flush-write sequence sees a complete, quiescent trace.
    if (traceSink) {
        obs::TraceSink::install(nullptr);
        if (!traceSink->writeFile(obsCli.traceFile)) {
            stsim_warn("stsim_serve: cannot write trace file %s: %s",
                       obsCli.traceFile.c_str(), std::strerror(errno));
        }
    }
    if (!obsCli.metricsFile.empty()) {
        std::string snap = obs::Registry::instance().snapshotJson();
        std::FILE *f = std::fopen(obsCli.metricsFile.c_str(), "w");
        bool ok = f != nullptr;
        if (ok) {
            ok = std::fwrite(snap.data(), 1, snap.size(), f) ==
                     snap.size() &&
                 std::fputc('\n', f) != EOF;
        }
        if (f && std::fclose(f) != 0)
            ok = false;
        if (!ok) {
            stsim_warn("stsim_serve: cannot write metrics file %s: %s",
                       obsCli.metricsFile.c_str(),
                       std::strerror(errno));
        }
    }

    const serve::ServeStats &s = server.stats();
    stsim_inform(
        "stsim_serve: drained; conns=%llu (rejected %llu) "
        "requests=%llu completed=%llu busy=%llu parse=%llu "
        "oversize=%llu bad=%llu deadline=%llu disconnect=%llu "
        "drain-cancelled=%llu internal=%llu poison=%llu",
        static_cast<unsigned long long>(s.connections.load()),
        static_cast<unsigned long long>(s.rejectedConnections.load()),
        static_cast<unsigned long long>(s.requests.load()),
        static_cast<unsigned long long>(s.completed.load()),
        static_cast<unsigned long long>(s.busy.load()),
        static_cast<unsigned long long>(s.parseErrors.load()),
        static_cast<unsigned long long>(s.oversize.load()),
        static_cast<unsigned long long>(s.badRequests.load()),
        static_cast<unsigned long long>(s.deadlineCancelled.load()),
        static_cast<unsigned long long>(s.disconnectCancelled.load()),
        static_cast<unsigned long long>(s.drainCancelled.load()),
        static_cast<unsigned long long>(s.internalErrors.load()),
        static_cast<unsigned long long>(s.poisonRejected.load()));
    return 0;
}
