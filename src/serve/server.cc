#include "server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/cancel.hh"
#include "core/job_serde.hh"
#include "core/simulator.hh"
#include "obs/trace.hh"
#include "serve/net.hh"

namespace stsim
{
namespace serve
{

namespace
{

/** Why a CancelToken fired; first canceller wins (CAS from kNone). */
enum CancelReason : int
{
    kNone = 0,
    kDeadline,
    kDisconnect,
    kDrain,
};

std::string
errorLine(const char *kind, std::uint64_t id, std::string_view detail)
{
    serde::FlatWriter w;
    w.str("error", kind);
    w.u64("id", id);
    if (!detail.empty())
        w.str("detail", detail);
    return w.finish();
}

/** Default --isolate runner: "stsim_runner" beside this executable. */
std::string
defaultRunnerPath()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0) {
        stsim_fatal("serve: cannot resolve /proc/self/exe (%s); "
                    "pass a runner path",
                    std::strerror(errno));
    }
    buf[n] = '\0';
    std::string p(buf);
    std::size_t slash = p.rfind('/');
    std::string dir =
        slash == std::string::npos ? "" : p.substr(0, slash + 1);
    return dir + "stsim_runner";
}

} // namespace

/** One admitted request, shared by conn, reaper, and its pool job. */
struct SimServer::Inflight
{
    std::uint64_t id = 0;
    SimJob job;
    std::shared_ptr<CancelToken> token;
    bool hasDeadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::atomic<bool> done{false};
    std::atomic<int> cancelReason{kNone};

    /** Admission instant, for the queue-wait histogram. */
    std::chrono::steady_clock::time_point admitTime{};
    /** Sink timestamp at admission when a trace was active then. */
    bool traced = false;
    std::uint64_t traceTs = 0;
};

namespace
{

std::uint64_t
elapsedUs(std::chrono::steady_clock::time_point since)
{
    auto d = std::chrono::steady_clock::now() - since;
    auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(d).count();
    return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

} // namespace

/**
 * One client connection. Owned jointly (shared_ptr) by its reader
 * thread, its writer thread, and any in-flight pool jobs; the fd is
 * closed when the last owner lets go, so a raced shutdown() can never
 * hit a recycled descriptor.
 */
struct SimServer::Conn
{
    int fd = -1;
    std::uint64_t id = 0;

    std::mutex mu;
    std::condition_variable cvSpace; ///< reply-queue space appeared
    std::condition_variable cvData;  ///< reply queued / state change
    std::deque<std::string> outq;    ///< complete frames, '\n' included
    std::size_t reserved = 0;        ///< slots held by in-flight jobs
    bool writing = false;            ///< writer mid-send (off-lock)
    bool halfClosed = false;         ///< clean EOF from the client
    bool dead = false;               ///< torn down; drop everything
    std::vector<std::shared_ptr<Inflight>> inflight;

    std::thread writer; ///< joined by the reader thread on its way out

    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

SimServer::SimServer(ServeOptions opts)
    : opts_(std::move(opts)),
      queueWaitUs_(
          obs::Registry::instance().histogram("serve.queue_wait_us")),
      simTimeUs_(obs::Registry::instance().histogram("serve.sim_time_us")),
      replyFlushUs_(
          obs::Registry::instance().histogram("serve.reply_flush_us")),
      jobsCompletedCtr_(
          obs::Registry::instance().counter("serve.jobs_completed")),
      pool_(opts_.workers)
{
}

SimServer::~SimServer()
{
    if (started_ && !drained_) {
        beginDrain();
        waitDrained();
    }
    if (wakePipe_[0] >= 0)
        ::close(wakePipe_[0]);
    if (wakePipe_[1] >= 0)
        ::close(wakePipe_[1]);
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
SimServer::start()
{
    // A zero cap deadlocks every connection (the reply-slot predicate
    // can never hold) or rejects every frame as oversize; fail loudly
    // instead. The CLI rejects these too; this covers embedders.
    if (!opts_.replyQueueCap || !opts_.maxLineBytes)
        stsim_fatal("serve: replyQueueCap and maxLineBytes must be "
                    "positive");
    if (!opts_.unixPath.empty())
        listenFd_ = listenUnix(opts_.unixPath);
    else if (opts_.tcpPort >= 0)
        listenFd_ = listenTcp(opts_.tcpPort, &boundTcpPort_);
    else
        stsim_fatal("serve: no listen address (need --unix or --tcp)");

    if (::pipe2(wakePipe_, O_CLOEXEC) < 0)
        stsim_fatal("serve: pipe: %s", std::strerror(errno));

    queueCap_ = opts_.queueCapacity
                    ? opts_.queueCapacity
                    : std::size_t{2} * pool_.workers() + 4;
    if (opts_.isolate) {
        std::string runner = opts_.runnerPath.empty()
                                 ? defaultRunnerPath()
                                 : opts_.runnerPath;
        workerLauncher_ =
            std::make_unique<dist::LocalWorkerLauncher>(runner);
        FleetOptions fo;
        fo.workers = pool_.workers();
        fo.jobAttempts = opts_.jobAttempts;
        fo.poisonThreshold = opts_.poisonThreshold;
        fo.respawnBaseMs = opts_.respawnBaseMs;
        fo.respawnCapMs = opts_.respawnCapMs;
        fleet_ = std::make_unique<WorkerFleet>(fo, *workerLauncher_);
        fleet_->start();
    }
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    reaperThread_ = std::thread([this] { reaperLoop(); });
}

void
SimServer::beginDrain()
{
    {
        std::lock_guard<std::mutex> lock(reaperMu_);
        if (draining_.load())
            return;
        drainHardDeadline_ =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(opts_.drainGraceMs);
        draining_.store(true);
    }
    // Nudge the acceptor out of poll().
    char b = 1;
    ssize_t n;
    do {
        n = ::write(wakePipe_[1], &b, 1);
    } while (n < 0 && errno == EINTR);
    reaperCv_.notify_all();
}

void
SimServer::waitDrained()
{
    if (!started_ || drained_)
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::unique_lock<std::mutex> lock(threadMu_);
        threadCv_.wait(lock, [&] { return liveThreads_ == 0; });
    }
    // Every conn is gone, so every job has pushed its reply; this just
    // lets the pool workers park. Jobs never throw (runJob catches),
    // so wait() cannot rethrow here.
    pool_.wait();
    // Same for the fleet: no job outlives its connection, so this is
    // pure worker retirement (EOF, then SIGKILL stragglers).
    if (fleet_)
        fleet_->stop();
    {
        std::lock_guard<std::mutex> lock(reaperMu_);
        reaperStop_ = true;
    }
    reaperCv_.notify_all();
    if (reaperThread_.joinable())
        reaperThread_.join();
    drained_ = true;
}

void
SimServer::threadExit()
{
    std::lock_guard<std::mutex> lock(threadMu_);
    --liveThreads_;
    threadCv_.notify_all();
}

void
SimServer::acceptLoop()
{
    for (;;) {
        struct pollfd fds[2] = {{listenFd_, POLLIN, 0},
                                {wakePipe_[0], POLLIN, 0}};
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            stsim_warn("serve: poll: %s", std::strerror(errno));
            break;
        }
        if (draining_.load())
            break;
        if (!(fds[0].revents & POLLIN))
            continue;
        int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (draining_.load())
                break;
            stsim_warn("serve: accept: %s", std::strerror(errno));
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
        }

        std::shared_ptr<Conn> c;
        {
            std::lock_guard<std::mutex> lock(connsMu_);
            if (conns_.size() < opts_.maxConnections) {
                c = std::make_shared<Conn>();
                c->fd = fd;
                c->id = nextConnId_++;
                conns_.emplace(c->id, c);
            }
        }
        if (!c) {
            // Shed the connection itself, with a structured reason.
            stats_.rejectedConnections++;
            std::string line =
                errorLine("busy", 0, "connection limit reached") + "\n";
            sendAll(fd, line, nullptr);
            ::close(fd);
            continue;
        }
        stats_.connections++;
        c->writer = std::thread([this, c] { writerMain(c); });
        {
            std::lock_guard<std::mutex> lock(threadMu_);
            ++liveThreads_;
        }
        // Detached: the reader owns connection teardown (it joins the
        // writer) and reports its own exit through threadExit(), which
        // is the last touch of server state on that thread.
        std::thread([this, c] {
            readerMain(c);
            threadExit();
        }).detach();
    }
    ::close(listenFd_);
    listenFd_ = -1;
    if (!opts_.unixPath.empty())
        ::unlink(opts_.unixPath.c_str());
}

void
SimServer::reaperLoop()
{
    using clock = std::chrono::steady_clock;
    for (;;) {
        bool draining, hard, force;
        {
            std::unique_lock<std::mutex> lock(reaperMu_);
            reaperCv_.wait_for(lock, std::chrono::milliseconds(10));
            if (reaperStop_)
                return;
            auto t = clock::now();
            draining = draining_.load();
            hard = draining && t >= drainHardDeadline_;
            // hard cancels in-flight jobs, but their error replies are
            // still owed; force (one more grace period later) is the
            // backstop that severs clients who never drain them.
            force = draining &&
                    t >= drainHardDeadline_ +
                             std::chrono::milliseconds(opts_.drainGraceMs);
        }
        auto now = clock::now();

        // Fire expired deadlines (and, past the drain grace period,
        // everything); compact finished/expired entries as we go.
        {
            std::lock_guard<std::mutex> lock(inflightMu_);
            std::size_t w = 0;
            for (std::size_t i = 0; i < inflight_.size(); ++i) {
                std::shared_ptr<Inflight> inf = inflight_[i].lock();
                if (!inf || inf->done.load())
                    continue;
                if (inf->hasDeadline && now >= inf->deadline) {
                    int expect = kNone;
                    inf->cancelReason.compare_exchange_strong(expect,
                                                              kDeadline);
                    inf->token->cancel();
                    continue;
                }
                if (hard) {
                    int expect = kNone;
                    inf->cancelReason.compare_exchange_strong(expect,
                                                              kDrain);
                    inf->token->cancel();
                    continue;
                }
                // Guard the no-gap case: self-move-assignment would
                // empty the weak_ptr and orphan the entry's deadline.
                if (w != i)
                    inflight_[w] = std::move(inflight_[i]);
                ++w;
            }
            inflight_.resize(w);
        }

        if (!draining)
            continue;

        // Drain: close connections once they owe nothing (or, past the
        // force deadline, unconditionally). The shutdown wakes readers
        // blocked in read() and fails writers out of send(); normal
        // teardown does the rest.
        std::vector<std::shared_ptr<Conn>> snapshot;
        {
            std::lock_guard<std::mutex> lock(connsMu_);
            snapshot.reserve(conns_.size());
            for (auto &kv : conns_)
                snapshot.push_back(kv.second);
        }
        for (const std::shared_ptr<Conn> &c : snapshot) {
            std::lock_guard<std::mutex> lock(c->mu);
            bool quiescent = c->inflight.empty() && c->outq.empty() &&
                             c->reserved == 0 && !c->writing;
            if (force || quiescent) {
                ::shutdown(c->fd, SHUT_RDWR);
                c->cvData.notify_all();
                c->cvSpace.notify_all();
            }
        }
    }
}

void
SimServer::readerMain(const std::shared_ptr<Conn> &c)
{
    LineReader lr(c->fd, opts_.maxLineBytes);
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(c->mu);
            if (c->dead)
                break;
        }
        std::string line;
        LineStatus st = lr.next(line);
        if (st == LineStatus::Line) {
            handleLine(c, line);
            continue;
        }
        if (st == LineStatus::Overflow) {
            stats_.oversize++;
            blockingReply(
                c, errorLine("oversize", 0,
                             "request frame exceeds the size cap"));
            continue;
        }
        if (st == LineStatus::Eof) {
            // EOF is ambiguous: a clean half-close (client sent
            // everything, still reading) looks exactly like a full
            // close at read()==0. Probe the write side: a fully gone
            // peer raises POLLERR/POLLHUP, and its jobs must be
            // cancelled, not finished into a void.
            struct pollfd p = {c->fd, POLLOUT, 0};
            bool peerGone = ::poll(&p, 1, 0) > 0 &&
                            (p.revents & (POLLERR | POLLHUP)) != 0;
            if (peerGone) {
                markDead(c, false);
                break;
            }
            // A torn final frame (no trailing newline) is still a
            // frame: answer it, then flush and close.
            if (!lr.leftover().empty())
                handleLine(c, lr.leftover());
            {
                std::lock_guard<std::mutex> lock(c->mu);
                c->halfClosed = true;
            }
            c->cvData.notify_all();
            break;
        }
        markDead(c, false);
        break;
    }
    if (c->writer.joinable())
        c->writer.join();
    finalizeConn(c);
}

void
SimServer::writerMain(const std::shared_ptr<Conn> &c)
{
    for (;;) {
        std::string line;
        {
            std::unique_lock<std::mutex> lock(c->mu);
            c->cvData.wait(lock, [&] {
                return c->dead || !c->outq.empty() ||
                       (c->halfClosed && c->reserved == 0);
            });
            if (c->dead)
                return;
            if (c->outq.empty())
                return; // half-closed and nothing owed: clean finish
            line = std::move(c->outq.front());
            c->outq.pop_front();
            // Visible to the reaper: a popped-but-unsent reply still
            // counts as owed, so a drain shutdown cannot race it.
            c->writing = true;
        }
        c->cvSpace.notify_all();
        std::string err;
        bool sent;
        {
            TRACE_SPAN("serve.reply_flush");
            auto flushStart = std::chrono::steady_clock::now();
            sent = sendAll(c->fd, line, &err);
            replyFlushUs_.observe(elapsedUs(flushStart));
        }
        {
            std::lock_guard<std::mutex> lock(c->mu);
            c->writing = false;
        }
        if (!sent) {
            markDead(c, true);
            return;
        }
    }
}

void
SimServer::handleLine(const std::shared_ptr<Conn> &c,
                      const std::string &line)
{
    std::string_view sv(line);
    if (!sv.empty() && sv.back() == '\r')
        sv.remove_suffix(1);
    if (sv.empty())
        return;

    serde::ServeRequest req;
    serde::ParseOutcome parsed;
    {
        TRACE_SPAN("serve.parse");
        parsed = serde::parseServeRequest(sv, req);
    }
    if (!parsed) {
        stats_.parseErrors++;
        blockingReply(c, errorLine("parse", 0, parsed.error));
        return;
    }
    if (req.ping) {
        serde::FlatWriter w;
        w.u64("pong", req.id);
        blockingReply(c, w.finish());
        return;
    }
    if (req.health) {
        blockingReply(c, healthLine(req.id));
        return;
    }
    if (req.metrics) {
        blockingReply(c, metricsLine(req.id));
        return;
    }
    stats_.requests++;

    if (draining_.load()) {
        blockingReply(c, errorLine("draining", req.id,
                                   "server is draining"));
        return;
    }
    if (opts_.maxJobInstructions &&
        (req.job.cfg.maxInstructions > opts_.maxJobInstructions ||
         req.job.cfg.warmupInstructions > opts_.maxJobInstructions)) {
        stats_.badRequests++;
        blockingReply(c, errorLine("too_large", req.id,
                                   "instruction count exceeds the "
                                   "per-job cap"));
        return;
    }

    // Admission: lock-free headcount against the bounded queue. Full
    // => shed the request right now; nothing about it is retained.
    std::size_t cur = admitted_.load(std::memory_order_relaxed);
    for (;;) {
        if (cur >= queueCap_) {
            stats_.busy++;
            blockingReply(c, errorLine("busy", req.id,
                                       "admission queue full"));
            return;
        }
        if (admitted_.compare_exchange_weak(cur, cur + 1))
            break;
    }

    auto inf = std::make_shared<Inflight>();
    inf->id = req.id;
    inf->job = std::move(req.job);
    inf->token = std::make_shared<CancelToken>();
    inf->admitTime = std::chrono::steady_clock::now();
    if (obs::TraceSink *sink = obs::TraceSink::current()) {
        inf->traced = true;
        inf->traceTs = sink->nowUs();
    }
    std::uint64_t dl =
        req.deadlineMs ? req.deadlineMs : opts_.defaultDeadlineMs;
    if (opts_.maxDeadlineMs)
        dl = dl ? std::min(dl, opts_.maxDeadlineMs)
                : opts_.maxDeadlineMs;
    // Saturate at ~10 years: now() + milliseconds(2^64-ish) overflows
    // the signed chrono rep (UB) and wraps the deadline into the past,
    // instantly cancelling the job as "deadline expired".
    constexpr std::uint64_t kDeadlineCeilingMs = 315'360'000'000;
    dl = std::min(dl, kDeadlineCeilingMs);
    if (dl) {
        inf->hasDeadline = true;
        inf->deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(dl);
    }

    // Reserve the reply slot *before* submitting: if this client reads
    // slowly, the wait lands here, on its own reader thread, so sim
    // workers can always hand a finished reply off without blocking.
    {
        std::unique_lock<std::mutex> lock(c->mu);
        c->cvSpace.wait(lock, [&] {
            return c->dead ||
                   c->outq.size() + c->reserved < opts_.replyQueueCap;
        });
        if (c->dead) {
            admitted_.fetch_sub(1);
            return;
        }
        c->reserved++;
        c->inflight.push_back(inf);
    }
    {
        std::lock_guard<std::mutex> lock(inflightMu_);
        inflight_.push_back(inf);
    }
    if (fleet_) {
        fleet_->submit(inf->id, inf->job, inf->token,
                       [this, c, inf](FleetResult res) {
                           fleetDone(c, inf, std::move(res));
                       });
    } else {
        pool_.submit([this, c, inf] { runJob(c, inf); });
    }
}

void
SimServer::runJob(const std::shared_ptr<Conn> &c,
                  const std::shared_ptr<Inflight> &inf)
{
    // The job just left the admission queue for a sim worker.
    queueWaitUs_.observe(elapsedUs(inf->admitTime));
    if (inf->traced) {
        if (obs::TraceSink *sink = obs::TraceSink::current()) {
            sink->record("serve.queue_wait", inf->traceTs,
                         sink->nowUs() - inf->traceTs);
        }
    }

    std::string reply;
    bool ok = false;
    bool cancelled = false;
    std::string detail;
    try {
        // Hostile configs can stsim_fatal() arbitrarily deep (config
        // validation, unknown benchmark/policy names); the capture
        // scope turns those into FatalErrors caught right here.
        FatalCaptureScope scope;
        if (inf->token->cancelled())
            throw JobCancelled();
        Simulator sim(inf->job.cfg);
        SimResults r;
        {
            TRACE_SPAN("serve.sim");
            auto simStart = std::chrono::steady_clock::now();
            r = sim.run(inf->token.get());
            simTimeUs_.observe(elapsedUs(simStart));
        }
        r.experiment = inf->job.experiment;
        reply = serde::resultRecordToJson(inf->id, r);
        ok = true;
    } catch (const JobCancelled &) {
        cancelled = true;
    } catch (const FatalError &e) {
        detail = e.what();
    } catch (const std::bad_alloc &) {
        detail = "out of memory instantiating job";
    } catch (const std::exception &e) {
        detail = std::string("internal: ") + e.what();
    }

    inf->done.store(true);
    if (cancelled) {
        int reason = inf->cancelReason.load();
        if (reason == kDeadline) {
            stats_.deadlineCancelled++;
            reply = errorLine("deadline", inf->id,
                              "deadline expired before completion");
        } else if (reason == kDrain) {
            stats_.drainCancelled++;
            reply = errorLine("cancelled", inf->id,
                              "server drained before completion");
        } else {
            reply = errorLine("cancelled", inf->id,
                              "cancelled before completion");
        }
    } else if (!ok) {
        stats_.badRequests++;
        reply = errorLine("bad_request", inf->id, detail);
    } else {
        stats_.completed++;
        jobsCompletedCtr_.inc();
    }

    {
        std::lock_guard<std::mutex> lock(c->mu);
        auto &v = c->inflight;
        v.erase(std::remove(v.begin(), v.end(), inf), v.end());
    }
    admitted_.fetch_sub(1);
    // One cross-thread span covering the whole admitted lifetime
    // (admission -> reply handed to the writer).
    if (inf->traced) {
        if (obs::TraceSink *sink = obs::TraceSink::current()) {
            sink->record("serve.request", inf->traceTs,
                         sink->nowUs() - inf->traceTs);
        }
    }
    pushReserved(c, std::move(reply));
}

/**
 * Fleet completion: the --isolate twin of runJob's bookkeeping tail.
 * Runs on the fleet supervisor thread (or the submitting reader when
 * the fleet is stopping); called exactly once per admitted job.
 */
void
SimServer::fleetDone(const std::shared_ptr<Conn> &c,
                     const std::shared_ptr<Inflight> &inf,
                     FleetResult res)
{
    inf->done.store(true);
    std::string reply;
    switch (res.outcome) {
    case FleetOutcome::kReply:
        // The worker's line forwarded verbatim: a result record
        // (byte-identical to `dump` by construction) or its own
        // bad_request error record with the id already spliced in.
        reply = std::move(res.line);
        if (reply.rfind("{\"error\":", 0) == 0) {
            stats_.badRequests++;
        } else {
            stats_.completed++;
            jobsCompletedCtr_.inc();
        }
        break;
    case FleetOutcome::kCancelled: {
        int reason = inf->cancelReason.load();
        if (reason == kDeadline) {
            stats_.deadlineCancelled++;
            reply = errorLine("deadline", inf->id,
                              "deadline expired before completion");
        } else if (reason == kDrain) {
            stats_.drainCancelled++;
            reply = errorLine("cancelled", inf->id,
                              "server drained before completion");
        } else {
            reply = errorLine("cancelled", inf->id,
                              "cancelled before completion");
        }
        break;
    }
    case FleetOutcome::kInternal:
        stats_.internalErrors++;
        reply = errorLine("internal", inf->id, res.detail);
        break;
    case FleetOutcome::kPoison:
        stats_.poisonRejected++;
        reply = errorLine("poison", inf->id, res.detail);
        break;
    }

    {
        std::lock_guard<std::mutex> lock(c->mu);
        auto &v = c->inflight;
        v.erase(std::remove(v.begin(), v.end(), inf), v.end());
    }
    admitted_.fetch_sub(1);
    // Fleet jobs run out of process, so queue wait and sim time are
    // not separable here; the whole-lifetime histogram and span still
    // apply (admission -> fleet completion).
    queueWaitUs_.observe(elapsedUs(inf->admitTime));
    if (inf->traced) {
        if (obs::TraceSink *sink = obs::TraceSink::current()) {
            sink->record("serve.request", inf->traceTs,
                         sink->nowUs() - inf->traceTs);
        }
    }
    pushReserved(c, std::move(reply));
}

/**
 * {"op":"health"} reply: every ServeStats counter, plus the fleet's
 * per-worker state under --isolate. Hand-composed (fixed keys,
 * unsigned values, fixed state tokens), so no escaping is needed.
 */
std::string
SimServer::healthLine(std::uint64_t id)
{
    std::string out = "{\"health\":" + std::to_string(id);
    out += ",\"stats\":{";
    bool first = true;
    auto u64 = [&out, &first](const char *k, std::uint64_t v) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += k;
        out += "\":";
        out += std::to_string(v);
    };
    u64("connections", stats_.connections.load());
    u64("rejected_connections", stats_.rejectedConnections.load());
    u64("requests", stats_.requests.load());
    u64("completed", stats_.completed.load());
    u64("busy", stats_.busy.load());
    u64("parse_errors", stats_.parseErrors.load());
    u64("oversize", stats_.oversize.load());
    u64("bad_requests", stats_.badRequests.load());
    u64("deadline_cancelled", stats_.deadlineCancelled.load());
    u64("disconnect_cancelled", stats_.disconnectCancelled.load());
    u64("drain_cancelled", stats_.drainCancelled.load());
    u64("internal_errors", stats_.internalErrors.load());
    u64("poison_rejected", stats_.poisonRejected.load());
    out += "},\"isolate\":";
    out += fleet_ ? "true" : "false";
    if (fleet_) {
        FleetSnapshot snap = fleet_->snapshot();
        out += ",\"fleet\":{";
        first = true;
        u64("workers", snap.workers.size());
        u64("restarts_total", snap.restartsTotal);
        u64("quarantined", snap.quarantined);
        u64("poison_rejected", snap.poisonRejected);
        out += ",\"worker\":[";
        for (std::size_t i = 0; i < snap.workers.size(); ++i) {
            const FleetWorkerInfo &w = snap.workers[i];
            if (i)
                out += ',';
            out += '{';
            first = true;
            u64("slot", w.slot);
            u64("pid", w.pid > 0
                           ? static_cast<std::uint64_t>(w.pid)
                           : 0);
            out += ",\"state\":\"";
            out += w.state;
            out += '"';
            u64("jobs", w.jobs);
            u64("restarts", w.restarts);
            u64("backoff_stage", w.backoffStage);
            out += '}';
        }
        out += "]}";
    }
    out += '}';
    return out;
}

/**
 * {"op":"metrics"} reply: the whole metrics registry as one flat
 * record behind a leading "metrics":id echo. Flat on purpose --
 * clients reuse serde::parseFlat and the obs::Histogram bucket
 * helpers instead of needing a JSON DOM.
 */
std::string
SimServer::metricsLine(std::uint64_t id)
{
    std::string out = "{\"metrics\":" + std::to_string(id);
    bool first = false;
    obs::Registry::instance().appendFlatFields(out, first);
    out += '}';
    return out;
}

void
SimServer::markDead(const std::shared_ptr<Conn> &c, bool writerSide)
{
    std::vector<std::shared_ptr<Inflight>> toCancel;
    {
        std::lock_guard<std::mutex> lock(c->mu);
        if (c->dead)
            return;
        c->dead = true;
        c->outq.clear();
        toCancel = c->inflight;
        // Wake the peer thread out of read()/send().
        ::shutdown(c->fd, SHUT_RDWR);
    }
    c->cvData.notify_all();
    c->cvSpace.notify_all();
    (void)writerSide;
    for (const std::shared_ptr<Inflight> &inf : toCancel) {
        if (!inf->done.load()) {
            int expect = kNone;
            inf->cancelReason.compare_exchange_strong(expect,
                                                      kDisconnect);
            inf->token->cancel();
            stats_.disconnectCancelled++;
        }
    }
}

void
SimServer::finalizeConn(const std::shared_ptr<Conn> &c)
{
    std::lock_guard<std::mutex> lock(connsMu_);
    conns_.erase(c->id);
}

bool
SimServer::blockingReply(const std::shared_ptr<Conn> &c,
                         std::string line)
{
    line.push_back('\n');
    {
        std::unique_lock<std::mutex> lock(c->mu);
        c->cvSpace.wait(lock, [&] {
            return c->dead ||
                   c->outq.size() + c->reserved < opts_.replyQueueCap;
        });
        if (c->dead)
            return false;
        c->outq.push_back(std::move(line));
    }
    c->cvData.notify_all();
    return true;
}

void
SimServer::pushReserved(const std::shared_ptr<Conn> &c,
                        std::string line)
{
    line.push_back('\n');
    {
        std::lock_guard<std::mutex> lock(c->mu);
        c->reserved--;
        if (!c->dead)
            c->outq.push_back(std::move(line));
    }
    c->cvData.notify_all();
    c->cvSpace.notify_all();
}

} // namespace serve
} // namespace stsim
