/**
 * @file
 * Small POSIX socket helpers shared by the stsim_serve daemon, the
 * stsim_loadgen client, and the serve tests: listen/connect over Unix
 * or loopback TCP, EINTR-correct SIGPIPE-free sends, and a bounded
 * buffered line reader for the JSONL framing.
 */

#ifndef STSIM_SERVE_NET_HH
#define STSIM_SERVE_NET_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace stsim
{
namespace serve
{

/**
 * Bind+listen on a Unix stream socket at @p path (any stale socket
 * file is unlinked first). Returns the listening fd; fatals with
 * strerror on failure.
 */
int listenUnix(const std::string &path);

/**
 * Bind+listen on loopback TCP @p port (0 = ephemeral). The resolved
 * port is stored through @p boundPort. Fatals with strerror.
 */
int listenTcp(int port, int *boundPort);

/** Connect to a Unix socket; returns -1 with @p err set on failure. */
int connectUnix(const std::string &path, std::string *err);

/** Connect to loopback TCP; returns -1 with @p err set on failure. */
int connectTcp(int port, std::string *err);

/**
 * Write all of @p data. Uses send(MSG_NOSIGNAL) so a vanished peer
 * yields EPIPE instead of SIGPIPE; retries EINTR. Returns false on
 * any other failure (peer gone, timeout) with @p err describing it.
 */
bool sendAll(int fd, std::string_view data, std::string *err);

/** Result of one LineReader::next() call. */
enum class LineStatus
{
    Line,     ///< a complete '\n'-terminated line was produced
    Eof,      ///< orderly shutdown; check leftover() for a torn tail
    Error,    ///< read error (peer reset, bad fd)
    Overflow, ///< line exceeded the cap; oversized bytes were discarded
};

/**
 * Buffered reader that frames a byte stream into '\n'-terminated
 * lines, holding at most @p maxLine bytes of any one line. A line
 * longer than the cap is discarded through its terminating newline
 * and reported once as Overflow, so a hostile client cannot balloon
 * server memory and framing stays intact afterwards.
 */
class LineReader
{
  public:
    LineReader(int fd, std::size_t maxLine)
        : fd_(fd), maxLine_(maxLine)
    {
    }

    /** Produce the next line (without its '\n') into @p line. */
    LineStatus next(std::string &line);

    /** Unterminated bytes left at EOF (a torn final frame). */
    const std::string &leftover() const { return buf_; }

  private:
    int fd_;
    std::size_t maxLine_;
    std::string buf_;
    bool discarding_ = false; ///< inside an over-cap line
};

} // namespace serve
} // namespace stsim

#endif // STSIM_SERVE_NET_HH
