/**
 * @file
 * stsim_serve core: a long-lived daemon that accepts SimJob requests
 * as JSONL frames over a Unix or loopback-TCP socket, admission-queues
 * them onto a RunPool, and streams SimResults records back per
 * connection.
 *
 * Wire protocol (one JSON object per '\n'-terminated line each way):
 *
 *   request  {"id":N,"deadlineMs":D,"experiment":E,"cfg":{...}}
 *            -- a manifest record plus an optional client-chosen id
 *               (echoed back, default 0) and optional deadline.
 *   request  {"op":"ping","id":N}      -> {"pong":N}
 *   request  {"op":"health","id":N}    -> {"health":N,"stats":{...},
 *            "fleet":{...}} -- counters plus, under --isolate,
 *            per-worker state (pid, jobs, restarts, backoff stage).
 *   request  {"op":"metrics","id":N}   -> {"metrics":N,
 *            "c.<name>":V,"g.<name>":"V","h.<name>.count":V,...,
 *            "h.<name>.buckets":"idx:count,..."} -- the full process
 *            metrics-registry snapshot as one *flat* record (see
 *            obs/metrics.hh), so clients can parseFlat it and diff
 *            two snapshots' histogram buckets to get window-scoped
 *            quantiles. Health keeps its historical shape.
 *   reply    {"index":ID,"results":{...}}
 *            -- byte-identical to a `stsim_runner dump` record for the
 *               same job, which is what the soak gate diffs against.
 *   reply    {"error":KIND,"id":ID,"detail":"..."}
 *            -- KIND in {parse, oversize, busy, draining, too_large,
 *               bad_request, deadline, cancelled, internal, poison}.
 *
 * Every admitted request produces exactly one reply; replies on a
 * connection may be reordered relative to submission (jobs run
 * concurrently), so clients correlate by id.
 *
 * Robustness policies, engineered in from the start:
 *  - Bounded admission: at most queueCapacity requests admitted but
 *    unfinished, across all clients. Overload => an immediate `busy`
 *    reply, never unbounded memory.
 *  - Deadlines: a reaper thread fires each request's CancelToken when
 *    its deadline passes; the simulate loop polls the token.
 *  - Slow clients: per-connection reply buffers are bounded; a reader
 *    reserves a reply slot *before* admitting a job, so a slow reader
 *    blocks its own connection's reader thread -- never a sim worker,
 *    which hands finished replies off without ever blocking.
 *  - Disconnects: a vanished client's in-flight jobs are cancelled
 *    and its buffered replies dropped.
 *  - SIGPIPE-safe: all socket writes are MSG_NOSIGNAL.
 *  - Graceful drain: beginDrain() stops accepting, answers new frames
 *    with `draining`, lets in-flight work finish (cancelling whatever
 *    remains after drainGraceMs), then closes every connection.
 *  - Process isolation (--isolate): jobs execute in a supervised
 *    fleet of `stsim_runner serve-worker` subprocesses instead of the
 *    in-process RunPool. A worker crash becomes a structured
 *    `internal` reply (after bounded retries) or a `poison`
 *    quarantine, never a daemon exit. See worker_fleet.hh.
 */

#ifndef STSIM_SERVE_SERVER_HH
#define STSIM_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/run_pool.hh"
#include "obs/metrics.hh"
#include "serve/worker_fleet.hh"

namespace stsim
{
namespace serve
{

struct ServeOptions
{
    std::string unixPath;      ///< listen on this Unix socket, or
    int tcpPort = -1;          ///< loopback TCP (-1 off, 0 ephemeral)
    unsigned workers = 0;      ///< sim threads (0 = RunPool default)

    /** Admitted-but-unfinished cap; 0 resolves to 2*workers + 4. */
    std::size_t queueCapacity = 0;
    std::uint64_t defaultDeadlineMs = 0; ///< 0 = none
    std::uint64_t maxDeadlineMs = 0;     ///< clamp requests; 0 = none
    std::uint64_t drainGraceMs = 10'000; ///< cancel leftovers after this

    std::size_t maxLineBytes = 1 << 20;  ///< request frame size cap
    std::size_t replyQueueCap = 64;      ///< buffered replies per conn
    std::size_t maxConnections = 256;

    /**
     * Upper bound on warmup+measured instructions per request; keeps a
     * hostile job from wedging a worker for hours (and from the
     * cycle-budget overflow an absurd maxInstructions could cause).
     */
    std::uint64_t maxJobInstructions = 1'000'000'000;

    /**
     * Execute jobs in a supervised fleet of out-of-process
     * `stsim_runner serve-worker` subprocesses (crash containment)
     * instead of the in-process RunPool. runnerPath names the
     * stsim_runner binary; empty resolves to "stsim_runner" next to
     * the serving executable.
     */
    bool isolate = false;
    std::string runnerPath;
    unsigned jobAttempts = 3;     ///< worker deaths before `internal`
    unsigned poisonThreshold = 2; ///< consecutive kills => quarantine
    std::uint64_t respawnBaseMs = 50;   ///< fleet respawn backoff base
    std::uint64_t respawnCapMs = 5'000; ///< fleet respawn backoff cap
};

/** Monotonic counters; read them after drain for the exit summary. */
struct ServeStats
{
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> rejectedConnections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> busy{0};
    std::atomic<std::uint64_t> parseErrors{0};
    std::atomic<std::uint64_t> oversize{0};
    std::atomic<std::uint64_t> badRequests{0};
    std::atomic<std::uint64_t> deadlineCancelled{0};
    std::atomic<std::uint64_t> disconnectCancelled{0};
    std::atomic<std::uint64_t> drainCancelled{0};
    std::atomic<std::uint64_t> internalErrors{0}; ///< fleet gave up
    std::atomic<std::uint64_t> poisonRejected{0}; ///< quarantined jobs
};

class SimServer
{
  public:
    explicit SimServer(ServeOptions opts);
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /** Bind, listen, and start accepting. */
    void start();

    /** Resolved TCP port (after start(), when tcpPort was 0). */
    int tcpPort() const { return boundTcpPort_; }

    /** Begin graceful drain (idempotent; returns immediately). */
    void beginDrain();

    /**
     * Block until the drain completes: acceptor gone, every
     * connection closed, every admitted job finished. Call after
     * beginDrain(); completion is bounded by drainGraceMs plus one
     * cancellation-poll latency.
     */
    void waitDrained();

    const ServeStats &stats() const { return stats_; }

  private:
    struct Conn;
    struct Inflight;

    void acceptLoop();
    void reaperLoop();
    void readerMain(const std::shared_ptr<Conn> &c);
    void writerMain(const std::shared_ptr<Conn> &c);
    void handleLine(const std::shared_ptr<Conn> &c,
                    const std::string &line);
    void runJob(const std::shared_ptr<Conn> &c,
                const std::shared_ptr<Inflight> &inf);
    void fleetDone(const std::shared_ptr<Conn> &c,
                   const std::shared_ptr<Inflight> &inf,
                   FleetResult res);
    std::string healthLine(std::uint64_t id);
    std::string metricsLine(std::uint64_t id);
    void markDead(const std::shared_ptr<Conn> &c, bool slowOrGone);
    void finalizeConn(const std::shared_ptr<Conn> &c);
    bool blockingReply(const std::shared_ptr<Conn> &c,
                       std::string line);
    void pushReserved(const std::shared_ptr<Conn> &c, std::string line);
    void threadExit();

    ServeOptions opts_;
    ServeStats stats_;
    std::size_t queueCap_ = 0;

    // Registry-backed per-stage latency instruments (see the metric
    // catalog in README): wait-free observes at request granularity.
    obs::Histogram &queueWaitUs_;
    obs::Histogram &simTimeUs_;
    obs::Histogram &replyFlushUs_;
    obs::Counter &jobsCompletedCtr_;

    int listenFd_ = -1;
    int boundTcpPort_ = -1;
    int wakePipe_[2] = {-1, -1}; ///< nudges the acceptor on drain

    std::atomic<bool> draining_{false};
    std::chrono::steady_clock::time_point drainHardDeadline_{};

    std::atomic<std::size_t> admitted_{0}; ///< vs queueCap_

    std::mutex connsMu_;
    std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;
    std::uint64_t nextConnId_ = 0;

    std::mutex inflightMu_;
    std::vector<std::weak_ptr<Inflight>> inflight_; ///< reaper scan list

    /// Detached reader threads alive; waitDrained() blocks on zero.
    std::mutex threadMu_;
    std::condition_variable threadCv_;
    std::size_t liveThreads_ = 0;

    std::thread acceptThread_;
    std::thread reaperThread_;
    std::mutex reaperMu_;
    std::condition_variable reaperCv_;
    bool reaperStop_ = false;

    bool started_ = false;
    bool drained_ = false;

    // --isolate execution path; null when running in-process.
    std::unique_ptr<dist::WorkerLauncher> workerLauncher_;
    std::unique_ptr<WorkerFleet> fleet_;

    // Declared last: destroyed first, so in-flight jobs (which touch
    // stats_/admitted_/conns) finish while the rest is still alive.
    RunPool pool_;
};

} // namespace serve
} // namespace stsim

#endif // STSIM_SERVE_SERVER_HH
