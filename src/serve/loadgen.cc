/**
 * @file
 * stsim_loadgen: synthetic client for stsim_serve. One binary, five
 * modes, all speaking the JSONL wire protocol:
 *
 *   ping    retry-connect + ping until the server answers (startup
 *           wait for scripts)
 *   replay  send every manifest job exactly once (id = manifest
 *           index, bounded pipeline, busy retried), assert exactly
 *           one terminal reply per id, write the served result lines
 *           sorted by index -- byte-comparable with `stsim_runner
 *           dump` output for the same manifest. With --retry N,
 *           `busy` AND `internal` replies are retried up to N times
 *           per job with exponential backoff (without it, busy
 *           retries forever and internal is fatal) -- the client-side
 *           mirror of the server's supervised-worker retry loop.
 *   oneshot send one manifest job, print the reply line on stdout --
 *           for scripted probes (e.g. steering a poison job at an
 *           isolated server and asserting the structured error)
 *   health  send {"op":"health"}, print the reply line on stdout
 *   abuse   hostile-input drill: garbage frames, missing keys,
 *           unknown benchmark, truncated frame, oversize frame,
 *           expired deadline -- each must earn a structured error,
 *           and a valid job afterwards must still be served
 *   slow    admit jobs, then read the replies one byte at a time --
 *           a deliberately slow reader to park against the server's
 *           per-connection backpressure
 *   bench   N closed-loop clients for a fixed duration; reports
 *           sustained jobs/sec and p50/p90/p99 latency, optionally
 *           into a BENCH_serve.json-style file
 */

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/arg_parse.hh"
#include "common/logging.hh"
#include "core/job_serde.hh"
#include "obs/metrics.hh"
#include "serve/net.hh"

using namespace stsim;
using namespace stsim::serve;

namespace
{

struct Options
{
    std::string mode;
    std::string unixPath;
    int tcpPort = -1;
    std::string manifest;
    std::string outPath;
    std::string jsonPath;
    unsigned clients = 4;
    double durationSec = 5.0;
    std::uint64_t deadlineMs = 0;
    std::size_t window = 8;
    std::size_t count = 8;
    unsigned delayMs = 50;
    int tries = 100;
    bool tolerateDisconnect = false;
    /// bounded busy/internal retry attempts per job; -1 = legacy
    /// behavior (busy retried forever, internal fatal)
    int retryMax = -1;
    std::size_t index = 0;
    std::uint64_t id = 1;
    std::string label = "stsim_serve_loadgen";
};

/** Retry backoff for attempt k (1-based): 2ms doubling, 250ms cap. */
std::chrono::milliseconds
retryBackoff(unsigned attempt)
{
    std::uint64_t ms = attempt >= 8 ? 250 : (2ull << attempt);
    if (ms > 250)
        ms = 250;
    return std::chrono::milliseconds(ms);
}

int
usage(FILE *to)
{
    std::fprintf(to,
"usage: stsim_loadgen MODE (--unix PATH | --tcp PORT) [options]\n"
"\n"
"modes: ping | replay | abuse | slow | bench | oneshot | health\n"
"  ping    --tries N (default 100, 100ms apart)\n"
"  replay  --manifest FILE --out FILE [--window N] [--retry N]\n"
"  abuse   --manifest FILE\n"
"  slow    --manifest FILE [--count N] [--delay-ms D]\n"
"  bench   --manifest FILE [--clients N] [--duration-sec S]\n"
"          [--deadline-ms D] [--json FILE] [--label NAME]\n"
"          [--retry N] [--tolerate-disconnect]\n"
"  oneshot --manifest FILE [--index I] [--id N] [--deadline-ms D]\n"
"          (prints the reply line on stdout)\n"
"  health  [--id N] (prints the health reply line on stdout)\n"
"\n"
"  --retry N  retry busy/internal replies up to N times per job with\n"
"             exponential backoff; without it busy retries forever\n"
"             and internal is fatal (replay) or tallied (bench)\n");
    return to == stdout ? 0 : 2;
}

std::uint64_t
parseU64(const char *flag, const char *s)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || s[0] == '\0' || s[0] == '-')
        stsim_fatal("loadgen: bad value for %s: '%s'", flag, s);
    return v;
}

int
connectTarget(const Options &opts, std::string *err)
{
    if (!opts.unixPath.empty())
        return connectUnix(opts.unixPath, err);
    return connectTcp(opts.tcpPort, err);
}

void
setRecvTimeout(int fd, int sec)
{
    struct timeval tv;
    tv.tv_sec = sec;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

std::vector<std::string>
loadManifest(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        stsim_fatal("loadgen: cannot read '%s': %s", path.c_str(),
                    std::strerror(errno));
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    if (lines.empty())
        stsim_fatal("loadgen: manifest '%s' is empty", path.c_str());
    return lines;
}

/**
 * Build a request frame from a manifest line by splicing the id (and
 * optional deadline) into the object -- the cfg bytes pass through
 * untouched, so the server parses exactly what `stsim_runner run`
 * would have parsed.
 */
std::string
frameFor(const std::string &manifestLine, std::uint64_t id,
         std::uint64_t deadlineMs)
{
    if (manifestLine.empty() || manifestLine[0] != '{')
        stsim_fatal("loadgen: manifest line is not a JSON object");
    std::string f = "{\"id\":" + std::to_string(id);
    if (deadlineMs)
        f += ",\"deadlineMs\":" + std::to_string(deadlineMs);
    f += ",";
    f.append(manifestLine, 1, manifestLine.size() - 1);
    f.push_back('\n');
    return f;
}

enum class ReplyKind
{
    Result,
    Pong,
    Error,
    Malformed,
};

struct Reply
{
    ReplyKind kind = ReplyKind::Malformed;
    std::uint64_t id = 0;
    std::string errorKind;
    std::string detail;
};

Reply
classify(const std::string &line)
{
    Reply r;
    if (line.rfind("{\"index\":", 0) == 0) {
        r.kind = ReplyKind::Result;
        r.id = serde::resultRecordIndex(line);
        return r;
    }
    std::vector<serde::FlatField> fields;
    if (!serde::parseFlat(line, fields))
        return r;
    for (const serde::FlatField &f : fields) {
        if (f.key == "pong") {
            r.kind = ReplyKind::Pong;
            r.id = std::strtoull(f.value.c_str(), nullptr, 10);
        } else if (f.key == "error") {
            r.kind = ReplyKind::Error;
            r.errorKind = f.value;
        } else if (f.key == "id") {
            r.id = std::strtoull(f.value.c_str(), nullptr, 10);
        } else if (f.key == "detail") {
            r.detail = f.value;
        }
    }
    return r;
}

/**
 * Fetch the server's {"op":"metrics"} snapshot on its own connection
 * and return the parsed flat fields; empty on any failure (bench
 * treats server-side metrics as best-effort garnish, never a reason
 * to fail a load test).
 */
std::vector<serde::FlatField>
fetchMetrics(const Options &opts)
{
    std::vector<serde::FlatField> fields;
    std::string err;
    int fd = connectTarget(opts, &err);
    if (fd < 0)
        return fields;
    setRecvTimeout(fd, 120);
    LineReader lr(fd, 1 << 22);
    std::string line;
    if (sendAll(fd, "{\"op\":\"metrics\",\"id\":0}\n", nullptr) &&
        lr.next(line) == LineStatus::Line) {
        if (!serde::parseFlat(line, fields))
            fields.clear();
    }
    ::close(fd);
    return fields;
}

const std::string *
flatValue(const std::vector<serde::FlatField> &fields,
          const std::string &key)
{
    for (const serde::FlatField &f : fields)
        if (f.key == key)
            return &f.value;
    return nullptr;
}

/** Quantiles of one server histogram over the bench window. */
struct ServerHist
{
    bool ok = false;
    std::uint64_t count = 0;
    std::uint64_t p50 = 0, p90 = 0, p99 = 0;
};

/**
 * The window-scoped view of a server histogram: subtract the
 * before-run bucket counts from the after-run ones, then quantile
 * over just the delta. A missing before-snapshot field means the
 * histogram did not exist yet (zero counts); a missing after-field
 * means no metrics support, and the row is reported absent.
 */
ServerHist
histWindow(const std::vector<serde::FlatField> &before,
           const std::vector<serde::FlatField> &after,
           const std::string &name)
{
    ServerHist h;
    const std::string *a = flatValue(after, "h." + name + ".buckets");
    if (!a)
        return h;
    std::array<std::uint64_t, obs::Histogram::kBuckets> ab{}, bb{};
    if (!obs::Histogram::parseSparse(*a, ab))
        return h;
    if (const std::string *b =
            flatValue(before, "h." + name + ".buckets")) {
        if (!obs::Histogram::parseSparse(*b, bb))
            return h;
    }
    for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
        if (ab[i] < bb[i])
            return h; // counts went backwards: not the same server
        ab[i] -= bb[i];
        h.count += ab[i];
    }
    h.ok = true;
    h.p50 = obs::Histogram::quantileFromCounts(ab, 0.50);
    h.p90 = obs::Histogram::quantileFromCounts(ab, 0.90);
    h.p99 = obs::Histogram::quantileFromCounts(ab, 0.99);
    return h;
}

int
pingMode(const Options &opts)
{
    for (int attempt = 0; attempt < opts.tries; ++attempt) {
        std::string err;
        int fd = connectTarget(opts, &err);
        if (fd >= 0) {
            setRecvTimeout(fd, 10);
            LineReader lr(fd, 1 << 16);
            std::string line;
            if (sendAll(fd, "{\"op\":\"ping\",\"id\":1}\n", nullptr) &&
                lr.next(line) == LineStatus::Line &&
                classify(line).kind == ReplyKind::Pong) {
                ::close(fd);
                return 0;
            }
            ::close(fd);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "loadgen: ping: server never answered\n");
    return 1;
}

int
replayMode(const Options &opts)
{
    if (opts.manifest.empty() || opts.outPath.empty())
        stsim_fatal("loadgen: replay needs --manifest and --out");
    std::vector<std::string> jobs = loadManifest(opts.manifest);
    const std::size_t n = jobs.size();

    std::string err;
    int fd = connectTarget(opts, &err);
    if (fd < 0)
        stsim_fatal("loadgen: %s", err.c_str());
    setRecvTimeout(fd, 120);
    LineReader lr(fd, 1 << 22);

    std::vector<std::string> results(n);
    std::vector<int> replies(n, 0);
    std::vector<unsigned> attempts(n, 0);
    std::deque<std::size_t> retry;
    std::size_t sent = 0, done = 0, outstanding = 0;
    std::uint64_t retries = 0;

    while (done < n) {
        while (outstanding < opts.window &&
               (sent < n || !retry.empty())) {
            std::size_t idx;
            if (!retry.empty()) {
                idx = retry.front();
                retry.pop_front();
            } else {
                idx = sent++;
            }
            if (!sendAll(fd, frameFor(jobs[idx], idx, opts.deadlineMs),
                         &err)) {
                stsim_fatal("loadgen: replay: %s", err.c_str());
            }
            ++outstanding;
        }
        std::string line;
        LineStatus st = lr.next(line);
        if (st != LineStatus::Line)
            stsim_fatal("loadgen: replay: connection lost with %zu/%zu "
                        "replies outstanding", n - done, n);
        Reply r = classify(line);
        switch (r.kind) {
          case ReplyKind::Result:
            if (r.id >= n)
                stsim_fatal("loadgen: replay: result for unknown id "
                            "%llu",
                            static_cast<unsigned long long>(r.id));
            if (++replies[r.id] != 1)
                stsim_fatal("loadgen: replay: duplicate reply for id "
                            "%llu",
                            static_cast<unsigned long long>(r.id));
            results[r.id] = line;
            ++done;
            --outstanding;
            break;
          case ReplyKind::Error:
            if (r.id >= n)
                stsim_fatal("loadgen: replay: error for unknown id "
                            "%llu: %s",
                            static_cast<unsigned long long>(r.id),
                            line.c_str());
            if (r.errorKind == "busy" ||
                (opts.retryMax >= 0 && r.errorKind == "internal")) {
                ++retries;
                --outstanding;
                if (opts.retryMax >= 0) {
                    if (++attempts[r.id] >
                        static_cast<unsigned>(opts.retryMax)) {
                        stsim_fatal(
                            "loadgen: replay: id %llu still %s after "
                            "%d retries (%s)",
                            static_cast<unsigned long long>(r.id),
                            r.errorKind.c_str(), opts.retryMax,
                            r.detail.c_str());
                    }
                    std::this_thread::sleep_for(
                        retryBackoff(attempts[r.id]));
                } else {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                }
                retry.push_back(r.id);
                break;
            }
            stsim_fatal("loadgen: replay: id %llu failed: %s (%s)",
                        static_cast<unsigned long long>(r.id),
                        r.errorKind.c_str(), r.detail.c_str());
          case ReplyKind::Pong:
            break;
          case ReplyKind::Malformed:
            stsim_fatal("loadgen: replay: malformed reply: %s",
                        line.c_str());
        }
    }
    ::close(fd);

    std::ofstream out(opts.outPath, std::ios::binary);
    if (!out.is_open())
        stsim_fatal("loadgen: cannot open '%s' for writing: %s",
                    opts.outPath.c_str(), std::strerror(errno));
    for (const std::string &line : results)
        out << line << "\n";
    out.flush();
    if (!out)
        stsim_fatal("loadgen: write to '%s' failed",
                    opts.outPath.c_str());
    std::fprintf(stderr,
                 "loadgen: replay: %zu jobs served, %llu "
                 "retries, every id answered exactly once\n",
                 n, static_cast<unsigned long long>(retries));
    return 0;
}

/**
 * Send one frame, print the first reply line on stdout. Shared by the
 * oneshot and health modes: scripts pipe the line into grep/python to
 * assert on structured errors or supervision counters.
 */
int
probeMode(const Options &opts, const std::string &frame)
{
    std::string err;
    int fd = connectTarget(opts, &err);
    if (fd < 0)
        stsim_fatal("loadgen: %s", err.c_str());
    setRecvTimeout(fd, 120);
    if (!sendAll(fd, frame, &err))
        stsim_fatal("loadgen: probe: %s", err.c_str());
    LineReader lr(fd, 1 << 22);
    std::string line;
    if (lr.next(line) != LineStatus::Line) {
        ::close(fd);
        std::fprintf(stderr, "loadgen: probe: no reply before EOF\n");
        return 1;
    }
    ::close(fd);
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
    return 0;
}

int
oneshotMode(const Options &opts)
{
    if (opts.manifest.empty())
        stsim_fatal("loadgen: oneshot needs --manifest");
    std::vector<std::string> jobs = loadManifest(opts.manifest);
    if (opts.index >= jobs.size())
        stsim_fatal("loadgen: oneshot: --index %zu out of range "
                    "(manifest has %zu jobs)",
                    opts.index, jobs.size());
    return probeMode(opts, frameFor(jobs[opts.index], opts.id,
                                    opts.deadlineMs));
}

int
healthMode(const Options &opts)
{
    return probeMode(opts, "{\"op\":\"health\",\"id\":" +
                               std::to_string(opts.id) + "}\n");
}

/** One abuse scenario: send bytes, expect a certain reply shape. */
bool
expectReply(const Options &opts, const std::string &what,
            const std::string &bytes, bool halfClose,
            ReplyKind wantKind, const std::string &wantError)
{
    std::string err;
    int fd = connectTarget(opts, &err);
    if (fd < 0)
        stsim_fatal("loadgen: %s", err.c_str());
    setRecvTimeout(fd, 120);
    if (!sendAll(fd, bytes, &err))
        stsim_fatal("loadgen: abuse(%s): %s", what.c_str(),
                    err.c_str());
    if (halfClose)
        ::shutdown(fd, SHUT_WR);
    LineReader lr(fd, 1 << 22);
    std::string line;
    bool ok = false;
    if (lr.next(line) == LineStatus::Line) {
        Reply r = classify(line);
        ok = r.kind == wantKind &&
             (wantError.empty() || r.errorKind == wantError);
        if (!ok) {
            std::fprintf(stderr,
                         "loadgen: abuse(%s): unexpected reply: %s\n",
                         what.c_str(), line.c_str());
        }
    } else {
        std::fprintf(stderr,
                     "loadgen: abuse(%s): no reply before EOF\n",
                     what.c_str());
    }
    ::close(fd);
    if (ok)
        std::fprintf(stderr, "loadgen: abuse(%s): ok\n", what.c_str());
    return ok;
}

int
abuseMode(const Options &opts)
{
    if (opts.manifest.empty())
        stsim_fatal("loadgen: abuse needs --manifest");
    std::vector<std::string> jobs = loadManifest(opts.manifest);
    bool ok = true;

    ok &= expectReply(opts, "garbage", "this is not json\n", false,
                      ReplyKind::Error, "parse");
    ok &= expectReply(opts, "missing-keys",
                      "{\"id\":7,\"experiment\":\"nope\"}\n", false,
                      ReplyKind::Error, "parse");

    // Unknown benchmark: the cfg parses, but Simulator construction
    // fatals inside findProfile -- must come back as bad_request, not
    // take the daemon down.
    SimJob bad = serde::jobFromJson(jobs[0]);
    bad.cfg.benchmark = "no_such_benchmark";
    ok &= expectReply(opts, "unknown-benchmark",
                      frameFor(serde::toJson(bad), 8, 0), false,
                      ReplyKind::Error, "bad_request");

    // Truncated frame: half a request, then half-close. The torn tail
    // must be answered as a parse error, then a clean EOF.
    std::string torn = frameFor(jobs[0], 9, 0).substr(0, 40);
    ok &= expectReply(opts, "truncated-frame", torn, true,
                      ReplyKind::Error, "parse");

    // Oversize frame: blow through the server's line cap.
    std::string big(std::size_t{1} << 21, 'a');
    big.push_back('\n');
    ok &= expectReply(opts, "oversize-frame", big, false,
                      ReplyKind::Error, "oversize");

    // Absurd instruction count: shed before a worker is ever tied up.
    SimJob huge = serde::jobFromJson(jobs[0]);
    huge.cfg.maxInstructions = 2'000'000'000'000ull;
    ok &= expectReply(opts, "too-large",
                      frameFor(serde::toJson(huge), 10, 0), false,
                      ReplyKind::Error, "too_large");

    // Expired deadline: a job far too big for a 30ms budget must come
    // back as a deadline error (cooperative cancellation mid-run).
    SimJob slow = serde::jobFromJson(jobs[0]);
    slow.cfg.maxInstructions = 50'000'000;
    ok &= expectReply(opts, "deadline",
                      frameFor(serde::toJson(slow), 11, 30), false,
                      ReplyKind::Error, "deadline");

    // And after all that hostility, a well-formed job must be served.
    ok &= expectReply(opts, "valid-after-abuse",
                      frameFor(jobs[0], 99, 0), false,
                      ReplyKind::Result, "");

    if (!ok) {
        std::fprintf(stderr, "loadgen: abuse: FAILED\n");
        return 1;
    }
    std::fprintf(stderr, "loadgen: abuse: all scenarios passed\n");
    return 0;
}

int
slowMode(const Options &opts)
{
    if (opts.manifest.empty())
        stsim_fatal("loadgen: slow needs --manifest");
    std::vector<std::string> jobs = loadManifest(opts.manifest);

    std::string err;
    int fd = connectTarget(opts, &err);
    if (fd < 0)
        stsim_fatal("loadgen: %s", err.c_str());
    for (std::size_t i = 0; i < opts.count; ++i) {
        if (!sendAll(fd, frameFor(jobs[i % jobs.size()], i, 0), &err))
            stsim_fatal("loadgen: slow: %s", err.c_str());
    }
    // Read a trickle of tiny chunks: from the server's side this
    // connection's reply buffer fills and stays full. Exit once every
    // reply arrived (or the server hung up).
    std::size_t newlines = 0;
    while (newlines < opts.count) {
        char chunk[64];
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        newlines += static_cast<std::size_t>(
            std::count(chunk, chunk + n, '\n'));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.delayMs));
    }
    ::close(fd);
    std::fprintf(stderr, "loadgen: slow: read %zu/%zu replies\n",
                 newlines, opts.count);
    return newlines == opts.count ? 0 : 1;
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p * static_cast<double>(sorted.size());
    std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
    if (idx > 0)
        --idx;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

int
benchMode(const Options &opts)
{
    if (opts.manifest.empty())
        stsim_fatal("loadgen: bench needs --manifest");
    std::vector<std::string> jobs = loadManifest(opts.manifest);

    struct ClientTally
    {
        std::uint64_t ok = 0, busy = 0, errors = 0, retries = 0;
        std::uint64_t deadline = 0, internal = 0, poison = 0,
                      badRequest = 0, otherErrors = 0;
        std::vector<double> latMs;
        bool hardFailure = false;
        std::string failure;
    };
    std::vector<ClientTally> tallies(opts.clients);
    std::vector<std::thread> threads;
    using clock = std::chrono::steady_clock;
    // Server-side view of the same window: snapshot the metrics
    // registry before and after, then diff the histogram buckets.
    std::vector<serde::FlatField> metricsBefore = fetchMetrics(opts);
    auto start = clock::now();
    auto stopAt =
        start + std::chrono::duration<double>(opts.durationSec);

    for (unsigned ci = 0; ci < opts.clients; ++ci) {
        threads.emplace_back([&, ci] {
            ClientTally &t = tallies[ci];
            std::string err;
            int fd = connectTarget(opts, &err);
            if (fd < 0) {
                t.hardFailure = !opts.tolerateDisconnect;
                t.failure = err;
                return;
            }
            setRecvTimeout(fd, 120);
            LineReader lr(fd, 1 << 22);
            std::uint64_t seq = ci; // per-conn ids need not be global
            unsigned attempt = 0;  // busy/internal retries of this seq
            while (clock::now() < stopAt) {
                const std::string &job = jobs[seq % jobs.size()];
                auto t0 = clock::now();
                if (!sendAll(fd,
                             frameFor(job, seq, opts.deadlineMs),
                             &err)) {
                    t.hardFailure = !opts.tolerateDisconnect;
                    t.failure = err;
                    break;
                }
                std::string line;
                if (lr.next(line) != LineStatus::Line) {
                    t.hardFailure = !opts.tolerateDisconnect;
                    t.failure = "connection lost mid-reply";
                    break;
                }
                double ms = std::chrono::duration<double,
                                                  std::milli>(
                                clock::now() - t0)
                                .count();
                Reply r = classify(line);
                bool advance = true;
                if (r.kind == ReplyKind::Result) {
                    ++t.ok;
                    t.latMs.push_back(ms);
                } else if (r.kind == ReplyKind::Error &&
                           (r.errorKind == "busy" ||
                            r.errorKind == "internal")) {
                    if (r.errorKind == "busy")
                        ++t.busy;
                    else
                        ++t.errors, ++t.internal;
                    if (opts.retryMax >= 0 &&
                        attempt <
                            static_cast<unsigned>(opts.retryMax)) {
                        ++attempt;
                        ++t.retries;
                        advance = false;
                        std::this_thread::sleep_for(
                            retryBackoff(attempt));
                    } else if (r.errorKind == "busy") {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                    }
                } else if (r.kind == ReplyKind::Error) {
                    ++t.errors;
                    if (r.errorKind == "deadline")
                        ++t.deadline;
                    else if (r.errorKind == "poison")
                        ++t.poison;
                    else if (r.errorKind == "bad_request")
                        ++t.badRequest;
                    else
                        ++t.otherErrors;
                } else {
                    ++t.errors;
                    ++t.otherErrors;
                }
                if (advance) {
                    seq += opts.clients;
                    attempt = 0;
                }
            }
            ::close(fd);
        });
    }
    for (std::thread &th : threads)
        th.join();
    double elapsed =
        std::chrono::duration<double>(clock::now() - start).count();
    std::vector<serde::FlatField> metricsAfter = fetchMetrics(opts);
    ServerHist srvQueueWait =
        histWindow(metricsBefore, metricsAfter, "serve.queue_wait_us");
    ServerHist srvSimTime =
        histWindow(metricsBefore, metricsAfter, "serve.sim_time_us");

    std::uint64_t ok = 0, busy = 0, errors = 0, retries = 0;
    std::uint64_t deadline = 0, internal = 0, poison = 0,
                  badRequest = 0, other = 0;
    std::vector<double> lat;
    for (const ClientTally &t : tallies) {
        if (t.hardFailure)
            stsim_fatal("loadgen: bench client failed: %s",
                        t.failure.c_str());
        ok += t.ok;
        busy += t.busy;
        errors += t.errors;
        retries += t.retries;
        deadline += t.deadline;
        internal += t.internal;
        poison += t.poison;
        badRequest += t.badRequest;
        other += t.otherErrors;
        lat.insert(lat.end(), t.latMs.begin(), t.latMs.end());
    }
    std::sort(lat.begin(), lat.end());
    double jobsPerSec = elapsed > 0 ? static_cast<double>(ok) / elapsed
                                    : 0.0;
    double p50 = percentile(lat, 0.50);
    double p90 = percentile(lat, 0.90);
    double p99 = percentile(lat, 0.99);
    double worst = lat.empty() ? 0.0 : lat.back();

    std::fprintf(stderr,
                 "loadgen: bench: %u clients, %.2fs: %llu ok "
                 "(%.1f jobs/s), %llu busy, %llu errors, %llu "
                 "retries; latency ms "
                 "p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
                 opts.clients, elapsed,
                 static_cast<unsigned long long>(ok), jobsPerSec,
                 static_cast<unsigned long long>(busy),
                 static_cast<unsigned long long>(errors),
                 static_cast<unsigned long long>(retries), p50, p90,
                 p99, worst);
    if (srvQueueWait.ok || srvSimTime.ok) {
        std::fprintf(
            stderr,
            "loadgen: bench: server window: queue-wait us "
            "p50=%llu p90=%llu p99=%llu (n=%llu); sim us "
            "p50=%llu p90=%llu p99=%llu (n=%llu)\n",
            static_cast<unsigned long long>(srvQueueWait.p50),
            static_cast<unsigned long long>(srvQueueWait.p90),
            static_cast<unsigned long long>(srvQueueWait.p99),
            static_cast<unsigned long long>(srvQueueWait.count),
            static_cast<unsigned long long>(srvSimTime.p50),
            static_cast<unsigned long long>(srvSimTime.p90),
            static_cast<unsigned long long>(srvSimTime.p99),
            static_cast<unsigned long long>(srvSimTime.count));
    } else {
        std::fprintf(stderr,
                     "loadgen: bench: no server-side metrics window "
                     "(metrics op unanswered)\n");
    }

    if (!opts.jsonPath.empty()) {
        FILE *f = std::fopen(opts.jsonPath.c_str(), "w");
        if (!f)
            stsim_fatal("loadgen: cannot open '%s' for writing: %s",
                        opts.jsonPath.c_str(), std::strerror(errno));
        std::fprintf(
            f,
            "{\"name\":\"%s\",\"clients\":%u,"
            "\"duration_s\":%.3f,\"ok\":%llu,\"shed_busy\":%llu,"
            "\"errors\":%llu,\"retries\":%llu,"
            "\"error_kinds\":{\"deadline\":%llu,\"internal\":%llu,"
            "\"poison\":%llu,\"bad_request\":%llu,\"other\":%llu},"
            "\"jobs_per_sec\":%.2f,"
            "\"latency_ms\":{\"p50\":%.3f,\"p90\":%.3f,"
            "\"p99\":%.3f,\"max\":%.3f}",
            opts.label.c_str(), opts.clients, elapsed,
            static_cast<unsigned long long>(ok),
            static_cast<unsigned long long>(busy),
            static_cast<unsigned long long>(errors),
            static_cast<unsigned long long>(retries),
            static_cast<unsigned long long>(deadline),
            static_cast<unsigned long long>(internal),
            static_cast<unsigned long long>(poison),
            static_cast<unsigned long long>(badRequest),
            static_cast<unsigned long long>(other), jobsPerSec, p50,
            p90, p99, worst);
        // Server-side histograms over the same window, when the
        // daemon answered the metrics op (absent otherwise).
        auto emitHist = [f](const char *key, const ServerHist &h) {
            std::fprintf(
                f,
                ",\"%s\":{\"count\":%llu,\"p50_us\":%llu,"
                "\"p90_us\":%llu,\"p99_us\":%llu}",
                key, static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.p50),
                static_cast<unsigned long long>(h.p90),
                static_cast<unsigned long long>(h.p99));
        };
        if (srvQueueWait.ok)
            emitHist("server_queue_wait_us", srvQueueWait);
        if (srvSimTime.ok)
            emitHist("server_sim_time_us", srvSimTime);
        std::fprintf(f, "}\n");
        if (std::fclose(f) != 0)
            stsim_fatal("loadgen: write to '%s' failed",
                        opts.jsonPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ::signal(SIGPIPE, SIG_IGN);
    if (argc < 2)
        return usage(stderr);

    Options opts;
    opts.mode = argv[1];
    if (opts.mode == "--help" || opts.mode == "-h" ||
        opts.mode == "help") {
        return usage(stdout);
    }
    args::Diag diag;
    diag.missingValue = [](const char *flag) {
        stsim_fatal("loadgen: %s needs a value", flag);
    };
    diag.unknown = [](const char *arg) {
        std::fprintf(stderr, "loadgen: unknown argument '%s'\n", arg);
        std::exit(usage(stderr));
    };
    diag.parseU64 = [](const char *flag, const char *v) {
        return parseU64(flag, v);
    };

    // The usage text is a per-mode synopsis, not an options table, so
    // every flag registers with empty help (nothing is generated).
    args::FlagSet fs(diag);
    fs.str("--unix", "PATH", &opts.unixPath)
        .flag("--tcp", "PORT",
              [&opts](const char *v) {
                  opts.tcpPort =
                      static_cast<int>(parseU64("--tcp", v));
              })
        .str("--manifest", "FILE", &opts.manifest)
        .str("--out", "FILE", &opts.outPath)
        .str("--json", "FILE", &opts.jsonPath)
        .u64("--clients", "N", &opts.clients)
        .dblAtof("--duration-sec", "S", &opts.durationSec)
        .u64("--deadline-ms", "D", &opts.deadlineMs)
        .u64("--window", "N", &opts.window)
        .u64("--count", "N", &opts.count)
        .u64("--delay-ms", "D", &opts.delayMs)
        .u64("--tries", "N", &opts.tries)
        .u64("--retry", "N", &opts.retryMax)
        .u64("--index", "I", &opts.index)
        .u64("--id", "N", &opts.id)
        .str("--label", "NAME", &opts.label)
        .boolean("--tolerate-disconnect", &opts.tolerateDisconnect);
    fs.parse(argc, argv, 2);
    if (opts.unixPath.empty() && opts.tcpPort < 0)
        return usage(stderr);

    if (opts.mode == "ping")
        return pingMode(opts);
    if (opts.mode == "replay")
        return replayMode(opts);
    if (opts.mode == "abuse")
        return abuseMode(opts);
    if (opts.mode == "slow")
        return slowMode(opts);
    if (opts.mode == "bench")
        return benchMode(opts);
    if (opts.mode == "oneshot")
        return oneshotMode(opts);
    if (opts.mode == "health")
        return healthMode(opts);
    std::fprintf(stderr, "loadgen: unknown mode '%s'\n",
                 opts.mode.c_str());
    return usage(stderr);
}
